// The experiment campaign engine (src/exp): JSON writer/parser round
// trips, campaign spec parsing from key=value and JSON text, cross-product
// expansion, the schedule-independent carbon lower bound, end-to-end
// campaign runs with bit-for-bit parity against the suite runner, and the
// stability of the emitted record schema (golden key list).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/json.hpp"
#include "profile/scenario.hpp"
#include "sim/runner.hpp"
#include "test_util.hpp"
#include "util/require.hpp"

namespace cawo {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterProducesParsableDocuments) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginObject();
  w.key("text").value("quote \" backslash \\");
  w.key("int").value(std::int64_t{-42});
  w.key("pi").value(3.25);
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("list");
  w.compactNext();
  w.beginArray();
  w.value(1);
  w.value(2);
  w.endArray();
  w.endObject();

  const JsonValue doc = JsonValue::parse(out.str());
  EXPECT_EQ(doc.at("text").asString(), "quote \" backslash \\");
  EXPECT_EQ(doc.at("int").asInt(), -42);
  EXPECT_DOUBLE_EQ(doc.at("pi").asDouble(), 3.25);
  EXPECT_TRUE(doc.at("flag").asBool());
  EXPECT_TRUE(doc.at("nothing").isNull());
  ASSERT_EQ(doc.at("list").asArray().size(), 2u);
  EXPECT_EQ(doc.at("list").asArray()[1].asInt(), 2);
  // Key order is preserved for schema-stability checks.
  EXPECT_EQ(doc.objectKeys().front(), "text");
  EXPECT_EQ(doc.objectKeys().back(), "list");
}

TEST(Json, ParserRejectsMalformedDocuments) {
  EXPECT_THROW((void)JsonValue::parse("{"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": }"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("[1, 2"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\":1,\"a\":2}"), PreconditionError);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(1.5), "1.5");
}

// ---------------------------------------------------------------------------
// Campaign spec parsing
// ---------------------------------------------------------------------------

TEST(CampaignSpec, EmptyTextYieldsPaperDefaults) {
  const CampaignSpec spec = parseCampaignText("");
  EXPECT_EQ(spec.families.size(), 1u);
  EXPECT_EQ(spec.scenarios.size(), 4u);
  EXPECT_EQ(spec.deadlineFactors.size(), 4u);
  EXPECT_EQ(spec.algos, "suite");
  EXPECT_EQ(spec.cellCount(), 16u);
}

TEST(CampaignSpec, ParsesKeyValueText) {
  const CampaignSpec spec = parseCampaignText(R"(# comment
name = my-campaign
families         = atacseq, bacass, eager
tasks            = 40, 80
bacass-tasks     = 25
nodes-per-type   = 1, 2
scenarios        = S2, S4
deadline-factors = 1.5, 3.0
seeds            = 1, 1001
intervals        = 8
algos            = ASAP, press*
threads          = 2
)");
  EXPECT_EQ(spec.name, "my-campaign");
  ASSERT_EQ(spec.families.size(), 3u);
  EXPECT_EQ(spec.families[1], WorkflowFamily::Bacass);
  EXPECT_EQ(spec.tasks, (std::vector<int>{40, 80}));
  EXPECT_EQ(spec.bacassTasks, 25);
  EXPECT_EQ(spec.nodesPerType, (std::vector<int>{1, 2}));
  ASSERT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.scenarios[1], "S4");
  EXPECT_EQ(spec.deadlineFactors, (std::vector<double>{1.5, 3.0}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 1001}));
  EXPECT_EQ(spec.numIntervals, 8);
  EXPECT_EQ(spec.algos, "ASAP, press*");
  EXPECT_EQ(spec.threads, 2u);
  // (atacseq: 2 sizes + bacass: 1 + eager: 2) × 2 clusters × 2 seeds
  // × 2 scenarios × 2 factors.
  EXPECT_EQ(spec.cellCount(), 5u * 2 * 2 * 2 * 2);
}

TEST(CampaignSpec, ParsesJsonForm) {
  const CampaignSpec spec = parseCampaignText(R"({
    "name": "json-campaign",
    "families": ["eager"],
    "tasks": [30],
    "scenarios": "all",
    "deadline-factors": [2.0],
    "seeds": [7],
    "algos": "ASAP,slack"
  })");
  EXPECT_EQ(spec.name, "json-campaign");
  ASSERT_EQ(spec.families.size(), 1u);
  EXPECT_EQ(spec.families[0], WorkflowFamily::Eager);
  EXPECT_EQ(spec.tasks, (std::vector<int>{30}));
  EXPECT_EQ(spec.scenarios.size(), 4u);
  EXPECT_EQ(spec.deadlineFactors, (std::vector<double>{2.0}));
  EXPECT_EQ(spec.algos, "ASAP,slack");
}

TEST(CampaignSpec, RejectsBadKeysValuesAndEmptyAxes) {
  CampaignSpec spec;
  EXPECT_THROW(setCampaignKey(spec, "familys", "atacseq"), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "families", ""), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "families", "nf-core"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "tasks", ""), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "tasks", "40, banana"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "tasks", "0"), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "scenarios", "S5"), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "deadline-factors", "0.5"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "intervals", "0"), PreconditionError);
  EXPECT_THROW(parseCampaignText("no equals sign"), PreconditionError);
  EXPECT_THROW(parseCampaignText("= value"), PreconditionError);
  // The axes stayed intact through all the failures.
  EXPECT_EQ(spec.cellCount(), 16u);
}

TEST(CampaignSpec, SelectionStringsResolveThroughTheRegistry) {
  CampaignSpec spec;
  EXPECT_EQ(campaignSolverNames(spec), suiteSolverNames());

  setCampaignKey(spec, "algos", "ASAP,press*");
  const auto names = campaignSolverNames(spec);
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "ASAP");

  setCampaignKey(spec, "algos", "no-such-solver");
  EXPECT_THROW((void)campaignSolverNames(spec), PreconditionError);
}

TEST(CampaignSpec, ExpansionMatchesCellCountAndOrder) {
  CampaignSpec spec;
  setCampaignKey(spec, "families", "atacseq,bacass");
  setCampaignKey(spec, "tasks", "40,80");
  setCampaignKey(spec, "bacass-tasks", "20");
  setCampaignKey(spec, "nodes-per-type", "1,2");
  setCampaignKey(spec, "scenarios", "S1,S3");
  setCampaignKey(spec, "deadline-factors", "1.5,2.0");
  setCampaignKey(spec, "seeds", "1,2");

  const std::vector<InstanceSpec> cells = expandCampaign(spec);
  // atacseq contributes 2 sizes, bacass 1 (override) → 3 × 2 × 2 × 2 × 2.
  EXPECT_EQ(cells.size(), spec.cellCount());
  EXPECT_EQ(cells.size(), 48u);

  // Axis order: family → tasks → cluster → seed → scenario → factor.
  EXPECT_EQ(cells[0].family, WorkflowFamily::Atacseq);
  EXPECT_EQ(cells[0].targetTasks, 40);
  EXPECT_EQ(cells[0].nodesPerType, 1);
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[0].scenario, "S1");
  EXPECT_DOUBLE_EQ(cells[0].deadlineFactor, 1.5);
  EXPECT_DOUBLE_EQ(cells[1].deadlineFactor, 2.0);
  EXPECT_EQ(cells[2].scenario, "S3");
  EXPECT_EQ(cells[4].seed, 2u);
  EXPECT_EQ(cells[8].nodesPerType, 2);
  EXPECT_EQ(cells[16].targetTasks, 80);
  // bacass block uses the override size.
  EXPECT_EQ(cells[32].family, WorkflowFamily::Bacass);
  EXPECT_EQ(cells[32].targetTasks, 20);
  EXPECT_EQ(cells.back().family, WorkflowFamily::Bacass);
}

TEST(CampaignSpec, NameRoundTripsForFamiliesAndScenarios) {
  for (const char* name : {"atacseq", "bacass", "eager", "methylseq"})
    EXPECT_STREQ(familyName(familyFromName(name)), name);
  for (const char* name : {"S1", "S2", "S3", "S4"})
    EXPECT_STREQ(scenarioName(scenarioFromName(name)), name);
  EXPECT_THROW((void)familyFromName("Atacseq"), PreconditionError);
  EXPECT_THROW((void)scenarioFromName("s1"), PreconditionError);
}

// ---------------------------------------------------------------------------
// Carbon lower bound
// ---------------------------------------------------------------------------

TEST(CarbonLowerBound, BoundsTheAsapScheduleOnRealInstances) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Methylseq;
  spec.targetTasks = 40;
  spec.nodesPerType = 1;
  spec.scenario = "S1";
  spec.deadlineFactor = 1.5;
  spec.numIntervals = 8;
  spec.seed = 3;
  const Instance inst = buildInstance(spec);

  const Cost lb = carbonLowerBound(inst.gc, inst.profile);
  const Cost asapCost =
      evaluateCost(inst.gc, inst.profile, scheduleAsap(inst.gc));
  EXPECT_GE(lb, 0);
  EXPECT_LE(lb, asapCost);
}

TEST(CarbonLowerBound, TightOnStarvedUniformProfiles) {
  // One processor, idle 2 / work 5, three unit tasks; green power 0:
  // every schedule pays idle 2 × horizon plus the 5-per-unit work power
  // for the 3 busy units.
  const EnhancedGraph gc = testing::makeChainGc({1, 1, 1}, 2, 5);
  const PowerProfile starved = PowerProfile::uniform(10, 0);
  EXPECT_EQ(carbonLowerBound(gc, starved), 2 * 10 + 5 * 3);

  // Abundant green power: the bound collapses to zero.
  const PowerProfile green = PowerProfile::uniform(10, 100);
  EXPECT_EQ(carbonLowerBound(gc, green), 0);
}

// ---------------------------------------------------------------------------
// Campaign runs
// ---------------------------------------------------------------------------

CampaignSpec tinySpec() {
  CampaignSpec spec;
  spec.name = "tiny";
  setCampaignKey(spec, "families", "atacseq,eager");
  setCampaignKey(spec, "tasks", "30");
  setCampaignKey(spec, "nodes-per-type", "1");
  setCampaignKey(spec, "scenarios", "S1,S2,S3,S4");
  setCampaignKey(spec, "deadline-factors", "2.0");
  setCampaignKey(spec, "seeds", "5");
  setCampaignKey(spec, "intervals", "8");
  setCampaignKey(spec, "algos", "ASAP,press,pressWR-LS");
  return spec;
}

TEST(CampaignRun, RecordsMatchTheSuiteRunnerBitForBit) {
  const CampaignSpec spec = tinySpec();
  const CampaignOutcome outcome = runCampaign(spec);

  ASSERT_EQ(outcome.results.size(), 8u);
  ASSERT_EQ(outcome.records.size(), 8u * 3);

  // Every overlapping cell must match runSolversOnInstance exactly.
  const std::vector<InstanceSpec> cells = expandCampaign(spec);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Instance inst = buildInstance(cells[i]);
    const InstanceResult expected =
        runSolversOnInstance(inst, outcome.solvers);
    ASSERT_EQ(expected.runs.size(), 3u);
    for (std::size_t s = 0; s < 3; ++s) {
      const CampaignRecord& record = outcome.records[i * 3 + s];
      EXPECT_EQ(record.solver, expected.runs[s].algorithm);
      EXPECT_EQ(record.cost, expected.runs[s].cost)
          << record.instance << " / " << record.solver
          << " diverged from the suite runner";
      EXPECT_TRUE(record.feasible);
      EXPECT_FALSE(record.skipped);
      EXPECT_LE(record.lowerBound, record.cost);
      EXPECT_EQ(record.baselineCost, outcome.records[i * 3].cost);
      // The runner-compatible view carries the same numbers.
      EXPECT_EQ(outcome.results[i].runs[s].cost, expected.runs[s].cost);
    }
  }
}

TEST(CampaignRun, ParallelRunMatchesSerialRun) {
  CampaignSpec serial = tinySpec();
  setCampaignKey(serial, "threads", "1");
  CampaignSpec parallel = tinySpec();
  setCampaignKey(parallel, "threads", "4");

  const CampaignOutcome a = runCampaign(serial);
  const CampaignOutcome b = runCampaign(parallel);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].instance, b.records[i].instance);
    EXPECT_EQ(a.records[i].solver, b.records[i].solver);
    EXPECT_EQ(a.records[i].cost, b.records[i].cost);
  }
}

TEST(CampaignSpec, IntegerValuesAreRangeChecked) {
  CampaignSpec spec;
  // Out-of-int-range sizes must be rejected, never truncated (4294967297
  // would silently wrap to a 1-task workflow).
  EXPECT_THROW(setCampaignKey(spec, "tasks", "4294967297"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "nodes-per-type", "99999999999"),
               PreconditionError);
  // Seeds are full uint64: beyond-int values are fine, negatives are not.
  setCampaignKey(spec, "seeds", "99999999999");
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{99999999999ULL}));
  EXPECT_THROW(setCampaignKey(spec, "seeds", "-3"), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "seeds", "99999999999999999999999"),
               PreconditionError);
}

TEST(CampaignRun, SkippedBaselineYieldsNullBaselineCosts) {
  CampaignSpec spec = tinySpec();
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "scenarios", "S2");
  // The multi-processor instance skips "dp" — with it as the *baseline*,
  // the other records must carry no baseline cost (0 would read as a real
  // green-optimum cost) and no ratio.
  setCampaignKey(spec, "algos", "dp,ASAP");
  const CampaignOutcome outcome = runCampaign(spec);
  ASSERT_EQ(outcome.records.size(), 2u);
  EXPECT_TRUE(outcome.records[0].skipped);
  EXPECT_FALSE(outcome.records[1].skipped);
  EXPECT_FALSE(outcome.records[1].hasBaseline);
  EXPECT_TRUE(std::isnan(outcome.records[1].ratioVsBaseline));

  const JsonValue doc = JsonValue::parse(toCampaignJsonString(outcome));
  const auto& records = doc.at("records").asArray();
  EXPECT_TRUE(records[1].at("baseline_cost").isNull());
  EXPECT_TRUE(records[1].at("ratio_vs_baseline").isNull());
  // ASAP ran and won its instance even without a baseline.
  EXPECT_EQ(outcome.summaries[1].wins, 1);
}

TEST(CampaignRun, SkippedSolversYieldSkippedRecords) {
  CampaignSpec spec = tinySpec();
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "scenarios", "S2");
  // "dp" needs a single-processor graph and must be skipped, not fatal.
  setCampaignKey(spec, "algos", "ASAP,dp");
  const CampaignOutcome outcome = runCampaign(spec);
  ASSERT_EQ(outcome.records.size(), 2u);
  EXPECT_FALSE(outcome.records[0].skipped);
  EXPECT_TRUE(outcome.records[1].skipped);
  EXPECT_TRUE(std::isnan(outcome.records[1].ratioVsBaseline));
  ASSERT_EQ(outcome.summaries.size(), 2u);
  EXPECT_EQ(outcome.summaries[1].instances, 0);
  // The suite-compatible view only lists solvers that ran.
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0].runs.size(), 1u);
}

TEST(CampaignRun, PhaseSplitAndLocalSearchStatsAreSurfaced) {
  CampaignSpec spec = tinySpec();
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "scenarios", "S1");
  setCampaignKey(spec, "algos", "ASAP,press,pressWR-LS");
  const CampaignOutcome outcome = runCampaign(spec);
  ASSERT_EQ(outcome.records.size(), 3u);
  const CampaignRecord& asap = outcome.records[0];
  const CampaignRecord& greedy = outcome.records[1];
  const CampaignRecord& ls = outcome.records[2];

  // ASAP has no greedy/LS phases; greedy-only variants report the split
  // but no local-search block; -LS variants report both.
  EXPECT_FALSE(asap.hasPhaseSplit);
  EXPECT_FALSE(asap.hasLocalSearch);
  EXPECT_TRUE(greedy.hasPhaseSplit);
  EXPECT_FALSE(greedy.hasLocalSearch);
  EXPECT_TRUE(ls.hasPhaseSplit);
  EXPECT_TRUE(ls.hasLocalSearch);
  EXPECT_GE(ls.lsRounds, 1);
  EXPECT_GE(ls.lsMoves, 0);
  EXPECT_GE(ls.lsInitialCost, ls.lsFinalCost);
  EXPECT_EQ(ls.lsFinalCost, ls.cost)
      << "the local-search exit cost must equal the recorded carbon cost";

  const JsonValue doc = JsonValue::parse(toCampaignJsonString(outcome));
  const auto& records = doc.at("records").asArray();
  EXPECT_TRUE(records[0].at("greedy_ms").isNull());
  EXPECT_TRUE(records[0].at("ls_rounds").isNull());
  EXPECT_FALSE(records[1].at("greedy_ms").isNull());
  EXPECT_TRUE(records[1].at("ls_ms").isNull());
  EXPECT_FALSE(records[2].at("ls_ms").isNull());
  EXPECT_EQ(records[2].at("ls_moves").asInt(), ls.lsMoves);
  EXPECT_EQ(records[2].at("ls_initial_cost").asInt(),
            static_cast<std::int64_t>(ls.lsInitialCost));
}

TEST(CampaignRun, SummariesAggregateRatiosAndWins) {
  const CampaignOutcome outcome = runCampaign(tinySpec());
  ASSERT_EQ(outcome.summaries.size(), 3u);
  const SolverSummary& asap = outcome.summaries[0];
  EXPECT_EQ(asap.solver, "ASAP");
  EXPECT_EQ(asap.instances, 8);
  EXPECT_DOUBLE_EQ(asap.medianRatio, 1.0);

  int wins = 0;
  for (const SolverSummary& s : outcome.summaries) wins += s.wins;
  EXPECT_GE(wins, 8) << "every instance has at least one winner";

  const SolverSummary& best = outcome.summaries[2];
  EXPECT_EQ(best.solver, "pressWR-LS");
  EXPECT_LE(best.medianRatio, 1.0);
  ASSERT_EQ(best.medianRatioByScenario.size(), 4u);
}

// ---------------------------------------------------------------------------
// JSON result schema stability
// ---------------------------------------------------------------------------

TEST(CampaignJson, DocumentRoundTripsThroughTheParser) {
  CampaignSpec spec = tinySpec();
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "scenarios", "S1,S4");
  const CampaignOutcome outcome = runCampaign(spec);

  const JsonValue doc = JsonValue::parse(toCampaignJsonString(outcome));
  EXPECT_EQ(doc.at("schema").asString(), "cawosched-campaign-v1");
  EXPECT_EQ(doc.at("campaign").at("name").asString(), "tiny");
  EXPECT_EQ(doc.at("campaign").at("num_instances").asInt(), 2);

  const auto& records = doc.at("records").asArray();
  ASSERT_EQ(records.size(), outcome.records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].at("cost").asInt(),
              static_cast<std::int64_t>(outcome.records[i].cost));
    EXPECT_EQ(records[i].at("solver").asString(),
              outcome.records[i].solver);
    EXPECT_EQ(records[i].at("feasible").asBool(),
              outcome.records[i].feasible);
  }
  EXPECT_EQ(doc.at("summary").asArray().size(), 3u);
}

// Golden schema: the exact key sequence of a result record. Extending the
// schema is fine (append keys, bump the schema id when renaming) but any
// accidental rename/reorder breaks downstream consumers — this test pins
// it.
TEST(CampaignJson, RecordSchemaIsStable) {
  CampaignSpec spec = tinySpec();
  setCampaignKey(spec, "families", "eager");
  setCampaignKey(spec, "scenarios", "S3");
  setCampaignKey(spec, "algos", "ASAP");
  const CampaignOutcome outcome = runCampaign(spec);

  const JsonValue doc = JsonValue::parse(toCampaignJsonString(outcome));
  const std::vector<std::string> expectedRecordKeys = {
      "instance",      "family",        "tasks",
      "nodes_per_type", "scenario",     "deadline_factor",
      "seed",          "intervals",     "deadline",
      "asap_makespan", "num_nodes",     "instance_hash",
      "solver",        "cost",          "wall_ms",       "lower_bound",
      "baseline_cost", "ratio_vs_baseline", "feasible",
      "proved_optimal", "skipped",      "greedy_ms",
      "ls_ms",         "ls_rounds",     "ls_moves",
      "ls_initial_cost", "ls_final_cost"};
  ASSERT_FALSE(doc.at("records").asArray().empty());
  EXPECT_EQ(doc.at("records").asArray().front().objectKeys(),
            expectedRecordKeys);

  const std::vector<std::string> expectedSummaryKeys = {
      "solver",     "instances",     "wins",
      "median_ratio", "mean_ratio",  "total_wall_ms",
      "median_ratio_by_scenario"};
  EXPECT_EQ(doc.at("summary").asArray().front().objectKeys(),
            expectedSummaryKeys);

  const std::vector<std::string> expectedTopKeys = {"schema", "campaign",
                                                    "records", "summary"};
  EXPECT_EQ(doc.objectKeys(), expectedTopKeys);
}

} // namespace
} // namespace cawo
