#include <gtest/gtest.h>

#include "core/enhanced_graph.hpp"
#include "heft/heft.hpp"
#include "workflow/generators.hpp"

namespace cawo {
namespace {

Platform fastSlow() {
  Platform p;
  p.addProcessor({"slow", 1, 10, 5});
  p.addProcessor({"fast", 4, 40, 20});
  return p;
}

TEST(Heft, RanksDecreaseAlongEdges) {
  WorkflowGenOptions opts;
  opts.targetTasks = 60;
  opts.seed = 3;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  const auto rank = heftUpwardRanks(g, fastSlow());
  for (const auto& e : g.edges())
    EXPECT_GT(rank[static_cast<std::size_t>(e.src)],
              rank[static_cast<std::size_t>(e.dst)]);
}

TEST(Heft, SinkRankIsItsAverageExecution) {
  TaskGraph g;
  g.addTask("only", 8);
  const auto rank = heftUpwardRanks(g, fastSlow());
  // exec on slow = 8, on fast = 2 → average 5.
  EXPECT_DOUBLE_EQ(rank[0], 5.0);
}

TEST(Heft, SingleTaskGoesToTheFastestProcessor) {
  TaskGraph g;
  g.addTask("t", 8);
  const HeftResult res = runHeft(g, fastSlow());
  EXPECT_EQ(res.mapping.procOf(0), 1);
  EXPECT_EQ(res.makespan, 2);
}

TEST(Heft, MappingIsValidForGeneratedWorkflows) {
  for (const auto family :
       {WorkflowFamily::Atacseq, WorkflowFamily::Bacass, WorkflowFamily::Eager,
        WorkflowFamily::Methylseq}) {
    WorkflowGenOptions opts;
    opts.targetTasks = 80;
    opts.seed = 11;
    const TaskGraph g = generateWorkflow(family, opts);
    const HeftResult res = runHeft(g, Platform::scaled(1));
    EXPECT_TRUE(res.mapping.validate(g).empty()) << familyName(family);
  }
}

TEST(Heft, StartTimesRespectPrecedenceAndCommunication) {
  WorkflowGenOptions opts;
  opts.targetTasks = 50;
  opts.seed = 17;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Eager, opts);
  const Platform pf = Platform::scaled(1);
  const HeftResult res = runHeft(g, pf);
  for (const auto& e : g.edges()) {
    const auto is = static_cast<std::size_t>(e.src);
    const auto id = static_cast<std::size_t>(e.dst);
    const Time comm =
        res.mapping.procOf(e.src) == res.mapping.procOf(e.dst) ? 0 : e.data;
    EXPECT_GE(res.startTimes[id], res.finishTimes[is] + comm);
  }
}

TEST(Heft, NoOverlapOnAnyProcessor) {
  WorkflowGenOptions opts;
  opts.targetTasks = 70;
  opts.seed = 23;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Methylseq, opts);
  const Platform pf = Platform::scaled(1);
  const HeftResult res = runHeft(g, pf);
  for (ProcId p = 0; p < pf.numProcessors(); ++p) {
    const auto order = res.mapping.orderOn(p);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      EXPECT_LE(res.finishTimes[static_cast<std::size_t>(order[i])],
                res.startTimes[static_cast<std::size_t>(order[i + 1])]);
    }
  }
}

TEST(Heft, MakespanIsAtLeastTheBestCriticalPath) {
  WorkflowGenOptions opts;
  opts.targetTasks = 40;
  opts.seed = 29;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  const Platform pf = fastSlow();
  const HeftResult res = runHeft(g, pf);
  // Lower bound: the whole graph executed at maximum speed with no
  // communication, divided among all processors cannot beat the critical
  // work path on the fastest processor.
  Time lower = 0;
  for (TaskId v = 0; v < g.numTasks(); ++v)
    lower = std::max(lower, pf.execTime(g.work(v), 1));
  EXPECT_GE(res.makespan, lower);
}

TEST(Heft, FinishEqualsStartPlusExecTime) {
  WorkflowGenOptions opts;
  opts.targetTasks = 30;
  opts.seed = 31;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Bacass, opts);
  const Platform pf = Platform::scaled(1);
  const HeftResult res = runHeft(g, pf);
  for (TaskId v = 0; v < g.numTasks(); ++v) {
    const auto iv = static_cast<std::size_t>(v);
    EXPECT_EQ(res.finishTimes[iv],
              res.startTimes[iv] +
                  pf.execTime(g.work(v), res.mapping.procOf(v)));
  }
}

TEST(Heft, ResultFeedsEnhancedGraphConstruction) {
  WorkflowGenOptions opts;
  opts.targetTasks = 60;
  opts.seed = 37;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  const Platform pf = Platform::scaled(1);
  const HeftResult res = runHeft(g, pf);
  const EnhancedGraph gc =
      EnhancedGraph::build(g, pf, res.mapping, {}, &res.startTimes);
  EXPECT_GE(gc.numNodes(), g.numTasks());
  EXPECT_GE(gc.numLinks(), 0);
}

} // namespace
} // namespace cawo
