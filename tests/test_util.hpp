#pragma once

// Shared fixtures and builders for the CaWoSched test suite.

#include <utility>
#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace cawo::testing {

/// A single-processor chain of the given task lengths (the uniprocessor
/// setting of Theorem 4.1).
inline EnhancedGraph makeChainGc(const std::vector<Time>& lens,
                                 Power idle = 1, Power work = 3) {
  std::vector<EnhancedGraph::Node> nodes(lens.size());
  std::vector<TaskId> order;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    nodes[i].original = static_cast<TaskId>(i);
    nodes[i].proc = 0;
    nodes[i].len = lens[i];
    order.push_back(static_cast<TaskId>(i));
  }
  return EnhancedGraph::fromParts(std::move(nodes), {}, {idle}, {work},
                                  {std::move(order)});
}

/// Independent tasks, one per processor, with per-processor powers.
inline EnhancedGraph makeIndependentGc(const std::vector<Time>& lens,
                                       const std::vector<Power>& idle,
                                       const std::vector<Power>& work) {
  std::vector<EnhancedGraph::Node> nodes(lens.size());
  std::vector<std::vector<TaskId>> orders(lens.size());
  for (std::size_t i = 0; i < lens.size(); ++i) {
    nodes[i].original = static_cast<TaskId>(i);
    nodes[i].proc = static_cast<ProcId>(i);
    nodes[i].len = lens[i];
    orders[i] = {static_cast<TaskId>(i)};
  }
  return EnhancedGraph::fromParts(std::move(nodes), {}, idle, work,
                                  std::move(orders));
}

/// A small multiprocessor graph from explicit parts:
/// `tasks[i] = {proc, len}`, plus explicit precedence edges. Per-processor
/// orders follow the task index order.
inline EnhancedGraph makeGc(
    const std::vector<std::pair<ProcId, Time>>& tasks,
    const std::vector<std::pair<TaskId, TaskId>>& edges,
    const std::vector<Power>& idle, const std::vector<Power>& work) {
  std::vector<EnhancedGraph::Node> nodes(tasks.size());
  std::vector<std::vector<TaskId>> orders(idle.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    nodes[i].original = static_cast<TaskId>(i);
    nodes[i].proc = tasks[i].first;
    nodes[i].len = tasks[i].second;
    orders[static_cast<std::size_t>(tasks[i].first)].push_back(
        static_cast<TaskId>(i));
  }
  return EnhancedGraph::fromParts(std::move(nodes), edges, idle, work,
                                  std::move(orders));
}

/// A random feasible schedule for `gc` under `deadline`: walks the
/// topological order, choosing each start uniformly in the dynamic window.
inline Schedule randomSchedule(const EnhancedGraph& gc, Time deadline,
                               Rng& rng) {
  std::vector<Time> lst(static_cast<std::size_t>(gc.numNodes()));
  {
    const auto& topo = gc.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const TaskId u = *it;
      Time latest = deadline - gc.len(u);
      for (TaskId s : gc.succs(u))
        latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
      lst[static_cast<std::size_t>(u)] = latest;
    }
  }
  Schedule s(gc.numNodes());
  for (const TaskId u : gc.topoOrder()) {
    Time est = 0;
    for (TaskId p : gc.preds(u)) est = std::max(est, s.start(p) + gc.len(p));
    const Time hi = lst[static_cast<std::size_t>(u)];
    s.setStart(u, est >= hi ? est : rng.uniformInt(est, hi));
  }
  return s;
}

/// A small random profile over [0, horizon) with budgets in [lo, hi].
inline PowerProfile randomProfile(Time horizon, int numIntervals, Power lo,
                                  Power hi, Rng& rng) {
  PowerProfile p;
  Time remaining = horizon;
  for (int j = 0; j < numIntervals && remaining > 0; ++j) {
    Time len = (j + 1 == numIntervals)
                   ? remaining
                   : rng.uniformInt(1, std::max<Time>(1, remaining -
                                                             (numIntervals -
                                                              j - 1)));
    len = std::min(len, remaining);
    p.appendInterval(len, rng.uniformInt(lo, hi));
    remaining -= len;
  }
  if (remaining > 0) p.appendInterval(remaining, lo);
  return p;
}

} // namespace cawo::testing
