// End-to-end smoke test: a small pipeline instance goes through HEFT,
// enhanced-graph construction, ASAP, every CaWoSched variant, and the cost
// evaluators without tripping any invariant.

#include <gtest/gtest.h>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"

namespace cawo {
namespace {

TEST(Smoke, EndToEndSmallInstance) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Atacseq;
  spec.targetTasks = 60;
  spec.nodesPerType = 1;
  spec.scenario = "S1";
  spec.deadlineFactor = 2.0;
  spec.seed = 42;

  const Instance inst = buildInstance(spec);
  EXPECT_GT(inst.gc.numNodes(), inst.graph.numTasks());
  EXPECT_GE(inst.deadline, inst.asapMakespanD);

  const InstanceResult result = runAllOnInstance(inst);
  ASSERT_EQ(result.runs.size(), 17u); // ASAP + 16 variants
  for (const AlgoRun& run : result.runs) {
    EXPECT_GE(run.cost, 0) << run.algorithm;
  }
}

} // namespace
} // namespace cawo
