#include <gtest/gtest.h>

#include "util/require.hpp"

#include <sstream>

#include "core/asap.hpp"
#include "core/local_search.hpp"
#include "core/schedule_io.hpp"
#include "heft/heft.hpp"
#include "profile/profile_io.hpp"
#include "profile/scenario.hpp"
#include "test_util.hpp"
#include "workflow/generators.hpp"

namespace cawo {
namespace {

TEST(ProfileIo, RoundTripPreservesIntervals) {
  const PowerProfile p = generateScenario(Scenario::S1, 240, 100, 200,
                                          {24, 0.1, 5});
  const PowerProfile back = readProfileCsvString(toProfileCsvString(p));
  ASSERT_EQ(back.numIntervals(), p.numIntervals());
  for (std::size_t j = 0; j < p.numIntervals(); ++j) {
    EXPECT_EQ(back.interval(j).begin, p.interval(j).begin);
    EXPECT_EQ(back.interval(j).end, p.interval(j).end);
    EXPECT_EQ(back.interval(j).green, p.interval(j).green);
  }
}

TEST(ProfileIo, ParsesCommentsAndBlankLines) {
  const std::string csv = R"(# solar trace
length,green

10,5   # morning
20 , 7
)";
  const PowerProfile p = readProfileCsvString(csv);
  ASSERT_EQ(p.numIntervals(), 2u);
  EXPECT_EQ(p.interval(0).length(), 10);
  EXPECT_EQ(p.interval(1).green, 7);
}

TEST(ProfileIo, RejectsMalformedInput) {
  EXPECT_THROW(readProfileCsvString(""), PreconditionError);
  EXPECT_THROW(readProfileCsvString("10"), PreconditionError);
  EXPECT_THROW(readProfileCsvString("ten,5"), PreconditionError);
  EXPECT_THROW(readProfileCsvString("10,5,3"), PreconditionError);
  EXPECT_THROW(readProfileCsvString("0,5"), PreconditionError); // zero length
}

TEST(ProfileIo, FileRoundTrip) {
  const PowerProfile p = PowerProfile::uniform(50, 9);
  const std::string path = ::testing::TempDir() + "/cawo_profile.csv";
  writeProfileCsvFile(path, p);
  const PowerProfile back = readProfileCsvFile(path);
  EXPECT_EQ(back.horizon(), 50);
  EXPECT_EQ(back.greenAt(0), 9);
  EXPECT_THROW(readProfileCsvFile("/no/such/file.csv"), PreconditionError);
}

TEST(ScheduleIo, CsvListsEveryNodeWithKinds) {
  WorkflowGenOptions opts;
  opts.targetTasks = 30;
  opts.seed = 2;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  const Platform pf = Platform::scaled(1);
  const HeftResult heft = runHeft(g, pf);
  const EnhancedGraph gc =
      EnhancedGraph::build(g, pf, heft.mapping, {}, &heft.startTimes);
  const Schedule s = scheduleAsap(gc);

  const std::string csv = toScheduleCsvString(gc, s, &g);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "node,kind,name,proc,start,end,len");
  int rows = 0, comms = 0;
  while (std::getline(lines, line)) {
    ++rows;
    if (line.find(",comm,") != std::string::npos) ++comms;
  }
  EXPECT_EQ(rows, gc.numNodes());
  EXPECT_EQ(comms, gc.numNodes() - g.numTasks());
  // Task names from the workflow appear in the CSV.
  EXPECT_NE(csv.find("prepare_genome"), std::string::npos);
}

TEST(ScheduleIo, CsvRejectsMismatchedSchedule) {
  const EnhancedGraph gc = testing::makeChainGc({2, 3});
  Schedule s(1);
  std::ostringstream os;
  EXPECT_THROW(writeScheduleCsv(os, gc, s), PreconditionError);
}

TEST(ScheduleIo, GanttRendersOneRowPerProcessor) {
  const EnhancedGraph gc =
      testing::makeGc({{0, 5}, {1, 5}}, {}, {1, 1}, {1, 1});
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 5);
  std::ostringstream os;
  printGantt(os, gc, s, 10, 20);
  const std::string text = os.str();
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("p1"), std::string::npos);
  // Task A occupies the first half of p0's row.
  EXPECT_NE(text.find("AAAAAAAAAA"), std::string::npos);
}

TEST(ScheduleIo, GanttValidatesArguments) {
  const EnhancedGraph gc = testing::makeChainGc({2});
  Schedule s(1);
  s.setStart(0, 0);
  std::ostringstream os;
  EXPECT_THROW(printGantt(os, gc, s, 0), PreconditionError);
  EXPECT_THROW(printGantt(os, gc, s, 10, 2), PreconditionError);
}

TEST(LocalSearchStrategy, BestImprovementPicksTheLargestGain) {
  // Task at 0; two improving targets inside the radius: +3 (small gain)
  // and +8 (big gain). First-improvement stops at +3, best-improvement
  // jumps to +8.
  const EnhancedGraph gc = testing::makeChainGc({2}, 0, 10);
  PowerProfile p;
  p.appendInterval(3, 0);  // current position: overflow 10
  p.appendInterval(5, 6);  // mild improvement: overflow 4
  p.appendInterval(12, 20); // full improvement: overflow 0
  LocalSearchOptions opts;
  opts.radius = 8;
  opts.maxRounds = 1;

  Schedule first(1);
  first.setStart(0, 0);
  opts.strategy = MoveStrategy::FirstImprovement;
  localSearch(gc, p, 20, first, opts);
  // First strictly improving position: start 2, where the window already
  // straddles into the milder interval.
  EXPECT_EQ(first.start(0), 2);

  Schedule best(1);
  best.setStart(0, 0);
  opts.strategy = MoveStrategy::BestImprovement;
  localSearch(gc, p, 20, best, opts);
  EXPECT_EQ(best.start(0), 8);
}

TEST(LocalSearchStrategy, BothStrategiesAreMonotone) {
  Rng rng(2024);
  const EnhancedGraph gc = testing::makeGc(
      {{0, 4}, {1, 3}, {0, 2}, {1, 6}}, {{0, 2}}, {1, 2}, {5, 7});
  const Time deadline = 40;
  const PowerProfile profile = testing::randomProfile(deadline, 5, 0, 15, rng);
  for (const MoveStrategy strategy :
       {MoveStrategy::FirstImprovement, MoveStrategy::BestImprovement}) {
    Schedule s = testing::randomSchedule(gc, deadline, rng);
    LocalSearchOptions opts;
    opts.strategy = strategy;
    const auto stats = localSearch(gc, profile, deadline, s, opts);
    EXPECT_LE(stats.finalCost, stats.initialCost);
    EXPECT_TRUE(validateSchedule(gc, s, deadline).ok);
  }
}

} // namespace
} // namespace cawo
