// Cross-module integration tests: the full paper pipeline at small scale,
// including the suite runner and the statistics used by the figures.

#include <gtest/gtest.h>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"

namespace cawo {
namespace {

TEST(Integration, InstanceBuildIsFullyDeterministic) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Methylseq;
  spec.targetTasks = 80;
  spec.nodesPerType = 1;
  spec.scenario = "S3";
  spec.deadlineFactor = 1.5;
  spec.seed = 123;
  const Instance a = buildInstance(spec);
  const Instance b = buildInstance(spec);
  EXPECT_EQ(a.deadline, b.deadline);
  EXPECT_EQ(a.gc.numNodes(), b.gc.numNodes());
  EXPECT_EQ(a.asapMakespanD, b.asapMakespanD);
  ASSERT_EQ(a.profile.numIntervals(), b.profile.numIntervals());
  for (std::size_t j = 0; j < a.profile.numIntervals(); ++j)
    EXPECT_EQ(a.profile.interval(j).green, b.profile.interval(j).green);
  const InstanceResult ra = runAllOnInstance(a);
  const InstanceResult rb = runAllOnInstance(b);
  for (std::size_t i = 0; i < ra.runs.size(); ++i)
    EXPECT_EQ(ra.runs[i].cost, rb.runs[i].cost) << ra.runs[i].algorithm;
}

TEST(Integration, DeadlineEqualsFactorTimesAsapMakespan) {
  InstanceSpec spec;
  spec.targetTasks = 50;
  spec.nodesPerType = 1;
  spec.deadlineFactor = 3.0;
  spec.seed = 5;
  const Instance inst = buildInstance(spec);
  EXPECT_EQ(inst.deadline, 3 * inst.asapMakespanD);
  EXPECT_EQ(inst.profile.horizon(), inst.deadline);
}

TEST(Integration, TightDeadlineStillYieldsValidSchedules) {
  InstanceSpec spec;
  spec.targetTasks = 60;
  spec.nodesPerType = 1;
  spec.deadlineFactor = 1.0; // D itself — zero slack on the critical path
  spec.seed = 9;
  const Instance inst = buildInstance(spec);
  const InstanceResult result = runAllOnInstance(inst);
  // The runner validates every schedule internally; reaching here with 17
  // results is the assertion.
  EXPECT_EQ(result.runs.size(), 17u);
}

TEST(Integration, RunSuiteMatchesSequentialExecution) {
  std::vector<InstanceSpec> specs;
  for (const char* scenario : {"S1", "S2"}) {
    InstanceSpec spec;
    spec.targetTasks = 40;
    spec.nodesPerType = 1;
    spec.scenario = scenario;
    spec.deadlineFactor = 2.0;
    spec.seed = 31;
    specs.push_back(spec);
  }
  const auto parallel = runSuite(specs, {}, 2);
  const auto serial = runSuite(specs, {}, 1);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i)
    for (std::size_t a = 0; a < parallel[i].runs.size(); ++a)
      EXPECT_EQ(parallel[i].runs[a].cost, serial[i].runs[a].cost);
}

TEST(Integration, FullGridHasSixteenProfiles) {
  const auto specs = fullGrid(WorkflowFamily::Atacseq, 50, 1, 7);
  EXPECT_EQ(specs.size(), 16u); // 4 scenarios × 4 deadline factors
}

TEST(Integration, StatsPipelineRunsOnSuiteResults) {
  const auto specs = fullGrid(WorkflowFamily::Bacass, 30, 1, 13);
  const auto results = runSuite(specs);
  const CostMatrix m = toCostMatrix(results);
  EXPECT_EQ(m.numInstances(), 16u);
  EXPECT_EQ(m.numAlgorithms(), 17u);

  const auto ranks = rankDistribution(m);
  int totalFirstPlaces = 0;
  for (const auto& row : ranks) totalFirstPlaces += row[0];
  EXPECT_GE(totalFirstPlaces, 16); // at least one winner per instance

  const auto profile = performanceProfile(m, {0.0, 0.5, 1.0});
  for (std::size_t a = 0; a < m.numAlgorithms(); ++a) {
    EXPECT_DOUBLE_EQ(profile[a][0], 1.0);
    EXPECT_LE(profile[a][2], 1.0);
  }
}

TEST(Integration, CarbonAwareVariantsHelpOnLateGreenProfiles) {
  // Shape check behind Figures 4/15: with green power arriving late (S3 has
  // its bump after the start; S1 mid-horizon) and a generous deadline, the
  // best CaWoSched variant should beat ASAP on most instances.
  std::vector<InstanceSpec> specs;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    InstanceSpec spec;
    spec.family = WorkflowFamily::Atacseq;
    spec.targetTasks = 60;
    spec.nodesPerType = 1;
    spec.scenario = "S1";
    spec.deadlineFactor = 3.0;
    spec.seed = seed;
    specs.push_back(spec);
  }
  const auto results = runSuite(specs);
  int wins = 0;
  for (const auto& r : results) {
    const Cost asap = r.runs[0].cost;
    Cost best = asap;
    for (std::size_t a = 1; a < r.runs.size(); ++a)
      best = std::min(best, r.runs[a].cost);
    if (best < asap || asap == 0) ++wins;
  }
  EXPECT_GE(wins, 2) << "carbon-aware variants should usually beat ASAP";
}

TEST(Integration, LabelIsHumanReadable) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Eager;
  spec.targetTasks = 123;
  spec.nodesPerType = 2;
  spec.scenario = "S2";
  spec.deadlineFactor = 1.5;
  EXPECT_EQ(spec.label(), "eager-123/c2/S2/d1.5");
}

} // namespace
} // namespace cawo
