#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::makeGc;
using testing::makeIndependentGc;
using testing::randomProfile;
using testing::randomSchedule;

TEST(CarbonCost, HandComputedSingleTask) {
  // One task len 4 on a proc with idle 2 / work 3; budget 4 everywhere.
  // Idle-only draw 2 ≤ 4 → no cost; while running draw 5 → overflow 1.
  const EnhancedGraph gc = makeChainGc({4}, /*idle=*/2, /*work=*/3);
  const PowerProfile profile = PowerProfile::uniform(10, 4);
  Schedule s(1);
  s.setStart(0, 3);
  EXPECT_EQ(evaluateCost(gc, profile, s), 4 * 1);
}

TEST(CarbonCost, IdleFloorAccruesWithoutTasks) {
  // Idle 5 > budget 3 → overflow 2 on the whole horizon, task adds more.
  const EnhancedGraph gc = makeChainGc({2}, /*idle=*/5, /*work=*/10);
  const PowerProfile profile = PowerProfile::uniform(10, 3);
  Schedule s(1);
  s.setStart(0, 0);
  // 10 units of idle overflow 2 = 20, plus 2 units of extra work 10 = 20.
  EXPECT_EQ(evaluateCost(gc, profile, s), 40);
}

TEST(CarbonCost, TaskSpanningIntervalBoundary) {
  // Budget 10 in [0,5), 0 in [5,10). Task len 4 at start 3: 2 units in the
  // green interval (draw 3 ≤ 10 → 0), 2 units in the dark one (draw 3 → 6).
  const EnhancedGraph gc = makeChainGc({4}, 1, 2);
  PowerProfile profile;
  profile.appendInterval(5, 10);
  profile.appendInterval(5, 0);
  Schedule s(1);
  s.setStart(0, 3);
  // Idle floor in dark interval: 1×5 = 5 on the 3 task-free units... careful:
  // idle applies always; during the task the draw is 3.
  // [0,3): idle 1 ≤ 10 → 0. [3,5): 3 ≤ 10 → 0. [5,7): draw 3 → 6. [7,10): 1×3.
  EXPECT_EQ(evaluateCost(gc, profile, s), 6 + 3);
}

TEST(CarbonCost, ParallelTasksAddPower) {
  const EnhancedGraph gc = makeIndependentGc({3, 3}, {0, 0}, {4, 5});
  const PowerProfile profile = PowerProfile::uniform(6, 6);
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 0);
  // Together they draw 9 > 6 → overflow 3 for 3 units.
  EXPECT_EQ(evaluateCost(gc, profile, s), 9);
  s.setStart(1, 3); // sequential → each draws below budget
  EXPECT_EQ(evaluateCost(gc, profile, s), 0);
}

TEST(CarbonCost, ZeroLengthTasksAreFree) {
  const EnhancedGraph gc = makeChainGc({0, 0}, 0, 100);
  const PowerProfile profile = PowerProfile::uniform(5, 0);
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 0);
  EXPECT_EQ(evaluateCost(gc, profile, s), 0);
}

TEST(CarbonCost, IncompleteScheduleIsRejected) {
  const EnhancedGraph gc = makeChainGc({2});
  const PowerProfile profile = PowerProfile::uniform(5, 0);
  Schedule s(1);
  EXPECT_THROW(evaluateCost(gc, profile, s), PreconditionError);
}

TEST(CarbonCost, ScheduleBeyondHorizonIsRejected) {
  const EnhancedGraph gc = makeChainGc({4});
  const PowerProfile profile = PowerProfile::uniform(5, 0);
  Schedule s(1);
  s.setStart(0, 3);
  EXPECT_THROW(evaluateCost(gc, profile, s), PreconditionError);
}

TEST(CarbonCost, BreakdownTotalsMatchEvaluate) {
  const EnhancedGraph gc = makeGc({{0, 3}, {1, 4}, {0, 2}},
                                  {{0, 1}, {1, 2}}, {2, 3}, {5, 7});
  PowerProfile profile;
  profile.appendInterval(6, 8);
  profile.appendInterval(6, 2);
  profile.appendInterval(8, 12);
  const Schedule s = scheduleAsap(gc);
  const CostBreakdown b = evaluateCostBreakdown(gc, profile, s);
  EXPECT_EQ(b.total, evaluateCost(gc, profile, s));
  Cost sum = 0;
  for (const Cost c : b.perInterval) sum += c;
  EXPECT_EQ(sum, b.total);
  EXPECT_EQ(b.brownEnergyUsed, b.total);
  EXPECT_GE(b.peakPower, gc.totalIdlePower());
}

// Property: the sweep-line evaluator agrees with the per-time-unit
// reference on randomised instances, schedules and profiles.
class CostEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CostEquivalence, SweepMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  // Random multiproc graph from parts.
  const int numProcs = static_cast<int>(rng.uniformInt(1, 4));
  const int numTasks = static_cast<int>(rng.uniformInt(1, 12));
  std::vector<std::pair<ProcId, Time>> tasks;
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int i = 0; i < numTasks; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, numProcs - 1)),
                     rng.uniformInt(0, 5)});
  for (int i = 0; i < numTasks; ++i)
    for (int j = i + 1; j < numTasks; ++j)
      if (rng.uniform01() < 0.2)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  std::vector<Power> idle, work;
  for (int p = 0; p < numProcs; ++p) {
    idle.push_back(rng.uniformInt(0, 5));
    work.push_back(rng.uniformInt(1, 9));
  }
  const EnhancedGraph gc = testing::makeGc(tasks, edges, idle, work);

  const Time deadline = gc.criticalPathLength() + rng.uniformInt(0, 20);
  const Time horizon = std::max<Time>(deadline, 1);
  const PowerProfile profile = randomProfile(horizon, 4, 0, 15, rng);
  const Schedule s = randomSchedule(gc, deadline, rng);
  ASSERT_TRUE(validateSchedule(gc, s, deadline).ok);

  EXPECT_EQ(evaluateCost(gc, profile, s),
            evaluateCostReference(gc, profile, s));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CostEquivalence,
                         ::testing::Range(0, 40));

} // namespace
} // namespace cawo
