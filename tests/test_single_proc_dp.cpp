#include <gtest/gtest.h>

#include "util/require.hpp"

#include <algorithm>

#include "core/carbon_cost.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/single_proc_dp.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::randomProfile;

/// Evaluate a DP result through the independent cost machinery.
Cost crossCheckCost(const SingleProcInstance& inst,
                    const PowerProfile& profile,
                    const std::vector<Time>& starts) {
  const EnhancedGraph gc = makeChainGc(inst.lens, inst.idlePower,
                                       inst.workPower);
  Schedule s(gc.numNodes());
  for (std::size_t i = 0; i < starts.size(); ++i)
    s.setStart(static_cast<TaskId>(i), starts[i]);
  return evaluateCost(gc, profile, s);
}

TEST(SingleProcDp, EmptyInstanceCostsTheIdleFloor) {
  SingleProcInstance inst{{}, 5, 3};
  const PowerProfile p = PowerProfile::uniform(10, 2);
  EXPECT_EQ(solveSingleProcPseudo(inst, p, 10).cost, 30);
  EXPECT_EQ(solveSingleProcPoly(inst, p, 10).cost, 30);
}

TEST(SingleProcDp, SingleTaskLandsInTheGreenestWindow) {
  SingleProcInstance inst{{3}, 0, 4};
  PowerProfile p;
  p.appendInterval(5, 0);
  p.appendInterval(5, 4);
  p.appendInterval(5, 0);
  const auto pseudo = solveSingleProcPseudo(inst, p, 15);
  EXPECT_EQ(pseudo.cost, 0);
  EXPECT_GE(pseudo.starts[0], 5);
  EXPECT_LE(pseudo.starts[0] + 3, 10);
  const auto poly = solveSingleProcPoly(inst, p, 15);
  EXPECT_EQ(poly.cost, 0);
}

TEST(SingleProcDp, TightDeadlineForcesBackToBack) {
  SingleProcInstance inst{{4, 6}, 1, 2};
  const PowerProfile p = PowerProfile::uniform(10, 0);
  const auto res = solveSingleProcPseudo(inst, p, 10);
  EXPECT_EQ(res.starts[0], 0);
  EXPECT_EQ(res.starts[1], 4);
  // Idle floor 1×10 plus work 2×10 (always busy).
  EXPECT_EQ(res.cost, 10 + 20);
}

TEST(SingleProcDp, StartsAreOrderedAndFeasible) {
  Rng rng(5);
  SingleProcInstance inst{{2, 5, 1, 4}, 2, 6};
  const PowerProfile p = randomProfile(30, 5, 0, 10, rng);
  for (const auto& res : {solveSingleProcPseudo(inst, p, 30),
                          solveSingleProcPoly(inst, p, 30)}) {
    ASSERT_EQ(res.starts.size(), 4u);
    Time prevEnd = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(res.starts[i], prevEnd);
      prevEnd = res.starts[i] + inst.lens[i];
    }
    EXPECT_LE(prevEnd, 30);
    EXPECT_EQ(res.cost, crossCheckCost(inst, p, res.starts));
  }
}

TEST(SingleProcDp, RejectsImpossibleDeadline) {
  SingleProcInstance inst{{6, 6}, 0, 1};
  const PowerProfile p = PowerProfile::uniform(10, 1);
  EXPECT_THROW(solveSingleProcPseudo(inst, p, 10), PreconditionError);
  EXPECT_THROW(solveSingleProcPoly(inst, p, 10), PreconditionError);
}

TEST(SingleProcDp, ZeroLengthTasksAreHandled) {
  SingleProcInstance inst{{0, 3, 0}, 1, 2};
  const PowerProfile p = PowerProfile::uniform(10, 5);
  const auto res = solveSingleProcPseudo(inst, p, 10);
  EXPECT_EQ(res.cost, 0);
  const auto poly = solveSingleProcPoly(inst, p, 10);
  EXPECT_EQ(poly.cost, 0);
}

TEST(SingleProcDp, CandidateEndTimesContainBlockAlignments) {
  // Tasks 2, 3; boundaries {0, 7, 12}. For task 1 (len 3):
  //   own block start-aligned at 7 → end 10; end-aligned at 7 → end 7;
  //   block {0,1} start-aligned at 0 → end 5; end-aligned at 12 → end 12.
  SingleProcInstance inst{{2, 3}, 0, 1};
  PowerProfile p;
  p.appendInterval(7, 1);
  p.appendInterval(5, 2);
  const auto cands = candidateEndTimes(inst, p, 12, 1);
  for (const Time expected : {5, 7, 10, 12})
    EXPECT_TRUE(std::find(cands.begin(), cands.end(), expected) !=
                cands.end())
        << "missing candidate end " << expected;
  // All candidates feasible: ≥ 5 (both tasks before), ≤ 12.
  for (const Time t : cands) {
    EXPECT_GE(t, 5);
    EXPECT_LE(t, 12);
  }
}

// The heart of Theorem 4.1: the polynomial DP restricted to E' matches the
// pseudo-polynomial DP over all end times, which in turn matches the
// branch-and-bound optimum, on randomised single-processor instances.
class DpEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DpEquivalence, PolyEqualsPseudoEqualsBnB) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 3);
  const int n = static_cast<int>(rng.uniformInt(1, 5));
  SingleProcInstance inst;
  inst.idlePower = rng.uniformInt(0, 3);
  inst.workPower = rng.uniformInt(1, 6);
  Time total = 0;
  for (int i = 0; i < n; ++i) {
    inst.lens.push_back(rng.uniformInt(1, 4));
    total += inst.lens.back();
  }
  const Time deadline = total + rng.uniformInt(0, 8);
  const PowerProfile profile = randomProfile(deadline, 4, 0, 9, rng);

  const auto pseudo = solveSingleProcPseudo(inst, profile, deadline);
  const auto poly = solveSingleProcPoly(inst, profile, deadline);
  EXPECT_EQ(pseudo.cost, poly.cost);
  EXPECT_EQ(pseudo.cost, crossCheckCost(inst, profile, pseudo.starts));
  EXPECT_EQ(poly.cost, crossCheckCost(inst, profile, poly.starts));

  const EnhancedGraph gc =
      makeChainGc(inst.lens, inst.idlePower, inst.workPower);
  const BnbResult exact = solveExact(gc, profile, deadline);
  ASSERT_TRUE(exact.provedOptimal);
  EXPECT_EQ(exact.cost, pseudo.cost);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, DpEquivalence,
                         ::testing::Range(0, 30));

TEST(SingleProcDp, ExtractionFromEnhancedGraph) {
  const EnhancedGraph gc = makeChainGc({4, 2, 7}, 3, 9);
  const SingleProcInstance inst = singleProcInstanceFrom(gc);
  EXPECT_EQ(inst.lens, (std::vector<Time>{4, 2, 7}));
  EXPECT_EQ(inst.idlePower, 3);
  EXPECT_EQ(inst.workPower, 9);
}

TEST(SingleProcDp, ExtractionRejectsMultiprocGraphs) {
  const EnhancedGraph gc =
      testing::makeGc({{0, 1}, {1, 1}}, {}, {1, 1}, {1, 1});
  EXPECT_THROW(singleProcInstanceFrom(gc), PreconditionError);
}

} // namespace
} // namespace cawo
