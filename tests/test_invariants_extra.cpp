// Additional cross-cutting invariants: greedy placement grid membership,
// large-magnitude arithmetic, energy accounting identities, and a
// paper-scale (72-node) platform run.

#include <gtest/gtest.h>

#include "util/require.hpp"

#include <algorithm>
#include <set>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "core/est_lst.hpp"
#include "core/greedy.hpp"
#include "core/interval_refinement.hpp"
#include "heft/heft.hpp"
#include "profile/scenario.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "test_util.hpp"
#include "workflow/generators.hpp"

namespace cawo {
namespace {

TEST(GreedyInvariants, StartsLieOnTheCandidateGrid) {
  // Every greedy start must be either an interval begin of the (refined)
  // working grid, a boundary created by an earlier task's start/end split,
  // or the task's EST fallback. Verify against the superset of candidates.
  Rng rng(271828);
  const EnhancedGraph gc = testing::makeGc(
      {{0, 4}, {1, 3}, {0, 5}, {1, 2}, {2, 6}},
      {{0, 2}, {1, 3}}, {1, 2, 3}, {4, 5, 6});
  const Time deadline = asapMakespan(gc) * 2;
  const PowerProfile profile = testing::randomProfile(deadline, 5, 0, 20, rng);

  for (const bool refined : {false, true}) {
    GreedyOptions opts;
    opts.refined = refined;
    const Schedule s = scheduleGreedy(gc, profile, deadline, opts);

    std::set<Time> grid;
    if (refined) {
      for (const Interval& iv : refineIntervals(gc, profile, 3))
        grid.insert(iv.begin);
    } else {
      for (const Interval& iv : profile.intervals()) grid.insert(iv.begin);
    }
    const auto est = computeEst(gc);
    // Splits introduced by placed tasks add their start/end times.
    for (TaskId u = 0; u < gc.numNodes(); ++u) {
      grid.insert(s.start(u));
      grid.insert(s.end(u, gc));
    }
    for (TaskId u = 0; u < gc.numNodes(); ++u) {
      const bool onGrid = grid.count(s.start(u)) > 0;
      const bool atEst = s.start(u) >= est[static_cast<std::size_t>(u)];
      EXPECT_TRUE(onGrid && atEst)
          << "node " << u << " starts off-grid at " << s.start(u);
    }
  }
}

TEST(LargeValues, CostArithmeticStaysExactNearBigMagnitudes) {
  // Megawatt-scale powers over a long horizon: products approach 1e15 and
  // must agree between the sweep evaluator and the reference.
  const Power bigIdle = 1'000'000;
  const Power bigWork = 9'000'000;
  const EnhancedGraph gc = testing::makeChainGc({500, 700}, bigIdle, bigWork);
  PowerProfile profile;
  profile.appendInterval(600, 500'000);
  profile.appendInterval(900, 12'000'000);
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 500);
  const Cost sweep = evaluateCost(gc, profile, s);
  const Cost reference = evaluateCostReference(gc, profile, s);
  EXPECT_EQ(sweep, reference);
  EXPECT_GT(sweep, 0);
}

TEST(EnergyAccounting, GreenPlusBrownEqualsConsumption) {
  // Total platform energy = Σ_t P_t must split exactly into green and
  // brown parts reported by the breakdown.
  Rng rng(5150);
  const EnhancedGraph gc = testing::makeGc(
      {{0, 3}, {1, 4}, {0, 2}}, {{0, 2}}, {2, 3}, {5, 7});
  const Time deadline = asapMakespan(gc) + 10;
  const PowerProfile profile = testing::randomProfile(deadline, 4, 0, 20, rng);
  const Schedule s = testing::randomSchedule(gc, deadline, rng);
  const CostBreakdown b = evaluateCostBreakdown(gc, profile, s);

  Cost consumed = gc.totalIdlePower() * profile.horizon();
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    consumed += static_cast<Cost>(gc.workPower(gc.procOf(u))) * gc.len(u);
  EXPECT_EQ(b.greenEnergyUsed + b.brownEnergyUsed, consumed);
  EXPECT_EQ(b.brownEnergyUsed, b.total);
}

TEST(PaperScale, SmallPaperClusterRunsEndToEnd) {
  // The actual 72-node cluster of the paper (6 types × 12 nodes) with a
  // mid-sized workflow: the full pipeline must hold its invariants at
  // this processor count too (hundreds of link processors).
  WorkflowGenOptions gopts;
  gopts.targetTasks = 300;
  gopts.seed = 31337;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, gopts);
  const Platform pf = Platform::paperSmall();
  ASSERT_EQ(pf.numProcessors(), 72);

  const HeftResult heft = runHeft(g, pf);
  const EnhancedGraph gc =
      EnhancedGraph::build(g, pf, heft.mapping, {}, &heft.startTimes);
  EXPECT_GT(gc.numLinks(), 0);

  const Time deadline = 2 * asapMakespan(gc);
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  const PowerProfile profile = generateScenario(
      Scenario::S1, deadline, gc.totalIdlePower(), sumWork, {24, 0.1, 8});

  const Schedule asap = scheduleAsap(gc);
  const Cost asapCost = evaluateCost(gc, profile, asap);
  const Schedule tuned = runVariant(gc, profile, deadline,
                                    VariantSpec::parse("pressWR-LS"));
  const auto valid = validateSchedule(gc, tuned, deadline);
  ASSERT_TRUE(valid.ok) << valid.message;
  EXPECT_LE(evaluateCost(gc, profile, tuned), asapCost);
}

TEST(GreedyInvariants, ZeroSlackInstanceEqualsAsap) {
  // With deadline == ASAP makespan on a single chain there is no choice:
  // every variant must reproduce the ASAP schedule exactly.
  const EnhancedGraph gc = testing::makeChainGc({3, 4, 5}, 1, 2);
  const Time deadline = asapMakespan(gc);
  const PowerProfile profile = PowerProfile::uniform(deadline, 3);
  const Schedule asap = scheduleAsap(gc);
  for (const VariantSpec& v : allVariants()) {
    const Schedule s = runVariant(gc, profile, deadline, v);
    for (TaskId u = 0; u < gc.numNodes(); ++u)
      EXPECT_EQ(s.start(u), asap.start(u)) << v.name();
  }
}

TEST(GreedyInvariants, SingleIntervalProfileIsCostNeutral) {
  // A flat profile makes every placement equivalent cost-wise; the greedy
  // must still produce a feasible schedule and the LS must not cycle.
  const EnhancedGraph gc = testing::makeGc(
      {{0, 3}, {1, 4}, {0, 2}}, {{0, 1}}, {1, 1}, {2, 2});
  const Time deadline = asapMakespan(gc) * 3;
  const PowerProfile profile = PowerProfile::uniform(deadline, 100);
  for (const VariantSpec& v : allVariants()) {
    const Schedule s = runVariant(gc, profile, deadline, v);
    EXPECT_TRUE(validateSchedule(gc, s, deadline).ok) << v.name();
    EXPECT_EQ(evaluateCost(gc, profile, s), 0) << v.name();
  }
}

TEST(InstanceGrid, IntervalCountIsHonoured) {
  InstanceSpec spec;
  spec.targetTasks = 40;
  spec.nodesPerType = 1;
  spec.numIntervals = 7;
  spec.seed = 3;
  const Instance inst = buildInstance(spec);
  EXPECT_LE(inst.profile.numIntervals(), 7u);
  EXPECT_EQ(inst.profile.horizon(), inst.deadline);
}

} // namespace
} // namespace cawo
