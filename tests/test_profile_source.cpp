// The spec-driven profile-source layer (profile/profile_source.hpp):
// spec parsing and round-trips, rejection of malformed specs, the
// registry's resolution and error reporting, scenario-axis list
// splitting, the behaviour of every built-in source (including trace
// tiling/scaling/normalisation and the "+noise" modifier), a property
// test over all registered sources, and byte-exact golden parity of the
// S1–S4 profiles against the pre-registry generator.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/json.hpp"
#include "profile/profile_io.hpp"
#include "profile/profile_source.hpp"
#include "profile/scenario.hpp"
#include "sim/instance.hpp"
#include "util/require.hpp"

namespace cawo {
namespace {

ProfileRequest testRequest(Time horizon = 240) {
  ProfileRequest req;
  req.horizon = horizon;
  req.sumIdle = 100;
  req.sumWork = 200;
  req.numIntervals = 12;
  req.seed = 42;
  return req;
}

constexpr Power kMin = 100;                    // Σ idle
constexpr Power kMax = 100 + (8 * 200) / 10;   // Σ idle + 80 % work

/// Write a small trace CSV into gtest's temp dir and return its path.
std::string writeTempTrace(const std::string& name,
                           const std::vector<std::pair<Time, Power>>& ivs) {
  const std::string path = ::testing::TempDir() + name;
  PowerProfile p;
  for (const auto& [len, green] : ivs) p.appendInterval(len, green);
  writeProfileCsvFile(path, p);
  return path;
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(ProfileSpec, ParsesBareSourceNames) {
  const ProfileSpec spec = ProfileSpec::parse("S1");
  EXPECT_EQ(spec.source, "S1");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_FALSE(spec.hasNoise);
  EXPECT_EQ(spec.text, "S1");
}

TEST(ProfileSpec, ParsesParametersAndPositionals) {
  const ProfileSpec sine =
      ProfileSpec::parse("sine:period=24,amp=0.5,phase=6");
  EXPECT_EQ(sine.source, "sine");
  ASSERT_EQ(sine.params.size(), 3u);
  EXPECT_EQ(sine.param("period", ""), "24");
  EXPECT_DOUBLE_EQ(sine.paramDouble("amp", 0.0), 0.5);
  EXPECT_EQ(sine.paramInt("phase", 0), 6);
  EXPECT_FALSE(sine.hasParam("mid"));
  EXPECT_DOUBLE_EQ(sine.paramDouble("mid", 0.25), 0.25);

  const ProfileSpec trace =
      ProfileSpec::parse("trace:examples/grid_trace.csv,repeat=1");
  EXPECT_EQ(trace.source, "trace");
  ASSERT_EQ(trace.params.size(), 2u);
  EXPECT_EQ(trace.params[0].key, "");
  EXPECT_EQ(trace.params[0].value, "examples/grid_trace.csv");
  EXPECT_EQ(trace.paramInt("repeat", 0), 1);
}

TEST(ProfileSpec, ParsesNoiseModifier) {
  const ProfileSpec plain = ProfileSpec::parse("duck+noise=0.2");
  EXPECT_EQ(plain.source, "duck");
  EXPECT_TRUE(plain.hasNoise);
  EXPECT_DOUBLE_EQ(plain.noise, 0.2);
  EXPECT_FALSE(plain.hasNoiseSeed);

  const ProfileSpec seeded =
      ProfileSpec::parse("ramp:from=0.2,to=0.9+noise=0.1,seed=77");
  EXPECT_EQ(seeded.source, "ramp");
  ASSERT_EQ(seeded.params.size(), 2u);
  EXPECT_DOUBLE_EQ(seeded.paramDouble("to", 0.0), 0.9);
  EXPECT_TRUE(seeded.hasNoise);
  EXPECT_DOUBLE_EQ(seeded.noise, 0.1);
  EXPECT_TRUE(seeded.hasNoiseSeed);
  EXPECT_EQ(seeded.noiseSeed, 77u);
}

TEST(ProfileSpec, CanonicalRoundTrips) {
  for (const char* text :
       {"S1", "constant:level=0.6", "sine:period=24,amp=0.5,phase=6",
        "ramp:from=0.2,to=0.9", "duck", "trace:examples/grid_trace.csv",
        "trace:path=g.csv,repeat=1,normalize=1", "S2+noise=0.25,seed=9",
        "duck+noise=0.1", "duck+noise=0.123456789"}) {
    const ProfileSpec spec = ProfileSpec::parse(text);
    const ProfileSpec again = ProfileSpec::parse(spec.canonical());
    EXPECT_EQ(again.source, spec.source) << text;
    ASSERT_EQ(again.params.size(), spec.params.size()) << text;
    for (std::size_t i = 0; i < spec.params.size(); ++i) {
      EXPECT_EQ(again.params[i].key, spec.params[i].key) << text;
      EXPECT_EQ(again.params[i].value, spec.params[i].value) << text;
    }
    EXPECT_EQ(again.hasNoise, spec.hasNoise) << text;
    EXPECT_DOUBLE_EQ(again.noise, spec.noise) << text;
    EXPECT_EQ(again.hasNoiseSeed, spec.hasNoiseSeed) << text;
    EXPECT_EQ(again.noiseSeed, spec.noiseSeed) << text;
  }
}

TEST(ProfileSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)ProfileSpec::parse(""), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("   "), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("sine:"), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse(":level=0.5"), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("constant:=0.5"),
               PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("constant:level="),
               PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("sine:amp=0.5,,period=4"),
               PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("S1+noise="), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("S1+noise=abc"), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("S1+noise=1.5"), PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("S1+noise=0.1,sid=3"),
               PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("S1+noise=0.1,seed=-3"),
               PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("+noise=0.1"), PreconditionError);
  // Duplicates would silently run with the first value only.
  EXPECT_THROW((void)ProfileSpec::parse("sine:amp=0.3,amp=0.6"),
               PreconditionError);
  EXPECT_THROW((void)ProfileSpec::parse("S1+noise=0.1,seed=2,seed=3"),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Axis-list splitting
// ---------------------------------------------------------------------------

TEST(SplitSpecList, GluesParameterFragmentsToTheirSpec) {
  EXPECT_EQ(splitSpecList("S1,S2"),
            (std::vector<std::string>{"S1", "S2"}));
  EXPECT_EQ(
      splitSpecList("S1,sine:period=24,amp=0.5,duck"),
      (std::vector<std::string>{"S1", "sine:period=24,amp=0.5", "duck"}));
  EXPECT_EQ(splitSpecList(
                "duck+noise=0.2,seed=4,trace:g.csv,repeat=1,S3"),
            (std::vector<std::string>{"duck+noise=0.2,seed=4",
                                      "trace:g.csv,repeat=1", "S3"}));
  EXPECT_EQ(splitSpecList(" S4 "), (std::vector<std::string>{"S4"}));
  EXPECT_TRUE(splitSpecList("").empty());
  // A parameter fragment with no spec to attach to is an error, not a
  // silently invented scenario.
  EXPECT_THROW((void)splitSpecList("amp=0.5,S1"), PreconditionError);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ProfileSourceRegistry, ListsBuiltinsInCanonicalOrder) {
  const auto names = ProfileSourceRegistry::global().names();
  EXPECT_EQ(names,
            (std::vector<std::string>{"S1", "S2", "S3", "S4", "constant",
                                      "sine", "ramp", "duck", "trace"}));
  EXPECT_TRUE(ProfileSourceRegistry::global().contains("duck"));
  EXPECT_FALSE(ProfileSourceRegistry::global().contains("S5"));
}

TEST(ProfileSourceRegistry, ResolveRejectsUnknownSourcesListingSyntax) {
  try {
    (void)ProfileSourceRegistry::global().resolve("solar:tilt=30");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("solar"), std::string::npos);
    EXPECT_NE(message.find("constant:level=L"), std::string::npos);
    EXPECT_NE(message.find("+noise=A"), std::string::npos);
  }
}

TEST(ProfileSourceRegistry, RejectsDuplicateAndMalformedRegistrations) {
  ProfileSourceRegistry registry;
  const auto gen = [](const ProfileSpec&, const ProfileRequest& req) {
    return PowerProfile::uniform(req.horizon, 1);
  };
  registry.registerSource({"mine", "mine", "test"}, gen);
  EXPECT_THROW(registry.registerSource({"mine", "mine", "again"}, gen),
               PreconditionError);
  EXPECT_THROW(registry.registerSource({"", "x", "x"}, gen),
               PreconditionError);
  EXPECT_THROW(registry.registerSource({"a:b", "x", "x"}, gen),
               PreconditionError);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"mine"}));
}

TEST(ProfileSourceRegistry, GeneratorsMustCoverTheHorizonExactly) {
  ProfileSourceRegistry registry;
  registry.registerSource(
      {"short", "short", "covers half the horizon"},
      [](const ProfileSpec&, const ProfileRequest& req) {
        return PowerProfile::uniform(req.horizon / 2, 1);
      });
  EXPECT_THROW(
      (void)registry.generate(ProfileSpec::parse("short"), testRequest()),
      InvariantError);
}

TEST(ProfileSourceRegistry, UnknownParametersAreRejectedPerSource) {
  EXPECT_THROW((void)generateProfile("constant:lvel=0.6", testRequest()),
               PreconditionError);
  EXPECT_THROW((void)generateProfile("S1:level=0.5", testRequest()),
               PreconditionError);
  EXPECT_THROW((void)generateProfile("duck:period=3", testRequest()),
               PreconditionError);
  EXPECT_THROW((void)generateProfile("constant:0.5", testRequest()),
               PreconditionError); // positional only for trace
}

// `scenarioFromName` stays the closed-enum accessor, but its error now
// advertises the open spec grammar.
TEST(ProfileSourceRegistry, ScenarioFromNameErrorListsRegisteredSpecs) {
  try {
    (void)scenarioFromName("S9");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("sine:period="), std::string::npos);
    EXPECT_NE(message.find("trace:file.csv"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Property test over every registered source
// ---------------------------------------------------------------------------

TEST(ProfileSourceProperty, EverySourceCoversTheHorizonContiguously) {
  const std::string tracePath = writeTempTrace(
      "property_trace.csv", {{7, 30}, {11, 0}, {5, 90}});
  for (const std::string& name : ProfileSourceRegistry::global().names()) {
    const std::string spec =
        name == "trace" ? "trace:" + tracePath + ",repeat=1" : name;
    for (const Time horizon : {Time{1}, Time{7}, Time{240}, Time{1001}}) {
      const PowerProfile p = generateProfile(spec, testRequest(horizon));
      EXPECT_EQ(p.horizon(), horizon) << spec;
      Time expectedBegin = 0;
      for (const Interval& iv : p.intervals()) {
        EXPECT_EQ(iv.begin, expectedBegin) << spec << " horizon " << horizon;
        EXPECT_GT(iv.length(), 0) << spec;
        EXPECT_GE(iv.green, 0) << spec;
        expectedBegin = iv.end;
      }
      EXPECT_EQ(expectedBegin, horizon) << spec;
    }
  }
}

TEST(ProfileSourceProperty, ShapeSourcesStayInsideThePowerBand) {
  for (const char* spec :
       {"S1", "S2", "S3", "S4", "constant:level=0.8", "sine:amp=0.9",
        "ramp:from=0.1,to=1.0", "duck", "duck+noise=0.3"}) {
    const PowerProfile p = generateProfile(spec, testRequest());
    for (const Interval& iv : p.intervals()) {
      EXPECT_GE(iv.green, kMin) << spec;
      EXPECT_LE(iv.green, kMax) << spec;
    }
  }
}

TEST(ProfileSourceProperty, GenerationIsDeterministicPerSeed) {
  for (const char* spec : {"S1", "duck+noise=0.2", "sine:amp=0.4+noise=0.1"}) {
    const PowerProfile a = generateProfile(spec, testRequest());
    const PowerProfile b = generateProfile(spec, testRequest());
    ASSERT_EQ(a.numIntervals(), b.numIntervals()) << spec;
    for (std::size_t j = 0; j < a.numIntervals(); ++j)
      EXPECT_EQ(a.interval(j).green, b.interval(j).green) << spec;
  }
}

// A spec with an explicit `seed=` must be bit-identical no matter which
// surface resolved it: direct registry resolution, the one-call
// generateProfile path, and campaign-style splitSpecList axis expansion
// (where the spec's own commas are re-glued) all feed the same generator
// with the same seed — and the request's seed must not leak in.
TEST(ProfileSourceProperty, ExplicitNoiseSeedIsDeterministicAcrossSurfaces) {
  for (const char* specText :
       {"S1+noise=0.2,seed=77", "duck+noise=0.3,seed=77",
        "sine:period=6,amp=0.4+noise=0.25,seed=77"}) {
    const ProfileSourceRegistry& registry = ProfileSourceRegistry::global();

    // Direct resolution.
    const PowerProfile direct =
        registry.generate(registry.resolve(specText), testRequest());

    // Axis expansion: the spec travels through a comma-separated scenario
    // list and must come back out verbatim.
    const std::vector<std::string> axis =
        splitSpecList(std::string("S4,") + specText + ",constant:level=0.5");
    ASSERT_EQ(axis.size(), 3u) << specText;
    ASSERT_EQ(axis[1], specText);
    const PowerProfile viaAxis = generateProfile(axis[1], testRequest());

    // A different request seed must not change anything — the explicit
    // spec seed wins.
    ProfileRequest otherSeed = testRequest();
    otherSeed.seed = 0xDEADBEEFULL;
    const PowerProfile viaOtherRequest = generateProfile(specText, otherSeed);

    ASSERT_EQ(direct.numIntervals(), viaAxis.numIntervals()) << specText;
    ASSERT_EQ(direct.numIntervals(), viaOtherRequest.numIntervals())
        << specText;
    for (std::size_t j = 0; j < direct.numIntervals(); ++j) {
      const Interval& iv = direct.interval(j);
      EXPECT_EQ(iv.begin, viaAxis.interval(j).begin) << specText;
      EXPECT_EQ(iv.green, viaAxis.interval(j).green) << specText;
      EXPECT_EQ(iv.green, viaOtherRequest.interval(j).green) << specText;
    }
  }
}

// ---------------------------------------------------------------------------
// Golden parity of the paper scenarios
// ---------------------------------------------------------------------------

TEST(ProfileSourceGolden, PaperScenariosMatchGenerateScenarioBitForBit) {
  for (int s = 0; s < 4; ++s) {
    const auto scenario = static_cast<Scenario>(s);
    const PowerProfile expected =
        generateScenario(scenario, 240, 100, 200, {12, 0.1, 42});
    const PowerProfile actual =
        generateProfile(scenarioName(scenario), testRequest());
    ASSERT_EQ(actual.numIntervals(), expected.numIntervals());
    for (std::size_t j = 0; j < expected.numIntervals(); ++j) {
      EXPECT_EQ(actual.interval(j).begin, expected.interval(j).begin);
      EXPECT_EQ(actual.interval(j).end, expected.interval(j).end);
      EXPECT_EQ(actual.interval(j).green, expected.interval(j).green);
    }
  }
}

TEST(ProfileSourceGolden, PaperScenariosMatchThePreRefactorDump) {
  // tests/golden/s1_s4_profiles.txt was captured from the generator as it
  // existed before the ProfileSource layer: "<name>: <len>/<green> ...".
  std::ifstream in(std::string(CAWO_SOURCE_DIR) +
                   "/tests/golden/s1_s4_profiles.txt");
  ASSERT_TRUE(in.good()) << "golden profile dump missing";
  std::string line;
  int checked = 0;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    ASSERT_FALSE(name.empty());
    name.pop_back(); // strip the ':'
    const PowerProfile p = generateProfile(name, testRequest());
    std::size_t j = 0;
    std::string cell;
    while (fields >> cell) {
      const auto slash = cell.find('/');
      ASSERT_NE(slash, std::string::npos);
      ASSERT_LT(j, p.numIntervals()) << name;
      EXPECT_EQ(p.interval(j).length(),
                std::stoll(cell.substr(0, slash))) << name << " #" << j;
      EXPECT_EQ(p.interval(j).green,
                std::stoll(cell.substr(slash + 1))) << name << " #" << j;
      ++j;
    }
    EXPECT_EQ(j, p.numIntervals()) << name;
    ++checked;
  }
  EXPECT_EQ(checked, 4);
}

// ---------------------------------------------------------------------------
// Source behaviour
// ---------------------------------------------------------------------------

TEST(ProfileSourceShapes, ConstantSitsAtItsLevel) {
  const PowerProfile p = generateProfile("constant:level=0.5", testRequest());
  for (const Interval& iv : p.intervals())
    EXPECT_EQ(iv.green, kMin + (kMax - kMin) / 2);
  EXPECT_THROW((void)generateProfile("constant:level=1.5", testRequest()),
               PreconditionError);
}

TEST(ProfileSourceShapes, RampRisesFromTo) {
  const PowerProfile p =
      generateProfile("ramp:from=0.0,to=1.0", testRequest());
  for (std::size_t j = 1; j < p.numIntervals(); ++j)
    EXPECT_GT(p.interval(j).green, p.interval(j - 1).green);
  EXPECT_LT(p.interval(0).green, kMin + (kMax - kMin) / 10);
  EXPECT_GT(p.intervals().back().green, kMax - (kMax - kMin) / 10);
}

TEST(ProfileSourceShapes, SinePeriodControlsTheCycleCount) {
  // period = J/2 → two full cycles: interval 0 and interval 6 see the
  // same phase (12 intervals over the horizon).
  const PowerProfile p =
      generateProfile("sine:period=6,amp=0.5", testRequest());
  ASSERT_EQ(p.numIntervals(), 12u);
  EXPECT_EQ(p.interval(0).green, p.interval(6).green);
  EXPECT_THROW((void)generateProfile("sine:period=0", testRequest()),
               PreconditionError);
  EXPECT_THROW((void)generateProfile("sine:amp=2", testRequest()),
               PreconditionError);
}

TEST(ProfileSourceShapes, DuckHasAMiddayBellyAndEveningTrough) {
  const PowerProfile p = generateProfile("duck", testRequest());
  ASSERT_EQ(p.numIntervals(), 12u);
  const Power belly = p.interval(6).green;    // x ≈ 0.54
  const Power trough = p.interval(9).green;   // x ≈ 0.80
  const Power overnight = p.interval(0).green;
  EXPECT_GT(belly, overnight);
  EXPECT_LT(trough, overnight);
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(ProfileSourceTrace, ReadsClipsAndTiles) {
  const std::string path =
      writeTempTrace("clip_trace.csv", {{100, 10}, {100, 20}, {100, 30}});

  // Exact coverage: intervals come through verbatim.
  const PowerProfile exact = generateProfile("trace:" + path,
                                             testRequest(300));
  ASSERT_EQ(exact.numIntervals(), 3u);
  EXPECT_EQ(exact.interval(1).green, 20);

  // Longer trace than horizon: clipped to exactly the horizon.
  const PowerProfile clipped =
      generateProfile("trace:" + path, testRequest(250));
  EXPECT_EQ(clipped.horizon(), 250);
  EXPECT_EQ(clipped.intervals().back().length(), 50);
  EXPECT_EQ(clipped.intervals().back().green, 30);

  // Shorter trace: an error without repeat=1, tiled with it.
  EXPECT_THROW((void)generateProfile("trace:" + path, testRequest(700)),
               PreconditionError);
  const PowerProfile tiled =
      generateProfile("trace:" + path + ",repeat=1", testRequest(700));
  EXPECT_EQ(tiled.horizon(), 700);
  ASSERT_EQ(tiled.numIntervals(), 7u);
  EXPECT_EQ(tiled.interval(3).green, 10); // second copy of the trace
  EXPECT_EQ(tiled.intervals().back().length(), 100);

  EXPECT_THROW((void)generateProfile("trace:/no/such/file.csv",
                                     testRequest()),
               PreconditionError);
  EXPECT_THROW((void)generateProfile("trace:repeat=1", testRequest()),
               PreconditionError); // no path
}

TEST(ProfileSourceTrace, ScalesAndNormalises) {
  const std::string path =
      writeTempTrace("scale_trace.csv", {{120, 10}, {120, 40}});

  const PowerProfile scaled =
      generateProfile("trace:" + path + ",scale=2.5", testRequest());
  EXPECT_EQ(scaled.interval(0).green, 25);
  EXPECT_EQ(scaled.interval(1).green, 100);

  // normalize=1 maps the trace's own [min, max] onto [Σidle, Σidle+0.8Σwork].
  const PowerProfile normed =
      generateProfile("trace:" + path + ",normalize=1", testRequest());
  EXPECT_EQ(normed.interval(0).green, kMin);
  EXPECT_EQ(normed.interval(1).green, kMax);

  // A flat trace normalises to the band midpoint, not a 0/0.
  const std::string flat =
      writeTempTrace("flat_trace.csv", {{240, 7}});
  const PowerProfile mid =
      generateProfile("trace:" + flat + ",normalize=1", testRequest());
  EXPECT_EQ(mid.interval(0).green, kMin + (kMax - kMin) / 2);

  // Calibration uses the *full* trace range even when the horizon clips
  // the window: the short-horizon profile sees only the global-min
  // interval, which still maps to the band floor (a clipped-window
  // min/max would flatten it to the midpoint).
  const PowerProfile clipped =
      generateProfile("trace:" + path + ",normalize=1", testRequest(120));
  ASSERT_EQ(clipped.numIntervals(), 1u);
  EXPECT_EQ(clipped.interval(0).green, kMin);

  EXPECT_THROW((void)generateProfile(
                   "trace:" + path + ",scale=2,normalize=1", testRequest()),
               PreconditionError);
  EXPECT_THROW((void)generateProfile("trace:" + path + ",scale=0",
                                     testRequest()),
               PreconditionError);
}

TEST(ProfileSourceTrace, NoiseIsSeededAndNonNegative) {
  const std::string path =
      writeTempTrace("noise_trace.csv", {{80, 5}, {80, 50}, {80, 500}});
  const std::string base = "trace:" + path;

  const PowerProfile clean = generateProfile(base, testRequest());
  const PowerProfile a =
      generateProfile(base + "+noise=0.3,seed=5", testRequest());
  const PowerProfile b =
      generateProfile(base + "+noise=0.3,seed=5", testRequest());
  const PowerProfile c =
      generateProfile(base + "+noise=0.3,seed=6", testRequest());

  bool anyPerturbed = false, anyDiffers = false;
  for (std::size_t j = 0; j < clean.numIntervals(); ++j) {
    EXPECT_EQ(a.interval(j).green, b.interval(j).green);
    EXPECT_GE(a.interval(j).green, 0);
    anyPerturbed |= a.interval(j).green != clean.interval(j).green;
    anyDiffers |= a.interval(j).green != c.interval(j).green;
  }
  EXPECT_TRUE(anyPerturbed);
  EXPECT_TRUE(anyDiffers);
}

// ---------------------------------------------------------------------------
// Noise-modifier semantics on the paper scenarios
// ---------------------------------------------------------------------------

TEST(ProfileSourceNoise, ModifierOverridesTheLegacyPerturbation) {
  ProfileRequest req = testRequest();
  // "+noise=0" disables the Section 6.1 perturbation: S4 becomes exactly
  // flat at the band midpoint.
  const PowerProfile flat = generateProfile("S4+noise=0", req);
  for (const Interval& iv : flat.intervals())
    EXPECT_EQ(iv.green, flat.interval(0).green);

  // "+noise=A,seed=N" decouples the noise stream from the request seed.
  req.seed = 1;
  const PowerProfile a = generateProfile("S1+noise=0.1,seed=123", req);
  req.seed = 2;
  const PowerProfile b = generateProfile("S1+noise=0.1,seed=123", req);
  for (std::size_t j = 0; j < a.numIntervals(); ++j)
    EXPECT_EQ(a.interval(j).green, b.interval(j).green);
}

// ---------------------------------------------------------------------------
// End to end: instances and campaigns on non-enum specs
// ---------------------------------------------------------------------------

TEST(ProfileSourceEndToEnd, InstancesBuildFromAnySpec) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Eager;
  spec.targetTasks = 25;
  spec.nodesPerType = 1;
  spec.scenario = "sine:period=4,amp=0.5+noise=0.05";
  spec.deadlineFactor = 2.0;
  spec.numIntervals = 8;
  spec.seed = 9;
  const Instance inst = buildInstance(spec);
  EXPECT_EQ(inst.profile.horizon(), inst.deadline);
  EXPECT_EQ(inst.spec.label(),
            "eager-25/c1/sine:period=4,amp=0.5+noise=0.05/d2.0");
}

TEST(ProfileSourceEndToEnd, CampaignsMixPaperShapeAndTraceSpecs) {
  const std::string path = writeTempTrace(
      "campaign_trace.csv", {{500, 40}, {500, 400}, {500, 150}});
  CampaignSpec spec;
  spec.name = "mixed";
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "tasks", "25");
  setCampaignKey(spec, "nodes-per-type", "1");
  setCampaignKey(spec, "scenarios",
                 "S1,sine:period=8,amp=0.4,duck,trace:" + path +
                     ",repeat=1,normalize=1");
  setCampaignKey(spec, "deadline-factors", "1.5");
  setCampaignKey(spec, "seeds", "3");
  setCampaignKey(spec, "intervals", "8");
  setCampaignKey(spec, "algos", "ASAP,pressWR-LS");

  ASSERT_EQ(spec.scenarios.size(), 4u);
  EXPECT_EQ(spec.scenarios[1], "sine:period=8,amp=0.4");
  EXPECT_EQ(spec.cellCount(), 4u);

  const CampaignOutcome outcome = runCampaign(spec);
  ASSERT_EQ(outcome.records.size(), 8u);
  for (const CampaignRecord& r : outcome.records) {
    EXPECT_FALSE(r.skipped);
    EXPECT_TRUE(r.feasible) << r.instance;
  }
  // S1 leads (canonical order), the other specs follow in axis order.
  ASSERT_EQ(outcome.scenarios.size(), 4u);
  EXPECT_EQ(outcome.scenarios[0], "S1");
  EXPECT_EQ(outcome.scenarios[1], "sine:period=8,amp=0.4");

  // The JSON document carries every spec verbatim and stays parseable.
  const JsonValue doc = JsonValue::parse(toCampaignJsonString(outcome));
  const auto& records = doc.at("records").asArray();
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(records[2].at("scenario").asString(), "sine:period=8,amp=0.4");
  EXPECT_EQ(records[4].at("scenario").asString(), "duck");
  const auto& summary = doc.at("summary").asArray();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].at("median_ratio_by_scenario").objectKeys().size(),
            4u);
}

TEST(ProfileSourceEndToEnd, CampaignRejectsBadSpecsAtParseTime) {
  CampaignSpec spec;
  EXPECT_THROW(setCampaignKey(spec, "scenarios", "S1,solar:tilt=30"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "scenarios", "sine:"),
               PreconditionError);
  // The axis is dry-run validated, so parameter typos, out-of-range
  // values and unreadable trace files also fail before any sweep starts.
  EXPECT_THROW(setCampaignKey(spec, "scenarios", "S1,sine:perod=8"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "scenarios", "sine:amp=2"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "scenarios", "trace:/no/such.csv"),
               PreconditionError);
  // The axis survived every failure untouched.
  EXPECT_EQ(spec.scenarios.size(), 4u);
}

} // namespace
} // namespace cawo
