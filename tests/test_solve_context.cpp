// The incremental scheduling engine: WindowState worklist propagation
// against the recomputeWindows oracle (bit-for-bit, including
// infeasible-slack detection), greedy parity against the paper-literal
// full-sweep formulation (which also pins that skipping the dead final
// window update cannot change the schedule), and SolveContext memoization
// parity for every artifact it caches.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/asap.hpp"
#include "core/budget_tree.hpp"
#include "core/cawosched.hpp"
#include "core/est_lst.hpp"
#include "core/greedy.hpp"
#include "core/interval_refinement.hpp"
#include "core/solve_context.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "solver/registry.hpp"
#include "test_util.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::makeGc;
using testing::randomProfile;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// A random DAG on `n` nodes spread over `numProcs` processors: every
/// candidate edge (i, j), i < j, is kept with probability ~`density`.
/// Per-processor orders follow node-index order, so chain edges always
/// point forward and the graph stays acyclic.
EnhancedGraph randomDag(int n, int numProcs, double density, Rng& rng) {
  std::vector<std::pair<ProcId, Time>> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, numProcs - 1)),
                     rng.uniformInt(1, 9)});
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.uniformReal(0.0, 1.0) < density)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  std::vector<Power> idle, work;
  for (int p = 0; p < numProcs; ++p) {
    idle.push_back(rng.uniformInt(1, 3));
    work.push_back(rng.uniformInt(1, 6));
  }
  return makeGc(tasks, edges, idle, work);
}

/// The paper-literal greedy: a verbatim copy of the pre-WindowState
/// implementation, full `recomputeWindows` sweep after *every* placement —
/// including the dead one after the last task. `scheduleGreedy` must match
/// it bit for bit, which simultaneously proves (a) the incremental window
/// maintenance reaches the same fixpoints and (b) skipping the final
/// update cannot change the schedule.
Schedule oracleGreedy(const EnhancedGraph& gc, const PowerProfile& profile,
                      Time deadline, const GreedyOptions& opts) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> est = computeEst(gc);
  std::vector<Time> lst = computeLst(gc, deadline);

  std::vector<Interval> working;
  if (opts.refined) {
    working = refineIntervals(gc, profile, opts.blockSize);
  } else {
    working.assign(profile.intervals().begin(), profile.intervals().end());
  }
  std::vector<Time> begins;
  std::vector<Power> budgets;
  for (const Interval& iv : working) {
    begins.push_back(iv.begin);
    budgets.push_back(iv.green);
  }
  BudgetTree tree(std::move(begins), std::move(budgets), profile.horizon());

  const std::vector<TaskId> order =
      scoreOrder(gc, est, lst, ScoreOptions{opts.base, opts.weighted});

  Schedule schedule(gc.numNodes());
  std::vector<bool> placed(n, false);
  for (const TaskId v : order) {
    const auto iv = static_cast<std::size_t>(v);
    const auto best = tree.maxInRange(est[iv], lst[iv]);
    const Time start = best.found ? best.begin : est[iv];
    schedule.setStart(v, start);
    placed[iv] = true;
    const ProcId p = gc.procOf(v);
    tree.consume(start, std::min(start + gc.len(v), profile.horizon()),
                 gc.idlePower(p) + gc.workPower(p));
    recomputeWindows(gc, deadline, schedule, placed, est, lst);
  }
  return schedule;
}

/// Oracle windows for the placement set of `ws`, via the full sweep.
void oracleWindows(const WindowState& ws, const Schedule& partial,
                   std::vector<Time>& est, std::vector<Time>& lst) {
  const EnhancedGraph& gc = ws.graph();
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<bool> placed(n, false);
  for (TaskId v = 0; v < gc.numNodes(); ++v)
    placed[static_cast<std::size_t>(v)] = ws.placed(v);
  est = computeEst(gc);
  lst = computeLst(gc, ws.deadline());
  recomputeWindows(gc, ws.deadline(), partial, placed, est, lst);
}

// ---------------------------------------------------------------------------
// WindowState vs the recomputeWindows oracle
// ---------------------------------------------------------------------------

TEST(WindowState, MatchesOracleAfterEveryPlacementOnRandomDags) {
  Rng rng(20260729);
  for (int round = 0; round < 40; ++round) {
    const int n = static_cast<int>(rng.uniformInt(2, 40));
    const int procs = static_cast<int>(rng.uniformInt(1, 4));
    const EnhancedGraph gc =
        randomDag(n, procs, rng.uniformReal(0.05, 0.4), rng);
    const Time deadline =
        gc.criticalPathLength() + rng.uniformInt(0, 25);

    WindowState ws(gc, deadline);
    ASSERT_EQ(ws.estAll(), computeEst(gc));
    ASSERT_EQ(ws.lstAll(), computeLst(gc, deadline));
    ASSERT_TRUE(ws.feasible());

    // Place every task in random order at a random start inside its
    // current window; after each placement the incremental windows must
    // equal the full-sweep oracle bit for bit.
    Schedule partial(gc.numNodes());
    std::vector<TaskId> order(static_cast<std::size_t>(gc.numNodes()));
    for (TaskId v = 0; v < gc.numNodes(); ++v)
      order[static_cast<std::size_t>(v)] = v;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(i) - 1))]);

    for (const TaskId v : order) {
      const Time start = ws.est(v) >= ws.lst(v)
                             ? ws.est(v)
                             : rng.uniformInt(ws.est(v), ws.lst(v));
      partial.setStart(v, start);
      ws.place(v, start);

      std::vector<Time> est, lst;
      oracleWindows(ws, partial, est, lst);
      ASSERT_EQ(ws.estAll(), est) << "EST diverged (round " << round << ")";
      ASSERT_EQ(ws.lstAll(), lst) << "LST diverged (round " << round << ")";
      std::size_t negative = 0;
      for (std::size_t k = 0; k < est.size(); ++k)
        if (est[k] > lst[k]) ++negative;
      ASSERT_EQ(ws.negativeSlackCount(), negative);
      ASSERT_TRUE(ws.feasible())
          << "placing inside the window must keep the instance feasible";
    }
    EXPECT_EQ(ws.numPlaced(), static_cast<std::size_t>(gc.numNodes()));
  }
}

TEST(WindowState, DetectsInfeasibleSlackExactlyLikeTheOracle) {
  Rng rng(77);
  bool sawInfeasible = false;
  for (int round = 0; round < 25; ++round) {
    const int n = static_cast<int>(rng.uniformInt(3, 25));
    const EnhancedGraph gc = randomDag(n, 2, 0.3, rng);
    const Time deadline = gc.criticalPathLength() + rng.uniformInt(0, 10);

    WindowState ws(gc, deadline);
    Schedule partial(gc.numNodes());
    // Deliberately place tasks far beyond their windows: the incremental
    // state must track the resulting negative slacks exactly as a full
    // resweep would (the oracle pins EST = LST = start regardless).
    for (TaskId v = 0; v < gc.numNodes(); ++v) {
      const Time start = ws.lst(v) + rng.uniformInt(1, 20);
      partial.setStart(v, start);
      ws.place(v, start);

      std::vector<Time> est, lst;
      oracleWindows(ws, partial, est, lst);
      ASSERT_EQ(ws.estAll(), est);
      ASSERT_EQ(ws.lstAll(), lst);
      std::size_t negative = 0;
      for (std::size_t k = 0; k < est.size(); ++k)
        if (est[k] > lst[k]) ++negative;
      ASSERT_EQ(ws.negativeSlackCount(), negative);
      sawInfeasible = sawInfeasible || !ws.feasible();
    }
    // Note: once *every* node is pinned, est == lst == start everywhere, so
    // the slack count legitimately returns to zero — infeasibility lives on
    // the still-unplaced nodes squeezed between pins, exactly as with the
    // oracle. The mid-run states above are where it must show.
  }
  EXPECT_TRUE(sawInfeasible)
      << "late pins never produced a squeezed unplaced node — the "
         "generator or the detection is broken";
}

TEST(WindowState, InfeasibleDeadlineIsVisibleAtConstruction) {
  const EnhancedGraph gc = makeChainGc({5, 5});
  const WindowState ws(gc, 8); // < critical path 10
  EXPECT_FALSE(ws.feasible());
  EXPECT_GT(ws.negativeSlackCount(), 0u);
}

TEST(WindowState, RejectsDoublePlacement) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  WindowState ws(gc, 20);
  ws.place(0, 0);
  EXPECT_THROW(ws.place(0, 1), PreconditionError);
}

// ---------------------------------------------------------------------------
// Greedy parity: incremental engine vs the paper-literal full sweep
// ---------------------------------------------------------------------------

TEST(GreedyParity, AllVariantsMatchTheFullSweepOracleOnRealInstances) {
  for (const std::uint64_t seed : {1ULL, 7ULL}) {
    InstanceSpec spec;
    spec.family = seed == 1 ? WorkflowFamily::Atacseq : WorkflowFamily::Eager;
    spec.targetTasks = 30;
    spec.nodesPerType = 1;
    spec.scenario = seed == 1 ? "S1" : "S3";
    spec.deadlineFactor = 1.5;
    spec.numIntervals = 8;
    spec.seed = seed;
    const Instance inst = buildInstance(spec);

    for (const VariantSpec& variant : greedyOnlyVariants()) {
      GreedyOptions opts;
      opts.base = variant.base;
      opts.weighted = variant.weighted;
      opts.refined = variant.refined;
      const Schedule incremental =
          scheduleGreedy(inst.gc, inst.profile, inst.deadline, opts);
      const Schedule oracle =
          oracleGreedy(inst.gc, inst.profile, inst.deadline, opts);
      for (TaskId v = 0; v < inst.gc.numNodes(); ++v)
        ASSERT_EQ(incremental.start(v), oracle.start(v))
            << variant.name() << " diverged at node " << v << " (seed "
            << seed << ")";
    }
  }
}

TEST(GreedyParity, RandomProfilesAndDagsMatchTheOracle) {
  Rng rng(424242);
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.uniformInt(3, 30));
    const EnhancedGraph gc = randomDag(n, 3, 0.25, rng);
    const Time deadline = gc.criticalPathLength() + rng.uniformInt(1, 30);
    const PowerProfile profile =
        randomProfile(deadline, static_cast<int>(rng.uniformInt(2, 8)), 0,
                      20, rng);
    GreedyOptions opts;
    opts.base = rng.uniformInt(0, 1) ? BaseScore::Slack : BaseScore::Pressure;
    opts.weighted = rng.uniformInt(0, 1) != 0;
    opts.refined = rng.uniformInt(0, 1) != 0;
    const Schedule incremental = scheduleGreedy(gc, profile, deadline, opts);
    const Schedule oracle = oracleGreedy(gc, profile, deadline, opts);
    for (TaskId v = 0; v < gc.numNodes(); ++v)
      ASSERT_EQ(incremental.start(v), oracle.start(v))
          << "round " << round << ", node " << v;
  }
}

// ---------------------------------------------------------------------------
// SolveContext memoization
// ---------------------------------------------------------------------------

Instance smallInstance() {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Methylseq;
  spec.targetTasks = 30;
  spec.nodesPerType = 1;
  spec.scenario = "S2";
  spec.deadlineFactor = 2.0;
  spec.numIntervals = 8;
  spec.seed = 11;
  return buildInstance(spec);
}

TEST(SolveContext, MemoizedArtifactsEqualDirectComputation) {
  const Instance inst = smallInstance();
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);

  EXPECT_EQ(ctx.initialEst(), computeEst(inst.gc));
  EXPECT_EQ(ctx.initialLst(), computeLst(inst.gc, inst.deadline));
  EXPECT_EQ(ctx.asapMakespan(), asapMakespan(inst.gc));
  EXPECT_EQ(ctx.asapMakespan(), inst.asapMakespanD);
  EXPECT_EQ(ctx.totalIdlePower(), inst.gc.totalIdlePower());

  Power sumWork = 0;
  for (ProcId p = 0; p < inst.gc.numProcs(); ++p)
    sumWork += inst.gc.workPower(p);
  EXPECT_EQ(ctx.sumWorkPower(), sumWork);

  for (const int k : {2, 3}) {
    const std::vector<Interval> direct =
        refineIntervals(inst.gc, inst.profile, k);
    const std::vector<Interval>& memo = ctx.refinedIntervals(k);
    ASSERT_EQ(memo.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(memo[i].begin, direct[i].begin);
      EXPECT_EQ(memo[i].end, direct[i].end);
      EXPECT_EQ(memo[i].green, direct[i].green);
    }
  }

  for (const BaseScore base : {BaseScore::Slack, BaseScore::Pressure})
    for (const bool weighted : {false, true}) {
      const ScoreOptions opts{base, weighted};
      EXPECT_EQ(ctx.scoreOrder(opts),
                scoreOrder(inst.gc, ctx.initialEst(), ctx.initialLst(),
                           opts));
    }
}

TEST(SolveContext, RepeatedCallsReturnTheSameObject) {
  const Instance inst = smallInstance();
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  EXPECT_EQ(&ctx.initialEst(), &ctx.initialEst());
  EXPECT_EQ(&ctx.refinedIntervals(3), &ctx.refinedIntervals(3));
  EXPECT_EQ(&ctx.scoreOrder({BaseScore::Pressure, true}),
            &ctx.scoreOrder({BaseScore::Pressure, true}));
  EXPECT_NE(&ctx.refinedIntervals(3), &ctx.refinedIntervals(4));
}

TEST(SolveContext, WindowStateIsSeededFromTheMemoizedWindows) {
  const Instance inst = smallInstance();
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  const WindowState ws = ctx.windowState();
  EXPECT_EQ(ws.estAll(), ctx.initialEst());
  EXPECT_EQ(ws.lstAll(), ctx.initialLst());
  EXPECT_TRUE(ws.feasible());
  EXPECT_EQ(ws.numPlaced(), 0u);
}

TEST(SolveContext, SharedContextRunsMatchContextFreeRuns) {
  const Instance inst = smallInstance();
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  for (const VariantSpec& variant : allVariants()) {
    VariantRunStats stats;
    const Schedule shared = runVariant(ctx, variant, {}, &stats);
    const Schedule solo =
        runVariant(inst.gc, inst.profile, inst.deadline, variant, {});
    for (TaskId v = 0; v < inst.gc.numNodes(); ++v)
      ASSERT_EQ(shared.start(v), solo.start(v))
          << variant.name() << " diverged at node " << v;
    EXPECT_EQ(stats.lsRan, variant.localSearch);
    if (stats.lsRan) {
      EXPECT_GE(stats.ls.rounds, 1u);
      EXPECT_LE(stats.ls.finalCost, stats.ls.initialCost);
    }
  }
}

TEST(SolveContext, MismatchedRequestContextIsRejected) {
  const Instance inst = smallInstance();
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);

  SolveRequest request;
  request.gc = &inst.gc;
  request.profile = &inst.profile;
  request.deadline = inst.deadline + 1; // context says inst.deadline
  request.context = &ctx;

  const SolverRegistry& registry = SolverRegistry::global();
  EXPECT_THROW((void)registry.create("press")->solve(request),
               PreconditionError);
}

} // namespace
} // namespace cawo
