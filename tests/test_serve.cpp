// The serve wire layer end to end (src/serve): every request kind
// round-trips through exp/json; malformed, oversized and unknown-kind
// input is rejected with a structured error (never a crash, never an
// empty `error` code); a cached-context solve returns the bit-identical
// schedule of a cold solve; backpressure (queue_full) and cooperative
// timeouts are pinned deterministically via the worker-start hook; and
// the `list` request returns byte-for-byte the CLI listing text.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/json.hpp"
#include "serve/context_cache.hpp"
#include "serve/listings.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "solver/registry.hpp"

namespace cawo {
namespace {

/// Submit one line and block until its (possibly worker-thread) response.
std::string submitAndWait(ServeServer& server, const std::string& line) {
  std::mutex mutex;
  std::condition_variable cv;
  std::string response;
  bool got = false;
  server.submitLine(line, [&](const std::string& r) {
    // Notify while still holding the lock: the waiter owns cv and the
    // flag on its stack, so it must not be able to wake, return and
    // destroy them between our unlock and the notify.
    const std::scoped_lock lock(mutex);
    response = r;
    got = true;
    cv.notify_one();
  });
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return got; });
  return response;
}

JsonValue submitParsed(ServeServer& server, const std::string& line) {
  return JsonValue::parse(submitAndWait(server, line));
}

void expectEnvelope(const JsonValue& doc, const std::string& id,
                    const std::string& kind, bool ok) {
  ASSERT_EQ(doc.kind(), JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("schema").asString(), "cawosched-serve-v1");
  EXPECT_EQ(doc.at("id").asString(), id);
  EXPECT_EQ(doc.at("kind").asString(), kind);
  EXPECT_EQ(doc.at("ok").asBool(), ok);
  if (ok) {
    EXPECT_EQ(doc.at("error").asString(), "");
    EXPECT_EQ(doc.at("result").kind(), JsonValue::Kind::Object);
  } else {
    EXPECT_FALSE(doc.at("error").asString().empty())
        << "error responses must carry a nonzero code";
    EXPECT_TRUE(doc.at("result").isNull());
    EXPECT_FALSE(doc.at("message").asString().empty());
  }
}

ServeOptions smallOptions() {
  ServeOptions options;
  options.workers = 2;
  options.solverDefaults.setInt("block-size", 3);
  options.solverDefaults.setInt("ls-radius", 10);
  return options;
}

const char* kSolveLine =
    "{\"kind\":\"solve\",\"id\":\"s1\",\"family\":\"atacseq\","
    "\"tasks\":30,\"intervals\":8,\"deadline_factor\":2.0,"
    "\"algo\":\"pressWR-LS\",\"return_schedule\":true}";

TEST(RequestParser, ParsesEveryKindWithTypedFields) {
  const RequestParser parser;

  const ServeRequest solve = parser.parse(
      "{\"schema\":\"cawosched-serve-v1\",\"kind\":\"solve\",\"id\":\"a\","
      "\"family\":\"eager\",\"tasks\":40,\"nodes_per_type\":3,"
      "\"scenario\":\"S3\",\"deadline_factor\":1.5,\"seed\":7,"
      "\"intervals\":12,\"algo\":\"slack\",\"timeout_ms\":250,"
      "\"return_schedule\":true,\"options\":{\"block-size\":4,"
      "\"alpha\":0.25,\"mode\":\"fast\"}}");
  EXPECT_EQ(solve.kind, ServeRequest::Kind::Solve);
  EXPECT_EQ(solve.id, "a");
  EXPECT_EQ(familyName(solve.spec.family), std::string("eager"));
  EXPECT_EQ(solve.spec.targetTasks, 40);
  EXPECT_EQ(solve.spec.nodesPerType, 3);
  EXPECT_EQ(solve.spec.scenario, "S3");
  EXPECT_DOUBLE_EQ(solve.spec.deadlineFactor, 1.5);
  EXPECT_EQ(solve.spec.seed, 7u);
  EXPECT_EQ(solve.spec.numIntervals, 12);
  EXPECT_EQ(solve.algo, "slack");
  EXPECT_EQ(solve.timeoutMs, 250);
  EXPECT_TRUE(solve.returnSchedule);
  EXPECT_EQ(solve.options.getInt("block-size", 0), 4);
  EXPECT_DOUBLE_EQ(solve.options.getDouble("alpha", 0), 0.25);
  EXPECT_EQ(solve.options.getString("mode", ""), "fast");

  const ServeRequest replay = parser.parse(
      "{\"kind\":\"replay\",\"id\":\"b\",\"policy\":\"periodic:every=4\","
      "\"actual\":\"S2\",\"runtime_noise\":0.1,\"runtime_seed\":9}");
  EXPECT_EQ(replay.kind, ServeRequest::Kind::Replay);
  EXPECT_EQ(replay.policy, "periodic:every=4");
  EXPECT_EQ(replay.actual, "S2");
  EXPECT_DOUBLE_EQ(replay.runtimeNoise, 0.1);
  EXPECT_EQ(replay.runtimeSeed, 9u);

  EXPECT_EQ(parser.parse("{\"kind\":\"list\",\"what\":\"scenarios\"}").what,
            "scenarios");
  EXPECT_EQ(parser.parse("{\"kind\":\"stats\"}").kind,
            ServeRequest::Kind::Stats);
  EXPECT_EQ(parser.parse("{\"kind\":\"shutdown\"}").kind,
            ServeRequest::Kind::Shutdown);
}

TEST(RequestParser, RejectsHostileInputWithStructuredErrors) {
  const RequestParser parser(128); // tiny oversize cap for the test

  const auto code = [&parser](const std::string& line) {
    try {
      (void)parser.parse(line);
      return std::string("(accepted)");
    } catch (const ServeError& e) {
      return e.code();
    }
  };

  EXPECT_EQ(code(std::string(200, ' ') + "{}"), "oversized");
  EXPECT_EQ(code("{\"kind\": nope}"), "parse_error");
  EXPECT_EQ(code("[1,2,3]"), "parse_error");
  EXPECT_EQ(code("{\"kind\":\"frobnicate\"}"), "unknown_kind");
  EXPECT_EQ(code("{}"), "bad_request"); // missing kind
  EXPECT_EQ(code("{\"kind\":\"solve\",\"tasks\":\"many\"}"), "bad_request");
  EXPECT_EQ(code("{\"kind\":\"solve\",\"tasks\":0}"), "bad_request");
  EXPECT_EQ(code("{\"kind\":\"solve\",\"deadline_factor\":0.5}"),
            "bad_request");
  EXPECT_EQ(code("{\"kind\":\"solve\",\"timeout_ms\":-1}"), "bad_request");
  EXPECT_EQ(code("{\"kind\":\"solve\",\"policy\":\"static\"}"),
            "bad_request"); // replay-only key on a solve
  EXPECT_EQ(code("{\"kind\":\"list\",\"what\":\"everything\"}"),
            "bad_request");
  EXPECT_EQ(code("{\"kind\":\"stats\",\"tasks\":3}"), "bad_request");
  EXPECT_EQ(code("{\"schema\":\"v0\",\"kind\":\"stats\"}"), "bad_request");

  // Best-effort id/kind attachment for correlating error responses.
  try {
    (void)parser.parse("{\"kind\":\"solve\",\"id\":\"x9\",\"nope\":1}");
    FAIL();
  } catch (const ServeError& e) {
    EXPECT_EQ(e.requestId(), "x9");
    EXPECT_EQ(e.requestKind(), "solve");
  }
}

TEST(ServeServer, EveryKindRoundTripsThroughJson) {
  ServeServer server(smallOptions());

  const JsonValue solve = submitParsed(server, kSolveLine);
  expectEnvelope(solve, "s1", "solve", true);
  const JsonValue& result = solve.at("result");
  EXPECT_EQ(result.at("instance").asString(), "atacseq-30/c2/S1/d2.0");
  EXPECT_EQ(result.at("instance_hash").asString().size(), 16u);
  EXPECT_FALSE(result.at("cache_hit").asBool());
  EXPECT_TRUE(result.at("feasible").asBool());
  EXPECT_GE(result.at("cost").asInt(), 0);
  EXPECT_GT(result.at("num_nodes").asInt(), 30);
  EXPECT_EQ(result.at("schedule").asArray().size(),
            static_cast<std::size_t>(result.at("num_nodes").asInt()));

  const JsonValue replay = submitParsed(
      server,
      "{\"kind\":\"replay\",\"id\":\"r1\",\"family\":\"atacseq\","
      "\"tasks\":30,\"intervals\":8,\"deadline_factor\":2.0,"
      "\"policy\":\"static\",\"actual\":\"S2\"}");
  expectEnvelope(replay, "r1", "replay", true);
  EXPECT_EQ(replay.at("result").at("policy").asString(), "static");
  EXPECT_EQ(replay.at("result").at("actual").asString(), "S2");
  EXPECT_TRUE(replay.at("result").at("cache_hit").asBool())
      << "the replay reuses the instance the solve just built";
  EXPECT_TRUE(replay.at("result").at("deadline_met").asBool());

  const JsonValue list =
      submitParsed(server, "{\"kind\":\"list\",\"id\":\"l1\"}");
  expectEnvelope(list, "l1", "list", true);
  // The wire shares the CLI's listing rendering byte for byte.
  EXPECT_EQ(list.at("result").at("text").asString(), algoListing().text);
  EXPECT_EQ(list.at("result").at("names").asArray().size(),
            SolverRegistry::global().names().size());

  const JsonValue stats =
      submitParsed(server, "{\"kind\":\"stats\",\"id\":\"t1\"}");
  expectEnvelope(stats, "t1", "stats", true);
  EXPECT_EQ(stats.at("result").at("completed").asInt(), 2);
  EXPECT_EQ(stats.at("result").at("cache_misses").asInt(), 1);
  EXPECT_EQ(stats.at("result").at("cache_hits").asInt(), 1);
  EXPECT_EQ(stats.at("result").at("latency").at("count").asInt(), 2);

  const JsonValue shutdown =
      submitParsed(server, "{\"kind\":\"shutdown\",\"id\":\"z1\"}");
  expectEnvelope(shutdown, "z1", "shutdown", true);
  EXPECT_TRUE(shutdown.at("result").at("stopping").asBool());
  EXPECT_TRUE(server.stopping());

  // After shutdown: solve/replay are refused, stats still answers.
  const JsonValue refused = submitParsed(server, kSolveLine);
  expectEnvelope(refused, "s1", "solve", false);
  EXPECT_EQ(refused.at("error").asString(), "shutting_down");
  expectEnvelope(submitParsed(server, "{\"kind\":\"stats\"}"), "", "stats",
                 true);
}

TEST(ServeServer, StatsDetailFullAppendsObsExtrasAfterStableKeys) {
  ServeServer server(smallOptions());
  expectEnvelope(submitParsed(server, kSolveLine), "s1", "solve", true);

  // The basic stats envelope is byte-stable: exactly these keys, in
  // exactly this order — clients pin on it.
  const std::vector<std::string> basicKeys = {
      "received",      "completed",     "failed",
      "rejected_queue_full",            "timeouts",
      "queue_depth",   "queue_capacity", "workers",
      "busy",          "cache_hits",    "cache_misses",
      "cache_evictions",               "cache_size",
      "cache_capacity", "latency"};
  const JsonValue basic =
      submitParsed(server, "{\"kind\":\"stats\",\"id\":\"b\"}");
  expectEnvelope(basic, "b", "stats", true);
  EXPECT_EQ(basic.at("result").objectKeys(), basicKeys);

  // detail:"full" appends the obs extras — same prefix, three more keys.
  const JsonValue full = submitParsed(
      server, "{\"kind\":\"stats\",\"id\":\"f\",\"detail\":\"full\"}");
  expectEnvelope(full, "f", "stats", true);
  std::vector<std::string> fullKeys = basicKeys;
  fullKeys.push_back("queue_wait");
  fullKeys.push_back("latency_histogram");
  fullKeys.push_back("queue_wait_histogram");
  EXPECT_EQ(full.at("result").objectKeys(), fullKeys);

  // The queue-wait block mirrors the latency block's shape, and the
  // histograms partition the completed requests across the bounds.
  const JsonValue& queueWait = full.at("result").at("queue_wait");
  EXPECT_EQ(queueWait.objectKeys(), full.at("result").at("latency").objectKeys());
  EXPECT_EQ(queueWait.at("count").asInt(), 1);
  const JsonValue& histogram = full.at("result").at("latency_histogram");
  const auto& bounds = histogram.at("bounds_ms").asArray();
  const auto& counts = histogram.at("counts").asArray();
  ASSERT_FALSE(bounds.empty());
  ASSERT_EQ(counts.size(), bounds.size() + 1);
  std::int64_t total = 0;
  for (const JsonValue& c : counts) total += c.asInt();
  EXPECT_EQ(total, 1);

  // Any other detail value is a structured rejection.
  const JsonValue bad = submitParsed(
      server, "{\"kind\":\"stats\",\"id\":\"x\",\"detail\":\"verbose\"}");
  expectEnvelope(bad, "x", "stats", false);
  EXPECT_EQ(bad.at("error").asString(), "bad_request");
}

TEST(ServeServer, MalformedInputYieldsErrorResponsesNotCrashes) {
  ServeOptions options = smallOptions();
  options.maxRequestBytes = 256;
  ServeServer server(options);

  const auto errorOf = [&](const std::string& line) {
    const JsonValue doc = submitParsed(server, line);
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_TRUE(doc.at("result").isNull());
    return doc.at("error").asString();
  };

  EXPECT_EQ(errorOf("{\"kind\":\"solve\"" + std::string(300, ' ') + "}"),
            "oversized");
  EXPECT_EQ(errorOf("not json at all"), "parse_error");
  EXPECT_EQ(errorOf("{\"kind\":\"frobnicate\",\"id\":\"q\"}"),
            "unknown_kind");
  EXPECT_EQ(errorOf("{\"kind\":\"solve\",\"nope\":1}"), "bad_request");
  // Unknown solver and unknown scenario travel through the worker path.
  EXPECT_EQ(errorOf("{\"kind\":\"solve\",\"algo\":\"no-such-solver\"}"),
            "bad_request");
  EXPECT_EQ(errorOf("{\"kind\":\"solve\",\"scenario\":\"no:such,spec\"}"),
            "bad_request");
  EXPECT_EQ(
      errorOf("{\"kind\":\"replay\",\"policy\":\"no-such-policy\"}"),
      "bad_request");

  // The server still works after all that.
  expectEnvelope(submitParsed(server, kSolveLine), "s1", "solve", true);
}

TEST(ServeServer, CachedSolveIsBitIdenticalToColdSolve) {
  ServeServer server(smallOptions());

  const JsonValue cold = submitParsed(server, kSolveLine);
  const JsonValue hot = submitParsed(server, kSolveLine);
  expectEnvelope(cold, "s1", "solve", true);
  expectEnvelope(hot, "s1", "solve", true);
  EXPECT_FALSE(cold.at("result").at("cache_hit").asBool());
  EXPECT_TRUE(hot.at("result").at("cache_hit").asBool())
      << "the repeated instance must skip the SolveContext rebuild";
  EXPECT_EQ(cold.at("result").at("instance_hash").asString(),
            hot.at("result").at("instance_hash").asString());
  EXPECT_EQ(cold.at("result").at("cost").asInt(),
            hot.at("result").at("cost").asInt());

  const std::vector<JsonValue>& coldStarts =
      cold.at("result").at("schedule").asArray();
  const std::vector<JsonValue>& hotStarts =
      hot.at("result").at("schedule").asArray();
  ASSERT_EQ(coldStarts.size(), hotStarts.size());
  for (std::size_t i = 0; i < coldStarts.size(); ++i)
    ASSERT_EQ(coldStarts[i].asInt(), hotStarts[i].asInt())
        << "start of node " << i
        << " differs between cold and cached solves";
}

TEST(ServeServer, QueueFullRejectsWithBackpressure) {
  // One worker held at the gate, queue capacity 1: the first job
  // occupies the worker, the second fills the queue, the third bounces.
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  ServeOptions options = smallOptions();
  options.workers = 1;
  options.queueCapacity = 1;
  options.workerStartHook = [&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return open; });
  };
  ServeServer server(options);

  std::vector<std::string> async(2);
  server.submitLine(kSolveLine,
                    [&](const std::string& r) { async[0] = r; });
  // Wait for the worker to actually pick job 1 up (block in the hook) so
  // job 2 deterministically lands in the queue.
  while (server.stats().busy == 0) std::this_thread::yield();
  server.submitLine(kSolveLine,
                    [&](const std::string& r) { async[1] = r; });

  const JsonValue rejected = submitParsed(server, kSolveLine);
  expectEnvelope(rejected, "s1", "solve", false);
  EXPECT_EQ(rejected.at("error").asString(), "queue_full");

  {
    const std::scoped_lock lock(mutex);
    open = true;
  }
  cv.notify_all();
  server.drain();
  for (const std::string& r : async) {
    const JsonValue doc = JsonValue::parse(r);
    expectEnvelope(doc, "s1", "solve", true);
  }
  EXPECT_EQ(server.stats().rejectedQueueFull, 1);
}

TEST(ServeServer, ExpiredDeadlineTimesOutCooperatively) {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  ServeOptions options = smallOptions();
  options.workers = 1;
  options.workerStartHook = [&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return open; });
  };
  ServeServer server(options);

  std::string response;
  std::mutex responseMutex;
  std::condition_variable responseCv;
  server.submitLine(
      "{\"kind\":\"solve\",\"id\":\"late\",\"tasks\":30,"
      "\"intervals\":8,\"timeout_ms\":1}",
      [&](const std::string& r) {
        {
          const std::scoped_lock lock(responseMutex);
          response = r;
        }
        responseCv.notify_one();
      });
  // Hold the worker well past the 1 ms deadline, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    const std::scoped_lock lock(mutex);
    open = true;
  }
  cv.notify_all();
  {
    std::unique_lock lock(responseMutex);
    responseCv.wait(lock, [&] { return !response.empty(); });
  }
  const JsonValue doc = JsonValue::parse(response);
  expectEnvelope(doc, "late", "solve", false);
  EXPECT_EQ(doc.at("error").asString(), "timeout");
  EXPECT_EQ(server.stats().timeouts, 1);
}

TEST(ContextCache, LruEvictsAndCountsAcrossSpecs) {
  ContextCache cache(1);
  InstanceSpec a;
  a.targetTasks = 20;
  a.numIntervals = 8;
  InstanceSpec b = a;
  b.seed = 2; // differs only in an axis label() omits — specKey must see it
  EXPECT_NE(ContextCache::specKey(a), ContextCache::specKey(b));

  bool hit = true;
  const auto ea = cache.acquire(a, &hit);
  EXPECT_FALSE(hit);
  cache.acquire(a, &hit);
  EXPECT_TRUE(hit);
  cache.acquire(b, &hit); // capacity 1: evicts a
  EXPECT_FALSE(hit);
  cache.acquire(a, &hit);
  EXPECT_FALSE(hit) << "a was evicted by b in a capacity-1 cache";

  const ContextCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 3);
  EXPECT_EQ(counters.evictions, 2);
  EXPECT_EQ(counters.size, 1u);
  // Evicted entries stay alive for holders of the shared_ptr.
  EXPECT_GT(ea->instance.gc.numNodes(), 0);
}

TEST(ResponseWriter, EnvelopeKeyOrderIsPinned) {
  const ResponseWriter writer("id7", "solve");
  const JsonValue ok = JsonValue::parse(
      writer.ok([](JsonWriter& w) { w.key("x").value(1); }));
  EXPECT_EQ(ok.objectKeys(),
            (std::vector<std::string>{"schema", "id", "kind", "ok", "error",
                                      "result"}));
  const JsonValue err = JsonValue::parse(writer.error("bad_request", "m"));
  EXPECT_EQ(err.objectKeys(),
            (std::vector<std::string>{"schema", "id", "kind", "ok", "error",
                                      "message", "result"}));
}

} // namespace
} // namespace cawo
