# Golden-output check for a bench binary: run it with fixed small-scale
# flags and require its stdout to be byte-identical to the checked-in
# golden file. Invoked from CTest (see the golden tests in CMakeLists.txt):
#
#   cmake -DBENCH=<binary> -DBENCH_ARGS="--tasks=30 ..." \
#         -DGOLDEN=<file> -P run_bench_golden.cmake
#
# The goldens were captured from the pre-ProfileSource build; any diff
# means a refactor changed experiment output, which is a bug unless the
# golden is regenerated on purpose (see tests/golden/README.md).

separate_arguments(BENCH_ARG_LIST UNIX_COMMAND "${BENCH_ARGS}")

execute_process(
  COMMAND ${BENCH} ${BENCH_ARG_LIST}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE errors
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with ${rc}: ${errors}")
endif()

file(READ ${GOLDEN} expected)

if(NOT actual STREQUAL expected)
  file(WRITE ${GOLDEN}.actual "${actual}")
  message(FATAL_ERROR
          "output of ${BENCH} ${BENCH_ARGS} diverged from ${GOLDEN} — "
          "actual output written to ${GOLDEN}.actual")
endif()
