// The parallel solve core's determinism contract (see DESIGN.md,
// "Parallel solve core"): every parallel kernel must produce the same
// bytes as its serial twin for every thread count — the fan-outs reduce
// in deterministic order (candidate index, restart index, variant index),
// never in arrival order.
//
//   * all 16 CaWoSched variants over random DAGs, batched via
//     `runVariants` at threads ∈ {1, 2, 8} and repeated runs — every
//     schedule bit-identical to the serial `runVariant` reference;
//   * multi-start local search (`localSearchRestarts`) reproducing the
//     serial best-of-N merge exactly at every thread count;
//   * the wide-window parallel candidate scan matching the serial scan
//     for both move strategies;
//   * the frozen-context contract: priming covers the fan-out, and an
//     unprimed access under freeze throws instead of racing.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/asap.hpp"
#include "core/cawosched.hpp"
#include "core/local_search.hpp"
#include "core/solve_context.hpp"
#include "test_util.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {
namespace {

using testing::makeGc;
using testing::makeIndependentGc;
using testing::randomProfile;

/// A random DAG on `n` nodes spread over `numProcs` processors (same
/// construction as the solve-context parity tests): candidate edges
/// (i, j), i < j, kept with probability `density`, so chain edges always
/// point forward and the graph stays acyclic.
EnhancedGraph randomDag(int n, int numProcs, double density, Rng& rng) {
  std::vector<std::pair<ProcId, Time>> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, numProcs - 1)),
                     rng.uniformInt(1, 9)});
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.uniformReal(0.0, 1.0) < density)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  std::vector<Power> idle, work;
  for (int p = 0; p < numProcs; ++p) {
    idle.push_back(rng.uniformInt(1, 3));
    work.push_back(rng.uniformInt(1, 6));
  }
  return makeGc(tasks, edges, idle, work);
}

struct RandomInstance {
  EnhancedGraph gc;
  PowerProfile profile;
  Time deadline = 0;
};

RandomInstance randomInstance(std::uint64_t seed) {
  Rng rng(seed);
  RandomInstance inst{randomDag(50, 3, 0.08, rng), PowerProfile{}, 0};
  inst.deadline = 2 * asapMakespan(inst.gc) + 5;
  inst.profile = randomProfile(inst.deadline, 12, 2, 14, rng);
  return inst;
}

// -------------------------------------------------------------------------
// Variant batch: 16 variants × threads {1, 2, 8} × repeated runs.
// -------------------------------------------------------------------------

TEST(ParallelDeterminism, AllVariantsBitIdenticalAcrossThreadCounts) {
  const std::vector<VariantSpec> variants = allVariants();
  ASSERT_EQ(variants.size(), 16u);
  const CaWoParams params;

  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    const RandomInstance inst = randomInstance(seed);

    // Serial reference: one throwaway context per variant, exactly the
    // single-solver code path.
    std::vector<Schedule> reference;
    for (const VariantSpec& spec : variants)
      reference.push_back(
          runVariant(inst.gc, inst.profile, inst.deadline, spec, params));

    for (const unsigned threads : {1u, 2u, 8u}) {
      const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
      const std::vector<Schedule> batch =
          runVariants(ctx, variants, params, threads);
      ASSERT_EQ(batch.size(), variants.size());
      for (std::size_t i = 0; i < variants.size(); ++i)
        EXPECT_EQ(batch[i].starts(), reference[i].starts())
            << "variant " << variants[i].name() << " diverged at threads="
            << threads << " (seed " << seed << ")";

      // Repeated run on the already-primed context: still identical —
      // nothing about a previous fan-out may leak into the next.
      const std::vector<Schedule> again =
          runVariants(ctx, variants, params, threads);
      for (std::size_t i = 0; i < variants.size(); ++i)
        EXPECT_EQ(again[i].starts(), reference[i].starts())
            << "variant " << variants[i].name()
            << " diverged on the repeated run at threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, BatchStatsMatchSerialRuns) {
  const RandomInstance inst = randomInstance(5);
  const std::vector<VariantSpec> variants = allVariants();
  const CaWoParams params;

  const SolveContext serialCtx(inst.gc, inst.profile, inst.deadline);
  std::vector<VariantRunStats> serialStats(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i)
    (void)runVariant(serialCtx, variants[i], params, &serialStats[i]);

  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  std::vector<VariantRunStats> stats;
  (void)runVariants(ctx, variants, params, 8, &stats);
  ASSERT_EQ(stats.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_EQ(stats[i].lsRan, variants[i].localSearch);
    if (!stats[i].lsRan) continue;
    // Wall times differ run to run; the search trajectory must not.
    EXPECT_EQ(stats[i].ls.rounds, serialStats[i].ls.rounds);
    EXPECT_EQ(stats[i].ls.movesApplied, serialStats[i].ls.movesApplied);
    EXPECT_EQ(stats[i].ls.initialCost, serialStats[i].ls.initialCost);
    EXPECT_EQ(stats[i].ls.finalCost, serialStats[i].ls.finalCost);
  }
}

// -------------------------------------------------------------------------
// Multi-start local search.
// -------------------------------------------------------------------------

TEST(ParallelDeterminism, RestartsReproduceSerialBestOfNExactly) {
  const RandomInstance inst = randomInstance(31);
  const Schedule base = runVariant(inst.gc, inst.profile, inst.deadline,
                                   VariantSpec{BaseScore::Pressure, true,
                                               true, false});

  LocalSearchOptions opts;
  opts.restarts = 5;

  // threads == 1 *is* the serial best-of-N: the fan-out loop runs inline
  // in restart order. Every other thread count must reproduce it.
  Schedule serial = base;
  opts.threads = 1;
  const LocalSearchStats serialStats =
      localSearchRestarts(inst.gc, inst.profile, inst.deadline, serial, opts);
  EXPECT_EQ(serialStats.restartsRun, 5u);

  for (const unsigned threads : {2u, 8u}) {
    Schedule parallel = base;
    opts.threads = threads;
    const LocalSearchStats stats = localSearchRestarts(
        inst.gc, inst.profile, inst.deadline, parallel, opts);
    EXPECT_EQ(parallel.starts(), serial.starts())
        << "restart merge diverged at threads=" << threads;
    EXPECT_EQ(stats.bestRestart, serialStats.bestRestart);
    EXPECT_EQ(stats.finalCost, serialStats.finalCost);
    EXPECT_EQ(stats.initialCost, serialStats.initialCost);
    EXPECT_EQ(stats.rounds, serialStats.rounds);
    EXPECT_EQ(stats.movesApplied, serialStats.movesApplied);
  }

  // The winner can never lose to the plain single climb — restart 0 *is*
  // the plain climb.
  Schedule plain = base;
  const LocalSearchStats plainStats =
      localSearch(inst.gc, inst.profile, inst.deadline, plain);
  EXPECT_LE(serialStats.finalCost, plainStats.finalCost);
  if (serialStats.bestRestart == 0) {
    EXPECT_EQ(serial.starts(), plain.starts());
  }
}

TEST(ParallelDeterminism, SingleRestartIsPlainLocalSearch) {
  const RandomInstance inst = randomInstance(7);
  const Schedule base = runVariant(inst.gc, inst.profile, inst.deadline,
                                   VariantSpec{BaseScore::Slack, false,
                                               false, false});
  Schedule viaRestarts = base;
  Schedule viaPlain = base;
  LocalSearchOptions opts;
  opts.restarts = 1;
  opts.threads = 8; // must be ignored: nothing to fan out
  const LocalSearchStats a = localSearchRestarts(
      inst.gc, inst.profile, inst.deadline, viaRestarts, opts);
  const LocalSearchStats b =
      localSearch(inst.gc, inst.profile, inst.deadline, viaPlain);
  EXPECT_EQ(viaRestarts.starts(), viaPlain.starts());
  EXPECT_EQ(a.finalCost, b.finalCost);
  EXPECT_EQ(a.restartsRun, 1u);
  EXPECT_EQ(a.bestRestart, 0u);
}

// -------------------------------------------------------------------------
// Wide-window candidate scan: the parallel order-preserving reduce must
// pick the very same move as the serial loop, for both strategies.
// -------------------------------------------------------------------------

TEST(ParallelDeterminism, WideCandidateScanMatchesSerialScan) {
  Rng rng(97);
  // Independent tasks with huge slack: every probe window is thousands of
  // candidates wide, well past the parallel-scan threshold.
  const EnhancedGraph gc = makeIndependentGc({25, 40, 15, 30, 20, 35},
                                             {1, 2, 1, 2, 1, 2},
                                             {5, 3, 6, 2, 4, 7});
  const Time deadline = 4000;
  const PowerProfile profile = randomProfile(deadline, 24, 3, 20, rng);
  Schedule base(gc.numNodes());
  for (TaskId v = 0; v < gc.numNodes(); ++v) base.setStart(v, 0);

  for (const MoveStrategy strategy :
       {MoveStrategy::FirstImprovement, MoveStrategy::BestImprovement}) {
    LocalSearchOptions opts;
    opts.strategy = strategy;
    opts.radius = deadline; // the whole horizon is in reach

    Schedule serial = base;
    opts.threads = 1;
    const LocalSearchStats serialStats =
        localSearch(gc, profile, deadline, serial, opts);

    for (const unsigned threads : {2u, 8u}) {
      Schedule parallel = base;
      opts.threads = threads;
      const LocalSearchStats stats =
          localSearch(gc, profile, deadline, parallel, opts);
      EXPECT_EQ(parallel.starts(), serial.starts())
          << "scan diverged at threads=" << threads << ", strategy="
          << (strategy == MoveStrategy::BestImprovement ? "best" : "first");
      EXPECT_EQ(stats.movesApplied, serialStats.movesApplied);
      EXPECT_EQ(stats.finalCost, serialStats.finalCost);
    }
  }
}

// -------------------------------------------------------------------------
// Frozen-context contract.
// -------------------------------------------------------------------------

TEST(ParallelDeterminism, FrozenContextServesPrimedArtifactsAndRejectsMisses) {
  const RandomInstance inst = randomInstance(3);
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  (void)ctx.initialEst();
  (void)ctx.initialLst();
  (void)ctx.refinedIntervals(3);

  {
    const SolveContextFreezeGuard freeze(ctx);
    EXPECT_TRUE(ctx.frozen());
    // Primed artifacts keep working (cache hits only) ...
    EXPECT_NO_THROW((void)ctx.initialEst());
    EXPECT_NO_THROW((void)ctx.refinedIntervals(3));
    EXPECT_NO_THROW((void)ctx.windowState());
    // ... an artifact that would have to be computed now throws instead
    // of mutating under the fan-out's feet.
    EXPECT_THROW((void)ctx.refinedIntervals(5), PreconditionError);
    EXPECT_THROW((void)ctx.asapMakespan(), PreconditionError);
  }
  EXPECT_FALSE(ctx.frozen());
  EXPECT_NO_THROW((void)ctx.refinedIntervals(5)); // thawed: lazy again
}

} // namespace
} // namespace cawo
