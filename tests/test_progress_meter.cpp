// ProgressMeter (util/progress.hpp): throttle behaviour, ETA rendering,
// the final-line newline flush, and the zero-total guard — all driven
// with synthetic time points through the testable tick() core.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "util/progress.hpp"

namespace cawo {
namespace {

using Clock = ProgressMeter::Clock;
using std::chrono::milliseconds;

Clock::time_point epoch() { return Clock::time_point{} + milliseconds(1); }

TEST(ProgressMeter, DisabledNeverWrites) {
  std::ostringstream out;
  ProgressMeter meter(false, out, epoch(), milliseconds(100));
  meter.tick(1, 10, epoch() + milliseconds(500));
  meter.tick(10, 10, epoch() + milliseconds(1000));
  EXPECT_TRUE(out.str().empty());
}

TEST(ProgressMeter, ZeroTotalNeverWrites) {
  std::ostringstream out;
  ProgressMeter meter(true, out, epoch(), milliseconds(100));
  meter.tick(0, 0, epoch() + milliseconds(500));
  meter.tick(5, 0, epoch() + milliseconds(1000));
  EXPECT_TRUE(out.str().empty());
}

TEST(ProgressMeter, ThrottleDropsRapidNonFinalUpdates) {
  std::ostringstream out;
  ProgressMeter meter(true, out, epoch(), milliseconds(100));
  meter.tick(1, 100, epoch() + milliseconds(200)); // writes (first)
  const std::string afterFirst = out.str();
  EXPECT_FALSE(afterFirst.empty());
  meter.tick(2, 100, epoch() + milliseconds(250)); // within 100ms → dropped
  meter.tick(3, 100, epoch() + milliseconds(299)); // still dropped
  EXPECT_EQ(out.str(), afterFirst);
  meter.tick(4, 100, epoch() + milliseconds(301)); // past throttle → writes
  EXPECT_GT(out.str().size(), afterFirst.size());
  EXPECT_NE(out.str().find("4/100 cells"), std::string::npos);
}

TEST(ProgressMeter, FinalUpdateBypassesThrottleAndEndsTheLine) {
  std::ostringstream out;
  ProgressMeter meter(true, out, epoch(), milliseconds(100));
  meter.tick(99, 100, epoch() + milliseconds(200));
  meter.tick(100, 100, epoch() + milliseconds(201)); // final: not dropped
  const std::string text = out.str();
  EXPECT_NE(text.find("100/100 cells"), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n') << "final update must close the \\r line";
}

TEST(ProgressMeter, LinesStartWithCarriageReturnAndShowRateAndEta) {
  std::ostringstream out;
  ProgressMeter meter(true, out, epoch(), milliseconds(0));
  // 50 cells in 10s → 5.0 cells/s, 50 remaining → ETA 10s.
  meter.tick(50, 100, epoch() + milliseconds(10000));
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '\r');
  EXPECT_NE(text.find("50/100 cells"), std::string::npos);
  EXPECT_NE(text.find("5.0 cells/s"), std::string::npos);
  EXPECT_NE(text.find("ETA 10s"), std::string::npos);
}

TEST(ProgressMeter, FormatEtaRoundsAndScalesUnits) {
  EXPECT_EQ(ProgressMeter::formatEta(0.4), "0s");
  EXPECT_EQ(ProgressMeter::formatEta(0.6), "1s");
  EXPECT_EQ(ProgressMeter::formatEta(37.0), "37s");
  EXPECT_EQ(ProgressMeter::formatEta(59.4), "59s");
  EXPECT_EQ(ProgressMeter::formatEta(125.0), "2m 5s");
  EXPECT_EQ(ProgressMeter::formatEta(600.0), "10m 0s");
  EXPECT_EQ(ProgressMeter::formatEta(3720.0), "1h 2m");
  EXPECT_EQ(ProgressMeter::formatEta(7200.0), "2h 0m");
}

} // namespace
} // namespace cawo
