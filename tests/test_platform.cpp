#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/platform.hpp"

namespace cawo {
namespace {

TEST(Platform, PaperTypesMatchTable1) {
  const auto& types = Platform::paperTypes();
  ASSERT_EQ(types.size(), 6u);
  // Table 1: name, speed, P_idle, P_work.
  const std::int64_t speeds[] = {4, 6, 8, 12, 16, 32};
  const Power idles[] = {40, 60, 80, 120, 150, 200};
  const Power works[] = {10, 30, 40, 50, 70, 100};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(types[i].speed, speeds[i]) << types[i].type;
    EXPECT_EQ(types[i].idlePower, idles[i]) << types[i].type;
    EXPECT_EQ(types[i].workPower, works[i]) << types[i].type;
  }
}

TEST(Platform, PaperClustersHaveTheRightSizes) {
  EXPECT_EQ(Platform::paperSmall().numProcessors(), 72);
  EXPECT_EQ(Platform::paperLarge().numProcessors(), 144);
}

TEST(Platform, ScaledBuildsNodesPerType) {
  const Platform p = Platform::scaled(3);
  EXPECT_EQ(p.numProcessors(), 18);
  // Processors come in type blocks.
  EXPECT_EQ(p.proc(0).speed, 4);
  EXPECT_EQ(p.proc(3).speed, 6);
  EXPECT_EQ(p.proc(17).speed, 32);
}

TEST(Platform, ExecTimeIsCeilOfWorkOverSpeed) {
  Platform p;
  p.addProcessor({"x", 4, 1, 1});
  EXPECT_EQ(p.execTime(8, 0), 2);
  EXPECT_EQ(p.execTime(9, 0), 3);
  EXPECT_EQ(p.execTime(1, 0), 1);
  EXPECT_EQ(p.execTime(0, 0), 0);
}

TEST(Platform, PowerTotals) {
  Platform p;
  p.addProcessor({"a", 1, 10, 5});
  p.addProcessor({"b", 2, 20, 7});
  EXPECT_EQ(p.totalIdlePower(), 30);
  EXPECT_EQ(p.totalWorkPower(), 12);
  EXPECT_EQ(p.maxCombinedPower(), 27);
}

TEST(Platform, UniformClusterIsHomogeneous) {
  const Platform p = Platform::uniform(5, 2, 0, 1);
  EXPECT_EQ(p.numProcessors(), 5);
  for (ProcId i = 0; i < 5; ++i) {
    EXPECT_EQ(p.proc(i).speed, 2);
    EXPECT_EQ(p.proc(i).idlePower, 0);
    EXPECT_EQ(p.proc(i).workPower, 1);
  }
}

TEST(Platform, RejectsInvalidSpecs) {
  Platform p;
  EXPECT_THROW(p.addProcessor({"bad", 0, 1, 1}), PreconditionError);
  EXPECT_THROW(p.addProcessor({"bad", 1, -1, 1}), PreconditionError);
  EXPECT_THROW(Platform::scaled(0), PreconditionError);
  EXPECT_THROW(p.proc(0), PreconditionError);
}

} // namespace
} // namespace cawo
