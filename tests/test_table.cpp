#include <gtest/gtest.h>

#include "util/require.hpp"

#include <sstream>

#include "sim/table.hpp"

namespace cawo {
namespace {

TEST(TextTable, AlignsColumnsToWidestCell) {
  TextTable t({"name", "v"});
  t.addRow({"a", "100"});
  t.addRow({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | v   |"), std::string::npos);
  EXPECT_NE(out.find("| a           | 100 |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2   |"), std::string::npos);
  // Separator lines frame header and body.
  EXPECT_GE(std::count(out.begin(), out.end(), '+'), 4);
}

TEST(TextTable, RejectsMismatchedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), PreconditionError);
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(BarChart, ScalesToTheMaximum) {
  std::ostringstream os;
  printBarChart(os, "title", {"x", "y"}, {1.0, 2.0}, 10, 1);
  const std::string out = os.str();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos); // y at full width
  EXPECT_NE(out.find("#####\n"), std::string::npos);    // x at half width
}

TEST(BarChart, HandlesAllZeroValues) {
  std::ostringstream os;
  printBarChart(os, "", {"x"}, {0.0});
  EXPECT_EQ(os.str().find('#'), std::string::npos);
}

TEST(BarChart, RejectsMismatchedInputs) {
  std::ostringstream os;
  EXPECT_THROW(printBarChart(os, "", {"x"}, {1.0, 2.0}), PreconditionError);
}

TEST(Heading, FramesTheText) {
  std::ostringstream os;
  printHeading(os, "hello");
  const std::string out = os.str();
  EXPECT_NE(out.find("| hello |"), std::string::npos);
  EXPECT_NE(out.find("========="), std::string::npos);
}

} // namespace
} // namespace cawo
