#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/schedule.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::makeGc;

TEST(Schedule, StartsDefaultToUnset) {
  Schedule s(3);
  EXPECT_FALSE(s.isSet(0));
  s.setStart(0, 5);
  EXPECT_TRUE(s.isSet(0));
  EXPECT_EQ(s.start(0), 5);
}

TEST(Schedule, EndAddsTaskLength) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 7);
  EXPECT_EQ(s.end(0, gc), 3);
  EXPECT_EQ(s.end(1, gc), 11);
  EXPECT_EQ(s.makespan(gc), 11);
}

TEST(Schedule, OutOfRangeAccessThrows) {
  Schedule s(1);
  EXPECT_THROW(s.start(1), PreconditionError);
  EXPECT_THROW(s.setStart(-1, 0), PreconditionError);
}

TEST(ValidateSchedule, AcceptsFeasibleSchedule) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 5); // gap after task 0 is fine
  EXPECT_TRUE(validateSchedule(gc, s, 10).ok);
}

TEST(ValidateSchedule, RejectsMissingStart) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  Schedule s(2);
  s.setStart(0, 0);
  const auto r = validateSchedule(gc, s, 10);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("no start"), std::string::npos);
}

TEST(ValidateSchedule, RejectsDeadlineOverrun) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 7); // ends at 11 > 10
  const auto r = validateSchedule(gc, s, 10);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("deadline"), std::string::npos);
}

TEST(ValidateSchedule, RejectsPrecedenceViolation) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  Schedule s(2);
  s.setStart(0, 2);
  s.setStart(1, 4); // starts before task 0 ends at 5
  const auto r = validateSchedule(gc, s, 20);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("precedence"), std::string::npos);
}

TEST(ValidateSchedule, RejectsProcessorOverlapWithoutEdges) {
  // Two tasks on one processor but *no* chain edge (fromParts with both in
  // one order adds the edge, so build them on separate "orders" via a
  // hand-made graph): easiest is two procs → then move both to one proc via
  // makeGc with no edges. makeGc puts both in procOrder → chain edge added.
  // Instead craft overlap on *different* positions: the chain edge forces
  // sequence, so violating it is both precedence and overlap; check message
  // mentions one of them.
  const EnhancedGraph gc = makeGc({{0, 5}, {0, 5}}, {}, {1}, {2});
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 3);
  const auto r = validateSchedule(gc, s, 20);
  EXPECT_FALSE(r.ok);
}

TEST(ValidateSchedule, SizeMismatchIsRejected) {
  const EnhancedGraph gc = makeChainGc({3, 4});
  Schedule s(1);
  EXPECT_FALSE(validateSchedule(gc, s, 10).ok);
}

TEST(ValidateSchedule, ZeroLengthTasksMayTouch) {
  const EnhancedGraph gc = makeChainGc({0, 4});
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 0); // zero-length predecessor ends at 0
  EXPECT_TRUE(validateSchedule(gc, s, 10).ok);
}

} // namespace
} // namespace cawo
