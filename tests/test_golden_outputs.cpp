// Byte-exact golden checks for experiment outputs (see
// tests/golden/README.md). The JSON golden pins every deterministic byte
// of the scenarios=all smoke campaign; the only nondeterministic bytes —
// wall-time fields (wall_ms/total_wall_ms and the greedy_ms/ls_ms phase
// split) — are scrubbed to 0 on both sides, exactly as the capture was.
// Everything else (key order, number formatting, record order, costs,
// local-search round/move counts) must match bit for bit.

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>

#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"

namespace cawo {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string scrubWallTimes(std::string json) {
  json = std::regex_replace(json, std::regex("\"wall_ms\": [-+0-9.eE]+"),
                            "\"wall_ms\": 0");
  json = std::regex_replace(json,
                            std::regex("\"total_wall_ms\": [-+0-9.eE]+"),
                            "\"total_wall_ms\": 0");
  json = std::regex_replace(json, std::regex("\"greedy_ms\": [-+0-9.eE]+"),
                            "\"greedy_ms\": 0");
  json = std::regex_replace(json, std::regex("\"ls_ms\": [-+0-9.eE]+"),
                            "\"ls_ms\": 0");
  return json;
}

TEST(GoldenOutputs, SmokeCampaignAllScenariosJsonIsByteStable) {
  CampaignSpec spec;
  setCampaignKey(spec, "name", "golden-smoke");
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "tasks", "30");
  setCampaignKey(spec, "scenarios", "all");
  setCampaignKey(spec, "deadline-factors", "1.5,2.0");
  setCampaignKey(spec, "seeds", "1");
  setCampaignKey(spec, "intervals", "8");
  setCampaignKey(spec, "algos", "ASAP,slack,pressWR-LS");

  // The capture ran through the CLI, which always forwards these two
  // solver options; mirror it exactly.
  SolverOptions options;
  options.setInt("block-size", 3);
  options.setInt("ls-radius", 10);

  const CampaignOutcome outcome = runCampaign(spec, options);
  const std::string actual = scrubWallTimes(toCampaignJsonString(outcome));
  const std::string expected = readFile(
      std::string(CAWO_SOURCE_DIR) + "/tests/golden/smoke_campaign_all.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(actual, expected)
      << "the scenarios=all campaign JSON diverged from the pre-refactor "
         "golden (tests/golden/README.md)";
}

} // namespace
} // namespace cawo
