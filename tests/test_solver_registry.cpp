// The unified Solver API and registry: canonical listing, lookup
// round-trips, bracket parameters, glob selection, per-family solve
// behaviour, and golden parity between the registry-driven runner and the
// legacy string dispatch (scheduleAsap + runVariant).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "solver/registry.hpp"
#include "test_util.hpp"
#include "util/require.hpp"

namespace cawo {
namespace {

InstanceSpec smallSpec() {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Atacseq;
  spec.targetTasks = 40;
  spec.nodesPerType = 1;
  spec.scenario = "S2";
  spec.deadlineFactor = 2.0;
  spec.numIntervals = 8;
  spec.seed = 97;
  return spec;
}

/// Shared tiny single-processor fixture for the exact solvers.
struct ChainFixture {
  EnhancedGraph gc = testing::makeChainGc({2, 3, 1}, /*idle=*/1, /*work=*/4);
  PowerProfile profile = PowerProfile::uniform(/*horizon=*/20, /*green=*/3);
  Time deadline = 14;
};

TEST(SolverRegistry, ListsCanonicalSolversInOrder) {
  const auto names = SolverRegistry::global().names();
  ASSERT_GE(names.size(), 19u);
  EXPECT_EQ(names.front(), "ASAP");

  // ASAP followed by the 16 variants — the bench suite prefix — then the
  // extension families.
  const auto suite = suiteSolverNames();
  ASSERT_EQ(suite.size(), 17u);
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(names[i], suite[i]) << "suite prefix mismatch at " << i;
  for (const char* extra : {"greenheft", "bnb", "dp"})
    EXPECT_NE(std::find(names.begin(), names.end(), extra), names.end())
        << extra;
}

TEST(SolverRegistry, LookupRoundTripsAllNames) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const std::string& name : registry.names()) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const SolverPtr solver = registry.create(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->info().name, name);
  }
}

TEST(SolverRegistry, UnknownNamesThrowPreconditionError) {
  const SolverRegistry& registry = SolverRegistry::global();
  EXPECT_FALSE(registry.contains("no-such-solver"));
  EXPECT_THROW((void)registry.create("no-such-solver"), PreconditionError);
  EXPECT_THROW((void)registry.select("no-such-solver"), PreconditionError);
  EXPECT_THROW((void)registry.select("zz*"), PreconditionError);
  EXPECT_THROW((void)registry.select(","), PreconditionError);
}

TEST(SolverRegistry, BracketParametersReachTheBaseFactory) {
  const SolverRegistry& registry = SolverRegistry::global();
  EXPECT_TRUE(registry.contains("greenheft[0.25]"));
  const SolverPtr solver = registry.create("greenheft[0.25]");
  EXPECT_EQ(solver->info().name, "greenheft[0.25]");
  EXPECT_TRUE(solver->info().remapsGraph);
  EXPECT_THROW((void)registry.create("greenheft[nan-ish"), PreconditionError);
  EXPECT_THROW((void)registry.create("greenheft[oops]"), PreconditionError);
}

TEST(SolverRegistry, GlobSelectionPreservesCanonicalOrder) {
  const SolverRegistry& registry = SolverRegistry::global();
  const auto pressFamily = registry.select("press*");
  ASSERT_EQ(pressFamily.size(), 8u);
  EXPECT_EQ(pressFamily.front(), "press");
  EXPECT_EQ(pressFamily.back(), "pressWR-LS");

  EXPECT_EQ(registry.select("all"), registry.names());
  EXPECT_EQ(registry.select(""), registry.names());

  // Comma lists keep entry order and de-duplicate.
  const auto picked = registry.select("bnb,ASAP,bnb");
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], "bnb");
  EXPECT_EQ(picked[1], "ASAP");
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  SolverRegistry local;
  registerBuiltinSolvers(local);
  EXPECT_THROW(
      local.registerFactory("ASAP", [](const std::string&) -> SolverPtr {
        return nullptr;
      }),
      PreconditionError);
  EXPECT_THROW(
      local.registerFactory("mine[0.5]", [](const std::string&) -> SolverPtr {
        return nullptr;
      }),
      PreconditionError);
}

TEST(SolverApi, EverySolverSolvesASmallInstance) {
  const Instance inst = buildInstance(smallSpec());
  SolveRequest request;
  request.gc = &inst.gc;
  request.profile = &inst.profile;
  request.deadline = inst.deadline;
  request.graph = &inst.graph;
  request.platform = &inst.platform;
  // Keep the exact solver affordable on the multi-proc instance.
  request.options.setInt("max-nodes", 200'000);
  request.options.setDouble("time-limit-sec", 10.0);

  const ChainFixture chain;
  SolveRequest chainRequest;
  chainRequest.gc = &chain.gc;
  chainRequest.profile = &chain.profile;
  chainRequest.deadline = chain.deadline;

  const SolverRegistry& registry = SolverRegistry::global();
  for (const std::string& name : registry.names()) {
    const SolverPtr solver = registry.create(name);
    const SolverInfo meta = solver->info();
    const SolveRequest& req =
        meta.singleProcOnly ? chainRequest : request;

    const SolveResult result = solver->solve(req);
    EXPECT_TRUE(result.feasible) << name << ": "
                                 << result.validation.message;
    EXPECT_GE(result.cost, 0) << name;
    EXPECT_GE(result.wallMs, 0.0) << name;

    const EnhancedGraph& effectiveGc =
        result.remappedGc ? *result.remappedGc : *req.gc;
    EXPECT_TRUE(
        validateSchedule(effectiveGc, result.schedule,
                         result.effectiveDeadline)
            .ok)
        << name;
    if (meta.remapsGraph) {
      EXPECT_NE(result.remappedGc, nullptr) << name;
      EXPECT_GE(result.effectiveDeadline, req.deadline) << name;
    } else {
      EXPECT_EQ(result.remappedGc, nullptr) << name;
      EXPECT_EQ(result.effectiveDeadline, req.deadline) << name;
    }
  }
}

TEST(SolverApi, ExactSolversAgreeOnTheChainInstance) {
  const ChainFixture chain;
  SolveRequest request;
  request.gc = &chain.gc;
  request.profile = &chain.profile;
  request.deadline = chain.deadline;

  const SolverRegistry& registry = SolverRegistry::global();
  const SolveResult bnb = registry.create("bnb")->solve(request);
  const SolveResult dpPoly = registry.create("dp")->solve(request);
  request.options.set("method", "pseudo");
  const SolveResult dpPseudo = registry.create("dp")->solve(request);

  EXPECT_TRUE(bnb.provedOptimal);
  EXPECT_TRUE(dpPoly.provedOptimal);
  EXPECT_EQ(bnb.cost, dpPoly.cost);
  EXPECT_EQ(dpPoly.cost, dpPseudo.cost);
  EXPECT_GT(bnb.stats.at("nodes-explored"), 0);
}

TEST(SolverApi, MissingRequestFieldsThrow) {
  const ChainFixture chain;
  const SolverRegistry& registry = SolverRegistry::global();

  SolveRequest request; // gc/profile missing
  EXPECT_THROW((void)registry.create("ASAP")->solve(request),
               PreconditionError);

  request.gc = &chain.gc;
  request.profile = &chain.profile;
  request.deadline = 0; // not positive
  EXPECT_THROW((void)registry.create("ASAP")->solve(request),
               PreconditionError);

  // greenheft re-runs the mapping pass and needs the workflow context.
  request.deadline = chain.deadline;
  EXPECT_THROW((void)registry.create("greenheft")->solve(request),
               PreconditionError);
}

TEST(SolverApi, OptionsBagTypedAccessors) {
  SolverOptions options;
  options.set("name", "value").setInt("k", 3).setDouble("alpha", 0.25);

  EXPECT_TRUE(options.has("k"));
  EXPECT_FALSE(options.has("missing"));
  EXPECT_EQ(options.getInt("k", -1), 3);
  EXPECT_EQ(options.getInt("missing", -1), -1);
  EXPECT_DOUBLE_EQ(options.getDouble("alpha", 0.0), 0.25);
  EXPECT_EQ(options.getString("name", ""), "value");
  EXPECT_THROW((void)options.getInt("name", 0), PreconditionError);
  EXPECT_THROW((void)options.getDouble("name", 0.0), PreconditionError);
}

// Golden parity: the registry-driven runner must reproduce the legacy
// string-dispatch costs bit-for-bit on a fixed-seed instance.
TEST(SolverApi, RegistryRunnerMatchesLegacyDispatch) {
  const Instance inst = buildInstance(smallSpec());
  const CaWoParams params; // paper defaults

  // Legacy path: direct calls, exactly as the pre-registry runner did.
  std::vector<std::pair<std::string, Cost>> legacy;
  legacy.emplace_back(
      "ASAP", evaluateCost(inst.gc, inst.profile, scheduleAsap(inst.gc)));
  for (const VariantSpec& v : allVariants()) {
    const Schedule s =
        runVariant(inst.gc, inst.profile, inst.deadline, v, params);
    legacy.emplace_back(v.name(), evaluateCost(inst.gc, inst.profile, s));
  }

  // Registry path.
  const InstanceResult result = runAllOnInstance(inst, params);
  ASSERT_EQ(result.runs.size(), legacy.size());
  ASSERT_EQ(result.runs.size(), algorithmNames().size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(result.runs[i].algorithm, legacy[i].first);
    EXPECT_EQ(result.runs[i].cost, legacy[i].second)
        << legacy[i].first << " diverged from the legacy dispatch";
  }
}

// Non-default tuning parameters must flow through the options bag
// unchanged.
TEST(SolverApi, TuningParametersFlowThroughOptionsBag) {
  const Instance inst = buildInstance(smallSpec());
  CaWoParams params;
  params.blockSize = 2;
  params.lsRadius = 4;

  const VariantSpec variant = VariantSpec::parse("pressWR-LS");
  const Cost legacy = evaluateCost(
      inst.gc, inst.profile,
      runVariant(inst.gc, inst.profile, inst.deadline, variant, params));

  SolveRequest request;
  request.gc = &inst.gc;
  request.profile = &inst.profile;
  request.deadline = inst.deadline;
  request.options = solverOptionsFrom(params);
  const SolveResult viaRegistry =
      SolverRegistry::global().create("pressWR-LS")->solve(request);
  EXPECT_EQ(viaRegistry.cost, legacy);
}

// Broad selections must stay usable on any instance: capability-
// mismatched solvers are skipped, not fatal.
TEST(SolverApi, RunnerSkipsIncompatibleSolvers) {
  const Instance inst = buildInstance(smallSpec());
  ASSERT_GT(inst.gc.numProcs(), 1);
  const InstanceResult result =
      runSolversOnInstance(inst, {"ASAP", "dp"});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].algorithm, "ASAP");
}

// The bracket parameter is part of the solver's identity and wins over
// a conflicting options-bag alpha.
TEST(SolverApi, BracketAlphaWinsOverOptionsBag) {
  const Instance inst = buildInstance(smallSpec());
  SolveRequest request;
  request.gc = &inst.gc;
  request.profile = &inst.profile;
  request.deadline = inst.deadline;
  request.graph = &inst.graph;
  request.platform = &inst.platform;

  const SolverRegistry& registry = SolverRegistry::global();
  const Cost plain =
      registry.create("greenheft[1.0]")->solve(request).cost;
  request.options.setDouble("alpha", 0.0);
  const Cost withConflictingOption =
      registry.create("greenheft[1.0]")->solve(request).cost;
  EXPECT_EQ(plain, withConflictingOption);

  // Unbracketed "greenheft" does honour the bag.
  SolveRequest viaOptionRequest = request;
  viaOptionRequest.options = SolverOptions{};
  viaOptionRequest.options.setDouble("alpha", 1.0);
  const Cost viaOption =
      registry.create("greenheft")->solve(viaOptionRequest).cost;
  EXPECT_EQ(viaOption, plain);
}

TEST(SolverApi, SuiteSelectionRunsThroughRunner) {
  const Instance inst = buildInstance(smallSpec());
  const InstanceResult picked = runSolversOnInstance(
      inst, SolverRegistry::global().select("ASAP,pressWR-LS"));
  ASSERT_EQ(picked.runs.size(), 2u);
  EXPECT_EQ(picked.runs[0].algorithm, "ASAP");
  EXPECT_EQ(picked.runs[1].algorithm, "pressWR-LS");
  EXPECT_LE(picked.runs[1].cost, picked.runs[0].cost);
}

} // namespace
} // namespace cawo
