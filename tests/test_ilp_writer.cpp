#include <gtest/gtest.h>

#include "util/require.hpp"

#include <sstream>

#include "exact/ilp_writer.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;

std::size_t countOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(IlpWriter, EmitsAllSections) {
  const EnhancedGraph gc = makeChainGc({2, 3});
  const PowerProfile p = PowerProfile::uniform(8, 5);
  std::ostringstream os;
  writeIlp(os, gc, p, 8);
  const std::string text = os.str();
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("Generals"), std::string::npos);
  EXPECT_NE(text.find("Binaries"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(IlpWriter, ObjectiveSumsBrownPowerOverTheHorizon) {
  const EnhancedGraph gc = makeChainGc({2});
  const PowerProfile p = PowerProfile::uniform(5, 3);
  std::ostringstream os;
  writeIlp(os, gc, p, 5);
  const std::string text = os.str();
  for (Time t = 0; t < 5; ++t)
    EXPECT_NE(text.find("bu_" + std::to_string(t)), std::string::npos);
}

TEST(IlpWriter, VariableCountMatchesFormula) {
  const EnhancedGraph gc = makeChainGc({2, 3});
  const Time T = 9;
  const PowerProfile p = PowerProfile::uniform(T, 5);
  std::ostringstream os;
  const IlpStats stats = writeIlp(os, gc, p, T);
  const std::size_t N = 2;
  // 3 indicators per (node, t), plus gu/bu/gamma/alpha per t.
  EXPECT_EQ(stats.numBinaries, (3 * N + 1) * static_cast<std::size_t>(T));
  EXPECT_EQ(stats.numVariables,
            stats.numBinaries + 3 * static_cast<std::size_t>(T));
}

TEST(IlpWriter, StartOnceConstraintPerTask) {
  const EnhancedGraph gc = makeChainGc({2, 3, 1});
  const PowerProfile p = PowerProfile::uniform(10, 4);
  std::ostringstream os;
  writeIlp(os, gc, p, 10);
  const std::string text = os.str();
  // Each task contributes one "= 1" start constraint and one end
  // constraint; spot-check the start variable of the first time step.
  EXPECT_GE(countOccurrences(text, " = 1"), 6u);
  EXPECT_NE(text.find("s_0_0"), std::string::npos);
  EXPECT_NE(text.find("r_2_0"), std::string::npos);
}

TEST(IlpWriter, PrecedenceRowsReferenceEndVariables) {
  const EnhancedGraph gc = makeChainGc({2, 2});
  const PowerProfile p = PowerProfile::uniform(8, 4);
  std::ostringstream os;
  writeIlp(os, gc, p, 8);
  const std::string text = os.str();
  // s_1_t <= sum_{l<t} e_0_l: for t = 3 the row subtracts e_0_0..e_0_2.
  EXPECT_NE(text.find("s_1_3 - e_0_0 - e_0_1 - e_0_2 <= 0"),
            std::string::npos);
}

TEST(IlpWriter, GreenBoundsFollowTheProfile) {
  const EnhancedGraph gc = makeChainGc({1});
  PowerProfile p;
  p.appendInterval(2, 7);
  p.appendInterval(2, 3);
  std::ostringstream os;
  writeIlp(os, gc, p, 4);
  const std::string text = os.str();
  EXPECT_NE(text.find("0 <= gu_0 <= 7"), std::string::npos);
  EXPECT_NE(text.find("0 <= gu_2 <= 3"), std::string::npos);
}

TEST(IlpWriter, FileOutputWorks) {
  const EnhancedGraph gc = makeChainGc({2});
  const PowerProfile p = PowerProfile::uniform(5, 2);
  const std::string path = ::testing::TempDir() + "/cawo_test_model.lp";
  const IlpStats stats = writeIlpFile(path, gc, p, 5);
  EXPECT_GT(stats.numConstraints, 0u);
  EXPECT_THROW(writeIlpFile("/nonexistent/dir/m.lp", gc, p, 5),
               PreconditionError);
}

TEST(IlpWriter, RejectsBadArguments) {
  const EnhancedGraph gc = makeChainGc({2});
  const PowerProfile p = PowerProfile::uniform(5, 2);
  std::ostringstream os;
  EXPECT_THROW(writeIlp(os, gc, p, 0), PreconditionError);
  EXPECT_THROW(writeIlp(os, gc, p, 9), PreconditionError); // beyond horizon
}

} // namespace
} // namespace cawo
