#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace cawo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversFullRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(rng.uniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniformInt(2, 1), PreconditionError);
}

TEST(Rng, Uniform01IsInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsCloseToHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, NormalPositiveIntClampsAtMinimum) {
  Rng rng(19);
  for (int i = 0; i < 1'000; ++i)
    EXPECT_GE(rng.normalPositiveInt(0.0, 100.0, 5), 5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(SplitMix64, KnownFirstValueIsStable) {
  SplitMix64 sm(0);
  const auto v1 = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(v1, sm2.next());
  EXPECT_NE(v1, sm.next());
}

} // namespace
} // namespace cawo
