#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/three_partition.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeGc;

TEST(BranchAndBound, FindsTheObviousOptimum) {
  // Two independent unit-power tasks and a single interval that can host
  // only one at a time without overflow.
  const EnhancedGraph gc =
      testing::makeIndependentGc({3, 3}, {0, 0}, {4, 4});
  const PowerProfile p = PowerProfile::uniform(10, 4);
  const BnbResult res = solveExact(gc, p, 10);
  ASSERT_TRUE(res.provedOptimal);
  EXPECT_EQ(res.cost, 0); // sequential placement avoids all overflow
  EXPECT_TRUE(validateSchedule(gc, res.schedule, 10).ok);
  EXPECT_EQ(evaluateCost(gc, p, res.schedule), res.cost);
}

TEST(BranchAndBound, MatchesExhaustiveSearchOnTinyInstances) {
  Rng rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    const EnhancedGraph gc = makeGc(
        {{0, static_cast<Time>(rng.uniformInt(1, 3))},
         {1, static_cast<Time>(rng.uniformInt(1, 3))},
         {0, static_cast<Time>(rng.uniformInt(1, 3))}},
        {{0, 1}}, {0, 1}, {3, 4});
    const Time deadline = asapMakespan(gc) + 4;
    const PowerProfile profile =
        testing::randomProfile(deadline, 3, 0, 8, rng);

    const BnbResult res = solveExact(gc, profile, deadline);
    ASSERT_TRUE(res.provedOptimal);

    // Exhaustive enumeration over all feasible start triples.
    Cost best = kCostInfinity;
    for (Time s0 = 0; s0 <= deadline - gc.len(0); ++s0)
      for (Time s1 = 0; s1 <= deadline - gc.len(1); ++s1)
        for (Time s2 = 0; s2 <= deadline - gc.len(2); ++s2) {
          Schedule s(3);
          s.setStart(0, s0);
          s.setStart(1, s1);
          s.setStart(2, s2);
          if (!validateSchedule(gc, s, deadline).ok) continue;
          best = std::min(best, evaluateCost(gc, profile, s));
        }
    EXPECT_EQ(res.cost, best);
  }
}

TEST(BranchAndBound, NeverWorseThanAnyHeuristic) {
  Rng rng(1234);
  const EnhancedGraph gc = makeGc(
      {{0, 2}, {1, 3}, {0, 2}, {1, 1}}, {{0, 1}, {2, 3}}, {1, 1}, {4, 5});
  const Time deadline = asapMakespan(gc) + 6;
  const PowerProfile profile = testing::randomProfile(deadline, 4, 0, 12, rng);
  const BnbResult exact = solveExact(gc, profile, deadline);
  ASSERT_TRUE(exact.provedOptimal);

  const Schedule asap = scheduleAsap(gc);
  EXPECT_LE(exact.cost, evaluateCost(gc, profile, asap));
  for (const VariantSpec& v : allVariants()) {
    const Schedule s = runVariant(gc, profile, deadline, v);
    EXPECT_LE(exact.cost, evaluateCost(gc, profile, s)) << v.name();
  }
}

TEST(BranchAndBound, RespectsNodeBudget) {
  const EnhancedGraph gc = testing::makeIndependentGc(
      {2, 2, 2, 2, 2}, {0, 0, 0, 0, 0}, {1, 1, 1, 1, 1});
  const PowerProfile p = PowerProfile::uniform(40, 0);
  BnbOptions opts;
  opts.maxNodes = 50; // far too small to finish
  const BnbResult res = solveExact(gc, p, 40, opts);
  EXPECT_FALSE(res.provedOptimal);
  // Still returns a feasible incumbent (seeded with ASAP).
  EXPECT_TRUE(validateSchedule(gc, res.schedule, 40).ok);
}

TEST(BranchAndBound, InfeasibleDeadlineIsRejected) {
  const EnhancedGraph gc = testing::makeChainGc({5, 5});
  const PowerProfile p = PowerProfile::uniform(8, 1);
  EXPECT_THROW(solveExact(gc, p, 8), PreconditionError);
}

TEST(ThreePartitionReduction, YesInstanceReachesZeroCarbon) {
  // {5,5,6, 5,6,5, 6,5,5} with B=16? Check bounds: B/4=4 < x < 8=B/2. ✓
  ThreePartitionInstance tp;
  tp.items = {5, 5, 6, 5, 6, 5, 6, 5, 5};
  tp.bound = 16;
  ASSERT_TRUE(validateThreePartition(tp).empty());
  const UcasInstance inst = buildUcasInstance(tp);
  EXPECT_EQ(inst.deadline, 3 * 16 + 2);
  const BnbResult res = solveExact(inst.gc, inst.profile, inst.deadline);
  ASSERT_TRUE(res.provedOptimal);
  EXPECT_EQ(res.cost, 0);
}

TEST(ThreePartitionReduction, NoInstanceHasPositiveCarbon) {
  // Items sum to 2B with B=14 (bounds 3.5 < x < 7) but no triple split
  // into sums of exactly 14 exists: {4,4,4,6,6,4}: triples {4,4,6}=14 ✓ —
  // pick a genuinely unsolvable multiset instead: {4,4,5,5,6,6}, B=15:
  // need two triples of sum 15: {4,5,6} and {4,5,6} → solvable. Use
  // {4,4,4,5,6,6} sum 29 ≠ 2B… construct carefully: {4,4,6,6,6,6}, B=16
  // (bounds 4 < x < 8 — x=4 fails). Use B=17: items {5,5,5,6,7,6},
  // sum=34=2·17, bounds 4.25<x<8.5 ✓. Triples summing 17: {5,5,7} and
  // {5,6,6} → solvable again. Try {5,5,6,6,6,6}, sum 34, B=17: triples from
  // four 6s and two 5s: {5,6,6}=17 ✓ twice → solvable. {5,5,5,5,7,7}:
  // sum=34: {5,5,7}=17 twice → solvable. Hmm — with n=2 many are solvable;
  // force a no-instance via parity: B odd and all items even is impossible
  // within bounds… use {6,6,6,6,6,4}: x=4 violates B/4<4. Simplest
  // no-instance: {5,5,5,6,6,7} sum 34, triples: 5+5+6=16, 5+5+7=17 ✓ and
  // {5,6,6}=17 ✓ → solvable. Use sum argument: items ≡ 1 (mod 3)… Take
  // {5,6,6,5,6,6} B=17: {5,6,6}=17 twice → solvable. To get a provable
  // no-instance, use n=2, B=18, items in (4.5, 9): {5,5,5,8,8,5} sum=36:
  // {5,5,8}=18 twice → solvable. {5,5,6,6,7,7} sum 36: {5,6,7}=18 twice →
  // solvable. {5,5,5,7,7,7} sum 36: {5,7,7}=19, {5,5,7}=17 — only mixed
  // {5,7,?}: 5+7+7=19≠18, 5+5+7=17≠18, 7+7+7=21, 5+5+5=15 → NO solution. ✓
  ThreePartitionInstance tp;
  tp.items = {5, 5, 5, 7, 7, 7};
  tp.bound = 18;
  ASSERT_TRUE(validateThreePartition(tp).empty());
  const UcasInstance inst = buildUcasInstance(tp);
  const BnbResult res = solveExact(inst.gc, inst.profile, inst.deadline);
  ASSERT_TRUE(res.provedOptimal);
  EXPECT_GT(res.cost, 0);
}

TEST(ThreePartitionReduction, ValidationCatchesBrokenInstances) {
  ThreePartitionInstance tp;
  tp.items = {1, 2};
  tp.bound = 3;
  EXPECT_FALSE(validateThreePartition(tp).empty()); // not a multiple of 3

  tp.items = {5, 5, 5};
  tp.bound = 16; // sum 15 ≠ 16
  EXPECT_FALSE(validateThreePartition(tp).empty());

  tp.items = {4, 4, 8};
  tp.bound = 16; // 4 ≤ B/4 and 8 ≥ B/2
  EXPECT_FALSE(validateThreePartition(tp).empty());
}

TEST(ThreePartitionReduction, InstanceShapeMatchesTheProof) {
  ThreePartitionInstance tp;
  tp.items = {5, 5, 6, 5, 6, 5, 6, 5, 5};
  tp.bound = 16;
  const UcasInstance inst = buildUcasInstance(tp);
  EXPECT_EQ(inst.gc.numNodes(), 9);
  EXPECT_EQ(inst.gc.numProcs(), 9);
  EXPECT_EQ(inst.profile.numIntervals(), 2u * 3 - 1);
  for (ProcId p = 0; p < inst.gc.numProcs(); ++p) {
    EXPECT_EQ(inst.gc.idlePower(p), 0);
    EXPECT_EQ(inst.gc.workPower(p), 1);
  }
  // Alternating budgets 1 / 0 and lengths B / 1.
  for (std::size_t j = 0; j < inst.profile.numIntervals(); ++j) {
    const Interval& iv = inst.profile.interval(j);
    if (j % 2 == 0) {
      EXPECT_EQ(iv.length(), 16);
      EXPECT_EQ(iv.green, 1);
    } else {
      EXPECT_EQ(iv.length(), 1);
      EXPECT_EQ(iv.green, 0);
    }
  }
}

} // namespace
} // namespace cawo
