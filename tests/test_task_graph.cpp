#include <gtest/gtest.h>

#include "util/require.hpp"

#include <algorithm>

#include "core/task_graph.hpp"

namespace cawo {
namespace {

TaskGraph diamond() {
  TaskGraph g;
  const TaskId a = g.addTask("a", 10);
  const TaskId b = g.addTask("b", 20);
  const TaskId c = g.addTask("c", 30);
  const TaskId d = g.addTask("d", 40);
  g.addEdge(a, b, 1);
  g.addEdge(a, c, 2);
  g.addEdge(b, d, 3);
  g.addEdge(c, d, 4);
  return g;
}

TEST(TaskGraph, AddTaskReturnsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.addTask("x", 1), 0);
  EXPECT_EQ(g.addTask("y", 2), 1);
  EXPECT_EQ(g.numTasks(), 2);
  EXPECT_EQ(g.work(0), 1);
  EXPECT_EQ(g.name(1), "y");
}

TEST(TaskGraph, RejectsNegativeWork) {
  TaskGraph g;
  EXPECT_THROW(g.addTask("x", -1), PreconditionError);
}

TEST(TaskGraph, RejectsSelfLoop) {
  TaskGraph g;
  const TaskId a = g.addTask("a", 1);
  EXPECT_THROW(g.addEdge(a, a, 0), PreconditionError);
}

TEST(TaskGraph, RejectsUnknownEndpoints) {
  TaskGraph g;
  g.addTask("a", 1);
  EXPECT_THROW(g.addEdge(0, 5, 0), PreconditionError);
  EXPECT_THROW(g.addEdge(-1, 0, 0), PreconditionError);
}

TEST(TaskGraph, RejectsNegativeEdgeData) {
  TaskGraph g;
  g.addTask("a", 1);
  g.addTask("b", 1);
  EXPECT_THROW(g.addEdge(0, 1, -5), PreconditionError);
}

TEST(TaskGraph, AdjacencyMatchesEdges) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.outDegree(0), 2u);
  EXPECT_EQ(g.inDegree(0), 0u);
  EXPECT_EQ(g.outDegree(3), 0u);
  EXPECT_EQ(g.inDegree(3), 2u);
  EXPECT_EQ(g.outDegree(1), 1u);
  EXPECT_EQ(g.inDegree(1), 1u);

  // Outgoing edge indices of the source reference the right edges.
  for (const std::size_t ei : g.outEdges(0))
    EXPECT_EQ(g.edges()[ei].src, 0);
  for (const std::size_t ei : g.inEdges(3))
    EXPECT_EQ(g.edges()[ei].dst, 3);
}

TEST(TaskGraph, AdjacencySurvivesMutation) {
  TaskGraph g = diamond();
  EXPECT_EQ(g.outDegree(0), 2u); // builds the cache
  const TaskId e = g.addTask("e", 5);
  g.addEdge(3, e, 1); // invalidates and rebuilds
  EXPECT_EQ(g.outDegree(3), 1u);
  EXPECT_EQ(g.inDegree(e), 1u);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const std::vector<TaskId> topo = g.topologicalOrder();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < topo.size(); ++i)
    pos[static_cast<std::size_t>(topo[i])] = i;
  for (const auto& e : g.edges())
    EXPECT_LT(pos[static_cast<std::size_t>(e.src)],
              pos[static_cast<std::size_t>(e.dst)]);
}

TEST(TaskGraph, CycleIsDetected) {
  TaskGraph g;
  const TaskId a = g.addTask("a", 1);
  const TaskId b = g.addTask("b", 1);
  const TaskId c = g.addTask("c", 1);
  g.addEdge(a, b, 0);
  g.addEdge(b, c, 0);
  g.addEdge(c, a, 0);
  EXPECT_FALSE(g.isAcyclic());
  EXPECT_THROW(g.topologicalOrder(), PreconditionError);
}

TEST(TaskGraph, EmptyGraphIsAcyclic) {
  TaskGraph g;
  EXPECT_TRUE(g.isAcyclic());
  EXPECT_TRUE(g.topologicalOrder().empty());
}

TEST(TaskGraph, HasEdgeFindsOnlyExistingEdges) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(2, 3));
  EXPECT_FALSE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(TaskGraph, TotalWorkSumsVertexWeights) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.totalWork(), 100);
}

TEST(TaskGraph, ZeroWorkTaskIsAllowed) {
  TaskGraph g;
  const TaskId a = g.addTask("a", 0);
  EXPECT_EQ(g.work(a), 0);
}

} // namespace
} // namespace cawo
