// The online execution engine (src/online/): policy spec parsing and the
// policy registry, the replay engine's execution model, the offline-parity
// pin (static policy + exact runtimes + actual == forecast reproduces every
// registered solver's offline cost bit for bit), deadline safety of the
// re-solving policies, the incremental pinned-prefix windows against the
// full-recompute oracle after every event, the duration-aware carbon-cost
// evaluators, residual solving through the Solver API, and the campaign
// online mode end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "core/carbon_cost.hpp"
#include "core/est_lst.hpp"
#include "core/greedy.hpp"
#include "core/solve_context.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/json.hpp"
#include "online/policy.hpp"
#include "online/replay.hpp"
#include "profile/profile_source.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "solver/registry.hpp"
#include "test_util.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {
namespace {

InstanceSpec smokeSpec(const std::string& scenario = "S1",
                       double deadlineFactor = 1.5,
                       std::uint64_t seed = 1) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Atacseq;
  spec.targetTasks = 30;
  spec.nodesPerType = 2;
  spec.scenario = scenario;
  spec.deadlineFactor = deadlineFactor;
  spec.numIntervals = 8;
  spec.seed = seed;
  return spec;
}

// ---------------------------------------------------------------------------
// Policy specs and registry
// ---------------------------------------------------------------------------

TEST(PolicySpec, ParsesBareAndParameterisedSpecs) {
  const PolicySpec bare = PolicySpec::parse("static");
  EXPECT_EQ(bare.name, "static");
  EXPECT_TRUE(bare.params.empty());

  const PolicySpec parameterised =
      PolicySpec::parse("periodic:every=4");
  EXPECT_EQ(parameterised.name, "periodic");
  EXPECT_EQ(parameterised.paramInt("every", -1), 4);
}

TEST(PolicySpec, RejectsMalformedSpecs) {
  EXPECT_THROW(PolicySpec::parse(""), PreconditionError);
  EXPECT_THROW(PolicySpec::parse("periodic:"), PreconditionError);
  EXPECT_THROW(PolicySpec::parse("periodic:every"), PreconditionError);
  EXPECT_THROW(PolicySpec::parse("periodic:every=4,every=5"),
               PreconditionError);
}

TEST(PolicyRegistry, ListsBuiltinsAndRejectsUnknown) {
  const ReschedulePolicyRegistry& registry =
      ReschedulePolicyRegistry::global();
  const std::vector<std::string> names = registry.names();
  EXPECT_EQ(names, (std::vector<std::string>{"static", "periodic",
                                             "reactive"}));
  EXPECT_THROW(registry.resolve("hourly"), PreconditionError);
  EXPECT_THROW(registry.resolve("periodic:evrey=4"), PreconditionError);
  EXPECT_THROW(registry.resolve("periodic:every=0"), PreconditionError);
  EXPECT_THROW(registry.resolve("reactive:threshold=-1"), PreconditionError);
}

TEST(PolicyRegistry, BuiltinTriggersFire) {
  const ReschedulePolicyRegistry& registry =
      ReschedulePolicyRegistry::global();
  PolicyEvent event;
  event.intervalsSinceResolve = 3;
  event.carbonDeviation = [] { return 0.2; };

  EXPECT_FALSE(registry.resolve("static")->shouldResolve(event));
  EXPECT_TRUE(registry.resolve("periodic:every=3")->shouldResolve(event));
  EXPECT_FALSE(registry.resolve("periodic:every=4")->shouldResolve(event));
  EXPECT_TRUE(
      registry.resolve("reactive:threshold=0.15")->shouldResolve(event));
  EXPECT_FALSE(
      registry.resolve("reactive:threshold=0.25")->shouldResolve(event));
}

// ---------------------------------------------------------------------------
// Duration-aware cost evaluation
// ---------------------------------------------------------------------------

TEST(OnlineCost, WithPlannedDurationsMatchesEvaluateCostBitForBit) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const Instance inst = buildInstance(
        smokeSpec("S3", 1.5, 100 + static_cast<std::uint64_t>(round)));
    const Schedule s = testing::randomSchedule(inst.gc, inst.deadline, rng);
    std::vector<Time> lens(static_cast<std::size_t>(inst.gc.numNodes()));
    for (TaskId u = 0; u < inst.gc.numNodes(); ++u)
      lens[static_cast<std::size_t>(u)] = inst.gc.len(u);
    EXPECT_EQ(evaluateCostWithDurations(inst.gc, inst.profile, s, lens),
              evaluateCost(inst.gc, inst.profile, s));
  }
}

TEST(OnlineCost, PrefixAtHorizonEqualsFullEvaluation) {
  Rng rng(11);
  const Instance inst = buildInstance(smokeSpec("S2"));
  const Schedule s = testing::randomSchedule(inst.gc, inst.deadline, rng);
  std::vector<Time> lens(static_cast<std::size_t>(inst.gc.numNodes()));
  for (TaskId u = 0; u < inst.gc.numNodes(); ++u)
    lens[static_cast<std::size_t>(u)] = inst.gc.len(u);
  EXPECT_EQ(
      evaluateCostPrefix(inst.gc, inst.profile, s, lens,
                         inst.profile.horizon()),
      evaluateCost(inst.gc, inst.profile, s));
  // Prefix cost is monotone in the window end.
  Cost prev = 0;
  for (Time t = 0; t <= inst.profile.horizon(); t += 37) {
    const Cost c = evaluateCostPrefix(inst.gc, inst.profile, s, lens, t);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(OnlineCost, OvershootPastHorizonIsBilledAllBrown) {
  // One task of length 2 on one processor, horizon 4, generous budget:
  // in-horizon cost is 0, but stretching the runtime to 10 pushes 8 time
  // units past the horizon where everything (idle 1 + work 3) is brown.
  const EnhancedGraph gc = testing::makeChainGc({2});
  const PowerProfile profile = PowerProfile::uniform(4, 100);
  Schedule s(gc.numNodes());
  s.setStart(0, 0);
  EXPECT_EQ(evaluateCostWithDurations(gc, profile, s, {2}), 0);
  EXPECT_EQ(evaluateCostWithDurations(gc, profile, s, {10}),
            (1 + 3) * (10 - 4));
}

// ---------------------------------------------------------------------------
// Forecast/actual pair resolution
// ---------------------------------------------------------------------------

TEST(ProfilePairs, NoiselessSpecYieldsIdenticalPair) {
  ProfileRequest req;
  req.horizon = 240;
  req.sumIdle = 100;
  req.sumWork = 200;
  const ProfilePair pair = generateForecastActualPair("S1", req);
  ASSERT_EQ(pair.forecast.numIntervals(), pair.actual.numIntervals());
  for (std::size_t j = 0; j < pair.forecast.numIntervals(); ++j)
    EXPECT_EQ(pair.forecast.interval(j).green, pair.actual.interval(j).green);
}

TEST(ProfilePairs, NoiseModifierSeparatesForecastFromActual) {
  ProfileRequest req;
  req.horizon = 240;
  req.sumIdle = 100;
  req.sumWork = 200;
  const ProfilePair pair =
      generateForecastActualPair("sine:period=12+noise=0.3,seed=5", req);
  const PowerProfile clean = generateProfile("sine:period=12", req);
  ASSERT_EQ(pair.forecast.numIntervals(), clean.numIntervals());
  bool differs = false;
  for (std::size_t j = 0; j < clean.numIntervals(); ++j) {
    EXPECT_EQ(pair.forecast.interval(j).green, clean.interval(j).green);
    differs |= pair.actual.interval(j).green != clean.interval(j).green;
  }
  EXPECT_TRUE(differs) << "the +noise actual should deviate from the clean "
                          "forecast";
}

// ---------------------------------------------------------------------------
// Offline parity pin
// ---------------------------------------------------------------------------

// With the static policy, exact runtimes and actual == forecast, the replay
// must reproduce the offline solver's cost bit for bit — for every
// registered solver that fits the instance (ISSUE 5 acceptance pin).
TEST(ReplayParity, StaticPolicyReproducesOfflineCostForAllSolvers) {
  for (const std::string scenario : {"S1", "S3"}) {
    const Instance inst = buildInstance(smokeSpec(scenario));
    const SolverRegistry& registry = SolverRegistry::global();
    for (const std::string& name : registry.names()) {
      if (!solverFitsInstance(registry.create(name)->info(), inst)) continue;

      SolverOptions options;
      options.setInt("block-size", 3);
      options.setInt("ls-radius", 10);
      if (name == "bnb") options.setDouble("time-limit-sec", 2.0);

      OnlineOptions opts;
      opts.solver = name;
      opts.policy = "static";
      opts.clairvoyant = false;
      opts.solverOptions = options;
      const OnlineResult online =
          replayOnline(inst, inst.profile, inst.profile, opts);
      ASSERT_TRUE(online.ran) << name << ": " << online.error;
      // The engine-internal pin, valid for every solver: billing the
      // executed trajectory against the actual (== forecast) profile
      // reproduces the plan's own offline cost bit for bit.
      EXPECT_EQ(online.actualCost, online.forecastCost)
          << "solver " << name << " on " << inst.spec.label();
      EXPECT_EQ(online.resolveCount, 0u) << name;
      EXPECT_TRUE(online.deadlineMet) << name;

      // Cross-check against an independent offline solve — but not for
      // the anytime `bnb`, whose wall-clock budget makes two runs under
      // parallel ctest load explore different node counts.
      if (name == "bnb") continue;
      SolveRequest request;
      request.gc = &inst.gc;
      request.profile = &inst.profile;
      request.deadline = inst.deadline;
      request.graph = &inst.graph;
      request.platform = &inst.platform;
      request.options = options;
      const SolveResult offline = registry.create(name)->solve(request);
      if (!offline.feasible) continue;
      EXPECT_EQ(online.actualCost, offline.cost)
          << "solver " << name << " on " << inst.spec.label();
      EXPECT_EQ(online.forecastCost, offline.cost) << name;
    }
  }
}

// Re-solving policies must never break a deadline the plan met: with exact
// runtimes, every accepted residual plan respects the windows, so the
// deadline holds no matter how often the policies fire.
TEST(ReplayParity, ResolvingPoliciesPreserveDeadlineFeasibility) {
  for (const std::string scenario :
       {"S1+noise=0.4,seed=9", "S3+noise=0.3,seed=5"}) {
    for (const std::string policy :
         {"periodic:every=1", "reactive:threshold=0.01"}) {
      for (const double factor : {1.0, 1.5}) {
        const Instance inst = buildInstance(smokeSpec(scenario, factor));
        OnlineOptions opts;
        opts.solver = "pressWR-LS";
        opts.policy = policy;
        opts.clairvoyant = false;
        const OnlineResult r = replayOnline(inst, "", opts);
        ASSERT_TRUE(r.ran) << policy << ": " << r.error;
        EXPECT_TRUE(r.deadlineMet)
            << policy << " on " << inst.spec.label() << " finished at "
            << r.finishTime << " > " << r.deadline;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental pinned-prefix windows vs the full-recompute oracle
// ---------------------------------------------------------------------------

// After every completion-event batch — with runtime drift and per-event
// re-solves in play — the engine's incrementally maintained WindowState
// must match recomputeWindows on the same pinned prefix, bit for bit
// (ISSUE 5 acceptance pin).
TEST(ReplayWindows, IncrementalWindowsMatchOracleAfterEveryEvent) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance inst =
        buildInstance(smokeSpec("S1+noise=0.3,seed=4", 2.0, seed));
    OnlineOptions opts;
    opts.solver = "pressWR";
    opts.policy = "periodic:every=1";
    opts.runtimeNoise = 0.25;
    opts.runtimeSeed = seed;
    opts.clairvoyant = false;

    const ProfileRequest preq = instanceProfileRequest(inst);
    const ProfilePair pair =
        generateForecastActualPair(inst.spec.scenario, preq);
    ReplayEngine engine(inst, pair.forecast, pair.actual, opts);
    ASSERT_TRUE(engine.planFeasible());

    const EnhancedGraph& gc = engine.gc();
    std::vector<Time> est(static_cast<std::size_t>(gc.numNodes()));
    std::vector<Time> lst(static_cast<std::size_t>(gc.numNodes()));
    int checked = 0;
    while (!engine.finished()) {
      engine.step();
      std::vector<bool> placed(static_cast<std::size_t>(gc.numNodes()));
      Schedule partial(gc.numNodes());
      for (TaskId v = 0; v < gc.numNodes(); ++v) {
        if (!engine.startedMask()[static_cast<std::size_t>(v)]) continue;
        placed[static_cast<std::size_t>(v)] = true;
        partial.setStart(v, engine.executedStarts().start(v));
      }
      recomputeWindows(gc, engine.deadline(), partial, placed, est, lst);
      ASSERT_EQ(engine.windows().estAll(), est)
          << "EST diverged at t=" << engine.now() << " (seed " << seed
          << ")";
      ASSERT_EQ(engine.windows().lstAll(), lst)
          << "LST diverged at t=" << engine.now() << " (seed " << seed
          << ")";
      ++checked;
    }
    EXPECT_GT(checked, 0);
    EXPECT_GT(engine.resolveCount(), 0u)
        << "the periodic:every=1 policy should have re-solved";
  }
}

// ---------------------------------------------------------------------------
// Residual solving through the Solver API
// ---------------------------------------------------------------------------

TEST(ResidualSolve, NonResidualSolversRejectResidualRequests) {
  const Instance inst = buildInstance(smokeSpec());
  Schedule starts(inst.gc.numNodes());
  std::vector<std::uint8_t> started(
      static_cast<std::size_t>(inst.gc.numNodes()), 0);
  std::vector<Time> durations(static_cast<std::size_t>(inst.gc.numNodes()),
                              0);
  ResidualProblem residual;
  residual.starts = &starts;
  residual.started = &started;
  residual.durations = &durations;

  SolveRequest request;
  request.gc = &inst.gc;
  request.profile = &inst.profile;
  request.deadline = inst.deadline;
  request.residual = &residual;
  EXPECT_THROW(SolverRegistry::global().create("ASAP")->solve(request),
               PreconditionError);
  EXPECT_FALSE(SolverRegistry::global().create("ASAP")->info()
                   .supportsResidual);
  EXPECT_TRUE(SolverRegistry::global().create("pressWR-LS")->info()
                  .supportsResidual);
}

TEST(ResidualSolve, EmptyPrefixResidualMatchesPlainGreedy) {
  // A residual problem with nothing pinned and release time 0 is exactly
  // the offline problem; the residual greedy must produce the plain
  // greedy's schedule (the -LS pass is skipped on residuals, so compare
  // against the greedy-only variant).
  const Instance inst = buildInstance(smokeSpec("S3"));
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  GreedyOptions gopts;
  gopts.base = BaseScore::Pressure;
  gopts.weighted = true;
  gopts.refined = true;
  const Schedule plain = scheduleGreedy(ctx, gopts);

  Schedule starts(inst.gc.numNodes());
  std::vector<std::uint8_t> started(
      static_cast<std::size_t>(inst.gc.numNodes()), 0);
  std::vector<Time> durations(static_cast<std::size_t>(inst.gc.numNodes()));
  for (TaskId v = 0; v < inst.gc.numNodes(); ++v)
    durations[static_cast<std::size_t>(v)] = inst.gc.len(v);
  GreedyResidual residual;
  residual.starts = &starts;
  residual.started = &started;
  residual.durations = &durations;
  const Schedule viaResidual = scheduleGreedyResidual(ctx, gopts, residual);
  EXPECT_EQ(viaResidual.starts(), plain.starts());
}

TEST(ResidualSolve, ValidatorCatchesMovedPinsAndEarlyStarts) {
  const EnhancedGraph gc = testing::makeChainGc({3, 3, 3});
  Schedule starts(gc.numNodes());
  starts.setStart(0, 0);
  std::vector<std::uint8_t> started{1, 0, 0};
  std::vector<Time> durations{5, 3, 3}; // task 0 ran long: ended at 5
  ResidualProblem residual;
  residual.starts = &starts;
  residual.started = &started;
  residual.durations = &durations;
  residual.releaseTime = 5;

  Schedule ok(gc.numNodes());
  ok.setStart(0, 0);
  ok.setStart(1, 5);
  ok.setStart(2, 8);
  EXPECT_TRUE(validateResidualSchedule(gc, ok, 20, residual).ok);

  Schedule movedPin = ok;
  movedPin.setStart(0, 1);
  EXPECT_FALSE(validateResidualSchedule(gc, movedPin, 20, residual).ok);

  Schedule beforeRelease = ok;
  beforeRelease.setStart(1, 4); // also before task 0's effective end
  EXPECT_FALSE(validateResidualSchedule(gc, beforeRelease, 20, residual).ok);

  Schedule lateFinish = ok;
  lateFinish.setStart(2, 18); // 18 + 3 > 20
  EXPECT_FALSE(validateResidualSchedule(gc, lateFinish, 20, residual).ok);
}

// ---------------------------------------------------------------------------
// Campaign online mode
// ---------------------------------------------------------------------------

CampaignSpec onlineCampaignSpec() {
  CampaignSpec spec;
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "tasks", "30");
  setCampaignKey(spec, "scenarios", "S1+noise=0.3,seed=7");
  setCampaignKey(spec, "deadline-factors", "1.5");
  setCampaignKey(spec, "seeds", "1");
  setCampaignKey(spec, "intervals", "8");
  setCampaignKey(spec, "algos", "ASAP,pressWR-LS");
  setCampaignKey(spec, "online", "1");
  setCampaignKey(spec, "policies", "static,periodic:every=2");
  return spec;
}

TEST(OnlineCampaign, KeysParseAndValidate) {
  CampaignSpec spec = onlineCampaignSpec();
  EXPECT_TRUE(spec.online);
  EXPECT_EQ(spec.policies,
            (std::vector<std::string>{"static", "periodic:every=2"}));
  EXPECT_THROW(setCampaignKey(spec, "online", "maybe"), PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "policies", "hourly"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "actual", "nosuchsource:x=1"),
               PreconditionError);
  EXPECT_THROW(setCampaignKey(spec, "runtime-noise", "1.5"),
               PreconditionError);
  setCampaignKey(spec, "actual", "constant:level=0.3");
  EXPECT_EQ(spec.actual, "constant:level=0.3");
}

TEST(OnlineCampaign, ExplicitActualRejectsNoisyForecastSpecs) {
  // `+noise` on the forecast spec IS the forecast error; combining it
  // with an explicit actual would silently change what the solver plans
  // against, so both surfaces reject the combination.
  const Instance inst = buildInstance(smokeSpec("S1+noise=0.2,seed=3"));
  OnlineOptions opts;
  EXPECT_THROW(replayOnline(inst, "constant:level=0.4", opts),
               PreconditionError);

  CampaignSpec spec = onlineCampaignSpec(); // scenario has +noise
  setCampaignKey(spec, "actual", "constant:level=0.4");
  EXPECT_THROW(runCampaign(spec), PreconditionError);
}

TEST(OnlineCampaign, RecordsMatchDirectReplayAndCarryOnlineFields) {
  const CampaignSpec spec = onlineCampaignSpec();
  const CampaignOutcome outcome = runCampaign(spec);

  // 1 instance × 2 solvers × 2 policies, instance-major, policy-minor.
  ASSERT_EQ(outcome.solvers.size(), 4u);
  ASSERT_EQ(outcome.records.size(), 4u);
  EXPECT_EQ(outcome.policies,
            (std::vector<std::string>{"static", "periodic:every=2"}));

  SolverOptions options;
  options.setInt("block-size", 3);
  options.setInt("ls-radius", 10);
  const Instance inst = buildInstance(expandCampaign(spec).front());
  for (const CampaignRecord& record : outcome.records) {
    ASSERT_TRUE(record.hasOnline);
    ASSERT_FALSE(record.skipped);
    OnlineOptions opts;
    opts.solver = record.solver;
    opts.policy = record.policy;
    opts.solverOptions = options;
    opts.runtimeSeed = inst.spec.seed ^ 0x0417CEB5ULL;
    const OnlineResult direct = replayOnline(inst, "", opts);
    ASSERT_TRUE(direct.ran);
    EXPECT_EQ(record.cost, direct.actualCost)
        << record.solver << " @ " << record.policy;
    EXPECT_EQ(record.forecastCost, direct.forecastCost);
    EXPECT_EQ(record.resolves,
              static_cast<std::int64_t>(direct.resolveCount));
    EXPECT_EQ(record.deadlineMet, direct.deadlineMet);
    EXPECT_EQ(record.clairvoyantFeasible, direct.clairvoyantFeasible);
    EXPECT_EQ(record.clairvoyantCost, direct.clairvoyantCost);
  }
}

TEST(OnlineCampaign, JsonRecordsCarryTheOnlineSchema) {
  const CampaignOutcome outcome = runCampaign(onlineCampaignSpec());
  const JsonValue doc = JsonValue::parse(toCampaignJsonString(outcome));
  EXPECT_TRUE(doc.at("campaign").at("online").asBool());
  EXPECT_EQ(doc.at("campaign").at("policies").asArray().size(), 2u);
  const JsonValue& record = doc.at("records").asArray().front();
  for (const char* key :
       {"policy", "actual_scenario", "forecast_cost", "clairvoyant_cost",
        "regret", "regret_ratio", "resolves", "resolves_accepted",
        "resolve_wall_ms", "deadline_met", "finish_time"}) {
    EXPECT_TRUE(record.has(key)) << key;
  }
  // Offline records must NOT carry the online keys (schema byte-stability).
  CampaignSpec offline = onlineCampaignSpec();
  setCampaignKey(offline, "online", "0");
  const JsonValue offlineDoc =
      JsonValue::parse(toCampaignJsonString(runCampaign(offline)));
  EXPECT_FALSE(offlineDoc.at("records").asArray().front().has("policy"));
  EXPECT_FALSE(offlineDoc.at("campaign").has("online"));
}

// The online campaign parity pin: actual == forecast (noiseless scenario),
// static policy, zero runtime noise — every online record's billed cost
// equals the offline campaign's cost for the same (instance, solver) cell.
TEST(OnlineCampaign, StaticNoiselessModeMatchesOfflineCampaign) {
  CampaignSpec offline;
  setCampaignKey(offline, "families", "atacseq");
  setCampaignKey(offline, "tasks", "30");
  setCampaignKey(offline, "scenarios", "S1,S4");
  setCampaignKey(offline, "deadline-factors", "1.5");
  setCampaignKey(offline, "seeds", "1");
  setCampaignKey(offline, "intervals", "8");
  setCampaignKey(offline, "algos", "all");

  CampaignSpec online = offline;
  setCampaignKey(online, "online", "1");
  setCampaignKey(online, "policies", "static");

  SolverOptions options;
  options.setInt("block-size", 3);
  options.setInt("ls-radius", 10);
  options.setDouble("time-limit-sec", 1.0);
  const CampaignOutcome offlineOut = runCampaign(offline, options);
  const CampaignOutcome onlineOut = runCampaign(online, options);
  ASSERT_EQ(offlineOut.records.size(), onlineOut.records.size());
  for (std::size_t i = 0; i < offlineOut.records.size(); ++i) {
    const CampaignRecord& a = offlineOut.records[i];
    const CampaignRecord& b = onlineOut.records[i];
    ASSERT_EQ(a.instance, b.instance);
    ASSERT_EQ(a.solver, b.solver);
    EXPECT_EQ(a.skipped, b.skipped);
    if (a.skipped || !a.feasible) continue;
    EXPECT_EQ(b.resolves, 0);
    EXPECT_TRUE(b.deadlineMet);
    // The online record's billed cost must equal its own plan's cost for
    // every solver; the cross-run equality additionally holds for all
    // non-anytime solvers (the wall-clock-budgeted `bnb` may explore
    // different node counts between the two campaign runs).
    EXPECT_EQ(b.cost, b.forecastCost) << a.solver << " on " << a.instance;
    if (a.solver == "bnb") continue;
    EXPECT_EQ(b.cost, a.cost) << a.solver << " on " << a.instance;
  }
}

} // namespace
} // namespace cawo
