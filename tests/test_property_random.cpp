// Randomised cross-cutting properties over the whole stack: random
// workflows through HEFT and the enhanced graph, every variant validated,
// evaluators cross-checked, exact solver dominance on small instances.

#include <gtest/gtest.h>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "core/local_search.hpp"
#include "exact/branch_and_bound.hpp"
#include "heft/heft.hpp"
#include "profile/scenario.hpp"
#include "test_util.hpp"
#include "workflow/generators.hpp"

namespace cawo {
namespace {

struct RandomPipelineCase {
  EnhancedGraph gc;
  PowerProfile profile;
  Time deadline;
};

RandomPipelineCase buildRandomCase(std::uint64_t seed, int nTasks,
                                   double deadlineFactor) {
  Rng rng(seed);
  WorkflowGenOptions gopts;
  gopts.targetTasks = nTasks;
  gopts.seed = seed;
  const TaskGraph g =
      genLayeredRandom(nTasks, std::max(2, nTasks / 5), 3, gopts);
  const Platform pf = Platform::scaled(1);
  const HeftResult heft = runHeft(g, pf);
  LinkPowerOptions lp;
  lp.seed = seed * 31;
  EnhancedGraph gc = EnhancedGraph::build(g, pf, heft.mapping, lp,
                                          &heft.startTimes);
  const Time d = asapMakespan(gc);
  const Time deadline =
      static_cast<Time>(deadlineFactor * static_cast<double>(d)) + 1;
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  const auto scenario = static_cast<Scenario>(rng.uniformInt(0, 3));
  PowerProfile profile =
      generateScenario(scenario, deadline, gc.totalIdlePower(), sumWork,
                       {8, 0.1, seed * 7});
  return {std::move(gc), std::move(profile), deadline};
}

class RandomPipeline : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipeline, EveryVariantProducesAValidDominatedSchedule) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RandomPipelineCase c =
      buildRandomCase(seed + 1, 20 + static_cast<int>(seed % 3) * 15,
                      1.0 + 0.5 * static_cast<double>(seed % 4));

  const Schedule asap = scheduleAsap(c.gc);
  ASSERT_TRUE(validateSchedule(c.gc, asap, c.deadline).ok);
  const Cost asapSweep = evaluateCost(c.gc, c.profile, asap);
  EXPECT_EQ(asapSweep, evaluateCostReference(c.gc, c.profile, asap));

  for (const VariantSpec& v : allVariants()) {
    const Schedule s = runVariant(c.gc, c.profile, c.deadline, v);
    const auto valid = validateSchedule(c.gc, s, c.deadline);
    ASSERT_TRUE(valid.ok) << v.name() << ": " << valid.message;
    // The two cost evaluators must agree on every produced schedule.
    EXPECT_EQ(evaluateCost(c.gc, c.profile, s),
              evaluateCostReference(c.gc, c.profile, s))
        << v.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline, ::testing::Range(0, 12));

class LocalSearchMonotone : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchMonotone, NeverIncreasesCostOnRandomSchedules) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RandomPipelineCase c = buildRandomCase(seed + 100, 25, 2.0);
  Rng rng(seed * 13 + 5);
  Schedule s = testing::randomSchedule(c.gc, c.deadline, rng);
  const Cost before = evaluateCost(c.gc, c.profile, s);
  const LocalSearchStats stats = localSearch(c.gc, c.profile, c.deadline, s);
  EXPECT_EQ(stats.initialCost, before);
  EXPECT_LE(stats.finalCost, before);
  EXPECT_EQ(stats.finalCost, evaluateCost(c.gc, c.profile, s));
  EXPECT_TRUE(validateSchedule(c.gc, s, c.deadline).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchMonotone, ::testing::Range(0, 10));

class ExactDominance : public ::testing::TestWithParam<int> {};

TEST_P(ExactDominance, BnbIsALowerBoundForAllHeuristics) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 7919 + 1);
  // Tiny multiproc instance the B&B can certify quickly.
  std::vector<std::pair<ProcId, Time>> tasks;
  std::vector<std::pair<TaskId, TaskId>> edges;
  const int n = 4;
  for (int i = 0; i < n; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, 1)),
                     rng.uniformInt(1, 3)});
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.uniform01() < 0.3)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  const EnhancedGraph gc =
      testing::makeGc(tasks, edges, {1, 2}, {4, 6});
  const Time deadline = asapMakespan(gc) + 5;
  const PowerProfile profile = testing::randomProfile(deadline, 3, 0, 12, rng);

  const BnbResult exact = solveExact(gc, profile, deadline);
  ASSERT_TRUE(exact.provedOptimal);
  EXPECT_TRUE(validateSchedule(gc, exact.schedule, deadline).ok);
  EXPECT_EQ(exact.cost, evaluateCost(gc, profile, exact.schedule));

  const Schedule asap = scheduleAsap(gc);
  EXPECT_LE(exact.cost, evaluateCost(gc, profile, asap));
  for (const VariantSpec& v : allVariants()) {
    const Schedule s = runVariant(gc, profile, deadline, v);
    EXPECT_LE(exact.cost, evaluateCost(gc, profile, s)) << v.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDominance, ::testing::Range(0, 10));

} // namespace
} // namespace cawo
