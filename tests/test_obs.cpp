// The telemetry layer (src/obs/): histogram edge cases pinned for the
// serve daemon's byte-stability contract, the metrics registry, and the
// trace recorder — state machine, Chrome trace-event JSON shape, span
// nesting by containment, and the explicit-timestamp span API.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "exp/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cawo::obs {
namespace {

// Tests that record through the span-site API (TraceScope and friends)
// cannot run when those sites are compiled out; the recorder itself and
// the state machine are still exercised by the remaining tests.
#ifdef CAWO_OBS_DISABLED
#define SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "CAWO_OBS_DISABLED: span sites compiled out"
#else
#define SKIP_IF_OBS_DISABLED() (void)0
#endif

/// Every trace test runs against the (process-global) recorder, so each
/// one starts from a clean slate and leaves tracing off.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::global().setState(TraceState::Off);
    TraceRecorder::global().clear();
  }
  void TearDown() override {
    TraceRecorder::global().setState(TraceState::Off);
    TraceRecorder::global().clear();
  }

  JsonValue writtenTrace() {
    std::ostringstream out;
    TraceRecorder::global().writeChromeTrace(out);
    return JsonValue::parse(out.str());
  }
};

// ---------------------------------------------------------------------
// Histogram — the nearest-rank edge cases the serve stats contract
// depends on (n = 0, n = 1, out-of-range q).
// ---------------------------------------------------------------------

TEST(Histogram, EmptyReportsZeroForEveryStatistic) {
  Histogram h(std::vector<double>{});
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.percentile(q), 0.0) << "q=" << q;
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  Histogram h(std::vector<double>{});
  h.record(7.25);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 7.25);
  EXPECT_DOUBLE_EQ(h.min(), 7.25);
  EXPECT_DOUBLE_EQ(h.max(), 7.25);
  for (const double q : {0.0, 0.5, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(h.percentile(q), 7.25) << "q=" << q;
}

TEST(Histogram, PercentileUsesNearestRankFloorQN) {
  // The serve daemon's historical formula: sorted[floor(q*n)], clamped.
  Histogram h(std::vector<double>{});
  for (const double v : {5.0, 1.0, 4.0, 2.0, 3.0}) h.record(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);  // floor(0.5*5)=2 → 3.0
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 5.0); // floor(4.95)=4 → 5.0
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);  // rank 5 clamps to 4
}

TEST(Histogram, OutOfRangeQuantilesClampInsteadOfThrowing) {
  Histogram h(std::vector<double>{});
  h.record(1.0);
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 2.0);
}

TEST(Histogram, BucketCountsPartitionTheSamples) {
  Histogram h(std::vector<double>{1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 50.0, 500.0, 5000.0}) h.record(v);
  const std::vector<std::int64_t> counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2); // 0.5, 1.0 (bounds are inclusive upper)
  EXPECT_EQ(counts[1], 1); // 5.0
  EXPECT_EQ(counts[2], 1); // 50.0
  EXPECT_EQ(counts[3], 2); // 500, 5000 overflow
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, SampleOnlyModeHasNoBuckets) {
  Histogram h(std::vector<double>{});
  h.record(3.0);
  EXPECT_TRUE(h.bucketBounds().empty());
  EXPECT_TRUE(h.bucketCounts().empty());
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h; // default latency buckets
  h.record(1.5);
  h.record(40.0);
  EXPECT_EQ(h.count(), 2);
  h.clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  for (const std::int64_t c : h.bucketCounts()) EXPECT_EQ(c, 0);
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, LookupRegistersOnceAndReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  a.add(3);
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);
  reg.gauge("x.depth").set(7);
  reg.histogram("x.lat").record(2.0);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(9);
  reg.histogram("h").record(1.0);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("c").value(), 0);
  EXPECT_EQ(reg.gauge("g").value(), 0);
  EXPECT_EQ(reg.histogram("h").count(), 0);
}

TEST(MetricsRegistry, WriteTextIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("b.second").add(2);
  reg.counter("a.first").add(1);
  std::ostringstream out;
  reg.writeText(out);
  const std::string text = out.str();
  EXPECT_LT(text.find("a.first 1"), text.find("b.second 2"));
}

TEST(MetricsRegistry, HarvestSolveStatsSumsIntoGlobalCounters) {
  MetricsRegistry& global = MetricsRegistry::global();
  const std::int64_t count0 = global.counter("solve.count").value();
  const std::int64_t us0 = global.counter("solve.stats.greedy-us").value();
  harvestSolveStats({{"greedy-us", 120}});
  harvestSolveStats({{"greedy-us", 30}});
  EXPECT_EQ(global.counter("solve.count").value(), count0 + 2);
  EXPECT_EQ(global.counter("solve.stats.greedy-us").value(), us0 + 150);
}

// ---------------------------------------------------------------------
// TraceRecorder — states and JSON shape.
// ---------------------------------------------------------------------

TEST_F(TraceTest, OffAndIdleStoreNothing) {
  {
    TraceScope off("noop");
  }
  TraceRecorder::global().setState(TraceState::Idle);
  {
    TraceScope idle("noop");
    EXPECT_FALSE(idle.recording());
  }
  EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
}

TEST_F(TraceTest, RecordingStoresSpansWithArgs) {
  SKIP_IF_OBS_DISABLED();
  TraceRecorder::global().setState(TraceState::Recording);
  {
    TraceScope span("unit.work");
    EXPECT_TRUE(span.recording());
    span.arg("answer", static_cast<std::int64_t>(42));
    span.arg("label", std::string("abc"));
    span.arg("ratio", 0.5);
  }
  traceInstant("unit.mark");
  traceCounter("unit.level", 3.0);
  TraceRecorder::global().setState(TraceState::Off);
  EXPECT_EQ(TraceRecorder::global().eventCount(), 3u);

  const JsonValue doc = writtenTrace();
  ASSERT_TRUE(doc.has("traceEvents"));
  bool sawSpan = false, sawInstant = false, sawCounter = false;
  for (const JsonValue& ev : doc.at("traceEvents").asArray()) {
    const std::string ph = ev.at("ph").asString();
    if (ph == "M") continue;
    EXPECT_TRUE(ev.has("pid"));
    EXPECT_TRUE(ev.has("tid"));
    EXPECT_TRUE(ev.has("ts"));
    if (ph == "X") {
      sawSpan = true;
      EXPECT_EQ(ev.at("name").asString(), "unit.work");
      EXPECT_TRUE(ev.has("dur"));
      EXPECT_EQ(ev.at("args").at("answer").asInt(), 42);
      EXPECT_EQ(ev.at("args").at("label").asString(), "abc");
      EXPECT_DOUBLE_EQ(ev.at("args").at("ratio").asDouble(), 0.5);
    } else if (ph == "i") {
      sawInstant = true;
      EXPECT_EQ(ev.at("name").asString(), "unit.mark");
      EXPECT_EQ(ev.at("s").asString(), "t");
    } else if (ph == "C") {
      sawCounter = true;
      EXPECT_EQ(ev.at("name").asString(), "unit.level");
      EXPECT_DOUBLE_EQ(ev.at("args").at("value").asDouble(), 3.0);
    }
  }
  EXPECT_TRUE(sawSpan);
  EXPECT_TRUE(sawInstant);
  EXPECT_TRUE(sawCounter);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  const JsonValue doc = writtenTrace();
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_EQ(doc.at("traceEvents").kind(), JsonValue::Kind::Array);
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
}

TEST_F(TraceTest, ChildSpansNestWithinTheirParent) {
  SKIP_IF_OBS_DISABLED();
  TraceRecorder::global().setState(TraceState::Recording);
  {
    TraceScope parent("outer");
    {
      TraceScope child("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  TraceRecorder::global().setState(TraceState::Off);

  const JsonValue doc = writtenTrace();
  double outerTs = -1, outerDur = -1, innerTs = -1, innerDur = -1;
  for (const JsonValue& ev : doc.at("traceEvents").asArray()) {
    if (ev.at("ph").asString() != "X") continue;
    if (ev.at("name").asString() == "outer") {
      outerTs = ev.at("ts").asDouble();
      outerDur = ev.at("dur").asDouble();
    } else if (ev.at("name").asString() == "inner") {
      innerTs = ev.at("ts").asDouble();
      innerDur = ev.at("dur").asDouble();
    }
  }
  ASSERT_GE(outerTs, 0.0);
  ASSERT_GE(innerTs, 0.0);
  EXPECT_GE(innerTs, outerTs);
  EXPECT_LE(innerTs + innerDur, outerTs + outerDur + 1e-9);

  std::ostringstream summary;
  TraceRecorder::global().writeSummary(summary);
  const std::string text = summary.str();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("outer/inner"), std::string::npos);
}

TEST_F(TraceTest, ExplicitTimestampSpansUseTheGivenEndpoints) {
  SKIP_IF_OBS_DISABLED();
  using Clock = std::chrono::steady_clock;
  TraceRecorder::global().setState(TraceState::Recording);
  const Clock::time_point begin = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const Clock::time_point end = Clock::now();
  traceSpanBetween("window", begin, end);
  TraceRecorder::global().setState(TraceState::Off);

  const JsonValue doc = writtenTrace();
  bool found = false;
  for (const JsonValue& ev : doc.at("traceEvents").asArray()) {
    if (ev.at("ph").asString() != "X") continue;
    ASSERT_EQ(ev.at("name").asString(), "window");
    found = true;
    // 2ms sleep → at least 1000µs duration recorded.
    EXPECT_GE(ev.at("dur").asDouble(), 1000.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, AsyncSpansEmitPairedNestableBeginEnd) {
  SKIP_IF_OBS_DISABLED();
  using Clock = std::chrono::steady_clock;
  TraceRecorder::global().setState(TraceState::Recording);
  const Clock::time_point begin = Clock::now();
  const Clock::time_point end = begin + std::chrono::milliseconds(3);
  traceAsyncSpanBetween("request", 7, begin, end,
                        {TraceArg{"id", "r1", true}});
  TraceRecorder::global().setState(TraceState::Off);

  const JsonValue doc = writtenTrace();
  const JsonValue *beginEv = nullptr, *endEv = nullptr;
  for (const JsonValue& ev : doc.at("traceEvents").asArray()) {
    const std::string ph = ev.at("ph").asString();
    if (ph == "b") beginEv = &ev;
    if (ph == "e") endEv = &ev;
  }
  ASSERT_NE(beginEv, nullptr);
  ASSERT_NE(endEv, nullptr);
  // The pair shares (cat, id, name) — that is what stacks them onto one
  // async track — and spans the given 3ms window.
  EXPECT_EQ(beginEv->at("name").asString(), "request");
  EXPECT_EQ(endEv->at("name").asString(), "request");
  EXPECT_EQ(beginEv->at("cat").asString(), "request");
  EXPECT_EQ(beginEv->at("id").asString(), "0x7");
  EXPECT_EQ(endEv->at("id").asString(), "0x7");
  EXPECT_NEAR(endEv->at("ts").asDouble() - beginEv->at("ts").asDouble(),
              3000.0, 1.0);
  EXPECT_EQ(beginEv->at("args").at("id").asString(), "r1");
}

TEST_F(TraceTest, ThreadLanesGetDistinctTidsAndNames) {
  SKIP_IF_OBS_DISABLED();
  TraceRecorder::global().setState(TraceState::Recording);
  {
    TraceScope main("on-main");
  }
  std::thread worker([] {
    traceSetThreadName("unit-worker");
    TraceScope span("on-worker");
  });
  worker.join();
  TraceRecorder::global().setState(TraceState::Off);

  const JsonValue doc = writtenTrace();
  std::int64_t mainTid = -1, workerTid = -1;
  bool sawThreadName = false;
  for (const JsonValue& ev : doc.at("traceEvents").asArray()) {
    const std::string ph = ev.at("ph").asString();
    if (ph == "M" && ev.at("name").asString() == "thread_name" &&
        ev.at("args").at("name").asString() == "unit-worker")
      sawThreadName = true;
    if (ph != "X") continue;
    if (ev.at("name").asString() == "on-main") mainTid = ev.at("tid").asInt();
    if (ev.at("name").asString() == "on-worker")
      workerTid = ev.at("tid").asInt();
  }
  EXPECT_TRUE(sawThreadName);
  ASSERT_GE(mainTid, 0);
  ASSERT_GE(workerTid, 0);
  EXPECT_NE(mainTid, workerTid);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsRegistrations) {
  SKIP_IF_OBS_DISABLED();
  TraceRecorder::global().setState(TraceState::Recording);
  {
    TraceScope span("gone");
  }
  EXPECT_EQ(TraceRecorder::global().eventCount(), 1u);
  TraceRecorder::global().clear();
  EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
}

} // namespace
} // namespace cawo::obs
