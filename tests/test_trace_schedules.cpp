// The telemetry layer's hard constraint (ISSUE: tracing must never
// change schedules): all 16 CaWoSched variants produce bit-identical
// schedules with the trace recorder Off, Idle and Recording, at
// threads ∈ {1, 8}. Plus a golden-shape check on the recorded trace:
// valid Chrome trace-event JSON whose child spans nest within their
// parents on every lane.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/asap.hpp"
#include "core/cawosched.hpp"
#include "core/solve_context.hpp"
#include "exp/json.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace cawo {
namespace {

using obs::TraceRecorder;
using obs::TraceState;

/// Same random-DAG construction as the parallel-determinism suite.
EnhancedGraph randomDag(int n, int numProcs, double density, Rng& rng) {
  std::vector<std::pair<ProcId, Time>> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, numProcs - 1)),
                     rng.uniformInt(1, 9)});
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.uniformReal(0.0, 1.0) < density)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  std::vector<Power> idle, work;
  for (int p = 0; p < numProcs; ++p) {
    idle.push_back(rng.uniformInt(1, 3));
    work.push_back(rng.uniformInt(1, 6));
  }
  return testing::makeGc(tasks, edges, idle, work);
}

struct Fixture {
  EnhancedGraph gc;
  PowerProfile profile;
  Time deadline = 0;
};

Fixture makeFixture(std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{randomDag(40, 3, 0.08, rng), PowerProfile{}, 0};
  f.deadline = 2 * asapMakespan(f.gc) + 5;
  f.profile = testing::randomProfile(f.deadline, 12, 2, 14, rng);
  return f;
}

class TraceScheduleTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::global().setState(TraceState::Off);
    TraceRecorder::global().clear();
  }
  void TearDown() override {
    TraceRecorder::global().setState(TraceState::Off);
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceScheduleTest, SchedulesBitIdenticalAcrossTraceStates) {
  const std::vector<VariantSpec> variants = allVariants();
  ASSERT_EQ(variants.size(), 16u);
  const CaWoParams params;
  const Fixture f = makeFixture(101);

  // Reference: tracing Off.
  std::vector<std::vector<Schedule>> reference;
  for (const unsigned threads : {1u, 8u}) {
    const SolveContext ctx(f.gc, f.profile, f.deadline);
    reference.push_back(runVariants(ctx, variants, params, threads));
  }

  for (const TraceState state : {TraceState::Idle, TraceState::Recording}) {
    TraceRecorder::global().clear();
    TraceRecorder::global().setState(state);
    std::size_t t = 0;
    for (const unsigned threads : {1u, 8u}) {
      const SolveContext ctx(f.gc, f.profile, f.deadline);
      const std::vector<Schedule> traced =
          runVariants(ctx, variants, params, threads);
      ASSERT_EQ(traced.size(), variants.size());
      for (std::size_t i = 0; i < variants.size(); ++i)
        EXPECT_EQ(traced[i].starts(), reference[t][i].starts())
            << "variant " << variants[i].name() << " diverged at threads="
            << threads << " with trace state " << static_cast<int>(state);
      ++t;
    }
    TraceRecorder::global().setState(TraceState::Off);
#ifndef CAWO_OBS_DISABLED
    if (state == TraceState::Idle)
      EXPECT_EQ(TraceRecorder::global().eventCount(), 0u)
          << "Idle must not store events";
    else
      EXPECT_GT(TraceRecorder::global().eventCount(), 0u)
          << "Recording stored nothing — instrumentation is dead";
#endif
  }
}

TEST_F(TraceScheduleTest, RecordedTraceHasGoldenShape) {
#ifdef CAWO_OBS_DISABLED
  GTEST_SKIP() << "CAWO_OBS_DISABLED: span sites compiled out";
#endif
  const std::vector<VariantSpec> variants = allVariants();
  const CaWoParams params;
  const Fixture f = makeFixture(7);

  TraceRecorder::global().setState(TraceState::Recording);
  {
    const SolveContext ctx(f.gc, f.profile, f.deadline);
    (void)runVariants(ctx, variants, params, 8);
  }
  TraceRecorder::global().setState(TraceState::Off);

  std::ostringstream out;
  TraceRecorder::global().writeChromeTrace(out);
  const JsonValue doc = JsonValue::parse(out.str()); // valid JSON
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
  const auto& events = doc.at("traceEvents").asArray();
  ASSERT_FALSE(events.empty());

  // Collect complete events per lane; check envelope fields as we go.
  struct Span {
    double ts, dur;
    std::string name;
  };
  std::map<std::int64_t, std::vector<Span>> lanes;
  bool sawVariantSpan = false, sawGreedy = false;
  for (const JsonValue& ev : events) {
    const std::string ph = ev.at("ph").asString();
    if (ph == "M") continue;
    ASSERT_TRUE(ev.has("pid"));
    ASSERT_TRUE(ev.has("tid"));
    ASSERT_TRUE(ev.has("ts"));
    if (ph != "X") continue;
    ASSERT_TRUE(ev.has("dur"));
    EXPECT_GE(ev.at("dur").asDouble(), 0.0);
    const std::string name = ev.at("name").asString();
    if (name == "solve.variant") sawVariantSpan = true;
    if (name == "greedy") sawGreedy = true;
    lanes[ev.at("tid").asInt()].push_back(
        {ev.at("ts").asDouble(), ev.at("dur").asDouble(), name});
  }
  EXPECT_TRUE(sawVariantSpan);
  EXPECT_TRUE(sawGreedy);

  // Nesting invariant per lane: spans sorted by (ts asc, dur desc) form a
  // containment forest — a span starting inside another must end within
  // it (child ts+dur <= parent ts+dur).
  for (auto& [tid, spans] : lanes) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.dur > b.dur;
    });
    std::vector<const Span*> stack;
    for (const Span& s : spans) {
      while (!stack.empty() &&
             s.ts >= stack.back()->ts + stack.back()->dur - 1e-9)
        stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(s.ts + s.dur,
                  stack.back()->ts + stack.back()->dur + 1e-6)
            << "span " << s.name << " overflows its parent "
            << stack.back()->name << " on lane " << tid;
      }
      stack.push_back(&s);
    }
  }

  // The hierarchical summary names the greedy under its variant path.
  std::ostringstream summary;
  TraceRecorder::global().writeSummary(summary);
  EXPECT_NE(summary.str().find("solve.variant/greedy"), std::string::npos);
}

} // namespace
} // namespace cawo
