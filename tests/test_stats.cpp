#include <gtest/gtest.h>

#include "util/require.hpp"

#include "sim/stats.hpp"

namespace cawo {
namespace {

CostMatrix smallMatrix() {
  CostMatrix m;
  m.algorithms = {"A", "B", "C"};
  m.costs = {
      {10, 5, 5},  // B and C tie for rank 1; A is rank 3
      {0, 0, 4},   // A and B tie at 0
      {6, 8, 2},
  };
  return m;
}

TEST(Stats, RankDistributionUsesCompetitionRanking) {
  const auto counts = rankDistribution(smallMatrix());
  // Instance 0: A rank 3, B rank 1, C rank 1 (rank 2 skipped).
  // Instance 1: A rank 1, B rank 1, C rank 3.
  // Instance 2: A rank 2, B rank 3, C rank 1.
  EXPECT_EQ(counts[0][0], 1); // A first once
  EXPECT_EQ(counts[0][1], 1);
  EXPECT_EQ(counts[0][2], 1);
  EXPECT_EQ(counts[1][0], 2); // B first twice
  EXPECT_EQ(counts[1][2], 1);
  EXPECT_EQ(counts[2][0], 2); // C first twice
  EXPECT_EQ(counts[2][2], 1);
}

TEST(Stats, PerformanceProfileBoundaryValues) {
  const auto profile =
      performanceProfile(smallMatrix(), {0.0, 0.5, 1.0});
  // τ=0: every algorithm qualifies on every instance except where ratio is
  // 0... ratio(best/own): instance 1 C: best 0, own 4 → 0 ≥ 0 → counts.
  for (std::size_t a = 0; a < 3; ++a) EXPECT_DOUBLE_EQ(profile[a][0], 1.0);
  // τ=1: fraction of instances where the algorithm attains the best cost.
  EXPECT_DOUBLE_EQ(profile[0][2], 1.0 / 3); // A best on instance 1 only
  EXPECT_DOUBLE_EQ(profile[1][2], 2.0 / 3);
  EXPECT_DOUBLE_EQ(profile[2][2], 2.0 / 3);
}

TEST(Stats, PerformanceProfileZeroCostCountsAsOptimal) {
  CostMatrix m;
  m.algorithms = {"A", "B"};
  m.costs = {{0, 0}};
  const auto profile = performanceProfile(m, {1.0});
  EXPECT_DOUBLE_EQ(profile[0][0], 1.0);
  EXPECT_DOUBLE_EQ(profile[1][0], 1.0);
}

TEST(Stats, RatiosVsBaselineSkipsUndefined) {
  CostMatrix m;
  m.algorithms = {"base", "algo"};
  m.costs = {
      {10, 6}, // 0.6
      {0, 0},  // 1.0 (both zero)
      {0, 5},  // skipped: cannot divide by zero baseline
      {4, 8},  // 2.0 (baseline wins)
  };
  const auto ratios = ratiosVsBaseline(m, 0, 1);
  ASSERT_EQ(ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(ratios[0], 0.6);
  EXPECT_DOUBLE_EQ(ratios[1], 1.0);
  EXPECT_DOUBLE_EQ(ratios[2], 2.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(medianOf({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(medianOf({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(medianOf({7.0}), 7.0);
  EXPECT_THROW(medianOf({}), PreconditionError);
}

TEST(Stats, MeanIsArithmetic) {
  EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(meanOf({}), PreconditionError);
}

TEST(Stats, BoxStatsQuartilesAndOutliers) {
  // 1..8 plus a far outlier.
  const BoxStats s = boxStats({1, 2, 3, 4, 5, 6, 7, 8, 100});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_EQ(s.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.outliers[0], 100.0);
  EXPECT_LE(s.whiskerHi, 8.0);
}

TEST(Stats, BoxStatsSingleValue) {
  const BoxStats s = boxStats({4.2});
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.q1, 4.2);
  EXPECT_DOUBLE_EQ(s.median, 4.2);
  EXPECT_DOUBLE_EQ(s.q3, 4.2);
  EXPECT_TRUE(s.outliers.empty());
}

TEST(Stats, ToCostMatrixChecksConsistency) {
  InstanceResult r1;
  r1.runs = {{"A", 1, 0.0}, {"B", 2, 0.0}};
  InstanceResult r2;
  r2.runs = {{"A", 3, 0.0}};
  EXPECT_THROW(toCostMatrix({r1, r2}), PreconditionError);
  EXPECT_THROW(toCostMatrix({}), PreconditionError);
  const CostMatrix m = toCostMatrix({r1});
  EXPECT_EQ(m.numInstances(), 1u);
  EXPECT_EQ(m.numAlgorithms(), 2u);
  EXPECT_EQ(m.costs[0][1], 2);
}

} // namespace
} // namespace cawo
