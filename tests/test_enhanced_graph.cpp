#include <gtest/gtest.h>

#include <algorithm>

#include "core/enhanced_graph.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

Platform twoProcs() {
  Platform p;
  p.addProcessor({"p0", 1, 10, 5});
  p.addProcessor({"p1", 2, 20, 8});
  return p;
}

TEST(EnhancedGraph, SameProcessorEdgeStaysPlain) {
  TaskGraph g;
  g.addTask("a", 4);
  g.addTask("b", 4);
  g.addEdge(0, 1, 100); // data irrelevant when co-located
  Mapping m(2, 2);
  m.assign(0, 0);
  m.assign(1, 0);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  EXPECT_EQ(gc.numNodes(), 2);
  EXPECT_EQ(gc.numLinks(), 0);
  ASSERT_EQ(gc.succs(0).size(), 1u);
  EXPECT_EQ(gc.succs(0)[0], 1);
}

TEST(EnhancedGraph, CrossProcessorEdgeSpawnsCommTask) {
  TaskGraph g;
  g.addTask("a", 4);
  g.addTask("b", 4);
  g.addEdge(0, 1, 7);
  Mapping m(2, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  ASSERT_EQ(gc.numNodes(), 3);
  EXPECT_EQ(gc.numLinks(), 1);
  const TaskId comm = 2;
  EXPECT_TRUE(gc.isCommTask(comm));
  EXPECT_EQ(gc.len(comm), 7); // comm length = data at unit bandwidth
  EXPECT_EQ(gc.node(comm).commSrc, 0);
  EXPECT_EQ(gc.node(comm).commDst, 1);
  // Dependencies a → comm → b.
  ASSERT_EQ(gc.succs(0).size(), 1u);
  EXPECT_EQ(gc.succs(0)[0], comm);
  ASSERT_EQ(gc.succs(comm).size(), 1u);
  EXPECT_EQ(gc.succs(comm)[0], 1);
  // The link processor is beyond the real ones.
  EXPECT_GE(gc.procOf(comm), gc.numRealProcs());
}

TEST(EnhancedGraph, ZeroDataCrossEdgeDegeneratesToPrecedence) {
  TaskGraph g;
  g.addTask("a", 4);
  g.addTask("b", 4);
  g.addEdge(0, 1, 0);
  Mapping m(2, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  EXPECT_EQ(gc.numNodes(), 2);
  EXPECT_EQ(gc.numLinks(), 0);
  ASSERT_EQ(gc.succs(0).size(), 1u);
  EXPECT_EQ(gc.succs(0)[0], 1);
}

TEST(EnhancedGraph, ExecTimeUsesProcessorSpeed) {
  TaskGraph g;
  g.addTask("a", 9);
  Mapping m(1, 2);
  m.assign(0, 1); // speed 2 → ceil(9/2) = 5
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  EXPECT_EQ(gc.len(0), 5);
}

TEST(EnhancedGraph, MappingOrderBecomesChainEdges) {
  TaskGraph g;
  g.addTask("a", 2);
  g.addTask("b", 2);
  g.addTask("c", 2);
  // No DAG edges at all; the mapping orders all three on processor 0.
  Mapping m(3, 2);
  m.assign(1, 0);
  m.assign(0, 0);
  m.assign(2, 0);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  // Chain 1 → 0 → 2 from the mapping order.
  ASSERT_EQ(gc.succs(1).size(), 1u);
  EXPECT_EQ(gc.succs(1)[0], 0);
  ASSERT_EQ(gc.succs(0).size(), 1u);
  EXPECT_EQ(gc.succs(0)[0], 2);
  const auto order = gc.procOrder(0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 2);
}

TEST(EnhancedGraph, CommunicationsOnOneLinkAreChained) {
  // Two independent cross edges between the same processor pair must be
  // sequentialised on the link (the set E'' of the paper).
  TaskGraph g;
  g.addTask("a1", 2);
  g.addTask("a2", 2);
  g.addTask("b1", 2);
  g.addTask("b2", 2);
  g.addEdge(0, 2, 3);
  g.addEdge(1, 3, 4);
  Mapping m(4, 2);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 1);
  m.assign(3, 1);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  ASSERT_EQ(gc.numNodes(), 6);
  EXPECT_EQ(gc.numLinks(), 1);
  const ProcId link = gc.numRealProcs();
  const auto order = gc.procOrder(link);
  ASSERT_EQ(order.size(), 2u);
  // Comm of the earlier-positioned source (task 0) goes first.
  EXPECT_EQ(gc.node(order[0]).commSrc, 0);
  EXPECT_EQ(gc.node(order[1]).commSrc, 1);
  // There is a chain edge between them.
  const auto succs = gc.succs(order[0]);
  EXPECT_TRUE(std::find(succs.begin(), succs.end(), order[1]) != succs.end());
}

TEST(EnhancedGraph, CommPriorityOverridesLinkOrder) {
  TaskGraph g;
  g.addTask("a1", 2);
  g.addTask("a2", 2);
  g.addTask("b1", 2);
  g.addTask("b2", 2);
  g.addEdge(0, 2, 3);
  g.addEdge(1, 3, 4);
  Mapping m(4, 2);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 1);
  m.assign(3, 1);
  // Give the second source a *smaller* priority → its comm goes first.
  const std::vector<Time> priority{100, 1, 0, 0};
  const EnhancedGraph gc =
      EnhancedGraph::build(g, twoProcs(), m, {}, &priority);
  const auto order = gc.procOrder(gc.numRealProcs());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(gc.node(order[0]).commSrc, 1);
}

TEST(EnhancedGraph, OppositeDirectionsUseDistinctLinks) {
  // Full-duplex: p0→p1 and p1→p0 are different fictional processors.
  TaskGraph g;
  g.addTask("a", 2);
  g.addTask("b", 2);
  g.addTask("c", 2);
  g.addEdge(0, 1, 3); // p0 → p1
  g.addEdge(1, 2, 3); // p1 → p0
  Mapping m(3, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  m.assign(2, 0);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  EXPECT_EQ(gc.numLinks(), 2);
}

TEST(EnhancedGraph, LinkPowersAreWithinTheConfiguredRange) {
  TaskGraph g;
  g.addTask("a", 2);
  g.addTask("b", 2);
  g.addEdge(0, 1, 3);
  Mapping m(2, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  LinkPowerOptions lp;
  lp.minIdle = 1;
  lp.maxIdle = 2;
  lp.minWork = 1;
  lp.maxWork = 2;
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m, lp);
  const ProcId link = gc.numRealProcs();
  EXPECT_GE(gc.idlePower(link), 1);
  EXPECT_LE(gc.idlePower(link), 2);
  EXPECT_GE(gc.workPower(link), 1);
  EXPECT_LE(gc.workPower(link), 2);
}

TEST(EnhancedGraph, TotalIdleIncludesLinks) {
  TaskGraph g;
  g.addTask("a", 2);
  g.addTask("b", 2);
  g.addEdge(0, 1, 3);
  Mapping m(2, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  const Power link = gc.idlePower(gc.numRealProcs());
  EXPECT_EQ(gc.totalIdlePower(), 10 + 20 + link);
}

TEST(EnhancedGraph, TopoOrderIsConsistent) {
  TaskGraph g;
  g.addTask("a", 2);
  g.addTask("b", 2);
  g.addTask("c", 2);
  g.addEdge(0, 1, 3);
  g.addEdge(0, 2, 3);
  Mapping m(3, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  m.assign(2, 1);
  const EnhancedGraph gc = EnhancedGraph::build(g, twoProcs(), m);
  const auto& topo = gc.topoOrder();
  std::vector<std::size_t> pos(static_cast<std::size_t>(gc.numNodes()));
  for (std::size_t i = 0; i < topo.size(); ++i)
    pos[static_cast<std::size_t>(topo[i])] = i;
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    for (TaskId s : gc.succs(u))
      EXPECT_LT(pos[static_cast<std::size_t>(u)],
                pos[static_cast<std::size_t>(s)]);
}

TEST(EnhancedGraph, CriticalPathOfChainIsTotalLength) {
  const EnhancedGraph gc = testing::makeChainGc({3, 4, 5});
  EXPECT_EQ(gc.criticalPathLength(), 12);
  EXPECT_EQ(gc.totalLength(), 12);
}

TEST(EnhancedGraph, FromPartsAddsMissingChainEdges) {
  const EnhancedGraph gc = testing::makeChainGc({2, 2});
  ASSERT_EQ(gc.succs(0).size(), 1u);
  EXPECT_EQ(gc.succs(0)[0], 1);
}

TEST(EnhancedGraph, FromPartsRejectsInconsistentOrders) {
  std::vector<EnhancedGraph::Node> nodes(2);
  nodes[0].proc = 0;
  nodes[0].len = 1;
  nodes[1].proc = 0;
  nodes[1].len = 1;
  // Node 1 missing from the order.
  EXPECT_THROW(EnhancedGraph::fromParts(nodes, {}, {1}, {1}, {{0}}),
               PreconditionError);
  // Node listed on the wrong processor.
  nodes[1].proc = 1;
  EXPECT_THROW(EnhancedGraph::fromParts(nodes, {}, {1, 1}, {1, 1}, {{0, 1}, {}}),
               PreconditionError);
}

TEST(EnhancedGraph, FromPartsRejectsCycles) {
  std::vector<EnhancedGraph::Node> nodes(2);
  nodes[0].proc = 0;
  nodes[0].len = 1;
  nodes[1].proc = 1;
  nodes[1].len = 1;
  EXPECT_THROW(EnhancedGraph::fromParts(nodes, {{0, 1}, {1, 0}}, {1, 1},
                                        {1, 1}, {{0}, {1}}),
               PreconditionError);
}

TEST(EnhancedGraph, BuildRejectsInvalidMapping) {
  TaskGraph g;
  g.addTask("a", 1);
  g.addTask("b", 1);
  g.addEdge(0, 1, 1);
  Mapping m(2, 2);
  m.assign(1, 0); // order conflicts with the precedence a → b
  m.assign(0, 0);
  EXPECT_THROW(EnhancedGraph::build(g, twoProcs(), m), PreconditionError);
}

} // namespace
} // namespace cawo
