#include <gtest/gtest.h>

#include "core/asap.hpp"
#include "core/est_lst.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::makeGc;

TEST(EstLst, ChainEstIsPrefixSum) {
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  const auto est = computeEst(gc);
  EXPECT_EQ(est[0], 0);
  EXPECT_EQ(est[1], 3);
  EXPECT_EQ(est[2], 7);
}

TEST(EstLst, ChainLstCountsBackFromDeadline) {
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  const auto lst = computeLst(gc, 20);
  EXPECT_EQ(lst[2], 15);
  EXPECT_EQ(lst[1], 11);
  EXPECT_EQ(lst[0], 8);
}

TEST(EstLst, SlackIsDeadlineMinusCriticalPathOnChains) {
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 20);
  for (TaskId v = 0; v < gc.numNodes(); ++v)
    EXPECT_EQ(lst[static_cast<std::size_t>(v)] -
                  est[static_cast<std::size_t>(v)],
              20 - 12);
}

TEST(EstLst, DiamondTakesTheLongerBranch) {
  // 0 → 1 → 3, 0 → 2 → 3 on separate processors; branch 1 longer.
  const EnhancedGraph gc =
      makeGc({{0, 2}, {1, 10}, {2, 4}, {0, 3}},
             {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {1, 1, 1}, {1, 1, 1});
  const auto est = computeEst(gc);
  EXPECT_EQ(est[1], 2);
  EXPECT_EQ(est[2], 2);
  EXPECT_EQ(est[3], 12); // via the long branch
  const auto lst = computeLst(gc, 15);
  EXPECT_EQ(lst[3], 12);
  EXPECT_EQ(lst[1], 2);  // on the critical path: zero slack
  EXPECT_EQ(lst[2], 8);
}

TEST(EstLst, NegativeSlackSignalsInfeasibleDeadline) {
  const EnhancedGraph gc = makeChainGc({5, 5});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 8); // < critical path 10
  EXPECT_LT(lst[0], est[0]);
}

TEST(EstLst, RecomputeWindowsPinsPlacedTasks) {
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  std::vector<Time> est = computeEst(gc);
  std::vector<Time> lst = computeLst(gc, 30);
  Schedule partial(gc.numNodes());
  std::vector<bool> placed(3, false);
  partial.setStart(1, 10);
  placed[1] = true;
  recomputeWindows(gc, 30, partial, placed, est, lst);
  EXPECT_EQ(est[1], 10);
  EXPECT_EQ(lst[1], 10);
  EXPECT_EQ(est[2], 14); // after task 1 completes
  EXPECT_EQ(lst[0], 7);  // must finish before task 1 starts
  EXPECT_EQ(est[0], 0);
  EXPECT_EQ(lst[2], 25);
}

TEST(WindowState, PinsAndPropagatesLikeRecomputeWindows) {
  // Mirror of RecomputeWindowsPinsPlacedTasks through the incremental API.
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  WindowState ws(gc, 30);
  EXPECT_EQ(ws.estAll(), computeEst(gc));
  EXPECT_EQ(ws.lstAll(), computeLst(gc, 30));

  ws.place(1, 10);
  EXPECT_TRUE(ws.placed(1));
  EXPECT_EQ(ws.est(1), 10);
  EXPECT_EQ(ws.lst(1), 10);
  EXPECT_EQ(ws.est(2), 14); // after task 1 completes
  EXPECT_EQ(ws.lst(0), 7);  // must finish before task 1 starts
  EXPECT_EQ(ws.est(0), 0);
  EXPECT_EQ(ws.lst(2), 25);
  EXPECT_EQ(ws.numPlaced(), 1u);
  EXPECT_TRUE(ws.feasible());
}

TEST(WindowState, PlacedTasksAbsorbPropagation) {
  // Chain 0 → 1 → 2; placing 0 late must not move the already pinned 1,
  // and 2 is shielded behind it — exactly as the oracle's pinned sweep.
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  WindowState ws(gc, 40);
  ws.place(1, 10);
  ws.place(0, 7);
  EXPECT_EQ(ws.est(1), 10);
  EXPECT_EQ(ws.lst(1), 10);
  EXPECT_EQ(ws.est(2), 14);
  EXPECT_TRUE(ws.feasible());
}

TEST(WindowState, LatePinDrivesSlackNegative) {
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  WindowState ws(gc, 12); // exactly the critical path: zero slack
  EXPECT_TRUE(ws.feasible());
  ws.place(0, 2); // 2 units past LST(0) = 0
  EXPECT_FALSE(ws.feasible());
  EXPECT_EQ(ws.negativeSlackCount(), 2u); // tasks 1 and 2 are squeezed
}

TEST(Asap, StartsEveryTaskAtEst) {
  const EnhancedGraph gc = makeChainGc({3, 4, 5});
  const Schedule s = scheduleAsap(gc);
  const auto est = computeEst(gc);
  for (TaskId v = 0; v < gc.numNodes(); ++v)
    EXPECT_EQ(s.start(v), est[static_cast<std::size_t>(v)]);
}

TEST(Asap, MakespanEqualsCriticalPath) {
  const EnhancedGraph gc =
      makeGc({{0, 2}, {1, 10}, {2, 4}, {0, 3}},
             {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {1, 1, 1}, {1, 1, 1});
  EXPECT_EQ(asapMakespan(gc), gc.criticalPathLength());
  EXPECT_EQ(asapMakespan(gc), 15);
}

TEST(Asap, ScheduleIsValidAtItsOwnMakespan) {
  const EnhancedGraph gc =
      makeGc({{0, 2}, {1, 10}, {2, 4}, {0, 3}},
             {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {1, 1, 1}, {1, 1, 1});
  const Schedule s = scheduleAsap(gc);
  const auto result = validateSchedule(gc, s, asapMakespan(gc));
  EXPECT_TRUE(result.ok) << result.message;
}

} // namespace
} // namespace cawo
