// Pins the documented edge-case behaviour of util/parallel.hpp:
// `parallelFor` (n == 0, threads == 0, threads > n, exception
// propagation) and the serve daemon's `WorkerPool` (bounded admission,
// backpressure, drain, escaped-exception capture, idempotent stop).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace cawo {
namespace {

/// A manual gate jobs can block on, so tests control exactly when a
/// worker is "busy".
class Gate {
public:
  void open() {
    {
      const std::scoped_lock lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ParallelFor, ZeroJobsNeverInvokesTheFunction) {
  std::atomic<int> calls{0};
  parallelFor(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, ZeroThreadsClampsToHardwareAndRunsEverything) {
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::set<std::size_t> indices;
  parallelFor(17, 0, [&](std::size_t i) {
    ++calls;
    const std::scoped_lock lock(mutex);
    indices.insert(i);
  });
  EXPECT_EQ(calls.load(), 17);
  EXPECT_EQ(indices.size(), 17u);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), 16u);
}

TEST(ParallelFor, MoreThreadsThanJobsStillRunsEachIndexOnce) {
  std::vector<std::atomic<int>> counts(3);
  parallelFor(3, 64, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, FirstExceptionPropagatesAndStopsFurtherJobs) {
  std::atomic<int> started{0};
  try {
    parallelFor(1000, 2, [&](std::size_t i) {
      ++started;
      if (i == 0) throw std::runtime_error("job 0 failed");
      // Give the failing job time to set the failure flag so the pool
      // demonstrably stops early instead of racing through all 1000.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    FAIL() << "exception must propagate to the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 0 failed");
  }
  EXPECT_LT(started.load(), 1000) << "no further jobs after a failure";
}

TEST(ParallelFor, SingleWorkerRunsInlineAndInOrder) {
  std::vector<std::size_t> order;
  parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, RunsSubmittedJobsAndDrains) {
  WorkerPool pool(2, 16);
  EXPECT_EQ(pool.threads(), 2u);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(pool.trySubmit([&done] { ++done; }));
  pool.drain();
  EXPECT_EQ(done.load(), 10);
  EXPECT_EQ(pool.queueDepth(), 0u);
  EXPECT_EQ(pool.busy(), 0u);
}

TEST(WorkerPool, BoundedQueueRejectsWhenFull) {
  // One worker, capacity 2. Block the worker, fill the queue, and the
  // next submission must bounce.
  WorkerPool pool(1, 2);
  Gate gate;
  ASSERT_TRUE(pool.trySubmit([&gate] { gate.wait(); })); // occupies worker
  // Wait until the blocker is actually running so the queue is empty.
  while (pool.busy() == 0) std::this_thread::yield();
  ASSERT_TRUE(pool.trySubmit([] {}));
  ASSERT_TRUE(pool.trySubmit([] {}));
  EXPECT_EQ(pool.queueDepth(), 2u);
  EXPECT_FALSE(pool.trySubmit([] {})) << "capacity 2 must reject job 3";
  gate.open();
  pool.drain();
  EXPECT_EQ(pool.queueDepth(), 0u);
  // Capacity frees up after the drain.
  EXPECT_TRUE(pool.trySubmit([] {}));
  pool.drain();
}

TEST(WorkerPool, EscapedExceptionIsCapturedAndPoolSurvives) {
  WorkerPool pool(1, 8);
  ASSERT_TRUE(
      pool.trySubmit([] { throw std::runtime_error("poisoned job"); }));
  pool.drain();
  const std::exception_ptr error = pool.firstError();
  ASSERT_TRUE(error);
  try {
    std::rethrow_exception(error);
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "poisoned job");
  }
  // The pool keeps serving after a poisoned job.
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.trySubmit([&ran] { ran = true; }));
  pool.drain();
  EXPECT_TRUE(ran.load());
}

TEST(WorkerPool, StopFinishesQueuedJobsAndRejectsNewOnes) {
  WorkerPool pool(1, 8);
  std::atomic<int> done{0};
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(pool.trySubmit([&done] { ++done; }));
  pool.stop();
  EXPECT_EQ(done.load(), 5) << "stop() drains the queue before joining";
  EXPECT_FALSE(pool.trySubmit([&done] { ++done; }));
  pool.stop(); // idempotent
  EXPECT_EQ(done.load(), 5);
}

TEST(WorkerPool, ZeroThreadsClampsToAtLeastOne) {
  WorkerPool pool(0, 4);
  EXPECT_GE(pool.threads(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.trySubmit([&ran] { ran = true; }));
  pool.drain();
  EXPECT_TRUE(ran.load());
}

} // namespace
} // namespace cawo
