// Writer ↔ parser number round-trips for exp/json: `jsonNumber` must emit
// the shortest representation that parses back to exactly the same double
// (tiny exponent-notation regret values included), `-0.0` must keep its
// sign and double-ness end to end, and the number scanner must accept
// exactly the JSON grammar (strict exponents, no partial-consumption
// garbage).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <sstream>

#include "exp/json.hpp"
#include "util/require.hpp"

namespace cawo {
namespace {

const double kTrickyDoubles[] = {
    0.0,
    1.0,
    -1.0,
    1.0 / 3.0,
    2.0 / 3.0,
    0.1,
    1e-300,
    -1e-300,
    6.02214076e23,
    1.0000000000000002,      // 1 + ulp
    1e-9 + 1e-24,
    5e-324,                  // smallest subnormal
    std::numeric_limits<double>::denorm_min(),
    std::numeric_limits<double>::min(),
    std::numeric_limits<double>::max(),
    0.104704374886,          // a 12-digit golden-era ratio value
    1.0000001923784523,      // tiny-regret-ratio shape
};

TEST(JsonNumber, EveryFiniteDoubleRoundTripsExactly) {
  for (const double v : kTrickyDoubles) {
    const std::string text = jsonNumber(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << "jsonNumber(" << v << ") = \"" << text
                       << "\" does not parse back exactly";
  }
}

TEST(JsonNumber, TwelveDigitRepresentationsKeepTheirHistoricalBytes) {
  // Values that already round-trip at 12 significant digits must not gain
  // digits — the campaign golden depends on it.
  EXPECT_EQ(jsonNumber(1.5), "1.5");
  EXPECT_EQ(jsonNumber(0.5), "0.5");
  EXPECT_EQ(jsonNumber(2.0), "2");
  EXPECT_EQ(jsonNumber(0.0), "0");
  EXPECT_EQ(jsonNumber(1e20), "1e+20");
}

TEST(JsonNumber, NegativeZeroKeepsSignAndFraction) {
  EXPECT_EQ(jsonNumber(-0.0), "-0.0");
  const JsonValue v = JsonValue::parse("-0.0");
  EXPECT_FALSE(v.isInteger());
  EXPECT_TRUE(std::signbit(v.asDouble()));
  // Full write → parse → write cycle is the identity.
  EXPECT_EQ(jsonNumber(v.asDouble()), "-0.0");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonRoundTrip, WriterToParserIsBitExactForArraysOfDoubles) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginArray();
  for (const double v : kTrickyDoubles) w.value(v);
  w.value(-0.0);
  w.endArray();

  const JsonValue doc = JsonValue::parse(out.str());
  const auto& values = doc.asArray();
  ASSERT_EQ(values.size(), std::size(kTrickyDoubles) + 1);
  for (std::size_t i = 0; i < std::size(kTrickyDoubles); ++i) {
    EXPECT_EQ(values[i].asDouble(), kTrickyDoubles[i]) << "index " << i;
  }
  EXPECT_TRUE(std::signbit(values.back().asDouble()));
}

TEST(JsonRoundTrip, ReWritingAParsedDocumentIsIdempotent) {
  // parse → write → parse → write must be a fixpoint for numbers of every
  // spelling, including exponent notation.
  const auto rewrite = [](const std::string& numberText) {
    const JsonValue v = JsonValue::parse(numberText);
    return v.isInteger() ? std::to_string(v.asInt())
                         : jsonNumber(v.asDouble());
  };
  for (const char* text :
       {"1e-20", "2.5e-8", "-3.25E+12", "0.104704374886", "123", "-0.0",
        "1.0000000000000002"}) {
    const std::string once = rewrite(text);
    EXPECT_EQ(rewrite(once), once) << text;
  }
}

// ---------------------------------------------------------------------------
// Strict number grammar
// ---------------------------------------------------------------------------

TEST(JsonNumberParsing, AcceptsTheFullJsonGrammar) {
  EXPECT_EQ(JsonValue::parse("0").asInt(), 0);
  EXPECT_EQ(JsonValue::parse("-7").asInt(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.25").asDouble(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").asDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1E+3").asDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e-2").asDouble(), 0.025);
}

TEST(JsonNumberParsing, IntegralExponentFormsRoundTripAsIntegers) {
  // "1e3" and "42.0" are integers in every JSON toolchain (python's
  // json.tool happily writes them); asInt must work and a re-write emits
  // the canonical integer form.
  EXPECT_TRUE(JsonValue::parse("1e3").isInteger());
  EXPECT_EQ(JsonValue::parse("1e3").asInt(), 1000);
  EXPECT_TRUE(JsonValue::parse("42.0").isInteger());
  EXPECT_EQ(JsonValue::parse("42.0").asInt(), 42);
  // Huge exponents exceed exact-integer range and stay doubles.
  EXPECT_FALSE(JsonValue::parse("1e30").isInteger());
}

TEST(JsonNumberParsing, RejectsPartialConsumptionGarbage) {
  // The old scanner let std::stod's partial consumption turn these into
  // numbers silently.
  for (const char* text :
       {"1-2", "1+2", "+5", "1.", ".5", "1e", "1e+", "1.2.3", "1e5e6",
        "--1", "0x10", "01", "-007"}) {
    EXPECT_THROW(JsonValue::parse(text), PreconditionError) << text;
  }
  // Exponents MAY carry leading zeros ("1e05" is valid JSON).
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e05").asDouble(), 1e5);
}

} // namespace
} // namespace cawo
