// Stress/soak coverage for the WorkerPool under a serve-like load:
// hundreds of small solves pushed through a small pool with a tiny
// admission queue, with randomized cancellations (the serve daemon's
// deadline-expiry path: a job that finds its request cancelled records
// that and returns without solving) and retry-on-backpressure admission.
// The pool must never deadlock, never lose a result, and finish within a
// generous wall-clock bound; a mid-run stop() must still drain every job
// that was admitted. Run under the TSan CI job, this is the test that
// would catch queue/worker races.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "core/asap.hpp"
#include "core/cawosched.hpp"
#include "core/solve_context.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cawo {
namespace {

using testing::makeGc;
using testing::randomProfile;

struct SmallInstance {
  EnhancedGraph gc;
  PowerProfile profile;
  Time deadline = 0;
};

/// A small random instance, cheap enough that hundreds of solves finish
/// quickly even under sanitizers.
SmallInstance smallInstance(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<ProcId, Time>> tasks;
  for (int i = 0; i < 12; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, 1)),
                     rng.uniformInt(1, 5)});
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int i = 0; i < 12; ++i)
    for (int j = i + 1; j < 12; ++j)
      if (rng.uniformReal(0.0, 1.0) < 0.15)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  SmallInstance inst{makeGc(tasks, edges, {1, 2}, {3, 4}), PowerProfile{}, 0};
  inst.deadline = 2 * asapMakespan(inst.gc) + 3;
  inst.profile = randomProfile(inst.deadline, 6, 2, 10, rng);
  return inst;
}

/// Submit with bounded retries — the serve admission loop's client-side
/// mirror. Returns false only if the queue stayed full the whole time.
bool submitWithRetry(WorkerPool& pool, std::function<void()> job) {
  for (int attempt = 0; attempt < 20000; ++attempt) {
    if (pool.trySubmit(job)) return true;
    std::this_thread::yield();
  }
  return false;
}

TEST(WorkerPoolStress, HundredsOfSolvesWithRandomCancellations) {
  constexpr std::size_t kJobs = 400;
  const SmallInstance inst = smallInstance(1234);

  // Serve keeps one primed context per instance and only lets solves read
  // it; mirror that exactly — prime, freeze, fan out.
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  (void)ctx.initialEst();
  (void)ctx.initialLst();
  (void)ctx.asapMakespan();
  (void)ctx.sumWorkPower();
  const std::vector<VariantSpec> variants = allVariants();
  for (const VariantSpec& spec : variants) {
    (void)ctx.scoreOrder(ScoreOptions{spec.base, spec.weighted});
    (void)ctx.budgetTreePrototype(spec.refined, 3);
  }
  (void)ctx.refinedIntervals(3);

  // Reference results, computed serially up front.
  std::vector<Schedule> expected;
  for (const VariantSpec& spec : variants)
    expected.push_back(runVariant(ctx, spec));

  WallTimer timer;
  std::atomic<std::size_t> solved{0};
  std::atomic<std::size_t> cancelled{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::atomic<bool>> cancelFlag(kJobs);
  Rng rng(77);
  // Pre-roll which jobs get cancelled (~1 in 4) so the cancelling thread
  // below races the workers on realistic timing, not on the decision.
  std::vector<std::size_t> toCancel;
  for (std::size_t i = 0; i < kJobs; ++i)
    if (rng.uniformInt(0, 3) == 0) toCancel.push_back(i);

  {
    const SolveContextFreezeGuard freeze(ctx);
    WorkerPool pool(4, 8); // tiny queue: admission backpressure is exercised

    // The "deadline reaper": flips cancel flags while solves are in
    // flight, exactly like serve expiring queued requests.
    std::thread reaper([&] {
      for (const std::size_t i : toCancel) {
        cancelFlag[i].store(true, std::memory_order_release);
        if ((i & 7) == 0) std::this_thread::yield();
      }
    });

    std::size_t admitted = 0;
    for (std::size_t i = 0; i < kJobs; ++i) {
      const VariantSpec spec = variants[i % variants.size()];
      const Schedule& want = expected[i % variants.size()];
      const bool ok = submitWithRetry(pool, [&, i, spec] {
        if (cancelFlag[i].load(std::memory_order_acquire)) {
          cancelled.fetch_add(1);
          return;
        }
        const Schedule got = runVariant(ctx, spec);
        if (got.starts() == want.starts())
          solved.fetch_add(1);
        else
          mismatches.fetch_add(1);
      });
      ASSERT_TRUE(ok) << "queue stayed full for job " << i;
      ++admitted;
    }

    pool.drain();
    reaper.join();
    EXPECT_EQ(pool.queueDepth(), 0u);
    EXPECT_EQ(pool.busy(), 0u);
    EXPECT_EQ(pool.firstError(), nullptr);
    EXPECT_EQ(admitted, kJobs);
  }

  // Every admitted job ran to exactly one outcome — nothing lost, nothing
  // double-counted, every un-cancelled solve bit-identical.
  EXPECT_EQ(solved.load() + cancelled.load(), kJobs);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(solved.load(), 0u);

  // Generous bound (sanitizer builds are ~10× slower): the real point is
  // "terminates promptly", i.e. no deadlock and no unbounded retry spin.
  EXPECT_LT(timer.elapsedSec(), 120.0);
}

TEST(WorkerPoolStress, MidRunStopDrainsAdmittedJobs) {
  const SmallInstance inst = smallInstance(9);
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  const VariantSpec spec{BaseScore::Slack, true, false, false};
  (void)ctx.initialEst();
  (void)ctx.initialLst();
  (void)ctx.asapMakespan();
  (void)ctx.sumWorkPower();
  (void)ctx.scoreOrder(ScoreOptions{spec.base, spec.weighted});
  (void)ctx.budgetTreePrototype(spec.refined, CaWoParams{}.blockSize);

  std::atomic<std::size_t> ran{0};
  std::size_t admitted = 0;
  WorkerPool pool(3, 16);
  {
    const SolveContextFreezeGuard freeze(ctx);
    for (std::size_t i = 0; i < 100; ++i)
      if (pool.trySubmit([&] {
            (void)runVariant(ctx, spec);
            ran.fetch_add(1);
          }))
        ++admitted;
    pool.stop(); // finishes every admitted job, then joins
  }
  EXPECT_EQ(ran.load(), admitted);
  EXPECT_GT(admitted, 0u);
  // A stopped pool admits nothing and drops the job on the floor.
  EXPECT_FALSE(pool.trySubmit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), admitted);
}

TEST(WorkerPoolStress, ConcurrentSubmittersAccountForEveryJob) {
  // Several producer threads race tiny jobs into a capacity-1 queue: the
  // harshest admission interleaving. sum(accepted) must equal the number
  // of executions, regardless of how many submissions bounce.
  WorkerPool pool(2, 1);
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i)
        if (submitWithRetry(pool, [&] { executed.fetch_add(1); }))
          accepted.fetch_add(1);
    });
  for (std::thread& t : producers) t.join();
  pool.drain();
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_EQ(accepted.load(), 800u); // retries always got through eventually
  EXPECT_EQ(pool.firstError(), nullptr);
}

} // namespace
} // namespace cawo
