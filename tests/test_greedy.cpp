#include <gtest/gtest.h>

#include "util/require.hpp"

#include <tuple>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/greedy.hpp"
#include "profile/scenario.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::makeGc;

TEST(Greedy, PicksTheGreenestReachableInterval) {
  // One task len 2; deadline 20. Budgets: [0,5)=1, [5,10)=9, [10,20)=4.
  // The greedy must start the task at 5 (begin of the richest interval).
  const EnhancedGraph gc = makeChainGc({2}, 0, 5);
  PowerProfile p;
  p.appendInterval(5, 1);
  p.appendInterval(5, 9);
  p.appendInterval(10, 4);
  const Schedule s =
      scheduleGreedy(gc, p, 20, {BaseScore::Pressure, false, false, 3});
  EXPECT_EQ(s.start(0), 5);
}

TEST(Greedy, PrefersEarliestOnBudgetTies) {
  const EnhancedGraph gc = makeChainGc({2}, 0, 5);
  PowerProfile p;
  p.appendInterval(5, 7);
  p.appendInterval(5, 7);
  p.appendInterval(10, 7);
  const Schedule s =
      scheduleGreedy(gc, p, 20, {BaseScore::Slack, false, false, 3});
  EXPECT_EQ(s.start(0), 0);
}

TEST(Greedy, FallsBackToEstWhenNoIntervalBeginReachable) {
  // Task window [3, 4] contains no interval begin (boundaries 0 and 10).
  const EnhancedGraph gc = makeGc({{0, 3}, {0, 6}, {0, 1}},
                                  {{0, 1}, {1, 2}}, {0}, {5});
  const PowerProfile p = PowerProfile::uniform(11, 5);
  // Windows at deadline 11: task1 est=3, lst=11-1-6=4 → no begin inside.
  const Schedule s =
      scheduleGreedy(gc, p, 11, {BaseScore::Pressure, false, false, 3});
  const auto r = validateSchedule(gc, s, 11);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Greedy, BudgetConsumptionAvoidsPileUp) {
  // Two independent unit-power tasks; one rich interval that fits only one
  // task's draw without overflowing. After the first placement, the budget
  // drops, and the second task should go elsewhere if another interval now
  // has the higher remaining budget.
  const EnhancedGraph gc =
      makeGc({{0, 4}, {1, 4}}, {}, {0, 0}, {6, 6});
  PowerProfile p;
  p.appendInterval(4, 8);  // fits one task (draw 6), 2 left after consume−6…
  p.appendInterval(4, 7);  // second-best initially
  p.appendInterval(12, 1);
  const Schedule s =
      scheduleGreedy(gc, p, 20, {BaseScore::Pressure, false, false, 3});
  // First task (id order tie) takes interval 0; its budget falls to 2, so
  // the second task must take interval 1.
  EXPECT_EQ(s.start(0), 0);
  EXPECT_EQ(s.start(1), 4);
  EXPECT_EQ(evaluateCost(gc, p, s), 0);
}

TEST(Greedy, RefinedIntervalsEnableOffBoundaryStarts) {
  // Budget-rich zone ends at 10; a task of length 3 can only exploit it
  // fully when end-aligned at 10, i.e. started at 7 — a refined cut point.
  const EnhancedGraph gc = makeChainGc({3}, 0, 5);
  PowerProfile p;
  p.appendInterval(10, 9);
  p.appendInterval(10, 1);
  GreedyOptions refined{BaseScore::Pressure, false, true, 3};
  const Schedule s = scheduleGreedy(gc, p, 20, refined);
  // Any start in [0,7] is optimal here; the refined grid includes 7 and the
  // algorithm picks the earliest richest begin, which is 0.
  EXPECT_LE(s.start(0), 7);
  EXPECT_EQ(evaluateCost(gc, p, s), 0);
}

TEST(Greedy, ThrowsOnInfeasibleDeadline) {
  const EnhancedGraph gc = makeChainGc({5, 5});
  const PowerProfile p = PowerProfile::uniform(8, 1);
  EXPECT_THROW(
      scheduleGreedy(gc, p, 8, {BaseScore::Slack, false, false, 3}),
      PreconditionError);
}

TEST(Greedy, ThrowsWhenProfileShorterThanDeadline) {
  const EnhancedGraph gc = makeChainGc({2});
  const PowerProfile p = PowerProfile::uniform(5, 1);
  EXPECT_THROW(
      scheduleGreedy(gc, p, 10, {BaseScore::Slack, false, false, 3}),
      PreconditionError);
}

// Parameterised validity sweep: every variant switch combination on
// several scenario/deadline combinations of a realistic small instance.
using GreedyParam = std::tuple<int /*base*/, int /*weighted*/, int /*refined*/,
                               int /*scenario*/, int /*deadlineIdx*/>;

class GreedyValidity : public ::testing::TestWithParam<GreedyParam> {};

TEST_P(GreedyValidity, ProducesFeasibleSchedulesAndRespectsDeadline) {
  const auto [baseI, weighted, refined, scenarioI, deadlineIdx] = GetParam();
  Rng rng(static_cast<std::uint64_t>(scenarioI) * 100 +
          static_cast<std::uint64_t>(deadlineIdx));

  // Random layered multiproc instance.
  const int numProcs = 3;
  std::vector<std::pair<ProcId, Time>> tasks;
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int i = 0; i < 18; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, numProcs - 1)),
                     rng.uniformInt(1, 8)});
  for (int i = 0; i < 18; ++i)
    for (int j = i + 1; j < 18; ++j)
      if (rng.uniform01() < 0.12)
        edges.push_back({static_cast<TaskId>(i), static_cast<TaskId>(j)});
  const EnhancedGraph gc =
      testing::makeGc(tasks, edges, {2, 3, 5}, {4, 6, 9});

  const Time d = asapMakespan(gc);
  const double factors[] = {1.0, 1.5, 3.0};
  const auto deadline =
      static_cast<Time>(factors[static_cast<std::size_t>(deadlineIdx)] *
                        static_cast<double>(d)) +
      1;
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  ScenarioOptions sopts;
  sopts.numIntervals = 6;
  sopts.seed = 99;
  const PowerProfile profile =
      generateScenario(static_cast<Scenario>(scenarioI), deadline,
                       gc.totalIdlePower(), sumWork, sopts);

  GreedyOptions opts;
  opts.base = baseI == 0 ? BaseScore::Slack : BaseScore::Pressure;
  opts.weighted = weighted != 0;
  opts.refined = refined != 0;
  const Schedule s = scheduleGreedy(gc, profile, deadline, opts);
  const auto result = validateSchedule(gc, s, deadline);
  EXPECT_TRUE(result.ok) << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GreedyValidity,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1), ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2)));

} // namespace
} // namespace cawo
