#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "heft/green_heft.hpp"
#include "profile/scenario.hpp"
#include "workflow/generators.hpp"

namespace cawo {
namespace {

Platform smallCluster() { return Platform::scaled(1); }

TEST(GreenHeft, AlphaOneReproducesPlainHeft) {
  WorkflowGenOptions opts;
  opts.targetTasks = 60;
  opts.seed = 4;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  const Platform pf = smallCluster();
  const PowerProfile profile = PowerProfile::uniform(100000, 1000);

  const HeftResult plain = runHeft(g, pf);
  GreenHeftOptions gh;
  gh.alpha = 1.0;
  const HeftResult green = runGreenHeft(g, pf, profile, gh);
  for (TaskId v = 0; v < g.numTasks(); ++v)
    EXPECT_EQ(green.mapping.procOf(v), plain.mapping.procOf(v)) << v;
  EXPECT_EQ(green.makespan, plain.makespan);
}

TEST(GreenHeft, ProducesAValidMapping) {
  WorkflowGenOptions opts;
  opts.targetTasks = 80;
  opts.seed = 6;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Eager, opts);
  const Platform pf = smallCluster();
  const PowerProfile profile = generateScenario(
      Scenario::S1, 50000, pf.totalIdlePower(), pf.totalWorkPower(),
      {16, 0.1, 3});
  for (const double alpha : {0.0, 0.3, 0.5, 0.8}) {
    GreenHeftOptions gh;
    gh.alpha = alpha;
    const HeftResult res = runGreenHeft(g, pf, profile, gh);
    EXPECT_TRUE(res.mapping.validate(g).empty()) << "alpha=" << alpha;
    // Finish times respect precedence + communication.
    for (const auto& e : g.edges()) {
      const Time comm =
          res.mapping.procOf(e.src) == res.mapping.procOf(e.dst) ? 0 : e.data;
      EXPECT_GE(res.startTimes[static_cast<std::size_t>(e.dst)],
                res.finishTimes[static_cast<std::size_t>(e.src)] + comm);
    }
  }
}

TEST(GreenHeft, RejectsAlphaOutsideUnitInterval) {
  TaskGraph g;
  g.addTask("t", 5);
  const PowerProfile p = PowerProfile::uniform(10, 5);
  GreenHeftOptions gh;
  gh.alpha = 1.5;
  EXPECT_THROW(runGreenHeft(g, smallCluster(), p, gh), PreconditionError);
}

TEST(GreenHeft, BrownEstimateIntegratesHeadroom) {
  PowerProfile p;
  p.appendInterval(10, 20); // headroom over idle 15 → 5
  p.appendInterval(10, 15); // headroom 0
  // workPower 8: first interval over = 3, second = 8.
  EXPECT_EQ(estimateBrownEnergy(p, 15, 8, 5, 10), 3 * 5 + 8 * 5);
  // Window entirely inside the generous interval.
  EXPECT_EQ(estimateBrownEnergy(p, 15, 4, 0, 10), 0);
  // Beyond the horizon everything is brown.
  EXPECT_EQ(estimateBrownEnergy(p, 15, 8, 15, 10), 8 * 5 + 8 * 5);
}

TEST(GreenHeft, CarbonBiasPrefersGreenAlignedProcessor) {
  // Two processors, equal speed; proc 1 draws far more work power. With a
  // tight green budget the carbon-aware pass must prefer proc 0 even
  // though plain HEFT (ties by EFT) could use either.
  TaskGraph g;
  g.addTask("t0", 8);
  g.addTask("t1", 8);
  Platform pf;
  pf.addProcessor({"frugal", 2, 5, 2});
  pf.addProcessor({"hungry", 2, 5, 50});
  const PowerProfile profile = PowerProfile::uniform(1000, 12);

  GreenHeftOptions gh;
  gh.alpha = 0.2; // mostly carbon-driven
  const HeftResult res = runGreenHeft(g, pf, profile, gh);
  EXPECT_EQ(res.mapping.procOf(0), 0);
  EXPECT_EQ(res.mapping.procOf(1), 0);
}

TEST(GreenHeft, TwoPassPipelineNeverBreaksScheduling) {
  // Section 7 of the paper: pass 1 = carbon-aware mapping, pass 2 =
  // CaWoSched. The produced schedules must stay feasible.
  WorkflowGenOptions opts;
  opts.targetTasks = 50;
  opts.seed = 11;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Methylseq, opts);
  const Platform pf = smallCluster();
  const PowerProfile mapProfile = generateScenario(
      Scenario::S1, 60000, pf.totalIdlePower(), pf.totalWorkPower(),
      {16, 0.1, 9});
  GreenHeftOptions gh;
  gh.alpha = 0.5;
  const HeftResult mapped = runGreenHeft(g, pf, mapProfile, gh);
  const EnhancedGraph gc =
      EnhancedGraph::build(g, pf, mapped.mapping, {}, &mapped.startTimes);
  const Time deadline = 2 * asapMakespan(gc);
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  const PowerProfile profile = generateScenario(
      Scenario::S1, deadline, gc.totalIdlePower(), sumWork, {16, 0.1, 9});
  const Schedule s = runVariant(gc, profile, deadline,
                                VariantSpec::parse("pressWR-LS"));
  const auto valid = validateSchedule(gc, s, deadline);
  EXPECT_TRUE(valid.ok) << valid.message;
}

} // namespace
} // namespace cawo
