#include <gtest/gtest.h>

#include "util/require.hpp"

#include <algorithm>

#include "workflow/generators.hpp"

namespace cawo {
namespace {

class FamilyGen : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FamilyGen, SizeIsCloseToTargetAndGraphIsADag) {
  const auto [familyI, target] = GetParam();
  const auto family = static_cast<WorkflowFamily>(familyI);
  WorkflowGenOptions opts;
  opts.targetTasks = target;
  opts.seed = 5;
  const TaskGraph g = generateWorkflow(family, opts);
  EXPECT_TRUE(g.isAcyclic());
  // Size within one per-sample template of the target.
  EXPECT_GE(g.numTasks(), std::max(1, target - 12));
  EXPECT_LE(g.numTasks(), target + 12);
  // All weights positive; vertex weights dominate edge weights on average.
  double vertexSum = 0.0, edgeSum = 0.0;
  for (TaskId v = 0; v < g.numTasks(); ++v) {
    EXPECT_GT(g.work(v), 0);
    vertexSum += static_cast<double>(g.work(v));
  }
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.data, 0);
    edgeSum += static_cast<double>(e.data);
  }
  if (!g.edges().empty())
    EXPECT_GT(vertexSum / static_cast<double>(g.numTasks()),
              edgeSum / static_cast<double>(g.edges().size()));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndSizes, FamilyGen,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(20, 100, 400)));

TEST(Generators, SameSeedReproducesTheGraph) {
  WorkflowGenOptions opts;
  opts.targetTasks = 120;
  opts.seed = 42;
  const TaskGraph a = generateWorkflow(WorkflowFamily::Eager, opts);
  const TaskGraph b = generateWorkflow(WorkflowFamily::Eager, opts);
  ASSERT_EQ(a.numTasks(), b.numTasks());
  ASSERT_EQ(a.numEdges(), b.numEdges());
  for (TaskId v = 0; v < a.numTasks(); ++v) {
    EXPECT_EQ(a.work(v), b.work(v));
    EXPECT_EQ(a.name(v), b.name(v));
  }
  for (std::size_t i = 0; i < a.numEdges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
    EXPECT_EQ(a.edges()[i].data, b.edges()[i].data);
  }
}

TEST(Generators, DifferentSeedsChangeWeights) {
  WorkflowGenOptions a;
  a.targetTasks = 60;
  a.seed = 1;
  WorkflowGenOptions b = a;
  b.seed = 2;
  const TaskGraph ga = generateWorkflow(WorkflowFamily::Atacseq, a);
  const TaskGraph gb = generateWorkflow(WorkflowFamily::Atacseq, b);
  ASSERT_EQ(ga.numTasks(), gb.numTasks());
  int different = 0;
  for (TaskId v = 0; v < ga.numTasks(); ++v)
    if (ga.work(v) != gb.work(v)) ++different;
  EXPECT_GT(different, 0);
}

TEST(Generators, AtacseqHasGlobalMergeStructure) {
  WorkflowGenOptions opts;
  opts.targetTasks = 80;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  // multiqc (task 2 by construction) collects from every sample.
  EXPECT_EQ(g.name(2), "multiqc");
  EXPECT_GT(g.inDegree(2), 4u);
  EXPECT_EQ(g.outDegree(2), 0u);
  // prepare_genome fans out to every sample's aligner.
  EXPECT_EQ(g.name(0), "prepare_genome");
  EXPECT_GT(g.outDegree(0), 4u);
  EXPECT_EQ(g.inDegree(0), 0u);
}

TEST(Generators, EagerBranchesIntoTwoMappingRoutes) {
  WorkflowGenOptions opts;
  opts.targetTasks = 40;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Eager, opts);
  // Find an adapter_removal task; it must have two mapping successors.
  bool found = false;
  for (TaskId v = 0; v < g.numTasks(); ++v) {
    if (g.name(v).find("adapter_removal") != std::string::npos) {
      EXPECT_EQ(g.outDegree(v), 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Generators, ChainShape) {
  WorkflowGenOptions opts;
  const TaskGraph g = genChain(5, opts);
  EXPECT_EQ(g.numTasks(), 5);
  EXPECT_EQ(g.numEdges(), 4u);
  EXPECT_TRUE(g.isAcyclic());
  for (TaskId v = 0; v < 4; ++v) EXPECT_TRUE(g.hasEdge(v, v + 1));
}

TEST(Generators, ForkJoinShape) {
  WorkflowGenOptions opts;
  const TaskGraph g = genForkJoin(3, 2, opts);
  EXPECT_EQ(g.numTasks(), 2 + 3 * 2);
  EXPECT_EQ(g.outDegree(0), 3u); // source fans out
  EXPECT_EQ(g.inDegree(1), 3u);  // sink joins
  EXPECT_TRUE(g.isAcyclic());
}

TEST(Generators, IndependentHasNoEdges) {
  WorkflowGenOptions opts;
  const TaskGraph g = genIndependent(7, opts);
  EXPECT_EQ(g.numTasks(), 7);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(Generators, LayeredRandomConnectsConsecutiveLayers) {
  WorkflowGenOptions opts;
  opts.seed = 9;
  const TaskGraph g = genLayeredRandom(30, 5, 3, opts);
  EXPECT_EQ(g.numTasks(), 30);
  EXPECT_TRUE(g.isAcyclic());
  // Every non-first-layer task has at least one predecessor.
  for (TaskId v = 6; v < 30; ++v) EXPECT_GE(g.inDegree(v), 1u);
}

TEST(Generators, RandomDagEdgeDensityTracksProbability) {
  WorkflowGenOptions opts;
  opts.seed = 15;
  const TaskGraph dense = genRandomDag(30, 0.5, opts);
  const TaskGraph sparse = genRandomDag(30, 0.05, opts);
  EXPECT_TRUE(dense.isAcyclic());
  EXPECT_GT(dense.numEdges(), sparse.numEdges());
}

TEST(Generators, RejectsBadParameters) {
  WorkflowGenOptions opts;
  EXPECT_THROW(genChain(0, opts), PreconditionError);
  EXPECT_THROW(genForkJoin(0, 1, opts), PreconditionError);
  EXPECT_THROW(genLayeredRandom(3, 5, 1, opts), PreconditionError);
  EXPECT_THROW(genRandomDag(5, 1.5, opts), PreconditionError);
  opts.targetTasks = 0;
  EXPECT_THROW(generateWorkflow(WorkflowFamily::Atacseq, opts),
               PreconditionError);
}

TEST(Generators, FamilyNamesAreStable) {
  EXPECT_STREQ(familyName(WorkflowFamily::Atacseq), "atacseq");
  EXPECT_STREQ(familyName(WorkflowFamily::Bacass), "bacass");
  EXPECT_STREQ(familyName(WorkflowFamily::Eager), "eager");
  EXPECT_STREQ(familyName(WorkflowFamily::Methylseq), "methylseq");
}

} // namespace
} // namespace cawo
