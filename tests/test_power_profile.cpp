#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/power_profile.hpp"

namespace cawo {
namespace {

TEST(PowerProfile, AppendBuildsContiguousIntervals) {
  PowerProfile p;
  p.appendInterval(10, 5);
  p.appendInterval(20, 7);
  EXPECT_EQ(p.horizon(), 30);
  EXPECT_EQ(p.numIntervals(), 2u);
  EXPECT_EQ(p.interval(0).begin, 0);
  EXPECT_EQ(p.interval(0).end, 10);
  EXPECT_EQ(p.interval(1).begin, 10);
  EXPECT_EQ(p.interval(1).end, 30);
}

TEST(PowerProfile, UniformCoversHorizon) {
  const PowerProfile p = PowerProfile::uniform(100, 42);
  EXPECT_EQ(p.horizon(), 100);
  EXPECT_EQ(p.numIntervals(), 1u);
  EXPECT_EQ(p.greenAt(0), 42);
  EXPECT_EQ(p.greenAt(99), 42);
}

TEST(PowerProfile, FromIntervalsValidatesContiguity) {
  EXPECT_NO_THROW(PowerProfile::fromIntervals({{0, 5, 1}, {5, 9, 2}}));
  EXPECT_THROW(PowerProfile::fromIntervals({{1, 5, 1}}), PreconditionError);
  EXPECT_THROW(PowerProfile::fromIntervals({{0, 5, 1}, {6, 9, 2}}),
               PreconditionError);
  EXPECT_THROW(PowerProfile::fromIntervals({{0, 0, 1}}), PreconditionError);
  EXPECT_THROW(PowerProfile::fromIntervals({{0, 5, -1}}), PreconditionError);
}

TEST(PowerProfile, IndexAtFindsTheRightInterval) {
  PowerProfile p;
  p.appendInterval(10, 1);
  p.appendInterval(5, 2);
  p.appendInterval(15, 3);
  EXPECT_EQ(p.indexAt(0), 0u);
  EXPECT_EQ(p.indexAt(9), 0u);
  EXPECT_EQ(p.indexAt(10), 1u);
  EXPECT_EQ(p.indexAt(14), 1u);
  EXPECT_EQ(p.indexAt(15), 2u);
  EXPECT_EQ(p.indexAt(29), 2u);
  EXPECT_THROW(p.indexAt(30), PreconditionError);
  EXPECT_THROW(p.indexAt(-1), PreconditionError);
}

TEST(PowerProfile, BoundariesAreTheSetE) {
  PowerProfile p;
  p.appendInterval(10, 1);
  p.appendInterval(5, 2);
  const std::vector<Time> expected{0, 10, 15};
  EXPECT_EQ(p.boundaries(), expected);
}

TEST(PowerProfile, ExtendToAppendsOnlyWhenNeeded) {
  PowerProfile p = PowerProfile::uniform(10, 3);
  p.extendTo(25, 0);
  EXPECT_EQ(p.horizon(), 25);
  EXPECT_EQ(p.numIntervals(), 2u);
  EXPECT_EQ(p.greenAt(20), 0);
  p.extendTo(20, 9); // no-op
  EXPECT_EQ(p.horizon(), 25);
  EXPECT_EQ(p.numIntervals(), 2u);
}

TEST(PowerProfile, IdleFloorCostSumsOverflowOnly) {
  PowerProfile p;
  p.appendInterval(10, 5); // base 8 → overflow 3 for 10 units = 30
  p.appendInterval(10, 20); // no overflow
  EXPECT_EQ(p.idleFloorCost(8), 30);
  EXPECT_EQ(p.idleFloorCost(5), 0);
  EXPECT_EQ(p.idleFloorCost(25), 20 * 10 + 5 * 10);
}

TEST(PowerProfile, RejectsBadIntervals) {
  PowerProfile p;
  EXPECT_THROW(p.appendInterval(0, 1), PreconditionError);
  EXPECT_THROW(p.appendInterval(5, -1), PreconditionError);
  EXPECT_THROW(PowerProfile::uniform(0, 1), PreconditionError);
}

} // namespace
} // namespace cawo
