// Pins the canonical instance hash (core/instance_hash): stability of the
// FNV-1a primitives against hand-computed references, determinism across
// independent rebuilds of the same spec, and sensitivity — near-identical
// instances differing in exactly one axis (one duration, one profile
// interval, the deadline, the seed) must hash differently. The serve
// cache and campaign-record joins both rely on precisely these
// properties.

#include <gtest/gtest.h>

#include <set>

#include "core/instance_hash.hpp"
#include "sim/instance.hpp"

namespace cawo {
namespace {

InstanceSpec smallSpec() {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Atacseq;
  spec.targetTasks = 30;
  spec.nodesPerType = 2;
  spec.scenario = "S1";
  spec.deadlineFactor = 2.0;
  spec.numIntervals = 8;
  spec.seed = 1;
  return spec;
}

TEST(Fnv1aHasher, MatchesKnownFnv1aValues) {
  // Classic FNV-1a reference values: the offset basis for the empty
  // input, and the published hash of "a".
  EXPECT_EQ(Fnv1aHasher().value(), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1aHasher().mixByte('a').value(), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1aHasher, TypedMixersAreCanonical) {
  // mixU64 is defined as eight mixByte calls, LSB first — the encoding
  // the file contract promises. Pin the equivalence so a future
  // "optimisation" cannot silently change every stored hash.
  Fnv1aHasher viaU64;
  viaU64.mixU64(0x0123456789abcdefULL);
  Fnv1aHasher viaBytes;
  for (const std::uint8_t b :
       {0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01})
    viaBytes.mixByte(b);
  EXPECT_EQ(viaU64.value(), viaBytes.value());

  // Length framing makes ("ab", "c") and ("a", "bc") distinct streams.
  const auto two = [](const std::string& x, const std::string& y) {
    return Fnv1aHasher().mixString(x).mixString(y).value();
  };
  EXPECT_NE(two("ab", "c"), two("a", "bc"));
}

TEST(InstanceHash, StableAcrossIndependentBuilds) {
  const Instance a = buildInstance(smallSpec());
  const Instance b = buildInstance(smallSpec());
  const std::uint64_t ha = instanceHash(a.gc, a.profile, a.deadline);
  const std::uint64_t hb = instanceHash(b.gc, b.profile, b.deadline);
  EXPECT_EQ(ha, hb) << "two builds of the same spec must hash identically";
  // And recomputing on the same objects is pure.
  EXPECT_EQ(ha, instanceHash(a.gc, a.profile, a.deadline));
}

TEST(InstanceHash, DistinguishesNearIdenticalInstances) {
  const InstanceSpec base = smallSpec();
  const Instance reference = buildInstance(base);
  const std::uint64_t referenceHash =
      instanceHash(reference.gc, reference.profile, reference.deadline);

  // One axis nudged at a time; every variant must land elsewhere.
  std::set<std::uint64_t> seen{referenceHash};
  for (const auto& mutate : {
           +[](InstanceSpec& s) { s.targetTasks = 31; },
           +[](InstanceSpec& s) { s.scenario = "S2"; },
           +[](InstanceSpec& s) { s.deadlineFactor = 2.5; },
           +[](InstanceSpec& s) { s.numIntervals = 9; },
           +[](InstanceSpec& s) { s.seed = 2; },
           +[](InstanceSpec& s) { s.nodesPerType = 3; },
       }) {
    InstanceSpec spec = base;
    mutate(spec);
    const Instance variant = buildInstance(spec);
    const std::uint64_t h =
        instanceHash(variant.gc, variant.profile, variant.deadline);
    EXPECT_TRUE(seen.insert(h).second)
        << "variant " << variant.spec.label() << " (seed " << spec.seed
        << ", intervals " << spec.numIntervals
        << ") collided with another near-identical instance";
  }

  // The deadline participates directly too — same graph and profile,
  // deadline off by one.
  EXPECT_NE(referenceHash, instanceHash(reference.gc, reference.profile,
                                        reference.deadline + 1));
}

TEST(InstanceHashHex, SixteenLowercaseZeroPaddedDigits) {
  EXPECT_EQ(instanceHashHex(0), "0000000000000000");
  EXPECT_EQ(instanceHashHex(0xABCULL), "0000000000000abc");
  EXPECT_EQ(instanceHashHex(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
  EXPECT_EQ(instanceHashHex(~0ULL), "ffffffffffffffff");
}

} // namespace
} // namespace cawo
