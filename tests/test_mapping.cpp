#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/mapping.hpp"

namespace cawo {
namespace {

TaskGraph chain3() {
  TaskGraph g;
  g.addTask("a", 1);
  g.addTask("b", 1);
  g.addTask("c", 1);
  g.addEdge(0, 1, 1);
  g.addEdge(1, 2, 1);
  return g;
}

TEST(Mapping, AssignTracksProcessorAndPosition) {
  Mapping m(3, 2);
  m.assign(0, 0);
  m.assign(1, 1);
  m.assign(2, 0);
  EXPECT_EQ(m.procOf(0), 0);
  EXPECT_EQ(m.procOf(1), 1);
  EXPECT_EQ(m.procOf(2), 0);
  EXPECT_EQ(m.positionOf(0), 0u);
  EXPECT_EQ(m.positionOf(2), 1u);
  ASSERT_EQ(m.orderOn(0).size(), 2u);
  EXPECT_EQ(m.orderOn(0)[0], 0);
  EXPECT_EQ(m.orderOn(0)[1], 2);
}

TEST(Mapping, DoubleAssignIsRejected) {
  Mapping m(1, 1);
  m.assign(0, 0);
  EXPECT_THROW(m.assign(0, 0), PreconditionError);
}

TEST(Mapping, UnassignedTaskIsReported) {
  Mapping m(2, 1);
  m.assign(0, 0);
  EXPECT_TRUE(m.isAssigned(0));
  EXPECT_FALSE(m.isAssigned(1));
  EXPECT_THROW(m.positionOf(1), PreconditionError);
}

TEST(Mapping, SetOrderPermutesProcessorTasks) {
  Mapping m(3, 1);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 0);
  m.setOrder(0, {2, 0, 1});
  EXPECT_EQ(m.orderOn(0)[0], 2);
  EXPECT_EQ(m.positionOf(2), 0u);
  EXPECT_EQ(m.positionOf(1), 2u);
}

TEST(Mapping, SetOrderRejectsNonPermutations) {
  Mapping m(3, 2);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 1);
  EXPECT_THROW(m.setOrder(0, {0}), PreconditionError);        // wrong size
  EXPECT_THROW(m.setOrder(0, {0, 2}), PreconditionError);     // wrong tasks
  EXPECT_THROW(m.setOrder(0, {0, 0}), PreconditionError);     // duplicate
}

TEST(Mapping, ValidateAcceptsConsistentOrder) {
  const TaskGraph g = chain3();
  Mapping m(3, 1);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 0);
  EXPECT_TRUE(m.validate(g).empty());
}

TEST(Mapping, ValidateRejectsOrderAgainstPrecedence) {
  const TaskGraph g = chain3();
  Mapping m(3, 1);
  m.assign(1, 0); // b before a on the same processor → cycle with a→b
  m.assign(0, 0);
  m.assign(2, 0);
  EXPECT_FALSE(m.validate(g).empty());
}

TEST(Mapping, ValidateRejectsUnassignedTasks) {
  const TaskGraph g = chain3();
  Mapping m(3, 1);
  m.assign(0, 0);
  EXPECT_FALSE(m.validate(g).empty());
}

TEST(Mapping, ValidateAcceptsCrossProcessorOrders) {
  const TaskGraph g = chain3();
  Mapping m(3, 3);
  m.assign(2, 0); // different processors — order between procs is free
  m.assign(1, 1);
  m.assign(0, 2);
  EXPECT_TRUE(m.validate(g).empty());
}

TEST(Mapping, SizeMismatchIsReported) {
  const TaskGraph g = chain3();
  Mapping m(2, 1);
  m.assign(0, 0);
  m.assign(1, 0);
  EXPECT_FALSE(m.validate(g).empty());
}

} // namespace
} // namespace cawo
