#include <gtest/gtest.h>

#include "util/require.hpp"

#include "util/cli.hpp"
#include "util/strings.hpp"

namespace cawo {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("slackWR-LS", "slack"));
  EXPECT_FALSE(startsWith("press", "slack"));
  EXPECT_TRUE(endsWith("slackWR-LS", "-LS"));
  EXPECT_FALSE(endsWith("slackWR", "-LS"));
}

TEST(Strings, FormatFixedControlsPrecision) {
  EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(formatFixed(2.0, 1), "2.0");
  EXPECT_EQ(formatFixed(-0.5, 3), "-0.500");
}

TEST(Strings, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Cli, ParsesAllSupportedSyntaxes) {
  const char* argv[] = {"prog", "--tasks=100", "--seed", "7", "--full"};
  const CliArgs args(5, argv, {"tasks", "seed", "full", "unused"});
  EXPECT_EQ(args.getInt("tasks", 0), 100);
  EXPECT_EQ(args.getInt("seed", 0), 7);
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("unused"));
  EXPECT_EQ(args.getInt("unused", 42), 42);
}

TEST(Cli, DoubleAndStringValues) {
  const char* argv[] = {"prog", "--factor=1.5", "--name=pressWR-LS"};
  const CliArgs args(3, argv, {"factor", "name"});
  EXPECT_DOUBLE_EQ(args.getDouble("factor", 0.0), 1.5);
  EXPECT_EQ(args.getString("name", ""), "pressWR-LS");
  EXPECT_EQ(args.getString("missing", "dflt"), "dflt");
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(CliArgs(2, argv, {"tasks"}), PreconditionError);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv, {"tasks"}), PreconditionError);
}

TEST(Cli, ThreadsFlagParsesAndValidates) {
  // The shared --threads convention: absent → fallback, explicit value
  // passes through, 0 means "all hardware threads" and is legal as-is.
  const char* argv[] = {"prog", "--threads=4"};
  const CliArgs args(2, argv, {"threads"});
  EXPECT_EQ(threadsFromArgs(args, "threads", 1), 4u);

  const char* argv0[] = {"prog", "--threads=0"};
  EXPECT_EQ(threadsFromArgs(CliArgs(2, argv0, {"threads"}), "threads", 1), 0u);

  const char* none[] = {"prog"};
  EXPECT_EQ(threadsFromArgs(CliArgs(1, none, {"threads"}), "threads", 3), 3u);
}

TEST(Cli, ThreadsFlagRejectsNegativeValues) {
  const char* argv[] = {"prog", "--threads=-2"};
  const CliArgs args(2, argv, {"threads"});
  EXPECT_THROW(threadsFromArgs(args, "threads", 1), PreconditionError);
}

} // namespace
} // namespace cawo
