#include <gtest/gtest.h>

#include "util/require.hpp"

#include <set>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "profile/scenario.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

TEST(VariantSpec, NamesFollowThePaperConvention) {
  EXPECT_EQ((VariantSpec{BaseScore::Slack, false, false, false}).name(),
            "slack");
  EXPECT_EQ((VariantSpec{BaseScore::Slack, true, false, false}).name(),
            "slackW");
  EXPECT_EQ((VariantSpec{BaseScore::Slack, false, true, false}).name(),
            "slackR");
  EXPECT_EQ((VariantSpec{BaseScore::Slack, true, true, false}).name(),
            "slackWR");
  EXPECT_EQ((VariantSpec{BaseScore::Pressure, true, true, true}).name(),
            "pressWR-LS");
}

TEST(VariantSpec, ParseRoundTripsAllNames) {
  for (const VariantSpec& v : allVariants()) {
    const VariantSpec parsed = VariantSpec::parse(v.name());
    EXPECT_EQ(parsed.name(), v.name());
    EXPECT_EQ(parsed.base, v.base);
    EXPECT_EQ(parsed.weighted, v.weighted);
    EXPECT_EQ(parsed.refined, v.refined);
    EXPECT_EQ(parsed.localSearch, v.localSearch);
  }
  EXPECT_THROW(VariantSpec::parse("bogus"), PreconditionError);
}

TEST(VariantSpec, ThereAreExactlySixteenDistinctVariants) {
  const auto variants = allVariants();
  EXPECT_EQ(variants.size(), 16u);
  std::set<std::string> names;
  for (const VariantSpec& v : variants) names.insert(v.name());
  EXPECT_EQ(names.size(), 16u);
}

TEST(VariantSpec, GreedyOnlyVariantsAreTheEightWithoutLs) {
  const auto variants = greedyOnlyVariants();
  EXPECT_EQ(variants.size(), 8u);
  for (const VariantSpec& v : variants) EXPECT_FALSE(v.localSearch);
}

TEST(RunVariant, LsVariantNeverCostsMoreThanItsGreedyBase) {
  Rng rng(31);
  const EnhancedGraph gc = testing::makeGc(
      {{0, 4}, {1, 3}, {0, 2}, {1, 6}, {2, 5}, {2, 2}},
      {{0, 2}, {1, 3}, {0, 4}, {4, 5}}, {1, 2, 3}, {5, 7, 4});
  const Time deadline = asapMakespan(gc) * 2;
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  const PowerProfile profile = generateScenario(
      Scenario::S1, deadline, gc.totalIdlePower(), sumWork, {6, 0.1, 5});

  for (const VariantSpec& base : greedyOnlyVariants()) {
    VariantSpec ls = base;
    ls.localSearch = true;
    const Cost cBase = evaluateCost(
        gc, profile, runVariant(gc, profile, deadline, base));
    const Cost cLs =
        evaluateCost(gc, profile, runVariant(gc, profile, deadline, ls));
    EXPECT_LE(cLs, cBase) << base.name();
  }
}

TEST(RunVariant, AllVariantsBeatOrMatchAsapOnAStaircaseProfile) {
  // Strongly time-varying profile with the green window late: ASAP is
  // clearly suboptimal, every carbon-aware variant must do at least as
  // well — a shape check for Figure 1's headline claim.
  const EnhancedGraph gc = testing::makeGc(
      {{0, 4}, {0, 3}, {1, 5}}, {{0, 1}}, {0, 0}, {6, 8});
  PowerProfile profile;
  profile.appendInterval(12, 0);
  profile.appendInterval(24, 20);
  const Time deadline = 36;
  const Schedule asap = scheduleAsap(gc);
  const Cost asapCost = evaluateCost(gc, profile, asap);
  ASSERT_GT(asapCost, 0);
  for (const VariantSpec& v : allVariants()) {
    const Schedule s = runVariant(gc, profile, deadline, v);
    EXPECT_LE(evaluateCost(gc, profile, s), asapCost) << v.name();
  }
}

TEST(RunVariant, CustomParamsAreHonoured) {
  const EnhancedGraph gc = testing::makeChainGc({3, 4}, 1, 4);
  PowerProfile profile;
  profile.appendInterval(10, 2);
  profile.appendInterval(10, 9);
  const VariantSpec spec{BaseScore::Pressure, false, true, true};
  CaWoParams params;
  params.blockSize = 1;
  params.lsRadius = 0; // degenerate LS
  const Schedule s = runVariant(gc, profile, 20, spec, params);
  EXPECT_TRUE(validateSchedule(gc, s, 20).ok);
}

} // namespace
} // namespace cawo
