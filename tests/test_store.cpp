// The campaign result store (src/exp/store): record-line byte round
// trips, index round trips, duplicate-cell rejection, resume-only
// reopening, multi-process-style shard merges, torn-tail crash recovery
// (including a real fork()+SIGKILL mid-campaign), query filter parity
// against a full-parse oracle, and byte-for-bit parity of the exported
// document against the legacy in-memory path.

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include "core/instance_hash.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/record_json.hpp"
#include "exp/store.hpp"
#include "util/require.hpp"

namespace cawo {
namespace {

namespace fs = std::filesystem;

/// A fast 8-instance × 2-solver grid (2 scenarios × 2 factors × 2 seeds).
CampaignSpec smallSpec() {
  CampaignSpec spec;
  setCampaignKey(spec, "name", "store-test");
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "tasks", "20");
  setCampaignKey(spec, "scenarios", "S1,S2");
  setCampaignKey(spec, "deadline-factors", "1.5,2.0");
  setCampaignKey(spec, "seeds", "1,2");
  setCampaignKey(spec, "intervals", "6");
  setCampaignKey(spec, "algos", "ASAP,slack");
  setCampaignKey(spec, "threads", "1");
  return spec;
}

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/cawo_store_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Wall times are the only nondeterministic record bytes; scrub exactly
/// like the golden capture (tests/test_golden_outputs.cpp).
std::string scrubWallTimes(std::string json) {
  json = std::regex_replace(json, std::regex("\"wall_ms\": [-+0-9.eE]+"),
                            "\"wall_ms\": 0");
  json = std::regex_replace(json,
                            std::regex("\"total_wall_ms\": [-+0-9.eE]+"),
                            "\"total_wall_ms\": 0");
  json = std::regex_replace(json, std::regex("\"greedy_ms\": [-+0-9.eE]+"),
                            "\"greedy_ms\": 0");
  json = std::regex_replace(json, std::regex("\"ls_ms\": [-+0-9.eE]+"),
                            "\"ls_ms\": 0");
  return json;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string storeDocument(const std::string& dir) {
  CampaignStoreReader reader(dir);
  std::ostringstream out;
  writeCampaignJsonFromStore(out, reader);
  return out.str();
}

// ---------------------------------------------------------------------------
// Record line byte contract
// ---------------------------------------------------------------------------

TEST(RecordJson, LineRoundTripsByteForByte) {
  const CampaignOutcome outcome = runCampaign(smallSpec());
  ASSERT_FALSE(outcome.records.empty());
  for (const CampaignRecord& r : outcome.records) {
    const std::string line = campaignRecordJsonLine(r);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const CampaignRecord parsed = parseCampaignRecordLine(line);
    // Re-serializing the parsed record must reproduce the exact bytes —
    // the store's segments depend on this inverse being lossless.
    EXPECT_EQ(campaignRecordJsonLine(parsed), line);
  }
}

TEST(RecordJson, OnlineLineRoundTripsByteForByte) {
  CampaignSpec spec = smallSpec();
  setCampaignKey(spec, "tasks", "12");
  setCampaignKey(spec, "scenarios", "S1");
  setCampaignKey(spec, "seeds", "1");
  setCampaignKey(spec, "online", "1");
  setCampaignKey(spec, "policies", "static,reactive:threshold=0.05");
  const CampaignOutcome outcome = runCampaign(spec);
  ASSERT_FALSE(outcome.records.empty());
  for (const CampaignRecord& r : outcome.records) {
    const std::string line = campaignRecordJsonLine(r);
    EXPECT_EQ(campaignRecordJsonLine(parseCampaignRecordLine(line)), line);
    EXPECT_TRUE(parseCampaignRecordLine(line).hasOnline);
  }
}

// ---------------------------------------------------------------------------
// Store round trip + document parity
// ---------------------------------------------------------------------------

TEST(Store, WriteReadRoundTripAndIndex) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("roundtrip");
  CampaignStoreWriter store(dir, spec);
  const CampaignRunStats stats = runCampaignToStore({}, store);
  EXPECT_EQ(stats.totalCells, 16u);
  EXPECT_EQ(stats.cellsSolved, 16u);
  EXPECT_EQ(stats.presentBefore, 0u);

  CampaignStoreReader reader(dir);
  EXPECT_TRUE(reader.complete());
  EXPECT_EQ(reader.totalCells(), 16u);
  EXPECT_EQ(reader.stride(), 2u);
  for (std::size_t i = 0; i < reader.numInstances(); ++i)
    for (std::size_t c = 0; c < reader.stride(); ++c) {
      ASSERT_TRUE(reader.cellPresent(i, c));
      const std::string line = reader.readCellLine(i, c);
      const CampaignRecord r = parseCampaignRecordLine(line);
      // Index round trip: the sidecar's hash is the built-instance hash
      // embedded in the record itself.
      EXPECT_EQ(reader.cellHash(i, c), r.instanceHash);
      EXPECT_EQ(r.solver, reader.cellLabels()[c]);
      EXPECT_EQ(r.spec.cellKey(), reader.instances()[i].cellKey());
    }
}

TEST(Store, DocumentMatchesLegacyPathByteForByte) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("parity");
  CampaignStoreWriter store(dir, spec);
  (void)runCampaignToStore({}, store);

  const std::string legacy = toCampaignJsonString(runCampaign(spec));
  EXPECT_EQ(scrubWallTimes(storeDocument(dir)), scrubWallTimes(legacy));

  // The streaming summary must agree with the document's, field for field.
  CampaignStoreReader reader(dir);
  const CampaignOutcome summarised = summariseStore(reader);
  const CampaignOutcome inMemory = runCampaign(spec);
  ASSERT_EQ(summarised.summaries.size(), inMemory.summaries.size());
  for (std::size_t s = 0; s < summarised.summaries.size(); ++s) {
    EXPECT_EQ(summarised.summaries[s].solver, inMemory.summaries[s].solver);
    EXPECT_EQ(summarised.summaries[s].wins, inMemory.summaries[s].wins);
    EXPECT_EQ(summarised.summaries[s].medianRatio,
              inMemory.summaries[s].medianRatio);
    EXPECT_EQ(summarised.summaries[s].meanRatio,
              inMemory.summaries[s].meanRatio);
  }
}

TEST(Store, DocumentMatchesGoldenCapture) {
  // The pre-store golden capture (tests/golden/README.md), reproduced
  // through the store path: stream into a 2-shard store, export, compare.
  CampaignSpec spec;
  setCampaignKey(spec, "name", "golden-smoke");
  setCampaignKey(spec, "families", "atacseq");
  setCampaignKey(spec, "tasks", "30");
  setCampaignKey(spec, "scenarios", "all");
  setCampaignKey(spec, "deadline-factors", "1.5,2.0");
  setCampaignKey(spec, "seeds", "1");
  setCampaignKey(spec, "intervals", "8");
  setCampaignKey(spec, "algos", "ASAP,slack,pressWR-LS");
  SolverOptions options;
  options.setInt("block-size", 3);
  options.setInt("ls-radius", 10);

  const std::string dir = freshDir("golden");
  for (std::size_t shard = 0; shard < 2; ++shard) {
    StoreOptions storeOptions;
    storeOptions.shardIndex = shard;
    storeOptions.shardCount = 2;
    CampaignStoreWriter store(dir, spec, storeOptions);
    (void)runCampaignToStore(options, store);
  }
  const std::string expected = readFile(
      std::string(CAWO_SOURCE_DIR) + "/tests/golden/smoke_campaign_all.json");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(scrubWallTimes(storeDocument(dir)), expected)
      << "the store-path campaign JSON diverged from the pre-store golden";
}

// ---------------------------------------------------------------------------
// Guard rails
// ---------------------------------------------------------------------------

TEST(Store, DuplicateCellAppendIsRejected) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("duplicate");
  CampaignStoreWriter store(dir, spec);
  (void)runCampaignToStore({}, store, {}, 2); // first instance only
  CampaignRecord record =
      parseCampaignRecordLine(CampaignStoreReader(dir).readCellLine(0, 0));
  EXPECT_THROW(store.append(0, 0, record), PreconditionError);
  // appendInstance is the idempotent surface: same cells, no throw.
  CampaignRecord group[2] = {
      record, parseCampaignRecordLine(
                  CampaignStoreReader(dir).readCellLine(0, 1))};
  store.appendInstance(0, group, 2);
  store.flush();
  EXPECT_EQ(CampaignStoreReader(dir).presentCells(), 2u);
}

TEST(Store, ReopeningWithDataRequiresResume) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("reopen");
  {
    CampaignStoreWriter store(dir, spec);
    (void)runCampaignToStore({}, store, {}, 2);
  }
  EXPECT_THROW(CampaignStoreWriter(dir, spec), PreconditionError);
  StoreOptions resume;
  resume.resume = true;
  CampaignStoreWriter store(dir, spec, resume);
  EXPECT_EQ(store.presentCells(), 2u);
}

TEST(Store, ResumeUnderDifferentSpecIsRejected) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("specmismatch");
  { CampaignStoreWriter store(dir, spec); }
  CampaignSpec other = spec;
  setCampaignKey(other, "deadline-factors", "1.5");
  EXPECT_THROW(CampaignStoreWriter(dir, other), PreconditionError);
  // Threads are excluded from the canonical spec: resuming with a
  // different worker count is legal and changes nothing.
  CampaignSpec rethreaded = spec;
  setCampaignKey(rethreaded, "threads", "4");
  StoreOptions resume;
  resume.resume = true;
  EXPECT_NO_THROW(CampaignStoreWriter(dir, rethreaded, resume));
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

TEST(Store, ShardedRunsMergeDeterministically) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("sharded");
  std::size_t solved = 0;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    StoreOptions storeOptions;
    storeOptions.shardIndex = shard;
    storeOptions.shardCount = 3;
    CampaignStoreWriter store(dir, spec, storeOptions);
    const CampaignRunStats stats = runCampaignToStore({}, store);
    EXPECT_EQ(stats.cellsSolved, store.shardCells());
    solved += stats.cellsSolved;
  }
  EXPECT_EQ(solved, 16u); // disjoint shards cover the grid exactly once

  const std::string single = freshDir("sharded_single");
  CampaignStoreWriter store(single, spec);
  (void)runCampaignToStore({}, store);
  EXPECT_EQ(scrubWallTimes(storeDocument(dir)),
            scrubWallTimes(storeDocument(single)));
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

TEST(Store, TornFinalSegmentLineIsTruncatedAndReRun) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("torn");
  {
    CampaignStoreWriter store(dir, spec);
    (void)runCampaignToStore({}, store);
  }
  const std::string reference = scrubWallTimes(storeDocument(dir));

  // Tear the final record line mid-write: drop its last 3 bytes.
  const std::string segment = dir + "/segment-0.jsonl";
  fs::resize_file(segment, fs::file_size(segment) - 3);

  StoreOptions resume;
  resume.resume = true;
  CampaignStoreWriter store(dir, spec, resume);
  EXPECT_GT(store.recovery().truncatedBytes, 0u);
  EXPECT_EQ(store.presentCells(), 15u);
  const CampaignRunStats stats = runCampaignToStore({}, store);
  EXPECT_EQ(stats.cellsSolved, 1u); // only the torn cell is re-solved
  EXPECT_EQ(scrubWallTimes(storeDocument(dir)), reference);
}

TEST(Store, UnindexedSegmentTailIsRecoveredWithoutReSolving) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("unindexed");
  {
    CampaignStoreWriter store(dir, spec);
    (void)runCampaignToStore({}, store);
  }
  // Crash window: segment bytes durable, index lines not yet written.
  const std::string index = dir + "/segment-0.idx";
  const std::string lines = readFile(index);
  const std::size_t cut = lines.rfind('\n', lines.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  fs::resize_file(index, cut + 1);

  StoreOptions resume;
  resume.resume = true;
  CampaignStoreWriter store(dir, spec, resume);
  EXPECT_EQ(store.recovery().recoveredCells, 1u);
  EXPECT_EQ(store.presentCells(), 16u);
  const CampaignRunStats stats = runCampaignToStore({}, store);
  EXPECT_EQ(stats.cellsSolved, 0u); // nothing re-solved, only re-indexed
}

TEST(Store, SigkilledShardResumesToIdenticalDocument) {
  const CampaignSpec spec = smallSpec();
  const std::string reference =
      scrubWallTimes(toCampaignJsonString(runCampaign(spec)));
  const std::string dir = freshDir("sigkill");

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: stream with per-record durability and pull the plug
    // after exactly two instances — a deterministic kill point.
    StoreOptions storeOptions;
    storeOptions.groupCommit = 1;
    CampaignStoreWriter store(dir, spec, storeOptions);
    (void)runCampaignToStore({}, store, [](std::size_t done, std::size_t) {
      if (done >= 4) ::kill(::getpid(), SIGKILL);
    });
    ::_exit(0); // not reached — the progress callback kills us first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  StoreOptions resume;
  resume.resume = true;
  CampaignStoreWriter store(dir, spec, resume);
  ASSERT_EQ(store.presentCells(), 4u); // the two durable instances survived
  const CampaignRunStats stats = runCampaignToStore({}, store);
  EXPECT_EQ(stats.presentBefore, 4u);
  EXPECT_EQ(stats.cellsSolved, 12u); // only the missing work re-ran
  EXPECT_EQ(scrubWallTimes(storeDocument(dir)), reference);
}

TEST(Store, MaxCellsCapsDeterministicallyAndResumeFinishes) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("maxcells");
  {
    CampaignStoreWriter store(dir, spec);
    const CampaignRunStats stats = runCampaignToStore({}, store, {}, 6);
    EXPECT_TRUE(stats.cappedByMaxCells);
    EXPECT_EQ(stats.cellsSolved, 6u); // ceil(6/2)=3 instances
  }
  {
    CampaignStoreReader reader(dir);
    EXPECT_FALSE(reader.complete());
    EXPECT_EQ(reader.presentCells(), 6u);
    std::ostringstream out;
    EXPECT_THROW(writeCampaignJsonFromStore(out, reader), PreconditionError);
  }
  StoreOptions resume;
  resume.resume = true;
  CampaignStoreWriter store(dir, spec, resume);
  const CampaignRunStats stats = runCampaignToStore({}, store);
  EXPECT_FALSE(stats.cappedByMaxCells);
  EXPECT_EQ(stats.presentBefore, 6u);
  EXPECT_EQ(stats.cellsSolved, 10u);
  EXPECT_EQ(scrubWallTimes(storeDocument(dir)),
            scrubWallTimes(toCampaignJsonString(runCampaign(spec))));
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

TEST(StoreQueryTest, FiltersMatchFullParseOracle) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("query");
  CampaignStoreWriter store(dir, spec);
  (void)runCampaignToStore({}, store);
  CampaignStoreReader reader(dir);

  StoreQuery query;
  query.solvers = {"sl*"};
  query.scenarios = {"S2"};
  query.deadlineFactors = {2.0};
  query.feasibleOnly = true;

  std::vector<std::string> got;
  const std::size_t matched =
      queryStore(reader, query,
                 [&](std::size_t, std::size_t, const CampaignRecord&,
                     const std::string& line) { got.push_back(line); });

  // Oracle: parse every present cell and apply the predicate directly.
  std::vector<std::string> expected;
  reader.forEachPresentCell([&](std::size_t, std::size_t,
                                const std::string& line) {
    const CampaignRecord r = parseCampaignRecordLine(line);
    if (r.solver == "slack" && r.spec.scenario == "S2" &&
        r.spec.deadlineFactor == 2.0 && r.feasible && !r.skipped)
      expected.push_back(line);
  });
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(matched, expected.size());
  EXPECT_EQ(got, expected);
}

TEST(StoreQueryTest, InstanceAxisFiltersNeedNoRecordParsing) {
  const CampaignSpec spec = smallSpec();
  const std::string dir = freshDir("query_axis");
  CampaignStoreWriter store(dir, spec);
  (void)runCampaignToStore({}, store);
  CampaignStoreReader reader(dir);

  StoreQuery query;
  query.seeds = {2};
  // 4 of 8 instances carry seed 2 → half the cells, counted via the
  // index alone (no consumer, no feasibleOnly → no parsing).
  EXPECT_EQ(queryStore(reader, query), 8u);

  StoreQuery byHash;
  byHash.instanceHash = instanceHashHex(reader.cellHash(3, 0));
  EXPECT_EQ(queryStore(reader, byHash), 2u); // both cells of instance 3
}

} // namespace
} // namespace cawo
