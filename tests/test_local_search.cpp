#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/greedy.hpp"
#include "core/local_search.hpp"
#include "profile/scenario.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;
using testing::makeGc;

TEST(LocalSearch, MovesTaskIntoGreenWindow) {
  // Task sits in a dark zone; a green window lies `radius` units away.
  const EnhancedGraph gc = makeChainGc({3}, 0, 5);
  PowerProfile p;
  p.appendInterval(5, 0);
  p.appendInterval(10, 9);
  Schedule s(1);
  s.setStart(0, 0); // cost 15 in the dark interval
  LocalSearchOptions opts;
  opts.radius = 10;
  const auto stats = localSearch(gc, p, 15, s, opts);
  EXPECT_GE(s.start(0), 5);
  EXPECT_EQ(stats.finalCost, 0);
  EXPECT_GT(stats.movesApplied, 0u);
}

TEST(LocalSearch, NeverWorsensTheCost) {
  Rng rng(4242);
  const EnhancedGraph gc = makeGc(
      {{0, 4}, {1, 3}, {0, 2}, {1, 6}, {2, 5}},
      {{0, 2}, {1, 3}, {0, 4}}, {1, 2, 3}, {5, 7, 4});
  const Time deadline = asapMakespan(gc) + 12;
  const PowerProfile profile =
      testing::randomProfile(deadline, 5, 0, 20, rng);
  for (int trial = 0; trial < 10; ++trial) {
    Schedule s = testing::randomSchedule(gc, deadline, rng);
    const Cost before = evaluateCost(gc, profile, s);
    const auto stats = localSearch(gc, profile, deadline, s);
    EXPECT_LE(stats.finalCost, before);
    EXPECT_EQ(stats.initialCost, before);
    EXPECT_EQ(stats.finalCost, evaluateCost(gc, profile, s));
  }
}

TEST(LocalSearch, FinalScheduleStaysFeasible) {
  Rng rng(777);
  const EnhancedGraph gc = makeGc(
      {{0, 4}, {1, 3}, {0, 2}, {1, 6}},
      {{0, 2}, {1, 3}}, {1, 2}, {5, 7});
  const Time deadline = asapMakespan(gc) + 8;
  const PowerProfile profile = testing::randomProfile(deadline, 4, 0, 15, rng);
  Schedule s = testing::randomSchedule(gc, deadline, rng);
  localSearch(gc, profile, deadline, s);
  const auto r = validateSchedule(gc, s, deadline);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(LocalSearch, RadiusZeroAppliesNoMoves) {
  const EnhancedGraph gc = makeChainGc({3}, 0, 5);
  PowerProfile p;
  p.appendInterval(5, 0);
  p.appendInterval(10, 9);
  Schedule s(1);
  s.setStart(0, 0);
  LocalSearchOptions opts;
  opts.radius = 0;
  const auto stats = localSearch(gc, p, 15, s, opts);
  EXPECT_EQ(stats.movesApplied, 0u);
  EXPECT_EQ(s.start(0), 0);
}

TEST(LocalSearch, MaxRoundsBoundsTheHillClimb) {
  // Strictly increasing per-unit budgets: every one-unit right shift is a
  // strict improvement, so a µ=1 climb needs many rounds to reach the end.
  const EnhancedGraph gc = makeChainGc({2}, 0, 25);
  PowerProfile p;
  for (Power g = 0; g < 20; ++g) p.appendInterval(1, g);
  Schedule s(1);
  s.setStart(0, 0);
  LocalSearchOptions opts;
  opts.radius = 1;
  opts.maxRounds = 1;
  localSearch(gc, p, 20, s, opts);
  EXPECT_EQ(s.start(0), 1); // exactly one move in one round

  Schedule s2(1);
  s2.setStart(0, 0);
  opts.maxRounds = ~std::size_t{0};
  const auto stats = localSearch(gc, p, 20, s2, opts);
  EXPECT_GT(stats.rounds, 1u);
  EXPECT_EQ(s2.start(0), 18); // climbed all the way to the greenest window
}

TEST(LocalSearch, RespectsPrecedenceWhenMoving) {
  // Chain A → B with zero slack between them; B sits in the green zone and
  // must not move left over A.
  const EnhancedGraph gc = makeChainGc({5, 5}, 0, 5);
  PowerProfile p;
  p.appendInterval(10, 2);
  p.appendInterval(10, 9);
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 5);
  localSearch(gc, p, 20, s);
  const auto r = validateSchedule(gc, s, 20);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GE(s.start(1), s.end(0, gc));
}

TEST(LocalSearch, RequiresAFeasibleInput) {
  const EnhancedGraph gc = makeChainGc({5, 5});
  const PowerProfile p = PowerProfile::uniform(20, 1);
  Schedule s(2);
  s.setStart(0, 0);
  s.setStart(1, 3); // precedence violation
  EXPECT_THROW(localSearch(gc, p, 20, s), PreconditionError);
}

TEST(LocalSearch, ImprovesGreedyOnStaircaseProfile) {
  // A profile where greedy interval-begin placement is suboptimal and
  // small shifts help: assert LS strictly improves a crafted schedule.
  const EnhancedGraph gc = makeGc({{0, 4}, {1, 4}}, {}, {0, 0}, {6, 6});
  PowerProfile p;
  p.appendInterval(3, 12);
  p.appendInterval(3, 1);
  p.appendInterval(3, 12);
  p.appendInterval(11, 1);
  Schedule s(2);
  s.setStart(0, 1); // straddles the dark middle
  s.setStart(1, 5);
  const Cost before = evaluateCost(gc, p, s);
  const auto stats = localSearch(gc, p, 20, s);
  EXPECT_LT(stats.finalCost, before);
}

} // namespace
} // namespace cawo
