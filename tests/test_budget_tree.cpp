#include <gtest/gtest.h>

#include <map>

#include "core/budget_tree.hpp"
#include "util/rng.hpp"

namespace cawo {
namespace {

/// Straightforward reference implementation backed by a std::map.
class NaiveBudget {
public:
  NaiveBudget(const std::vector<Time>& begins,
              const std::vector<Power>& budgets, Time horizon)
      : horizon_(horizon) {
    for (std::size_t i = 0; i < begins.size(); ++i)
      segs_[begins[i]] = budgets[i];
  }

  void splitAt(Time t) {
    if (t <= 0 || t >= horizon_) return;
    auto it = segs_.upper_bound(t);
    --it;
    if (it->first == t) return;
    segs_[t] = it->second;
  }

  void consume(Time a, Time b, Power amount) {
    if (a >= b) return;
    splitAt(a);
    splitAt(b);
    for (auto it = segs_.lower_bound(a); it != segs_.end() && it->first < b;
         ++it)
      it->second -= amount;
  }

  BudgetTree::MaxResult maxInRange(Time lo, Time hi) const {
    BudgetTree::MaxResult res;
    for (auto it = segs_.lower_bound(lo); it != segs_.end() && it->first <= hi;
         ++it) {
      if (!res.found || it->second > res.budget) {
        res.found = true;
        res.budget = it->second;
        res.begin = it->first;
      }
    }
    return res;
  }

  Power budgetAt(Time t) const {
    auto it = segs_.upper_bound(t);
    --it;
    return it->second;
  }

  std::size_t size() const { return segs_.size(); }

private:
  std::map<Time, Power> segs_;
  Time horizon_;
};

TEST(BudgetTree, BasicMaxQuery) {
  BudgetTree tree({0, 10, 20}, {5, 9, 3}, 30);
  const auto r = tree.maxInRange(0, 29);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.begin, 10);
  EXPECT_EQ(r.budget, 9);
}

TEST(BudgetTree, TiesPreferTheEarliestSegment) {
  BudgetTree tree({0, 10, 20}, {7, 7, 7}, 30);
  const auto r = tree.maxInRange(5, 29);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.begin, 10); // 0 is outside [5, 29]
}

TEST(BudgetTree, EmptyRangeReportsNotFound) {
  BudgetTree tree({0}, {5}, 10);
  EXPECT_FALSE(tree.maxInRange(3, 2).found);
  EXPECT_FALSE(tree.maxInRange(1, 4).found); // no segment *begins* in [1,4]
}

TEST(BudgetTree, ConsumeSplitsAndDecrements) {
  BudgetTree tree({0}, {10}, 20);
  tree.consume(5, 12, 4);
  EXPECT_EQ(tree.budgetAt(0), 10);
  EXPECT_EQ(tree.budgetAt(5), 6);
  EXPECT_EQ(tree.budgetAt(11), 6);
  EXPECT_EQ(tree.budgetAt(12), 10);
  EXPECT_EQ(tree.size(), 3u);
}

TEST(BudgetTree, BudgetsMayGoNegative) {
  BudgetTree tree({0}, {2}, 10);
  tree.consume(0, 10, 5);
  EXPECT_EQ(tree.budgetAt(3), -3);
}

TEST(BudgetTree, SplitAtBoundaryIsNoOp) {
  BudgetTree tree({0, 5}, {1, 2}, 10);
  tree.splitAt(5);
  tree.splitAt(0);
  tree.splitAt(10);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BudgetTree, DumpReflectsOperations) {
  BudgetTree tree({0, 6}, {4, 8}, 12);
  tree.consume(3, 9, 2);
  const auto d = tree.dump();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], (std::pair<Time, Power>{0, 4}));
  EXPECT_EQ(d[1], (std::pair<Time, Power>{3, 2}));
  EXPECT_EQ(d[2], (std::pair<Time, Power>{6, 6}));
  EXPECT_EQ(d[3], (std::pair<Time, Power>{9, 8}));
}

TEST(BudgetTree, RejectsMalformedConstruction) {
  EXPECT_THROW(BudgetTree({1}, {5}, 10), PreconditionError);       // not at 0
  EXPECT_THROW(BudgetTree({0, 0}, {5, 5}, 10), PreconditionError); // dup
  EXPECT_THROW(BudgetTree({0, 12}, {5, 5}, 10), PreconditionError);
  EXPECT_THROW(BudgetTree({0}, {5, 6}, 10), PreconditionError);
}

// Property: the treap agrees with the naive map implementation under long
// random operation sequences.
class BudgetTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BudgetTreeFuzz, MatchesNaiveReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 11);
  const Time horizon = 200;
  std::vector<Time> begins{0};
  std::vector<Power> budgets{rng.uniformInt(0, 50)};
  while (begins.back() < horizon - 10 && rng.uniform01() < 0.8) {
    begins.push_back(begins.back() + rng.uniformInt(1, 20));
    budgets.push_back(rng.uniformInt(0, 50));
  }
  BudgetTree tree(begins, budgets, horizon);
  NaiveBudget naive(begins, budgets, horizon);

  for (int op = 0; op < 300; ++op) {
    const int kind = static_cast<int>(rng.uniformInt(0, 3));
    if (kind == 0) {
      const Time a = rng.uniformInt(0, horizon - 1);
      const Time b = rng.uniformInt(a + 1, horizon);
      const Power amt = rng.uniformInt(1, 10);
      tree.consume(a, b, amt);
      naive.consume(a, b, amt);
    } else if (kind == 3) {
      // The greedy hot-loop pattern: query, then consume starting at the
      // winner using its directory locator as the hint.
      const Time lo = rng.uniformInt(0, horizon - 1);
      const Time hi = rng.uniformInt(lo, horizon - 1);
      const auto best = tree.maxInRange(lo, hi);
      if (best.found) {
        const Time end =
            std::min<Time>(best.begin + rng.uniformInt(1, 15), horizon);
        const Power amt = rng.uniformInt(1, 10);
        tree.consume(best.begin, end, amt, best.block);
        naive.consume(best.begin, end, amt);
      }
    } else if (kind == 1) {
      const Time lo = rng.uniformInt(0, horizon - 1);
      const Time hi = rng.uniformInt(lo, horizon - 1);
      const auto a = tree.maxInRange(lo, hi);
      const auto b = naive.maxInRange(lo, hi);
      ASSERT_EQ(a.found, b.found);
      if (a.found) {
        EXPECT_EQ(a.budget, b.budget);
        EXPECT_EQ(a.begin, b.begin);
      }
    } else {
      const Time t = rng.uniformInt(0, horizon - 1);
      EXPECT_EQ(tree.budgetAt(t), naive.budgetAt(t));
    }
  }
  EXPECT_EQ(tree.size(), naive.size());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BudgetTreeFuzz, ::testing::Range(0, 20));

} // namespace
} // namespace cawo
