#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/carbon_cost.hpp"
#include "core/power_timeline.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::randomProfile;

TEST(PowerTimeline, InitialCostIsIdleFloor) {
  PowerProfile p;
  p.appendInterval(10, 3);
  p.appendInterval(10, 8);
  const PowerTimeline t(p, /*base=*/5);
  EXPECT_EQ(t.totalCost(), p.idleFloorCost(5));
  EXPECT_EQ(t.totalCost(), 2 * 10);
}

TEST(PowerTimeline, AddLoadRaisesCost) {
  const PowerProfile p = PowerProfile::uniform(10, 4);
  PowerTimeline t(p, 2);
  EXPECT_EQ(t.totalCost(), 0);
  t.addLoad(2, 6, 5); // draw 7 > 4 → overflow 3 for 4 units
  EXPECT_EQ(t.totalCost(), 12);
  t.removeLoad(2, 6, 5);
  EXPECT_EQ(t.totalCost(), 0);
}

TEST(PowerTimeline, OverlappingLoadsStack) {
  const PowerProfile p = PowerProfile::uniform(10, 10);
  PowerTimeline t(p, 0);
  t.addLoad(0, 10, 6);
  EXPECT_EQ(t.totalCost(), 0);
  t.addLoad(5, 10, 6); // 12 > 10 → 2 for 5 units
  EXPECT_EQ(t.totalCost(), 10);
  t.addLoad(7, 9, 6); // 18 > 10 → extra 6 × 2 units
  EXPECT_EQ(t.totalCost(), 10 + 12);
}

TEST(PowerTimeline, LoadAcrossIntervalBoundary) {
  PowerProfile p;
  p.appendInterval(5, 10);
  p.appendInterval(5, 1);
  PowerTimeline t(p, 1);
  EXPECT_EQ(t.totalCost(), 0);
  t.addLoad(3, 8, 4); // draw 5: 0 in the first interval, 4×3 in the second
  EXPECT_EQ(t.totalCost(), 12);
}

TEST(PowerTimeline, CostInRangeSlicesSegments) {
  const PowerProfile p = PowerProfile::uniform(10, 0);
  PowerTimeline t(p, 2); // constant overflow 2
  EXPECT_EQ(t.costInRange(0, 10), 20);
  EXPECT_EQ(t.costInRange(3, 7), 8);
  EXPECT_EQ(t.costInRange(7, 7), 0);
  t.addLoad(4, 6, 3);
  EXPECT_EQ(t.costInRange(4, 6), 10);
  EXPECT_EQ(t.costInRange(0, 4), 8);
}

TEST(PowerTimeline, MoveDeltaLeavesTimelineUnchanged) {
  const PowerProfile p = PowerProfile::uniform(20, 5);
  PowerTimeline t(p, 0);
  t.addLoad(0, 4, 7);
  const Cost before = t.totalCost();
  const Cost delta = t.moveDelta(0, 4, 10, 14, 7);
  EXPECT_EQ(t.totalCost(), before);
  EXPECT_EQ(delta, 0); // uniform budget → no gain anywhere
}

TEST(PowerTimeline, MoveDeltaSeesImprovement) {
  PowerProfile p;
  p.appendInterval(10, 0);  // dark
  p.appendInterval(10, 10); // green
  PowerTimeline t(p, 0);
  t.addLoad(0, 5, 4); // cost 20 in the dark interval
  EXPECT_EQ(t.totalCost(), 20);
  const Cost delta = t.moveDelta(0, 5, 12, 17, 4);
  EXPECT_EQ(delta, -20);
  EXPECT_EQ(t.totalCost(), 20); // unchanged by the probe
}

TEST(PowerTimeline, PeekMoveDeltaMatchesMutatingProbe) {
  // peekMoveDelta is the read-only twin the parallel candidate scan uses;
  // it must agree with moveDelta on every move shape — disjoint, partial
  // overlap, containment, zero-width old or new range — and, unlike the
  // mutating probe, must not grow the segment map.
  Rng rng(4242);
  const Time horizon = 60;
  for (int trial = 0; trial < 200; ++trial) {
    const PowerProfile p = randomProfile(horizon, 6, 0, 9, rng);
    PowerTimeline t(p, rng.uniformInt(0, 3));
    for (int l = 0; l < 4; ++l) {
      const Time a = rng.uniformInt(0, horizon - 1);
      t.addLoad(a, rng.uniformInt(a + 1, horizon), rng.uniformInt(1, 6));
    }
    const Time a = rng.uniformInt(0, horizon);
    const Time b = rng.uniformInt(a, horizon); // may be empty (a == b)
    const Time len = b - a;
    const Time a2 = rng.uniformInt(0, horizon - len);
    const Time b2 = a2 + len;
    const Power work = rng.uniformInt(0, 5);

    const auto segsBefore = t.numSegments();
    const Cost peeked = t.peekMoveDelta(a, b, a2, b2, work);
    EXPECT_EQ(t.numSegments(), segsBefore) << "peek split a segment";
    EXPECT_EQ(peeked, t.moveDelta(a, b, a2, b2, work))
        << "trial " << trial << ": move [" << a << "," << b << ") -> ["
        << a2 << "," << b2 << ") work " << work;
  }
}

TEST(PowerTimeline, RejectsOutOfHorizonLoads) {
  const PowerProfile p = PowerProfile::uniform(10, 5);
  PowerTimeline t(p, 0);
  EXPECT_THROW(t.addLoad(5, 12, 1), PreconditionError);
  EXPECT_THROW(t.addLoad(-1, 3, 1), PreconditionError);
}

TEST(PowerTimeline, ZeroWidthOrZeroPowerLoadsAreNoOps) {
  const PowerProfile p = PowerProfile::uniform(10, 5);
  PowerTimeline t(p, 0);
  const auto segsBefore = t.numSegments();
  t.addLoad(3, 3, 5);
  t.addLoad(2, 8, 0);
  EXPECT_EQ(t.totalCost(), 0);
  EXPECT_EQ(t.numSegments(), segsBefore);
}

// Property: a timeline loaded with a whole schedule reports exactly the
// sweep-line evaluator's cost.
class TimelineVsEvaluator : public ::testing::TestWithParam<int> {};

TEST_P(TimelineVsEvaluator, TotalsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int numTasks = static_cast<int>(rng.uniformInt(1, 10));
  std::vector<std::pair<ProcId, Time>> tasks;
  for (int i = 0; i < numTasks; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, 2)),
                     rng.uniformInt(1, 6)});
  std::vector<Power> idle{1, 2, 0}, work{3, 5, 2};
  const EnhancedGraph gc = testing::makeGc(tasks, {}, idle, work);
  const Time deadline = gc.criticalPathLength() + 15;
  const PowerProfile profile = randomProfile(deadline, 5, 0, 12, rng);
  const Schedule s = testing::randomSchedule(gc, deadline, rng);

  PowerTimeline t(profile, gc.totalIdlePower());
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    t.addLoad(s.start(u), s.end(u, gc), gc.workPower(gc.procOf(u)));
  EXPECT_EQ(t.totalCost(), evaluateCost(gc, profile, s));
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, TimelineVsEvaluator,
                         ::testing::Range(0, 30));

} // namespace
} // namespace cawo
