#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/carbon_cost.hpp"
#include "core/power_timeline.hpp"
#include "core/power_timeline_map.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::randomProfile;

TEST(PowerTimeline, InitialCostIsIdleFloor) {
  PowerProfile p;
  p.appendInterval(10, 3);
  p.appendInterval(10, 8);
  const PowerTimeline t(p, /*base=*/5);
  EXPECT_EQ(t.totalCost(), p.idleFloorCost(5));
  EXPECT_EQ(t.totalCost(), 2 * 10);
}

TEST(PowerTimeline, AddLoadRaisesCost) {
  const PowerProfile p = PowerProfile::uniform(10, 4);
  PowerTimeline t(p, 2);
  EXPECT_EQ(t.totalCost(), 0);
  t.addLoad(2, 6, 5); // draw 7 > 4 → overflow 3 for 4 units
  EXPECT_EQ(t.totalCost(), 12);
  t.removeLoad(2, 6, 5);
  EXPECT_EQ(t.totalCost(), 0);
}

TEST(PowerTimeline, OverlappingLoadsStack) {
  const PowerProfile p = PowerProfile::uniform(10, 10);
  PowerTimeline t(p, 0);
  t.addLoad(0, 10, 6);
  EXPECT_EQ(t.totalCost(), 0);
  t.addLoad(5, 10, 6); // 12 > 10 → 2 for 5 units
  EXPECT_EQ(t.totalCost(), 10);
  t.addLoad(7, 9, 6); // 18 > 10 → extra 6 × 2 units
  EXPECT_EQ(t.totalCost(), 10 + 12);
}

TEST(PowerTimeline, LoadAcrossIntervalBoundary) {
  PowerProfile p;
  p.appendInterval(5, 10);
  p.appendInterval(5, 1);
  PowerTimeline t(p, 1);
  EXPECT_EQ(t.totalCost(), 0);
  t.addLoad(3, 8, 4); // draw 5: 0 in the first interval, 4×3 in the second
  EXPECT_EQ(t.totalCost(), 12);
}

TEST(PowerTimeline, CostInRangeSlicesSegments) {
  const PowerProfile p = PowerProfile::uniform(10, 0);
  PowerTimeline t(p, 2); // constant overflow 2
  EXPECT_EQ(t.costInRange(0, 10), 20);
  EXPECT_EQ(t.costInRange(3, 7), 8);
  EXPECT_EQ(t.costInRange(7, 7), 0);
  t.addLoad(4, 6, 3);
  EXPECT_EQ(t.costInRange(4, 6), 10);
  EXPECT_EQ(t.costInRange(0, 4), 8);
}

TEST(PowerTimeline, MoveDeltaLeavesTimelineUnchanged) {
  const PowerProfile p = PowerProfile::uniform(20, 5);
  PowerTimeline t(p, 0);
  t.addLoad(0, 4, 7);
  const Cost before = t.totalCost();
  const Cost delta = t.moveDelta(0, 4, 10, 14, 7);
  EXPECT_EQ(t.totalCost(), before);
  EXPECT_EQ(delta, 0); // uniform budget → no gain anywhere
}

TEST(PowerTimeline, MoveDeltaSeesImprovement) {
  PowerProfile p;
  p.appendInterval(10, 0);  // dark
  p.appendInterval(10, 10); // green
  PowerTimeline t(p, 0);
  t.addLoad(0, 5, 4); // cost 20 in the dark interval
  EXPECT_EQ(t.totalCost(), 20);
  const Cost delta = t.moveDelta(0, 5, 12, 17, 4);
  EXPECT_EQ(delta, -20);
  EXPECT_EQ(t.totalCost(), 20); // unchanged by the probe
}

TEST(PowerTimeline, PeekMoveDeltaMatchesMutatingProbe) {
  // peekMoveDelta is the read-only twin the parallel candidate scan uses;
  // it must agree with moveDelta on every move shape — disjoint, partial
  // overlap, containment, zero-width old or new range — and, unlike the
  // mutating probe, must not grow the segment map.
  Rng rng(4242);
  const Time horizon = 60;
  for (int trial = 0; trial < 200; ++trial) {
    const PowerProfile p = randomProfile(horizon, 6, 0, 9, rng);
    PowerTimeline t(p, rng.uniformInt(0, 3));
    for (int l = 0; l < 4; ++l) {
      const Time a = rng.uniformInt(0, horizon - 1);
      t.addLoad(a, rng.uniformInt(a + 1, horizon), rng.uniformInt(1, 6));
    }
    const Time a = rng.uniformInt(0, horizon);
    const Time b = rng.uniformInt(a, horizon); // may be empty (a == b)
    const Time len = b - a;
    const Time a2 = rng.uniformInt(0, horizon - len);
    const Time b2 = a2 + len;
    const Power work = rng.uniformInt(0, 5);

    const auto segsBefore = t.numSegments();
    const Cost peeked = t.peekMoveDelta(a, b, a2, b2, work);
    EXPECT_EQ(t.numSegments(), segsBefore) << "peek split a segment";
    EXPECT_EQ(peeked, t.moveDelta(a, b, a2, b2, work))
        << "trial " << trial << ": move [" << a << "," << b << ") -> ["
        << a2 << "," << b2 << ") work " << work;
  }
}

TEST(PowerTimeline, RejectsOutOfHorizonLoads) {
  const PowerProfile p = PowerProfile::uniform(10, 5);
  PowerTimeline t(p, 0);
  EXPECT_THROW(t.addLoad(5, 12, 1), PreconditionError);
  EXPECT_THROW(t.addLoad(-1, 3, 1), PreconditionError);
}

TEST(PowerTimeline, ZeroWidthOrZeroPowerLoadsAreNoOps) {
  const PowerProfile p = PowerProfile::uniform(10, 5);
  PowerTimeline t(p, 0);
  const auto segsBefore = t.numSegments();
  t.addLoad(3, 3, 5);
  t.addLoad(2, 8, 0);
  EXPECT_EQ(t.totalCost(), 0);
  EXPECT_EQ(t.numSegments(), segsBefore);
}

// Property: the flat timeline and the retained std::map implementation
// agree bit-for-bit on every observable over a randomized operation trace
// (the map oracle pins the flat rewrite). Horizon-edge and zero-length
// spans are drawn deliberately often.
TEST(PowerTimeline, TraceEquivalenceVsMapOracle) {
  Rng rng(0xf1a7);
  for (int trial = 0; trial < 40; ++trial) {
    const Time horizon = rng.uniformInt(8, 80);
    const PowerProfile p = randomProfile(horizon, 5, 0, 10, rng);
    const Power base = rng.uniformInt(0, 4);
    PowerTimeline flat(p, base);
    MapPowerTimeline oracle(p, base);
    ASSERT_EQ(flat.totalCost(), oracle.totalCost());

    // Spans biased towards the horizon edges and the empty case.
    const auto randSpan = [&](Time& a, Time& b) {
      switch (rng.uniformInt(0, 5)) {
      case 0: a = 0; break;                          // starts at the edge
      default: a = rng.uniformInt(0, horizon); break;
      }
      switch (rng.uniformInt(0, 5)) {
      case 0: b = a; break;                          // zero-length
      case 1: b = horizon; break;                    // ends at the edge
      default: b = rng.uniformInt(a, horizon); break;
      }
    };

    std::vector<PowerTimeline::Load> live;
    for (int step = 0; step < 150; ++step) {
      Time a, b;
      randSpan(a, b);
      switch (rng.uniformInt(0, 5)) {
      case 0:
      case 1: { // add (work 0 exercises the no-op path)
        const Power w = rng.uniformInt(0, 6);
        flat.addLoad(a, b, w);
        oracle.addLoad(a, b, w);
        if (a < b && w > 0) live.push_back({a, b, w});
        break;
      }
      case 2: { // remove a previously added load
        if (live.empty()) break;
        const auto i =
            static_cast<std::size_t>(rng.uniformInt(0, live.size() - 1));
        const auto [la, lb, lw] = live[i];
        flat.removeLoad(la, lb, lw);
        oracle.removeLoad(la, lb, lw);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 3: { // read-only probe
        Time a2, b2;
        randSpan(a2, b2);
        const Power w = rng.uniformInt(0, 5);
        EXPECT_EQ(flat.peekMoveDelta(a, b, a2, b2, w),
                  oracle.peekMoveDelta(a, b, a2, b2, w))
            << "peek [" << a << "," << b << ")->[" << a2 << "," << b2
            << ") w=" << w;
        break;
      }
      case 4: { // moveDelta (mutate-and-revert on the oracle, pure here)
        Time a2, b2;
        randSpan(a2, b2);
        const Power w = rng.uniformInt(0, 5);
        EXPECT_EQ(flat.moveDelta(a, b, a2, b2, w),
                  oracle.moveDelta(a, b, a2, b2, w));
        break;
      }
      case 5: { // sliced cost
        EXPECT_EQ(flat.costInRange(a, b), oracle.costInRange(a, b));
        break;
      }
      }
      ASSERT_EQ(flat.totalCost(), oracle.totalCost())
          << "trial " << trial << " step " << step;
    }

    // Drain every load: both must return exactly to the idle floor, and
    // coalescing must have folded the flat timeline back to at most the
    // profile's own change points — no residue from any probe or edit.
    for (const auto& [la, lb, lw] : live) {
      flat.removeLoad(la, lb, lw);
      oracle.removeLoad(la, lb, lw);
    }
    EXPECT_EQ(flat.totalCost(), oracle.totalCost());
    EXPECT_EQ(flat.totalCost(), p.idleFloorCost(base));
    EXPECT_LE(flat.numSegments(), p.intervals().size());
  }
}

// Property: the batched probe equals the scalar probe for every candidate —
// arbitrary order, arbitrary length, empty candidates, the identity
// candidate, and an empty source interval.
TEST(PowerTimeline, PeekMoveDeltasMatchesScalarProbe) {
  Rng rng(0xba7c4);
  PowerTimeline::PeekScratch scratch;
  for (int trial = 0; trial < 60; ++trial) {
    const Time horizon = rng.uniformInt(10, 100);
    const PowerProfile p = randomProfile(horizon, 6, 0, 9, rng);
    PowerTimeline t(p, rng.uniformInt(0, 3));
    for (int l = 0; l < 5; ++l) {
      const Time a = rng.uniformInt(0, horizon - 1);
      t.addLoad(a, rng.uniformInt(a + 1, horizon), rng.uniformInt(1, 6));
    }
    const bool emptySource = rng.uniformInt(0, 4) == 0;
    const Time a = rng.uniformInt(0, horizon - 1);
    const Time b = emptySource ? a : rng.uniformInt(a + 1, horizon);
    const Power work = rng.uniformInt(1, 5);

    std::vector<CandidateInterval> cands;
    const Time len = std::max<Time>(1, b - a);
    for (Time c = 0; c + len <= horizon; ++c)
      cands.push_back({c, c + len});          // the local-search sweep shape
    cands.push_back({a, b});                  // identity move
    for (int j = 0; j < 8; ++j) {             // arbitrary length and order
      const Time c = rng.uniformInt(0, horizon);
      cands.push_back({c, rng.uniformInt(c, horizon)});
    }
    cands.push_back({horizon, horizon});      // empty, at the edge

    std::vector<Cost> out(cands.size());
    t.peekMoveDeltas(a, b, work, cands, scratch, out);
    for (std::size_t i = 0; i < cands.size(); ++i)
      EXPECT_EQ(out[i],
                t.peekMoveDelta(a, b, cands[i].begin, cands[i].end, work))
          << "trial " << trial << " candidate [" << cands[i].begin << ","
          << cands[i].end << ") source [" << a << "," << b << ") w=" << work;
  }
}

// Regression for the probe-residue leak: a long churn of probes and applied
// moves must keep the segment count bounded by the live change points —
// profile boundaries plus two ends per live load — not grow with the number
// of operations (the std::map implementation grew monotonically here).
TEST(PowerTimeline, SegmentCountStaysBoundedUnderChurn) {
  Rng rng(0x5e95);
  const Time horizon = 200;
  const PowerProfile p = randomProfile(horizon, 8, 0, 12, rng);
  PowerTimeline t(p, 2);

  constexpr int kLoads = 10;
  struct LiveLoad {
    Time begin, end;
    Power work;
  };
  std::vector<LiveLoad> loads;
  for (int i = 0; i < kLoads; ++i) {
    const Time len = rng.uniformInt(1, 20);
    const Time a = rng.uniformInt(0, horizon - len);
    const Power w = rng.uniformInt(1, 6);
    t.addLoad(a, a + len, w);
    loads.push_back({a, a + len, w});
  }
  const std::size_t bound = p.intervals().size() + 2 * kLoads;

  for (int step = 0; step < 500; ++step) {
    auto& ld = loads[static_cast<std::size_t>(
        rng.uniformInt(0, loads.size() - 1))];
    const Time len = ld.end - ld.begin;
    const Time a2 = rng.uniformInt(0, horizon - len);
    // Probe first (read-only), then apply: the local-search pattern.
    (void)t.moveDelta(ld.begin, ld.end, a2, a2 + len, ld.work);
    t.applyMove(ld.begin, ld.end, a2, a2 + len, ld.work);
    ld.begin = a2;
    ld.end = a2 + len;
    ASSERT_LE(t.numSegments(), bound) << "step " << step;
  }
  for (const auto& ld : loads) t.removeLoad(ld.begin, ld.end, ld.work);
  EXPECT_EQ(t.totalCost(), p.idleFloorCost(2));
  EXPECT_LE(t.numSegments(), p.intervals().size());
}

// Property: a timeline loaded with a whole schedule reports exactly the
// sweep-line evaluator's cost.
class TimelineVsEvaluator : public ::testing::TestWithParam<int> {};

TEST_P(TimelineVsEvaluator, TotalsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int numTasks = static_cast<int>(rng.uniformInt(1, 10));
  std::vector<std::pair<ProcId, Time>> tasks;
  for (int i = 0; i < numTasks; ++i)
    tasks.push_back({static_cast<ProcId>(rng.uniformInt(0, 2)),
                     rng.uniformInt(1, 6)});
  std::vector<Power> idle{1, 2, 0}, work{3, 5, 2};
  const EnhancedGraph gc = testing::makeGc(tasks, {}, idle, work);
  const Time deadline = gc.criticalPathLength() + 15;
  const PowerProfile profile = randomProfile(deadline, 5, 0, 12, rng);
  const Schedule s = testing::randomSchedule(gc, deadline, rng);

  PowerTimeline t(profile, gc.totalIdlePower());
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    t.addLoad(s.start(u), s.end(u, gc), gc.workPower(gc.procOf(u)));
  EXPECT_EQ(t.totalCost(), evaluateCost(gc, profile, s));
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, TimelineVsEvaluator,
                         ::testing::Range(0, 30));

} // namespace
} // namespace cawo
