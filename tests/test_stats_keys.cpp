// SolveResult::stats key vocabulary: every key any registered solver
// emits must be in the documented set (docs/formats.md, "SolveResult
// stats keys") — a new stat needs a doc entry before it ships, because
// the obs layer harvests these keys verbatim into global counters
// (`solve.stats.<key>`).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "sim/instance.hpp"
#include "solver/registry.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

/// The documented vocabulary — keep in lockstep with docs/formats.md.
const std::set<std::string>& documentedStatsKeys() {
  static const std::set<std::string> keys = {
      "asap-makespan",   // ASAP: makespan of the as-soon-as-possible run
      "greedy-us",       // greedy construction wall time (µs)
      "ls-us",           // local-search wall time (µs)
      "ls-rounds",       // local-search improvement rounds
      "ls-moves",        // moves applied across all rounds
      "ls-initial-cost", // cost before the climb
      "ls-final-cost",   // cost after the climb
      "ls-restarts",     // restarts executed (multi-start LS)
      "ls-best-restart", // index of the winning restart
      "nodes-explored",  // exact solvers: search nodes expanded
      "mapping-makespan",// re-mapping solvers: makespan of the new mapping
  };
  return keys;
}

TEST(SolverStatsKeys, EveryEmittedKeyIsDocumented) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Atacseq;
  spec.targetTasks = 40;
  spec.nodesPerType = 1;
  spec.scenario = "S2";
  spec.deadlineFactor = 2.0;
  spec.numIntervals = 8;
  spec.seed = 97;
  const Instance inst = buildInstance(spec);

  SolveRequest request;
  request.gc = &inst.gc;
  request.profile = &inst.profile;
  request.deadline = inst.deadline;
  request.graph = &inst.graph;
  request.platform = &inst.platform;
  request.options.setInt("max-nodes", 200'000);
  request.options.setDouble("time-limit-sec", 10.0);
  // Exercise the multi-start path so ls-restarts/ls-best-restart appear.
  request.options.setInt("ls-restarts", 2);

  // Single-processor fixture for the exact solvers.
  const EnhancedGraph chainGc =
      testing::makeChainGc({2, 3, 1}, /*idle=*/1, /*work=*/4);
  const PowerProfile chainProfile = PowerProfile::uniform(20, 3);
  SolveRequest chainRequest;
  chainRequest.gc = &chainGc;
  chainRequest.profile = &chainProfile;
  chainRequest.deadline = 14;
  chainRequest.options = request.options;

  const SolverRegistry& registry = SolverRegistry::global();
  std::set<std::string> seen;
  for (const std::string& name : registry.names()) {
    const SolverPtr solver = registry.create(name);
    const SolveRequest& req =
        solver->info().singleProcOnly ? chainRequest : request;
    const SolveResult result = solver->solve(req);
    for (const auto& [key, value] : result.stats) {
      EXPECT_TRUE(documentedStatsKeys().count(key))
          << "solver " << name << " emits undocumented stats key \"" << key
          << "\" — add it to docs/formats.md and documentedStatsKeys()";
      seen.insert(key);
    }
  }

  // The inverse direction keeps the doc honest: every documented key is
  // actually produced by some solver on this small instance.
  for (const std::string& key : documentedStatsKeys())
    EXPECT_TRUE(seen.count(key))
        << "documented stats key \"" << key << "\" is emitted by no solver "
        << "— stale docs/formats.md entry?";
}

TEST(SolverStatsKeys, HarvestNamespacesKeysUnderSolveStats) {
  // The obs harvest turns each key into counter "solve.stats.<key>".
  obs::MetricsRegistry& global = obs::MetricsRegistry::global();
  const std::int64_t before =
      global.counter("solve.stats.ls-rounds").value();
  obs::harvestSolveStats({{"ls-rounds", 4}});
  EXPECT_EQ(global.counter("solve.stats.ls-rounds").value(), before + 4);
}

} // namespace
} // namespace cawo
