#include <gtest/gtest.h>

#include "util/require.hpp"

#include "workflow/dot_io.hpp"
#include "workflow/generators.hpp"

namespace cawo {
namespace {

TEST(DotIo, RoundTripPreservesTheGraph) {
  WorkflowGenOptions opts;
  opts.targetTasks = 60;
  opts.seed = 8;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Atacseq, opts);
  const TaskGraph back = readDotString(toDotString(g));
  ASSERT_EQ(back.numTasks(), g.numTasks());
  ASSERT_EQ(back.numEdges(), g.numEdges());
  for (TaskId v = 0; v < g.numTasks(); ++v) {
    EXPECT_EQ(back.name(v), g.name(v));
    EXPECT_EQ(back.work(v), g.work(v));
  }
  for (std::size_t i = 0; i < g.numEdges(); ++i) {
    EXPECT_EQ(back.edges()[i].src, g.edges()[i].src);
    EXPECT_EQ(back.edges()[i].dst, g.edges()[i].dst);
    EXPECT_EQ(back.edges()[i].data, g.edges()[i].data);
  }
}

TEST(DotIo, ParsesHandWrittenDocument) {
  const std::string text = R"(
    // a Nextflow-style export
    digraph "flow" {
      "fastqc" [work=12];
      "align"  [work=90];
      # a comment
      "fastqc" -> "align" [data=7];
      "align" -> "report";
    }
  )";
  const TaskGraph g = readDotString(text);
  ASSERT_EQ(g.numTasks(), 3);
  EXPECT_EQ(g.name(0), "fastqc");
  EXPECT_EQ(g.work(0), 12);
  EXPECT_EQ(g.work(1), 90);
  EXPECT_EQ(g.work(2), 1); // implicit node gets default work
  ASSERT_EQ(g.numEdges(), 2u);
  EXPECT_EQ(g.edges()[0].data, 7);
  EXPECT_EQ(g.edges()[1].data, 0);
}

TEST(DotIo, HandlesQuotedNamesWithSpacesAndEscapes) {
  const std::string text =
      "digraph g { \"task one\" [work=3]; \"with \\\"quote\\\"\" [work=4]; "
      "\"task one\" -> \"with \\\"quote\\\"\" [data=2]; }";
  const TaskGraph g = readDotString(text);
  ASSERT_EQ(g.numTasks(), 2);
  EXPECT_EQ(g.name(0), "task one");
  EXPECT_EQ(g.name(1), "with \"quote\"");
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(DotIo, IgnoresGlobalAttributeStatements) {
  const std::string text = R"(digraph g {
    rankdir LR;
    node [shape=box];
    a [work=2];
    b [work=3];
    a -> b [data=1];
  })";
  const TaskGraph g = readDotString(text);
  EXPECT_EQ(g.numTasks(), 2);
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(DotIo, StatementsMaySpanSemicolonsOrNewlines) {
  const std::string text = "digraph g { a [work=1]; b [work=2]\na -> b }";
  const TaskGraph g = readDotString(text);
  EXPECT_EQ(g.numTasks(), 2);
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(DotIo, MalformedDocumentsAreRejected) {
  EXPECT_THROW(readDotString("not a dot file"), PreconditionError);
  EXPECT_THROW(readDotString("digraph g { a [work=1 }"), PreconditionError);
}

TEST(DotIo, WriterQuotesSpecialCharacters) {
  TaskGraph g;
  g.addTask("a\"b", 1);
  const std::string dot = toDotString(g);
  EXPECT_NE(dot.find("\\\""), std::string::npos);
  const TaskGraph back = readDotString(dot);
  EXPECT_EQ(back.name(0), "a\"b");
}

TEST(DotIo, FileRoundTrip) {
  WorkflowGenOptions opts;
  opts.targetTasks = 25;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Bacass, opts);
  const std::string path = ::testing::TempDir() + "/cawo_dot_io_test.dot";
  writeDotFile(path, g);
  const TaskGraph back = readDotFile(path);
  EXPECT_EQ(back.numTasks(), g.numTasks());
  EXPECT_EQ(back.numEdges(), g.numEdges());
}

TEST(DotIo, MissingFileThrows) {
  EXPECT_THROW(readDotFile("/nonexistent/definitely/missing.dot"),
               PreconditionError);
}

} // namespace
} // namespace cawo
