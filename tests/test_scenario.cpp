#include <gtest/gtest.h>

#include "util/require.hpp"

#include "profile/scenario.hpp"

namespace cawo {
namespace {

constexpr Power kIdle = 100;
constexpr Power kWork = 200;
constexpr Power kMin = kIdle;                      // Σ idle
constexpr Power kMax = kIdle + (8 * kWork) / 10;   // Σ idle + 80 % work

class AllScenarios : public ::testing::TestWithParam<int> {};

TEST_P(AllScenarios, BudgetsStayWithinThePaperBand) {
  const auto scenario = static_cast<Scenario>(GetParam());
  const PowerProfile p =
      generateScenario(scenario, 240, kIdle, kWork, {24, 0.1, 3});
  EXPECT_EQ(p.horizon(), 240);
  EXPECT_EQ(p.numIntervals(), 24u);
  for (const Interval& iv : p.intervals()) {
    EXPECT_GE(iv.green, kMin) << scenarioName(scenario);
    EXPECT_LE(iv.green, kMax) << scenarioName(scenario);
  }
}

TEST_P(AllScenarios, DeterministicForAGivenSeed) {
  const auto scenario = static_cast<Scenario>(GetParam());
  const PowerProfile a =
      generateScenario(scenario, 100, kIdle, kWork, {10, 0.1, 77});
  const PowerProfile b =
      generateScenario(scenario, 100, kIdle, kWork, {10, 0.1, 77});
  ASSERT_EQ(a.numIntervals(), b.numIntervals());
  for (std::size_t j = 0; j < a.numIntervals(); ++j)
    EXPECT_EQ(a.interval(j).green, b.interval(j).green);
}

INSTANTIATE_TEST_SUITE_P(S1toS4, AllScenarios, ::testing::Values(0, 1, 2, 3));

TEST(Scenario, S1PeaksInTheMiddle) {
  const PowerProfile p =
      generateScenario(Scenario::S1, 240, kIdle, kWork, {24, 0.0, 1});
  const Power first = p.interval(0).green;
  const Power mid = p.interval(12).green;
  const Power last = p.interval(23).green;
  EXPECT_GT(mid, first);
  EXPECT_GT(mid, last);
}

TEST(Scenario, S2DecreasesFromTheStart) {
  const PowerProfile p =
      generateScenario(Scenario::S2, 240, kIdle, kWork, {24, 0.0, 1});
  EXPECT_GT(p.interval(0).green, p.interval(12).green);
  EXPECT_GT(p.interval(12).green, p.interval(23).green);
}

TEST(Scenario, S3StartsLowPeaksMidEndsLow) {
  const PowerProfile p =
      generateScenario(Scenario::S3, 240, kIdle, kWork, {24, 0.0, 1});
  const Power first = p.interval(0).green;
  const Power mid = p.interval(12).green;
  const Power last = p.interval(23).green;
  EXPECT_GT(mid, first);
  EXPECT_GT(mid, last);
  // Near-floor at both ends, near-ceiling at the peak.
  EXPECT_LT(first, kMin + (kMax - kMin) / 10);
  EXPECT_GT(mid, kMax - (kMax - kMin) / 10);
}

TEST(Scenario, S3RampsMoreGentlyThanS1) {
  // At a quarter of the horizon the parabola (S1) is at 0.75 of the band
  // while the shifted sine (S3) is at 0.5 — the curves are distinct.
  const PowerProfile s1 =
      generateScenario(Scenario::S1, 240, kIdle, kWork, {24, 0.0, 1});
  const PowerProfile s3 =
      generateScenario(Scenario::S3, 240, kIdle, kWork, {24, 0.0, 1});
  EXPECT_GT(s1.interval(6).green, s3.interval(6).green);
}

TEST(Scenario, S4IsConstantWithoutPerturbation) {
  const PowerProfile p =
      generateScenario(Scenario::S4, 240, kIdle, kWork, {24, 0.0, 1});
  for (std::size_t j = 1; j < p.numIntervals(); ++j)
    EXPECT_EQ(p.interval(j).green, p.interval(0).green);
  EXPECT_GT(p.interval(0).green, kMin);
  EXPECT_LT(p.interval(0).green, kMax);
}

TEST(Scenario, ShortHorizonClampsTheIntervalCount) {
  const PowerProfile p =
      generateScenario(Scenario::S4, 5, kIdle, kWork, {24, 0.0, 1});
  EXPECT_EQ(p.horizon(), 5);
  EXPECT_LE(p.numIntervals(), 5u);
}

TEST(Scenario, IntervalLengthsCoverTheHorizonEvenly) {
  const PowerProfile p =
      generateScenario(Scenario::S1, 250, kIdle, kWork, {24, 0.1, 5});
  Time total = 0;
  for (const Interval& iv : p.intervals()) {
    total += iv.length();
    EXPECT_GE(iv.length(), 250 / 24);
    EXPECT_LE(iv.length(), 250 / 24 + 1);
  }
  EXPECT_EQ(total, 250);
}

TEST(Scenario, RejectsBadOptions) {
  EXPECT_THROW(generateScenario(Scenario::S1, 0, 1, 1, {}),
               PreconditionError);
  EXPECT_THROW(generateScenario(Scenario::S1, 10, -1, 1, {}),
               PreconditionError);
  EXPECT_THROW(generateScenario(Scenario::S1, 10, 1, 1, {0, 0.1, 1}),
               PreconditionError);
  EXPECT_THROW(generateScenario(Scenario::S1, 10, 1, 1, {4, 1.5, 1}),
               PreconditionError);
}

TEST(Scenario, NamesAreStable) {
  EXPECT_STREQ(scenarioName(Scenario::S1), "S1");
  EXPECT_STREQ(scenarioName(Scenario::S4), "S4");
}

} // namespace
} // namespace cawo
