#include <gtest/gtest.h>

#include "util/require.hpp"

#include "core/est_lst.hpp"
#include "core/scores.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeGc;

TEST(Scores, SlackIsLstMinusEst) {
  // Two independent tasks on different procs, lens 4 and 10, deadline 20.
  const EnhancedGraph gc = makeGc({{0, 4}, {1, 10}}, {}, {1, 1}, {1, 1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 20);
  const auto s =
      computeScores(gc, est, lst, {BaseScore::Slack, /*weighted=*/false});
  EXPECT_DOUBLE_EQ(s[0], 16.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
}

TEST(Scores, PressureFormula) {
  const EnhancedGraph gc = makeGc({{0, 4}, {1, 10}}, {}, {1, 1}, {1, 1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 20);
  const auto s =
      computeScores(gc, est, lst, {BaseScore::Pressure, /*weighted=*/false});
  EXPECT_DOUBLE_EQ(s[0], 4.0 / (16.0 + 4.0));
  EXPECT_DOUBLE_EQ(s[1], 10.0 / (10.0 + 10.0));
}

TEST(Scores, PressureIsOneWithZeroSlack) {
  const EnhancedGraph gc = makeGc({{0, 10}}, {}, {1}, {1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 10); // no slack at all
  const auto s =
      computeScores(gc, est, lst, {BaseScore::Pressure, false});
  EXPECT_DOUBLE_EQ(s[0], 1.0);
}

TEST(Scores, WeightedPressureScalesByPowerFactor) {
  // Proc 0 draws 4 combined, proc 1 draws 8 (the max).
  const EnhancedGraph gc = makeGc({{0, 5}, {1, 5}}, {}, {1, 3}, {3, 5});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 10);
  const auto plain =
      computeScores(gc, est, lst, {BaseScore::Pressure, false});
  const auto weighted =
      computeScores(gc, est, lst, {BaseScore::Pressure, true});
  EXPECT_DOUBLE_EQ(weighted[0], plain[0] * 4.0 / 8.0);
  EXPECT_DOUBLE_EQ(weighted[1], plain[1]); // wf = 1 for the max processor
}

TEST(Scores, WeightedSlackUsesReciprocal) {
  const EnhancedGraph gc = makeGc({{0, 5}, {1, 5}}, {}, {1, 3}, {3, 5});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 20);
  const auto plain = computeScores(gc, est, lst, {BaseScore::Slack, false});
  const auto weighted = computeScores(gc, est, lst, {BaseScore::Slack, true});
  EXPECT_DOUBLE_EQ(weighted[0], plain[0] * 8.0 / 4.0);
  EXPECT_DOUBLE_EQ(weighted[1], plain[1]);
}

TEST(Scores, SlackOrderIsNonDecreasing) {
  const EnhancedGraph gc =
      makeGc({{0, 4}, {1, 10}, {2, 2}}, {}, {1, 1, 1}, {1, 1, 1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 20);
  const ScoreOptions opts{BaseScore::Slack, false};
  const auto order = scoreOrder(gc, est, lst, opts);
  const auto s = computeScores(gc, est, lst, opts);
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    EXPECT_LE(s[static_cast<std::size_t>(order[i])],
              s[static_cast<std::size_t>(order[i + 1])]);
}

TEST(Scores, PressureOrderIsNonIncreasing) {
  const EnhancedGraph gc =
      makeGc({{0, 4}, {1, 10}, {2, 2}}, {}, {1, 1, 1}, {1, 1, 1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 20);
  const ScoreOptions opts{BaseScore::Pressure, false};
  const auto order = scoreOrder(gc, est, lst, opts);
  const auto s = computeScores(gc, est, lst, opts);
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    EXPECT_GE(s[static_cast<std::size_t>(order[i])],
              s[static_cast<std::size_t>(order[i + 1])]);
}

TEST(Scores, TiesBreakByNodeId) {
  const EnhancedGraph gc =
      makeGc({{0, 5}, {1, 5}, {2, 5}}, {}, {1, 1, 1}, {1, 1, 1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 12);
  const auto order = scoreOrder(gc, est, lst, {BaseScore::Slack, false});
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Scores, InfeasibleWindowThrows) {
  const EnhancedGraph gc = makeGc({{0, 10}}, {}, {1}, {1});
  const auto est = computeEst(gc);
  const auto lst = computeLst(gc, 5); // lst < est
  EXPECT_THROW(computeScores(gc, est, lst, {BaseScore::Slack, false}),
               PreconditionError);
}

} // namespace
} // namespace cawo
