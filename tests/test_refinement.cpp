#include <gtest/gtest.h>

#include "util/require.hpp"

#include <algorithm>

#include "core/interval_refinement.hpp"
#include "test_util.hpp"

namespace cawo {
namespace {

using testing::makeChainGc;

TEST(Refinement, SingleTaskAlignments) {
  // One task of length 3; boundaries {0, 10, 20}. Start-aligned cuts: the
  // task start equals a boundary (0, 10 — both are existing boundaries, so
  // only interior new cuts matter). End-aligned: starts 10−3=7 and 20−3=17.
  const EnhancedGraph gc = makeChainGc({3});
  PowerProfile p;
  p.appendInterval(10, 5);
  p.appendInterval(10, 2);
  const auto cuts = refinementCutPoints(gc, p, 3);
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 7) != cuts.end());
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 17) != cuts.end());
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 10) == cuts.end())
      << "existing boundaries are not cut points";
  for (const Time c : cuts) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, 20);
  }
}

TEST(Refinement, BlockAlignmentsCoverInnerTasks) {
  // Chain 2,3 with one interval [0,12). Block {0,1} start-aligned at 0
  // puts task 1 at 2; end-aligned at 12 puts task 0 at 12-5=7 and task 1
  // at 12-3=9.
  const EnhancedGraph gc = makeChainGc({2, 3});
  const PowerProfile p = PowerProfile::uniform(12, 5);
  const auto cuts = refinementCutPoints(gc, p, 2);
  for (const Time expected : {2, 7, 9})
    EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), expected) != cuts.end())
        << "missing cut " << expected;
}

TEST(Refinement, CutsAreSortedAndUnique) {
  const EnhancedGraph gc = makeChainGc({2, 3, 4, 2});
  PowerProfile p;
  p.appendInterval(7, 1);
  p.appendInterval(9, 3);
  p.appendInterval(10, 2);
  const auto cuts = refinementCutPoints(gc, p, 3);
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  EXPECT_TRUE(std::adjacent_find(cuts.begin(), cuts.end()) == cuts.end());
}

TEST(Refinement, LargerBlocksProduceAtLeastAsManyCuts) {
  const EnhancedGraph gc = makeChainGc({2, 3, 4, 2, 5});
  const PowerProfile p = PowerProfile::uniform(40, 5);
  const auto c1 = refinementCutPoints(gc, p, 1);
  const auto c2 = refinementCutPoints(gc, p, 2);
  const auto c3 = refinementCutPoints(gc, p, 3);
  EXPECT_LE(c1.size(), c2.size());
  EXPECT_LE(c2.size(), c3.size());
  // k=1 cuts must all appear for k=3 too.
  for (const Time c : c1)
    EXPECT_TRUE(std::find(c3.begin(), c3.end(), c) != c3.end());
}

TEST(Refinement, SplitKeepsCoverageAndBudgets) {
  std::vector<Interval> ivs{{0, 10, 5}, {10, 20, 2}};
  const std::vector<Time> cuts{3, 10, 15, 17};
  const auto refined = splitIntervalsAt(ivs, cuts);
  // Contiguity & coverage.
  ASSERT_FALSE(refined.empty());
  EXPECT_EQ(refined.front().begin, 0);
  EXPECT_EQ(refined.back().end, 20);
  for (std::size_t i = 0; i + 1 < refined.size(); ++i)
    EXPECT_EQ(refined[i].end, refined[i + 1].begin);
  // Budgets inherited from the containing original interval.
  for (const Interval& iv : refined)
    EXPECT_EQ(iv.green, iv.begin < 10 ? 5 : 2);
  // Cuts inside the span became boundaries.
  const auto hasBegin = [&](Time t) {
    return std::any_of(refined.begin(), refined.end(),
                       [&](const Interval& iv) { return iv.begin == t; });
  };
  EXPECT_TRUE(hasBegin(3));
  EXPECT_TRUE(hasBegin(15));
  EXPECT_TRUE(hasBegin(17));
}

TEST(Refinement, RefineIntervalsIsConsistentWithCutPoints) {
  const EnhancedGraph gc = makeChainGc({2, 3});
  PowerProfile p;
  p.appendInterval(6, 4);
  p.appendInterval(6, 1);
  const auto cuts = refinementCutPoints(gc, p, 3);
  const auto refined = refineIntervals(gc, p, 3);
  EXPECT_EQ(refined.size(), p.numIntervals() + cuts.size());
  Time prev = 0;
  for (const Interval& iv : refined) {
    EXPECT_EQ(iv.begin, prev);
    EXPECT_LT(iv.begin, iv.end);
    prev = iv.end;
  }
  EXPECT_EQ(prev, p.horizon());
}

TEST(Refinement, RejectsNonPositiveBlockSize) {
  const EnhancedGraph gc = makeChainGc({2});
  const PowerProfile p = PowerProfile::uniform(10, 1);
  EXPECT_THROW(refinementCutPoints(gc, p, 0), PreconditionError);
}

TEST(Refinement, MultiProcessorCutsUnionOverProcs) {
  // Two procs with different task lengths → union of both cut sets.
  const EnhancedGraph gc =
      testing::makeGc({{0, 3}, {1, 4}}, {}, {1, 1}, {1, 1});
  const PowerProfile p = PowerProfile::uniform(12, 5);
  const auto cuts = refinementCutPoints(gc, p, 3);
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 12 - 3) != cuts.end());
  EXPECT_TRUE(std::find(cuts.begin(), cuts.end(), 12 - 4) != cuts.end());
}

} // namespace
} // namespace cawo
