// A solar data center meets the real grid: the scheduler plans an eager
// workflow against the S1 solar forecast, but execution is billed against
// the measured grid trace shipped in examples/grid_trace.csv. The example
// replays the same plan under the `static` policy (never react) and the
// `reactive` policy (re-solve when billed carbon drifts from the plan) and
// compares their regret against the clairvoyant solve that knew the trace
// all along.
//
//   $ ./online_replay [--tasks=80] [--deadline-factor=2.0] [--seed=21]
//       [--trace=examples/grid_trace.csv] [--threshold=0.1]

#include <iostream>

#include "exp/json.hpp"
#include "online/replay.hpp"
#include "sim/instance.hpp"
#include "sim/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  try {
    const CliArgs args(
        argc, argv,
        {"tasks", "deadline-factor", "seed", "trace", "threshold"},
        "online_replay");

    InstanceSpec spec;
    spec.family = WorkflowFamily::Eager;
    spec.targetTasks = static_cast<int>(args.getInt("tasks", 80));
    spec.nodesPerType = 2;
    spec.scenario = "S1"; // the forecast: a clean solar day
    spec.deadlineFactor = args.getDouble("deadline-factor", 2.0);
    spec.numIntervals = 24;
    spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 21));
    const Instance inst = buildInstance(spec);

    // The actual: the measured grid trace, tiled over the horizon and
    // normalised onto this platform's power band.
    const std::string actual =
        "trace:" + args.getString("trace", "examples/grid_trace.csv") +
        ",repeat=1,normalize=1";

    std::cout << "eager workflow: " << inst.graph.numTasks() << " tasks ("
              << inst.gc.numNodes() << " enhanced nodes), deadline "
              << inst.deadline << "\nforecast: S1 solar day — actual: "
              << actual << "\n\n";

    OnlineOptions opts;
    opts.solver = "pressWR-LS";
    // Round-trip-exact threshold text: a fixed-precision rendering would
    // silently run a different threshold than the one requested.
    const double threshold = args.getDouble("threshold", 0.1);
    const std::vector<std::string> policies{
        "static", "reactive:threshold=" + jsonNumber(threshold)};

    TextTable table({"policy", "billed cost", "clairvoyant", "regret",
                     "re-solves", "deadline"});
    for (const OnlineResult& r :
         replayOnlinePolicies(inst, actual, opts, policies)) {
      if (!r.ran) {
        std::cout << "replay failed (" << r.policy << "): " << r.error
                  << "\n";
        return 1;
      }
      table.addRow({r.policy, std::to_string(r.actualCost),
                    r.clairvoyantFeasible ? std::to_string(r.clairvoyantCost)
                                          : "-",
                    r.clairvoyantFeasible ? std::to_string(r.regret) : "-",
                    std::to_string(r.resolveCount) + " (" +
                        std::to_string(r.resolveAccepted) + " accepted)",
                    r.deadlineMet ? "met" : "MISSED"});
    }
    table.print(std::cout);
    std::cout << "\nThe static policy ships the solar-day plan into a grid "
                 "that looks nothing like\nit; the reactive policy re-plans "
                 "the unstarted remainder as the drift shows up\nin the "
                 "bill, closing part of the gap to the clairvoyant "
                 "schedule.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
