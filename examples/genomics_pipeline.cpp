// A realistic scenario from the paper's evaluation: an nf-core-style
// ATAC-seq genomics pipeline, HEFT-mapped onto a heterogeneous cluster,
// scheduled under all four green-energy scenarios and all four deadline
// factors. Prints the carbon cost of ASAP and the best CaWoSched variant
// for each of the 16 power profiles.
//
//   $ ./genomics_pipeline [--tasks=150] [--seed=7]

#include <iostream>

#include "core/carbon_cost.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "sim/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cawo;

  const CliArgs args(argc, argv, {"tasks", "seed"});
  const int tasks = static_cast<int>(args.getInt("tasks", 150));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 7));

  std::cout << "ATAC-seq pipeline with ~" << tasks
            << " tasks on a 12-node heterogeneous cluster\n";

  TextTable table({"scenario", "deadline", "ASAP cost", "best variant",
                   "best cost", "ratio"});
  for (const InstanceSpec& spec :
       fullGrid(WorkflowFamily::Atacseq, tasks, 2, seed)) {
    const Instance inst = buildInstance(spec);
    const InstanceResult result = runAllOnInstance(inst);
    const Cost asap = result.runs[0].cost;
    std::size_t best = 1;
    for (std::size_t a = 2; a < result.runs.size(); ++a)
      if (result.runs[a].cost < result.runs[best].cost) best = a;
    const Cost bestCost = result.runs[best].cost;
    const std::string ratio =
        asap == 0 ? "-" : formatFixed(static_cast<double>(bestCost) /
                                          static_cast<double>(asap),
                                      3);
    table.addRow({spec.scenario,
                  formatFixed(spec.deadlineFactor, 1) + "·D",
                  std::to_string(asap), result.runs[best].algorithm,
                  std::to_string(bestCost), ratio});
  }
  table.print(std::cout);
  std::cout << "\nReading guide: ratios well below 1.0 mean CaWoSched "
               "shifted work into green windows; gains grow with the "
               "deadline factor and are largest on S1/S3.\n";
  return 0;
}
