// A solar-powered data center day: an eager (ancient-DNA) workflow runs
// under an S1 profile (morning ramp, midday peak, evening decline). The
// example prints all 17 algorithms with their carbon cost and an hourly
// brown-energy histogram for ASAP vs the winner, showing *when* the two
// schedules burn brown power.
//
//   $ ./solar_datacenter [--tasks=120] [--deadline-factor=3.0]

#include <algorithm>
#include <iostream>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "sim/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cawo;

  const CliArgs args(argc, argv, {"tasks", "deadline-factor", "seed"});
  InstanceSpec spec;
  spec.family = WorkflowFamily::Eager;
  spec.targetTasks = static_cast<int>(args.getInt("tasks", 120));
  spec.nodesPerType = 2;
  spec.scenario = "S1";
  spec.deadlineFactor = args.getDouble("deadline-factor", 3.0);
  spec.numIntervals = 24; // one "hour" per interval
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 21));

  const Instance inst = buildInstance(spec);
  std::cout << "eager workflow: " << inst.graph.numTasks() << " tasks ("
            << inst.gc.numNodes() << " enhanced nodes), deadline "
            << inst.deadline << " = " << spec.deadlineFactor
            << "×ASAP makespan, 24 'hourly' solar intervals\n\n";

  const InstanceResult result = runAllOnInstance(inst);
  std::vector<std::size_t> order(result.runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.runs[a].cost < result.runs[b].cost;
  });

  TextTable table({"rank", "algorithm", "carbon cost", "vs ASAP", "ms"});
  const Cost asapCost = result.runs[0].cost;
  int rank = 1;
  for (const std::size_t i : order) {
    const auto& run = result.runs[i];
    const std::string ratio =
        asapCost == 0 ? "-" : formatFixed(static_cast<double>(run.cost) /
                                              static_cast<double>(asapCost),
                                          3);
    table.addRow({std::to_string(rank++), run.algorithm,
                  std::to_string(run.cost), ratio,
                  formatFixed(run.millis, 1)});
  }
  table.print(std::cout);

  // Hourly brown-power histograms: where does each schedule pollute?
  const Schedule asap = scheduleAsap(inst.gc);
  const VariantSpec bestSpec =
      VariantSpec::parse(result.runs[order[0]].algorithm == "ASAP"
                             ? "pressWR-LS"
                             : result.runs[order[0]].algorithm);
  const Schedule best =
      runVariant(inst.gc, inst.profile, inst.deadline, bestSpec);

  const CostBreakdown asapB =
      evaluateCostBreakdown(inst.gc, inst.profile, asap);
  const CostBreakdown bestB =
      evaluateCostBreakdown(inst.gc, inst.profile, best);

  auto histogram = [&](const char* name, const CostBreakdown& b) {
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t j = 0; j < b.perInterval.size(); ++j) {
      labels.push_back("h" + std::to_string(j));
      values.push_back(static_cast<double>(b.perInterval[j]));
    }
    printBarChart(std::cout, std::string("brown energy per hour — ") + name,
                  labels, values, 40, 0);
  };
  std::cout << "\n";
  histogram("ASAP", asapB);
  std::cout << "\n";
  histogram(bestSpec.name().c_str(), bestB);
  std::cout << "\nASAP burns brown power in the dark morning hours; the "
               "carbon-aware schedule defers work into the midday solar "
               "peak.\n";
  return 0;
}
