// Quickstart: build a tiny workflow by hand, map it with HEFT onto a
// 2-node cluster, define a solar-like green power profile, and compare the
// carbon cost of the ASAP baseline with CaWoSched's pressWR-LS variant —
// both obtained through the unified solver registry.
//
//   $ ./quickstart

#include <iostream>

#include "core/asap.hpp"
#include "heft/heft.hpp"
#include "solver/registry.hpp"

int main() {
  using namespace cawo;

  // 1. A five-task diamond workflow: prepare → {analyze_a, analyze_b}
  //    → merge → report.
  TaskGraph workflow;
  const TaskId prepare = workflow.addTask("prepare", 60);
  const TaskId analyzeA = workflow.addTask("analyze_a", 120);
  const TaskId analyzeB = workflow.addTask("analyze_b", 100);
  const TaskId merge = workflow.addTask("merge", 40);
  const TaskId report = workflow.addTask("report", 20);
  workflow.addEdge(prepare, analyzeA, 10);
  workflow.addEdge(prepare, analyzeB, 10);
  workflow.addEdge(analyzeA, merge, 15);
  workflow.addEdge(analyzeB, merge, 15);
  workflow.addEdge(merge, report, 5);

  // 2. A small heterogeneous platform (one slow, one fast node).
  Platform cluster;
  cluster.addProcessor({"small", 4, 40, 10});
  cluster.addProcessor({"big", 16, 150, 70});

  // 3. Fixed mapping and ordering from HEFT (the paper's assumption).
  const HeftResult heft = runHeft(workflow, cluster);
  const EnhancedGraph gc = EnhancedGraph::build(
      workflow, cluster, heft.mapping, {}, &heft.startTimes);
  std::cout << "workflow: " << workflow.numTasks() << " tasks, enhanced to "
            << gc.numNodes() << " nodes (incl. "
            << gc.numNodes() - workflow.numTasks()
            << " communication tasks)\n";

  // 4. Deadline = 2x the ASAP makespan; a morning-to-evening solar curve.
  const Time d = asapMakespan(gc);
  const Time deadline = 2 * d;
  PowerProfile profile;
  const Power sumIdle = gc.totalIdlePower();
  for (int hour = 0; hour < 8; ++hour) {
    const double x = (hour + 0.5) / 8.0;
    const double bump = 1.0 - (2 * x - 1) * (2 * x - 1);
    profile.appendInterval(
        (deadline + 7) / 8,
        sumIdle + static_cast<Power>(bump * 64.0)); // peak at midday
  }

  std::cout << "ASAP makespan D = " << d << ", deadline = " << deadline
            << " time units\n\n";

  // 5. Compare ASAP against the paper's strongest variant. Any solver
  //    from the registry (`cawosched-cli --list-algos`) fits this mold.
  SolveRequest request;
  request.gc = &gc;
  request.profile = &profile;
  request.deadline = deadline;

  const SolverRegistry& registry = SolverRegistry::global();
  const SolveResult asap = registry.create("ASAP")->solve(request);
  const SolveResult tuned = registry.create("pressWR-LS")->solve(request);

  std::cout << "carbon cost ASAP       : " << asap.cost << "\n";
  std::cout << "carbon cost pressWR-LS : " << tuned.cost << " (solved in "
            << tuned.wallMs << " ms)\n";
  if (asap.cost > 0)
    std::cout << "savings                : "
              << 100.0 * static_cast<double>(asap.cost - tuned.cost) /
                     static_cast<double>(asap.cost)
              << " %\n";

  std::cout << "\nschedule (task, start, proc):\n";
  for (TaskId v = 0; v < workflow.numTasks(); ++v)
    std::cout << "  " << workflow.name(v) << "\t t="
              << tuned.schedule.start(v) << "\t p" << gc.procOf(v) << "\n";
  return 0;
}
