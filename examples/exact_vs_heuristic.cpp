// Optimality study on a small instance (the Figure 7 setting): solve one
// instance exactly with the branch-and-bound solver, compare every
// heuristic against the optimum — all through the unified solver
// registry — and export the Appendix A.4 ILP in LP format for external
// solvers (Gurobi/CPLEX/HiGHS).
//
//   $ ./exact_vs_heuristic [--tasks=6] [--seed=3] [--lp-out=model.lp]

#include <iostream>

#include "core/asap.hpp"
#include "exact/ilp_writer.hpp"
#include "profile/scenario.hpp"
#include "sim/runner.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cawo;

  const CliArgs args(argc, argv, {"tasks", "seed", "lp-out"});
  const int tasks = static_cast<int>(args.getInt("tasks", 6));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 3));
  Rng rng(seed);

  // Random 2-processor instance with dependencies.
  std::vector<EnhancedGraph::Node> nodes(static_cast<std::size_t>(tasks));
  std::vector<std::vector<TaskId>> orders(2);
  for (int t = 0; t < tasks; ++t) {
    auto& node = nodes[static_cast<std::size_t>(t)];
    node.original = t;
    node.proc = static_cast<ProcId>(rng.uniformInt(0, 1));
    node.len = rng.uniformInt(1, 4);
    orders[static_cast<std::size_t>(node.proc)].push_back(t);
  }
  std::vector<std::pair<TaskId, TaskId>> edges;
  for (int a = 0; a < tasks; ++a)
    for (int b = a + 1; b < tasks; ++b)
      if (rng.uniform01() < 0.3) edges.push_back({a, b});
  const EnhancedGraph gc = EnhancedGraph::fromParts(
      std::move(nodes), edges, {1, 2}, {4, 6}, std::move(orders));

  const Time deadline = asapMakespan(gc) + 6;
  const PowerProfile profile =
      generateScenario(Scenario::S1, deadline, 3, 10, {4, 0.1, seed});

  std::cout << "instance: " << tasks << " tasks on 2 processors, deadline "
            << deadline << "\n";

  const SolverRegistry& registry = SolverRegistry::global();
  SolveRequest request;
  request.gc = &gc;
  request.profile = &profile;
  request.deadline = deadline;

  const SolveResult exact = registry.create("bnb")->solve(request);
  std::cout << "exact optimum: cost " << exact.cost << " ("
            << exact.stats.at("nodes-explored") << " search nodes, "
            << (exact.provedOptimal ? "proved optimal" : "budget hit")
            << ")\n\n";

  TextTable table({"algorithm", "cost", "gap to optimum"});
  for (const std::string& name : suiteSolverNames()) {
    const Cost c = registry.create(name)->solve(request).cost;
    table.addRow({name, std::to_string(c), std::to_string(c - exact.cost)});
  }
  table.print(std::cout);

  // The uniprocessor special case is polynomial (Theorem 4.1) — show the
  // "dp" solver agreeing with B&B on the chain of processor 0's tasks,
  // viewed as a single-processor enhanced graph.
  {
    std::vector<EnhancedGraph::Node> chainNodes;
    std::vector<TaskId> chainOrder;
    for (const TaskId v : gc.procOrder(0)) {
      EnhancedGraph::Node node;
      node.original = static_cast<TaskId>(chainNodes.size());
      node.proc = 0;
      node.len = gc.len(v);
      chainOrder.push_back(static_cast<TaskId>(chainNodes.size()));
      chainNodes.push_back(node);
    }
    if (!chainNodes.empty()) {
      const EnhancedGraph chain = EnhancedGraph::fromParts(
          std::move(chainNodes), {}, {gc.idlePower(0)}, {gc.workPower(0)},
          {std::move(chainOrder)});
      SolveRequest chainRequest;
      chainRequest.gc = &chain;
      chainRequest.profile = &profile;
      chainRequest.deadline = deadline;
      const SolveResult dp = registry.create("dp")->solve(chainRequest);
      std::cout << "\nTheorem 4.1 check — single-processor DP on processor "
                   "0's chain: cost "
                << dp.cost << (dp.provedOptimal ? " (optimal)" : "") << "\n";
    }
  }

  const std::string lpPath = args.getString("lp-out", "");
  if (!lpPath.empty()) {
    const IlpStats stats = writeIlpFile(lpPath, gc, profile, deadline);
    std::cout << "\nwrote Appendix A.4 ILP to " << lpPath << " ("
              << stats.numVariables << " variables, " << stats.numConstraints
              << " constraints) — solvable with gurobi_cl / cplex / highs\n";
  }
  return 0;
}
