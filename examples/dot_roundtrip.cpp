// Workflow interchange: generate a methylseq-like pipeline, export it to
// Graphviz DOT (the format the paper converts Nextflow pipelines into),
// read it back, and schedule the re-imported workflow — demonstrating how
// to bring your own .dot workflows into CaWoSched.
//
//   $ ./dot_roundtrip [--out=workflow.dot]

#include <iostream>
#include <sstream>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "heft/heft.hpp"
#include "profile/scenario.hpp"
#include "util/cli.hpp"
#include "workflow/dot_io.hpp"
#include "workflow/generators.hpp"

int main(int argc, char** argv) {
  using namespace cawo;

  const CliArgs args(argc, argv, {"out", "tasks"});
  WorkflowGenOptions gopts;
  gopts.targetTasks = static_cast<int>(args.getInt("tasks", 40));
  gopts.seed = 12;
  const TaskGraph original = generateWorkflow(WorkflowFamily::Methylseq,
                                              gopts);

  const std::string dot = toDotString(original, "methylseq");
  std::cout << "exported " << original.numTasks() << " tasks / "
            << original.numEdges() << " edges to DOT ("
            << dot.size() << " bytes)\n";
  const std::string outPath = args.getString("out", "");
  if (!outPath.empty()) {
    writeDotFile(outPath, original);
    std::cout << "written to " << outPath << "\n";
  }

  // Re-import and schedule the round-tripped workflow.
  const TaskGraph imported = readDotString(dot);
  std::cout << "re-imported " << imported.numTasks() << " tasks / "
            << imported.numEdges() << " edges\n";

  const Platform cluster = Platform::scaled(1);
  const HeftResult heft = runHeft(imported, cluster);
  const EnhancedGraph gc = EnhancedGraph::build(imported, cluster,
                                                heft.mapping, {},
                                                &heft.startTimes);
  const Time deadline = 2 * asapMakespan(gc);
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  const PowerProfile profile = generateScenario(
      Scenario::S3, deadline, gc.totalIdlePower(), sumWork, {12, 0.1, 4});

  const Cost asap = evaluateCost(gc, profile, scheduleAsap(gc));
  const Cost tuned = evaluateCost(
      gc, profile,
      runVariant(gc, profile, deadline, VariantSpec::parse("slackWR-LS")));
  std::cout << "\ncarbon cost on the imported workflow: ASAP " << asap
            << " vs slackWR-LS " << tuned << "\n";

  // Show a snippet of the DOT output.
  std::istringstream lines(dot);
  std::string line;
  int shown = 0;
  std::cout << "\nDOT preview:\n";
  while (std::getline(lines, line) && shown++ < 8)
    std::cout << "  " << line << "\n";
  std::cout << "  ...\n";
  return 0;
}
