// Microbenchmarks (google-benchmark) for the library's hot kernels:
// carbon-cost evaluation, EST/LST passes, interval refinement, greedy
// scheduling, local search, profile generation through the source
// registry, and the two incremental data structures.
//
// --out=FILE (this repo's spelling across all bench binaries) writes the
// run as google-benchmark JSON in addition to the console table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "core/asap.hpp"
#include "core/budget_tree.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "core/est_lst.hpp"
#include "core/greedy.hpp"
#include "core/interval_refinement.hpp"
#include "core/local_search.hpp"
#include "core/power_timeline.hpp"
#include "core/schedule.hpp"
#include "core/solve_context.hpp"
#include "exp/campaign.hpp"
#include "exp/store.hpp"
#include "heft/heft.hpp"
#include "obs/trace.hpp"
#include "profile/profile_io.hpp"
#include "profile/profile_source.hpp"
#include "sim/instance.hpp"
#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace {

using namespace cawo;

Instance makeInstance(int tasks) {
  InstanceSpec spec;
  spec.family = WorkflowFamily::Atacseq;
  spec.targetTasks = tasks;
  spec.nodesPerType = 1;
  spec.scenario = "S1";
  spec.deadlineFactor = 2.0;
  spec.numIntervals = 16;
  spec.seed = 99;
  return buildInstance(spec);
}

void BM_EvaluateCost(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  const Schedule s = scheduleAsap(inst.gc);
  for (auto _ : state)
    benchmark::DoNotOptimize(evaluateCost(inst.gc, inst.profile, s));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateCost)->Arg(50)->Arg(200)->Arg(800)->Complexity();

void BM_EstLst(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeEst(inst.gc));
    benchmark::DoNotOptimize(computeLst(inst.gc, inst.deadline));
  }
}
BENCHMARK(BM_EstLst)->Arg(50)->Arg(200)->Arg(800);

// -----------------------------------------------------------------------
// Window maintenance: the paper-literal full O(N+E) resweep after every
// placement versus the incremental WindowState worklist propagation.
// Both kernels replay the identical placement trace (every node pinned at
// its current EST in topological order), so the measured gap is purely
// the maintenance strategy. The perf trajectory across PRs is recorded
// via --out=BENCH_windows.json (see bench/README.md).
// -----------------------------------------------------------------------
void BM_WindowsFull(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  const auto n = static_cast<std::size_t>(inst.gc.numNodes());
  for (auto _ : state) {
    std::vector<Time> est = computeEst(inst.gc);
    std::vector<Time> lst = computeLst(inst.gc, inst.deadline);
    Schedule partial(inst.gc.numNodes());
    std::vector<bool> placed(n, false);
    for (const TaskId v : inst.gc.topoOrder()) {
      partial.setStart(v, est[static_cast<std::size_t>(v)]);
      placed[static_cast<std::size_t>(v)] = true;
      recomputeWindows(inst.gc, inst.deadline, partial, placed, est, lst);
    }
    benchmark::DoNotOptimize(est);
    benchmark::DoNotOptimize(lst);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WindowsFull)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_WindowsIncremental(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  ctx.initialEst(); // memoize outside the timed region, like the runners do
  ctx.initialLst();
  for (auto _ : state) {
    WindowState ws = ctx.windowState();
    for (const TaskId v : inst.gc.topoOrder()) ws.place(v, ws.est(v));
    benchmark::DoNotOptimize(ws);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WindowsIncremental)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Greedy end to end (pressWR — the most work per placement) on the same
// instances, pinning the full-pipeline effect of the incremental engine.
void BM_GreedySched(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  GreedyOptions opts{BaseScore::Pressure, true, true, 3};
  for (auto _ : state)
    benchmark::DoNotOptimize(scheduleGreedy(ctx, opts));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedySched)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Complexity();

// -----------------------------------------------------------------------
// Telemetry overhead on the greedy hot path (see docs/observability.md).
// Arg(1) selects the trace state: 0 = Off (span sites are one predicted
// branch each — must sit within noise of the untraced BM_GreedySched
// row), 1 = Idle (timestamps taken, nothing stored), 2 = Recording
// (events appended to the per-thread buffer). The recorder is drained
// between iterations outside the timed region so Recording measures
// steady-state append cost, not reallocation of an ever-growing buffer.
// Trajectory recorded via --out=BENCH_obs.json (see bench/README.md).
// -----------------------------------------------------------------------
void BM_TraceOverhead(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  GreedyOptions opts{BaseScore::Pressure, true, true, 3};
  auto& recorder = obs::TraceRecorder::global();
  const auto traceState = static_cast<obs::TraceState>(state.range(1));
  recorder.setState(traceState);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduleGreedy(ctx, opts));
    if (traceState == obs::TraceState::Recording) {
      state.PauseTiming();
      recorder.clear();
      state.ResumeTiming();
    }
  }
  recorder.setState(obs::TraceState::Off);
  recorder.clear();
  state.SetLabel(traceState == obs::TraceState::Off        ? "off"
                 : traceState == obs::TraceState::Idle     ? "idle"
                                                           : "recording");
}
BENCHMARK(BM_TraceOverhead)
    ->ArgsProduct({{5000}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// -----------------------------------------------------------------------
// Parallel solve core (see DESIGN.md, "Parallel solve core"). Both
// kernels produce bit-identical schedules at every thread count — the
// benchmark measures only how fast the same bytes arrive. Threads sweep
// {1, 4, hardware}; on single-core boxes the three rows coincide, which
// is itself the interesting datum (no overhead when there is nothing to
// win). The speedup table lives in bench/README.md.
// -----------------------------------------------------------------------

// All 16 variants batched over one shared context — the CLI multi-solver
// and serve suite path. Shared prefix work (windows, score orders,
// refined intervals) is primed once inside runVariants; the fan-out is
// across variants.
void BM_GreedySchedPar(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  const SolveContext ctx(inst.gc, inst.profile, inst.deadline);
  const std::vector<VariantSpec> variants = greedyOnlyVariants();
  const auto threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(runVariants(ctx, variants, {}, threads));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedySchedPar)
    ->ArgsProduct({{1000, 5000}, {1, 4, 0 /* 0 = hardware */}})
    ->Unit(benchmark::kMillisecond);

// Best-of-8 multi-start local search; restart 0 is the unperturbed climb,
// restarts 1..7 run on independent RNG streams, the merge is by (cost,
// restart index).
void BM_LocalSearchRestarts(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  GreedyOptions gopts{BaseScore::Pressure, true, true, 3};
  const Schedule base =
      scheduleGreedy(inst.gc, inst.profile, inst.deadline, gopts);
  LocalSearchOptions opts;
  opts.restarts = 8;
  opts.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    Schedule s = base;
    localSearchRestarts(inst.gc, inst.profile, inst.deadline, s, opts);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LocalSearchRestarts)
    ->ArgsProduct({{200, 1000, 5000}, {1, 4, 0 /* 0 = hardware */}})
    ->Unit(benchmark::kMillisecond);

void BM_Heft(benchmark::State& state) {
  WorkflowGenOptions opts;
  opts.targetTasks = static_cast<int>(state.range(0));
  opts.seed = 3;
  const TaskGraph g = generateWorkflow(WorkflowFamily::Methylseq, opts);
  const Platform pf = Platform::scaled(2);
  for (auto _ : state) benchmark::DoNotOptimize(runHeft(g, pf));
}
BENCHMARK(BM_Heft)->Arg(50)->Arg(200)->Arg(800);

void BM_Refinement(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(refineIntervals(inst.gc, inst.profile, 3));
}
BENCHMARK(BM_Refinement)->Arg(50)->Arg(200);

void BM_GreedyPressWR(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  GreedyOptions opts{BaseScore::Pressure, true, true, 3};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        scheduleGreedy(inst.gc, inst.profile, inst.deadline, opts));
}
BENCHMARK(BM_GreedyPressWR)->Arg(50)->Arg(200);

void BM_LocalSearch(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<int>(state.range(0)));
  GreedyOptions opts{BaseScore::Pressure, true, true, 3};
  const Schedule base =
      scheduleGreedy(inst.gc, inst.profile, inst.deadline, opts);
  for (auto _ : state) {
    Schedule s = base;
    localSearch(inst.gc, inst.profile, inst.deadline, s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LocalSearch)->Arg(50)->Arg(200);

void BM_BudgetTreeOps(benchmark::State& state) {
  const Time horizon = 100000;
  std::vector<Time> begins;
  std::vector<Power> budgets;
  for (Time t = 0; t < horizon; t += 10) {
    begins.push_back(t);
    budgets.push_back(t % 97);
  }
  Rng rng(5);
  BudgetTree tree(begins, budgets, horizon);
  for (auto _ : state) {
    const Time a = rng.uniformInt(0, horizon - 100);
    tree.consume(a, a + 50, 3);
    benchmark::DoNotOptimize(tree.maxInRange(a, a + 5000));
  }
}
BENCHMARK(BM_BudgetTreeOps);

// Profile generation through the ProfileSourceRegistry: spec parse +
// source dispatch + shape sampling, across interval counts (state.range).
void BM_GenerateProfile(benchmark::State& state, const std::string& spec) {
  ProfileRequest req;
  req.horizon = 24 * 3600;
  req.sumIdle = 100;
  req.sumWork = 200;
  req.numIntervals = static_cast<int>(state.range(0));
  req.seed = 11;
  for (auto _ : state)
    benchmark::DoNotOptimize(generateProfile(spec, req));
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_GenerateProfile, S1, "S1")
    ->Arg(24)->Arg(288)->Arg(2880)->Complexity();
BENCHMARK_CAPTURE(BM_GenerateProfile, sine,
                  "sine:period=24,amp=0.5,phase=6+noise=0.1")
    ->Arg(24)->Arg(288)->Arg(2880)->Complexity();
BENCHMARK_CAPTURE(BM_GenerateProfile, duck, "duck")
    ->Arg(24)->Arg(288)->Arg(2880)->Complexity();

void BM_GenerateProfileTrace(benchmark::State& state) {
  const std::string path = "/tmp/cawo_bench_trace.csv";
  {
    PowerProfile day;
    for (int h = 0; h < 24; ++h)
      day.appendInterval(3600, 100 + 80 * (h % 7));
    writeProfileCsvFile(path, day);
  }
  ProfileRequest req;
  req.horizon = static_cast<Time>(state.range(0)) * 24 * 3600;
  req.sumIdle = 100;
  req.sumWork = 200;
  for (auto _ : state)
    benchmark::DoNotOptimize(generateProfile(
        "trace:" + path + ",repeat=1,normalize=1", req));
}
BENCHMARK(BM_GenerateProfileTrace)->Arg(1)->Arg(7);

// -----------------------------------------------------------------------
// Timeline candidate probes, scalar vs batched. Both kernels evaluate the
// same local-search-shaped scan — one source interval, `width` contiguous
// candidate targets — against an identically loaded timeline; items/s is
// candidates per second. BM_TimelinePeek walks the segment window once
// per candidate (scalar peekMoveDelta), BM_TimelineBatch serves the whole
// sweep from one prefix table (peekMoveDeltas). The perf trajectory is
// recorded via --out=BENCH_timeline.json (see bench/README.md).
// -----------------------------------------------------------------------
PowerTimeline loadedProbeTimeline(PowerProfile& profile) {
  for (int j = 0; j < 24; ++j) profile.appendInterval(100, j * 7 % 50);
  PowerTimeline timeline(profile, 100);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Time a = rng.uniformInt(0, 2300);
    timeline.addLoad(a, a + rng.uniformInt(1, 80), rng.uniformInt(1, 20));
  }
  return timeline;
}

void BM_TimelinePeek(benchmark::State& state) {
  PowerProfile profile;
  const PowerTimeline timeline = loadedProbeTimeline(profile);
  const Time width = state.range(0);
  constexpr Time kLen = 60;
  Rng rng(17);
  for (auto _ : state) {
    const Time cur = rng.uniformInt(0, profile.horizon() - kLen);
    const Time lo = rng.uniformInt(0, profile.horizon() - kLen - width);
    Cost best = 0;
    for (Time t = lo; t < lo + width; ++t)
      best = std::min(best,
                      timeline.peekMoveDelta(cur, cur + kLen, t, t + kLen, 5));
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_TimelinePeek)->Arg(64)->Arg(512);

void BM_TimelineBatch(benchmark::State& state) {
  PowerProfile profile;
  const PowerTimeline timeline = loadedProbeTimeline(profile);
  const Time width = state.range(0);
  constexpr Time kLen = 60;
  Rng rng(17);
  std::vector<CandidateInterval> cands;
  std::vector<Cost> deltas;
  PowerTimeline::PeekScratch scratch;
  for (auto _ : state) {
    const Time cur = rng.uniformInt(0, profile.horizon() - kLen);
    const Time lo = rng.uniformInt(0, profile.horizon() - kLen - width);
    cands.clear();
    for (Time t = lo; t < lo + width; ++t) cands.push_back({t, t + kLen});
    deltas.resize(cands.size());
    timeline.peekMoveDeltas(cur, cur + kLen, 5, cands, scratch, deltas);
    Cost best = 0;
    for (const Cost d : deltas) best = std::min(best, d);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_TimelineBatch)->Arg(64)->Arg(512);

void BM_PowerTimelineMoveDelta(benchmark::State& state) {
  PowerProfile profile;
  for (int j = 0; j < 24; ++j) profile.appendInterval(100, j * 7 % 50);
  PowerTimeline timeline(profile, 100);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Time a = rng.uniformInt(0, 2300);
    timeline.addLoad(a, a + rng.uniformInt(1, 80), rng.uniformInt(1, 20));
  }
  for (auto _ : state) {
    const Time a = rng.uniformInt(0, 2200);
    const Time b = rng.uniformInt(0, 2200);
    benchmark::DoNotOptimize(timeline.moveDelta(a, a + 60, b, b + 60, 5));
  }
}
BENCHMARK(BM_PowerTimelineMoveDelta);

// -----------------------------------------------------------------------
// Campaign result store: append throughput (records/s streamed through
// the group-commit path) and query scan rate over a prebuilt store. The
// records are fabricated — no solving — so the kernels isolate the store
// itself at 10^4..10^6 cells. peak_rss_mb (getrusage high-water) is the
// flat-memory evidence: it must not scale with the cell count. The perf
// trajectory is recorded via --out=BENCH_store.json (see bench/README.md).
// -----------------------------------------------------------------------
CampaignSpec storeBenchSpec(std::int64_t targetCells) {
  CampaignSpec spec;
  spec.name = "bench-store";
  spec.tasks = {40};
  spec.scenarios = {"S1", "S2"};
  spec.deadlineFactors = {1.5, 2.0};
  spec.numIntervals = 8;
  spec.algos = "ASAP,slack"; // 2 cells per instance, nothing is solved
  const std::int64_t grid = 2 * 2; // instances per seed
  const std::int64_t instances = (targetCells + 1) / 2;
  spec.seeds.clear();
  for (std::int64_t s = 0; s < (instances + grid - 1) / grid; ++s)
    spec.seeds.push_back(static_cast<std::uint64_t>(s + 1));
  return spec;
}

void fillFabricatedGroup(const InstanceSpec& ispec,
                         const std::vector<std::string>& labels,
                         std::vector<CampaignRecord>& group) {
  for (std::size_t c = 0; c < labels.size(); ++c) {
    CampaignRecord& r = group[c];
    r.spec = ispec;
    r.instance = ispec.label();
    r.deadline = 100000;
    r.asapMakespanD = 50000;
    r.numNodes = 64;
    r.instanceHash = instanceSpecHash(ispec);
    r.lowerBound = 1000;
    r.solver = labels[c];
    r.cost = static_cast<Cost>(2000 + 13 * c + ispec.seed % 97);
    r.wallMs = 1.25;
    r.feasible = true;
    r.hasBaseline = true;
    r.baselineCost = 2000;
    r.ratioVsBaseline =
        static_cast<double>(r.cost) / static_cast<double>(r.baselineCost);
  }
}

double peakRssMb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0; // KB on Linux
}

void BM_StoreAppend(benchmark::State& state) {
  const CampaignSpec spec = storeBenchSpec(state.range(0));
  const std::string dir = "/tmp/cawo_bench_store_append";
  std::size_t cells = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    CampaignStoreWriter store(dir, spec);
    std::vector<CampaignRecord> group(store.stride());
    for (std::size_t i = 0; i < store.numInstances(); ++i) {
      fillFabricatedGroup(store.instances()[i], store.cellLabels(), group);
      store.appendInstance(i, group.data(), group.size());
    }
    store.flush();
    cells = store.presentCells();
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells));
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["peak_rss_mb"] = peakRssMb();
}
BENCHMARK(BM_StoreAppend)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

const std::string& prebuiltStore(std::int64_t targetCells) {
  static std::map<std::int64_t, std::string> dirs;
  const auto it = dirs.find(targetCells);
  if (it != dirs.end()) return it->second;
  const CampaignSpec spec = storeBenchSpec(targetCells);
  const std::string dir =
      "/tmp/cawo_bench_store_query_" + std::to_string(targetCells);
  std::filesystem::remove_all(dir);
  CampaignStoreWriter store(dir, spec);
  std::vector<CampaignRecord> group(store.stride());
  for (std::size_t i = 0; i < store.numInstances(); ++i) {
    fillFabricatedGroup(store.instances()[i], store.cellLabels(), group);
    store.appendInstance(i, group.data(), group.size());
  }
  store.flush();
  return dirs.emplace(targetCells, dir).first->second;
}

void BM_StoreQuery(benchmark::State& state) {
  CampaignStoreReader reader(prebuiltStore(state.range(0)));
  StoreQuery query; // label glob + scenario prune, then parse the matches
  query.solvers = {"sl*"};
  query.scenarios = {"S2"};
  std::size_t matched = 0;
  for (auto _ : state) {
    matched = queryStore(reader, query,
                         [](std::size_t, std::size_t,
                            const CampaignRecord& r, const std::string&) {
                           benchmark::DoNotOptimize(r.cost);
                         });
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matched));
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["present"] = static_cast<double>(reader.presentCells());
  state.counters["peak_rss_mb"] = peakRssMb();
}
BENCHMARK(BM_StoreQuery)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Like BENCHMARK_MAIN(), but `--out=FILE` (the flag every other bench
// binary uses for machine-readable results) is translated into
// google-benchmark's --benchmark_out/--benchmark_out_format pair.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kOut = "--out=";
    if (std::strncmp(argv[i], kOut, std::strlen(kOut)) == 0) {
      storage.push_back(std::string("--benchmark_out=") +
                        (argv[i] + std::strlen(kOut)));
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(argv[i]);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int newArgc = static_cast<int>(args.size());
  benchmark::Initialize(&newArgc, args.data());
  if (benchmark::ReportUnrecognizedArguments(newArgc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
