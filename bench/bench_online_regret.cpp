// bench_online_regret — online-vs-clairvoyant regret as a function of
// forecast error, per rescheduling policy.
//
// For every noise amplitude A in --noises and every policy in --policies,
// the instance's forecast spec gains a "+noise=A" modifier (A = 0 keeps
// actual == forecast), the online engine replays the plan against the
// noisy actual, and the regret vs the clairvoyant solve (same solver,
// planned directly against actuals) is recorded. One row per policy, one
// column per amplitude; --out writes one JSON record per
// (noise, policy, seed) cell including the per-re-solve wall times.
//
//   $ ./bench_online_regret [--tasks=60] [--family=atacseq]
//       [--nodes-per-type=2] [--intervals=16] [--deadline-factor=1.5]
//       [--seeds=1] [--seed=1] [--forecast=S1] [--algo=pressWR-LS]
//       [--noises=0,0.1,0.2,0.4]
//       [--policies=static,periodic:every=4,reactive:threshold=0.15]
//       [--runtime-noise=0] [--out=BENCH_online.json]

#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "exp/json.hpp"
#include "online/policy.hpp"
#include "online/replay.hpp"
#include "online/result_json.hpp"
#include "profile/profile_source.hpp"
#include "sim/instance.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace {

using namespace cawo;

struct BenchCell {
  double noise = 0.0;
  std::string policy;
  std::uint64_t seed = 0;
  OnlineResult result;
};

// Round-trip-exact amplitude text: the spec (and the table/JSON labels)
// must name exactly the amplitude that was swept — a fixed-precision
// rendering would silently measure a different point than it labels.
std::string formatNoise(double a) { return jsonNumber(a); }

} // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"tasks", "family", "nodes-per-type", "intervals",
                        "deadline-factor", "seeds", "seed", "forecast",
                        "algo", "noises", "policies", "runtime-noise",
                        "out"},
                       "bench_online_regret");

    const std::string forecastBase = args.getString("forecast", "S1");
    const std::string algo = args.getString("algo", "pressWR-LS");
    const int seedCount = static_cast<int>(args.getInt("seeds", 1));
    const auto baseSeed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    std::vector<double> noises;
    for (const std::string& token :
         split(args.getString("noises", "0,0.1,0.2,0.4"), ','))
      noises.push_back(
          parseDoubleStrict("--noises", std::string{trim(token)}));
    const std::vector<std::string> policies = splitSpecList(
        args.getString("policies",
                       "static,periodic:every=4,reactive:threshold=0.15"));
    CAWO_REQUIRE(!noises.empty() && !policies.empty(),
                 "--noises and --policies must be non-empty");
    for (const std::string& policy : policies)
      (void)ReschedulePolicyRegistry::global().resolve(policy);

    OnlineOptions opts;
    opts.solver = algo;
    opts.runtimeNoise = args.getDouble("runtime-noise", 0.0);
    opts.solverOptions.setInt("block-size", 3);
    opts.solverOptions.setInt("ls-radius", 10);

    std::cout << "online regret sweep: " << noises.size() << " amplitudes × "
              << policies.size() << " policies × " << seedCount
              << " seeds (" << forecastBase << ", " << algo << ")\n\n";

    std::vector<BenchCell> cells;
    for (const double noise : noises) {
      for (int s = 0; s < seedCount; ++s) {
        const std::uint64_t seed =
            baseSeed + static_cast<std::uint64_t>(s) * 1000;
        InstanceSpec spec;
        spec.family = familyFromName(args.getString("family", "atacseq"));
        spec.targetTasks = static_cast<int>(args.getInt("tasks", 60));
        spec.nodesPerType =
            static_cast<int>(args.getInt("nodes-per-type", 2));
        spec.numIntervals = static_cast<int>(args.getInt("intervals", 16));
        spec.deadlineFactor = args.getDouble("deadline-factor", 1.5);
        spec.seed = seed;
        // The swept axis: the forecast spec's +noise modifier *is* the
        // forecast error (see docs/formats.md, "Forecast vs actual").
        spec.scenario =
            noise > 0.0 ? forecastBase + "+noise=" + formatNoise(noise) +
                              ",seed=" + std::to_string(seed ^ 0xF0CA57ULL)
                        : forecastBase;
        const Instance inst = buildInstance(spec);
        opts.runtimeSeed = seed ^ 0x0417CEB5ULL;
        // One shared plan + clairvoyant solve per (noise, seed) row.
        std::vector<OnlineResult> results =
            replayOnlinePolicies(inst, "", opts, policies);
        for (std::size_t p = 0; p < policies.size(); ++p) {
          BenchCell cell;
          cell.noise = noise;
          cell.policy = policies[p];
          cell.seed = seed;
          cell.result = std::move(results[p]);
          CAWO_REQUIRE(cell.result.ran,
                       "replay failed (" + policies[p] + ", A=" +
                           formatNoise(noise) + "): " + cell.result.error);
          cells.push_back(std::move(cell));
        }
      }
    }

    // Mean regret-ratio table: policies × amplitudes.
    std::vector<std::string> headers{"policy \\ noise"};
    for (const double a : noises) headers.push_back("A=" + formatNoise(a));
    TextTable ratios(headers);
    TextTable resolves(headers);
    for (const std::string& policy : policies) {
      std::vector<std::string> ratioRow{policy};
      std::vector<std::string> resolveRow{policy};
      for (const double a : noises) {
        std::vector<double> rs;
        double wallMs = 0.0;
        std::int64_t count = 0, cellCount = 0;
        for (const BenchCell& cell : cells) {
          if (cell.policy != policy || cell.noise != a) continue;
          ++cellCount;
          count += static_cast<std::int64_t>(cell.result.resolveCount);
          wallMs += cell.result.resolveWallMs;
          if (cell.result.clairvoyantFeasible &&
              !std::isnan(cell.result.regretRatio))
            rs.push_back(cell.result.regretRatio);
        }
        ratioRow.push_back(rs.empty() ? "-" : formatFixed(meanOf(rs), 3));
        resolveRow.push_back(
            std::to_string(count) + " (" +
            formatFixed(cellCount > 0 ? wallMs / static_cast<double>(cellCount)
                                      : 0.0,
                        2) +
            " ms)");
      }
      ratios.addRow(ratioRow);
      resolves.addRow(resolveRow);
    }
    printHeading(std::cout, "mean regret ratio (actual / clairvoyant)");
    ratios.print(std::cout);
    printHeading(std::cout, "re-solves per cell (mean wall ms)");
    resolves.print(std::cout);

    if (args.has("out")) {
      const std::string out = args.getString("out", "BENCH_online.json");
      std::ofstream file(out);
      CAWO_REQUIRE(file.good(), "cannot open result file: " + out);
      JsonWriter w(file);
      w.beginObject();
      w.key("schema").value("cawosched-bench-online-v1");
      w.key("forecast").value(forecastBase);
      w.key("solver").value(algo);
      w.key("runtime_noise").value(opts.runtimeNoise);
      w.key("records");
      w.beginArray();
      for (const BenchCell& cell : cells) {
        const OnlineResult& r = cell.result;
        w.compactNext();
        w.beginObject();
        w.key("noise").value(cell.noise);
        w.key("policy").value(cell.policy);
        w.key("seed").value(static_cast<std::uint64_t>(cell.seed));
        writeOnlineResultFields(w, r);
        w.endObject();
      }
      w.endArray();
      w.endObject();
      file << '\n';
      CAWO_REQUIRE(file.good(), "failed writing result file: " + out);
      std::cout << "\n" << cells.size() << " records written to " << out
                << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
