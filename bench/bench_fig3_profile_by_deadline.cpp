// Figure 3 (and appendix Figure 10) — performance profiles split by the
// deadline tolerance factor (1.0, 1.5, 2.0, 3.0 × ASAP makespan D).
// Expected shape (paper): pressR/pressWR lead under the tight deadline;
// slack variants clearly take over as the deadline loosens.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);
  const std::vector<double> taus{0.5, 0.8, 1.0};

  for (const double factor : {1.0, 1.5, 2.0, 3.0}) {
    const auto subset = filterResults(results, [&](const InstanceSpec& s) {
      return s.deadlineFactor == factor;
    });
    if (subset.empty()) continue;
    const CostMatrix m = toCostMatrix(subset);
    const auto profile = performanceProfile(m, taus);

    printHeading(std::cout, "Figure 3 — performance profile at deadline " +
                                formatFixed(factor, 1) + "·D (" +
                                std::to_string(subset.size()) +
                                " instances)");
    std::vector<std::string> headers{"algorithm"};
    for (const double t : taus) headers.push_back("tau=" + formatFixed(t, 1));
    TextTable table(headers);
    for (std::size_t a = 0; a < m.numAlgorithms(); ++a) {
      std::vector<std::string> row{m.algorithms[a]};
      for (std::size_t t = 0; t < taus.size(); ++t)
        row.push_back(formatFixed(profile[a][t], 3));
      table.addRow(row);
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: press variants strongest at 1.0·D; slack "
               "variants surpass them at 2.0·D and 3.0·D.\n";
  return 0;
}
