// Figure 8 (and appendix Figure 12) — scheduler running time per algorithm
// variant, overall and for the largest workflows in the run. Expected
// shape: all variants are within a reasonable slowdown of ASAP; refined
// (R) variants and local search add the most time; runtime grows with the
// workflow size.

#include "bench_common.hpp"

#include <algorithm>

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);
  const auto names = algorithmNames();

  auto timeStats = [&](const std::vector<InstanceResult>& subset) {
    std::vector<std::vector<double>> times(names.size());
    for (const InstanceResult& r : subset)
      for (std::size_t a = 0; a < r.runs.size(); ++a)
        times[a].push_back(r.runs[a].millis);
    return times;
  };

  printHeading(std::cout, "Figure 8 — running time per algorithm (ms, " +
                              std::to_string(results.size()) +
                              " instances)");
  {
    const auto times = timeStats(results);
    TextTable table({"algorithm", "median ms", "mean ms", "max ms"});
    for (std::size_t a = 0; a < names.size(); ++a) {
      const double maxV =
          *std::max_element(times[a].begin(), times[a].end());
      table.addRow({names[a], formatFixed(medianOf(times[a]), 2),
                    formatFixed(meanOf(times[a]), 2),
                    formatFixed(maxV, 2)});
    }
    table.print(std::cout);
  }

  // Figure 12: restrict to the largest workflows in this run.
  TaskId largest = 0;
  for (const InstanceResult& r : results)
    largest = std::max(largest, r.numNodes);
  std::vector<InstanceResult> bigOnly;
  for (const InstanceResult& r : results)
    if (r.numNodes >= largest * 3 / 4) bigOnly.push_back(r);

  printHeading(std::cout, "Figure 12 — running time on the largest "
                          "workflows only (" +
                              std::to_string(bigOnly.size()) + " instances)");
  {
    const auto times = timeStats(bigOnly);
    TextTable table({"algorithm", "median ms", "max ms"});
    for (std::size_t a = 0; a < names.size(); ++a) {
      if (times[a].empty()) continue;
      const double maxV =
          *std::max_element(times[a].begin(), times[a].end());
      table.addRow({names[a], formatFixed(medianOf(times[a]), 2),
                    formatFixed(maxV, 2)});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: moderate slowdown vs ASAP; R variants and "
               "-LS cost the most; larger workflows dominate the tail.\n";
  return 0;
}
