#pragma once

// Shared configuration and helpers for the per-figure bench binaries.
//
// Every binary runs without arguments at a scaled-down default (minutes,
// not hours — see DESIGN.md, substitutions) and accepts flags to approach
// paper scale:
//   --tasks=N        base workflow size (default 90)
//   --clusters=a,b   nodes per processor type (default 1,2 — the paper
//                    uses 12 and 24)
//   --intervals=J    power-profile intervals (default 16)
//   --seeds=K        instances per (family, cluster) cell (default 1)
//   --seed=S         base RNG seed (default 1)
//   --algos=SEL      solver selection from the registry: "suite" (ASAP +
//                    the 16 CaWoSched variants — the paper's figure set),
//                    "all", a glob, or a comma list (default "suite")
//   --scenarios=SEL  profile-source selection: "all" (the paper's S1–S4)
//                    or any comma list of registered specs, e.g.
//                    "S1,sine:period=24,amp=0.5,duck" (default "all")
//   --out=FILE       additionally write the run as a campaign JSON result
//                    file (one record per instance × solver cell)
//   --full           paper-leaning preset (--tasks=400 --clusters=2,4
//                    --seeds=2) — still laptop-sized
//
// The figure binaries are thin campaign definitions: they translate this
// config into a CampaignSpec, run it through the campaign engine
// (src/exp), and keep only the figure-specific presentation here.

#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace cawo::bench {

struct BenchConfig {
  int tasks = 90;
  std::vector<int> clusters{1, 2};
  int numIntervals = 16;
  int seedsPerCell = 1;
  std::uint64_t baseSeed = 1;
  std::string algos = "suite";    ///< registry selection (see campaign.hpp)
  std::string scenarios = "all";  ///< profile-source specs ("all" = S1–S4)
  std::string out;                ///< campaign JSON result file ("" = none)
};

inline BenchConfig parseBenchConfig(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"tasks", "clusters", "intervals", "seeds", "seed",
                      "algos", "scenarios", "out", "full"});
  BenchConfig cfg;
  if (args.has("full")) {
    cfg.tasks = 400;
    cfg.clusters = {2, 4};
    cfg.seedsPerCell = 2;
  }
  cfg.tasks = static_cast<int>(args.getInt("tasks", cfg.tasks));
  cfg.numIntervals = static_cast<int>(args.getInt("intervals",
                                                  cfg.numIntervals));
  cfg.seedsPerCell = static_cast<int>(args.getInt("seeds", cfg.seedsPerCell));
  cfg.baseSeed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  cfg.algos = args.getString("algos", cfg.algos);
  cfg.scenarios = args.getString("scenarios", cfg.scenarios);
  cfg.out = args.getString("out", cfg.out);
  if (args.has("clusters")) {
    cfg.clusters.clear();
    for (const std::string& c : split(args.getString("clusters", ""), ','))
      cfg.clusters.push_back(std::stoi(c));
  }
  return cfg;
}

/// The paper's grid as a campaign: every workflow family on every cluster,
/// each with all 16 power profiles (4 scenarios × 4 deadline factors);
/// bacass — the small real-world pipeline — is scaled to a third of the
/// base task count. Figure binaries tweak the returned spec (families,
/// task axis) and hand it to runBenchCampaign.
inline CampaignSpec benchCampaign(const BenchConfig& cfg,
                                  const std::string& name) {
  CampaignSpec spec;
  spec.name = name;
  spec.families = {WorkflowFamily::Atacseq, WorkflowFamily::Bacass,
                   WorkflowFamily::Eager, WorkflowFamily::Methylseq};
  spec.tasks = {cfg.tasks};
  spec.bacassTasks = std::max(20, cfg.tasks / 3);
  spec.nodesPerType = cfg.clusters;
  // Deadline factors keep the paper defaults (×4); the scenario axis
  // resolves --scenarios through the profile-source registry ("all" is
  // the paper's S1–S4, i.e. the historical default).
  setCampaignKey(spec, "scenarios", cfg.scenarios);
  spec.seeds.clear();
  for (int s = 0; s < cfg.seedsPerCell; ++s)
    spec.seeds.push_back(cfg.baseSeed + static_cast<std::uint64_t>(s) * 1000);
  spec.numIntervals = cfg.numIntervals;
  spec.algos = cfg.algos;
  return spec;
}

/// Run a campaign for a figure binary: announce the size, execute, and
/// honour --out by writing the JSON result file next to the figure text.
inline CampaignOutcome runBenchCampaign(const CampaignSpec& spec,
                                        const BenchConfig& cfg) {
  std::cout << "running " << spec.cellCount() << " instances × "
            << campaignSolverNames(spec).size() << " solvers ...\n";
  CampaignOutcome outcome = runCampaign(spec);
  if (!cfg.out.empty()) {
    writeCampaignJsonFile(cfg.out, outcome);
    std::cout << "campaign records written to " << cfg.out << "\n";
  }
  return outcome;
}

/// Compatibility shim for the figure binaries that only need the
/// suite-style per-instance results.
inline std::vector<InstanceResult> runBenchGrid(const BenchConfig& cfg) {
  return runBenchCampaign(benchCampaign(cfg, "bench-grid"), cfg).results;
}

/// Median cost ratio vs ASAP (index 0) for every CaWoSched variant.
inline void printMedianRatios(std::ostream& out, const CostMatrix& m,
                              const std::string& title) {
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t a = 1; a < m.numAlgorithms(); ++a) {
    const auto ratios = ratiosVsBaseline(m, 0, a);
    if (ratios.empty()) continue;
    labels.push_back(m.algorithms[a]);
    values.push_back(medianOf(ratios));
  }
  printBarChart(out, title, labels, values);
}

/// Filter suite results by a predicate on the spec.
template <typename Pred>
std::vector<InstanceResult> filterResults(
    const std::vector<InstanceResult>& results, Pred pred) {
  std::vector<InstanceResult> out;
  for (const InstanceResult& r : results)
    if (pred(r.spec)) out.push_back(r);
  return out;
}

} // namespace cawo::bench
