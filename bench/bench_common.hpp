#pragma once

// Shared configuration and helpers for the per-figure bench binaries.
//
// Every binary runs without arguments at a scaled-down default (minutes,
// not hours — see DESIGN.md, substitutions) and accepts flags to approach
// paper scale:
//   --tasks=N        base workflow size (default 90)
//   --clusters=a,b   nodes per processor type (default 1,2 — the paper
//                    uses 12 and 24)
//   --intervals=J    power-profile intervals (default 16)
//   --seeds=K        instances per (family, cluster) cell (default 1)
//   --seed=S         base RNG seed (default 1)
//   --algos=SEL      solver selection from the registry: "suite" (ASAP +
//                    the 16 CaWoSched variants — the paper's figure set),
//                    "all", a glob, or a comma list (default "suite")
//   --full           paper-leaning preset (--tasks=400 --clusters=2,4
//                    --seeds=2) — still laptop-sized

#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "sim/instance.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace cawo::bench {

struct BenchConfig {
  int tasks = 90;
  std::vector<int> clusters{1, 2};
  int numIntervals = 16;
  int seedsPerCell = 1;
  std::uint64_t baseSeed = 1;
  std::string algos = "suite"; ///< registry selection (see solverNames())

  /// The resolved solver selection: the canonical bench suite by default,
  /// otherwise whatever registry pattern --algos names.
  std::vector<std::string> solverNames() const {
    if (algos == "suite") return suiteSolverNames();
    return SolverRegistry::global().select(algos);
  }
};

inline BenchConfig parseBenchConfig(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"tasks", "clusters", "intervals", "seeds", "seed",
                      "algos", "full"});
  BenchConfig cfg;
  if (args.has("full")) {
    cfg.tasks = 400;
    cfg.clusters = {2, 4};
    cfg.seedsPerCell = 2;
  }
  cfg.tasks = static_cast<int>(args.getInt("tasks", cfg.tasks));
  cfg.numIntervals = static_cast<int>(args.getInt("intervals",
                                                  cfg.numIntervals));
  cfg.seedsPerCell = static_cast<int>(args.getInt("seeds", cfg.seedsPerCell));
  cfg.baseSeed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  cfg.algos = args.getString("algos", cfg.algos);
  if (args.has("clusters")) {
    cfg.clusters.clear();
    for (const std::string& c : split(args.getString("clusters", ""), ','))
      cfg.clusters.push_back(std::stoi(c));
  }
  return cfg;
}

/// The paper's instance set: every workflow family on every cluster, each
/// with all 16 power profiles (4 scenarios × 4 deadline factors).
inline std::vector<InstanceSpec> benchGrid(const BenchConfig& cfg) {
  std::vector<InstanceSpec> specs;
  const WorkflowFamily families[] = {
      WorkflowFamily::Atacseq, WorkflowFamily::Bacass, WorkflowFamily::Eager,
      WorkflowFamily::Methylseq};
  for (const WorkflowFamily family : families) {
    // bacass is the small real-world pipeline in the paper.
    const int tasks =
        family == WorkflowFamily::Bacass ? std::max(20, cfg.tasks / 3)
                                         : cfg.tasks;
    for (const int cluster : cfg.clusters) {
      for (int s = 0; s < cfg.seedsPerCell; ++s) {
        for (InstanceSpec spec :
             fullGrid(family, tasks, cluster,
                      cfg.baseSeed + static_cast<std::uint64_t>(s) * 1000,
                      cfg.numIntervals)) {
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

inline std::vector<InstanceResult> runBenchGrid(const BenchConfig& cfg) {
  const auto specs = benchGrid(cfg);
  const auto solvers = cfg.solverNames();
  std::cout << "running " << specs.size() << " instances × "
            << solvers.size() << " solvers ...\n";
  return runSuite(specs, solvers);
}

/// Median cost ratio vs ASAP (index 0) for every CaWoSched variant.
inline void printMedianRatios(std::ostream& out, const CostMatrix& m,
                              const std::string& title) {
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t a = 1; a < m.numAlgorithms(); ++a) {
    const auto ratios = ratiosVsBaseline(m, 0, a);
    if (ratios.empty()) continue;
    labels.push_back(m.algorithms[a]);
    values.push_back(medianOf(ratios));
  }
  printBarChart(out, title, labels, values);
}

/// Filter suite results by a predicate on the spec.
template <typename Pred>
std::vector<InstanceResult> filterResults(
    const std::vector<InstanceResult>& results, Pred pred) {
  std::vector<InstanceResult> out;
  for (const InstanceResult& r : results)
    if (pred(r.spec)) out.push_back(r);
  return out;
}

} // namespace cawo::bench
