// bench_serve_loadgen — load generator for the scheduler-as-a-service
// daemon (src/serve): drives a ServeServer with concurrent clients, both
// in-process (submitLine directly — measures the daemon core) and over a
// real loopback TCP socket (measures the full wire path), and reports
// throughput plus end-to-end latency percentiles per mode. Requests cycle
// through a configurable number of distinct instances, so the run also
// exercises the SolveContext LRU cache (hit counters are reported).
//
//   $ ./bench_serve_loadgen [--requests=1000] [--clients=8] [--workers=0]
//       [--queue-capacity=256] [--cache-capacity=16]
//       [--distinct-instances=4] [--tasks=30] [--intervals=8]
//       [--deadline-factor=2.0] [--algo=pressWR-LS] [--replay-every=0]
//       [--modes=inprocess,socket] [--out=BENCH_serve.json]
//
// Each client keeps one request outstanding (closed-loop load);
// queue_full rejections are retried after a short backoff and counted.
// --replay-every=N turns every Nth request into a replay (0 = none).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/json.hpp"
#include "obs/session.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "sim/table.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace {

using namespace cawo;
using Clock = std::chrono::steady_clock;

struct LoadConfig {
  int requests = 1000;
  int clients = 8;
  int distinctInstances = 4;
  int tasks = 30;
  int intervals = 8;
  double deadlineFactor = 2.0;
  std::string algo = "pressWR-LS";
  int replayEvery = 0; ///< every Nth request is a replay; 0 = never
};

struct LatencySummary {
  std::int64_t count = 0;
  double meanMs = 0.0;
  double p50Ms = 0.0;
  double p90Ms = 0.0;
  double p99Ms = 0.0;
  double p999Ms = 0.0;
  double maxMs = 0.0;
};

struct ModeOutcome {
  std::string mode;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  std::int64_t retries = 0; ///< queue_full rejections that were retried
  double wallS = 0.0;
  double throughputRps = 0.0;
  LatencySummary latency;
  ServeStats server; ///< the daemon's own view after the run
};

LatencySummary summariseLatencies(std::vector<double> samples) {
  LatencySummary s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.meanMs = sum / static_cast<double>(samples.size());
  const auto pct = [&samples](double q) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size()));
    return samples[std::min(rank, samples.size() - 1)];
  };
  s.p50Ms = pct(0.50);
  s.p90Ms = pct(0.90);
  s.p99Ms = pct(0.99);
  s.p999Ms = pct(0.999);
  s.maxMs = samples.back();
  return s;
}

/// The i-th request line: solve (or replay, per --replay-every) on one of
/// the cycled instances.
std::string requestLine(const LoadConfig& config, int i) {
  const int seed = 1 + i % std::max(1, config.distinctInstances);
  const bool replay =
      config.replayEvery > 0 && (i + 1) % config.replayEvery == 0;
  std::string line = "{\"kind\":\"";
  line += replay ? "replay" : "solve";
  line += "\",\"id\":\"q" + std::to_string(i) + "\",\"tasks\":" +
          std::to_string(config.tasks) + ",\"intervals\":" +
          std::to_string(config.intervals) + ",\"deadline_factor\":" +
          jsonNumber(config.deadlineFactor) + ",\"seed\":" +
          std::to_string(seed) + ",\"algo\":\"" + config.algo + "\"";
  if (replay) line += ",\"policy\":\"static\",\"actual\":\"S2\"";
  line += "}";
  return line;
}

bool isQueueFull(const std::string& response) {
  return response.find("\"error\": \"queue_full\"") != std::string::npos;
}

bool isOk(const std::string& response) {
  return response.find("\"ok\": true") != std::string::npos;
}

/// Closed-loop in-process run: each client thread keeps one request
/// outstanding against server.submitLine.
ModeOutcome runInProcess(ServeServer& server, const LoadConfig& config) {
  ModeOutcome outcome;
  outcome.mode = "inprocess";
  std::atomic<int> next{0};
  std::atomic<std::int64_t> ok{0}, errors{0}, retries{0};
  std::mutex latencyMutex;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(config.requests));

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= config.requests) return;
        const std::string line = requestLine(config, i);
        for (;;) {
          std::mutex m;
          std::condition_variable cv;
          std::string response;
          bool got = false;
          const Clock::time_point start = Clock::now();
          server.submitLine(line, [&](const std::string& r) {
            {
              const std::scoped_lock lock(m);
              response = r;
              got = true;
            }
            cv.notify_one();
          });
          {
            std::unique_lock lock(m);
            cv.wait(lock, [&] { return got; });
          }
          if (isQueueFull(response)) {
            ++retries;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
          if (isOk(response)) ++ok;
          else ++errors;
          const std::scoped_lock lock(latencyMutex);
          latencies.push_back(ms);
          break;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();
  outcome.wallS =
      std::chrono::duration<double>(Clock::now() - t0).count();
  outcome.ok = ok;
  outcome.errors = errors;
  outcome.retries = retries;
  outcome.throughputRps =
      outcome.wallS > 0.0
          ? static_cast<double>(config.requests) / outcome.wallS
          : 0.0;
  outcome.latency = summariseLatencies(std::move(latencies));
  outcome.server = server.stats();
  return outcome;
}

int connectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CAWO_REQUIRE(fd >= 0,
               std::string("cannot create socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  CAWO_REQUIRE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0,
               "cannot connect to 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno));
  return fd;
}

void sendAll(int fd, const std::string& payload) {
  const char* data = payload.data();
  std::size_t left = payload.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, data, left, MSG_NOSIGNAL);
    CAWO_REQUIRE(n > 0, "socket send failed");
    data += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

/// One synchronous request over an established connection (each client
/// keeps exactly one outstanding, so responses arrive in order).
std::string requestOverSocket(int fd, const std::string& line,
                              std::string& buffer) {
  sendAll(fd, line + "\n");
  std::size_t eol;
  while ((eol = buffer.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    CAWO_REQUIRE(n > 0, "connection closed mid-response");
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  std::string response = buffer.substr(0, eol);
  buffer.erase(0, eol + 1);
  return response;
}

/// Closed-loop socket run: same request stream, but every byte travels
/// through the loopback TCP transport.
ModeOutcome runOverSocket(ServeServer& server, const LoadConfig& config) {
  ModeOutcome outcome;
  outcome.mode = "socket";
  TcpServeListener listener(server, 0);

  std::atomic<int> next{0};
  std::atomic<std::int64_t> ok{0}, errors{0}, retries{0};
  std::mutex latencyMutex;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(config.requests));

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, port = listener.port()] {
      const int fd = connectLoopback(port);
      std::string buffer;
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= config.requests) break;
        const std::string line = requestLine(config, i);
        for (;;) {
          const Clock::time_point start = Clock::now();
          const std::string response =
              requestOverSocket(fd, line, buffer);
          if (isQueueFull(response)) {
            ++retries;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
          if (isOk(response)) ++ok;
          else ++errors;
          const std::scoped_lock lock(latencyMutex);
          latencies.push_back(ms);
          break;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();
  outcome.wallS =
      std::chrono::duration<double>(Clock::now() - t0).count();
  listener.stop();

  outcome.ok = ok;
  outcome.errors = errors;
  outcome.retries = retries;
  outcome.throughputRps =
      outcome.wallS > 0.0
          ? static_cast<double>(config.requests) / outcome.wallS
          : 0.0;
  outcome.latency = summariseLatencies(std::move(latencies));
  outcome.server = server.stats();
  return outcome;
}

void writeLatency(JsonWriter& w, const LatencySummary& s) {
  w.beginObject();
  w.key("count").value(s.count);
  w.key("mean_ms").value(s.meanMs);
  w.key("p50_ms").value(s.p50Ms);
  w.key("p90_ms").value(s.p90Ms);
  w.key("p99_ms").value(s.p99Ms);
  w.key("p999_ms").value(s.p999Ms);
  w.key("max_ms").value(s.maxMs);
  w.endObject();
}

} // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"requests", "clients", "workers", "queue-capacity",
                        "cache-capacity", "distinct-instances", "tasks",
                        "intervals", "deadline-factor", "algo",
                        "replay-every", "modes", "out", "trace",
                        "trace-summary"},
                       "bench_serve_loadgen");

    cawo::obs::TraceSession trace(args.getString("trace", ""),
                                  args.has("trace-summary"));

    LoadConfig config;
    config.requests = static_cast<int>(args.getInt("requests", 1000));
    config.clients = static_cast<int>(args.getInt("clients", 8));
    config.distinctInstances =
        static_cast<int>(args.getInt("distinct-instances", 4));
    config.tasks = static_cast<int>(args.getInt("tasks", 30));
    config.intervals = static_cast<int>(args.getInt("intervals", 8));
    config.deadlineFactor = args.getDouble("deadline-factor", 2.0);
    config.algo = args.getString("algo", "pressWR-LS");
    config.replayEvery = static_cast<int>(args.getInt("replay-every", 0));
    CAWO_REQUIRE(config.requests > 0 && config.clients > 0,
                 "--requests and --clients must be positive");

    ServeOptions serveOptions;
    serveOptions.workers =
        static_cast<unsigned>(args.getInt("workers", 0));
    serveOptions.queueCapacity =
        static_cast<std::size_t>(args.getInt("queue-capacity", 256));
    serveOptions.cacheCapacity =
        static_cast<std::size_t>(args.getInt("cache-capacity", 16));
    serveOptions.solverDefaults.setInt("block-size", 3);
    serveOptions.solverDefaults.setInt("ls-radius", 10);

    const std::vector<std::string> modes =
        split(args.getString("modes", "inprocess,socket"), ',');

    std::cout << "serve load: " << config.requests << " requests × "
              << config.clients << " clients, "
              << config.distinctInstances << " distinct instances ("
              << config.algo << ", tasks=" << config.tasks << ")\n\n";

    std::vector<ModeOutcome> outcomes;
    for (const std::string& mode : modes) {
      // A fresh daemon per mode, so per-mode server stats are comparable.
      ServeServer server(serveOptions);
      if (mode == "inprocess") {
        outcomes.push_back(runInProcess(server, config));
      } else if (mode == "socket") {
        outcomes.push_back(runOverSocket(server, config));
      } else {
        CAWO_REQUIRE(false, "unknown mode \"" + mode +
                                "\" (valid: inprocess, socket)");
      }
    }

    TextTable table({"mode", "req/s", "ok", "err", "retry", "p50 ms",
                     "p99 ms", "p99.9 ms", "max ms", "cache hit%"});
    for (const ModeOutcome& o : outcomes) {
      const std::int64_t lookups = o.server.cache.hits + o.server.cache.misses;
      table.addRow(
          {o.mode, formatFixed(o.throughputRps, 1), std::to_string(o.ok),
           std::to_string(o.errors), std::to_string(o.retries),
           formatFixed(o.latency.p50Ms, 3), formatFixed(o.latency.p99Ms, 3),
           formatFixed(o.latency.p999Ms, 3), formatFixed(o.latency.maxMs, 3),
           lookups > 0 ? formatFixed(100.0 *
                                         static_cast<double>(
                                             o.server.cache.hits) /
                                         static_cast<double>(lookups),
                                     1)
                       : "-"});
    }
    table.print(std::cout);

    if (args.has("out")) {
      const std::string out = args.getString("out", "BENCH_serve.json");
      std::ofstream file(out);
      CAWO_REQUIRE(file.good(), "cannot open result file: " + out);
      JsonWriter w(file);
      w.beginObject();
      w.key("schema").value("cawosched-bench-serve-v1");
      w.key("requests").value(config.requests);
      w.key("clients").value(config.clients);
      w.key("workers")
          .value(static_cast<std::int64_t>(
              outcomes.empty() ? 0 : outcomes.front().server.workers));
      w.key("queue_capacity")
          .value(static_cast<std::int64_t>(serveOptions.queueCapacity));
      w.key("cache_capacity")
          .value(static_cast<std::int64_t>(serveOptions.cacheCapacity));
      w.key("distinct_instances").value(config.distinctInstances);
      w.key("tasks").value(config.tasks);
      w.key("intervals").value(config.intervals);
      w.key("deadline_factor").value(config.deadlineFactor);
      w.key("algo").value(config.algo);
      w.key("replay_every").value(config.replayEvery);
      w.key("records");
      w.beginArray();
      for (const ModeOutcome& o : outcomes) {
        w.compactNext();
        w.beginObject();
        w.key("mode").value(o.mode);
        w.key("ok").value(o.ok);
        w.key("errors").value(o.errors);
        w.key("retries").value(o.retries);
        w.key("wall_s").value(o.wallS);
        w.key("throughput_rps").value(o.throughputRps);
        w.key("latency");
        writeLatency(w, o.latency);
        w.key("server");
        w.beginObject();
        w.key("received").value(o.server.received);
        w.key("completed").value(o.server.completed);
        w.key("failed").value(o.server.failed);
        w.key("rejected_queue_full").value(o.server.rejectedQueueFull);
        w.key("timeouts").value(o.server.timeouts);
        w.key("cache_hits").value(o.server.cache.hits);
        w.key("cache_misses").value(o.server.cache.misses);
        w.key("cache_evictions").value(o.server.cache.evictions);
        w.endObject();
        w.endObject();
      }
      w.endArray();
      w.endObject();
      file << '\n';
      CAWO_REQUIRE(file.good(), "failed writing result file: " + out);
      std::cout << "\n" << outcomes.size() << " mode records written to "
                << out << "\n";
    }

    for (const ModeOutcome& o : outcomes)
      CAWO_REQUIRE(o.errors == 0, o.mode + " run had " +
                                      std::to_string(o.errors) +
                                      " error responses");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
