// Figure 16 — cost ratios vs ASAP split by workflow size class (the paper
// groups 200–4k tasks as small, 8k–18k as medium, 20k–30k as large; this
// run uses proportionally smaller classes around the --tasks default).
// Expected shape: the ratio degrades only slightly with more tasks — the
// improvement over ASAP stays significant in every class.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  BenchConfig cfg = parseBenchConfig(argc, argv);

  // Three size classes around the configured base size; the figure is a
  // thin campaign whose task axis lists one size per class.
  const std::vector<std::pair<std::string, int>> classes = {
      {"small", std::max(20, cfg.tasks / 3)},
      {"medium", cfg.tasks},
      {"large", cfg.tasks * 3},
  };

  CampaignSpec campaign = benchCampaign(cfg, "fig16-by-size");
  campaign.families = {WorkflowFamily::Atacseq, WorkflowFamily::Eager,
                       WorkflowFamily::Methylseq};
  campaign.bacassTasks = 0;
  campaign.tasks.clear();
  for (const auto& [className, tasks] : classes)
    campaign.tasks.push_back(tasks);
  campaign.seeds = {cfg.baseSeed};

  const CampaignOutcome outcome = runBenchCampaign(campaign, cfg);

  for (const auto& [className, tasks] : classes) {
    const auto subset =
        filterResults(outcome.results, [&](const InstanceSpec& s) {
          return s.targetTasks == tasks;
        });
    if (subset.empty()) continue;
    const CostMatrix m = toCostMatrix(subset);
    printHeading(std::cout, "Figure 16 — median cost ratio vs ASAP, " +
                                className + " workflows (~" +
                                std::to_string(tasks) + " tasks)");
    printMedianRatios(std::cout, m, "");
  }
  std::cout << "\nExpected shape: slight degradation with size, but a "
               "significant improvement over ASAP in every class.\n";
  return 0;
}
