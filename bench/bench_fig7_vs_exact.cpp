// Figure 7 — solution quality versus the exact optimum on small instances.
// The paper solves its ILP (Appendix A.4) with Gurobi on instances of up to
// 200 tasks; here the optimum comes from the equivalent branch-and-bound
// solver (see DESIGN.md, substitutions) on instances small enough to
// certify. Expected shape: the heuristics' median ratio optimum/heuristic
// stays high (close to 1), many instances are solved optimally, and ASAP
// is clearly worse.

#include "bench_common.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "exact/branch_and_bound.hpp"
#include "profile/scenario.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const CliArgs args(argc, argv, {"count", "seed", "tasks"});
  const int count = static_cast<int>(args.getInt("count", 24));
  const int tasks = static_cast<int>(args.getInt("tasks", 5));
  const auto baseSeed = static_cast<std::uint64_t>(args.getInt("seed", 7));

  std::vector<std::string> names = algorithmNames();
  std::vector<std::vector<double>> ratios(names.size());
  int optimalHits = 0, totalRuns = 0, certified = 0;

  for (int i = 0; i < count; ++i) {
    Rng rng(baseSeed + static_cast<std::uint64_t>(i) * 131);
    // Small 2-processor instance with a handful of dependent tasks.
    std::vector<EnhancedGraph::Node> nodes(
        static_cast<std::size_t>(tasks));
    std::vector<std::vector<TaskId>> orders(2);
    for (int t = 0; t < tasks; ++t) {
      nodes[static_cast<std::size_t>(t)].original = t;
      nodes[static_cast<std::size_t>(t)].proc =
          static_cast<ProcId>(rng.uniformInt(0, 1));
      nodes[static_cast<std::size_t>(t)].len = rng.uniformInt(1, 3);
      orders[static_cast<std::size_t>(
                 nodes[static_cast<std::size_t>(t)].proc)]
          .push_back(t);
    }
    std::vector<std::pair<TaskId, TaskId>> edges;
    for (int a = 0; a < tasks; ++a)
      for (int b = a + 1; b < tasks; ++b)
        if (rng.uniform01() < 0.25) edges.push_back({a, b});
    const EnhancedGraph gc = EnhancedGraph::fromParts(
        std::move(nodes), edges, {1, 2}, {4, 6}, std::move(orders));

    const Time deadline = asapMakespan(gc) + rng.uniformInt(3, 8);
    const PowerProfile profile = generateScenario(
        static_cast<Scenario>(rng.uniformInt(0, 3)), deadline, 3, 10,
        {4, 0.1, baseSeed + static_cast<std::uint64_t>(i)});

    const BnbResult exact = solveExact(gc, profile, deadline);
    if (!exact.provedOptimal) continue;
    ++certified;

    for (std::size_t a = 0; a < names.size(); ++a) {
      const Schedule s =
          a == 0 ? scheduleAsap(gc)
                 : runVariant(gc, profile, deadline,
                              VariantSpec::parse(names[a]));
      const Cost own = evaluateCost(gc, profile, s);
      ++totalRuns;
      double ratio;
      if (own == 0) {
        ratio = 1.0;
      } else {
        ratio = static_cast<double>(exact.cost) / static_cast<double>(own);
      }
      if (own == exact.cost) ++optimalHits;
      ratios[a].push_back(ratio);
    }
  }

  printHeading(std::cout,
               "Figure 7 — ratio optimum/heuristic on " +
                   std::to_string(certified) + " certified-small instances");
  std::vector<std::string> labels;
  std::vector<double> medians;
  for (std::size_t a = 0; a < names.size(); ++a) {
    if (ratios[a].empty()) continue;
    labels.push_back(names[a]);
    medians.push_back(medianOf(ratios[a]));
  }
  printBarChart(std::cout, "median ratio (1.0 = optimal)", labels, medians);
  std::cout << "\noptimal solutions found: " << optimalHits << " / "
            << totalRuns << " runs\n";
  std::cout << "Expected shape: heuristic medians close to 1.0, ASAP "
               "clearly lower; a significant share of runs hit the exact "
               "optimum.\n";
  return 0;
}
