// Figure 15 — cost ratios vs ASAP split by the power-profile scenario.
// Expected shape (paper): the heuristics achieve their biggest gains on
// S1 (solar day) and S3 (24 h sine) where little green power is available
// at the beginning; ASAP is relatively stronger on S2 (green at the start)
// and S4 (constant).

// The figure is a thin campaign definition over the paper grid; the
// scenario split is also available as the campaign summary's per-scenario
// median ratios (--out=results.json, "median_ratio_by_scenario"). The
// scenario axis is open: --scenarios accepts any registered profile spec
// ("all" keeps the paper's S1–S4), and the figure prints one block per
// distinct spec in the campaign.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const CampaignOutcome outcome =
      runBenchCampaign(benchCampaign(cfg, "fig15-by-scenario"), cfg);
  const std::vector<InstanceResult>& results = outcome.results;

  for (const std::string& scenario : outcome.scenarios) {
    const auto subset = filterResults(results, [&](const InstanceSpec& s) {
      return s.scenario == scenario;
    });
    if (subset.empty()) continue;
    const CostMatrix m = toCostMatrix(subset);
    printHeading(std::cout, "Figure 15 — median cost ratio vs "
                            "ASAP, scenario " + scenario);
    printMedianRatios(std::cout, m, "");
  }
  std::cout << "\nExpected shape: lowest ratios (biggest savings) on S1 and "
               "S3; ASAP comparatively strong on S2 and S4.\n";
  return 0;
}
