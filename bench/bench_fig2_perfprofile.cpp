// Figure 2 — performance profiles over all instances: for each algorithm
// the fraction of instances whose ratio (best cost / own cost) is ≥ τ.
// Higher curves are better. Expected shape (paper): pressWR-LS has the
// highest value at τ = 1.0; slack-based variants overtake the pressure
// variants for smaller τ.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);
  const CostMatrix m = toCostMatrix(results);

  const std::vector<double> taus{0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0};
  const auto profile = performanceProfile(m, taus);

  printHeading(std::cout, "Figure 2 — performance profiles (fraction of "
                          "instances with best/own >= tau)");
  std::vector<std::string> headers{"algorithm"};
  for (const double t : taus) headers.push_back("tau=" + formatFixed(t, 1));
  TextTable table(headers);
  for (std::size_t a = 0; a < m.numAlgorithms(); ++a) {
    std::vector<std::string> row{m.algorithms[a]};
    for (std::size_t t = 0; t < taus.size(); ++t)
      row.push_back(formatFixed(profile[a][t], 3));
    table.addRow(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: a higher curve is better; ASAP is clearly "
               "below every variant,\npressWR-LS leads at tau=1.0.\n";
  return 0;
}
