// Figure 5 (and appendix Figure 11) — the median cost ratio vs ASAP as the
// deadline tolerance grows. Expected shape (paper): moderate gains at the
// tight deadline; strong gains with slack (down to ≈ 0.15 for slackW at
// 3.0·D).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);

  for (const double factor : {1.0, 1.5, 2.0, 3.0}) {
    const auto subset = filterResults(results, [&](const InstanceSpec& s) {
      return s.deadlineFactor == factor;
    });
    if (subset.empty()) continue;
    const CostMatrix m = toCostMatrix(subset);
    printHeading(std::cout, "Figure 5 — median cost ratio vs ASAP at " +
                                formatFixed(factor, 1) + "·D");
    printMedianRatios(std::cout, m, "");
  }
  std::cout << "\nExpected shape: ratios fall as the deadline loosens — "
               "every variant benefits from more slack.\n";
  return 0;
}
