// Extension study (the paper's Section 7 future work): does a carbon-aware
// *mapping* pass help on top of carbon-aware *scheduling*? Three pipelines
// are compared on the same instances:
//   1. HEFT mapping      + ASAP          (the paper's baseline)
//   2. HEFT mapping      + pressWR-LS    (the paper's best pipeline)
//   3. GreenHEFT mapping + pressWR-LS    (the envisioned two-pass approach)
// Finding (see EXPERIMENTS.md): with the naive convex-combination scoring
// (alpha = 0.5), pipeline (3) does NOT beat (2) — biasing the mapping
// toward frugal processors stretches the makespan into darker tail
// intervals and costs more than it saves. This quantifies why the paper
// flags the carbon-aware HEFT extension as an open problem rather than a
// straightforward add-on; use --tasks/--seed and the alpha knob in
// GreenHeftOptions to explore the trade-off.

#include "bench_common.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "heft/green_heft.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const VariantSpec variant = VariantSpec::parse("pressWR-LS");

  std::vector<double> ratioHeft, ratioGreen;
  std::vector<double> perScenarioHeft[4], perScenarioGreen[4];

  for (const WorkflowFamily family :
       {WorkflowFamily::Atacseq, WorkflowFamily::Eager}) {
    for (const InstanceSpec& spec :
         fullGrid(family, cfg.tasks, cfg.clusters.front(), cfg.baseSeed,
                  cfg.numIntervals)) {
      // Pipeline 1+2: plain HEFT mapping (the standard Instance build).
      const Instance inst = buildInstance(spec);
      const Cost asap =
          evaluateCost(inst.gc, inst.profile, scheduleAsap(inst.gc));
      const Cost heftCost = evaluateCost(
          inst.gc, inst.profile,
          runVariant(inst.gc, inst.profile, inst.deadline, variant));

      // Pipeline 3: GreenHEFT mapping on the same workflow and profile
      // band, then the same variant.
      GreenHeftOptions gh;
      gh.alpha = 0.5;
      const HeftResult mapped =
          runGreenHeft(inst.graph, inst.platform, inst.profile, gh);
      LinkPowerOptions lp;
      lp.seed = spec.seed ^ 0x11CC77EEULL;
      const EnhancedGraph gc2 = EnhancedGraph::build(
          inst.graph, inst.platform, mapped.mapping, lp, &mapped.startTimes);
      const Time d2 = asapMakespan(gc2);
      // Keep the instance's absolute deadline when feasible so both
      // pipelines optimise against the same horizon; GreenHEFT may have a
      // longer makespan, in which case its own D bounds the deadline.
      const Time deadline2 = std::max(inst.deadline, d2);
      PowerProfile profile2 = inst.profile;
      profile2.extendTo(deadline2, inst.profile.intervals().back().green);
      const Cost greenCost = evaluateCost(
          gc2, profile2, runVariant(gc2, profile2, deadline2, variant));

      if (asap == 0) continue;
      const auto scenarioIdx = static_cast<std::size_t>(spec.scenario);
      ratioHeft.push_back(static_cast<double>(heftCost) /
                          static_cast<double>(asap));
      ratioGreen.push_back(static_cast<double>(greenCost) /
                           static_cast<double>(asap));
      perScenarioHeft[scenarioIdx].push_back(ratioHeft.back());
      perScenarioGreen[scenarioIdx].push_back(ratioGreen.back());
    }
  }

  printHeading(std::cout, "Extension — two-pass carbon-aware HEFT "
                          "(Section 7 future work)");
  TextTable table({"pipeline", "median ratio vs ASAP"});
  table.addRow({"HEFT + pressWR-LS", formatFixed(medianOf(ratioHeft), 3)});
  table.addRow(
      {"GreenHEFT + pressWR-LS", formatFixed(medianOf(ratioGreen), 3)});
  table.print(std::cout);

  TextTable byScenario({"scenario", "HEFT+LS", "GreenHEFT+LS"});
  const char* names[] = {"S1", "S2", "S3", "S4"};
  for (std::size_t sIdx = 0; sIdx < 4; ++sIdx) {
    if (perScenarioHeft[sIdx].empty()) continue;
    byScenario.addRow({names[sIdx],
                       formatFixed(medianOf(perScenarioHeft[sIdx]), 3),
                       formatFixed(medianOf(perScenarioGreen[sIdx]), 3)});
  }
  byScenario.print(std::cout);
  std::cout << "\nFinding: the naive two-pass pipeline does not beat "
               "HEFT+CaWoSched here — the carbon-biased mapping trades "
               "makespan for local greenness and loses it back at the "
               "horizon's dark tail. The paper's future-work problem is "
               "genuinely open.\n";
  return 0;
}
