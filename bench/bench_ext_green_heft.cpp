// Extension study (the paper's Section 7 future work): does a carbon-aware
// *mapping* pass help on top of carbon-aware *scheduling*? Three pipelines
// are compared on the same instances:
//   1. HEFT mapping      + ASAP          (the paper's baseline)
//   2. HEFT mapping      + pressWR-LS    (the paper's best pipeline)
//   3. GreenHEFT mapping + pressWR-LS    (the envisioned two-pass approach)
// Finding (see EXPERIMENTS.md): with the naive convex-combination scoring
// (alpha = 0.5), pipeline (3) does NOT beat (2) — biasing the mapping
// toward frugal processors stretches the makespan into darker tail
// intervals and costs more than it saves. This quantifies why the paper
// flags the carbon-aware HEFT extension as an open problem rather than a
// straightforward add-on; use --tasks/--seed and the "greenheft[alpha]"
// bracket parameter to explore the trade-off.
//
// All three pipelines run through the unified solver registry: "ASAP" and
// "pressWR-LS" on the fixed HEFT mapping, and the re-mapping "greenheft"
// solver (which keeps the instance's absolute deadline when feasible and
// extends the profile band over its own, possibly longer, horizon).

#include "bench_common.hpp"

#include <algorithm>

#include "util/require.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const SolverRegistry& registry = SolverRegistry::global();

  // The scenario axis honours --scenarios like every other bench:
  // "all" is the paper's S1–S4 grid, any comma list of registered
  // profile specs works (the per-scenario table gets one row per spec).
  const std::vector<std::string> scenarioAxis =
      cfg.scenarios == "all" ? paperScenarioNames()
                             : splitSpecList(cfg.scenarios);

  std::vector<double> ratioHeft, ratioGreen;
  std::vector<std::vector<double>> perScenarioHeft(scenarioAxis.size()),
      perScenarioGreen(scenarioAxis.size());

  for (const WorkflowFamily family :
       {WorkflowFamily::Atacseq, WorkflowFamily::Eager}) {
    // The paper's 16-profile grid (fullGrid), generalised to the
    // configured scenario axis.
    std::vector<InstanceSpec> grid;
    for (const std::string& scenario : scenarioAxis) {
      for (const double factor : {1.0, 1.5, 2.0, 3.0}) {
        InstanceSpec spec;
        spec.family = family;
        spec.targetTasks = cfg.tasks;
        spec.nodesPerType = cfg.clusters.front();
        spec.scenario = scenario;
        spec.deadlineFactor = factor;
        spec.numIntervals = cfg.numIntervals;
        spec.seed = cfg.baseSeed;
        grid.push_back(spec);
      }
    }
    for (const InstanceSpec& spec : grid) {
      const Instance inst = buildInstance(spec);

      SolveRequest request;
      request.gc = &inst.gc;
      request.profile = &inst.profile;
      request.deadline = inst.deadline;
      request.graph = &inst.graph;
      request.platform = &inst.platform;
      request.options.setDouble("alpha", 0.5);
      request.options.set("variant", "pressWR-LS");
      request.options.setInt(
          "link-seed",
          static_cast<std::int64_t>(spec.seed ^ 0x11CC77EEULL));

      // Pipelines 1+2: fixed HEFT mapping (the standard Instance build).
      const Cost asap = registry.create("ASAP")->solve(request).cost;
      const Cost heftCost =
          registry.create("pressWR-LS")->solve(request).cost;

      // Pipeline 3: carbon-aware re-mapping, then the same variant.
      const Cost greenCost =
          registry.create("greenheft")->solve(request).cost;

      if (asap == 0) continue;
      const auto scenarioIdx = static_cast<std::size_t>(
          std::find(scenarioAxis.begin(), scenarioAxis.end(),
                    spec.scenario) -
          scenarioAxis.begin());
      CAWO_ASSERT(scenarioIdx < scenarioAxis.size(),
                  "instance scenario \"" + spec.scenario +
                      "\" missing from the configured axis");
      ratioHeft.push_back(static_cast<double>(heftCost) /
                          static_cast<double>(asap));
      ratioGreen.push_back(static_cast<double>(greenCost) /
                           static_cast<double>(asap));
      perScenarioHeft[scenarioIdx].push_back(ratioHeft.back());
      perScenarioGreen[scenarioIdx].push_back(ratioGreen.back());
    }
  }

  printHeading(std::cout, "Extension — two-pass carbon-aware HEFT "
                          "(Section 7 future work)");
  TextTable table({"pipeline", "median ratio vs ASAP"});
  table.addRow({"HEFT + pressWR-LS", formatFixed(medianOf(ratioHeft), 3)});
  table.addRow(
      {"GreenHEFT + pressWR-LS", formatFixed(medianOf(ratioGreen), 3)});
  table.print(std::cout);

  TextTable byScenario({"scenario", "HEFT+LS", "GreenHEFT+LS"});
  for (std::size_t sIdx = 0; sIdx < scenarioAxis.size(); ++sIdx) {
    if (perScenarioHeft[sIdx].empty()) continue;
    byScenario.addRow({scenarioAxis[sIdx],
                       formatFixed(medianOf(perScenarioHeft[sIdx]), 3),
                       formatFixed(medianOf(perScenarioGreen[sIdx]), 3)});
  }
  byScenario.print(std::cout);
  std::cout << "\nFinding: the naive two-pass pipeline does not beat "
               "HEFT+CaWoSched here — the carbon-biased mapping trades "
               "makespan for local greenness and loses it back at the "
               "horizon's dark tail. The paper's future-work problem is "
               "genuinely open.\n";
  return 0;
}
