// Figure 6 — boxplots of the cost ratio vs ASAP per algorithm variant,
// outliers listed separately. Expected shape (paper): boxes mostly between
// ≈ 0.25 and ≈ 0.9 with medians around 0.6; a few outliers above 1.0 where
// ASAP happens to be optimal (profiles with green power at the start).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);
  const CostMatrix m = toCostMatrix(results);

  printHeading(std::cout, "Figure 6 — boxplot of cost ratios vs ASAP");
  TextTable table({"algorithm", "min", "q1", "median", "q3", "max",
                   "#outliers", "worst outlier"});
  for (std::size_t a = 1; a < m.numAlgorithms(); ++a) {
    const auto ratios = ratiosVsBaseline(m, 0, a);
    if (ratios.empty()) continue;
    const BoxStats s = boxStats(ratios);
    double worstOutlier = 0.0;
    for (const double o : s.outliers) worstOutlier = std::max(worstOutlier, o);
    table.addRow({m.algorithms[a], formatFixed(s.min, 3),
                  formatFixed(s.q1, 3), formatFixed(s.median, 3),
                  formatFixed(s.q3, 3), formatFixed(s.max, 3),
                  std::to_string(s.outliers.size()),
                  s.outliers.empty() ? "-" : formatFixed(worstOutlier, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: most mass between 0.25 and 0.9; medians "
               "near 0.6; occasional >1.0 outliers where ASAP is already "
               "optimal.\n";
  return 0;
}
