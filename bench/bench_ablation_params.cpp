// Ablation study of the two tuning parameters the paper fixes globally:
// the refinement block size k (= 3 in the paper, Section 5.2) and the
// local-search radius µ (= 10, Section 5.3). For each parameter value the
// median cost ratio vs ASAP of the strongest variant (pressWR-LS) and its
// median runtime are reported. Expected shape: k beyond 3 yields little
// extra quality for more subdivision work; quality improves with µ and
// saturates, while runtime grows.

#include "bench_common.hpp"

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  BenchConfig cfg = parseBenchConfig(argc, argv);
  // A lighter grid: one family per structural archetype, one cluster.
  std::vector<InstanceSpec> specs;
  for (const WorkflowFamily family :
       {WorkflowFamily::Atacseq, WorkflowFamily::Eager}) {
    for (InstanceSpec spec :
         fullGrid(family, cfg.tasks, cfg.clusters.front(), cfg.baseSeed,
                  cfg.numIntervals))
      specs.push_back(spec);
  }

  const VariantSpec variant = VariantSpec::parse("pressWR-LS");

  auto evaluate = [&](const CaWoParams& params, std::vector<double>& ratios,
                      std::vector<double>& times) {
    for (const InstanceSpec& spec : specs) {
      const Instance inst = buildInstance(spec);
      const Cost asap =
          evaluateCost(inst.gc, inst.profile, scheduleAsap(inst.gc));
      WallTimer timer;
      const Schedule s =
          runVariant(inst.gc, inst.profile, inst.deadline, variant, params);
      times.push_back(timer.elapsedMs());
      const Cost own = evaluateCost(inst.gc, inst.profile, s);
      if (asap == 0) {
        if (own == 0) ratios.push_back(1.0);
      } else {
        ratios.push_back(static_cast<double>(own) /
                         static_cast<double>(asap));
      }
    }
  };

  printHeading(std::cout,
               "Ablation — refinement block size k (pressWR-LS, µ=10)");
  {
    TextTable table({"k", "median ratio vs ASAP", "median ms"});
    for (const int k : {1, 2, 3, 4, 5}) {
      CaWoParams params;
      params.blockSize = k;
      std::vector<double> ratios, times;
      evaluate(params, ratios, times);
      table.addRow({std::to_string(k), formatFixed(medianOf(ratios), 3),
                    formatFixed(medianOf(times), 2)});
    }
    table.print(std::cout);
  }

  printHeading(std::cout,
               "Ablation — local-search radius µ (pressWR-LS, k=3)");
  {
    TextTable table({"mu", "median ratio vs ASAP", "median ms"});
    for (const Time mu : {0, 2, 5, 10, 20, 40}) {
      CaWoParams params;
      params.lsRadius = mu;
      std::vector<double> ratios, times;
      evaluate(params, ratios, times);
      table.addRow({std::to_string(mu), formatFixed(medianOf(ratios), 3),
                    formatFixed(medianOf(times), 2)});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: diminishing returns beyond k=3; quality "
               "saturates in µ while runtime keeps growing — supporting the "
               "paper's k=3, µ=10 defaults.\n";
  return 0;
}
