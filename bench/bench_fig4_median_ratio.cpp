// Figure 4 — the median over all instances of the cost ratio
// (variant carbon cost) / (ASAP carbon cost). Expected shape (paper): all
// variants land close together around ≈ 0.6 (i.e. ~40 % carbon savings);
// pressure-based variants slightly ahead, pressWR-LS best at ≈ 0.58.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);
  const CostMatrix m = toCostMatrix(results);

  printHeading(std::cout,
               "Figure 4 — median cost ratio vs ASAP (lower is better)");
  printMedianRatios(std::cout, m, "");
  std::cout << "\nExpected shape: medians clustered around ~0.6; press "
               "variants a touch lower than slack variants.\n";
  return 0;
}
