// Figure 13 — the evolution of the running time as the deadline tolerance
// grows. Expected shape (paper): runtime is driven by graph size and
// increases only slightly with the deadline — the heuristics reason over
// graph structure, not over the whole time horizon.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);
  const auto names = algorithmNames();

  printHeading(std::cout, "Figure 13 — median running time (ms) by deadline "
                          "factor");
  std::vector<std::string> headers{"algorithm"};
  for (const double f : {1.0, 1.5, 2.0, 3.0})
    headers.push_back(formatFixed(f, 1) + "·D");
  TextTable table(headers);

  for (std::size_t a = 0; a < names.size(); ++a) {
    std::vector<std::string> row{names[a]};
    for (const double factor : {1.0, 1.5, 2.0, 3.0}) {
      std::vector<double> times;
      for (const InstanceResult& r : results)
        if (r.spec.deadlineFactor == factor)
          times.push_back(r.runs[a].millis);
      row.push_back(times.empty() ? "-" : formatFixed(medianOf(times), 2));
    }
    table.addRow(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: mild growth with the deadline factor — "
               "far less than proportional to the horizon length.\n";
  return 0;
}
