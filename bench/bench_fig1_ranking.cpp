// Figure 1 — rank distribution: for which share of the instances each
// algorithm variant was ranked first, second, ... (competition ranking,
// ties share a rank). Expected shape (paper): every CaWoSched variant is
// ranked first far more often than ASAP; ASAP is the worst algorithm on
// ~84 % of the instances; pressWR-LS leads by a small margin.
//
// The solver set comes from the registry: the default --algos=suite is
// the paper's figure set (ASAP + 16 variants); pass e.g.
// --algos=ASAP,press*,greenheft to rank any registered selection. The
// figure is a thin campaign definition: --out=results.json dumps the raw
// (instance, solver) records the table is computed from.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const CampaignOutcome outcome =
      runBenchCampaign(benchCampaign(cfg, "fig1-ranking"), cfg);
  const CostMatrix m = toCostMatrix(outcome.results);
  const auto counts = rankDistribution(m);
  const auto total = static_cast<double>(m.numInstances());

  printHeading(std::cout, "Figure 1 — rank distribution over " +
                              std::to_string(m.numInstances()) +
                              " instances");
  TextTable table({"algorithm", "rank1 %", "rank2 %", "rank3 %", "rank4+ %",
                   "worst %"});
  const std::size_t A = m.numAlgorithms();
  for (std::size_t a = 0; a < A; ++a) {
    double r1 = 0, r2 = 0, r3 = 0, r4 = 0, worst = 0;
    for (std::size_t r = 0; r < A; ++r) {
      const double share = 100.0 * counts[a][r] / total;
      if (r == 0) r1 += share;
      else if (r == 1) r2 += share;
      else if (r == 2) r3 += share;
      else r4 += share;
      if (r == A - 1) worst += share;
    }
    // "worst" = share of instances on which no algorithm ranked below it.
    int worstCount = 0;
    for (std::size_t i = 0; i < m.numInstances(); ++i) {
      bool isWorst = true;
      for (std::size_t b = 0; b < A; ++b)
        if (m.costs[i][b] > m.costs[i][a]) isWorst = false;
      if (isWorst) ++worstCount;
    }
    table.addRow({m.algorithms[a], formatFixed(r1, 1), formatFixed(r2, 1),
                  formatFixed(r3, 1), formatFixed(r4, 1),
                  formatFixed(100.0 * worstCount / total, 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: all 16 variants rank first much more often "
               "than ASAP;\nASAP is worst on the large majority of "
               "instances (~84 % in the paper).\n";
  return 0;
}
