// Table 2 — the influence of the local search: min / max / average of the
// cost ratio (with LS) / (without LS) for the four refined variants, on the
// atacseq and bacass subsets (as in the paper). Expected shape: ratios in
// [0, 1] with averages around ≈ 0.23–0.25 (LS roughly quadruples the
// savings of the initial greedy schedule), identical margins across the
// four variants.

#include "bench_common.hpp"

#include <algorithm>

#include "util/require.hpp"

#include "core/carbon_cost.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);

  // The paper uses all atacseq variants plus bacass for this study.
  std::vector<InstanceSpec> specs;
  for (const WorkflowFamily family :
       {WorkflowFamily::Atacseq, WorkflowFamily::Bacass}) {
    const int tasks = family == WorkflowFamily::Bacass
                          ? std::max(20, cfg.tasks / 3)
                          : cfg.tasks;
    for (const int cluster : cfg.clusters)
      for (int s = 0; s < cfg.seedsPerCell; ++s)
        for (InstanceSpec spec :
             fullGrid(family, tasks, cluster,
                      cfg.baseSeed + static_cast<std::uint64_t>(s) * 1000,
                      cfg.numIntervals))
          specs.push_back(spec);
  }
  std::cout << "running " << specs.size() << " instances ...\n";
  const auto results = runSuite(specs);
  const CostMatrix m = toCostMatrix(results);

  auto indexOf = [&](const std::string& name) {
    for (std::size_t a = 0; a < m.numAlgorithms(); ++a)
      if (m.algorithms[a] == name) return a;
    throw PreconditionError("algorithm not found: " + name);
  };

  printHeading(std::cout,
               "Table 2 — cost ratio with-LS / without-LS (refined variants)");
  TextTable table({"variant", "min", "max", "avg"});
  for (const std::string base : {"slackR", "slackWR", "pressR", "pressWR"}) {
    const std::size_t withoutLs = indexOf(base);
    const std::size_t withLs = indexOf(base + "-LS");
    std::vector<double> ratios;
    for (const auto& row : m.costs) {
      const Cost noLs = row[withoutLs];
      const Cost ls = row[withLs];
      if (noLs == 0) {
        if (ls == 0) ratios.push_back(1.0);
        continue; // undefined ratio — greedy already optimal at 0
      }
      ratios.push_back(static_cast<double>(ls) / static_cast<double>(noLs));
    }
    const double minR = *std::min_element(ratios.begin(), ratios.end());
    const double maxR = *std::max_element(ratios.begin(), ratios.end());
    table.addRow({base, formatFixed(minR, 2), formatFixed(maxR, 2),
                  formatFixed(meanOf(ratios), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): min 0, max 1.0, averages around "
               "0.23-0.25 — the hill climber never worsens a schedule and "
               "often reaches cost 0.\n";
  return 0;
}
