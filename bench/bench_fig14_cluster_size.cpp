// Figure 14 (and appendix Figure 17) — the influence of the cluster size:
// median cost ratios vs ASAP and the τ=1 performance-profile point, split
// by cluster. Expected shape (paper): the cluster size has no significant
// influence on the cost ratio; for the larger cluster the profile curves
// move closer together.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  using namespace cawo::bench;

  const BenchConfig cfg = parseBenchConfig(argc, argv);
  const auto results = runBenchGrid(cfg);

  for (const int cluster : cfg.clusters) {
    const auto subset = filterResults(results, [&](const InstanceSpec& s) {
      return s.nodesPerType == cluster;
    });
    if (subset.empty()) continue;
    const CostMatrix m = toCostMatrix(subset);

    printHeading(std::cout, "Figure 14 — median cost ratio vs ASAP, cluster "
                            "with " +
                                std::to_string(cluster) + " node(s)/type (" +
                                std::to_string(subset.size()) +
                                " instances)");
    printMedianRatios(std::cout, m, "");

    const auto profile = performanceProfile(m, {1.0});
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t a = 0; a < m.numAlgorithms(); ++a) {
      labels.push_back(m.algorithms[a]);
      values.push_back(profile[a][0]);
    }
    printBarChart(std::cout,
                  "Figure 17 — share of instances at the best cost (tau=1)",
                  labels, values);
  }
  std::cout << "\nExpected shape: ratios similar across cluster sizes; "
               "profile points closer together on the larger cluster.\n";
  return 0;
}
