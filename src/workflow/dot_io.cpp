#include "workflow/dot_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

std::string quoteName(const std::string& name) {
  std::string out = "\"";
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Parse `key=value, key=value` attribute lists inside [...].
std::map<std::string, std::string> parseAttrs(std::string_view text) {
  std::map<std::string, std::string> attrs;
  for (const std::string& part : split(text, ',')) {
    const std::string_view kv = trim(part);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    CAWO_REQUIRE(eq != std::string_view::npos,
                 "malformed attribute: " + std::string(kv));
    std::string key{trim(kv.substr(0, eq))};
    std::string value{trim(kv.substr(eq + 1))};
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
      value = value.substr(1, value.size() - 2);
    attrs[key] = value;
  }
  return attrs;
}

/// Read one identifier (quoted or bare) starting at `pos`; advances pos.
std::string readIdentifier(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
    ++pos;
  CAWO_REQUIRE(pos < s.size(), "unexpected end of statement");
  std::string id;
  if (s[pos] == '"') {
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\' && pos + 1 < s.size()) ++pos;
      id += s[pos++];
    }
    CAWO_REQUIRE(pos < s.size(), "unterminated quoted identifier");
    ++pos; // closing quote
  } else {
    while (pos < s.size() && !std::isspace(static_cast<unsigned char>(s[pos])) &&
           s[pos] != '[' && s[pos] != '-' && s[pos] != ';')
      id += s[pos++];
  }
  CAWO_REQUIRE(!id.empty(), "empty identifier in DOT statement");
  return id;
}

} // namespace

void writeDot(std::ostream& out, const TaskGraph& graph,
              const std::string& graphName) {
  out << "digraph " << quoteName(graphName) << " {\n";
  for (TaskId v = 0; v < graph.numTasks(); ++v) {
    out << "  " << quoteName(graph.name(v)) << " [work=" << graph.work(v)
        << "];\n";
  }
  for (const auto& e : graph.edges()) {
    out << "  " << quoteName(graph.name(e.src)) << " -> "
        << quoteName(graph.name(e.dst)) << " [data=" << e.data << "];\n";
  }
  out << "}\n";
}

std::string toDotString(const TaskGraph& graph, const std::string& graphName) {
  std::ostringstream os;
  writeDot(os, graph, graphName);
  return os.str();
}

TaskGraph readDot(std::istream& in) {
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return readDotString(text);
}

TaskGraph readDotString(const std::string& text) {
  TaskGraph graph;
  std::map<std::string, TaskId> ids;
  auto getNode = [&](const std::string& name, Work work,
                     bool hasWork) -> TaskId {
    const auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const TaskId id = graph.addTask(name, hasWork ? work : 1);
    ids.emplace(name, id);
    return id;
  };

  // Strip comments, then find the graph body.
  std::string clean;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const auto slashes = line.find("//");
    if (slashes != std::string::npos) line = line.substr(0, slashes);
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    clean += line;
    clean += '\n';
  }
  const auto open = clean.find('{');
  const auto close = clean.rfind('}');
  CAWO_REQUIRE(open != std::string::npos && close != std::string::npos &&
                   open < close,
               "DOT document has no graph body");
  const std::string body = clean.substr(open + 1, close - open - 1);

  // Statements are separated by ';' or newlines.
  std::string statement;
  auto flush = [&]() {
    const std::string s{trim(statement)};
    statement.clear();
    if (s.empty()) return;

    std::size_t pos = 0;
    const std::string first = readIdentifier(s, pos);
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;

    if (pos + 1 < s.size() && s[pos] == '-' && s[pos + 1] == '>') {
      pos += 2;
      const std::string second = readIdentifier(s, pos);
      Data data = 0;
      const auto lb = s.find('[', pos);
      if (lb != std::string::npos) {
        const auto rb = s.find(']', lb);
        CAWO_REQUIRE(rb != std::string::npos, "unterminated attribute list");
        const auto attrs = parseAttrs(s.substr(lb + 1, rb - lb - 1));
        const auto it = attrs.find("data");
        if (it != attrs.end()) data = std::stoll(it->second);
      }
      const TaskId a = getNode(first, 1, false);
      const TaskId b = getNode(second, 1, false);
      graph.addEdge(a, b, data);
      return;
    }

    // Node statement.
    if (first == "graph" || first == "node" || first == "edge" ||
        first == "rankdir")
      return; // global attribute statements — ignored
    Work work = 1;
    bool hasWork = false;
    const auto lb = s.find('[', pos);
    if (lb != std::string::npos) {
      const auto rb = s.find(']', lb);
      CAWO_REQUIRE(rb != std::string::npos, "unterminated attribute list");
      const auto attrs = parseAttrs(s.substr(lb + 1, rb - lb - 1));
      const auto it = attrs.find("work");
      if (it != attrs.end()) {
        work = std::stoll(it->second);
        hasWork = true;
      }
    }
    getNode(first, work, hasWork);
  };

  for (const char c : body) {
    if (c == ';' || c == '\n') {
      flush();
    } else {
      statement += c;
    }
  }
  flush();
  return graph;
}

void writeDotFile(const std::string& path, const TaskGraph& graph) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open DOT output file: " + path);
  writeDot(out, graph);
}

TaskGraph readDotFile(const std::string& path) {
  std::ifstream in(path);
  CAWO_REQUIRE(in.good(), "cannot open DOT input file: " + path);
  return readDot(in);
}

} // namespace cawo
