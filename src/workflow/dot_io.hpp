#pragma once

#include <iosfwd>
#include <string>

#include "core/task_graph.hpp"

/// \file dot_io.hpp
/// Reading and writing workflow DAGs in (a subset of) Graphviz DOT format.
///
/// The paper converts Nextflow pipeline definitions to `.dot` files and
/// strips Nextflow-internal pseudo tasks before scheduling. This module
/// provides the same interchange path: `writeDot` emits a canonical DOT
/// document with `work` vertex attributes and `data` edge attributes, and
/// `readDot` parses that subset back (node statements, edge statements,
/// quoted identifiers, `//` and `#` comments). Nodes first appearing in an
/// edge statement are created with a default work of 1, mirroring
/// pseudo-task handling.

namespace cawo {

void writeDot(std::ostream& out, const TaskGraph& graph,
              const std::string& graphName = "workflow");

std::string toDotString(const TaskGraph& graph,
                        const std::string& graphName = "workflow");

/// Parse a DOT document; throws PreconditionError on malformed input.
TaskGraph readDot(std::istream& in);

TaskGraph readDotString(const std::string& text);

/// File helpers; throw on I/O errors.
void writeDotFile(const std::string& path, const TaskGraph& graph);
TaskGraph readDotFile(const std::string& path);

} // namespace cawo
