#pragma once

#include <cstdint>
#include <string>

#include "core/task_graph.hpp"
#include "util/types.hpp"

/// \file generators.hpp
/// Synthetic workflow generators modelled on the nf-core pipelines used in
/// the paper's evaluation (atacseq, bacass, eager, methylseq) plus generic
/// DAG families for tests.
///
/// The paper obtains its instances by taking a real Nextflow trace as a
/// model graph and scaling it up WFGen-style; the pipelines are per-sample
/// analysis chains with occasional fan-out (per replicate / chromosome),
/// global preparation sources and global merge/QC sinks. These generators
/// replicate that structure directly: a target task count is reached by
/// increasing the number of samples, per-sample subgraphs are stamped out
/// from a family-specific template, and vertex/edge weights follow normal
/// distributions with vertex weights dominating edge weights (Section 6.1).

namespace cawo {

enum class WorkflowFamily { Atacseq, Bacass, Eager, Methylseq };

const char* familyName(WorkflowFamily f);

/// Inverse of `familyName` ("atacseq" → WorkflowFamily::Atacseq, …);
/// throws PreconditionError for unknown names, listing the alternatives.
WorkflowFamily familyFromName(const std::string& name);

struct WorkflowGenOptions {
  int targetTasks = 200;        ///< approximate |V| of the generated DAG
  std::uint64_t seed = 1;
  double vertexWorkMean = 160.0;
  double vertexWorkStd = 40.0;
  double edgeDataMean = 40.0;   ///< vertex weights dominate edge weights
  double edgeDataStd = 15.0;
};

/// Generate a workflow of the given family with roughly `targetTasks`
/// tasks (never fewer than the family's minimal template).
TaskGraph generateWorkflow(WorkflowFamily family,
                           const WorkflowGenOptions& opts);

/// --- generic families (tests / examples) ---

/// A simple chain v_0 → v_1 → ... → v_{n-1}.
TaskGraph genChain(int n, const WorkflowGenOptions& opts);

/// A fork-join: source → `width` parallel branches of `depth` tasks → sink.
TaskGraph genForkJoin(int width, int depth, const WorkflowGenOptions& opts);

/// `n` independent tasks (no edges).
TaskGraph genIndependent(int n, const WorkflowGenOptions& opts);

/// A layered random DAG: `layers` layers of roughly equal size; each task
/// draws 1..maxFanIn predecessors from the previous layer.
TaskGraph genLayeredRandom(int n, int layers, int maxFanIn,
                           const WorkflowGenOptions& opts);

/// An Erdős–Rényi-style random DAG: edge (i, j), i < j in a random
/// topological order, present with probability `edgeProb`.
TaskGraph genRandomDag(int n, double edgeProb, const WorkflowGenOptions& opts);

} // namespace cawo
