#include "workflow/generators.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

const char* familyName(WorkflowFamily f) {
  switch (f) {
  case WorkflowFamily::Atacseq: return "atacseq";
  case WorkflowFamily::Bacass: return "bacass";
  case WorkflowFamily::Eager: return "eager";
  case WorkflowFamily::Methylseq: return "methylseq";
  }
  return "unknown";
}

WorkflowFamily familyFromName(const std::string& name) {
  for (const WorkflowFamily f :
       {WorkflowFamily::Atacseq, WorkflowFamily::Bacass, WorkflowFamily::Eager,
        WorkflowFamily::Methylseq}) {
    if (name == familyName(f)) return f;
  }
  CAWO_REQUIRE(false, "unknown workflow family \"" + name +
                          "\" (expected atacseq, bacass, eager or methylseq)");
  return WorkflowFamily::Atacseq; // unreachable
}

namespace {

/// Weight sampling shared by all generators. Stage multipliers let heavy
/// steps (alignment, assembly) dominate, as in real pipeline traces.
struct WeightSampler {
  Rng rng;
  const WorkflowGenOptions& opts;

  explicit WeightSampler(const WorkflowGenOptions& o)
      : rng(o.seed), opts(o) {}

  Work vertex(double multiplier = 1.0) {
    return rng.normalPositiveInt(opts.vertexWorkMean * multiplier,
                                 opts.vertexWorkStd * multiplier, 1);
  }

  Data edge(double multiplier = 1.0) {
    return rng.normalPositiveInt(opts.edgeDataMean * multiplier,
                                 opts.edgeDataStd * multiplier, 1);
  }
};

/// Helper collecting the common "stamp out per-sample subgraphs between a
/// shared source stage and shared sink stages" pattern of nf-core
/// pipelines.
class PipelineBuilder {
public:
  PipelineBuilder(TaskGraph& g, WeightSampler& w) : g_(g), w_(w) {}

  TaskId addTask(const std::string& name, double mult = 1.0) {
    return g_.addTask(name, w_.vertex(mult));
  }

  void link(TaskId a, TaskId b, double mult = 1.0) {
    g_.addEdge(a, b, w_.edge(mult));
  }

  /// A linear chain of stages; returns (first, last).
  std::pair<TaskId, TaskId> chain(const std::string& prefix,
                                  std::initializer_list<const char*> stages,
                                  double mult = 1.0) {
    TaskId first = kInvalidTask;
    TaskId prev = kInvalidTask;
    for (const char* stage : stages) {
      const TaskId t = addTask(prefix + "/" + stage, mult);
      if (prev != kInvalidTask) link(prev, t);
      if (first == kInvalidTask) first = t;
      prev = t;
    }
    return {first, prev};
  }

private:
  TaskGraph& g_;
  WeightSampler& w_;
};

} // namespace

TaskGraph generateWorkflow(WorkflowFamily family,
                           const WorkflowGenOptions& opts) {
  CAWO_REQUIRE(opts.targetTasks >= 1, "target task count must be positive");
  WeightSampler w(opts);
  TaskGraph g;
  PipelineBuilder b(g, w);

  switch (family) {
  case WorkflowFamily::Atacseq: {
    // Per sample: FastQC + trim → align (heavy) → filter → dedup →
    // peak-call; genome prep fans out to all aligns; consensus peaks and
    // MultiQC merge everything.
    const int perSample = 7;
    const int overhead = 3; // genome prep, consensus, multiqc
    const int samples = std::max(1, (opts.targetTasks - overhead) / perSample);

    const TaskId prep = b.addTask("prepare_genome", 2.0);
    const TaskId consensus = b.addTask("consensus_peaks", 1.5);
    const TaskId multiqc = b.addTask("multiqc", 0.5);
    b.link(consensus, multiqc);

    for (int s = 0; s < samples; ++s) {
      const std::string id = "sample" + std::to_string(s);
      const TaskId fastqc = b.addTask(id + "/fastqc", 0.5);
      const TaskId trim = b.addTask(id + "/trim_galore");
      const TaskId align = b.addTask(id + "/bowtie2_align", 3.0);
      const TaskId filter = b.addTask(id + "/filter_bam");
      const TaskId dedup = b.addTask(id + "/picard_dedup");
      const TaskId peaks = b.addTask(id + "/macs2_callpeak", 1.5);
      const TaskId qc = b.addTask(id + "/ataqv_qc", 0.5);
      b.link(fastqc, trim);
      b.link(trim, align, 2.0);
      b.link(prep, align, 2.0);
      b.link(align, filter, 2.0);
      b.link(filter, dedup);
      b.link(dedup, peaks);
      b.link(dedup, qc);
      b.link(peaks, consensus);
      b.link(qc, multiqc, 0.5);
    }
    break;
  }
  case WorkflowFamily::Bacass: {
    // Bacterial assembly: per sample QC → trim → assemble (very heavy) →
    // polish → annotate; one global summary. The real pipeline is small —
    // the paper only uses the real-world size for bacass.
    const int perSample = 6;
    const int samples = std::max(1, (opts.targetTasks - 1) / perSample);
    const TaskId summary = b.addTask("summary", 0.5);
    for (int s = 0; s < samples; ++s) {
      const std::string id = "isolate" + std::to_string(s);
      const auto [first, last] = b.chain(
          id, {"fastqc", "trim", "unicycler_assembly", "polish", "prokka"},
          1.0);
      (void)first;
      const TaskId depth = b.addTask(id + "/coverage_check", 0.5);
      b.link(last, depth);
      b.link(depth, summary, 0.5);
    }
    break;
  }
  case WorkflowFamily::Eager: {
    // Ancient-DNA pipeline: two alternative processing routes per sample
    // (it branches after adapter removal), damage analysis, genotyping,
    // then global report.
    const int perSample = 9;
    const int overhead = 2;
    const int samples = std::max(1, (opts.targetTasks - overhead) / perSample);
    const TaskId ref = b.addTask("reference_index", 2.0);
    const TaskId report = b.addTask("report", 0.5);
    for (int s = 0; s < samples; ++s) {
      const std::string id = "lib" + std::to_string(s);
      const TaskId convert = b.addTask(id + "/fastq_convert", 0.5);
      const TaskId adapter = b.addTask(id + "/adapter_removal");
      const TaskId mapA = b.addTask(id + "/bwa_aln", 3.0);
      const TaskId mapB = b.addTask(id + "/circularmapper", 2.5);
      const TaskId merge = b.addTask(id + "/library_merge");
      const TaskId dedup = b.addTask(id + "/dedup");
      const TaskId damage = b.addTask(id + "/damageprofiler", 0.8);
      const TaskId genotype = b.addTask(id + "/genotyping", 1.5);
      const TaskId sexdet = b.addTask(id + "/sex_determination", 0.5);
      b.link(convert, adapter);
      b.link(adapter, mapA, 2.0);
      b.link(adapter, mapB, 2.0);
      b.link(ref, mapA, 1.5);
      b.link(ref, mapB, 1.5);
      b.link(mapA, merge);
      b.link(mapB, merge);
      b.link(merge, dedup);
      b.link(dedup, damage);
      b.link(dedup, genotype);
      b.link(dedup, sexdet, 0.5);
      b.link(damage, report, 0.5);
      b.link(genotype, report, 0.5);
      b.link(sexdet, report, 0.5);
    }
    break;
  }
  case WorkflowFamily::Methylseq: {
    // Bisulfite sequencing: mostly independent per-sample chains with a
    // single global QC sink — the least cross-sample coupling of the four.
    const int perSample = 7;
    const int overhead = 2;
    const int samples = std::max(1, (opts.targetTasks - overhead) / perSample);
    const TaskId prep = b.addTask("bismark_genome_prep", 2.5);
    const TaskId multiqc = b.addTask("multiqc", 0.5);
    for (int s = 0; s < samples; ++s) {
      const std::string id = "sample" + std::to_string(s);
      const TaskId fastqc = b.addTask(id + "/fastqc", 0.5);
      const TaskId trim = b.addTask(id + "/trim_galore");
      const TaskId align = b.addTask(id + "/bismark_align", 3.5);
      const TaskId dedup = b.addTask(id + "/deduplicate");
      const TaskId extract = b.addTask(id + "/methylation_extract", 1.5);
      const TaskId coverage = b.addTask(id + "/coverage2cytosine");
      const TaskId sampleReport = b.addTask(id + "/bismark_report", 0.5);
      b.link(fastqc, trim);
      b.link(trim, align, 2.0);
      b.link(prep, align, 2.0);
      b.link(align, dedup, 2.0);
      b.link(dedup, extract);
      b.link(extract, coverage);
      b.link(extract, sampleReport, 0.5);
      b.link(coverage, multiqc, 0.5);
      b.link(sampleReport, multiqc, 0.5);
    }
    break;
  }
  }
  return g;
}

TaskGraph genChain(int n, const WorkflowGenOptions& opts) {
  CAWO_REQUIRE(n >= 1, "chain needs at least one task");
  WeightSampler w(opts);
  TaskGraph g;
  TaskId prev = g.addTask("t0", w.vertex());
  for (int i = 1; i < n; ++i) {
    const TaskId t = g.addTask("t" + std::to_string(i), w.vertex());
    g.addEdge(prev, t, w.edge());
    prev = t;
  }
  return g;
}

TaskGraph genForkJoin(int width, int depth, const WorkflowGenOptions& opts) {
  CAWO_REQUIRE(width >= 1 && depth >= 1, "invalid fork-join shape");
  WeightSampler w(opts);
  TaskGraph g;
  const TaskId source = g.addTask("source", w.vertex());
  const TaskId sink = g.addTask("sink", w.vertex());
  for (int b = 0; b < width; ++b) {
    TaskId prev = source;
    for (int d = 0; d < depth; ++d) {
      const TaskId t = g.addTask(
          "b" + std::to_string(b) + "_d" + std::to_string(d), w.vertex());
      g.addEdge(prev, t, w.edge());
      prev = t;
    }
    g.addEdge(prev, sink, w.edge());
  }
  return g;
}

TaskGraph genIndependent(int n, const WorkflowGenOptions& opts) {
  CAWO_REQUIRE(n >= 1, "need at least one task");
  WeightSampler w(opts);
  TaskGraph g;
  for (int i = 0; i < n; ++i)
    g.addTask("t" + std::to_string(i), w.vertex());
  return g;
}

TaskGraph genLayeredRandom(int n, int layers, int maxFanIn,
                           const WorkflowGenOptions& opts) {
  CAWO_REQUIRE(n >= layers && layers >= 1, "need at least one task per layer");
  CAWO_REQUIRE(maxFanIn >= 1, "fan-in must be positive");
  WeightSampler w(opts);
  TaskGraph g;
  std::vector<std::vector<TaskId>> layer(static_cast<std::size_t>(layers));
  for (int i = 0; i < n; ++i) {
    const int l = i * layers / n;
    layer[static_cast<std::size_t>(l)].push_back(
        g.addTask("t" + std::to_string(i), w.vertex()));
  }
  for (int l = 1; l < layers; ++l) {
    const auto& prev = layer[static_cast<std::size_t>(l - 1)];
    for (const TaskId v : layer[static_cast<std::size_t>(l)]) {
      const int fanIn = static_cast<int>(
          w.rng.uniformInt(1, std::min<std::int64_t>(
                                  maxFanIn,
                                  static_cast<std::int64_t>(prev.size()))));
      // Sample distinct predecessors from the previous layer.
      std::vector<TaskId> pool = prev;
      for (int f = 0; f < fanIn; ++f) {
        const auto pick = static_cast<std::size_t>(
            w.rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
        g.addEdge(pool[pick], v, w.edge());
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  }
  return g;
}

TaskGraph genRandomDag(int n, double edgeProb,
                       const WorkflowGenOptions& opts) {
  CAWO_REQUIRE(n >= 1, "need at least one task");
  CAWO_REQUIRE(edgeProb >= 0.0 && edgeProb <= 1.0, "invalid edge probability");
  WeightSampler w(opts);
  TaskGraph g;
  for (int i = 0; i < n; ++i)
    g.addTask("t" + std::to_string(i), w.vertex());
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (w.rng.uniform01() < edgeProb)
        g.addEdge(static_cast<TaskId>(i), static_cast<TaskId>(j), w.edge());
  return g;
}

} // namespace cawo
