#pragma once

#include <vector>

#include "core/enhanced_graph.hpp"
#include "util/types.hpp"

/// \file scores.hpp
/// Task scores of Section 5.2 that determine the greedy processing order.
///
/// * slack    s(v) = LST(v) − EST(v)           — processed in non-decreasing
///   order (little flexibility first).
/// * pressure ρ(v) = ω(v) / (s(v) + ω(v)) ∈ [0,1] — processed in
///   non-increasing order (urgent, long tasks first).
///
/// The *weighted* variants additionally account for the power heterogeneity
/// of processors via  wf(i) = (P_idle^i + P_work^i) / max_j (P_idle^j +
/// P_work^j): pressure is multiplied by wf (costly processors first) and
/// slack by its reciprocal (costly processors get smaller weighted slack,
/// hence are scheduled earlier).

namespace cawo {

enum class BaseScore { Slack, Pressure };

struct ScoreOptions {
  BaseScore base = BaseScore::Pressure;
  bool weighted = false;
};

/// Raw (possibly weighted) score value per node.
std::vector<double> computeScores(const EnhancedGraph& gc,
                                  const std::vector<Time>& est,
                                  const std::vector<Time>& lst,
                                  const ScoreOptions& opts);

/// The greedy processing order induced by the scores: non-decreasing for
/// slack, non-increasing for pressure, ties broken by node id.
std::vector<TaskId> scoreOrder(const EnhancedGraph& gc,
                               const std::vector<Time>& est,
                               const std::vector<Time>& lst,
                               const ScoreOptions& opts);

} // namespace cawo
