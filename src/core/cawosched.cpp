#include "core/cawosched.hpp"

#include "core/solve_context.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace cawo {

std::string VariantSpec::name() const {
  std::string s = (base == BaseScore::Slack) ? "slack" : "press";
  if (weighted) s += "W";
  if (refined) s += "R";
  if (localSearch) s += "-LS";
  return s;
}

VariantSpec VariantSpec::parse(const std::string& name) {
  for (const VariantSpec& v : allVariants())
    if (v.name() == name) return v;
  throw PreconditionError("unknown CaWoSched variant: " + name);
}

std::vector<VariantSpec> allVariants() {
  std::vector<VariantSpec> out;
  for (const bool ls : {false, true}) {
    for (const BaseScore base : {BaseScore::Slack, BaseScore::Pressure}) {
      for (const bool refined : {false, true}) {
        for (const bool weighted : {false, true}) {
          // Order within a base: plain, W, R, WR (paper naming order).
          out.push_back(VariantSpec{base, weighted, refined, ls});
        }
      }
    }
  }
  return out;
}

std::vector<VariantSpec> greedyOnlyVariants() {
  std::vector<VariantSpec> out;
  for (const VariantSpec& v : allVariants())
    if (!v.localSearch) out.push_back(v);
  return out;
}

Schedule runVariant(const EnhancedGraph& gc, const PowerProfile& profile,
                    Time deadline, const VariantSpec& spec,
                    const CaWoParams& params) {
  const SolveContext ctx(gc, profile, deadline);
  return runVariant(ctx, spec, params);
}

Schedule runVariant(const SolveContext& ctx, const VariantSpec& spec,
                    const CaWoParams& params, VariantRunStats* stats) {
  obs::TraceScope span("solve.variant");
  if (span.recording()) span.arg("variant", spec.name());

  GreedyOptions gopts;
  gopts.base = spec.base;
  gopts.weighted = spec.weighted;
  gopts.refined = spec.refined;
  gopts.blockSize = params.blockSize;

  WallTimer timer;
  Schedule s = scheduleGreedy(ctx, gopts);
  if (stats) stats->greedyMs = timer.elapsedMs();

  if (spec.localSearch) {
    LocalSearchOptions lopts;
    lopts.radius = params.lsRadius;
    lopts.threads = params.threads;
    lopts.restarts = params.lsRestarts;
    lopts.seed = params.lsSeed;
    timer.reset();
    const LocalSearchStats ls =
        localSearchRestarts(ctx.gc(), ctx.profile(), ctx.deadline(), s, lopts);
    if (stats) {
      stats->lsMs = timer.elapsedMs();
      stats->lsRan = true;
      stats->ls = ls;
    }
  }
  return s;
}

std::vector<Schedule> runVariants(const SolveContext& ctx,
                                  const std::vector<VariantSpec>& specs,
                                  const CaWoParams& params, unsigned threads,
                                  std::vector<VariantRunStats>* stats) {
  if (stats) stats->assign(specs.size(), VariantRunStats{});

  // Prime every shared artifact the fan-out will read — after this the
  // frozen context serves cache hits only.
  {
    obs::TraceScope prime("context.prime");
    (void)ctx.initialEst();
    (void)ctx.initialLst();
    (void)ctx.asapMakespan();
    (void)ctx.sumWorkPower();
    bool anyRefined = false;
    bool anyUnrefined = false;
    for (const VariantSpec& spec : specs) {
      anyRefined = anyRefined || spec.refined;
      anyUnrefined = anyUnrefined || !spec.refined;
      (void)ctx.scoreOrder(ScoreOptions{spec.base, spec.weighted});
    }
    if (anyRefined) {
      (void)ctx.refinedIntervals(params.blockSize);
      (void)ctx.budgetTreePrototype(true, params.blockSize);
    }
    if (anyUnrefined) (void)ctx.budgetTreePrototype(false, params.blockSize);
  }

  // The variant fan-out owns the workers; keep the kernels inside each
  // variant serial so a 16-way batch never oversubscribes the machine.
  CaWoParams inner = params;
  if (threads != 1) inner.threads = 1;

  std::vector<Schedule> out(specs.size());
  const SolveContextFreezeGuard freeze(ctx);
  parallelFor(specs.size(), threads, [&](std::size_t i) {
    out[i] = runVariant(ctx, specs[i], inner,
                        stats ? &(*stats)[i] : nullptr);
  });
  return out;
}

} // namespace cawo
