#include "core/cawosched.hpp"

#include "util/require.hpp"

namespace cawo {

std::string VariantSpec::name() const {
  std::string s = (base == BaseScore::Slack) ? "slack" : "press";
  if (weighted) s += "W";
  if (refined) s += "R";
  if (localSearch) s += "-LS";
  return s;
}

VariantSpec VariantSpec::parse(const std::string& name) {
  for (const VariantSpec& v : allVariants())
    if (v.name() == name) return v;
  throw PreconditionError("unknown CaWoSched variant: " + name);
}

std::vector<VariantSpec> allVariants() {
  std::vector<VariantSpec> out;
  for (const bool ls : {false, true}) {
    for (const BaseScore base : {BaseScore::Slack, BaseScore::Pressure}) {
      for (const bool refined : {false, true}) {
        for (const bool weighted : {false, true}) {
          // Order within a base: plain, W, R, WR (paper naming order).
          out.push_back(VariantSpec{base, weighted, refined, ls});
        }
      }
    }
  }
  return out;
}

std::vector<VariantSpec> greedyOnlyVariants() {
  std::vector<VariantSpec> out;
  for (const VariantSpec& v : allVariants())
    if (!v.localSearch) out.push_back(v);
  return out;
}

Schedule runVariant(const EnhancedGraph& gc, const PowerProfile& profile,
                    Time deadline, const VariantSpec& spec,
                    const CaWoParams& params) {
  GreedyOptions gopts;
  gopts.base = spec.base;
  gopts.weighted = spec.weighted;
  gopts.refined = spec.refined;
  gopts.blockSize = params.blockSize;
  Schedule s = scheduleGreedy(gc, profile, deadline, gopts);
  if (spec.localSearch) {
    LocalSearchOptions lopts;
    lopts.radius = params.lsRadius;
    localSearch(gc, profile, deadline, s, lopts);
  }
  return s;
}

} // namespace cawo
