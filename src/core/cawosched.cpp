#include "core/cawosched.hpp"

#include "core/solve_context.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace cawo {

std::string VariantSpec::name() const {
  std::string s = (base == BaseScore::Slack) ? "slack" : "press";
  if (weighted) s += "W";
  if (refined) s += "R";
  if (localSearch) s += "-LS";
  return s;
}

VariantSpec VariantSpec::parse(const std::string& name) {
  for (const VariantSpec& v : allVariants())
    if (v.name() == name) return v;
  throw PreconditionError("unknown CaWoSched variant: " + name);
}

std::vector<VariantSpec> allVariants() {
  std::vector<VariantSpec> out;
  for (const bool ls : {false, true}) {
    for (const BaseScore base : {BaseScore::Slack, BaseScore::Pressure}) {
      for (const bool refined : {false, true}) {
        for (const bool weighted : {false, true}) {
          // Order within a base: plain, W, R, WR (paper naming order).
          out.push_back(VariantSpec{base, weighted, refined, ls});
        }
      }
    }
  }
  return out;
}

std::vector<VariantSpec> greedyOnlyVariants() {
  std::vector<VariantSpec> out;
  for (const VariantSpec& v : allVariants())
    if (!v.localSearch) out.push_back(v);
  return out;
}

Schedule runVariant(const EnhancedGraph& gc, const PowerProfile& profile,
                    Time deadline, const VariantSpec& spec,
                    const CaWoParams& params) {
  const SolveContext ctx(gc, profile, deadline);
  return runVariant(ctx, spec, params);
}

Schedule runVariant(const SolveContext& ctx, const VariantSpec& spec,
                    const CaWoParams& params, VariantRunStats* stats) {
  GreedyOptions gopts;
  gopts.base = spec.base;
  gopts.weighted = spec.weighted;
  gopts.refined = spec.refined;
  gopts.blockSize = params.blockSize;

  WallTimer timer;
  Schedule s = scheduleGreedy(ctx, gopts);
  if (stats) stats->greedyMs = timer.elapsedMs();

  if (spec.localSearch) {
    LocalSearchOptions lopts;
    lopts.radius = params.lsRadius;
    timer.reset();
    const LocalSearchStats ls =
        localSearch(ctx.gc(), ctx.profile(), ctx.deadline(), s, lopts);
    if (stats) {
      stats->lsMs = timer.elapsedMs();
      stats->lsRan = true;
      stats->ls = ls;
    }
  }
  return s;
}

} // namespace cawo
