#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/types.hpp"

/// \file budget_tree.hpp
/// Ordered segment store with range-decrement and range-argmax, used by the
/// greedy scheduler (Section 5.2) to pick "the interval with the highest
/// budget whose begin lies in [EST, LST]" in O(log S) instead of a linear
/// scan over up to millions of refined subintervals.
///
/// Implemented as a treap keyed by segment begin time, augmented with the
/// subtree maximum budget, with lazy range-add. Ties on the maximum are
/// broken toward the earliest segment, as the paper requires.
///
/// Storage is an index-linked arena (one contiguous node vector, bump
/// allocation, no per-node `new`), built in O(S) from the sorted segment
/// sequence. Queries (`maxInRange`, `budgetAt`) and range updates
/// (`addRange`) are top-down descents that never restructure the tree;
/// only `splitAt` inserts. `maxInRange`/`budgetAt`/`dump` are genuinely
/// read-only, so concurrent const readers are safe — but any mutator
/// (`consume`, `splitAt`, `addRange`) requires exclusive access.

namespace cawo {

class BudgetTree {
public:
  /// Build from contiguous segments: `begins` strictly increasing,
  /// `budgets` parallel. `horizon` is the exclusive end of the last segment.
  BudgetTree(std::vector<Time> begins, std::vector<Power> budgets,
             Time horizon, std::uint64_t seed = 0x7ee9);

  ~BudgetTree();
  BudgetTree(BudgetTree&&) noexcept;
  BudgetTree& operator=(BudgetTree&&) noexcept;
  BudgetTree(const BudgetTree&) = delete;
  BudgetTree& operator=(const BudgetTree&) = delete;

  /// Ensure a segment boundary exists at `t` (splits the segment containing
  /// t; no-op if t is already a boundary or outside (0, horizon)).
  void splitAt(Time t);

  /// Add `delta` (may be negative) to the budget of every segment whose
  /// begin lies in [a, b). Callers should splitAt(a) and splitAt(b) first so
  /// that the range aligns with the intended time window.
  void addRange(Time a, Time b, Power delta);

  /// Decrement budgets over the *time window* [a, b): splits at a and b,
  /// then subtracts `amount` from every covered segment.
  void consume(Time a, Time b, Power amount);

  struct MaxResult {
    bool found = false;
    Time begin = 0;   ///< earliest segment begin achieving the max
    Power budget = 0; ///< the maximum budget in range
  };

  /// Earliest segment with maximum budget among segments whose begin lies
  /// in [lo, hi] (inclusive).
  MaxResult maxInRange(Time lo, Time hi) const;

  /// Budget of the segment containing time t.
  Power budgetAt(Time t) const;

  /// Number of segments (diagnostic).
  std::size_t size() const;

  /// All (begin, budget) pairs in order — O(S), for tests.
  std::vector<std::pair<Time, Power>> dump() const;

  Time horizon() const { return horizon_; }

private:
  struct Node;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Time horizon_ = 0;
};

} // namespace cawo
