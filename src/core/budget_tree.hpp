#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

/// \file budget_tree.hpp
/// Ordered segment store with range-decrement and range-argmax, used by the
/// greedy scheduler (Section 5.2) to pick "the interval with the highest
/// budget whose begin lies in [EST, LST]" without a linear scan over up to
/// millions of refined subintervals.
///
/// Storage is a blocked sorted array (a B+-tree-shaped flat layout): the
/// segments live in key order inside fixed-capacity blocks, whose key and
/// budget slabs are carved out of two contiguous arenas, and a small
/// directory vector holds one 40-byte summary per block — first key, block
/// maximum (with the earliest index achieving it), pending lazy addition,
/// count. Every operation is a short binary search over the directory
/// followed by sequential scans or `memmove`s inside one ≤kBlockCap-entry
/// slab: range-argmax compares block summaries left to right (ties
/// therefore resolve to the earliest segment, as the paper requires) and
/// only descends into the two partially covered edge blocks — a fully
/// covered winner's earliest witness is read straight from its summary;
/// `splitAt` is an in-block insert that occasionally splits a full block.
/// Unlike the treap this replaces,
/// the walks are iterative, allocation-free in steady state (block splits
/// amortise over the arena), and every probe touches a handful of cache
/// lines of contiguous memory.
///
/// `maxInRange`/`budgetAt`/`dump` are genuinely read-only, so concurrent
/// const readers are safe — any mutator (`consume`, `splitAt`, `addRange`)
/// requires exclusive access. The store is copyable: a `SolveContext`
/// memoizes one built prototype per interval set and every greedy run
/// starts from a plain copy (three vector copies) instead of rebuilding.

namespace cawo {

class BudgetTree {
public:
  /// Build from contiguous segments: `begins` strictly increasing,
  /// `budgets` parallel. `horizon` is the exclusive end of the last
  /// segment. The trailing seed parameter is retained from the treap
  /// implementation for source compatibility; the blocked store is
  /// deterministic by construction and ignores it.
  BudgetTree(std::vector<Time> begins, std::vector<Power> budgets,
             Time horizon, std::uint64_t seed = 0x7ee9);

  /// Same, without taking ownership of the inputs (the prototype path).
  BudgetTree(std::span<const Time> begins, std::span<const Power> budgets,
             Time horizon);

  /// Ensure a segment boundary exists at `t` (splits the segment containing
  /// t; no-op if t is already a boundary or outside (0, horizon)).
  void splitAt(Time t);

  /// Add `delta` (may be negative) to the budget of every segment whose
  /// begin lies in [a, b). Callers should splitAt(a) and splitAt(b) first so
  /// that the range aligns with the intended time window.
  void addRange(Time a, Time b, Power delta);

  /// Decrement budgets over the *time window* [a, b): splits at a and b,
  /// then subtracts `amount` from every covered segment.
  void consume(Time a, Time b, Power amount);

  /// consume with a directory locator from a preceding `maxInRange` whose
  /// winning segment begins at `a` (and with no mutation in between): skips
  /// the binary search for a's block. The greedy hot loop always consumes
  /// exactly where it just queried.
  void consume(Time a, Time b, Power amount, std::uint32_t hint);

  struct MaxResult {
    bool found = false;
    Time begin = 0;   ///< earliest segment begin achieving the max
    Power budget = 0; ///< the maximum budget in range
    std::uint32_t block = 0; ///< opaque locator of the winner, for `consume`
  };

  /// Earliest segment with maximum budget among segments whose begin lies
  /// in [lo, hi] (inclusive).
  MaxResult maxInRange(Time lo, Time hi) const;

  /// Budget of the segment containing time t.
  Power budgetAt(Time t) const;

  /// Number of segments (diagnostic).
  std::size_t size() const { return size_; }

  /// All (begin, budget) pairs in order — O(S), for tests.
  std::vector<std::pair<Time, Power>> dump() const;

  Time horizon() const { return horizon_; }

private:
  /// Entries per block slab. Queries scan the directory (one summary per
  /// block) plus at most two edge slabs sequentially; updates memmove at
  /// most one slab. Measured on the greedy workload (narrow windows, one
  /// boundary insert per placement), 32 beats 16/48/64/128: inserts move
  /// ≤ 31 entries and the block-max rescan after a consume stays within
  /// four cache lines, while the directory is still small enough that its
  /// binary search rarely leaves L2.
  static constexpr std::int32_t kBlockCap = 32;

  struct Block {
    Time firstKey = 0;   ///< == keys()[0]; blocks are directory-sorted by it
    Power maxBudget = 0; ///< max over the slab, `lazy` NOT applied
    Power lazy = 0;      ///< pending addition owed to every slab entry
    std::int32_t count = 0;
    std::int32_t slot = 0;   ///< slab index into the arenas
    std::int32_t argmax = 0; ///< earliest slab index achieving maxBudget
  };

  void build(std::span<const Time> begins, std::span<const Power> budgets);

  const Time* keys(const Block& b) const {
    return keyArena_.data() +
           static_cast<std::size_t>(b.slot) * kBlockCap;
  }
  const Power* budgets(const Block& b) const {
    return budgetArena_.data() +
           static_cast<std::size_t>(b.slot) * kBlockCap;
  }
  Time* keys(Block& b) {
    return keyArena_.data() +
           static_cast<std::size_t>(b.slot) * kBlockCap;
  }
  Power* budgets(Block& b) {
    return budgetArena_.data() +
           static_cast<std::size_t>(b.slot) * kBlockCap;
  }

  /// Directory index of the block whose key range contains t
  /// (largest firstKey <= t; t >= 0 implies it exists).
  std::size_t findBlock(Time t) const;

  /// splitAt with the directory search seeded at `bi` (requires
  /// blocks_[bi].firstKey <= t); walks forward to t's block, then inserts.
  /// Returns the directory index of the block containing t (post-split).
  std::size_t splitAtIdxFrom(std::size_t bi, Time t);

  /// consume with the starting directory index already located.
  void consumeFrom(std::size_t bi, Time a, Time b, Power amount);

  /// addRange with the starting directory index already located.
  void addRangeFrom(std::size_t start, Time a, Time b, Power delta);

  /// Split the full block at directory index bi into two half-full blocks.
  void splitBlock(std::size_t bi);

  void recomputeMax(Block& b);

  std::vector<Block> blocks_;      ///< the directory, in key order
  std::vector<Time> keyArena_;     ///< slab-granular key storage
  std::vector<Power> budgetArena_; ///< slab-granular budget storage
  std::size_t size_ = 0;           ///< total segments
  Time horizon_ = 0;
};

} // namespace cawo
