#include "core/power_timeline.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

namespace {

/// Replace v[i0, j0) by src[0, n) with at most one tail move per vector.
template <class T>
void spliceVec(std::vector<T>& v, std::size_t i0, std::size_t j0, const T* src,
               std::size_t n) {
  const std::size_t oldN = j0 - i0;
  if (n == oldN) {
    std::copy(src, src + n, v.begin() + i0);
  } else if (n < oldN) {
    std::copy(src, src + n, v.begin() + i0);
    v.erase(v.begin() + i0 + n, v.begin() + j0);
  } else {
    std::copy(src, src + oldN, v.begin() + i0);
    v.insert(v.begin() + j0, src + oldN, src + n);
  }
}

} // namespace

PowerTimeline::PowerTimeline(const PowerProfile& profile, Power basePower)
    : base_(basePower), horizon_(profile.horizon()) {
  CAWO_REQUIRE(basePower >= 0, "negative base power");
  CAWO_REQUIRE(horizon_ > 0, "profile has an empty horizon");
  const auto& ivs = profile.intervals();
  begin_.reserve(ivs.size() + 1);
  active_.reserve(ivs.size());
  green_.reserve(ivs.size());
  for (const Interval& iv : profile.intervals()) {
    if (!green_.empty() && green_.back() == iv.green) continue; // coalesce
    begin_.push_back(iv.begin);
    active_.push_back(0);
    green_.push_back(iv.green);
  }
  begin_.push_back(horizon_); // sentinel
  // Left-to-right accumulation — the summation order every other entry
  // point preserves, so totals stay bit-identical across implementations.
  for (std::size_t i = 0; i < active_.size(); ++i) total_ += segCost(i);
}

std::size_t PowerTimeline::findSeg(Time t) const {
  // Branchless binary search for the largest i with begin_[i] <= t.
  // Precondition: 0 <= t < horizon_, so the answer is in [0, S).
  const Time* base = begin_.data();
  std::size_t lo = 0;
  std::size_t n = active_.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    lo = base[lo + half] <= t ? lo + half : lo;
    n -= half;
  }
  return lo;
}

Cost PowerTimeline::segCost(std::size_t i) const {
  const Time len = begin_[i + 1] - begin_[i];
  const Power over = base_ + active_[i] - green_[i];
  return over > 0 ? static_cast<Cost>(over) * len : 0;
}

void PowerTimeline::rewriteWindow(Time a, Time b, Time a2, Time b2,
                                  Power work) {
  const bool hasOld = a < b;
  const bool hasNew = a2 < b2;
  CAWO_ASSERT(work != 0 && (hasOld || hasNew), "empty rewrite");
  Time wlo = hasOld ? a : a2;
  Time whi = hasOld ? b : b2;
  if (hasNew) {
    wlo = std::min(wlo, a2);
    whi = std::max(whi, b2);
  }
  CAWO_REQUIRE(wlo >= 0 && whi <= horizon_, "load outside horizon");

  // All segments intersecting [wlo, whi) are rewritten whole: the pieces
  // outside the edited spans keep their original values and coalesce back.
  const std::size_t i0 = findSeg(wlo);
  std::size_t j0 = findSeg(whi - 1) + 1;

  scratchBegin_.clear();
  scratchActive_.clear();
  scratchGreen_.clear();
  Cost oldCost = 0;
  for (std::size_t i = i0; i < j0; ++i) {
    oldCost += segCost(i);
    const Time segLo = begin_[i];
    const Time segHi = begin_[i + 1];
    // The load change is piecewise constant inside the segment, switching
    // only at the move endpoints: cut there, emit each constant piece,
    // coalescing equal neighbours as we go.
    Time cuts[6] = {segLo, segHi};
    int numCuts = 2;
    for (const Time t : {a, b, a2, b2})
      if (t > segLo && t < segHi) cuts[numCuts++] = t;
    for (int k = 2; k < numCuts; ++k) { // insertion sort: ≤ 6 elements
      const Time t = cuts[k];
      int j = k - 1;
      while (j >= 0 && cuts[j] > t) {
        cuts[j + 1] = cuts[j];
        --j;
      }
      cuts[j + 1] = t;
    }
    for (int k = 0; k + 1 < numCuts; ++k) {
      const Time pieceLo = cuts[k];
      if (pieceLo >= cuts[k + 1]) continue; // duplicate cut
      Power act = active_[i];
      if (hasOld && pieceLo >= a && pieceLo < b) act -= work;
      if (hasNew && pieceLo >= a2 && pieceLo < b2) act += work;
      if (!scratchBegin_.empty() && scratchActive_.back() == act &&
          scratchGreen_.back() == green_[i])
        continue; // extends the previous piece
      scratchBegin_.push_back(pieceLo);
      scratchActive_.push_back(act);
      scratchGreen_.push_back(green_[i]);
    }
  }

  // Absorb the right neighbour if the edit made the last piece equal to it.
  if (j0 < active_.size() && scratchActive_.back() == active_[j0] &&
      scratchGreen_.back() == green_[j0]) {
    oldCost += segCost(j0);
    ++j0;
  }

  // New cost of the rewritten span, left to right.
  Cost newCost = 0;
  const Time spanEnd = begin_[j0];
  for (std::size_t k = 0; k < scratchBegin_.size(); ++k) {
    const Time end =
        k + 1 < scratchBegin_.size() ? scratchBegin_[k + 1] : spanEnd;
    const Power over = base_ + scratchActive_[k] - scratchGreen_[k];
    if (over > 0) newCost += static_cast<Cost>(over) * (end - scratchBegin_[k]);
  }

  // Merge into the left neighbour if the first piece now matches it (the
  // cost above is unchanged — the values are equal by construction).
  std::size_t first = 0;
  if (i0 > 0 && scratchActive_[0] == active_[i0 - 1] &&
      scratchGreen_[0] == green_[i0 - 1])
    first = 1;

  const std::size_t n = scratchBegin_.size() - first;
  spliceVec(begin_, i0, j0, scratchBegin_.data() + first, n);
  spliceVec(active_, i0, j0, scratchActive_.data() + first, n);
  spliceVec(green_, i0, j0, scratchGreen_.data() + first, n);
  total_ += newCost - oldCost;
}

void PowerTimeline::addLoad(Time a, Time b, Power work) {
  if (a >= b || work == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "load outside horizon");
  rewriteWindow(0, 0, a, b, work);
}

void PowerTimeline::removeLoad(Time a, Time b, Power work) {
  addLoad(a, b, -work);
}

void PowerTimeline::applyMove(Time a, Time b, Time a2, Time b2, Power work) {
  const bool hasOld = a < b;
  const bool hasNew = a2 < b2;
  if (work == 0 || (!hasOld && !hasNew)) return;
  if (hasOld && hasNew && a == a2 && b == b2) return;
  if (!hasOld) return addLoad(a2, b2, work);
  if (!hasNew) return removeLoad(a, b, work);
  rewriteWindow(a, b, a2, b2, work);
}

void PowerTimeline::addLoads(std::span<const Load> loads) {
  // Event sweep: O((S + L) log L) rebuild of the whole segment array,
  // instead of one window rewrite (each a potential tail shift) per load.
  scratchBegin_.clear();
  for (const Load& l : loads) {
    if (l.work == 0 || l.begin >= l.end) continue;
    CAWO_REQUIRE(l.begin >= 0 && l.end <= horizon_, "load outside horizon");
    scratchBegin_.push_back(l.begin);
    scratchBegin_.push_back(l.end);
  }
  if (scratchBegin_.empty()) return;
  std::sort(scratchBegin_.begin(), scratchBegin_.end());
  scratchBegin_.erase(
      std::unique(scratchBegin_.begin(), scratchBegin_.end()),
      scratchBegin_.end());

  // Delta of active power at each event time (index-aligned with the
  // sorted unique event array).
  scratchActive_.assign(scratchBegin_.size(), 0);
  auto eventIndex = [&](Time t) {
    return static_cast<std::size_t>(
        std::lower_bound(scratchBegin_.begin(), scratchBegin_.end(), t) -
        scratchBegin_.begin());
  };
  for (const Load& l : loads) {
    if (l.work == 0 || l.begin >= l.end) continue;
    scratchActive_[eventIndex(l.begin)] += l.work;
    scratchActive_[eventIndex(l.end)] -= l.work;
  }

  // Merge the existing segment boundaries with the event boundaries into a
  // fresh coalesced array.
  std::vector<Time> newBegin;
  std::vector<Power> newActive;
  std::vector<Power> newGreen;
  newBegin.reserve(begin_.size() + scratchBegin_.size());
  newActive.reserve(begin_.size() + scratchBegin_.size());
  newGreen.reserve(begin_.size() + scratchBegin_.size());
  std::size_t si = 0;                 // current old segment
  std::size_t ei = 0;                 // next event
  Power running = 0;                  // Σ event deltas so far
  Time t = 0;
  Cost total = 0;
  while (t < horizon_) {
    while (si + 1 < active_.size() && begin_[si + 1] <= t) ++si;
    while (ei < scratchBegin_.size() && scratchBegin_[ei] <= t)
      running += scratchActive_[ei++];
    Time next = begin_[si + 1];
    if (ei < scratchBegin_.size()) next = std::min(next, scratchBegin_[ei]);
    const Power act = active_[si] + running;
    if (newBegin.empty() || newActive.back() != act ||
        newGreen.back() != green_[si]) {
      newBegin.push_back(t);
      newActive.push_back(act);
      newGreen.push_back(green_[si]);
    }
    const Power over = base_ + act - green_[si];
    if (over > 0) total += static_cast<Cost>(over) * (next - t);
    t = next;
  }
  newBegin.push_back(horizon_);
  begin_ = std::move(newBegin);
  active_ = std::move(newActive);
  green_ = std::move(newGreen);
  total_ = total;
}

Cost PowerTimeline::costInRange(Time a, Time b) const {
  if (a >= b) return 0;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "range outside horizon");
  Cost cost = 0;
  for (std::size_t i = findSeg(a); i < active_.size() && begin_[i] < b; ++i) {
    const Time lo = std::max(a, begin_[i]);
    const Time hi = std::min(b, begin_[i + 1]);
    const Power over = base_ + active_[i] - green_[i];
    if (over > 0 && hi > lo) cost += static_cast<Cost>(over) * (hi - lo);
  }
  return cost;
}

Cost PowerTimeline::peekMoveDelta(Time a, Time b, Time a2, Time b2,
                                  Power work) const {
  const bool hasOld = a < b;
  const bool hasNew = a2 < b2;
  if (work == 0 || (!hasOld && !hasNew) ||
      (hasOld && hasNew && a == a2 && b == b2))
    return 0;
  Time lo = hasOld ? a : a2;
  Time hi = hasOld ? b : b2;
  if (hasNew) {
    lo = std::min(lo, a2);
    hi = std::max(hi, b2);
  }
  CAWO_REQUIRE(lo >= 0 && hi <= horizon_, "load outside horizon");

  Cost delta = 0;
  for (std::size_t i = findSeg(lo); i < active_.size() && begin_[i] < hi;
       ++i) {
    const Time segLo = std::max(lo, begin_[i]);
    const Time segHi = std::min(hi, begin_[i + 1]);
    const Power over = base_ + active_[i] - green_[i];
    // The load change is piecewise constant; inside this segment it can
    // only switch at the four move endpoints, so cut there and sum each
    // constant piece directly.
    Time cuts[6] = {segLo, segHi};
    int numCuts = 2;
    for (const Time t : {a, b, a2, b2})
      if (t > segLo && t < segHi) cuts[numCuts++] = t;
    for (int k = 2; k < numCuts; ++k) { // insertion sort: ≤ 6 elements
      const Time t = cuts[k];
      int j = k - 1;
      while (j >= 0 && cuts[j] > t) {
        cuts[j + 1] = cuts[j];
        --j;
      }
      cuts[j + 1] = t;
    }
    for (int k = 0; k + 1 < numCuts; ++k) {
      const Time pieceLo = cuts[k];
      const Time pieceHi = cuts[k + 1];
      if (pieceLo >= pieceHi) continue; // duplicate cut
      Power change = 0;
      if (hasOld && pieceLo >= a && pieceLo < b) change -= work;
      if (hasNew && pieceLo >= a2 && pieceLo < b2) change += work;
      if (change == 0) continue;
      const Power moved = over + change;
      const Time len = pieceHi - pieceLo;
      if (over > 0) delta -= static_cast<Cost>(over) * len;
      if (moved > 0) delta += static_cast<Cost>(moved) * len;
    }
  }
  return delta;
}

void PowerTimeline::peekMoveDeltas(Time a, Time b, Power work,
                                   std::span<const CandidateInterval> candidates,
                                   PeekScratch& scratch,
                                   std::span<Cost> out) const {
  CAWO_REQUIRE(out.size() == candidates.size(),
               "peekMoveDeltas: out/candidates size mismatch");
  if (candidates.empty()) return;
  if (work == 0) {
    std::fill(out.begin(), out.end(), Cost{0});
    return;
  }
  const bool hasOld = a < b;
  if (hasOld) CAWO_REQUIRE(a >= 0 && b <= horizon_, "load outside horizon");

  // Shared removal term: cost change of taking the load off [a, b). This
  // is the part every candidate target has in common, so compute it once.
  Cost removal = 0;
  if (hasOld) {
    for (std::size_t i = findSeg(a); i < active_.size() && begin_[i] < b;
         ++i) {
      const Time lo = std::max(a, begin_[i]);
      const Time hi = std::min(b, begin_[i + 1]);
      const Power over = base_ + active_[i] - green_[i];
      const Power rem = over - work;
      const Time len = hi - lo;
      if (over > 0) removal -= static_cast<Cost>(over) * len;
      if (rem > 0) removal += static_cast<Cost>(rem) * len;
    }
  }

  // Window covering every non-empty candidate.
  Time wlo = horizon_;
  Time whi = 0;
  bool any = false;
  for (const CandidateInterval& c : candidates) {
    if (c.begin >= c.end) continue;
    any = true;
    wlo = std::min(wlo, c.begin);
    whi = std::max(whi, c.end);
  }
  if (!any) {
    // Every candidate target is empty — each probe is removal-only.
    std::fill(out.begin(), out.end(), hasOld ? removal : Cost{0});
    return;
  }
  CAWO_REQUIRE(wlo >= 0 && whi <= horizon_, "candidate outside horizon");

  // Piece table over [wlo, whi): pieces cut at segment boundaries and at
  // the source endpoints (inside [a, b) the residual power after removal
  // is lower by `work`). gain[k] is the per-unit cost of adding the load
  // back over piece k; prefix[k] integrates gain from wlo to pieceBegin[k],
  // so any candidate [c, d) evaluates as removal + G(d) − G(c).
  scratch.pieceBegin.clear();
  scratch.gain.clear();
  scratch.prefix.clear();
  scratch.prefix.push_back(0);
  Cost acc = 0;
  for (std::size_t i = findSeg(wlo); i < active_.size() && begin_[i] < whi;
       ++i) {
    const Time segLo = std::max(wlo, begin_[i]);
    const Time segHi = std::min(whi, begin_[i + 1]);
    Time cuts[4] = {segLo, segHi};
    int numCuts = 2;
    if (hasOld) {
      if (a > segLo && a < segHi) cuts[numCuts++] = a;
      if (b > segLo && b < segHi) cuts[numCuts++] = b;
    }
    for (int k = 2; k < numCuts; ++k) { // insertion sort: ≤ 4 elements
      const Time t = cuts[k];
      int j = k - 1;
      while (j >= 0 && cuts[j] > t) {
        cuts[j + 1] = cuts[j];
        --j;
      }
      cuts[j + 1] = t;
    }
    for (int k = 0; k + 1 < numCuts; ++k) {
      const Time pieceLo = cuts[k];
      const Time pieceHi = cuts[k + 1];
      if (pieceLo >= pieceHi) continue; // duplicate cut
      Power over = base_ + active_[i] - green_[i];
      if (hasOld && pieceLo >= a && pieceLo < b) over -= work;
      const Power raised = over + work;
      const Power gain = (raised > 0 ? raised : 0) - (over > 0 ? over : 0);
      scratch.pieceBegin.push_back(pieceLo);
      scratch.gain.push_back(gain);
      acc += static_cast<Cost>(gain) * (pieceHi - pieceLo);
      scratch.prefix.push_back(acc);
    }
  }
  scratch.pieceBegin.push_back(whi); // sentinel

  const Time* pb = scratch.pieceBegin.data();
  const Power* gain = scratch.gain.data();
  const Cost* prefix = scratch.prefix.data();
  const std::size_t numPieces = scratch.gain.size();
  // Candidate endpoints from the local search arrive sorted, so evaluate
  // with two monotone piece cursors — the whole batch is a single merged
  // walk over pieces and candidates. An out-of-order endpoint just resets
  // its cursor by binary search; correctness never depends on the order.
  auto seek = [&](std::size_t j, Time t) -> std::size_t {
    if (j < numPieces && pb[j] <= t && t < pb[j + 1]) return j;
    if (j + 1 < numPieces && pb[j + 1] <= t && t < pb[j + 2]) return j + 1;
    std::size_t lo = 0; // largest k with pieceBegin[k] <= t (branchless)
    std::size_t n = numPieces + 1;
    while (n > 1) {
      const std::size_t half = n / 2;
      lo = pb[lo + half] <= t ? lo + half : lo;
      n -= half;
    }
    return lo;
  };
  auto integralAt = [&](std::size_t j, Time t) -> Cost {
    if (j == numPieces) return prefix[numPieces]; // t == whi
    return prefix[j] + static_cast<Cost>(gain[j]) * (t - pb[j]);
  };

  std::size_t jb = 0; // cursor for candidate begins
  std::size_t je = 0; // cursor for candidate ends
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const CandidateInterval& c = candidates[k];
    if (c.begin >= c.end) {
      out[k] = hasOld ? removal : 0;
    } else if (hasOld && c.begin == a && c.end == b) {
      out[k] = 0; // identity move, by definition
    } else {
      jb = seek(jb, c.begin);
      je = seek(je, c.end);
      out[k] = removal + (integralAt(je, c.end) - integralAt(jb, c.begin));
    }
  }
}

} // namespace cawo
