#include "core/power_timeline.hpp"

#include "util/require.hpp"

namespace cawo {

PowerTimeline::PowerTimeline(const PowerProfile& profile, Power basePower)
    : base_(basePower), horizon_(profile.horizon()) {
  CAWO_REQUIRE(basePower >= 0, "negative base power");
  CAWO_REQUIRE(horizon_ > 0, "profile has an empty horizon");
  for (const Interval& iv : profile.intervals())
    segments_.emplace(iv.begin, Segment{0, iv.green});
  segments_.emplace(horizon_, Segment{0, 0}); // sentinel, never costed
  for (auto it = segments_.begin(); std::next(it) != segments_.end(); ++it)
    total_ += segmentCost(it);
}

Cost PowerTimeline::segmentCost(SegMap::const_iterator it) const {
  const auto next = std::next(it);
  const Time len = next->first - it->first;
  const Power over = base_ + it->second.active - it->second.green;
  return over > 0 ? static_cast<Cost>(over) * len : 0;
}

void PowerTimeline::splitAt(Time t) {
  if (t <= 0 || t >= horizon_) return;
  auto it = segments_.lower_bound(t);
  if (it != segments_.end() && it->first == t) return;
  --it; // segment containing t
  segments_.emplace_hint(std::next(it), t, it->second);
  // The two halves carry the same power values, so total_ is unchanged.
}

void PowerTimeline::addLoad(Time a, Time b, Power work) {
  if (a >= b || work == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "load outside horizon");
  splitAt(a);
  splitAt(b);
  for (auto it = segments_.lower_bound(a);
       it != segments_.end() && it->first < b; ++it) {
    total_ -= segmentCost(it);
    it->second.active += work;
    total_ += segmentCost(it);
  }
}

void PowerTimeline::removeLoad(Time a, Time b, Power work) {
  addLoad(a, b, -work);
}

Cost PowerTimeline::costInRange(Time a, Time b) const {
  if (a >= b) return 0;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "range outside horizon");
  Cost cost = 0;
  auto it = segments_.upper_bound(a);
  --it; // segment containing a
  for (; it != segments_.end() && it->first < b; ++it) {
    const auto next = std::next(it);
    const Time lo = std::max(a, it->first);
    const Time hi = std::min(b, next->first);
    const Power over = base_ + it->second.active - it->second.green;
    if (over > 0 && hi > lo) cost += static_cast<Cost>(over) * (hi - lo);
  }
  return cost;
}

Cost PowerTimeline::moveDelta(Time a, Time b, Time a2, Time b2, Power work) {
  const Cost before = total_;
  removeLoad(a, b, work);
  addLoad(a2, b2, work);
  const Cost after = total_;
  // Revert: integer arithmetic makes this exact.
  removeLoad(a2, b2, work);
  addLoad(a, b, work);
  CAWO_ASSERT(total_ == before, "PowerTimeline revert failed");
  return after - before;
}

} // namespace cawo
