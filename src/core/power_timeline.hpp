#pragma once

#include <map>

#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file power_timeline.hpp
/// Incremental power/cost timeline used by the local search and the exact
/// branch-and-bound solver.
///
/// The horizon is partitioned into segments, each lying inside one profile
/// interval, carrying the currently-drawn *active* power (sum of P_work of
/// running tasks). The total carbon cost
///   Σ_segments max(base + active − green, 0) · length
/// is maintained incrementally under addLoad/removeLoad, so evaluating a
/// candidate task move costs O(log S + segments touched) instead of a full
/// O(N log N) re-evaluation.

namespace cawo {

class PowerTimeline {
public:
  /// \param basePower power drawn at every time unit regardless of schedule
  ///        (Σ of idle powers of all enhanced processors).
  PowerTimeline(const PowerProfile& profile, Power basePower);

  /// Add `work` units of active power over [a, b).
  void addLoad(Time a, Time b, Power work);

  /// Remove `work` units of active power over [a, b) (must have been added).
  void removeLoad(Time a, Time b, Power work);

  /// Current total carbon cost.
  Cost totalCost() const { return total_; }

  /// Carbon cost restricted to [a, b).
  Cost costInRange(Time a, Time b) const;

  /// Cost change if a load of `work` moved from [a, b) to [a2, b2);
  /// negative = improvement. The timeline is left unchanged — but the
  /// evaluation mutates and reverts it, so it needs exclusive access and
  /// permanently adds segment boundaries at the probed endpoints.
  Cost moveDelta(Time a, Time b, Time a2, Time b2, Power work);

  /// The same value as `moveDelta`, computed without ever touching the
  /// segment map: the delta is summed over the affected segment pieces
  /// directly. Being genuinely read-only it is safe to call from many
  /// threads at once on a shared timeline (the parallel local-search
  /// candidate scans do exactly that), and it leaves no split residue.
  Cost peekMoveDelta(Time a, Time b, Time a2, Time b2, Power work) const;

  Time horizon() const { return horizon_; }

  /// Number of internal segments (diagnostic).
  std::size_t numSegments() const { return segments_.size(); }

private:
  struct Segment {
    Power active = 0;
    Power green = 0;
  };

  using SegMap = std::map<Time, Segment>;

  /// Ensure a segment boundary exists at time t (0 < t < horizon).
  void splitAt(Time t);

  Cost segmentCost(SegMap::const_iterator it) const;

  SegMap segments_; // key = segment begin; a sentinel at `horizon_` ends it
  Power base_ = 0;
  Time horizon_ = 0;
  Cost total_ = 0;
};

} // namespace cawo
