#pragma once

#include <span>
#include <vector>

#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file power_timeline.hpp
/// Incremental power/cost timeline used by the local search and the exact
/// branch-and-bound solver.
///
/// The horizon is partitioned into segments, each lying inside one profile
/// interval, carrying the currently-drawn *active* power (sum of P_work of
/// running tasks). The total carbon cost
///   Σ_segments max(base + active − green, 0) · length
/// is maintained incrementally under addLoad/removeLoad, so evaluating a
/// candidate task move costs far less than a full re-evaluation.
///
/// Storage is a flat sorted segment array (structure-of-arrays: contiguous
/// `begin`/`active`/`green` vectors, binary-searched branchlessly) instead
/// of the former `std::map` red-black tree: every probe walks contiguous
/// memory instead of chasing tree pointers, and a whole candidate batch is
/// served from one prefix table (see `peekMoveDeltas`). Mutations rewrite
/// only the affected window and shift the tail at most once; segments whose
/// (active, green) values become equal to a neighbour are coalesced
/// eagerly, so `numSegments()` stays bounded by the number of distinct
/// change points of the load function — probes and applied moves no longer
/// leave split residue behind (the `std::map` implementation accumulated
/// probe boundaries forever).
///
/// Every cost is an exact 64-bit integer and per-segment terms are always
/// accumulated left to right, so `totalCost`/`moveDelta`/`peekMoveDelta`
/// return values bit-identical to the retained map-backed oracle
/// (`MapPowerTimeline`, pinned by property test).

namespace cawo {

/// One candidate target interval for a batched move probe.
struct CandidateInterval {
  Time begin = 0;
  Time end = 0;
};

class PowerTimeline {
public:
  /// \param basePower power drawn at every time unit regardless of schedule
  ///        (Σ of idle powers of all enhanced processors).
  PowerTimeline(const PowerProfile& profile, Power basePower);

  /// Add `work` units of active power over [a, b).
  void addLoad(Time a, Time b, Power work);

  /// Remove `work` units of active power over [a, b) (must have been added).
  void removeLoad(Time a, Time b, Power work);

  /// A load span for the bulk loader.
  struct Load {
    Time begin = 0;
    Time end = 0;
    Power work = 0;
  };

  /// Add every load in one sweep — O((S + L)·log L) instead of L separate
  /// `addLoad` window rewrites. This is how the local search seeds a climb
  /// timeline from a whole schedule.
  void addLoads(std::span<const Load> loads);

  /// Move a load of `work` from [a, b) to [a2, b2) in one window rewrite
  /// (equivalent to removeLoad(a, b) + addLoad(a2, b2), but the two edits
  /// share a single pass and a single tail shift — the local search's
  /// applied-move path).
  void applyMove(Time a, Time b, Time a2, Time b2, Power work);

  /// Current total carbon cost.
  Cost totalCost() const { return total_; }

  /// Carbon cost restricted to [a, b).
  Cost costInRange(Time a, Time b) const;

  /// Cost change if a load of `work` moved from [a, b) to [a2, b2);
  /// negative = improvement. Computed read-only over the affected segment
  /// pieces — unlike the historical map-backed probe it never mutates the
  /// timeline and leaves no split residue.
  Cost moveDelta(Time a, Time b, Time a2, Time b2, Power work) const {
    return peekMoveDelta(a, b, a2, b2, work);
  }

  /// The same value as `moveDelta` (they are now one implementation): the
  /// delta is summed over the affected segment pieces directly. Genuinely
  /// read-only, so it is safe to call from many threads at once on a
  /// shared timeline.
  Cost peekMoveDelta(Time a, Time b, Time a2, Time b2, Power work) const;

  /// Reusable workspace for `peekMoveDeltas`; hand the same object to
  /// every call so the candidate scan performs no allocation after the
  /// first few batches.
  struct PeekScratch {
    std::vector<Time> pieceBegin; ///< piece starts + one end sentinel
    std::vector<Power> gain;      ///< per-unit add gain inside each piece
    std::vector<Cost> prefix;     ///< gain integral up to each piece start
  };

  /// Batched candidate probe: out[i] = peekMoveDelta(a, b,
  /// candidates[i].begin, candidates[i].end, work) for every candidate,
  /// with the shared source-interval removal term hoisted once per call
  /// and all targets served from one prefix table built in a single pass
  /// over the overlapping segments — O(segments in window + candidates)
  /// for the whole batch instead of a segment walk per candidate.
  /// Read-only; `out.size()` must equal `candidates.size()`.
  void peekMoveDeltas(Time a, Time b, Power work,
                      std::span<const CandidateInterval> candidates,
                      PeekScratch& scratch, std::span<Cost> out) const;

  Time horizon() const { return horizon_; }

  /// Number of segments (diagnostic). Thanks to eager coalescing this is
  /// bounded by the number of change points of (active, green) over the
  /// horizon, independent of how many probes or moves were executed.
  std::size_t numSegments() const { return active_.size(); }

private:
  /// Index of the segment containing t (branchless binary search).
  std::size_t findSeg(Time t) const;

  Cost segCost(std::size_t i) const;

  /// Rewrite the segments intersecting the union span of the edits,
  /// applying `-work` over [a, b) and `+work` over [a2, b2) (either may be
  /// empty), coalescing inside the window and against both neighbours, and
  /// shifting the array tail at most once.
  void rewriteWindow(Time a, Time b, Time a2, Time b2, Power work);

  std::vector<Time> begin_;   ///< size S+1; begin_[S] == horizon sentinel
  std::vector<Power> active_; ///< size S
  std::vector<Power> green_;  ///< size S

  // Window-rewrite scratch, reused across mutations (no steady-state
  // allocation in the local-search applied-move path).
  std::vector<Time> scratchBegin_;
  std::vector<Power> scratchActive_;
  std::vector<Power> scratchGreen_;

  Power base_ = 0;
  Time horizon_ = 0;
  Cost total_ = 0;
};

} // namespace cawo
