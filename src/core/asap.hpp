#pragma once

#include "core/est_lst.hpp"
#include "core/schedule.hpp"

/// \file asap.hpp
/// The carbon-unaware ASAP baseline (Section 5.1): every node starts at its
/// earliest possible start time. Its makespan `D` is the tightest feasible
/// deadline for the instance and anchors the paper's deadline factors
/// {1.0, 1.5, 2.0, 3.0} · D.

namespace cawo {

/// Schedule every node of `gc` at its EST.
Schedule scheduleAsap(const EnhancedGraph& gc);

/// Makespan of the ASAP schedule (= the paper's `D`).
Time asapMakespan(const EnhancedGraph& gc);

} // namespace cawo
