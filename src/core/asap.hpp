#pragma once

#include "core/est_lst.hpp"
#include "core/schedule.hpp"

/// \file asap.hpp
/// The carbon-unaware ASAP baseline (Section 5.1): every node starts at its
/// earliest possible start time. Its makespan `D` is the tightest feasible
/// deadline for the instance and anchors the paper's deadline factors
/// {1.0, 1.5, 2.0, 3.0} · D.

namespace cawo {

/// Schedule every node of `gc` at its EST.
Schedule scheduleAsap(const EnhancedGraph& gc);

/// Same schedule from a precomputed EST vector (e.g. the one memoized by
/// `SolveContext`), skipping the Kahn pass.
Schedule scheduleAsap(const EnhancedGraph& gc, const std::vector<Time>& est);

/// Makespan of the ASAP schedule (= the paper's `D`).
Time asapMakespan(const EnhancedGraph& gc);

/// Same makespan from a precomputed EST vector, skipping the Kahn pass.
Time asapMakespan(const EnhancedGraph& gc, const std::vector<Time>& est);

} // namespace cawo
