#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/mapping.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "util/types.hpp"

/// \file enhanced_graph.hpp
/// The communication-enhanced DAG `Gc = (Vc, Ec, ω)` of Section 3.
///
/// Every cross-processor edge (v_i, v_j) ∈ E' of the workflow becomes a
/// fictional *communication task* v_ij of length c(v_i, v_j), executed on a
/// fictional *link processor* for the ordered processor pair
/// (proc(v_i), proc(v_j)). Dependencies (v_i → v_ij) and (v_ij → v_j) are
/// added with zero cost, the fixed ordering of tasks on each compute
/// processor becomes chain edges, and the fixed ordering of communications
/// on each link becomes the chain set E''.
///
/// Only links that carry at least one communication are materialised; the
/// paper explicitly allows setting the static power of a never-used link to
/// zero, which makes the sparse representation cost-identical to the dense
/// P² one. Link processors draw small random powers (paper: uniform in
/// [1, 2]) to introduce mild heterogeneity.

namespace cawo {

/// How link-processor power values are drawn.
struct LinkPowerOptions {
  Power minIdle = 1;
  Power maxIdle = 2;
  Power minWork = 1;
  Power maxWork = 2;
  std::uint64_t seed = 0xCA11AB1EULL;
};

class EnhancedGraph {
public:
  struct Node {
    /// Original task id for compute tasks; kInvalidTask for comm tasks.
    TaskId original = kInvalidTask;
    /// For comm tasks: the endpoints of the original edge.
    TaskId commSrc = kInvalidTask;
    TaskId commDst = kInvalidTask;
    /// Enhanced processor (compute node or link processor).
    ProcId proc = kInvalidProc;
    /// Execution length ω(u) in time units.
    Time len = 0;
  };

  /// Build Gc from a workflow, a platform, and a fixed mapping+ordering.
  ///
  /// \param commPriority Optional per-task priority (e.g. HEFT start times)
  ///   used to order communications that share a link: comm tasks are
  ///   chained by (priority of source, source position, edge index). When
  ///   absent, the source task's position in its processor's order is used.
  static EnhancedGraph build(const TaskGraph& graph, const Platform& platform,
                             const Mapping& mapping,
                             const LinkPowerOptions& linkPower = {},
                             const std::vector<Time>* commPriority = nullptr);

  /// Assemble an enhanced graph directly from parts — used by the exact
  /// solvers, complexity-result reproductions and tests. `procOrders[p]`
  /// must list the nodes of processor p in their fixed execution order;
  /// chain edges between consecutive nodes are added automatically if not
  /// already present.
  static EnhancedGraph fromParts(std::vector<Node> nodes,
                                 std::vector<std::pair<TaskId, TaskId>> edges,
                                 std::vector<Power> procIdle,
                                 std::vector<Power> procWork,
                                 std::vector<std::vector<TaskId>> procOrders);

  /// Number of nodes N = n + |E'|.
  TaskId numNodes() const { return static_cast<TaskId>(nodes_.size()); }

  /// Number of enhanced processors (compute + materialised links).
  ProcId numProcs() const { return static_cast<ProcId>(procIdle_.size()); }

  /// Number of compute processors (ids [0, numRealProcs) are compute).
  ProcId numRealProcs() const { return numRealProcs_; }

  /// Number of materialised link processors.
  ProcId numLinks() const { return numProcs() - numRealProcs_; }

  const Node& node(TaskId u) const { return nodes_[checked(u)]; }
  Time len(TaskId u) const { return lens_[checked(u)]; }
  ProcId procOf(TaskId u) const { return procs_[checked(u)]; }
  bool isCommTask(TaskId u) const {
    return nodes_[checked(u)].original == kInvalidTask;
  }

  /// Total power drawn while node `u` executes: idle + work power of its
  /// processor. Precomputed per node (SoA) for the greedy's consume loop.
  Power drawPower(TaskId u) const { return nodeDraw_[checked(u)]; }

  /// Flat structure-of-arrays mirrors of the per-node hot fields. The `Node`
  /// records stay the canonical store for metadata; the kernels (window
  /// propagation, greedy placement, refinement) index these dense arrays so
  /// inner loops touch 8-byte strides instead of whole Node records.
  std::span<const Time> lens() const { return lens_; }
  std::span<const ProcId> procs() const { return procs_; }
  std::span<const Power> nodeDrawPowers() const { return nodeDraw_; }

  /// Raw CSR adjacency: successors of u are
  /// `succAdjacency()[succOffsets()[u] .. succOffsets()[u+1])` (likewise
  /// preds). Exposed flat so hot loops can keep the base pointers in
  /// registers instead of re-deriving a span per node.
  std::span<const std::size_t> succOffsets() const { return succIndex_; }
  std::span<const TaskId> succAdjacency() const { return succList_; }
  std::span<const std::size_t> predOffsets() const { return predIndex_; }
  std::span<const TaskId> predAdjacency() const { return predList_; }

  /// Topological-position renumbering: `topoPositions()[u]` is the index of
  /// node u in `topoOrder()`. The worklist kernels run entirely in position
  /// space — windows, adjacency and lengths all indexed by position — which
  /// removes the id↔position indirections from the inner loops and gives
  /// neighbouring loads topological locality. `posSucc*`/`posPred*` are the
  /// CSR adjacency renumbered into position space; `lensByPos()` mirrors
  /// `lens()`.
  std::span<const TaskId> topoPositions() const { return topoPos_; }
  std::span<const std::size_t> posSuccOffsets() const { return posSuccIndex_; }
  std::span<const TaskId> posSuccAdjacency() const { return posSuccList_; }
  std::span<const std::size_t> posPredOffsets() const { return posPredIndex_; }
  std::span<const TaskId> posPredAdjacency() const { return posPredList_; }
  std::span<const Time> lensByPos() const { return lensByPos_; }

  Power idlePower(ProcId p) const;
  Power workPower(ProcId p) const;

  /// Σ over all enhanced processors of their idle power — drawn at every
  /// time unit of the horizon regardless of the schedule.
  Power totalIdlePower() const { return totalIdle_; }

  std::span<const TaskId> succs(TaskId u) const;
  std::span<const TaskId> preds(TaskId u) const;

  std::size_t numEdges() const { return edgeSrc_.size(); }

  /// Fixed execution order of the nodes on enhanced processor `p`.
  std::span<const TaskId> procOrder(ProcId p) const;

  /// Topological order of Gc (cached; Gc is immutable once built).
  const std::vector<TaskId>& topoOrder() const { return topo_; }

  /// Sum of node lengths — a lower bound consideration for horizons.
  Time totalLength() const;

  /// Length of the critical path (minimum possible makespan).
  Time criticalPathLength() const;

private:
  std::size_t checked(TaskId u) const;
  void finalize(); // builds CSR adjacency + topo order

  std::vector<Node> nodes_;
  std::vector<Time> lens_;      ///< SoA mirror of Node::len
  std::vector<ProcId> procs_;   ///< SoA mirror of Node::proc
  std::vector<Power> nodeDraw_; ///< idle+work power of the node's processor
  std::vector<TaskId> edgeSrc_, edgeDst_;
  std::vector<Power> procIdle_, procWork_;
  std::vector<std::vector<TaskId>> procOrder_;
  ProcId numRealProcs_ = 0;
  Power totalIdle_ = 0;

  std::vector<std::size_t> succIndex_;
  std::vector<TaskId> succList_;
  std::vector<std::size_t> predIndex_;
  std::vector<TaskId> predList_;
  std::vector<TaskId> topo_;

  // Position-space mirrors (see topoPositions()).
  std::vector<TaskId> topoPos_;
  std::vector<std::size_t> posSuccIndex_, posPredIndex_;
  std::vector<TaskId> posSuccList_, posPredList_;
  std::vector<Time> lensByPos_;
};

} // namespace cawo
