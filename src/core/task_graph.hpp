#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

/// \file task_graph.hpp
/// The workflow DAG `G = (V, E, ω, c)` of Section 3 of the paper.
///
/// Vertices carry a normalised amount of *work* (the actual running time of
/// a task is `ceil(work / speed)` on the processor it is mapped to, matching
/// the paper's normalised vertex weights). Edges carry the amount of *data*
/// that must be communicated if the endpoint tasks are mapped to different
/// processors; network bandwidth is normalised to 1, so the communication
/// time equals the data amount.

namespace cawo {

class TaskGraph {
public:
  struct Edge {
    TaskId src = kInvalidTask;
    TaskId dst = kInvalidTask;
    Data data = 0;
  };

  TaskGraph() = default;

  /// Add a task with the given human-readable name and work amount.
  /// \returns the id of the new task (ids are dense, 0-based).
  TaskId addTask(std::string name, Work work);

  /// Add a precedence edge (src → dst) carrying `data` units of data.
  /// Both endpoints must already exist; self-loops are rejected.
  void addEdge(TaskId src, TaskId dst, Data data = 0);

  /// Number of tasks `n = |V|`.
  TaskId numTasks() const { return static_cast<TaskId>(work_.size()); }

  /// Number of edges `|E|`.
  std::size_t numEdges() const { return edges_.size(); }

  Work work(TaskId v) const { return work_[static_cast<std::size_t>(v)]; }
  const std::string& name(TaskId v) const {
    return names_[static_cast<std::size_t>(v)];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edge indices of `v` (indices into edges()).
  std::span<const std::size_t> outEdges(TaskId v) const;
  /// Incoming edge indices of `v` (indices into edges()).
  std::span<const std::size_t> inEdges(TaskId v) const;

  std::size_t outDegree(TaskId v) const { return outEdges(v).size(); }
  std::size_t inDegree(TaskId v) const { return inEdges(v).size(); }

  /// Total work over all tasks.
  Work totalWork() const;

  /// Kahn topological order; throws PreconditionError if the graph has a
  /// cycle (a workflow must be a DAG).
  std::vector<TaskId> topologicalOrder() const;

  /// True iff the graph contains no directed cycle.
  bool isAcyclic() const;

  /// True if an edge src → dst exists.
  bool hasEdge(TaskId src, TaskId dst) const;

private:
  void checkTask(TaskId v) const;
  void buildAdjacency() const;

  std::vector<std::string> names_;
  std::vector<Work> work_;
  std::vector<Edge> edges_;

  // Lazily built CSR-style adjacency (invalidated on mutation). `mutable`
  // because adjacency is a cache of the edge list, not logical state.
  mutable bool adjacencyValid_ = false;
  mutable std::vector<std::size_t> outIndex_, outList_;
  mutable std::vector<std::size_t> inIndex_, inList_;
};

} // namespace cawo
