#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

/// \file platform.hpp
/// The heterogeneous compute cluster (Section 6.1, Table 1 of the paper).
///
/// A platform is a list of processors, each with a speed (work units per
/// time unit), an idle power draw and an additional working power draw.
/// The paper's two evaluation clusters use six processor types PT1..PT6
/// with 12 (small) or 24 (large) nodes per type; `paperSmall()` /
/// `paperLarge()` build exactly those, and `scaled()` builds
/// proportionally smaller versions for quick experiments.

namespace cawo {

struct ProcessorSpec {
  std::string type;
  std::int64_t speed = 1; ///< work units executed per time unit
  Power idlePower = 0;    ///< consumed every time unit
  Power workPower = 0;    ///< additional draw while executing a task
};

class Platform {
public:
  Platform() = default;

  /// Append a processor; returns its id.
  ProcId addProcessor(ProcessorSpec spec);

  ProcId numProcessors() const {
    return static_cast<ProcId>(procs_.size());
  }

  const ProcessorSpec& proc(ProcId p) const;

  /// Execution time of `work` units on processor `p`: ceil(work / speed),
  /// with a minimum of one time unit for any non-empty task.
  Time execTime(Work work, ProcId p) const;

  /// Sum of idle powers over all (compute) processors.
  Power totalIdlePower() const;

  /// Sum of working powers over all (compute) processors.
  Power totalWorkPower() const;

  /// Largest idle+work power over all processors (used by weighted scores).
  Power maxCombinedPower() const;

  /// Table 1 processor types of the paper (PT1..PT6).
  static const std::vector<ProcessorSpec>& paperTypes();

  /// The paper's small cluster: 12 nodes of each of the 6 types (72 nodes).
  static Platform paperSmall();

  /// The paper's large cluster: 24 nodes of each of the 6 types (144 nodes).
  static Platform paperLarge();

  /// `nodesPerType` nodes of each of the 6 paper types.
  static Platform scaled(int nodesPerType);

  /// A homogeneous platform (used by complexity-result reproductions).
  static Platform uniform(int numProcs, std::int64_t speed, Power idle,
                          Power work);

private:
  std::vector<ProcessorSpec> procs_;
};

} // namespace cawo
