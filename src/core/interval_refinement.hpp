#pragma once

#include <cstdint>
#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file interval_refinement.hpp
/// The finer interval subdivision of Section 5.2 ("Subdivision of the
/// intervals"), motivated by the E-schedule lemma of the uniprocessor case.
///
/// On each (enhanced) processor, every block of at most `k` consecutive
/// tasks (in the fixed per-processor order) is tentatively aligned so that
/// the block starts or ends at one of the original interval boundaries; the
/// implied start time of every task of the block becomes a candidate cut
/// point. The refined interval set is the original profile subdivided at
/// all cut points, budgets inherited. The paper uses k = 3.

namespace cawo {

/// Reusable storage for the refinement kernel: the dense mark table (one
/// byte per time unit of horizon) survives across calls, so repeated
/// refinements — different block sizes on one context, or the online
/// engine's re-solve loop — stop re-allocating and re-faulting it.
/// `SolveContext` owns one and threads it through `refinedIntervals`.
struct RefinementScratch {
  std::vector<std::uint8_t> marks;
};

/// Candidate cut points in (0, horizon), sorted and deduplicated.
/// `threads` parallelises cut generation across processors (0 = hardware);
/// the result is bit-identical for every thread count — duplicates are
/// folded through an order-independent mark table (or a post-merge sort on
/// the sparse fallback path), never through arrival order.
/// `scratch` (optional) supplies the reusable mark table.
std::vector<Time> refinementCutPoints(const EnhancedGraph& gc,
                                      const PowerProfile& profile, int k,
                                      unsigned threads = 1,
                                      RefinementScratch* scratch = nullptr);

/// The refined interval list: the profile's intervals split at every cut
/// point, budgets inherited from the containing original interval.
std::vector<Interval> refineIntervals(const EnhancedGraph& gc,
                                      const PowerProfile& profile, int k,
                                      unsigned threads = 1,
                                      RefinementScratch* scratch = nullptr);

/// Split the given contiguous interval list at the given sorted cut points.
/// Exposed separately for testing.
std::vector<Interval> splitIntervalsAt(std::span<const Interval> intervals,
                                       const std::vector<Time>& cuts);

} // namespace cawo
