#include "core/budget_tree.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

/// Treap node. `maxBudget` aggregates the subtree *including* pending lazy
/// additions of descendants but excluding this node's own `lazy` (which is
/// owed to the whole subtree by the parent chain).
struct BudgetTree::Node {
  Time key;        // segment begin
  Power budget;    // own budget (lazy of ancestors not yet applied)
  Power maxBudget; // max over subtree (own lazy applied by pushDown)
  Power lazy = 0;  // pending addition for the whole subtree
  std::uint64_t prio;
  Node* left = nullptr;
  Node* right = nullptr;

  Node(Time k, Power b, std::uint64_t p)
      : key(k), budget(b), maxBudget(b), prio(p) {}
};

struct BudgetTree::Impl {
  Node* root = nullptr;
  Rng rng;
  std::size_t count = 0;

  explicit Impl(std::uint64_t seed) : rng(seed) {}

  ~Impl() { destroy(root); }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  static Power maxOf(Node* n) {
    return n != nullptr ? n->maxBudget + n->lazy
                        : std::numeric_limits<Power>::min();
  }

  static void pull(Node* n) {
    n->maxBudget = std::max({n->budget, maxOf(n->left), maxOf(n->right)});
  }

  static void push(Node* n) {
    if (n->lazy == 0) return;
    n->budget += n->lazy;
    n->maxBudget += n->lazy;
    if (n->left != nullptr) n->left->lazy += n->lazy;
    if (n->right != nullptr) n->right->lazy += n->lazy;
    n->lazy = 0;
  }

  /// Split into keys < key (lo) and keys >= key (hi).
  static void split(Node* n, Time key, Node*& lo, Node*& hi) {
    if (n == nullptr) {
      lo = hi = nullptr;
      return;
    }
    push(n);
    if (n->key < key) {
      split(n->right, key, n->right, hi);
      lo = n;
      pull(lo);
    } else {
      split(n->left, key, lo, n->left);
      hi = n;
      pull(hi);
    }
  }

  static Node* merge(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->prio > b->prio) {
      push(a);
      a->right = merge(a->right, b);
      pull(a);
      return a;
    }
    push(b);
    b->left = merge(a, b->left);
    pull(b);
    return b;
  }

  /// Largest key <= t, with its (lazy-adjusted) budget.
  Node* floorNode(Time t, Power& budgetOut) const {
    Node* n = root;
    Node* best = nullptr;
    Power acc = 0;
    Power bestBudget = 0;
    while (n != nullptr) {
      acc += n->lazy;
      if (n->key <= t) {
        best = n;
        bestBudget = n->budget + acc;
        n = n->right;
      } else {
        n = n->left;
      }
    }
    budgetOut = bestBudget;
    return best;
  }

  /// Earliest node with maximum budget in subtree (after push-downs).
  static void argmaxEarliest(Node* n, Power target, bool& done, Time& key) {
    if (n == nullptr || done) return;
    push(n);
    if (maxOf(n->left) == target) {
      argmaxEarliest(n->left, target, done, key);
      if (done) return;
    }
    if (n->budget == target) {
      key = n->key;
      done = true;
      return;
    }
    argmaxEarliest(n->right, target, done, key);
  }
};

BudgetTree::BudgetTree(std::vector<Time> begins, std::vector<Power> budgets,
                       Time horizon, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(seed)), horizon_(horizon) {
  CAWO_REQUIRE(begins.size() == budgets.size(), "begins/budgets mismatch");
  CAWO_REQUIRE(!begins.empty(), "need at least one segment");
  CAWO_REQUIRE(begins.front() == 0, "first segment must start at 0");
  for (std::size_t i = 1; i < begins.size(); ++i)
    CAWO_REQUIRE(begins[i] > begins[i - 1], "begins must be increasing");
  CAWO_REQUIRE(begins.back() < horizon, "last segment begin beyond horizon");

  // Build a balanced treap directly from the sorted sequence.
  for (std::size_t i = 0; i < begins.size(); ++i) {
    Node* node = new Node(begins[i], budgets[i], impl_->rng.next());
    impl_->root = Impl::merge(impl_->root, node);
  }
  impl_->count = begins.size();
}

BudgetTree::~BudgetTree() = default;
BudgetTree::BudgetTree(BudgetTree&&) noexcept = default;
BudgetTree& BudgetTree::operator=(BudgetTree&&) noexcept = default;

void BudgetTree::splitAt(Time t) {
  if (t <= 0 || t >= horizon_) return;
  Power budget = 0;
  Node* floor = impl_->floorNode(t, budget);
  CAWO_ASSERT(floor != nullptr, "no segment contains t");
  if (floor->key == t) return;
  // Insert a new segment at t with the same budget as its container.
  Node *lo = nullptr, *hi = nullptr;
  Impl::split(impl_->root, t, lo, hi);
  Node* node = new Node(t, budget, impl_->rng.next());
  impl_->root = Impl::merge(Impl::merge(lo, node), hi);
  ++impl_->count;
}

void BudgetTree::addRange(Time a, Time b, Power delta) {
  if (a >= b || delta == 0) return;
  Node *lo = nullptr, *mid = nullptr, *hi = nullptr;
  Impl::split(impl_->root, a, lo, mid);
  Impl::split(mid, b, mid, hi);
  if (mid != nullptr) mid->lazy += delta;
  impl_->root = Impl::merge(Impl::merge(lo, mid), hi);
}

void BudgetTree::consume(Time a, Time b, Power amount) {
  if (a >= b || amount == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "consume outside horizon");
  splitAt(a);
  splitAt(b);
  addRange(a, b, -amount);
}

BudgetTree::MaxResult BudgetTree::maxInRange(Time lo, Time hi) const {
  MaxResult res;
  if (lo > hi) return res;
  Node *l = nullptr, *m = nullptr, *r = nullptr;
  Impl::split(impl_->root, lo, l, m);
  Impl::split(m, hi + 1, m, r);
  if (m != nullptr) {
    res.found = true;
    res.budget = Impl::maxOf(m);
    bool done = false;
    Impl::argmaxEarliest(m, res.budget, done, res.begin);
    CAWO_ASSERT(done, "argmax not found despite non-empty range");
  }
  impl_->root = Impl::merge(Impl::merge(l, m), r);
  return res;
}

Power BudgetTree::budgetAt(Time t) const {
  CAWO_REQUIRE(t >= 0 && t < horizon_, "time outside horizon");
  Power budget = 0;
  Node* n = impl_->floorNode(t, budget);
  CAWO_ASSERT(n != nullptr, "no segment contains t");
  return budget;
}

std::size_t BudgetTree::size() const { return impl_->count; }

std::vector<std::pair<Time, Power>> BudgetTree::dump() const {
  std::vector<std::pair<Time, Power>> out;
  out.reserve(impl_->count);
  // Iterative in-order walk with explicit lazy accumulation.
  struct Frame {
    Node* node;
    Power acc;
    bool expanded;
  };
  std::vector<Frame> stack;
  if (impl_->root != nullptr) stack.push_back({impl_->root, 0, false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.node == nullptr) continue;
    const Power acc = f.acc + f.node->lazy;
    if (f.expanded) {
      out.emplace_back(f.node->key, f.node->budget + f.acc + f.node->lazy);
      continue;
    }
    // In-order: right first on the stack, then self, then left.
    if (f.node->right != nullptr) stack.push_back({f.node->right, acc, false});
    stack.push_back({f.node, f.acc, true});
    if (f.node->left != nullptr) stack.push_back({f.node->left, acc, false});
  }
  return out;
}

} // namespace cawo
