#include "core/budget_tree.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/require.hpp"

namespace cawo {

namespace {
constexpr Power kMinPower = std::numeric_limits<Power>::min();

/// First index in [0, n) with a[i] > t (in-slab upper bound).
std::size_t ub(const Time* a, std::size_t n, Time t) {
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 0) {
    const std::size_t half = len / 2;
    if (a[lo + half] <= t) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

} // namespace

void BudgetTree::build(std::span<const Time> begins,
                       std::span<const Power> budgets) {
  CAWO_REQUIRE(begins.size() == budgets.size(), "begins/budgets mismatch");
  CAWO_REQUIRE(!begins.empty(), "need at least one segment");
  CAWO_REQUIRE(begins.front() == 0, "first segment must start at 0");
  for (std::size_t i = 1; i < begins.size(); ++i)
    CAWO_REQUIRE(begins[i] > begins[i - 1], "begins must be increasing");
  CAWO_REQUIRE(begins.back() < horizon_, "last segment begin beyond horizon");

  // Fill blocks half-full so the first splits per block are absorbed by
  // free slack instead of immediately splitting slabs.
  constexpr std::size_t fill = static_cast<std::size_t>(kBlockCap) / 2;
  const std::size_t n = begins.size();
  const std::size_t numBlocks = (n + fill - 1) / fill;
  blocks_.reserve(numBlocks + 8);
  keyArena_.resize(numBlocks * kBlockCap);
  budgetArena_.resize(numBlocks * kBlockCap);
  for (std::size_t bi = 0, i = 0; bi < numBlocks; ++bi, i += fill) {
    const std::size_t cnt = std::min(fill, n - i);
    Block b;
    b.firstKey = begins[i];
    b.count = static_cast<std::int32_t>(cnt);
    b.slot = static_cast<std::int32_t>(bi);
    blocks_.push_back(b);
    std::copy_n(begins.data() + i, cnt, keys(blocks_.back()));
    std::copy_n(budgets.data() + i, cnt, this->budgets(blocks_.back()));
    recomputeMax(blocks_.back());
  }
  size_ = n;
}

BudgetTree::BudgetTree(std::vector<Time> begins, std::vector<Power> budgets,
                       Time horizon, std::uint64_t /*seed*/)
    : horizon_(horizon) {
  build(begins, budgets);
}

BudgetTree::BudgetTree(std::span<const Time> begins,
                       std::span<const Power> budgets, Time horizon)
    : horizon_(horizon) {
  build(begins, budgets);
}

void BudgetTree::recomputeMax(Block& b) {
  const Power* vals = budgets(b);
  Power m = kMinPower;
  std::int32_t arg = 0;
  for (std::int32_t k = 0; k < b.count; ++k) {
    if (vals[k] > m) {
      m = vals[k];
      arg = k;
    }
  }
  b.maxBudget = m;
  b.argmax = arg;
}

std::size_t BudgetTree::findBlock(Time t) const {
  // Largest directory index with firstKey <= t (branchless; block 0 has
  // firstKey == 0, so for t >= 0 the answer always exists).
  const Block* base = blocks_.data();
  std::size_t lo = 0;
  std::size_t n = blocks_.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    lo = base[lo + half].firstKey <= t ? lo + half : lo;
    n -= half;
  }
  return lo;
}

void BudgetTree::splitBlock(std::size_t bi) {
  const std::int32_t newSlot =
      static_cast<std::int32_t>(keyArena_.size() / kBlockCap);
  keyArena_.resize(keyArena_.size() + kBlockCap);
  budgetArena_.resize(budgetArena_.size() + kBlockCap);

  Block& b = blocks_[bi];
  const std::int32_t lowerCnt = b.count / 2;
  const std::int32_t upperCnt = b.count - lowerCnt;
  Block nb;
  nb.slot = newSlot;
  nb.count = upperCnt;
  nb.lazy = b.lazy;
  std::copy_n(keys(b) + lowerCnt, upperCnt,
              keyArena_.data() + static_cast<std::size_t>(newSlot) * kBlockCap);
  std::copy_n(budgets(b) + lowerCnt, upperCnt,
              budgetArena_.data() +
                  static_cast<std::size_t>(newSlot) * kBlockCap);
  nb.firstKey = keys(nb)[0];
  recomputeMax(nb);
  b.count = lowerCnt;
  recomputeMax(b);
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(bi) + 1, nb);
}

std::size_t BudgetTree::splitAtIdxFrom(std::size_t bi, Time t) {
  if (t <= 0) return 0;
  if (t >= horizon_) return bi;
  const std::size_t nb = blocks_.size();
  while (bi + 1 < nb && blocks_[bi + 1].firstKey <= t) ++bi;
  {
    Block& b = blocks_[bi];
    const Time* k = keys(b);
    const std::size_t pos = ub(k, static_cast<std::size_t>(b.count), t);
    // pos >= 1: firstKey <= t. The floor entry is pos-1; an exact hit means
    // the boundary already exists.
    if (k[pos - 1] == t) return bi;
    if (b.count < kBlockCap) {
      Time* km = keys(b);
      Power* vm = budgets(b);
      std::copy_backward(km + pos, km + b.count, km + b.count + 1);
      std::copy_backward(vm + pos, vm + b.count, vm + b.count + 1);
      km[pos] = t;
      vm[pos] = vm[pos - 1]; // the new segment inherits the floor's budget
      ++b.count;             // maxBudget unchanged: the value already existed
      ++size_;
      // The earliest occurrence of maxBudget shifts right with the insert;
      // the inserted copy can never *become* the earliest (its source sits
      // immediately to its left).
      if (static_cast<std::size_t>(b.argmax) >= pos) ++b.argmax;
      return bi;
    }
  }
  splitBlock(bi);
  if (blocks_[bi + 1].firstKey <= t) ++bi;
  Block& b = blocks_[bi];
  const std::size_t pos = ub(keys(b), static_cast<std::size_t>(b.count), t);
  Time* km = keys(b);
  Power* vm = budgets(b);
  std::copy_backward(km + pos, km + b.count, km + b.count + 1);
  std::copy_backward(vm + pos, vm + b.count, vm + b.count + 1);
  km[pos] = t;
  vm[pos] = vm[pos - 1];
  ++b.count;
  ++size_;
  if (static_cast<std::size_t>(b.argmax) >= pos) ++b.argmax;
  return bi;
}

void BudgetTree::splitAt(Time t) {
  if (t <= 0 || t >= horizon_) return;
  (void)splitAtIdxFrom(findBlock(t), t);
}

void BudgetTree::addRange(Time a, Time b, Power delta) {
  if (a >= b || delta == 0) return;
  addRangeFrom(a <= 0 ? 0 : findBlock(a), a, b, delta);
}

void BudgetTree::addRangeFrom(std::size_t start, Time a, Time b,
                              Power delta) {
  const Time hi = b - 1; // keys in [a, hi]
  const std::size_t nb = blocks_.size();
  for (std::size_t bi = start; bi < nb && blocks_[bi].firstKey <= hi; ++bi) {
    Block& blk = blocks_[bi];
    // Full-coverage test from the directory alone where possible: the
    // next block's firstKey bounds this block's last key from above, so
    // interior blocks never touch their slab.
    const bool rightIn = bi + 1 < nb ? blocks_[bi + 1].firstKey <= hi + 1
                                     : keys(blk)[blk.count - 1] <= hi;
    if (a <= blk.firstKey && rightIn) {
      blk.lazy += delta; // fully covered
      continue;
    }
    const Time* k = keys(blk);
    const std::size_t from =
        a <= blk.firstKey ? 0 : ub(k, static_cast<std::size_t>(blk.count),
                                   a - 1);
    const std::size_t to =
        k[blk.count - 1] <= hi ? static_cast<std::size_t>(blk.count)
                               : ub(k, static_cast<std::size_t>(blk.count),
                                    hi);
    if (from >= to) continue;
    Power* vals = budgets(blk);
    // Incremental block max: track the touched range's (max, earliest
    // index) before and after the add. If the block max lived outside the
    // touched range it is unchanged; only when the touched range held it
    // does the block need a full rescan (and even then the touched part is
    // already known).
    Power oldTouchedMax = kMinPower;
    Power newTouchedMax = kMinPower;
    std::size_t newArg = from;
    for (std::size_t j = from; j < to; ++j) {
      oldTouchedMax = std::max(oldTouchedMax, vals[j]);
      vals[j] += delta;
      if (vals[j] > newTouchedMax) {
        newTouchedMax = vals[j];
        newArg = j;
      }
    }
    if (newTouchedMax > blk.maxBudget) {
      // Untouched entries are all <= the old max < newTouchedMax, so the
      // earliest witness lives inside the touched range.
      blk.maxBudget = newTouchedMax;
      blk.argmax = static_cast<std::int32_t>(newArg);
    } else if (oldTouchedMax == blk.maxBudget) {
      // The touched range held the block max; recompute it. Pure max first
      // (this loop vectorizes), earliest witness second (early exit: the
      // scan stops at the new argmax).
      Power m = newTouchedMax;
      for (std::size_t j = 0; j < from; ++j) m = std::max(m, vals[j]);
      for (std::size_t j = to; j < static_cast<std::size_t>(blk.count); ++j)
        m = std::max(m, vals[j]);
      blk.maxBudget = m;
      std::size_t arg = 0;
      while (vals[arg] != m) ++arg;
      blk.argmax = static_cast<std::int32_t>(arg);
    } else if (newTouchedMax == blk.maxBudget &&
               static_cast<std::int32_t>(newArg) < blk.argmax) {
      // A positive delta can lift a touched entry up to the (unchanged)
      // block max at an earlier index than the current witness.
      blk.argmax = static_cast<std::int32_t>(newArg);
    }
  }
}

void BudgetTree::consume(Time a, Time b, Power amount) {
  if (a >= b || amount == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "consume outside horizon");
  consumeFrom(a <= 0 ? 0 : findBlock(a), a, b, amount);
}

void BudgetTree::consume(Time a, Time b, Power amount, std::uint32_t hint) {
  if (a >= b || amount == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "consume outside horizon");
  CAWO_ASSERT(hint < blocks_.size() && blocks_[hint].firstKey <= a,
              "consume: stale hint");
  consumeFrom(hint, a, b, amount);
}

void BudgetTree::consumeFrom(std::size_t bi, Time a, Time b, Power amount) {
  // Fused walk: one directory search total. The split at a returns a's
  // block; b lies at most a few blocks later, so its split walks forward
  // from there; the subtraction then reuses a's position. (If the split at
  // b divides a's own block, the walk may start one block early; the
  // per-block from/to clamps make that a no-op.)
  const std::size_t bia = splitAtIdxFrom(bi, a);
  (void)splitAtIdxFrom(bia, b);
  addRangeFrom(bia, a, b, -amount);
}

BudgetTree::MaxResult BudgetTree::maxInRange(Time lo, Time hi) const {
  MaxResult res;
  if (lo > hi) return res;
  Power best = kMinPower;
  Time bestKey = 0;
  std::uint32_t bestBi = 0;
  // Left-to-right scan with a strictly-greater update: ties resolve to the
  // earliest segment by construction. Fully covered blocks are answered by
  // their summary alone (interior blocks prove coverage from the next
  // block's firstKey, and `argmax` names the earliest witness without a
  // slab scan); only the (≤2) edge blocks are descended into.
  const std::size_t nb = blocks_.size();
  for (std::size_t bi = lo <= 0 ? 0 : findBlock(lo);
       bi < nb && blocks_[bi].firstKey <= hi; ++bi) {
    const Block& blk = blocks_[bi];
    const bool rightIn = bi + 1 < nb ? blocks_[bi + 1].firstKey <= hi + 1
                                     : keys(blk)[blk.count - 1] <= hi;
    if (lo <= blk.firstKey && rightIn) {
      const Power m = blk.maxBudget + blk.lazy;
      if (m > best) {
        best = m;
        bestKey = keys(blk)[blk.argmax];
        bestBi = static_cast<std::uint32_t>(bi);
      }
      continue;
    }
    const Time* k = keys(blk);
    const std::size_t from =
        lo <= blk.firstKey ? 0 : ub(k, static_cast<std::size_t>(blk.count),
                                    lo - 1);
    const std::size_t to =
        k[blk.count - 1] <= hi ? static_cast<std::size_t>(blk.count)
                               : ub(k, static_cast<std::size_t>(blk.count),
                                    hi);
    const Power* vals = budgets(blk);
    for (std::size_t j = from; j < to; ++j) {
      const Power v = vals[j] + blk.lazy;
      if (v > best) {
        best = v;
        bestKey = k[j];
        bestBi = static_cast<std::uint32_t>(bi);
      }
    }
  }
  if (best == kMinPower) return res;
  res.found = true;
  res.begin = bestKey;
  res.budget = best;
  res.block = bestBi;
  return res;
}

Power BudgetTree::budgetAt(Time t) const {
  CAWO_REQUIRE(t >= 0 && t < horizon_, "time outside horizon");
  const Block& b = blocks_[findBlock(t)];
  const std::size_t pos = ub(keys(b), static_cast<std::size_t>(b.count), t);
  CAWO_ASSERT(pos >= 1, "no segment contains t");
  return budgets(b)[pos - 1] + b.lazy;
}

std::vector<std::pair<Time, Power>> BudgetTree::dump() const {
  std::vector<std::pair<Time, Power>> out;
  out.reserve(size_);
  for (const Block& b : blocks_) {
    const Time* k = keys(b);
    const Power* v = budgets(b);
    for (std::int32_t j = 0; j < b.count; ++j)
      out.emplace_back(k[j], v[j] + b.lazy);
  }
  return out;
}

} // namespace cawo
