#include "core/budget_tree.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

/// Treap node, stored by index in a contiguous arena (`Impl::pool`) instead
/// of heap-allocated with pointers: segment queries walk O(log S) nodes per
/// placement, and with millions of refined subintervals the walk is memory
/// bound — int32 links into one flat vector keep it on a handful of cache
/// lines instead of chasing malloc'd pointers all over the heap.
///
/// `maxBudget` aggregates the subtree *including* pending lazy additions of
/// descendants but excluding this node's own `lazy` (which is owed to the
/// whole subtree by the parent chain).
struct BudgetTree::Node {
  Time key;        // segment begin
  Power budget;    // own budget (lazy of ancestors not yet applied)
  Power maxBudget; // max over subtree (own lazy applied by the parent chain)
  Power lazy = 0;  // pending addition for the whole subtree
  std::uint64_t prio;
  std::int32_t left = -1;
  std::int32_t right = -1;

  Node(Time k, Power b, std::uint64_t p)
      : key(k), budget(b), maxBudget(b), prio(p) {}
};

namespace {
constexpr std::int32_t kNil = -1;
constexpr Power kMinPower = std::numeric_limits<Power>::min();
/// Largest horizon for which the boundary-presence bitmap is kept
/// (512 KiB of bits); beyond it `splitAt` simply always descends.
constexpr Time kBoundaryBitmapLimit = Time(1) << 22;
} // namespace

struct BudgetTree::Impl {
  std::vector<Node> pool; ///< bump arena: nodes are appended, never freed
  std::int32_t root = kNil;
  std::vector<std::int32_t> pathScratch; ///< splitAt descent path, reused
  /// Boundary-presence bitmap over the horizon (only kept for horizons up
  /// to kBoundaryBitmapLimit): most `splitAt` calls hit an existing
  /// boundary, and a one-bit test is far cheaper than the O(log S) descent
  /// that would discover the same thing.
  std::vector<std::uint64_t> boundaryBits;
  Rng rng;

  explicit Impl(std::uint64_t seed) : rng(seed) {}

  Node& at(std::int32_t i) { return pool[static_cast<std::size_t>(i)]; }
  const Node& at(std::int32_t i) const {
    return pool[static_cast<std::size_t>(i)];
  }

  /// Effective maximum of a subtree as seen by its parent (own lazy
  /// applied, ancestor lazy not).
  Power maxOf(std::int32_t i) const {
    return i != kNil ? at(i).maxBudget + at(i).lazy : kMinPower;
  }

  void pull(std::int32_t i) {
    Node& n = at(i);
    n.maxBudget = std::max({n.budget, maxOf(n.left), maxOf(n.right)});
  }

  void push(std::int32_t i) {
    Node& n = at(i);
    if (n.lazy == 0) return;
    n.budget += n.lazy;
    n.maxBudget += n.lazy;
    if (n.left != kNil) at(n.left).lazy += n.lazy;
    if (n.right != kNil) at(n.right).lazy += n.lazy;
    n.lazy = 0;
  }

  /// Largest key <= t, with its (lazy-adjusted) budget. Read-only.
  std::int32_t floorNode(Time t, Power& budgetOut) const {
    std::int32_t i = root;
    std::int32_t best = kNil;
    Power acc = 0;
    Power bestBudget = 0;
    while (i != kNil) {
      const Node& n = at(i);
      acc += n.lazy;
      if (n.key <= t) {
        best = i;
        bestBudget = n.budget + acc;
        i = n.right;
      } else {
        i = n.left;
      }
    }
    budgetOut = bestBudget;
    return best;
  }

  /// (max effective budget, earliest key achieving it) over keys in
  /// [lo, hi] — one read-only top-down descent. (klo, khi) are the
  /// inclusive key bounds implied by the BST path, so fully covered
  /// subtrees still need their earliest argmax resolved, which
  /// `argmaxInSubtree` does by chasing `maxBudget` down, left first.
  /// `acc` carries the ancestors' unapplied lazy. The reduce is
  /// order-preserving: an in-order scan with a strictly-greater update,
  /// so ties always resolve to the earliest segment no matter how the
  /// subtree visits interleave.
  /// Result of `rangeBest`: when the final maximum came from a fully
  /// covered subtree, the earliest witness inside it is not yet resolved —
  /// `subtree`/`subAcc` defer that to a single `argmaxInSubtree` descent
  /// after the scan (instead of one per improvement).
  struct RangeBest {
    Power budget = kMinPower;
    Time key = 0;
    std::int32_t subtree = kNil;
    Power subAcc = 0;
  };

  void argmaxInSubtree(std::int32_t i, Power acc, Power target,
                       Time& out) const {
    for (;;) {
      const Node& n = at(i);
      acc += n.lazy;
      if (n.left != kNil && at(n.left).maxBudget + at(n.left).lazy + acc ==
                                target) {
        i = n.left;
        continue;
      }
      if (n.budget + acc == target) {
        out = n.key;
        return;
      }
      CAWO_ASSERT(n.right != kNil, "subtree max not found");
      i = n.right;
    }
  }

  void rangeBest(std::int32_t i, Time lo, Time hi, Power acc, Time klo,
                 Time khi, RangeBest& best) const {
    if (i == kNil || lo > khi || hi < klo) return;
    const Node& n = at(i);
    acc += n.lazy;
    if (lo <= klo && khi <= hi) {
      // Fully covered: the subtree aggregate answers the max. The reduce
      // is order-preserving — an in-order scan with a strictly-greater
      // update — so ties always resolve to the earliest candidate no
      // matter how the visits nest; the earliest witness *within* the
      // winning subtree is resolved once, after the scan.
      const Power subMax = n.maxBudget + acc;
      if (subMax > best.budget) {
        best.budget = subMax;
        best.subtree = i;
        best.subAcc = acc - n.lazy;
      }
      return;
    }
    if (lo < n.key) rangeBest(n.left, lo, hi, acc, klo, n.key - 1, best);
    if (n.key >= lo && n.key <= hi && n.budget + acc > best.budget) {
      best.budget = n.budget + acc;
      best.key = n.key;
      best.subtree = kNil;
    }
    if (hi > n.key) rangeBest(n.right, lo, hi, acc, n.key + 1, khi, best);
  }

  /// Add `delta` to every key in [lo, hi] — top-down with implied key
  /// bounds, marking fully covered subtrees lazily. The structure is not
  /// modified, only values, so iterators/indices stay stable.
  void addRange(std::int32_t i, Time lo, Time hi, Power delta, Time klo,
                Time khi) {
    if (i == kNil || lo > khi || hi < klo) return;
    if (lo <= klo && khi <= hi) {
      at(i).lazy += delta;
      return;
    }
    Node& n = at(i);
    if (n.key >= lo && n.key <= hi) n.budget += delta;
    const Time key = n.key;
    addRange(n.left, lo, hi, delta, klo, key - 1);
    addRange(n.right, lo, hi, delta, key + 1, khi);
    pull(i);
  }

  /// Restore `maxBudget` bottom-up after the linear-time build.
  void pullAll(std::int32_t i) {
    if (i == kNil) return;
    pullAll(at(i).left);
    pullAll(at(i).right);
    pull(i);
  }
};

BudgetTree::BudgetTree(std::vector<Time> begins, std::vector<Power> budgets,
                       Time horizon, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(seed)), horizon_(horizon) {
  CAWO_REQUIRE(begins.size() == budgets.size(), "begins/budgets mismatch");
  CAWO_REQUIRE(!begins.empty(), "need at least one segment");
  CAWO_REQUIRE(begins.front() == 0, "first segment must start at 0");
  for (std::size_t i = 1; i < begins.size(); ++i)
    CAWO_REQUIRE(begins[i] > begins[i - 1], "begins must be increasing");
  CAWO_REQUIRE(begins.back() < horizon, "last segment begin beyond horizon");

  // O(S) treap construction from the sorted sequence: keep the rightmost
  // spine on a stack and attach each new maximum-priority prefix as the
  // left child of the incoming node (the Cartesian-tree build). One
  // contiguous arena allocation replaces S individual `new`s.
  impl_->pool.reserve(begins.size() + 64);
  std::vector<std::int32_t> spine;
  spine.reserve(64);
  for (std::size_t i = 0; i < begins.size(); ++i) {
    const auto node = static_cast<std::int32_t>(impl_->pool.size());
    impl_->pool.emplace_back(begins[i], budgets[i], impl_->rng.next());
    std::int32_t last = kNil;
    while (!spine.empty() &&
           impl_->at(spine.back()).prio < impl_->at(node).prio) {
      last = spine.back();
      spine.pop_back();
    }
    impl_->at(node).left = last;
    if (!spine.empty()) impl_->at(spine.back()).right = node;
    spine.push_back(node);
  }
  impl_->root = spine.front();
  impl_->pullAll(impl_->root);

  if (horizon <= kBoundaryBitmapLimit) {
    impl_->boundaryBits.assign(static_cast<std::size_t>(horizon) / 64 + 1, 0);
    for (const Node& n : impl_->pool)
      impl_->boundaryBits[static_cast<std::size_t>(n.key) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(n.key) & 63);
  }
}

BudgetTree::~BudgetTree() = default;
BudgetTree::BudgetTree(BudgetTree&&) noexcept = default;
BudgetTree& BudgetTree::operator=(BudgetTree&&) noexcept = default;

void BudgetTree::splitAt(Time t) {
  if (t <= 0 || t >= horizon_) return;
  Impl& I = *impl_;
  if (!I.boundaryBits.empty()) {
    const auto ut = static_cast<std::size_t>(t);
    std::uint64_t& word = I.boundaryBits[ut >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (ut & 63);
    if (word & bit) return; // boundary already exists — skip the descent
    word |= bit;
  }
  // Single descent along the BST search path for t, pushing lazy down as
  // we go. The path visits the floor of t (the last node with key < t
  // where the descent turns right), so its budget — the budget the new
  // segment inherits — is captured in passing; a key == t hit aborts with
  // values observationally unchanged (push only materialises pending
  // lazy). The new node is attached as a leaf and rotated up while its
  // heap priority demands, the expected-O(1) treap insertion.
  auto& path = I.pathScratch;
  path.clear();
  std::int32_t i = I.root;
  Power floorBudget = 0;
  bool haveFloor = false;
  while (i != kNil) {
    I.push(i);
    const Node& n = I.at(i);
    if (n.key == t) return; // already a boundary
    path.push_back(i);
    if (n.key < t) {
      floorBudget = n.budget;
      haveFloor = true;
      i = n.right;
    } else {
      i = n.left;
    }
  }
  CAWO_ASSERT(haveFloor, "no segment contains t");
  const auto node = static_cast<std::int32_t>(I.pool.size());
  I.pool.emplace_back(t, floorBudget, I.rng.next());
  {
    Node& leafParent = I.at(path.back());
    (t < leafParent.key ? leafParent.left : leafParent.right) = node;
  }

  std::size_t d = path.size();
  while (d > 0) {
    const std::int32_t pi = path[d - 1];
    if (I.at(node).prio <= I.at(pi).prio) {
      // Heap order satisfied — repair the aggregates of the remaining
      // ancestors and stop.
      for (std::size_t k = d; k > 0; --k) I.pull(path[k - 1]);
      return;
    }
    // Rotate `node` above its parent. Both have zero lazy (pushed on the
    // way down / fresh), so the rotation is value-exact; re-parented
    // subtrees keep their own pending lazy.
    Node& p = I.at(pi);
    Node& c = I.at(node);
    if (p.left == node) {
      p.left = c.right;
      c.right = pi;
    } else {
      p.right = c.left;
      c.left = pi;
    }
    I.pull(pi);
    I.pull(node);
    --d;
    if (d == 0) {
      I.root = node;
    } else {
      Node& g = I.at(path[d - 1]);
      (g.left == pi ? g.left : g.right) = node;
    }
  }
}

void BudgetTree::addRange(Time a, Time b, Power delta) {
  if (a >= b || delta == 0) return;
  impl_->addRange(impl_->root, a, b - 1, delta,
                  std::numeric_limits<Time>::min(),
                  std::numeric_limits<Time>::max());
}

void BudgetTree::consume(Time a, Time b, Power amount) {
  if (a >= b || amount == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "consume outside horizon");
  splitAt(a);
  splitAt(b);
  addRange(a, b, -amount);
}

BudgetTree::MaxResult BudgetTree::maxInRange(Time lo, Time hi) const {
  MaxResult res;
  if (lo > hi) return res;
  Impl::RangeBest best;
  impl_->rangeBest(impl_->root, lo, hi, 0, std::numeric_limits<Time>::min(),
                   std::numeric_limits<Time>::max(), best);
  if (best.budget == kMinPower) return res;
  if (best.subtree != kNil)
    impl_->argmaxInSubtree(best.subtree, best.subAcc, best.budget, best.key);
  res.found = true;
  res.budget = best.budget;
  res.begin = best.key;
  return res;
}

Power BudgetTree::budgetAt(Time t) const {
  CAWO_REQUIRE(t >= 0 && t < horizon_, "time outside horizon");
  Power budget = 0;
  const std::int32_t n = impl_->floorNode(t, budget);
  CAWO_ASSERT(n != kNil, "no segment contains t");
  return budget;
}

std::size_t BudgetTree::size() const { return impl_->pool.size(); }

std::vector<std::pair<Time, Power>> BudgetTree::dump() const {
  std::vector<std::pair<Time, Power>> out;
  out.reserve(impl_->pool.size());
  // Iterative in-order walk with explicit lazy accumulation.
  struct Frame {
    std::int32_t node;
    Power acc;
    bool expanded;
  };
  std::vector<Frame> stack;
  if (impl_->root != kNil) stack.push_back({impl_->root, 0, false});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node == kNil) continue;
    const Node& n = impl_->at(f.node);
    const Power acc = f.acc + n.lazy;
    if (f.expanded) {
      out.emplace_back(n.key, n.budget + acc);
      continue;
    }
    // In-order: right first on the stack, then self, then left.
    if (n.right != kNil) stack.push_back({n.right, acc, false});
    stack.push_back({f.node, f.acc, true});
    if (n.left != kNil) stack.push_back({n.left, acc, false});
  }
  return out;
}

} // namespace cawo
