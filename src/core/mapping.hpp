#pragma once

#include <span>
#include <vector>

#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "util/types.hpp"

/// \file mapping.hpp
/// A fixed assignment of tasks to processors together with the execution
/// order of the tasks on each processor (Section 3: "we assume that the
/// mapping is given, as well as the ordering of the tasks ... on each
/// processor"). Typically produced by HEFT (src/heft).

namespace cawo {

class Mapping {
public:
  /// Create an empty mapping for `numTasks` tasks on `numProcs` processors.
  Mapping(TaskId numTasks, ProcId numProcs);

  /// Assign task `v` to processor `p`, appending it at the end of p's order.
  void assign(TaskId v, ProcId p);

  /// Replace the order of tasks on processor `p`. Every task in `order`
  /// must already be assigned to `p`, and the list must be a permutation of
  /// p's tasks.
  void setOrder(ProcId p, std::vector<TaskId> order);

  ProcId procOf(TaskId v) const;
  bool isAssigned(TaskId v) const;

  /// Execution order of the tasks mapped to processor `p`.
  std::span<const TaskId> orderOn(ProcId p) const;

  /// Position of `v` within the order of its processor.
  std::size_t positionOf(TaskId v) const;

  TaskId numTasks() const { return static_cast<TaskId>(procOf_.size()); }
  ProcId numProcs() const { return static_cast<ProcId>(order_.size()); }

  /// Check that every task is assigned and that the per-processor orders are
  /// compatible with the DAG (ordering a predecessor after its successor on
  /// the same processor would create a cycle in the enhanced graph).
  /// \returns an empty string if valid, otherwise a description of the first
  /// violation found.
  std::string validate(const TaskGraph& graph) const;

private:
  std::vector<ProcId> procOf_;
  std::vector<std::vector<TaskId>> order_;
  std::vector<std::size_t> position_;
};

} // namespace cawo
