#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/schedule.hpp"
#include "util/types.hpp"

/// \file est_lst.hpp
/// Earliest / latest start times on the enhanced graph (Section 5.1/5.2).
///
/// EST(v) = max over predecessors u of EST(u) + ω(u)  (0 for sources).
/// LST(v) = min over successors w of LST(w) − ω(v)    (T − ω(v) for sinks).
/// The slack of v is LST(v) − EST(v); a feasible instance has slack ≥ 0 for
/// every node (guaranteed whenever the deadline is at least the ASAP
/// makespan).
///
/// Two ways to maintain the windows of a partially scheduled instance:
///   * `recomputeWindows` — the paper-literal full two-pass sweep, O(N+E)
///     per placement; kept as the test oracle.
///   * `WindowState` — incremental worklist propagation: pinning one task
///     only affects the ancestor/descendant cone reachable through still
///     unplaced nodes, so each placement touches only the nodes whose
///     bound actually changes (see DESIGN.md, "Incremental scheduling
///     engine").

namespace cawo {

/// Forward Kahn pass computing EST for every node.
std::vector<Time> computeEst(const EnhancedGraph& gc);

/// Backward Kahn pass computing LST for every node under deadline T.
std::vector<Time> computeLst(const EnhancedGraph& gc, Time deadline);

/// EST/LST conditioned on a partial schedule: nodes with a start time in
/// `partial` are pinned (EST = LST = σ(u)); the windows of the remaining
/// nodes tighten accordingly. The original full-sweep formulation — the
/// greedy scheduler now uses `WindowState`, which maintains exactly the
/// same fixpoint incrementally; this remains the oracle the property
/// tests compare against.
void recomputeWindows(const EnhancedGraph& gc, Time deadline,
                      const Schedule& partial,
                      const std::vector<bool>& placed, std::vector<Time>& est,
                      std::vector<Time>& lst);

/// Incrementally maintained EST/LST windows of a partially scheduled
/// instance.
///
/// Invariant: after any sequence of `place` calls, `est()`/`lst()` equal
/// what `recomputeWindows` would produce for the same placement set —
/// bit for bit. `place(v, s)` pins EST(v) = LST(v) = s and repairs the
/// fixpoint by worklist propagation: the forward (EST) worklist is
/// processed in topological order, the backward (LST) worklist in reverse
/// topological order, and every popped node is recomputed exactly from
/// its neighbours, so each node is processed at most once per placement
/// and propagation stops as soon as a bound stops changing. Placed nodes
/// stay pinned and absorb propagation.
///
/// A node with EST > LST has infeasible (negative) slack; the count of
/// such nodes is maintained incrementally so feasibility checks stay O(1).
class WindowState {
public:
  /// Initial windows of an unscheduled instance (full Kahn passes).
  WindowState(const EnhancedGraph& gc, Time deadline);

  /// Seed from precomputed *initial* windows (must equal `computeEst` /
  /// `computeLst` output — memoized by `SolveContext`); avoids the full
  /// passes when they are already known.
  WindowState(const EnhancedGraph& gc, Time deadline,
              std::vector<Time> initialEst, std::vector<Time> initialLst);

  const EnhancedGraph& graph() const { return *gc_; }
  Time deadline() const { return deadline_; }

  Time est(TaskId v) const { return estP_[posOf(checked(v))]; }
  Time lst(TaskId v) const { return lstP_[posOf(checked(v))]; }

  /// Windows indexed by node id — materialised on demand (the state is kept
  /// in topological-position space internally); intended for tests/oracles,
  /// not hot paths.
  std::vector<Time> estAll() const;
  std::vector<Time> lstAll() const;

  bool placed(TaskId v) const { return placedP_[posOf(checked(v))] != 0; }
  std::size_t numPlaced() const { return numPlaced_; }

  /// Pin task `v` at `start` and propagate the window change through the
  /// affected cone. `v` must not already be placed. Any start time is
  /// accepted (a start outside the current window simply drives slacks
  /// negative, exactly as the oracle would).
  void place(TaskId v, Time start);

  /// Number of nodes whose window is currently empty (EST > LST).
  std::size_t negativeSlackCount() const { return negativeSlack_; }

  /// True iff every node still has a non-empty window.
  bool feasible() const { return negativeSlack_ == 0; }

private:
  std::size_t checked(TaskId v) const;
  std::size_t posOf(std::size_t i) const {
    return static_cast<std::size_t>(gc_->topoPositions()[i]);
  }
  void setEst(std::size_t pos, Time value);
  void setLst(std::size_t pos, Time value);

  const EnhancedGraph* gc_ = nullptr;
  Time deadline_ = 0;

  // All mutable state lives in *topological-position space* (index = the
  // node's position in gc_->topoOrder()): the worklist propagation then
  // runs with zero id↔position translation, position-renumbered adjacency
  // (EnhancedGraph::posSucc*/posPred*), and topological locality between
  // neighbouring loads. `finishP_` caches estP_ + len so the forward
  // relaxation reads one array instead of two.
  std::vector<Time> estP_, lstP_, finishP_;
  std::vector<std::uint8_t> placedP_;
  std::size_t negativeSlack_ = 0;
  std::size_t numPlaced_ = 0;

  // Worklist scratch, kept across `place` calls (always all-zero between
  // them). Propagation is monotone in topological position — forward
  // pushes only go to larger positions, backward only to smaller — so the
  // pending set is a position bitmap (n/8 bytes, L1-resident) scanned in
  // bit order instead of a binary heap: pop is find-next-set-bit, push is
  // set-bit, deduplication is free.
  std::vector<std::uint64_t> pendFwd_, pendBwd_;
};

} // namespace cawo
