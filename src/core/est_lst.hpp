#pragma once

#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/schedule.hpp"
#include "util/types.hpp"

/// \file est_lst.hpp
/// Earliest / latest start times on the enhanced graph (Section 5.1/5.2).
///
/// EST(v) = max over predecessors u of EST(u) + ω(u)  (0 for sources).
/// LST(v) = min over successors w of LST(w) − ω(v)    (T − ω(v) for sinks).
/// The slack of v is LST(v) − EST(v); a feasible instance has slack ≥ 0 for
/// every node (guaranteed whenever the deadline is at least the ASAP
/// makespan).

namespace cawo {

/// Forward Kahn pass computing EST for every node.
std::vector<Time> computeEst(const EnhancedGraph& gc);

/// Backward Kahn pass computing LST for every node under deadline T.
std::vector<Time> computeLst(const EnhancedGraph& gc, Time deadline);

/// EST/LST conditioned on a partial schedule: nodes with a start time in
/// `partial` are pinned (EST = LST = σ(u)); the windows of the remaining
/// nodes tighten accordingly. Used by the greedy scheduler after each
/// placement.
void recomputeWindows(const EnhancedGraph& gc, Time deadline,
                      const Schedule& partial,
                      const std::vector<bool>& placed, std::vector<Time>& est,
                      std::vector<Time>& lst);

} // namespace cawo
