#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

/// \file power_profile.hpp
/// The time-varying green power supply (Section 3).
///
/// The horizon [0, T) is divided into J contiguous intervals
/// I_j = [b_j, e_j); within I_j a constant green power budget G_j is
/// available per time unit. Power drawn beyond the budget is brown and
/// incurs carbon cost.

namespace cawo {

struct Interval {
  Time begin = 0;
  Time end = 0;   ///< exclusive
  Power green = 0;

  Time length() const { return end - begin; }
};

class PowerProfile {
public:
  PowerProfile() = default;

  /// Append an interval of the given length and budget at the end of the
  /// current horizon.
  void appendInterval(Time length, Power green);

  /// A single interval covering [0, horizon) with a constant budget.
  static PowerProfile uniform(Time horizon, Power green);

  /// Build directly from a list of contiguous intervals.
  static PowerProfile fromIntervals(std::vector<Interval> intervals);

  Time horizon() const {
    return intervals_.empty() ? 0 : intervals_.back().end;
  }

  std::size_t numIntervals() const { return intervals_.size(); }

  std::span<const Interval> intervals() const { return intervals_; }

  const Interval& interval(std::size_t j) const;

  /// Index of the interval containing time `t` (binary search, O(log J)).
  std::size_t indexAt(Time t) const;

  /// Green budget at time `t`.
  Power greenAt(Time t) const;

  /// The set E of interval boundary times {b_1=0, e_1, ..., e_J=T}.
  std::vector<Time> boundaries() const;

  /// Extend the horizon to `newHorizon` by appending one interval with
  /// budget `green` (no-op if the horizon is already long enough).
  void extendTo(Time newHorizon, Power green);

  /// Sum over the horizon of `max(basePower - G(t), 0)` — the carbon cost
  /// that accrues even when no task runs (all processors idle).
  Cost idleFloorCost(Power basePower) const;

private:
  std::vector<Interval> intervals_;
};

} // namespace cawo
