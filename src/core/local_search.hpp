#pragma once

#include <cstddef>
#include <cstdint>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"

/// \file local_search.hpp
/// The hill-climbing local search of Section 5.3 (variant suffix "-LS").
///
/// Processors are visited in non-increasing order of P_work (the costliest
/// first); on each processor the tasks are scanned left to right, and each
/// task tries to move its start time up to `radius` (the paper's µ = 10)
/// units left or right, earliest candidate first. The first legal move with
/// a strictly positive gain is applied. Rounds repeat until one full round
/// brings no gain. Because only improving moves are accepted, the final
/// cost never exceeds the initial one.

namespace cawo {

/// Move acceptance policy. The paper applies the *first* improving move
/// ("One could also check all legal moves and apply the best one. However,
/// preliminary experiments showed that this would not significantly improve
/// the outcome, so we opted for the faster variant."); both policies are
/// provided so that trade-off can be reproduced.
enum class MoveStrategy { FirstImprovement, BestImprovement };

struct LocalSearchOptions {
  Time radius = 10;             ///< µ: how far a task may shift per probe
  std::size_t maxRounds = ~std::size_t{0};
  MoveStrategy strategy = MoveStrategy::FirstImprovement;

  /// Worker threads (0 = hardware concurrency). Used for the restart
  /// fan-out of `localSearchRestarts`; one climb's candidate scan is
  /// served by the batched `peekMoveDeltas` prefix table (O(1) per
  /// candidate) and stays serial at any width. Results are bit-identical
  /// for every value: the restart merge is order-preserving with ties
  /// broken by restart index, never by completion order.
  unsigned threads = 1;

  /// Independent hill-climbing restarts for `localSearchRestarts`.
  /// Restart 0 climbs from the input schedule unchanged (so `restarts ==
  /// 1` is plain `localSearch`); restarts 1..N−1 climb from copies
  /// perturbed by per-restart RNG streams derived from `seed`. The best
  /// final cost wins, ties to the lowest restart index — the parallel
  /// merge therefore reproduces the serial best-of-N exactly.
  std::size_t restarts = 1;
  std::uint64_t seed = 0x5eedCA205eedULL; ///< base seed for perturbations
};

struct LocalSearchStats {
  std::size_t rounds = 0;
  std::size_t movesApplied = 0;
  Cost initialCost = 0;
  Cost finalCost = 0;
  std::size_t restartsRun = 1; ///< climbs performed (1 for plain runs)
  std::size_t bestRestart = 0; ///< winning restart (0 = unperturbed)
};

/// Improve `schedule` in place; returns statistics about the run.
LocalSearchStats localSearch(const EnhancedGraph& gc,
                             const PowerProfile& profile, Time deadline,
                             Schedule& schedule,
                             const LocalSearchOptions& opts = {});

/// Best-of-N multi-start hill climbing (see `LocalSearchOptions::restarts`).
/// With `restarts == 1` this is exactly `localSearch`. Restarts are
/// independent — each climbs its own schedule copy on its own timeline —
/// so they run in parallel across `opts.threads` workers; the merge picks
/// the lowest final cost, ties to the lowest restart index, making the
/// result independent of the thread count. The winner can never be worse
/// than plain `localSearch` because restart 0 *is* plain `localSearch`.
LocalSearchStats localSearchRestarts(const EnhancedGraph& gc,
                                     const PowerProfile& profile,
                                     Time deadline, Schedule& schedule,
                                     const LocalSearchOptions& opts = {});

} // namespace cawo
