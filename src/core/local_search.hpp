#pragma once

#include <cstddef>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"

/// \file local_search.hpp
/// The hill-climbing local search of Section 5.3 (variant suffix "-LS").
///
/// Processors are visited in non-increasing order of P_work (the costliest
/// first); on each processor the tasks are scanned left to right, and each
/// task tries to move its start time up to `radius` (the paper's µ = 10)
/// units left or right, earliest candidate first. The first legal move with
/// a strictly positive gain is applied. Rounds repeat until one full round
/// brings no gain. Because only improving moves are accepted, the final
/// cost never exceeds the initial one.

namespace cawo {

/// Move acceptance policy. The paper applies the *first* improving move
/// ("One could also check all legal moves and apply the best one. However,
/// preliminary experiments showed that this would not significantly improve
/// the outcome, so we opted for the faster variant."); both policies are
/// provided so that trade-off can be reproduced.
enum class MoveStrategy { FirstImprovement, BestImprovement };

struct LocalSearchOptions {
  Time radius = 10;             ///< µ: how far a task may shift per probe
  std::size_t maxRounds = ~std::size_t{0};
  MoveStrategy strategy = MoveStrategy::FirstImprovement;
};

struct LocalSearchStats {
  std::size_t rounds = 0;
  std::size_t movesApplied = 0;
  Cost initialCost = 0;
  Cost finalCost = 0;
};

/// Improve `schedule` in place; returns statistics about the run.
LocalSearchStats localSearch(const EnhancedGraph& gc,
                             const PowerProfile& profile, Time deadline,
                             Schedule& schedule,
                             const LocalSearchOptions& opts = {});

} // namespace cawo
