#include "core/asap.hpp"

#include <algorithm>

namespace cawo {

Schedule scheduleAsap(const EnhancedGraph& gc) {
  return scheduleAsap(gc, computeEst(gc));
}

Schedule scheduleAsap(const EnhancedGraph& gc, const std::vector<Time>& est) {
  Schedule s(gc.numNodes());
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    s.setStart(u, est[static_cast<std::size_t>(u)]);
  return s;
}

Time asapMakespan(const EnhancedGraph& gc) {
  return asapMakespan(gc, computeEst(gc));
}

Time asapMakespan(const EnhancedGraph& gc, const std::vector<Time>& est) {
  Time m = 0;
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    m = std::max(m, est[static_cast<std::size_t>(u)] + gc.len(u));
  return m;
}

} // namespace cawo
