#pragma once

#include <cstdint>
#include <string>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file instance_hash.hpp
/// A deterministic 64-bit identity for a scheduling instance.
///
/// Two surfaces need to recognise "the same instance" cheaply: the serve
/// daemon's `SolveContext` cache (src/serve) keys cached per-instance
/// artifacts by it, and campaign records carry it (`instance_hash`) so
/// result rows from different runs, shards or machines can be joined
/// without re-deriving the axes. The hash is FNV-1a over a *canonical
/// byte encoding* of everything that determines a solve's outcome:
///
///   * the enhanced graph — node table (kind, mapping, duration ω(u)),
///     edge list, per-processor idle/work powers and the fixed
///     per-processor execution orders;
///   * the power profile — the realized interval list (begin, end, green
///     budget), i.e. the deterministic expansion of the profile spec;
///   * the deadline.
///
/// The encoding feeds fixed-width integers byte by byte (LSB first) and
/// length-frames every sequence, so the value is independent of platform
/// endianness and stable across runs and processes — tests pin exact
/// values. It is *not* a cryptographic hash; collisions are possible in
/// principle and the serve cache treats equal hashes as equal instances
/// (64-bit FNV-1a makes accidental collisions vanishingly unlikely at
/// cache-sized populations).

namespace cawo {

/// Incremental FNV-1a (64-bit) over a canonical byte stream. The typed
/// mixers define the one encoding every instance-hash producer shares:
/// integers little-endian at fixed width, strings length-framed.
class Fnv1aHasher {
public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  Fnv1aHasher& mixByte(std::uint8_t b) {
    hash_ = (hash_ ^ b) * kPrime;
    return *this;
  }

  /// Fixed-width 64-bit value, least-significant byte first.
  Fnv1aHasher& mixU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mixByte(static_cast<std::uint8_t>(v & 0xFF));
      v >>= 8;
    }
    return *this;
  }

  Fnv1aHasher& mixI64(std::int64_t v) {
    return mixU64(static_cast<std::uint64_t>(v));
  }

  /// Length-framed string: size first, then the raw bytes.
  Fnv1aHasher& mixString(const std::string& s) {
    mixU64(s.size());
    for (const char c : s) mixByte(static_cast<std::uint8_t>(c));
    return *this;
  }

  std::uint64_t value() const { return hash_; }

private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// The canonical instance hash: graph structure + durations + mapping +
/// realized profile + deadline (see file comment). Pure and deterministic —
/// equal inputs give equal hashes on every platform and run.
std::uint64_t instanceHash(const EnhancedGraph& gc,
                           const PowerProfile& profile, Time deadline);

/// The 16-hex-digit spelling used wherever the hash crosses a text surface
/// (campaign records, the serve wire protocol): lowercase, zero-padded, no
/// prefix — e.g. "00c0ffee00c0ffee". JSON numbers cannot carry full uint64
/// precision, strings can.
std::string instanceHashHex(std::uint64_t hash);

} // namespace cawo
