#include "core/carbon_cost.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

namespace {

/// Sorted unique breakpoints: all interval boundaries plus all task start
/// and end events, restricted to [0, end of schedule/profile].
struct SweepData {
  std::vector<Time> breakpoints;
  std::vector<std::pair<Time, Power>> deltas; // (time, +/- work power)
};

SweepData prepareSweep(const EnhancedGraph& gc, const PowerProfile& profile,
                       const Schedule& s) {
  SweepData data;
  data.breakpoints.reserve(profile.numIntervals() + 1 +
                           2 * static_cast<std::size_t>(gc.numNodes()));
  for (Time b : profile.boundaries()) data.breakpoints.push_back(b);

  data.deltas.reserve(2 * static_cast<std::size_t>(gc.numNodes()));
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    CAWO_REQUIRE(s.isSet(u), "schedule is incomplete");
    if (gc.len(u) == 0) continue; // zero-length nodes draw no power
    const Time a = s.start(u);
    const Time b = s.end(u, gc);
    CAWO_REQUIRE(a >= 0, "negative start time");
    CAWO_REQUIRE(b <= profile.horizon(),
                 "schedule exceeds the profile horizon");
    const Power w = gc.workPower(gc.procOf(u));
    data.deltas.emplace_back(a, w);
    data.deltas.emplace_back(b, -w);
    data.breakpoints.push_back(a);
    data.breakpoints.push_back(b);
  }
  std::sort(data.breakpoints.begin(), data.breakpoints.end());
  data.breakpoints.erase(
      std::unique(data.breakpoints.begin(), data.breakpoints.end()),
      data.breakpoints.end());
  std::sort(data.deltas.begin(), data.deltas.end());
  return data;
}

/// Sweep over explicit (start, duration) events against `profile`,
/// restricted to [0, upTo). Nodes without a start are skipped (partial
/// trajectories); contributions past the profile horizon are billed with a
/// green budget of 0. The breakpoint/delta machinery is the same as
/// `prepareSweep`, so complete in-horizon trajectories with
/// durations == ω(u) cost exactly what `evaluateCost` reports.
Cost sweepWithDurations(const EnhancedGraph& gc, const PowerProfile& profile,
                        const Schedule& s, const std::vector<Time>& durations,
                        Time upTo, bool requireComplete) {
  CAWO_REQUIRE(durations.size() ==
                   static_cast<std::size_t>(gc.numNodes()),
               "durations vector does not match the graph");
  if (upTo <= 0) return 0;

  SweepData data;
  data.breakpoints.reserve(profile.numIntervals() + 2 +
                           2 * static_cast<std::size_t>(gc.numNodes()));
  for (const Time b : profile.boundaries())
    if (b <= upTo) data.breakpoints.push_back(b);
  data.breakpoints.push_back(0);
  data.breakpoints.push_back(upTo);

  data.deltas.reserve(2 * static_cast<std::size_t>(gc.numNodes()));
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    if (!s.isSet(u)) {
      CAWO_REQUIRE(!requireComplete, "schedule is incomplete");
      continue;
    }
    const Time d = durations[static_cast<std::size_t>(u)];
    CAWO_REQUIRE(d >= 0, "negative duration");
    if (d == 0) continue; // zero-length nodes draw no power
    const Time a = s.start(u);
    CAWO_REQUIRE(a >= 0, "negative start time");
    const Time b = std::min(a + d, upTo);
    if (a >= b) continue; // entirely past the window
    const Power w = gc.workPower(gc.procOf(u));
    data.deltas.emplace_back(a, w);
    data.deltas.emplace_back(b, -w);
    data.breakpoints.push_back(a);
    data.breakpoints.push_back(b);
  }
  std::sort(data.breakpoints.begin(), data.breakpoints.end());
  data.breakpoints.erase(
      std::unique(data.breakpoints.begin(), data.breakpoints.end()),
      data.breakpoints.end());
  std::sort(data.deltas.begin(), data.deltas.end());

  const Power base = gc.totalIdlePower();
  const Time horizon = profile.horizon();
  Cost total = 0;
  Power active = 0;
  std::size_t di = 0;
  std::size_t interval = 0;
  const auto intervals = profile.intervals();

  for (std::size_t k = 0; k + 1 < data.breakpoints.size(); ++k) {
    const Time t0 = data.breakpoints[k];
    const Time t1 = data.breakpoints[k + 1];
    while (di < data.deltas.size() && data.deltas[di].first <= t0)
      active += data.deltas[di++].second;
    while (interval + 1 < intervals.size() && intervals[interval].end <= t0)
      ++interval;
    const Power green = t0 >= horizon ? 0 : intervals[interval].green;
    const Power over = base + active - green;
    if (over > 0) total += static_cast<Cost>(over) * (t1 - t0);
  }
  return total;
}

} // namespace

Cost evaluateCost(const EnhancedGraph& gc, const PowerProfile& profile,
                  const Schedule& s) {
  const SweepData data = prepareSweep(gc, profile, s);
  const Power base = gc.totalIdlePower();

  Cost total = 0;
  Power active = 0;
  std::size_t di = 0;
  std::size_t interval = 0;
  const auto intervals = profile.intervals();

  for (std::size_t k = 0; k + 1 < data.breakpoints.size(); ++k) {
    const Time t0 = data.breakpoints[k];
    const Time t1 = data.breakpoints[k + 1];
    while (di < data.deltas.size() && data.deltas[di].first <= t0)
      active += data.deltas[di++].second;
    while (interval + 1 < intervals.size() && intervals[interval].end <= t0)
      ++interval;
    const Power over = base + active - intervals[interval].green;
    if (over > 0) total += static_cast<Cost>(over) * (t1 - t0);
  }
  return total;
}

Cost evaluateCostWithDurations(const EnhancedGraph& gc,
                               const PowerProfile& profile, const Schedule& s,
                               const std::vector<Time>& durations) {
  // Bill through the later of the profile horizon (idle floor) and the
  // trajectory's last completion (overshoot is all brown).
  Time upTo = profile.horizon();
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    CAWO_REQUIRE(s.isSet(u), "schedule is incomplete");
    upTo = std::max(upTo, s.start(u) + durations[static_cast<std::size_t>(u)]);
  }
  return sweepWithDurations(gc, profile, s, durations, upTo,
                            /*requireComplete=*/true);
}

Cost evaluateCostPrefix(const EnhancedGraph& gc, const PowerProfile& profile,
                        const Schedule& s, const std::vector<Time>& durations,
                        Time upTo) {
  return sweepWithDurations(gc, profile, s, durations, upTo,
                            /*requireComplete=*/false);
}

Cost evaluateCostReference(const EnhancedGraph& gc, const PowerProfile& profile,
                           const Schedule& s) {
  const Time horizon = profile.horizon();
  std::vector<Power> power(static_cast<std::size_t>(horizon),
                           gc.totalIdlePower());
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    CAWO_REQUIRE(s.isSet(u), "schedule is incomplete");
    const Power w = gc.workPower(gc.procOf(u));
    const Time a = s.start(u);
    const Time b = s.end(u, gc);
    CAWO_REQUIRE(a >= 0 && b <= horizon, "schedule outside horizon");
    for (Time t = a; t < b; ++t) power[static_cast<std::size_t>(t)] += w;
  }
  Cost total = 0;
  for (Time t = 0; t < horizon; ++t) {
    const Power over = power[static_cast<std::size_t>(t)] - profile.greenAt(t);
    if (over > 0) total += over;
  }
  return total;
}

Cost carbonLowerBound(const EnhancedGraph& gc, const PowerProfile& profile) {
  const Cost idleFloor = profile.idleFloorCost(gc.totalIdlePower());

  Cost totalDemand =
      static_cast<Cost>(gc.totalIdlePower()) * profile.horizon();
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    totalDemand += static_cast<Cost>(gc.workPower(gc.procOf(u))) * gc.len(u);
  Cost totalGreen = 0;
  for (const Interval& interval : profile.intervals())
    totalGreen += static_cast<Cost>(interval.green) * interval.length();

  const Cost balance = totalDemand > totalGreen ? totalDemand - totalGreen : 0;
  return std::max(idleFloor, balance);
}

CostBreakdown evaluateCostBreakdown(const EnhancedGraph& gc,
                                    const PowerProfile& profile,
                                    const Schedule& s) {
  const SweepData data = prepareSweep(gc, profile, s);
  const Power base = gc.totalIdlePower();

  CostBreakdown out;
  out.perInterval.assign(profile.numIntervals(), 0);
  Power active = 0;
  std::size_t di = 0;
  std::size_t interval = 0;
  const auto intervals = profile.intervals();

  for (std::size_t k = 0; k + 1 < data.breakpoints.size(); ++k) {
    const Time t0 = data.breakpoints[k];
    const Time t1 = data.breakpoints[k + 1];
    while (di < data.deltas.size() && data.deltas[di].first <= t0)
      active += data.deltas[di++].second;
    while (interval + 1 < intervals.size() && intervals[interval].end <= t0)
      ++interval;
    const Power total = base + active;
    out.peakPower = std::max(out.peakPower, total);
    const Power green = intervals[interval].green;
    const Time span = t1 - t0;
    const Power over = total - green;
    if (over > 0) {
      out.perInterval[interval] += static_cast<Cost>(over) * span;
      out.total += static_cast<Cost>(over) * span;
      out.brownEnergyUsed += static_cast<Cost>(over) * span;
      out.greenEnergyUsed += static_cast<Cost>(green) * span;
    } else {
      out.greenEnergyUsed += static_cast<Cost>(total) * span;
    }
  }
  return out;
}

} // namespace cawo
