#include "core/power_timeline_map.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

MapPowerTimeline::MapPowerTimeline(const PowerProfile& profile,
                                   Power basePower)
    : base_(basePower), horizon_(profile.horizon()) {
  CAWO_REQUIRE(basePower >= 0, "negative base power");
  CAWO_REQUIRE(horizon_ > 0, "profile has an empty horizon");
  for (const Interval& iv : profile.intervals())
    segments_.emplace(iv.begin, Segment{0, iv.green});
  segments_.emplace(horizon_, Segment{0, 0}); // sentinel, never costed
  for (auto it = segments_.begin(); std::next(it) != segments_.end(); ++it)
    total_ += segmentCost(it);
}

Cost MapPowerTimeline::segmentCost(SegMap::const_iterator it) const {
  const auto next = std::next(it);
  const Time len = next->first - it->first;
  const Power over = base_ + it->second.active - it->second.green;
  return over > 0 ? static_cast<Cost>(over) * len : 0;
}

void MapPowerTimeline::splitAt(Time t) {
  if (t <= 0 || t >= horizon_) return;
  auto it = segments_.lower_bound(t);
  if (it != segments_.end() && it->first == t) return;
  --it; // segment containing t
  segments_.emplace_hint(std::next(it), t, it->second);
  // The two halves carry the same power values, so total_ is unchanged.
}

void MapPowerTimeline::addLoad(Time a, Time b, Power work) {
  if (a >= b || work == 0) return;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "load outside horizon");
  splitAt(a);
  splitAt(b);
  for (auto it = segments_.lower_bound(a);
       it != segments_.end() && it->first < b; ++it) {
    total_ -= segmentCost(it);
    it->second.active += work;
    total_ += segmentCost(it);
  }
}

void MapPowerTimeline::removeLoad(Time a, Time b, Power work) {
  addLoad(a, b, -work);
}

Cost MapPowerTimeline::costInRange(Time a, Time b) const {
  if (a >= b) return 0;
  CAWO_REQUIRE(a >= 0 && b <= horizon_, "range outside horizon");
  Cost cost = 0;
  auto it = segments_.upper_bound(a);
  --it; // segment containing a
  for (; it != segments_.end() && it->first < b; ++it) {
    const auto next = std::next(it);
    const Time lo = std::max(a, it->first);
    const Time hi = std::min(b, next->first);
    const Power over = base_ + it->second.active - it->second.green;
    if (over > 0 && hi > lo) cost += static_cast<Cost>(over) * (hi - lo);
  }
  return cost;
}

Cost MapPowerTimeline::peekMoveDelta(Time a, Time b, Time a2, Time b2,
                                     Power work) const {
  const bool hasOld = a < b;
  const bool hasNew = a2 < b2;
  if (work == 0 || (!hasOld && !hasNew) ||
      (hasOld && hasNew && a == a2 && b == b2))
    return 0;
  Time lo = hasOld ? a : a2;
  Time hi = hasOld ? b : b2;
  if (hasNew) {
    lo = std::min(lo, a2);
    hi = std::max(hi, b2);
  }
  CAWO_REQUIRE(lo >= 0 && hi <= horizon_, "load outside horizon");

  Cost delta = 0;
  auto it = segments_.upper_bound(lo);
  --it; // segment containing lo
  for (; it != segments_.end() && it->first < hi; ++it) {
    const Time segLo = std::max(lo, it->first);
    const Time segHi = std::min(hi, std::next(it)->first);
    const Power over = base_ + it->second.active - it->second.green;
    Time cuts[6] = {segLo, segHi};
    int numCuts = 2;
    for (const Time t : {a, b, a2, b2})
      if (t > segLo && t < segHi) cuts[numCuts++] = t;
    for (int k = 2; k < numCuts; ++k) { // insertion sort: ≤ 6 elements
      const Time t = cuts[k];
      int j = k - 1;
      while (j >= 0 && cuts[j] > t) {
        cuts[j + 1] = cuts[j];
        --j;
      }
      cuts[j + 1] = t;
    }
    for (int k = 0; k + 1 < numCuts; ++k) {
      const Time pieceLo = cuts[k];
      const Time pieceHi = cuts[k + 1];
      if (pieceLo >= pieceHi) continue; // duplicate cut
      Power change = 0;
      if (hasOld && pieceLo >= a && pieceLo < b) change -= work;
      if (hasNew && pieceLo >= a2 && pieceLo < b2) change += work;
      if (change == 0) continue;
      const Power moved = over + change;
      const Time len = pieceHi - pieceLo;
      if (over > 0) delta -= static_cast<Cost>(over) * len;
      if (moved > 0) delta += static_cast<Cost>(moved) * len;
    }
  }
  return delta;
}

Cost MapPowerTimeline::moveDelta(Time a, Time b, Time a2, Time b2,
                                 Power work) {
  const Cost before = total_;
  removeLoad(a, b, work);
  addLoad(a2, b2, work);
  const Cost after = total_;
  // Revert: integer arithmetic makes this exact.
  removeLoad(a2, b2, work);
  addLoad(a, b, work);
  CAWO_ASSERT(total_ == before, "MapPowerTimeline revert failed");
  return after - before;
}

} // namespace cawo
