#include "core/solve_context.hpp"

#include <algorithm>
#include <string>

#include "core/asap.hpp"
#include "core/interval_refinement.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace cawo {

SolveContext::SolveContext(const EnhancedGraph& gc,
                           const PowerProfile& profile, Time deadline)
    : gc_(&gc), profile_(&profile), deadline_(deadline) {
  CAWO_REQUIRE(deadline > 0, "SolveContext: deadline must be positive");
}

void SolveContext::requireUnfrozen(const char* artifact) const {
  CAWO_REQUIRE(!frozen_,
               std::string("SolveContext is frozen: ") + artifact +
                   " was not primed before the parallel section");
}

const std::vector<Time>& SolveContext::initialEst() const {
  if (!haveEst_) {
    requireUnfrozen("initialEst");
    est_ = computeEst(*gc_);
    haveEst_ = true;
  }
  return est_;
}

const std::vector<Time>& SolveContext::initialLst() const {
  if (!haveLst_) {
    requireUnfrozen("initialLst");
    lst_ = computeLst(*gc_, deadline_);
    haveLst_ = true;
  }
  return lst_;
}

Time SolveContext::asapMakespan() const {
  if (asapMakespan_ < 0) {
    requireUnfrozen("asapMakespan");
    asapMakespan_ = cawo::asapMakespan(*gc_, initialEst());
  }
  return asapMakespan_;
}

Power SolveContext::sumWorkPower() const {
  if (sumWorkPower_ < 0) {
    requireUnfrozen("sumWorkPower");
    Power sum = 0;
    for (ProcId p = 0; p < gc_->numProcs(); ++p) sum += gc_->workPower(p);
    sumWorkPower_ = sum;
  }
  return sumWorkPower_;
}

const std::vector<Interval>& SolveContext::refinedIntervals(
    int blockSize) const {
  const auto it = refinedByBlockSize_.find(blockSize);
  if (it != refinedByBlockSize_.end()) return it->second;
  requireUnfrozen("refinedIntervals");
  obs::TraceScope span("context.refine");
  span.arg("block_size", static_cast<std::int64_t>(blockSize));
  return refinedByBlockSize_
      .emplace(blockSize, refineIntervals(*gc_, *profile_, blockSize,
                                          threads_, &refineScratch_))
      .first->second;
}

const BudgetTree& SolveContext::budgetTreePrototype(bool refined,
                                                    int blockSize) const {
  const int key = refined ? blockSize : -1;
  const auto it = budgetTrees_.find(key);
  if (it != budgetTrees_.end()) return it->second;
  requireUnfrozen("budgetTreePrototype");
  obs::TraceScope span("context.budget_tree");
  const std::span<const Interval> working =
      refined ? std::span<const Interval>(refinedIntervals(blockSize))
              : profile_->intervals();
  std::vector<Time> begins;
  std::vector<Power> budgets;
  begins.reserve(working.size());
  budgets.reserve(working.size());
  for (const Interval& iv : working) {
    begins.push_back(iv.begin);
    budgets.push_back(iv.green);
  }
  return budgetTrees_
      .emplace(key, BudgetTree(std::span<const Time>(begins),
                               std::span<const Power>(budgets),
                               profile_->horizon()))
      .first->second;
}

const std::vector<TaskId>& SolveContext::scoreOrder(
    const ScoreOptions& opts) const {
  const auto key = std::make_pair(static_cast<int>(opts.base), opts.weighted);
  const auto it = orders_.find(key);
  if (it != orders_.end()) return it->second;
  requireUnfrozen("scoreOrder");
  obs::TraceScope span("context.score_order");
  return orders_
      .emplace(key,
               cawo::scoreOrder(*gc_, initialEst(), initialLst(), opts))
      .first->second;
}

WindowState SolveContext::windowState() const {
  return WindowState(*gc_, deadline_, initialEst(), initialLst());
}

} // namespace cawo
