#pragma once

#include <map>

#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file power_timeline_map.hpp
/// The historical `std::map<Time, Segment>`-backed power timeline, retained
/// verbatim as the property-test oracle for the flat array-backed
/// `PowerTimeline`. Every cost is an exact 64-bit integer and both
/// implementations accumulate per-segment terms left to right, so the two
/// must agree bit-for-bit on `totalCost`, `costInRange`, `moveDelta` and
/// `peekMoveDelta` over any trace of operations — the randomized
/// trace-equivalence test in tests/test_power_timeline.cpp pins exactly
/// that. Not used by any solver; test-only.

namespace cawo {

class MapPowerTimeline {
public:
  MapPowerTimeline(const PowerProfile& profile, Power basePower);

  void addLoad(Time a, Time b, Power work);
  void removeLoad(Time a, Time b, Power work);

  Cost totalCost() const { return total_; }
  Cost costInRange(Time a, Time b) const;

  /// Mutate-and-revert probe (the historical `moveDelta`): leaves the
  /// totals unchanged but permanently accumulates split boundaries — the
  /// residue leak the flat implementation fixes.
  Cost moveDelta(Time a, Time b, Time a2, Time b2, Power work);

  /// Read-only probe over the affected segment pieces.
  Cost peekMoveDelta(Time a, Time b, Time a2, Time b2, Power work) const;

  Time horizon() const { return horizon_; }
  std::size_t numSegments() const { return segments_.size(); }

private:
  struct Segment {
    Power active = 0;
    Power green = 0;
  };

  using SegMap = std::map<Time, Segment>;

  void splitAt(Time t);
  Cost segmentCost(SegMap::const_iterator it) const;

  SegMap segments_; // key = segment begin; a sentinel at `horizon_` ends it
  Power base_ = 0;
  Time horizon_ = 0;
  Cost total_ = 0;
};

} // namespace cawo
