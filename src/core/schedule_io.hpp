#pragma once

#include <iosfwd>
#include <string>

#include "core/enhanced_graph.hpp"
#include "core/schedule.hpp"
#include "core/task_graph.hpp"

/// \file schedule_io.hpp
/// Human- and machine-readable schedule output: a CSV with one row per
/// enhanced-graph node (including communication tasks) and a text Gantt
/// rendering for quick inspection.

namespace cawo {

/// CSV columns: node,kind,name,proc,start,end,len.
/// `kind` is "task" or "comm"; comm rows carry "src->dst" as their name.
void writeScheduleCsv(std::ostream& out, const EnhancedGraph& gc,
                      const Schedule& schedule,
                      const TaskGraph* names = nullptr);

std::string toScheduleCsvString(const EnhancedGraph& gc,
                                const Schedule& schedule,
                                const TaskGraph* names = nullptr);

void writeScheduleCsvFile(const std::string& path, const EnhancedGraph& gc,
                          const Schedule& schedule,
                          const TaskGraph* names = nullptr);

/// A per-processor ASCII Gantt chart scaled to `width` columns.
void printGantt(std::ostream& out, const EnhancedGraph& gc,
                const Schedule& schedule, Time horizon, int width = 72);

} // namespace cawo
