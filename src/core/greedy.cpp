#include "core/greedy.hpp"

#include <algorithm>

#include "core/budget_tree.hpp"
#include "core/est_lst.hpp"
#include "core/solve_context.hpp"
#include "util/require.hpp"

namespace cawo {

Schedule scheduleGreedy(const EnhancedGraph& gc, const PowerProfile& profile,
                        Time deadline, const GreedyOptions& opts) {
  const SolveContext ctx(gc, profile, deadline);
  return scheduleGreedy(ctx, opts);
}

Schedule scheduleGreedy(const SolveContext& ctx, const GreedyOptions& opts) {
  const EnhancedGraph& gc = ctx.gc();
  const PowerProfile& profile = ctx.profile();
  CAWO_REQUIRE(ctx.deadline() > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= ctx.deadline(),
               "power profile must cover the deadline");

  WindowState windows = ctx.windowState();
  CAWO_REQUIRE(windows.feasible(),
               "infeasible instance: deadline below ASAP makespan");

  // Working interval set: original or k-block-refined subdivision.
  std::vector<Time> begins;
  std::vector<Power> budgets;
  const auto loadIntervals = [&](std::span<const Interval> working) {
    begins.reserve(working.size());
    budgets.reserve(working.size());
    for (const Interval& iv : working) {
      begins.push_back(iv.begin);
      budgets.push_back(iv.green);
    }
  };
  if (opts.refined) {
    loadIntervals(ctx.refinedIntervals(opts.blockSize));
  } else {
    loadIntervals(profile.intervals());
  }
  BudgetTree tree(std::move(begins), std::move(budgets), profile.horizon());

  // Score-based processing order (scores use the *initial* EST/LST windows,
  // as in the paper; the windows then tighten as tasks get placed).
  const std::vector<TaskId>& order =
      ctx.scoreOrder(ScoreOptions{opts.base, opts.weighted});

  Schedule schedule(gc.numNodes());
  const std::size_t n = order.size();

  for (std::size_t i = 0; i < n; ++i) {
    const TaskId v = order[i];
    const auto best = tree.maxInRange(windows.est(v), windows.lst(v));
    const Time start = best.found ? best.begin : windows.est(v);

    schedule.setStart(v, start);

    const Time finish = start + gc.len(v);
    const ProcId p = gc.procOf(v);
    // Split the first/last touched interval at the task's boundaries, then
    // reduce the budget of every covered interval by the processor's draw.
    tree.consume(start, std::min(finish, profile.horizon()),
                 gc.idlePower(p) + gc.workPower(p));

    // The update after the last placement is dead — no window is read
    // again — so it is skipped entirely.
    if (i + 1 < n) windows.place(v, start);
  }
  return schedule;
}

} // namespace cawo
