#include "core/greedy.hpp"

#include <algorithm>

#include "core/budget_tree.hpp"
#include "core/est_lst.hpp"
#include "core/solve_context.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace cawo {

namespace {

/// The greedy's working budget timeline: the (possibly k-block-refined)
/// interval set loaded into a BudgetTree. Shared by the offline and the
/// residual greedy so both consume from an identically seeded timeline —
/// the actual == forecast parity pin depends on that. The context memoizes
/// one built prototype per interval set; each run mutates a plain copy.
BudgetTree makeBudgetTree(const SolveContext& ctx,
                          const GreedyOptions& opts) {
  return ctx.budgetTreePrototype(opts.refined, opts.blockSize);
}

} // namespace

Schedule scheduleGreedy(const EnhancedGraph& gc, const PowerProfile& profile,
                        Time deadline, const GreedyOptions& opts) {
  const SolveContext ctx(gc, profile, deadline);
  return scheduleGreedy(ctx, opts);
}

Schedule scheduleGreedy(const SolveContext& ctx, const GreedyOptions& opts) {
  obs::TraceScope span("greedy");
  const EnhancedGraph& gc = ctx.gc();
  const PowerProfile& profile = ctx.profile();
  CAWO_REQUIRE(ctx.deadline() > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= ctx.deadline(),
               "power profile must cover the deadline");

  WindowState windows = ctx.windowState();
  CAWO_REQUIRE(windows.feasible(),
               "infeasible instance: deadline below ASAP makespan");

  BudgetTree tree = makeBudgetTree(ctx, opts);

  // Score-based processing order (scores use the *initial* EST/LST windows,
  // as in the paper; the windows then tighten as tasks get placed).
  const std::vector<TaskId>& order =
      ctx.scoreOrder(ScoreOptions{opts.base, opts.weighted});

  Schedule schedule(gc.numNodes());
  const std::size_t n = order.size();

  for (std::size_t i = 0; i < n; ++i) {
    const TaskId v = order[i];
    const auto best = tree.maxInRange(windows.est(v), windows.lst(v));
    const Time start = best.found ? best.begin : windows.est(v);

    schedule.setStart(v, start);

    const Time finish = start + gc.len(v);
    // Split the first/last touched interval at the task's boundaries, then
    // reduce the budget of every covered interval by the processor's draw.
    // The winner's directory locator skips the re-search for start's block.
    const Time end = std::min(finish, profile.horizon());
    if (best.found)
      tree.consume(start, end, gc.drawPower(v), best.block);
    else
      tree.consume(start, end, gc.drawPower(v));

    // The update after the last placement is dead — no window is read
    // again — so it is skipped entirely.
    if (i + 1 < n) windows.place(v, start);
  }
  return schedule;
}

Schedule scheduleGreedyResidual(const SolveContext& ctx,
                                const GreedyOptions& opts,
                                const GreedyResidual& residual) {
  obs::TraceScope span("greedy.residual");
  const EnhancedGraph& gc = ctx.gc();
  const PowerProfile& profile = ctx.profile();
  CAWO_REQUIRE(ctx.deadline() > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= ctx.deadline(),
               "power profile must cover the deadline");
  CAWO_REQUIRE(residual.starts != nullptr && residual.started != nullptr &&
                   residual.durations != nullptr,
               "residual greedy needs starts, started and durations");
  const std::vector<std::uint8_t>& started = *residual.started;
  CAWO_REQUIRE(started.size() == static_cast<std::size_t>(gc.numNodes()) &&
                   residual.durations->size() == started.size(),
               "residual vectors do not match the graph");

  // Pinned-prefix windows: reuse the caller's incrementally maintained
  // state when given, otherwise repair a fresh one pin by pin (worklist
  // propagation — the fixpoint is placement-order independent).
  WindowState windows = [&] {
    if (residual.windows != nullptr) return *residual.windows;
    WindowState w = ctx.windowState();
    for (TaskId v = 0; v < gc.numNodes(); ++v)
      if (started[static_cast<std::size_t>(v)])
        w.place(v, residual.starts->start(v));
    return w;
  }();

  BudgetTree tree = makeBudgetTree(ctx, opts);

  // The pinned prefix already draws power over its effective execution
  // windows — consume it up front so movable placements see the remaining
  // budget, exactly as if the greedy itself had placed those nodes.
  Schedule schedule(gc.numNodes());
  std::size_t movable = 0;
  for (TaskId v = 0; v < gc.numNodes(); ++v) {
    if (!started[static_cast<std::size_t>(v)]) {
      ++movable;
      continue;
    }
    const Time a = residual.starts->start(v);
    schedule.setStart(v, a);
    const Time d = (*residual.durations)[static_cast<std::size_t>(v)];
    const Time b = std::min(a + d, profile.horizon());
    if (d == 0 || a >= b) continue;
    const ProcId p = gc.procOf(v);
    tree.consume(a, b, gc.idlePower(p) + gc.workPower(p));
  }

  const std::vector<TaskId>& order =
      ctx.scoreOrder(ScoreOptions{opts.base, opts.weighted});

  for (const TaskId v : order) {
    if (started[static_cast<std::size_t>(v)]) continue;
    const Time lo = std::max(windows.est(v), residual.releaseTime);
    const auto best = lo <= windows.lst(v)
                          ? tree.maxInRange(lo, windows.lst(v))
                          : BudgetTree::MaxResult{};
    const Time start = best.found ? best.begin : lo;

    schedule.setStart(v, start);

    const Time finish = start + gc.len(v);
    const ProcId p = gc.procOf(v);
    const Time end = std::min(finish, profile.horizon());
    const Power draw = gc.idlePower(p) + gc.workPower(p);
    // `start == best.begin` only when the query found a segment; the
    // locator is only valid then.
    if (best.found && start == best.begin)
      tree.consume(start, end, draw, best.block);
    else
      tree.consume(start, end, draw);

    if (--movable > 0) windows.place(v, start);
  }
  return schedule;
}

} // namespace cawo
