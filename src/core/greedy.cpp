#include "core/greedy.hpp"

#include <algorithm>

#include "core/budget_tree.hpp"
#include "core/est_lst.hpp"
#include "core/interval_refinement.hpp"
#include "util/require.hpp"

namespace cawo {

Schedule scheduleGreedy(const EnhancedGraph& gc, const PowerProfile& profile,
                        Time deadline, const GreedyOptions& opts) {
  CAWO_REQUIRE(deadline > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "power profile must cover the deadline");

  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> est = computeEst(gc);
  std::vector<Time> lst = computeLst(gc, deadline);
  for (std::size_t i = 0; i < n; ++i)
    CAWO_REQUIRE(est[i] <= lst[i],
                 "infeasible instance: deadline below ASAP makespan");

  // Working interval set: original or k-block-refined subdivision.
  std::vector<Interval> working;
  if (opts.refined) {
    working = refineIntervals(gc, profile, opts.blockSize);
  } else {
    working.assign(profile.intervals().begin(), profile.intervals().end());
  }
  std::vector<Time> begins;
  std::vector<Power> budgets;
  begins.reserve(working.size());
  budgets.reserve(working.size());
  for (const Interval& iv : working) {
    begins.push_back(iv.begin);
    budgets.push_back(iv.green);
  }
  BudgetTree tree(std::move(begins), std::move(budgets), profile.horizon());

  // Score-based processing order (scores use the *initial* EST/LST windows,
  // as in the paper; the windows then tighten as tasks get placed).
  const std::vector<TaskId> order =
      scoreOrder(gc, est, lst, ScoreOptions{opts.base, opts.weighted});

  Schedule schedule(gc.numNodes());
  std::vector<bool> placed(n, false);

  for (const TaskId v : order) {
    const auto iv = static_cast<std::size_t>(v);
    Time start;
    const auto best = tree.maxInRange(est[iv], lst[iv]);
    start = best.found ? best.begin : est[iv];

    schedule.setStart(v, start);
    placed[iv] = true;

    const Time finish = start + gc.len(v);
    const ProcId p = gc.procOf(v);
    // Split the first/last touched interval at the task's boundaries, then
    // reduce the budget of every covered interval by the processor's draw.
    tree.consume(start, std::min(finish, profile.horizon()),
                 gc.idlePower(p) + gc.workPower(p));

    recomputeWindows(gc, deadline, schedule, placed, est, lst);
  }
  return schedule;
}

} // namespace cawo
