#include "core/enhanced_graph.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

namespace {

/// Sort key for communications sharing a link (defines the fixed E'' order).
struct CommKey {
  Time priority;       // e.g. HEFT start time of the source task
  std::size_t srcPos;  // position of the source task on its processor
  std::size_t edgeIdx; // original edge index — final deterministic tiebreak
  TaskId node;

  bool operator<(const CommKey& o) const {
    if (priority != o.priority) return priority < o.priority;
    if (srcPos != o.srcPos) return srcPos < o.srcPos;
    return edgeIdx < o.edgeIdx;
  }
};

} // namespace

EnhancedGraph EnhancedGraph::build(const TaskGraph& graph,
                                   const Platform& platform,
                                   const Mapping& mapping,
                                   const LinkPowerOptions& linkPower,
                                   const std::vector<Time>* commPriority) {
  CAWO_REQUIRE(mapping.numTasks() == graph.numTasks(),
               "mapping does not match graph");
  CAWO_REQUIRE(mapping.numProcs() == platform.numProcessors(),
               "mapping does not match platform");
  const std::string mapErr = mapping.validate(graph);
  CAWO_REQUIRE(mapErr.empty(), "invalid mapping: " + mapErr);
  CAWO_REQUIRE(linkPower.minIdle >= 0 && linkPower.minIdle <= linkPower.maxIdle,
               "invalid link idle power range");
  CAWO_REQUIRE(linkPower.minWork >= 0 && linkPower.minWork <= linkPower.maxWork,
               "invalid link work power range");
  if (commPriority != nullptr)
    CAWO_REQUIRE(commPriority->size() ==
                     static_cast<std::size_t>(graph.numTasks()),
                 "commPriority size mismatch");

  EnhancedGraph gc;
  const TaskId n = graph.numTasks();
  const ProcId realProcs = platform.numProcessors();
  gc.numRealProcs_ = realProcs;

  // Compute nodes keep their original ids: enhanced id of task v is v.
  gc.nodes_.reserve(static_cast<std::size_t>(n) + graph.numEdges());
  for (TaskId v = 0; v < n; ++v) {
    Node node;
    node.original = v;
    node.proc = mapping.procOf(v);
    node.len = platform.execTime(graph.work(v), node.proc);
    gc.nodes_.push_back(node);
  }

  gc.procIdle_.resize(static_cast<std::size_t>(realProcs));
  gc.procWork_.resize(static_cast<std::size_t>(realProcs));
  for (ProcId p = 0; p < realProcs; ++p) {
    gc.procIdle_[static_cast<std::size_t>(p)] = platform.proc(p).idlePower;
    gc.procWork_[static_cast<std::size_t>(p)] = platform.proc(p).workPower;
  }

  // Link processors are created on demand per ordered (src, dst) pair.
  Rng linkRng(linkPower.seed);
  std::map<std::pair<ProcId, ProcId>, ProcId> linkId;
  auto getLink = [&](ProcId a, ProcId b) {
    const auto key = std::make_pair(a, b);
    const auto it = linkId.find(key);
    if (it != linkId.end()) return it->second;
    const ProcId id = static_cast<ProcId>(gc.procIdle_.size());
    gc.procIdle_.push_back(
        linkRng.uniformInt(linkPower.minIdle, linkPower.maxIdle));
    gc.procWork_.push_back(
        linkRng.uniformInt(linkPower.minWork, linkPower.maxWork));
    linkId.emplace(key, id);
    return id;
  };

  // Edges of Gc: same-processor precedence stays a plain edge; cross edges
  // with data spawn a comm node; zero-data cross edges degenerate to plain
  // precedence (an instantaneous transfer consumes no link time or power).
  std::map<ProcId, std::vector<CommKey>> linkComms;
  for (std::size_t ei = 0; ei < graph.numEdges(); ++ei) {
    const auto& e = graph.edges()[ei];
    const ProcId ps = mapping.procOf(e.src);
    const ProcId pd = mapping.procOf(e.dst);
    if (ps == pd || e.data == 0) {
      gc.edgeSrc_.push_back(e.src);
      gc.edgeDst_.push_back(e.dst);
      continue;
    }
    const ProcId link = getLink(ps, pd);
    Node comm;
    comm.commSrc = e.src;
    comm.commDst = e.dst;
    comm.proc = link;
    comm.len = e.data; // bandwidth normalised to 1
    const TaskId commId = static_cast<TaskId>(gc.nodes_.size());
    gc.nodes_.push_back(comm);
    gc.edgeSrc_.push_back(e.src);
    gc.edgeDst_.push_back(commId);
    gc.edgeSrc_.push_back(commId);
    gc.edgeDst_.push_back(e.dst);

    const Time prio =
        commPriority != nullptr
            ? (*commPriority)[static_cast<std::size_t>(e.src)]
            : static_cast<Time>(mapping.positionOf(e.src));
    linkComms[link].push_back(
        CommKey{prio, mapping.positionOf(e.src), ei, commId});
  }

  // Per-processor orders: compute processors take the mapping's order ...
  gc.procOrder_.resize(static_cast<std::size_t>(gc.procIdle_.size()));
  for (ProcId p = 0; p < realProcs; ++p) {
    const auto order = mapping.orderOn(p);
    gc.procOrder_[static_cast<std::size_t>(p)].assign(order.begin(),
                                                      order.end());
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      gc.edgeSrc_.push_back(order[i]);
      gc.edgeDst_.push_back(order[i + 1]);
    }
  }
  // ... and each link orders its communications by the fixed key (E'').
  for (auto& [link, comms] : linkComms) {
    std::sort(comms.begin(), comms.end());
    auto& order = gc.procOrder_[static_cast<std::size_t>(link)];
    order.reserve(comms.size());
    for (const CommKey& k : comms) order.push_back(k.node);
    for (std::size_t i = 0; i + 1 < comms.size(); ++i) {
      gc.edgeSrc_.push_back(comms[i].node);
      gc.edgeDst_.push_back(comms[i + 1].node);
    }
  }

  gc.finalize();
  return gc;
}

EnhancedGraph EnhancedGraph::fromParts(
    std::vector<Node> nodes, std::vector<std::pair<TaskId, TaskId>> edges,
    std::vector<Power> procIdle, std::vector<Power> procWork,
    std::vector<std::vector<TaskId>> procOrders) {
  CAWO_REQUIRE(procIdle.size() == procWork.size(),
               "procIdle/procWork size mismatch");
  CAWO_REQUIRE(procOrders.size() == procIdle.size(),
               "procOrders size mismatch");
  EnhancedGraph gc;
  gc.nodes_ = std::move(nodes);
  gc.procIdle_ = std::move(procIdle);
  gc.procWork_ = std::move(procWork);
  gc.procOrder_ = std::move(procOrders);
  gc.numRealProcs_ = static_cast<ProcId>(gc.procIdle_.size());

  const TaskId n = gc.numNodes();
  for (const Node& node : gc.nodes_) {
    CAWO_REQUIRE(node.proc >= 0 && node.proc < gc.numProcs(),
                 "node assigned to unknown processor");
    CAWO_REQUIRE(node.len >= 0, "negative node length");
  }

  std::set<std::pair<TaskId, TaskId>> present;
  for (const auto& [s, d] : edges) {
    CAWO_REQUIRE(s >= 0 && s < n && d >= 0 && d < n, "edge endpoint invalid");
    CAWO_REQUIRE(s != d, "self-loop in enhanced graph");
    gc.edgeSrc_.push_back(s);
    gc.edgeDst_.push_back(d);
    present.emplace(s, d);
  }

  // Per-processor orders define chain edges; add any that are missing.
  std::vector<std::size_t> seen(static_cast<std::size_t>(n), 0);
  for (ProcId p = 0; p < gc.numProcs(); ++p) {
    const auto& order = gc.procOrder_[static_cast<std::size_t>(p)];
    for (TaskId u : order) {
      CAWO_REQUIRE(u >= 0 && u < n, "procOrder references unknown node");
      CAWO_REQUIRE(gc.nodes_[static_cast<std::size_t>(u)].proc == p,
                   "procOrder lists a node of another processor");
      ++seen[static_cast<std::size_t>(u)];
    }
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      if (!present.count({order[i], order[i + 1]})) {
        gc.edgeSrc_.push_back(order[i]);
        gc.edgeDst_.push_back(order[i + 1]);
        present.emplace(order[i], order[i + 1]);
      }
    }
  }
  for (TaskId u = 0; u < n; ++u)
    CAWO_REQUIRE(seen[static_cast<std::size_t>(u)] == 1,
                 "every node must appear exactly once in a procOrder");

  gc.finalize();
  return gc;
}

void EnhancedGraph::finalize() {
  totalIdle_ = 0;
  for (Power p : procIdle_) totalIdle_ += p;

  // Dense SoA mirrors of the hot per-node fields (see enhanced_graph.hpp).
  lens_.resize(nodes_.size());
  procs_.resize(nodes_.size());
  nodeDraw_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    lens_[i] = nodes_[i].len;
    procs_[i] = nodes_[i].proc;
    const auto p = static_cast<std::size_t>(nodes_[i].proc);
    nodeDraw_[i] = procIdle_[p] + procWork_[p];
  }

  // Deduplicate edges: a precedence edge of the workflow and a chain edge
  // from the per-processor order may coincide; keeping one copy is enough.
  {
    std::vector<std::pair<TaskId, TaskId>> pairs;
    pairs.reserve(edgeSrc_.size());
    for (std::size_t i = 0; i < edgeSrc_.size(); ++i)
      pairs.emplace_back(edgeSrc_[i], edgeDst_[i]);
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    edgeSrc_.clear();
    edgeDst_.clear();
    for (const auto& [s, d] : pairs) {
      edgeSrc_.push_back(s);
      edgeDst_.push_back(d);
    }
  }

  const auto n = static_cast<std::size_t>(numNodes());
  succIndex_.assign(n + 1, 0);
  predIndex_.assign(n + 1, 0);
  for (std::size_t i = 0; i < edgeSrc_.size(); ++i) {
    ++succIndex_[static_cast<std::size_t>(edgeSrc_[i]) + 1];
    ++predIndex_[static_cast<std::size_t>(edgeDst_[i]) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    succIndex_[i] += succIndex_[i - 1];
    predIndex_[i] += predIndex_[i - 1];
  }
  succList_.resize(edgeSrc_.size());
  predList_.resize(edgeSrc_.size());
  std::vector<std::size_t> sPos(succIndex_.begin(), succIndex_.end() - 1);
  std::vector<std::size_t> pPos(predIndex_.begin(), predIndex_.end() - 1);
  for (std::size_t i = 0; i < edgeSrc_.size(); ++i) {
    succList_[sPos[static_cast<std::size_t>(edgeSrc_[i])]++] = edgeDst_[i];
    predList_[pPos[static_cast<std::size_t>(edgeDst_[i])]++] = edgeSrc_[i];
  }

  // Kahn topological order; the enhanced graph must be acyclic.
  std::vector<std::size_t> indeg(n, 0);
  for (TaskId d : edgeDst_) ++indeg[static_cast<std::size_t>(d)];
  std::queue<TaskId> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(static_cast<TaskId>(v));
  topo_.clear();
  topo_.reserve(n);
  while (!ready.empty()) {
    const TaskId v = ready.front();
    ready.pop();
    topo_.push_back(v);
    for (TaskId w : succs(v))
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push(w);
  }
  CAWO_REQUIRE(topo_.size() == n,
               "enhanced graph has a cycle — mapping order conflicts with "
               "precedence constraints");

  // Position-space renumbering of the hot kernel data: the worklist
  // propagation of WindowState indexes everything by topological position,
  // so the id↔position translation happens once here instead of per load.
  topoPos_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos)
    topoPos_[static_cast<std::size_t>(topo_[pos])] = static_cast<TaskId>(pos);
  lensByPos_.resize(n);
  posSuccIndex_.assign(n + 1, 0);
  posPredIndex_.assign(n + 1, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const auto u = static_cast<std::size_t>(topo_[pos]);
    lensByPos_[pos] = lens_[u];
    posSuccIndex_[pos + 1] =
        posSuccIndex_[pos] + (succIndex_[u + 1] - succIndex_[u]);
    posPredIndex_[pos + 1] =
        posPredIndex_[pos] + (predIndex_[u + 1] - predIndex_[u]);
  }
  posSuccList_.resize(succList_.size());
  posPredList_.resize(predList_.size());
  for (std::size_t pos = 0; pos < n; ++pos) {
    const auto u = static_cast<std::size_t>(topo_[pos]);
    std::size_t w = posSuccIndex_[pos];
    for (std::size_t e = succIndex_[u]; e < succIndex_[u + 1]; ++e)
      posSuccList_[w++] = topoPos_[static_cast<std::size_t>(succList_[e])];
    w = posPredIndex_[pos];
    for (std::size_t e = predIndex_[u]; e < predIndex_[u + 1]; ++e)
      posPredList_[w++] = topoPos_[static_cast<std::size_t>(predList_[e])];
  }
}

std::size_t EnhancedGraph::checked(TaskId u) const {
  CAWO_REQUIRE(u >= 0 && u < numNodes(), "node id out of range");
  return static_cast<std::size_t>(u);
}

Power EnhancedGraph::idlePower(ProcId p) const {
  CAWO_REQUIRE(p >= 0 && p < numProcs(), "processor id out of range");
  return procIdle_[static_cast<std::size_t>(p)];
}

Power EnhancedGraph::workPower(ProcId p) const {
  CAWO_REQUIRE(p >= 0 && p < numProcs(), "processor id out of range");
  return procWork_[static_cast<std::size_t>(p)];
}

std::span<const TaskId> EnhancedGraph::succs(TaskId u) const {
  const std::size_t i = checked(u);
  return {succList_.data() + succIndex_[i], succIndex_[i + 1] - succIndex_[i]};
}

std::span<const TaskId> EnhancedGraph::preds(TaskId u) const {
  const std::size_t i = checked(u);
  return {predList_.data() + predIndex_[i], predIndex_[i + 1] - predIndex_[i]};
}

std::span<const TaskId> EnhancedGraph::procOrder(ProcId p) const {
  CAWO_REQUIRE(p >= 0 && p < numProcs(), "processor id out of range");
  return procOrder_[static_cast<std::size_t>(p)];
}

Time EnhancedGraph::totalLength() const {
  Time sum = 0;
  for (const Node& node : nodes_) sum += node.len;
  return sum;
}

Time EnhancedGraph::criticalPathLength() const {
  std::vector<Time> finish(static_cast<std::size_t>(numNodes()), 0);
  Time best = 0;
  for (TaskId u : topo_) {
    Time start = 0;
    for (TaskId p : preds(u))
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    finish[static_cast<std::size_t>(u)] = start + len(u);
    best = std::max(best, finish[static_cast<std::size_t>(u)]);
  }
  return best;
}

} // namespace cawo
