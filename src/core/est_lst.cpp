#include "core/est_lst.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

std::vector<Time> computeEst(const EnhancedGraph& gc) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> est(n, 0);
  for (TaskId u : gc.topoOrder()) {
    Time ready = 0;
    for (TaskId p : gc.preds(u))
      ready = std::max(ready, est[static_cast<std::size_t>(p)] + gc.len(p));
    est[static_cast<std::size_t>(u)] = ready;
  }
  return est;
}

std::vector<Time> computeLst(const EnhancedGraph& gc, Time deadline) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> lst(n, 0);
  const auto& topo = gc.topoOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    Time latest = deadline - gc.len(u);
    for (TaskId s : gc.succs(u))
      latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
    lst[static_cast<std::size_t>(u)] = latest;
  }
  return lst;
}

void recomputeWindows(const EnhancedGraph& gc, Time deadline,
                      const Schedule& partial,
                      const std::vector<bool>& placed, std::vector<Time>& est,
                      std::vector<Time>& lst) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  CAWO_REQUIRE(placed.size() == n && est.size() == n && lst.size() == n,
               "recomputeWindows: size mismatch");
  const auto& topo = gc.topoOrder();

  for (TaskId u : topo) {
    const auto iu = static_cast<std::size_t>(u);
    if (placed[iu]) {
      est[iu] = partial.start(u);
      continue;
    }
    Time ready = 0;
    for (TaskId p : gc.preds(u))
      ready = std::max(ready, est[static_cast<std::size_t>(p)] + gc.len(p));
    est[iu] = ready;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    const auto iu = static_cast<std::size_t>(u);
    if (placed[iu]) {
      lst[iu] = partial.start(u);
      continue;
    }
    Time latest = deadline - gc.len(u);
    for (TaskId s : gc.succs(u))
      latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
    lst[iu] = latest;
  }
}

} // namespace cawo
