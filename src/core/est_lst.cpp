#include "core/est_lst.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

std::vector<Time> computeEst(const EnhancedGraph& gc) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> est(n, 0);
  for (TaskId u : gc.topoOrder()) {
    Time ready = 0;
    for (TaskId p : gc.preds(u))
      ready = std::max(ready, est[static_cast<std::size_t>(p)] + gc.len(p));
    est[static_cast<std::size_t>(u)] = ready;
  }
  return est;
}

std::vector<Time> computeLst(const EnhancedGraph& gc, Time deadline) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> lst(n, 0);
  const auto& topo = gc.topoOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    Time latest = deadline - gc.len(u);
    for (TaskId s : gc.succs(u))
      latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
    lst[static_cast<std::size_t>(u)] = latest;
  }
  return lst;
}

void recomputeWindows(const EnhancedGraph& gc, Time deadline,
                      const Schedule& partial,
                      const std::vector<bool>& placed, std::vector<Time>& est,
                      std::vector<Time>& lst) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  CAWO_REQUIRE(placed.size() == n && est.size() == n && lst.size() == n,
               "recomputeWindows: size mismatch");
  const auto& topo = gc.topoOrder();

  for (TaskId u : topo) {
    const auto iu = static_cast<std::size_t>(u);
    if (placed[iu]) {
      est[iu] = partial.start(u);
      continue;
    }
    Time ready = 0;
    for (TaskId p : gc.preds(u))
      ready = std::max(ready, est[static_cast<std::size_t>(p)] + gc.len(p));
    est[iu] = ready;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    const auto iu = static_cast<std::size_t>(u);
    if (placed[iu]) {
      lst[iu] = partial.start(u);
      continue;
    }
    Time latest = deadline - gc.len(u);
    for (TaskId s : gc.succs(u))
      latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
    lst[iu] = latest;
  }
}

// ---------------------------------------------------------------------------
// WindowState
// ---------------------------------------------------------------------------

WindowState::WindowState(const EnhancedGraph& gc, Time deadline)
    : WindowState(gc, deadline, computeEst(gc), computeLst(gc, deadline)) {}

WindowState::WindowState(const EnhancedGraph& gc, Time deadline,
                         std::vector<Time> initialEst,
                         std::vector<Time> initialLst)
    : gc_(&gc),
      deadline_(deadline),
      est_(std::move(initialEst)),
      lst_(std::move(initialLst)) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  CAWO_REQUIRE(est_.size() == n && lst_.size() == n,
               "WindowState: initial window size mismatch");
  placed_.assign(n, 0);
  queuedFwd_.assign(n, 0);
  queuedBwd_.assign(n, 0);
  heapFwd_.reserve(64);
  heapBwd_.reserve(64);
  initTopoPositions();
  for (std::size_t i = 0; i < n; ++i)
    if (est_[i] > lst_[i]) ++negativeSlack_;
}

std::size_t WindowState::checked(TaskId v) const {
  const auto i = static_cast<std::size_t>(v);
  CAWO_ASSERT(i < est_.size(), "WindowState: node id out of range");
  return i;
}

void WindowState::initTopoPositions() {
  const auto& topo = gc_->topoOrder();
  topoPos_.resize(topo.size());
  for (std::size_t pos = 0; pos < topo.size(); ++pos)
    topoPos_[static_cast<std::size_t>(topo[pos])] = static_cast<TaskId>(pos);
}

void WindowState::setEst(std::size_t i, Time value) {
  const bool wasNegative = est_[i] > lst_[i];
  est_[i] = value;
  const bool isNegative = est_[i] > lst_[i];
  if (isNegative && !wasNegative) ++negativeSlack_;
  if (!isNegative && wasNegative) --negativeSlack_;
}

void WindowState::setLst(std::size_t i, Time value) {
  const bool wasNegative = est_[i] > lst_[i];
  lst_[i] = value;
  const bool isNegative = est_[i] > lst_[i];
  if (isNegative && !wasNegative) ++negativeSlack_;
  if (!isNegative && wasNegative) --negativeSlack_;
}

void WindowState::place(TaskId v, Time start) {
  const std::size_t iv = checked(v);
  CAWO_REQUIRE(placed_[iv] == 0,
               "WindowState::place: task already placed");
  placed_[iv] = 1;
  ++numPlaced_;
  setEst(iv, start);
  setLst(iv, start);

  // The heaps order nodes by topological position so that every popped
  // node's relevant neighbours (preds forward, succs backward) are already
  // final — each affected node is recomputed exactly once per placement.
  const auto fwdLess = [&](TaskId a, TaskId b) {
    // std::push_heap builds a max-heap; invert for min-topo-position first.
    return topoPos_[static_cast<std::size_t>(a)] >
           topoPos_[static_cast<std::size_t>(b)];
  };
  const auto bwdLess = [&](TaskId a, TaskId b) {
    return topoPos_[static_cast<std::size_t>(a)] <
           topoPos_[static_cast<std::size_t>(b)];
  };
  const auto pushFwd = [&](TaskId u) {
    auto& queued = queuedFwd_[static_cast<std::size_t>(u)];
    if (queued) return;
    queued = 1;
    heapFwd_.push_back(u);
    std::push_heap(heapFwd_.begin(), heapFwd_.end(), fwdLess);
  };
  const auto pushBwd = [&](TaskId u) {
    auto& queued = queuedBwd_[static_cast<std::size_t>(u)];
    if (queued) return;
    queued = 1;
    heapBwd_.push_back(u);
    std::push_heap(heapBwd_.begin(), heapBwd_.end(), bwdLess);
  };

  for (const TaskId s : gc_->succs(v))
    if (placed_[static_cast<std::size_t>(s)] == 0) pushFwd(s);
  for (const TaskId p : gc_->preds(v))
    if (placed_[static_cast<std::size_t>(p)] == 0) pushBwd(p);

  while (!heapFwd_.empty()) {
    std::pop_heap(heapFwd_.begin(), heapFwd_.end(), fwdLess);
    const TaskId u = heapFwd_.back();
    heapFwd_.pop_back();
    const std::size_t iu = static_cast<std::size_t>(u);
    queuedFwd_[iu] = 0;
    Time ready = 0;
    for (const TaskId p : gc_->preds(u))
      ready = std::max(ready, est_[static_cast<std::size_t>(p)] + gc_->len(p));
    if (ready == est_[iu]) continue; // bound unchanged — stop propagating
    setEst(iu, ready);
    for (const TaskId s : gc_->succs(u))
      if (placed_[static_cast<std::size_t>(s)] == 0) pushFwd(s);
  }

  while (!heapBwd_.empty()) {
    std::pop_heap(heapBwd_.begin(), heapBwd_.end(), bwdLess);
    const TaskId u = heapBwd_.back();
    heapBwd_.pop_back();
    const std::size_t iu = static_cast<std::size_t>(u);
    queuedBwd_[iu] = 0;
    Time latest = deadline_ - gc_->len(u);
    for (const TaskId s : gc_->succs(u))
      latest =
          std::min(latest, lst_[static_cast<std::size_t>(s)] - gc_->len(u));
    if (latest == lst_[iu]) continue;
    setLst(iu, latest);
    for (const TaskId p : gc_->preds(u))
      if (placed_[static_cast<std::size_t>(p)] == 0) pushBwd(p);
  }
}

} // namespace cawo
