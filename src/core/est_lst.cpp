#include "core/est_lst.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/require.hpp"

namespace cawo {

std::vector<Time> computeEst(const EnhancedGraph& gc) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> est(n, 0);
  for (TaskId u : gc.topoOrder()) {
    Time ready = 0;
    for (TaskId p : gc.preds(u))
      ready = std::max(ready, est[static_cast<std::size_t>(p)] + gc.len(p));
    est[static_cast<std::size_t>(u)] = ready;
  }
  return est;
}

std::vector<Time> computeLst(const EnhancedGraph& gc, Time deadline) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  std::vector<Time> lst(n, 0);
  const auto& topo = gc.topoOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    Time latest = deadline - gc.len(u);
    for (TaskId s : gc.succs(u))
      latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
    lst[static_cast<std::size_t>(u)] = latest;
  }
  return lst;
}

void recomputeWindows(const EnhancedGraph& gc, Time deadline,
                      const Schedule& partial,
                      const std::vector<bool>& placed, std::vector<Time>& est,
                      std::vector<Time>& lst) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  CAWO_REQUIRE(placed.size() == n && est.size() == n && lst.size() == n,
               "recomputeWindows: size mismatch");
  const auto& topo = gc.topoOrder();

  for (TaskId u : topo) {
    const auto iu = static_cast<std::size_t>(u);
    if (placed[iu]) {
      est[iu] = partial.start(u);
      continue;
    }
    Time ready = 0;
    for (TaskId p : gc.preds(u))
      ready = std::max(ready, est[static_cast<std::size_t>(p)] + gc.len(p));
    est[iu] = ready;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    const auto iu = static_cast<std::size_t>(u);
    if (placed[iu]) {
      lst[iu] = partial.start(u);
      continue;
    }
    Time latest = deadline - gc.len(u);
    for (TaskId s : gc.succs(u))
      latest = std::min(latest, lst[static_cast<std::size_t>(s)] - gc.len(u));
    lst[iu] = latest;
  }
}

// ---------------------------------------------------------------------------
// WindowState
// ---------------------------------------------------------------------------

WindowState::WindowState(const EnhancedGraph& gc, Time deadline)
    : WindowState(gc, deadline, computeEst(gc), computeLst(gc, deadline)) {}

WindowState::WindowState(const EnhancedGraph& gc, Time deadline,
                         std::vector<Time> initialEst,
                         std::vector<Time> initialLst)
    : gc_(&gc), deadline_(deadline) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  CAWO_REQUIRE(initialEst.size() == n && initialLst.size() == n,
               "WindowState: initial window size mismatch");
  // Scatter the id-indexed seeds into position space (see est_lst.hpp).
  const auto pos = gc.topoPositions();
  const auto len = gc.lensByPos();
  estP_.resize(n);
  lstP_.resize(n);
  finishP_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<std::size_t>(pos[i]);
    estP_[pi] = initialEst[i];
    lstP_[pi] = initialLst[i];
  }
  for (std::size_t p = 0; p < n; ++p) finishP_[p] = estP_[p] + len[p];
  placedP_.assign(n, 0);
  pendFwd_.assign(n / 64 + 1, 0);
  pendBwd_.assign(n / 64 + 1, 0);
  for (std::size_t p = 0; p < n; ++p)
    if (estP_[p] > lstP_[p]) ++negativeSlack_;
}

std::size_t WindowState::checked(TaskId v) const {
  const auto i = static_cast<std::size_t>(v);
  CAWO_ASSERT(i < estP_.size(), "WindowState: node id out of range");
  return i;
}

std::vector<Time> WindowState::estAll() const {
  const auto& topo = gc_->topoOrder();
  std::vector<Time> out(estP_.size());
  for (std::size_t p = 0; p < estP_.size(); ++p)
    out[static_cast<std::size_t>(topo[p])] = estP_[p];
  return out;
}

std::vector<Time> WindowState::lstAll() const {
  const auto& topo = gc_->topoOrder();
  std::vector<Time> out(lstP_.size());
  for (std::size_t p = 0; p < lstP_.size(); ++p)
    out[static_cast<std::size_t>(topo[p])] = lstP_[p];
  return out;
}

void WindowState::setEst(std::size_t pos, Time value) {
  const bool wasNegative = estP_[pos] > lstP_[pos];
  estP_[pos] = value;
  finishP_[pos] = value + gc_->lensByPos()[pos];
  const bool isNegative = estP_[pos] > lstP_[pos];
  if (isNegative && !wasNegative) ++negativeSlack_;
  if (!isNegative && wasNegative) --negativeSlack_;
}

void WindowState::setLst(std::size_t pos, Time value) {
  const bool wasNegative = estP_[pos] > lstP_[pos];
  lstP_[pos] = value;
  const bool isNegative = estP_[pos] > lstP_[pos];
  if (isNegative && !wasNegative) ++negativeSlack_;
  if (!isNegative && wasNegative) --negativeSlack_;
}

void WindowState::place(TaskId v, Time start) {
  const std::size_t pv = posOf(checked(v));
  CAWO_REQUIRE(placedP_[pv] == 0,
               "WindowState::place: task already placed");
  placedP_[pv] = 1;
  ++numPlaced_;
  const bool estChanged = estP_[pv] != start;
  const bool lstChanged = lstP_[pv] != start;
  setEst(pv, start);
  setLst(pv, start);

  // Everything below runs in position space: adjacency, lengths and the
  // windows are all position-indexed, so the loops are plain dense-array
  // walks with the base pointers in registers.
  const Time* const len = gc_->lensByPos().data();
  const std::size_t* const sOff = gc_->posSuccOffsets().data();
  const TaskId* const sAdj = gc_->posSuccAdjacency().data();
  const std::size_t* const pOff = gc_->posPredOffsets().data();
  const TaskId* const pAdj = gc_->posPredAdjacency().data();
  const std::uint8_t* const placed = placedP_.data();
  const Time* const finish = finishP_.data();

  // Pending-set bitmaps scanned in position order: every popped node's
  // relevant neighbours (preds forward, succs backward) are already final,
  // so each affected node is recomputed exactly once per placement.
  // Forward pushes always target strictly larger positions (successors),
  // backward strictly smaller, so a single monotone scan never misses a
  // late push. Scan bounds [wlo, whi] track the touched words.
  std::uint64_t* const pendF = pendFwd_.data();
  std::uint64_t* const pendB = pendBwd_.data();
  std::size_t wlo = std::numeric_limits<std::size_t>::max();
  std::size_t whi = 0;
  const auto mark = [&](std::uint64_t* pend, std::size_t pu) {
    pend[pu >> 6] |= std::uint64_t{1} << (pu & 63);
    wlo = std::min(wlo, pu >> 6);
    whi = std::max(whi, pu >> 6);
  };

  // A seed whose bound did not move cannot change its neighbours' bounds —
  // the relaxation would pop them and find nothing to do, so skip queueing
  // that side entirely.
  if (estChanged)
    for (std::size_t e = sOff[pv]; e < sOff[pv + 1]; ++e) {
      const auto ps = static_cast<std::size_t>(sAdj[e]);
      if (placed[ps] == 0) mark(pendF, ps);
    }
  if (wlo != std::numeric_limits<std::size_t>::max()) {
    for (std::size_t w = wlo; w <= whi; ++w) {
      while (pendF[w] != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(pendF[w]));
        pendF[w] &= pendF[w] - 1;
        const std::size_t pu = (w << 6) | b;
        Time ready = 0;
        for (std::size_t e = pOff[pu]; e < pOff[pu + 1]; ++e)
          ready = std::max(ready, finish[static_cast<std::size_t>(pAdj[e])]);
        if (ready == estP_[pu]) continue; // bound unchanged — stop here
        setEst(pu, ready);
        for (std::size_t e = sOff[pu]; e < sOff[pu + 1]; ++e) {
          const auto ps = static_cast<std::size_t>(sAdj[e]);
          if (placed[ps] == 0) mark(pendF, ps);
        }
      }
    }
  }

  wlo = std::numeric_limits<std::size_t>::max();
  whi = 0;
  if (lstChanged)
    for (std::size_t e = pOff[pv]; e < pOff[pv + 1]; ++e) {
      const auto pp = static_cast<std::size_t>(pAdj[e]);
      if (placed[pp] == 0) mark(pendB, pp);
    }
  if (wlo != std::numeric_limits<std::size_t>::max()) {
    for (std::size_t w = whi + 1; w-- > wlo;) {
      while (pendB[w] != 0) {
        const auto b =
            static_cast<unsigned>(63 - std::countl_zero(pendB[w]));
        pendB[w] &= ~(std::uint64_t{1} << b);
        const std::size_t pu = (w << 6) | b;
        const Time lenU = len[pu];
        Time latest = deadline_ - lenU;
        for (std::size_t e = sOff[pu]; e < sOff[pu + 1]; ++e)
          latest =
              std::min(latest, lstP_[static_cast<std::size_t>(sAdj[e])] - lenU);
        if (latest == lstP_[pu]) continue;
        setLst(pu, latest);
        for (std::size_t e = pOff[pu]; e < pOff[pu + 1]; ++e) {
          const auto pp = static_cast<std::size_t>(pAdj[e]);
          if (placed[pp] == 0) mark(pendB, pp);
        }
      }
    }
  }
}

} // namespace cawo
