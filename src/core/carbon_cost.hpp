#pragma once

#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"
#include "util/types.hpp"

/// \file carbon_cost.hpp
/// Carbon cost of a schedule (Section 3 / Appendix A.1).
///
/// At time t in interval I_j the platform draws
///   P_t = Σ_i P_idle^i + Σ_{u active at t} P_work^{proc(u)}
/// and the carbon cost is CC_t = max(P_t − G_j, 0). The total is Σ_t CC_t.
///
/// `evaluateCost` is the polynomial sweep-line evaluator of Appendix A.1
/// (subintervals between task start/end events and interval boundaries);
/// `evaluateCostReference` loops over individual time units and exists to
/// cross-check the sweep in tests (pseudo-polynomial, O(T + N)).

namespace cawo {

/// Polynomial carbon-cost evaluation, O((N + J) log(N + J)).
/// The schedule must be complete; it may run past the profile horizon only
/// if the caller extended the profile accordingly.
Cost evaluateCost(const EnhancedGraph& gc, const PowerProfile& profile,
                  const Schedule& s);

/// Pseudo-polynomial reference evaluation (test oracle).
Cost evaluateCostReference(const EnhancedGraph& gc, const PowerProfile& profile,
                           const Schedule& s);

/// Per-interval cost decomposition (for reporting / plotting).
struct CostBreakdown {
  Cost total = 0;
  std::vector<Cost> perInterval;  ///< aligned with profile.intervals()
  Power peakPower = 0;            ///< max P_t over the horizon
  Cost greenEnergyUsed = 0;       ///< Σ_t min(P_t, G_t)
  Cost brownEnergyUsed = 0;       ///< Σ_t max(P_t − G_t, 0) == total
};

CostBreakdown evaluateCostBreakdown(const EnhancedGraph& gc,
                                    const PowerProfile& profile,
                                    const Schedule& s);

/// Carbon cost of a trajectory with explicit per-node durations (the online
/// replay engine bills *actual* runtimes, which may differ from ω(u)).
/// Identical to `evaluateCost` when `durations[u] == gc.len(u)` for all u —
/// same sweep, bit for bit. Time past the profile horizon (a perturbed run
/// overshooting the plan) is billed with a green budget of 0: everything
/// drawn there is brown.
Cost evaluateCostWithDurations(const EnhancedGraph& gc,
                               const PowerProfile& profile, const Schedule& s,
                               const std::vector<Time>& durations);

/// Carbon cost of a *pinned prefix*: the (possibly partial) trajectory `s`
/// restricted to the window [0, upTo). Nodes without a start are ignored;
/// contributions are clipped at `upTo`. The idle floor accrues over the
/// whole window. Used by the online engine both for billing the executed
/// prefix against the actual profile and for the reactive policy's
/// forecast-deviation signal.
Cost evaluateCostPrefix(const EnhancedGraph& gc, const PowerProfile& profile,
                        const Schedule& s, const std::vector<Time>& durations,
                        Time upTo);

/// Schedule-independent lower bound on the carbon cost of *any* complete
/// schedule within the profile horizon: the maximum of
///   (a) the idle floor Σ_t max(Σ_i P_idle^i − G_t, 0) — the platform draws
///       at least its idle power at every time unit; and
///   (b) the energy balance max(E_total − E_green, 0) with
///       E_total = Σ_i P_idle^i · T + Σ_u P_work^{proc(u)} · ω(u) and
///       E_green = Σ_j G_j · |I_j| — total demand is schedule-independent
///       and green energy can at best be used in full.
/// Used by the campaign engine to report per-instance optimality gaps.
Cost carbonLowerBound(const EnhancedGraph& gc, const PowerProfile& profile);

} // namespace cawo
