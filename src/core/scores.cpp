#include "core/scores.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace cawo {

std::vector<double> computeScores(const EnhancedGraph& gc,
                                  const std::vector<Time>& est,
                                  const std::vector<Time>& lst,
                                  const ScoreOptions& opts) {
  const auto n = static_cast<std::size_t>(gc.numNodes());
  CAWO_REQUIRE(est.size() == n && lst.size() == n, "est/lst size mismatch");

  Power maxCombined = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p)
    maxCombined = std::max(maxCombined, gc.idlePower(p) + gc.workPower(p));
  CAWO_REQUIRE(maxCombined > 0, "platform draws no power at all");

  std::vector<double> score(n, 0.0);
  for (TaskId v = 0; v < gc.numNodes(); ++v) {
    const auto iv = static_cast<std::size_t>(v);
    const double slack = static_cast<double>(lst[iv] - est[iv]);
    CAWO_REQUIRE(slack >= 0.0, "negative slack — instance is infeasible");
    const double omega = static_cast<double>(gc.len(v));
    const ProcId p = gc.procOf(v);
    const double wf =
        static_cast<double>(gc.idlePower(p) + gc.workPower(p)) /
        static_cast<double>(maxCombined);

    if (opts.base == BaseScore::Slack) {
      score[iv] = opts.weighted ? slack / wf : slack;
    } else {
      const double denom = slack + omega;
      const double rho = denom > 0.0 ? omega / denom : 1.0;
      score[iv] = opts.weighted ? rho * wf : rho;
    }
  }
  return score;
}

std::vector<TaskId> scoreOrder(const EnhancedGraph& gc,
                               const std::vector<Time>& est,
                               const std::vector<Time>& lst,
                               const ScoreOptions& opts) {
  const std::vector<double> score = computeScores(gc, est, lst, opts);
  std::vector<TaskId> order(static_cast<std::size_t>(gc.numNodes()));
  std::iota(order.begin(), order.end(), TaskId{0});
  const bool ascending = (opts.base == BaseScore::Slack);
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double sa = score[static_cast<std::size_t>(a)];
    const double sb = score[static_cast<std::size_t>(b)];
    if (sa != sb) return ascending ? sa < sb : sa > sb;
    return a < b;
  });
  return order;
}

} // namespace cawo
