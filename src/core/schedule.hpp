#pragma once

#include <string>
#include <vector>

#include "core/enhanced_graph.hpp"
#include "util/types.hpp"

/// \file schedule.hpp
/// A schedule assigns a start time σ(u) to every node of the enhanced graph
/// (compute *and* communication tasks). Validation checks precedence,
/// deadline, and per-processor exclusivity.

namespace cawo {

class Schedule {
public:
  Schedule() = default;
  explicit Schedule(TaskId numNodes)
      : start_(static_cast<std::size_t>(numNodes), -1) {}

  TaskId numNodes() const { return static_cast<TaskId>(start_.size()); }

  void setStart(TaskId u, Time t) { start_[checked(u)] = t; }
  Time start(TaskId u) const { return start_[checked(u)]; }
  bool isSet(TaskId u) const { return start_[checked(u)] >= 0; }

  /// Completion time of node u (requires the graph for ω(u)).
  Time end(TaskId u, const EnhancedGraph& gc) const {
    return start(u) + gc.len(u);
  }

  /// Latest completion time over all nodes.
  Time makespan(const EnhancedGraph& gc) const;

  const std::vector<Time>& starts() const { return start_; }

private:
  std::size_t checked(TaskId u) const;
  std::vector<Time> start_;
};

struct ValidationResult {
  bool ok = true;
  std::string message; ///< empty when ok; first violation otherwise

  explicit operator bool() const { return ok; }
};

/// Check that `s` is a feasible schedule for `gc` under deadline `deadline`:
/// all starts set and non-negative, every node finishes by the deadline,
/// every precedence edge of Gc is respected, and no two nodes overlap on the
/// same (enhanced) processor.
ValidationResult validateSchedule(const EnhancedGraph& gc, const Schedule& s,
                                  Time deadline);

} // namespace cawo
