#include "core/schedule_io.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

void writeScheduleCsv(std::ostream& out, const EnhancedGraph& gc,
                      const Schedule& schedule, const TaskGraph* names) {
  CAWO_REQUIRE(schedule.numNodes() == gc.numNodes(),
               "schedule does not match graph");
  out << "node,kind,name,proc,start,end,len\n";
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    const auto& node = gc.node(u);
    std::string name;
    if (gc.isCommTask(u)) {
      name = std::to_string(node.commSrc) + "->" + std::to_string(node.commDst);
    } else if (names != nullptr && node.original < names->numTasks()) {
      name = names->name(node.original);
    } else {
      name = "task" + std::to_string(node.original);
    }
    // Commas inside names would break the CSV; replace them.
    std::replace(name.begin(), name.end(), ',', ';');
    out << u << ',' << (gc.isCommTask(u) ? "comm" : "task") << ',' << name
        << ',' << node.proc << ',' << schedule.start(u) << ','
        << schedule.end(u, gc) << ',' << node.len << '\n';
  }
}

std::string toScheduleCsvString(const EnhancedGraph& gc,
                                const Schedule& schedule,
                                const TaskGraph* names) {
  std::ostringstream os;
  writeScheduleCsv(os, gc, schedule, names);
  return os.str();
}

void writeScheduleCsvFile(const std::string& path, const EnhancedGraph& gc,
                          const Schedule& schedule, const TaskGraph* names) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open schedule CSV for writing: " + path);
  writeScheduleCsv(out, gc, schedule, names);
}

void printGantt(std::ostream& out, const EnhancedGraph& gc,
                const Schedule& schedule, Time horizon, int width) {
  CAWO_REQUIRE(horizon > 0, "horizon must be positive");
  CAWO_REQUIRE(width >= 10, "gantt needs at least 10 columns");
  const double scale = static_cast<double>(width) /
                       static_cast<double>(horizon);
  for (ProcId p = 0; p < gc.numProcs(); ++p) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const TaskId u : gc.procOrder(p)) {
      const auto a = static_cast<std::size_t>(
          std::min<double>(width - 1, schedule.start(u) * scale));
      auto b = static_cast<std::size_t>(
          std::min<double>(width, schedule.end(u, gc) * scale));
      if (b <= a) b = a + 1;
      const char mark = gc.isCommTask(u)
                            ? '~'
                            : static_cast<char>('A' + (u % 26));
      for (std::size_t c = a; c < b && c < row.size(); ++c) row[c] = mark;
    }
    const std::string label =
        (p < gc.numRealProcs() ? "p" : "link") + std::to_string(p);
    out << padRight(label, 8) << '|' << row << "|\n";
  }
  out << padRight("", 8) << ' ' << padRight("0", static_cast<std::size_t>(width - 1))
      << horizon << "\n";
}

} // namespace cawo
