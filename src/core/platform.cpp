#include "core/platform.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

ProcId Platform::addProcessor(ProcessorSpec spec) {
  CAWO_REQUIRE(spec.speed >= 1, "processor speed must be >= 1");
  CAWO_REQUIRE(spec.idlePower >= 0 && spec.workPower >= 0,
               "power values must be non-negative");
  procs_.push_back(std::move(spec));
  return static_cast<ProcId>(procs_.size() - 1);
}

const ProcessorSpec& Platform::proc(ProcId p) const {
  CAWO_REQUIRE(p >= 0 && p < numProcessors(), "processor id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

Time Platform::execTime(Work work, ProcId p) const {
  const ProcessorSpec& s = proc(p);
  if (work <= 0) return 0;
  return (work + s.speed - 1) / s.speed;
}

Power Platform::totalIdlePower() const {
  Power sum = 0;
  for (const auto& s : procs_) sum += s.idlePower;
  return sum;
}

Power Platform::totalWorkPower() const {
  Power sum = 0;
  for (const auto& s : procs_) sum += s.workPower;
  return sum;
}

Power Platform::maxCombinedPower() const {
  Power best = 0;
  for (const auto& s : procs_) best = std::max(best, s.idlePower + s.workPower);
  return best;
}

const std::vector<ProcessorSpec>& Platform::paperTypes() {
  // Table 1 of the paper, verbatim.
  static const std::vector<ProcessorSpec> kTypes = {
      {"PT1", 4, 40, 10},  {"PT2", 6, 60, 30},   {"PT3", 8, 80, 40},
      {"PT4", 12, 120, 50}, {"PT5", 16, 150, 70}, {"PT6", 32, 200, 100},
  };
  return kTypes;
}

Platform Platform::scaled(int nodesPerType) {
  CAWO_REQUIRE(nodesPerType >= 1, "need at least one node per type");
  Platform pf;
  for (const auto& t : paperTypes()) {
    for (int i = 0; i < nodesPerType; ++i) {
      ProcessorSpec s = t;
      s.type = t.type + "_" + std::to_string(i);
      pf.addProcessor(std::move(s));
    }
  }
  return pf;
}

Platform Platform::paperSmall() { return scaled(12); }

Platform Platform::paperLarge() { return scaled(24); }

Platform Platform::uniform(int numProcs, std::int64_t speed, Power idle,
                           Power work) {
  CAWO_REQUIRE(numProcs >= 1, "need at least one processor");
  Platform pf;
  for (int i = 0; i < numProcs; ++i) {
    pf.addProcessor({"U" + std::to_string(i), speed, idle, work});
  }
  return pf;
}

} // namespace cawo
