#include "core/instance_hash.hpp"

namespace cawo {

std::uint64_t instanceHash(const EnhancedGraph& gc,
                           const PowerProfile& profile, Time deadline) {
  Fnv1aHasher h;

  // Node table: kind (compute task id or comm endpoints), mapping and
  // duration. A change to any ω(u), any task→processor assignment or the
  // graph shape lands here.
  h.mixU64(static_cast<std::uint64_t>(gc.numNodes()));
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    const EnhancedGraph::Node& node = gc.node(u);
    h.mixI64(node.original);
    h.mixI64(node.commSrc);
    h.mixI64(node.commDst);
    h.mixI64(node.proc);
    h.mixI64(node.len);
  }

  // Edge list, in construction order (deterministic for a given builder).
  h.mixU64(gc.numEdges());
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    for (const TaskId v : gc.succs(u)) {
      h.mixI64(u);
      h.mixI64(v);
    }

  // Processor power model and the fixed execution orders (the ordering
  // part of the mapping: swapping two tasks on one processor changes the
  // instance even with identical assignments).
  h.mixU64(static_cast<std::uint64_t>(gc.numProcs()));
  h.mixU64(static_cast<std::uint64_t>(gc.numRealProcs()));
  for (ProcId p = 0; p < gc.numProcs(); ++p) {
    h.mixI64(gc.idlePower(p));
    h.mixI64(gc.workPower(p));
    const auto order = gc.procOrder(p);
    h.mixU64(order.size());
    for (const TaskId u : order) h.mixI64(u);
  }

  // Realized power profile — the deterministic expansion of the profile
  // spec over the instance's horizon.
  h.mixU64(profile.numIntervals());
  for (const Interval& interval : profile.intervals()) {
    h.mixI64(interval.begin);
    h.mixI64(interval.end);
    h.mixI64(interval.green);
  }

  h.mixI64(deadline);
  return h.value();
}

std::string instanceHashHex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

} // namespace cawo
