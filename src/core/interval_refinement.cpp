#include "core/interval_refinement.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

std::vector<Time> refinementCutPoints(const EnhancedGraph& gc,
                                      const PowerProfile& profile, int k) {
  CAWO_REQUIRE(k >= 1, "block size must be at least 1");
  const Time horizon = profile.horizon();
  const std::vector<Time> boundaries = profile.boundaries();

  std::vector<Time> cuts;
  for (ProcId p = 0; p < gc.numProcs(); ++p) {
    const auto order = gc.procOrder(p);
    const std::size_t np = order.size();
    if (np == 0) continue;

    // Prefix lengths of the processor's task sequence for O(1) block sums.
    std::vector<Time> prefix(np + 1, 0);
    for (std::size_t i = 0; i < np; ++i)
      prefix[i + 1] = prefix[i] + gc.len(order[i]);

    for (std::size_t first = 0; first < np; ++first) {
      const std::size_t lastLimit =
          std::min(np, first + static_cast<std::size_t>(k));
      for (std::size_t last = first + 1; last <= lastLimit; ++last) {
        // Block covers order[first .. last-1].
        const Time blockLen = prefix[last] - prefix[first];
        for (const Time e : boundaries) {
          // Block starts at e: task m starts at e + (prefix[m]-prefix[first])
          if (e + blockLen <= horizon) {
            for (std::size_t m = first; m < last; ++m) {
              const Time t = e + (prefix[m] - prefix[first]);
              if (t > 0 && t < horizon) cuts.push_back(t);
            }
          }
          // Block ends at e: task m starts at e − (prefix[last]-prefix[m]).
          if (e - blockLen >= 0) {
            for (std::size_t m = first; m < last; ++m) {
              const Time t = e - (prefix[last] - prefix[m]);
              if (t > 0 && t < horizon) cuts.push_back(t);
            }
          }
        }
      }
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  // Times that are already interval boundaries are not *new* cut points.
  std::vector<Time> sortedBoundaries = boundaries;
  std::sort(sortedBoundaries.begin(), sortedBoundaries.end());
  std::vector<Time> fresh;
  fresh.reserve(cuts.size());
  std::set_difference(cuts.begin(), cuts.end(), sortedBoundaries.begin(),
                      sortedBoundaries.end(), std::back_inserter(fresh));
  return fresh;
}

std::vector<Interval> splitIntervalsAt(std::span<const Interval> intervals,
                                       const std::vector<Time>& cuts) {
  std::vector<Interval> out;
  out.reserve(intervals.size() + cuts.size());
  std::size_t ci = 0;
  for (const Interval& iv : intervals) {
    Time begin = iv.begin;
    while (ci < cuts.size() && cuts[ci] <= iv.begin) ++ci;
    std::size_t cj = ci;
    while (cj < cuts.size() && cuts[cj] < iv.end) {
      out.push_back(Interval{begin, cuts[cj], iv.green});
      begin = cuts[cj];
      ++cj;
    }
    out.push_back(Interval{begin, iv.end, iv.green});
    ci = cj;
  }
  return out;
}

std::vector<Interval> refineIntervals(const EnhancedGraph& gc,
                                      const PowerProfile& profile, int k) {
  const std::vector<Time> cuts = refinementCutPoints(gc, profile, k);
  return splitIntervalsAt(profile.intervals(), cuts);
}

} // namespace cawo
