#include "core/interval_refinement.hpp"

#include <algorithm>
#include <atomic>

#include "util/parallel.hpp"
#include "util/require.hpp"

namespace cawo {

namespace {

/// Emit every candidate cut point of processor `p` into `emit(t)`,
/// t guaranteed in (0, horizon). Shared by the dense and sparse paths.
template <typename Emit>
void emitCutsForProc(const EnhancedGraph& gc,
                     const std::vector<Time>& boundaries, Time horizon, int k,
                     ProcId p, Emit&& emit) {
  const auto order = gc.procOrder(p);
  const std::size_t np = order.size();
  if (np == 0) return;

  // Prefix lengths of the processor's task sequence for O(1) block sums.
  // Thread-local so the worker that handles many processors allocates the
  // buffer once, not once per processor.
  thread_local std::vector<Time> prefix;
  prefix.resize(np + 1);
  prefix[0] = 0;
  for (std::size_t i = 0; i < np; ++i)
    prefix[i + 1] = prefix[i] + gc.len(order[i]);

  for (std::size_t first = 0; first < np; ++first) {
    const std::size_t lastLimit =
        std::min(np, first + static_cast<std::size_t>(k));
    for (std::size_t last = first + 1; last <= lastLimit; ++last) {
      // Block covers order[first .. last-1].
      const Time blockLen = prefix[last] - prefix[first];
      for (const Time e : boundaries) {
        // Block starts at e: task m starts at e + (prefix[m]-prefix[first])
        if (e + blockLen <= horizon) {
          for (std::size_t m = first; m < last; ++m) {
            const Time t = e + (prefix[m] - prefix[first]);
            if (t > 0 && t < horizon) emit(t);
          }
        }
        // Block ends at e: task m starts at e − (prefix[last]-prefix[m]).
        if (e - blockLen >= 0) {
          for (std::size_t m = first; m < last; ++m) {
            const Time t = e - (prefix[last] - prefix[m]);
            if (t > 0 && t < horizon) emit(t);
          }
        }
      }
    }
  }
}

/// Horizon cap for the dense mark table (bytes). Block-alignment emits
/// O(procs · np · k² · |boundaries|) candidate times with massive
/// duplication; below this cap a byte-per-time-unit table replaces the
/// collect-then-sort entirely, and because marking is idempotent and
/// commutative the result is independent of emission order — and thus of
/// the thread count.
constexpr Time kDenseHorizonLimit = Time(1) << 26;

} // namespace

std::vector<Time> refinementCutPoints(const EnhancedGraph& gc,
                                      const PowerProfile& profile, int k,
                                      unsigned threads,
                                      RefinementScratch* scratch) {
  CAWO_REQUIRE(k >= 1, "block size must be at least 1");
  const Time horizon = profile.horizon();
  const std::vector<Time> boundaries = profile.boundaries();
  const std::size_t numProcs = static_cast<std::size_t>(gc.numProcs());

  if (horizon > 0 && horizon <= kDenseHorizonLimit) {
    // Dense path: one byte per time unit, written through relaxed
    // `atomic_ref`s. Relaxed is enough — every writer stores the same value
    // and parallelFor's join synchronises the (plain) readers below. The
    // table lives in the caller's scratch when given, so repeated
    // refinements reuse the allocation instead of faulting a fresh one.
    const auto n = static_cast<std::size_t>(horizon);
    RefinementScratch local;
    RefinementScratch& s = scratch != nullptr ? *scratch : local;
    s.marks.assign(n, 0);
    std::uint8_t* const marks = s.marks.data();
    parallelFor(numProcs, threads, [&](std::size_t p) {
      emitCutsForProc(gc, boundaries, horizon, k, static_cast<ProcId>(p),
                      [&](Time t) {
                        std::atomic_ref<std::uint8_t>(
                            marks[static_cast<std::size_t>(t)])
                            .store(1, std::memory_order_relaxed);
                      });
    });
    // Times that are already interval boundaries are not *new* cut points.
    for (const Time b : boundaries)
      if (b > 0 && b < horizon) marks[static_cast<std::size_t>(b)] = 0;
    std::vector<Time> fresh;
    for (std::size_t t = 1; t < n; ++t)
      if (marks[t]) fresh.push_back(static_cast<Time>(t));
    return fresh;
  }

  // Sparse fallback (very long horizons): collect per processor, then
  // sort + unique. Still deterministic — per-processor buckets are merged
  // in processor order regardless of completion order.
  std::vector<std::vector<Time>> perProc(numProcs);
  parallelFor(numProcs, threads, [&](std::size_t p) {
    emitCutsForProc(gc, boundaries, horizon, k, static_cast<ProcId>(p),
                    [&](Time t) { perProc[p].push_back(t); });
  });
  std::vector<Time> cuts;
  for (const auto& bucket : perProc)
    cuts.insert(cuts.end(), bucket.begin(), bucket.end());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<Time> sortedBoundaries = boundaries;
  std::sort(sortedBoundaries.begin(), sortedBoundaries.end());
  std::vector<Time> fresh;
  fresh.reserve(cuts.size());
  std::set_difference(cuts.begin(), cuts.end(), sortedBoundaries.begin(),
                      sortedBoundaries.end(), std::back_inserter(fresh));
  return fresh;
}

std::vector<Interval> splitIntervalsAt(std::span<const Interval> intervals,
                                       const std::vector<Time>& cuts) {
  std::vector<Interval> out;
  out.reserve(intervals.size() + cuts.size());
  std::size_t ci = 0;
  for (const Interval& iv : intervals) {
    Time begin = iv.begin;
    while (ci < cuts.size() && cuts[ci] <= iv.begin) ++ci;
    std::size_t cj = ci;
    while (cj < cuts.size() && cuts[cj] < iv.end) {
      out.push_back(Interval{begin, cuts[cj], iv.green});
      begin = cuts[cj];
      ++cj;
    }
    out.push_back(Interval{begin, iv.end, iv.green});
    ci = cj;
  }
  return out;
}

std::vector<Interval> refineIntervals(const EnhancedGraph& gc,
                                      const PowerProfile& profile, int k,
                                      unsigned threads,
                                      RefinementScratch* scratch) {
  const std::vector<Time> cuts =
      refinementCutPoints(gc, profile, k, threads, scratch);
  return splitIntervalsAt(profile.intervals(), cuts);
}

} // namespace cawo
