#include "core/schedule.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

std::size_t Schedule::checked(TaskId u) const {
  CAWO_REQUIRE(u >= 0 && u < numNodes(), "node id out of range");
  return static_cast<std::size_t>(u);
}

Time Schedule::makespan(const EnhancedGraph& gc) const {
  Time m = 0;
  for (TaskId u = 0; u < numNodes(); ++u)
    if (isSet(u)) m = std::max(m, end(u, gc));
  return m;
}

ValidationResult validateSchedule(const EnhancedGraph& gc, const Schedule& s,
                                  Time deadline) {
  auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };
  if (s.numNodes() != gc.numNodes())
    return fail("schedule size does not match graph");

  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    if (!s.isSet(u))
      return fail("node " + std::to_string(u) + " has no start time");
    if (s.end(u, gc) > deadline)
      return fail("node " + std::to_string(u) + " finishes at " +
                  std::to_string(s.end(u, gc)) + " past deadline " +
                  std::to_string(deadline));
  }

  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    for (TaskId v : gc.succs(u)) {
      if (s.start(v) < s.end(u, gc))
        return fail("precedence violated: node " + std::to_string(v) +
                    " starts at " + std::to_string(s.start(v)) +
                    " before predecessor " + std::to_string(u) +
                    " completes at " + std::to_string(s.end(u, gc)));
    }
  }

  // Exclusivity per enhanced processor. The ordering chain edges normally
  // already enforce this; checking explicitly guards fromParts-built graphs
  // and catches library bugs.
  for (ProcId p = 0; p < gc.numProcs(); ++p) {
    std::vector<TaskId> tasks(gc.procOrder(p).begin(), gc.procOrder(p).end());
    std::sort(tasks.begin(), tasks.end(),
              [&](TaskId a, TaskId b) { return s.start(a) < s.start(b); });
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
      if (s.end(tasks[i], gc) > s.start(tasks[i + 1]))
        return fail("nodes " + std::to_string(tasks[i]) + " and " +
                    std::to_string(tasks[i + 1]) + " overlap on processor " +
                    std::to_string(p));
    }
  }
  return {};
}

} // namespace cawo
