#pragma once

#include <cstdint>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"
#include "core/scores.hpp"

/// \file greedy.hpp
/// The greedy phase of CaWoSched (Section 5.2).
///
/// Tasks are processed in score order. For each task the algorithm picks,
/// among the (possibly refined) intervals whose begin lies in
/// [EST(v), LST(v)], the one with the highest remaining green budget
/// (earliest on ties) and starts the task there; if no interval begin is
/// reachable, the task starts at EST(v). After placement, the working
/// intervals are split at the task's boundaries, their budgets are reduced
/// by P_idle + P_work of the task's processor, and the EST/LST windows of
/// the remaining tasks are re-tightened — incrementally, via
/// `WindowState` worklist propagation, instead of the paper-literal full
/// sweep (same fixpoint, so the schedules are bit-identical). The window
/// update after the *last* placement is dead (nobody reads the windows
/// again) and is skipped.

namespace cawo {

class SolveContext;

struct GreedyOptions {
  BaseScore base = BaseScore::Pressure;
  bool weighted = false;
  /// Use the fine-grained k-block interval subdivision (suffix "R").
  bool refined = false;
  /// Block size for the refinement (the paper uses k = 3).
  int blockSize = 3;
};

/// Compute a greedy carbon-aware schedule. The deadline must be feasible
/// (≥ ASAP makespan) and the profile horizon must cover the deadline.
/// Builds a throwaway `SolveContext`; prefer the context overload when
/// several variants run on the same instance.
Schedule scheduleGreedy(const EnhancedGraph& gc, const PowerProfile& profile,
                        Time deadline, const GreedyOptions& opts);

/// Same algorithm, drawing the initial windows, the refined interval set
/// and the score order from the shared per-instance context.
Schedule scheduleGreedy(const SolveContext& ctx, const GreedyOptions& opts);

class WindowState;

/// Inputs of a pinned-prefix (residual) greedy run — the core-level mirror
/// of `ResidualProblem` (solver/solver.hpp), kept dependency-free so the
/// core layer does not include the solver headers.
struct GreedyResidual {
  const Schedule* starts = nullptr;   ///< pinned starts of started nodes
  const std::vector<std::uint8_t>* started = nullptr;
  /// Effective durations: actual for completed nodes, ω(u) otherwise.
  const std::vector<Time>* durations = nullptr;
  Time releaseTime = 0;               ///< movable nodes start no earlier
  /// Optional pinned-prefix window state maintained incrementally by the
  /// caller (EST = LST = pinned start for every started node). When null,
  /// the run seeds fresh windows from the context and `place`s each
  /// started node — the same fixpoint, paid per call.
  const WindowState* windows = nullptr;
};

/// Greedy re-scheduling of the movable remainder of a partially executed
/// instance: started nodes stay pinned, their power draw is pre-consumed
/// from the budget timeline over their *effective* execution windows, and
/// the remaining nodes are placed in the context's score order with start
/// lower bound max(EST, releaseTime). Returns a complete schedule (pinned
/// prefix + new starts). The result may be infeasible when execution drift
/// has emptied a window — callers check with `validateResidualSchedule`.
Schedule scheduleGreedyResidual(const SolveContext& ctx,
                                const GreedyOptions& opts,
                                const GreedyResidual& residual);

} // namespace cawo
