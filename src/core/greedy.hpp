#pragma once

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"
#include "core/scores.hpp"

/// \file greedy.hpp
/// The greedy phase of CaWoSched (Section 5.2).
///
/// Tasks are processed in score order. For each task the algorithm picks,
/// among the (possibly refined) intervals whose begin lies in
/// [EST(v), LST(v)], the one with the highest remaining green budget
/// (earliest on ties) and starts the task there; if no interval begin is
/// reachable, the task starts at EST(v). After placement, the working
/// intervals are split at the task's boundaries, their budgets are reduced
/// by P_idle + P_work of the task's processor, and the EST/LST windows of
/// the remaining tasks are re-tightened — incrementally, via
/// `WindowState` worklist propagation, instead of the paper-literal full
/// sweep (same fixpoint, so the schedules are bit-identical). The window
/// update after the *last* placement is dead (nobody reads the windows
/// again) and is skipped.

namespace cawo {

class SolveContext;

struct GreedyOptions {
  BaseScore base = BaseScore::Pressure;
  bool weighted = false;
  /// Use the fine-grained k-block interval subdivision (suffix "R").
  bool refined = false;
  /// Block size for the refinement (the paper uses k = 3).
  int blockSize = 3;
};

/// Compute a greedy carbon-aware schedule. The deadline must be feasible
/// (≥ ASAP makespan) and the profile horizon must cover the deadline.
/// Builds a throwaway `SolveContext`; prefer the context overload when
/// several variants run on the same instance.
Schedule scheduleGreedy(const EnhancedGraph& gc, const PowerProfile& profile,
                        Time deadline, const GreedyOptions& opts);

/// Same algorithm, drawing the initial windows, the refined interval set
/// and the score order from the shared per-instance context.
Schedule scheduleGreedy(const SolveContext& ctx, const GreedyOptions& opts);

} // namespace cawo
