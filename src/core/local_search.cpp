#include "core/local_search.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "core/power_timeline.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

namespace {

/// Legal start window of `v` against the *current* starts of its
/// neighbours (Gc's per-processor chain edges make this subsume
/// exclusivity), clamped to ±radius around the current start.
std::pair<Time, Time> moveWindow(const EnhancedGraph& gc, Time deadline,
                                 const Schedule& s, TaskId v, Time len,
                                 Time radius) {
  const Time cur = s.start(v);
  Time lo = 0;
  for (TaskId u : gc.preds(v)) lo = std::max(lo, s.end(u, gc));
  Time hi = deadline - len;
  for (TaskId u : gc.succs(v)) hi = std::min(hi, s.start(u) - len);
  lo = std::max(lo, cur - radius);
  hi = std::min(hi, cur + radius);
  return {lo, hi};
}

/// Deterministically jitter a feasible schedule for one restart: each
/// nonzero-length task is moved (coin flip) to a uniform position inside
/// its precedence-legal window around the current start. Walking the
/// topological order keeps every intermediate schedule feasible — a move
/// only consults neighbour starts that are already final for this step.
void perturbSchedule(const EnhancedGraph& gc, Time deadline, Schedule& s,
                     Time radius, Rng& rng) {
  for (const TaskId v : gc.topoOrder()) {
    const Time len = gc.len(v);
    if (len == 0) continue;
    if ((rng.next() & 1) == 0) continue;
    const auto [lo, hi] = moveWindow(gc, deadline, s, v, len, radius);
    if (lo >= hi) continue;
    s.setStart(v, static_cast<Time>(rng.uniformInt(lo, hi)));
  }
}

} // namespace

LocalSearchStats localSearch(const EnhancedGraph& gc,
                             const PowerProfile& profile, Time deadline,
                             Schedule& schedule,
                             const LocalSearchOptions& opts) {
  obs::TraceScope span("ls.climb");
  CAWO_REQUIRE(opts.radius >= 0, "negative search radius");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "power profile must cover the deadline");
  const ValidationResult valid = validateSchedule(gc, schedule, deadline);
  CAWO_REQUIRE(valid.ok, "local search needs a feasible schedule: " +
                             valid.message);

  PowerTimeline timeline(profile, gc.totalIdlePower());
  {
    std::vector<PowerTimeline::Load> loads;
    loads.reserve(static_cast<std::size_t>(gc.numNodes()));
    for (TaskId u = 0; u < gc.numNodes(); ++u)
      loads.push_back({schedule.start(u), schedule.end(u, gc),
                       gc.workPower(gc.procOf(u))});
    timeline.addLoads(loads);
  }

  LocalSearchStats stats;
  stats.initialCost = timeline.totalCost();

  // Per-climb candidate-scan workspace, reused across every task so the
  // inner loop performs no steady-state allocation.
  std::vector<CandidateInterval> cands;
  std::vector<Cost> deltas;
  PowerTimeline::PeekScratch peek;

  // Costliest processors first (paper: non-increasing P_work).
  std::vector<ProcId> procs(static_cast<std::size_t>(gc.numProcs()));
  std::iota(procs.begin(), procs.end(), ProcId{0});
  std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
    if (gc.workPower(a) != gc.workPower(b))
      return gc.workPower(a) > gc.workPower(b);
    return a < b;
  });

  while (stats.rounds < opts.maxRounds) {
    ++stats.rounds; // counts executed passes, including the final gainless one
    // One span per improvement pass; the batched-probe volume rides along
    // as an arg so the probe cost is visible without per-probe events.
    obs::TraceScope round("ls.round");
    std::int64_t probes = 0;
    bool improved = false;
    for (const ProcId p : procs) {
      for (const TaskId v : gc.procOrder(p)) {
        const Time len = gc.len(v);
        if (len == 0) continue; // zero-length nodes draw no power
        const Power w = gc.workPower(p);
        const Time cur = schedule.start(v);
        const auto [lo, hi] =
            moveWindow(gc, deadline, schedule, v, len, opts.radius);

        Time bestTarget = cur;
        Cost bestDelta = 0;
        if (hi >= lo) {
          // Batched probe: one prefix table over the candidate window
          // serves every target in O(1), so the scan is O(segments in
          // window + candidates) regardless of radius — the former
          // per-candidate segment walks (and the parallel wide-scan
          // fan-out that amortised them) are gone. Selection over the
          // delta array replays the serial order exactly: earliest
          // minimum for BestImprovement, earliest improving delta for
          // FirstImprovement.
          cands.clear();
          for (Time t = lo; t <= hi; ++t) cands.push_back({t, t + len});
          deltas.resize(cands.size());
          probes += static_cast<std::int64_t>(cands.size());
          timeline.peekMoveDeltas(cur, cur + len, w, cands, peek, deltas);
          for (std::size_t i = 0; i < cands.size(); ++i) {
            const Time t = lo + static_cast<Time>(i);
            if (t == cur) continue;
            if (deltas[i] < bestDelta) {
              bestDelta = deltas[i];
              bestTarget = t;
              if (opts.strategy == MoveStrategy::FirstImprovement) break;
            }
          }
        }
        if (bestDelta < 0) {
          timeline.applyMove(cur, cur + len, bestTarget, bestTarget + len, w);
          schedule.setStart(v, bestTarget);
          ++stats.movesApplied;
          improved = true;
        }
      }
    }
    round.arg("probes", probes);
    if (!improved) break;
  }
  stats.finalCost = timeline.totalCost();
  CAWO_ASSERT(stats.finalCost <= stats.initialCost,
              "local search must never worsen the schedule");
  return stats;
}

LocalSearchStats localSearchRestarts(const EnhancedGraph& gc,
                                     const PowerProfile& profile,
                                     Time deadline, Schedule& schedule,
                                     const LocalSearchOptions& opts) {
  obs::TraceScope span("ls");
  const std::size_t restarts = std::max<std::size_t>(1, opts.restarts);
  if (restarts == 1) {
    LocalSearchStats stats = localSearch(gc, profile, deadline, schedule, opts);
    stats.restartsRun = 1;
    stats.bestRestart = 0;
    return stats;
  }

  struct Attempt {
    Schedule schedule;
    LocalSearchStats stats;
  };
  std::vector<Attempt> attempts(restarts);
  // Each restart is fully independent — own schedule copy, own timeline,
  // own RNG stream (restart r seeds SplitMix64 at `seed + r·golden`) — so
  // the fan-out needs no synchronisation beyond the disjoint slots.
  parallelFor(restarts, opts.threads, [&](std::size_t r) {
    obs::TraceScope restart("ls.restart");
    restart.arg("restart", static_cast<std::int64_t>(r));
    Schedule mine = schedule;
    if (r > 0) {
      Rng rng(opts.seed +
              0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r));
      // Diversify beyond the climb radius so restarts escape the basin
      // the unperturbed climb would fall into.
      perturbSchedule(gc, deadline, mine, opts.radius * 4, rng);
    }
    LocalSearchOptions inner = opts;
    inner.restarts = 1;
    inner.threads = 1; // the fan-out already owns the workers
    attempts[r].stats = localSearch(gc, profile, deadline, mine, inner);
    attempts[r].schedule = std::move(mine);
  });

  // Deterministic best-of-N merge: strictly lower final cost wins, ties
  // go to the lowest restart index — never to arrival order.
  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r)
    if (attempts[r].stats.finalCost < attempts[best].stats.finalCost)
      best = r;

  LocalSearchStats stats = attempts[best].stats;
  stats.initialCost = attempts[0].stats.initialCost; // the true input cost
  stats.restartsRun = restarts;
  stats.bestRestart = best;
  schedule = std::move(attempts[best].schedule);
  CAWO_ASSERT(stats.finalCost <= stats.initialCost,
              "restart merge must never worsen the schedule");
  return stats;
}

} // namespace cawo
