#include "core/local_search.hpp"

#include <algorithm>
#include <numeric>

#include "core/power_timeline.hpp"
#include "util/require.hpp"

namespace cawo {

LocalSearchStats localSearch(const EnhancedGraph& gc,
                             const PowerProfile& profile, Time deadline,
                             Schedule& schedule,
                             const LocalSearchOptions& opts) {
  CAWO_REQUIRE(opts.radius >= 0, "negative search radius");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "power profile must cover the deadline");
  const ValidationResult valid = validateSchedule(gc, schedule, deadline);
  CAWO_REQUIRE(valid.ok, "local search needs a feasible schedule: " +
                             valid.message);

  PowerTimeline timeline(profile, gc.totalIdlePower());
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    timeline.addLoad(schedule.start(u), schedule.end(u, gc),
                     gc.workPower(gc.procOf(u)));

  LocalSearchStats stats;
  stats.initialCost = timeline.totalCost();

  // Costliest processors first (paper: non-increasing P_work).
  std::vector<ProcId> procs(static_cast<std::size_t>(gc.numProcs()));
  std::iota(procs.begin(), procs.end(), ProcId{0});
  std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
    if (gc.workPower(a) != gc.workPower(b))
      return gc.workPower(a) > gc.workPower(b);
    return a < b;
  });

  while (stats.rounds < opts.maxRounds) {
    ++stats.rounds; // counts executed passes, including the final gainless one
    bool improved = false;
    for (const ProcId p : procs) {
      for (const TaskId v : gc.procOrder(p)) {
        const Time len = gc.len(v);
        if (len == 0) continue; // zero-length nodes draw no power
        const Power w = gc.workPower(p);
        const Time cur = schedule.start(v);

        Time lo = 0;
        for (TaskId u : gc.preds(v))
          lo = std::max(lo, schedule.end(u, gc));
        Time hi = deadline - len;
        for (TaskId u : gc.succs(v))
          hi = std::min(hi, schedule.start(u) - len);

        lo = std::max(lo, cur - opts.radius);
        hi = std::min(hi, cur + opts.radius);

        Time bestTarget = cur;
        Cost bestDelta = 0;
        for (Time t = lo; t <= hi; ++t) {
          if (t == cur) continue;
          const Cost delta = timeline.moveDelta(cur, cur + len, t, t + len, w);
          if (delta < bestDelta) {
            bestDelta = delta;
            bestTarget = t;
            if (opts.strategy == MoveStrategy::FirstImprovement) break;
          }
        }
        if (bestDelta < 0) {
          timeline.removeLoad(cur, cur + len, w);
          timeline.addLoad(bestTarget, bestTarget + len, w);
          schedule.setStart(v, bestTarget);
          ++stats.movesApplied;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  stats.finalCost = timeline.totalCost();
  CAWO_ASSERT(stats.finalCost <= stats.initialCost,
              "local search must never worsen the schedule");
  return stats;
}

} // namespace cawo
