#include "core/local_search.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "core/power_timeline.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

namespace {

/// Candidate scans below this width stay serial: spawning a fork/join
/// team costs far more than probing a paper-default µ = 10 window. Wide
/// scans (large radii) fan out across `opts.threads`.
constexpr std::size_t kParallelScanMinCandidates = 256;

/// Legal start window of `v` against the *current* starts of its
/// neighbours (Gc's per-processor chain edges make this subsume
/// exclusivity), clamped to ±radius around the current start.
std::pair<Time, Time> moveWindow(const EnhancedGraph& gc, Time deadline,
                                 const Schedule& s, TaskId v, Time len,
                                 Time radius) {
  const Time cur = s.start(v);
  Time lo = 0;
  for (TaskId u : gc.preds(v)) lo = std::max(lo, s.end(u, gc));
  Time hi = deadline - len;
  for (TaskId u : gc.succs(v)) hi = std::min(hi, s.start(u) - len);
  lo = std::max(lo, cur - radius);
  hi = std::min(hi, cur + radius);
  return {lo, hi};
}

/// Deterministically jitter a feasible schedule for one restart: each
/// nonzero-length task is moved (coin flip) to a uniform position inside
/// its precedence-legal window around the current start. Walking the
/// topological order keeps every intermediate schedule feasible — a move
/// only consults neighbour starts that are already final for this step.
void perturbSchedule(const EnhancedGraph& gc, Time deadline, Schedule& s,
                     Time radius, Rng& rng) {
  for (const TaskId v : gc.topoOrder()) {
    const Time len = gc.len(v);
    if (len == 0) continue;
    if ((rng.next() & 1) == 0) continue;
    const auto [lo, hi] = moveWindow(gc, deadline, s, v, len, radius);
    if (lo >= hi) continue;
    s.setStart(v, static_cast<Time>(rng.uniformInt(lo, hi)));
  }
}

} // namespace

LocalSearchStats localSearch(const EnhancedGraph& gc,
                             const PowerProfile& profile, Time deadline,
                             Schedule& schedule,
                             const LocalSearchOptions& opts) {
  CAWO_REQUIRE(opts.radius >= 0, "negative search radius");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "power profile must cover the deadline");
  const ValidationResult valid = validateSchedule(gc, schedule, deadline);
  CAWO_REQUIRE(valid.ok, "local search needs a feasible schedule: " +
                             valid.message);

  PowerTimeline timeline(profile, gc.totalIdlePower());
  for (TaskId u = 0; u < gc.numNodes(); ++u)
    timeline.addLoad(schedule.start(u), schedule.end(u, gc),
                     gc.workPower(gc.procOf(u)));

  LocalSearchStats stats;
  stats.initialCost = timeline.totalCost();

  // Costliest processors first (paper: non-increasing P_work).
  std::vector<ProcId> procs(static_cast<std::size_t>(gc.numProcs()));
  std::iota(procs.begin(), procs.end(), ProcId{0});
  std::sort(procs.begin(), procs.end(), [&](ProcId a, ProcId b) {
    if (gc.workPower(a) != gc.workPower(b))
      return gc.workPower(a) > gc.workPower(b);
    return a < b;
  });

  while (stats.rounds < opts.maxRounds) {
    ++stats.rounds; // counts executed passes, including the final gainless one
    bool improved = false;
    for (const ProcId p : procs) {
      for (const TaskId v : gc.procOrder(p)) {
        const Time len = gc.len(v);
        if (len == 0) continue; // zero-length nodes draw no power
        const Power w = gc.workPower(p);
        const Time cur = schedule.start(v);
        const auto [lo, hi] =
            moveWindow(gc, deadline, schedule, v, len, opts.radius);

        Time bestTarget = cur;
        Cost bestDelta = 0;
        const std::size_t count =
            hi >= lo ? static_cast<std::size_t>(hi - lo) + 1 : 0;
        if (opts.threads != 1 && count >= kParallelScanMinCandidates) {
          // Order-preserving parallel scan: candidates are evaluated on a
          // *shared read-only* timeline and reduced by candidate index, so
          // the chosen move is the one the serial loop below would pick —
          // for BestImprovement the earliest minimum delta, for
          // FirstImprovement the earliest improving delta.
          const auto eval = [&](std::size_t i) -> Cost {
            const Time t = lo + static_cast<Time>(i);
            if (t == cur) return 0;
            return timeline.peekMoveDelta(cur, cur + len, t, t + len, w);
          };
          Cost best = 0;
          const auto better =
              opts.strategy == MoveStrategy::BestImprovement
                  ? +[](const Cost& x, const Cost& y) { return x < y; }
                  : +[](const Cost& x, const Cost& y) {
                      return x < 0 && y >= 0;
                    };
          const std::size_t idx = parallelOrderedBest<Cost>(
              count, opts.threads, Cost{0}, eval, better, &best);
          if (idx != count) {
            bestDelta = best;
            bestTarget = lo + static_cast<Time>(idx);
          }
        } else {
          for (Time t = lo; t <= hi; ++t) {
            if (t == cur) continue;
            const Cost delta =
                timeline.peekMoveDelta(cur, cur + len, t, t + len, w);
            if (delta < bestDelta) {
              bestDelta = delta;
              bestTarget = t;
              if (opts.strategy == MoveStrategy::FirstImprovement) break;
            }
          }
        }
        if (bestDelta < 0) {
          timeline.removeLoad(cur, cur + len, w);
          timeline.addLoad(bestTarget, bestTarget + len, w);
          schedule.setStart(v, bestTarget);
          ++stats.movesApplied;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  stats.finalCost = timeline.totalCost();
  CAWO_ASSERT(stats.finalCost <= stats.initialCost,
              "local search must never worsen the schedule");
  return stats;
}

LocalSearchStats localSearchRestarts(const EnhancedGraph& gc,
                                     const PowerProfile& profile,
                                     Time deadline, Schedule& schedule,
                                     const LocalSearchOptions& opts) {
  const std::size_t restarts = std::max<std::size_t>(1, opts.restarts);
  if (restarts == 1) {
    LocalSearchStats stats = localSearch(gc, profile, deadline, schedule, opts);
    stats.restartsRun = 1;
    stats.bestRestart = 0;
    return stats;
  }

  struct Attempt {
    Schedule schedule;
    LocalSearchStats stats;
  };
  std::vector<Attempt> attempts(restarts);
  // Each restart is fully independent — own schedule copy, own timeline,
  // own RNG stream (restart r seeds SplitMix64 at `seed + r·golden`) — so
  // the fan-out needs no synchronisation beyond the disjoint slots.
  parallelFor(restarts, opts.threads, [&](std::size_t r) {
    Schedule mine = schedule;
    if (r > 0) {
      Rng rng(opts.seed +
              0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r));
      // Diversify beyond the climb radius so restarts escape the basin
      // the unperturbed climb would fall into.
      perturbSchedule(gc, deadline, mine, opts.radius * 4, rng);
    }
    LocalSearchOptions inner = opts;
    inner.restarts = 1;
    inner.threads = 1; // the fan-out already owns the workers
    attempts[r].stats = localSearch(gc, profile, deadline, mine, inner);
    attempts[r].schedule = std::move(mine);
  });

  // Deterministic best-of-N merge: strictly lower final cost wins, ties
  // go to the lowest restart index — never to arrival order.
  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r)
    if (attempts[r].stats.finalCost < attempts[best].stats.finalCost)
      best = r;

  LocalSearchStats stats = attempts[best].stats;
  stats.initialCost = attempts[0].stats.initialCost; // the true input cost
  stats.restartsRun = restarts;
  stats.bestRestart = best;
  schedule = std::move(attempts[best].schedule);
  CAWO_ASSERT(stats.finalCost <= stats.initialCost,
              "restart merge must never worsen the schedule");
  return stats;
}

} // namespace cawo
