#include "core/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/require.hpp"

namespace cawo {

TaskId TaskGraph::addTask(std::string name, Work work) {
  CAWO_REQUIRE(work >= 0, "task work must be non-negative");
  names_.push_back(std::move(name));
  work_.push_back(work);
  adjacencyValid_ = false;
  return static_cast<TaskId>(work_.size() - 1);
}

void TaskGraph::addEdge(TaskId src, TaskId dst, Data data) {
  checkTask(src);
  checkTask(dst);
  CAWO_REQUIRE(src != dst, "self-loop edges are not allowed");
  CAWO_REQUIRE(data >= 0, "edge data must be non-negative");
  edges_.push_back(Edge{src, dst, data});
  adjacencyValid_ = false;
}

void TaskGraph::checkTask(TaskId v) const {
  CAWO_REQUIRE(v >= 0 && v < numTasks(), "task id out of range");
}

void TaskGraph::buildAdjacency() const {
  const auto n = static_cast<std::size_t>(numTasks());
  outIndex_.assign(n + 1, 0);
  inIndex_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++outIndex_[static_cast<std::size_t>(e.src) + 1];
    ++inIndex_[static_cast<std::size_t>(e.dst) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    outIndex_[i] += outIndex_[i - 1];
    inIndex_[i] += inIndex_[i - 1];
  }
  outList_.resize(edges_.size());
  inList_.resize(edges_.size());
  std::vector<std::size_t> outPos(outIndex_.begin(), outIndex_.end() - 1);
  std::vector<std::size_t> inPos(inIndex_.begin(), inIndex_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    outList_[outPos[static_cast<std::size_t>(edges_[i].src)]++] = i;
    inList_[inPos[static_cast<std::size_t>(edges_[i].dst)]++] = i;
  }
  adjacencyValid_ = true;
}

std::span<const std::size_t> TaskGraph::outEdges(TaskId v) const {
  checkTask(v);
  if (!adjacencyValid_) buildAdjacency();
  const auto i = static_cast<std::size_t>(v);
  return {outList_.data() + outIndex_[i], outIndex_[i + 1] - outIndex_[i]};
}

std::span<const std::size_t> TaskGraph::inEdges(TaskId v) const {
  checkTask(v);
  if (!adjacencyValid_) buildAdjacency();
  const auto i = static_cast<std::size_t>(v);
  return {inList_.data() + inIndex_[i], inIndex_[i + 1] - inIndex_[i]};
}

Work TaskGraph::totalWork() const {
  Work sum = 0;
  for (Work w : work_) sum += w;
  return sum;
}

std::vector<TaskId> TaskGraph::topologicalOrder() const {
  const TaskId n = numTasks();
  std::vector<std::size_t> indeg(static_cast<std::size_t>(n), 0);
  for (const Edge& e : edges_) ++indeg[static_cast<std::size_t>(e.dst)];

  std::queue<TaskId> ready;
  for (TaskId v = 0; v < n; ++v)
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push(v);

  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const TaskId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (std::size_t ei : outEdges(v)) {
      const TaskId w = edges_[ei].dst;
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  CAWO_REQUIRE(order.size() == static_cast<std::size_t>(n),
               "workflow graph contains a cycle");
  return order;
}

bool TaskGraph::isAcyclic() const {
  try {
    (void)topologicalOrder();
    return true;
  } catch (const PreconditionError&) {
    return false;
  }
}

bool TaskGraph::hasEdge(TaskId src, TaskId dst) const {
  checkTask(src);
  checkTask(dst);
  for (std::size_t ei : outEdges(src))
    if (edges_[ei].dst == dst) return true;
  return false;
}

} // namespace cawo
