#include "core/power_profile.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

void PowerProfile::appendInterval(Time length, Power green) {
  CAWO_REQUIRE(length > 0, "interval length must be positive");
  CAWO_REQUIRE(green >= 0, "green budget must be non-negative");
  const Time begin = horizon();
  intervals_.push_back(Interval{begin, begin + length, green});
}

PowerProfile PowerProfile::uniform(Time horizon, Power green) {
  CAWO_REQUIRE(horizon > 0, "horizon must be positive");
  PowerProfile p;
  p.appendInterval(horizon, green);
  return p;
}

PowerProfile PowerProfile::fromIntervals(std::vector<Interval> intervals) {
  PowerProfile p;
  Time expectedBegin = 0;
  for (const Interval& iv : intervals) {
    CAWO_REQUIRE(iv.begin == expectedBegin,
                 "intervals must be contiguous and start at 0");
    CAWO_REQUIRE(iv.end > iv.begin, "interval length must be positive");
    CAWO_REQUIRE(iv.green >= 0, "green budget must be non-negative");
    expectedBegin = iv.end;
  }
  p.intervals_ = std::move(intervals);
  return p;
}

const Interval& PowerProfile::interval(std::size_t j) const {
  CAWO_REQUIRE(j < intervals_.size(), "interval index out of range");
  return intervals_[j];
}

std::size_t PowerProfile::indexAt(Time t) const {
  CAWO_REQUIRE(t >= 0 && t < horizon(), "time outside horizon");
  // First interval whose end is > t.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Time value, const Interval& iv) { return value < iv.end; });
  return static_cast<std::size_t>(it - intervals_.begin());
}

Power PowerProfile::greenAt(Time t) const {
  return intervals_[indexAt(t)].green;
}

std::vector<Time> PowerProfile::boundaries() const {
  std::vector<Time> b;
  b.reserve(intervals_.size() + 1);
  if (intervals_.empty()) return b;
  b.push_back(intervals_.front().begin);
  for (const Interval& iv : intervals_) b.push_back(iv.end);
  return b;
}

void PowerProfile::extendTo(Time newHorizon, Power green) {
  if (newHorizon > horizon()) appendInterval(newHorizon - horizon(), green);
}

Cost PowerProfile::idleFloorCost(Power basePower) const {
  Cost cost = 0;
  for (const Interval& iv : intervals_) {
    const Power over = basePower - iv.green;
    if (over > 0) cost += static_cast<Cost>(over) * iv.length();
  }
  return cost;
}

} // namespace cawo
