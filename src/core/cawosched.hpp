#pragma once

#include <string>
#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/greedy.hpp"
#include "core/local_search.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"

/// \file cawosched.hpp
/// Facade over the CaWoSched heuristic family (Section 5).
///
/// A variant is identified by four switches:
///   base score   slack | pressure        → prefix "slack" / "press"
///   weighted     account for proc power  → suffix "W"
///   refined      k-block interval subdivision → suffix "R"
///   local search hill-climbing pass      → suffix "-LS"
/// yielding the paper's 16 heuristics (slack, slackW, slackR, slackWR,
/// press, pressW, pressR, pressWR — each with and without -LS).

namespace cawo {

class SolveContext;

struct VariantSpec {
  BaseScore base = BaseScore::Pressure;
  bool weighted = false;
  bool refined = false;
  bool localSearch = false;

  /// Paper-style name, e.g. "pressWR-LS".
  std::string name() const;

  /// Parse a paper-style name; throws PreconditionError on unknown names.
  static VariantSpec parse(const std::string& name);
};

/// All 16 CaWoSched variants in the paper's canonical order
/// (slack, slackW, slackR, slackWR, press, ..., then the same with -LS).
std::vector<VariantSpec> allVariants();

/// The 8 variants without local search.
std::vector<VariantSpec> greedyOnlyVariants();

/// Tuning parameters (paper values: k = 3, µ = 10).
struct CaWoParams {
  int blockSize = 3;
  Time lsRadius = 10;

  /// Intra-solve worker threads (0 = hardware): local-search restart
  /// fan-out and wide candidate scans. Schedules are bit-identical for
  /// every value — the parallel kernels reduce in deterministic order.
  unsigned threads = 1;

  /// Local-search restarts (best-of-N; restart 0 is the unperturbed
  /// climb, so 1 = the paper's plain -LS pass).
  std::size_t lsRestarts = 1;
  std::uint64_t lsSeed = 0x5eedCA205eedULL; ///< restart perturbation seed
};

/// Per-phase diagnostics of one variant run: the greedy/local-search wall
/// time split and, when the variant ran local search, its statistics.
/// Surfaced through the solver stats map and the campaign JSON records so
/// speedups are attributable per phase.
struct VariantRunStats {
  double greedyMs = 0.0; ///< wall time of the greedy phase
  double lsMs = 0.0;     ///< wall time of the local-search phase (0 if none)
  bool lsRan = false;    ///< the variant has the -LS suffix
  LocalSearchStats ls;   ///< meaningful only when `lsRan`
};

/// Run one variant end to end: greedy phase, then (optionally) local search.
/// Builds a throwaway `SolveContext`; prefer the context overload when
/// several variants run on the same instance.
Schedule runVariant(const EnhancedGraph& gc, const PowerProfile& profile,
                    Time deadline, const VariantSpec& spec,
                    const CaWoParams& params = {});

/// Same pipeline over a shared per-instance context. When `stats` is
/// non-null it receives the per-phase wall-time split and the local-search
/// statistics.
Schedule runVariant(const SolveContext& ctx, const VariantSpec& spec,
                    const CaWoParams& params = {},
                    VariantRunStats* stats = nullptr);

/// Run several variants on one shared context, fanned out across
/// `threads` workers (0 = hardware). The shared prefix work — initial
/// windows, ASAP makespan, the refined interval set and every score
/// order the selection needs — is primed once up front and the context
/// is frozen for the fan-out, so concurrent variant runs only ever read
/// it (see SolveContext's concurrency contract). `out[i]` / `stats[i]`
/// belong to `specs[i]`; results are bit-identical to running
/// `runVariant` serially in `specs` order, for every thread count.
std::vector<Schedule> runVariants(const SolveContext& ctx,
                                  const std::vector<VariantSpec>& specs,
                                  const CaWoParams& params = {},
                                  unsigned threads = 1,
                                  std::vector<VariantRunStats>* stats = nullptr);

} // namespace cawo
