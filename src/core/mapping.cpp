#include "core/mapping.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/require.hpp"

namespace cawo {

Mapping::Mapping(TaskId numTasks, ProcId numProcs)
    : procOf_(static_cast<std::size_t>(numTasks), kInvalidProc),
      order_(static_cast<std::size_t>(numProcs)),
      position_(static_cast<std::size_t>(numTasks), 0) {
  CAWO_REQUIRE(numTasks >= 0, "negative task count");
  CAWO_REQUIRE(numProcs >= 1, "need at least one processor");
}

void Mapping::assign(TaskId v, ProcId p) {
  CAWO_REQUIRE(v >= 0 && v < numTasks(), "task id out of range");
  CAWO_REQUIRE(p >= 0 && p < numProcs(), "processor id out of range");
  CAWO_REQUIRE(procOf_[static_cast<std::size_t>(v)] == kInvalidProc,
               "task is already assigned");
  procOf_[static_cast<std::size_t>(v)] = p;
  position_[static_cast<std::size_t>(v)] =
      order_[static_cast<std::size_t>(p)].size();
  order_[static_cast<std::size_t>(p)].push_back(v);
}

void Mapping::setOrder(ProcId p, std::vector<TaskId> order) {
  CAWO_REQUIRE(p >= 0 && p < numProcs(), "processor id out of range");
  auto& current = order_[static_cast<std::size_t>(p)];
  CAWO_REQUIRE(order.size() == current.size(),
               "new order must contain exactly the tasks mapped to p");
  std::vector<TaskId> a = order;
  std::vector<TaskId> b = current;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  CAWO_REQUIRE(a == b, "new order must be a permutation of p's tasks");
  current = std::move(order);
  for (std::size_t i = 0; i < current.size(); ++i)
    position_[static_cast<std::size_t>(current[i])] = i;
}

ProcId Mapping::procOf(TaskId v) const {
  CAWO_REQUIRE(v >= 0 && v < numTasks(), "task id out of range");
  return procOf_[static_cast<std::size_t>(v)];
}

bool Mapping::isAssigned(TaskId v) const {
  CAWO_REQUIRE(v >= 0 && v < numTasks(), "task id out of range");
  return procOf_[static_cast<std::size_t>(v)] != kInvalidProc;
}

std::span<const TaskId> Mapping::orderOn(ProcId p) const {
  CAWO_REQUIRE(p >= 0 && p < numProcs(), "processor id out of range");
  return order_[static_cast<std::size_t>(p)];
}

std::size_t Mapping::positionOf(TaskId v) const {
  CAWO_REQUIRE(isAssigned(v), "task is not assigned");
  return position_[static_cast<std::size_t>(v)];
}

std::string Mapping::validate(const TaskGraph& graph) const {
  if (graph.numTasks() != numTasks())
    return "mapping size does not match graph size";
  for (TaskId v = 0; v < numTasks(); ++v)
    if (!isAssigned(v))
      return "task " + std::to_string(v) + " is not assigned";

  // Orders are valid iff the DAG augmented with the per-processor chain
  // edges stays acyclic. Run Kahn's algorithm on the augmented graph.
  const auto n = static_cast<std::size_t>(numTasks());
  std::vector<std::vector<TaskId>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  for (const auto& e : graph.edges()) {
    succ[static_cast<std::size_t>(e.src)].push_back(e.dst);
    ++indeg[static_cast<std::size_t>(e.dst)];
  }
  for (const auto& chain : order_) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      succ[static_cast<std::size_t>(chain[i])].push_back(chain[i + 1]);
      ++indeg[static_cast<std::size_t>(chain[i + 1])];
    }
  }
  std::queue<TaskId> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(static_cast<TaskId>(v));
  std::size_t seen = 0;
  while (!ready.empty()) {
    const TaskId v = ready.front();
    ready.pop();
    ++seen;
    for (TaskId w : succ[static_cast<std::size_t>(v)])
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push(w);
  }
  if (seen != n)
    return "per-processor ordering conflicts with DAG precedence "
           "(augmented graph has a cycle)";
  return {};
}

} // namespace cawo
