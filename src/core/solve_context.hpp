#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/budget_tree.hpp"
#include "core/enhanced_graph.hpp"
#include "core/est_lst.hpp"
#include "core/interval_refinement.hpp"
#include "core/power_profile.hpp"
#include "core/scores.hpp"
#include "util/types.hpp"

/// \file solve_context.hpp
/// Per-instance memoization shared across solvers (see DESIGN.md,
/// "Incremental scheduling engine").
///
/// Every CaWoSched variant on the same (graph, profile, deadline) instance
/// re-derives the same artifacts: the initial EST/LST windows, the ASAP
/// makespan D, the k-block refined interval set and the score-based
/// processing orders. A `SolveContext` computes each of them lazily, once,
/// and hands out const references, so a 17-solver suite run pays for each
/// shared artifact exactly once per instance instead of once per solver.
/// Everything memoized here is a pure deterministic function of the
/// instance, so sharing cannot change any result — the golden-parity tests
/// pin that.
///
/// Concurrency contract (see DESIGN.md, "Parallel solve core"): the lazy
/// caches are unsynchronized, so a context being *filled* must stay
/// confined to one thread — the experiment runners build one context per
/// instance shard, and the serve daemon guards each cached context with a
/// per-entry mutex for exactly this reason. Once every artifact a fan-out
/// needs has been computed, `freeze()` flips the context read-only:
/// concurrent readers are then safe by construction, and a getter that
/// would have to compute something new throws instead of mutating — an
/// unprimed access under concurrency surfaces as a deterministic error,
/// never a data race. Intra-solve parallelism never aliases a context's
/// caches: the parallel kernels (refinement marking, local-search scans
/// and restarts) work on their own state and only read the context.

namespace cawo {

class SolveContext {
public:
  /// Borrow the instance; `gc` and `profile` must outlive the context.
  SolveContext(const EnhancedGraph& gc, const PowerProfile& profile,
               Time deadline);

  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;

  const EnhancedGraph& gc() const { return *gc_; }
  const PowerProfile& profile() const { return *profile_; }
  Time deadline() const { return deadline_; }

  /// Initial (no task placed) earliest start times; `computeEst` output.
  const std::vector<Time>& initialEst() const;

  /// Initial latest start times under the deadline; `computeLst` output.
  const std::vector<Time>& initialLst() const;

  /// The ASAP makespan (the paper's D — the tightest feasible deadline).
  Time asapMakespan() const;

  /// Σ idle power over all enhanced processors (cached on the graph).
  Power totalIdlePower() const { return gc_->totalIdlePower(); }

  /// Σ work power over all enhanced processors.
  Power sumWorkPower() const;

  /// The k-block refined interval set (Section 5.2), memoized per block
  /// size — identical to `refineIntervals(gc, profile, blockSize)`.
  const std::vector<Interval>& refinedIntervals(int blockSize) const;

  /// The greedy processing order for a score configuration, memoized per
  /// (base, weighted) — identical to `scoreOrder` on the initial windows.
  const std::vector<TaskId>& scoreOrder(const ScoreOptions& opts) const;

  /// A built budget timeline over the working interval set (refined per
  /// `blockSize`, or the raw profile intervals), memoized per
  /// configuration. Greedy runs start from a plain copy of the prototype —
  /// three vector copies — instead of re-deriving and re-building the
  /// segment store on every solve.
  const BudgetTree& budgetTreePrototype(bool refined, int blockSize) const;

  /// A fresh incremental window state seeded from the memoized initial
  /// windows (no Kahn passes) — one per greedy run.
  WindowState windowState() const;

  /// Worker threads (0 = hardware) used when a lazily computed artifact
  /// supports internal parallelism (today: the dense interval-refinement
  /// mark pass). Never changes any artifact — those parallel paths are
  /// order-independent by construction.
  void setThreads(unsigned threads) { threads_ = threads; }
  unsigned threads() const { return threads_; }

  /// Flip the context read-only for a parallel section (see the class
  /// comment); `thaw()` lifts it. Const because freezing only affects
  /// whether an unprimed access throws, never any computed value. Not
  /// reentrant — one freeze per context at a time.
  void freeze() const { frozen_ = true; }
  void thaw() const { frozen_ = false; }
  bool frozen() const { return frozen_; }

private:
  void requireUnfrozen(const char* artifact) const;

  const EnhancedGraph* gc_;
  const PowerProfile* profile_;
  Time deadline_;

  // Lazy caches; mutable because memoization is not observable behaviour.
  mutable std::vector<Time> est_, lst_;
  mutable bool haveEst_ = false, haveLst_ = false;
  mutable Time asapMakespan_ = -1;
  mutable Power sumWorkPower_ = -1;
  mutable std::map<int, std::vector<Interval>> refinedByBlockSize_;
  /// Dense mark table reused by every refinement this context computes.
  mutable RefinementScratch refineScratch_;
  mutable std::map<std::pair<int, bool>, std::vector<TaskId>> orders_;
  /// key: blockSize for refined sets, −1 for the raw profile intervals.
  mutable std::map<int, BudgetTree> budgetTrees_;
  mutable bool frozen_ = false;
  unsigned threads_ = 1;
};

/// RAII freeze for a parallel section over a shared context: freezes on
/// construction, thaws on destruction (also on exceptions, so a failed
/// fan-out never leaves the context stuck read-only).
class SolveContextFreezeGuard {
public:
  explicit SolveContextFreezeGuard(const SolveContext& ctx) : ctx_(&ctx) {
    ctx_->freeze();
  }
  ~SolveContextFreezeGuard() { ctx_->thaw(); }

  SolveContextFreezeGuard(const SolveContextFreezeGuard&) = delete;
  SolveContextFreezeGuard& operator=(const SolveContextFreezeGuard&) = delete;

private:
  const SolveContext* ctx_;
};

} // namespace cawo
