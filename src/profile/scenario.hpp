#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file scenario.hpp
/// The four renewable-energy scenarios of Section 6.1.
///
/// The paper keeps the green budget between Σ P_idle (below that, the
/// scheduler's decisions become irrelevant — everything overflows) and
/// Σ P_idle + 0.8 · Σ P_work (above that, everything is free). Within that
/// band the budget follows one of four shapes, with multiplicative random
/// perturbations:
///   S1 — inverted parabola ("−x²"): little green power early, rising to a
///        midday peak, falling again (solar, morning→evening);
///   S2 — the same situation observed from midday: starts at the peak and
///        decreases ("x²");
///   S3 — a 24 h sine (phase-shifted so the horizon starts low): a single
///        broad daylight bump, gentler ramps than S1;
///   S4 — constant (storage / nuclear, cf. the France setting in [38]).

namespace cawo {

enum class Scenario { S1, S2, S3, S4 };

const char* scenarioName(Scenario s);

/// Inverse of `scenarioName` ("S1" → Scenario::S1, …); throws
/// PreconditionError for unknown names, listing every registered profile
/// source and its spec syntax (see profile/profile_source.hpp — the open
/// spec grammar supersedes this closed enum for new code).
Scenario scenarioFromName(const std::string& name);

struct ScenarioOptions {
  int numIntervals = 24;
  double perturbation = 0.1; ///< relative amplitude of the random noise
  std::uint64_t seed = 7;
};

/// Generate a profile over [0, horizon) for the given platform power sums.
/// \param sumIdle Σ of idle powers over all (enhanced) processors.
/// \param sumWork Σ of working powers over all (enhanced) processors.
PowerProfile generateScenario(Scenario scenario, Time horizon, Power sumIdle,
                              Power sumWork, const ScenarioOptions& opts = {});

/// Generate a profile from a normalised shape `f: [0, 1] → [0, 1]` with the
/// paper's band mapping and noise model: the horizon splits into
/// `opts.numIntervals` intervals (clamped to ≥ 1 time unit each), each
/// interval's shape value at its midpoint is perturbed multiplicatively by
/// ±`opts.perturbation`, clamped to [0, 1] and mapped into the band
/// [Σ idle, Σ idle + 0.8 Σ work]. `generateScenario` is exactly this with
/// the four Section 6.1 shapes; registered profile sources
/// (profile_source.hpp) reuse it for new shapes.
PowerProfile profileFromShape(const std::function<double(double)>& shape,
                              Time horizon, Power sumIdle, Power sumWork,
                              const ScenarioOptions& opts = {});

} // namespace cawo
