#include "profile/profile_source.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

#include "profile/profile_io.hpp"
#include "profile/scenario.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

constexpr const char* kNoiseMarker = "+noise=";

/// Shortest decimal form that parses back to exactly the same double —
/// keeps ProfileSpec::canonical() a true round-trip.
std::string shortestDouble(double v) {
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  CAWO_ASSERT(ec == std::errc{}, "double formatting failed");
  return std::string(buffer, ptr);
}

} // namespace

// ---------------------------------------------------------------------------
// ProfileSpec
// ---------------------------------------------------------------------------

ProfileSpec ProfileSpec::parse(const std::string& specText) {
  const std::string text{trim(specText)};
  CAWO_REQUIRE(!text.empty(), "empty profile spec");
  ProfileSpec spec;
  spec.text = text;
  const std::string where = "profile spec \"" + text + "\"";

  std::string head = text;
  const std::size_t plus = text.find(kNoiseMarker);
  if (plus != std::string::npos) {
    head = text.substr(0, plus);
    const std::string modifier =
        text.substr(plus + std::strlen(kNoiseMarker));
    const std::vector<std::string> tokens = split(modifier, ',');
    spec.hasNoise = true;
    spec.noise =
        parseDoubleStrict(where + ": noise amplitude",
                          std::string{trim(tokens.front())});
    CAWO_REQUIRE(spec.noise >= 0.0 && spec.noise < 1.0,
                 where + ": noise amplitude must be in [0, 1)");
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string token{trim(tokens[i])};
      CAWO_REQUIRE(startsWith(token, "seed="),
                   where + ": unknown noise-modifier token \"" + token +
                       "\" (expected seed=N)");
      CAWO_REQUIRE(!spec.hasNoiseSeed,
                   where + ": duplicate seed= in the noise modifier");
      const std::string value = token.substr(5);
      spec.hasNoiseSeed = true;
      spec.noiseSeed = parseUint64Strict(where + ": noise seed", value);
    }
  }

  const std::string headTrimmed{trim(head)};
  CAWO_REQUIRE(!headTrimmed.empty(), where + ": no source before '+noise'");
  const std::size_t colon = headTrimmed.find(':');
  if (colon == std::string::npos) {
    spec.source = headTrimmed;
  } else {
    spec.source = std::string{trim(headTrimmed.substr(0, colon))};
    const std::string paramText = headTrimmed.substr(colon + 1);
    CAWO_REQUIRE(!trim(paramText).empty(),
                 where + ": dangling ':' without parameters");
    for (const std::string& part : split(paramText, ',')) {
      const std::string item{trim(part)};
      CAWO_REQUIRE(!item.empty(), where + ": empty parameter");
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        spec.params.push_back({"", item}); // positional (e.g. a trace path)
        continue;
      }
      const std::string key{trim(item.substr(0, eq))};
      const std::string value{trim(item.substr(eq + 1))};
      CAWO_REQUIRE(!key.empty() && !value.empty(),
                   where + ": expected key=value, got \"" + item + "\"");
      // First-match lookup + silent duplicates would run a different
      // experiment than the one the user believes they wrote.
      CAWO_REQUIRE(!spec.hasParam(key),
                   where + ": duplicate parameter \"" + key + "\"");
      spec.params.push_back({key, value});
    }
  }
  CAWO_REQUIRE(!spec.source.empty(), where + ": missing source name");
  return spec;
}

std::string ProfileSpec::canonical() const {
  std::string out = source;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += (i == 0 ? ":" : ",");
    out += params[i].key.empty() ? params[i].value
                                 : params[i].key + "=" + params[i].value;
  }
  if (hasNoise) {
    out += kNoiseMarker + shortestDouble(noise);
    if (hasNoiseSeed) out += ",seed=" + std::to_string(noiseSeed);
  }
  return out;
}

bool ProfileSpec::hasParam(const std::string& key) const {
  for (const ProfileParam& p : params)
    if (p.key == key) return true;
  return false;
}

std::string ProfileSpec::param(const std::string& key,
                               const std::string& fallback) const {
  for (const ProfileParam& p : params)
    if (p.key == key) return p.value;
  return fallback;
}

double ProfileSpec::paramDouble(const std::string& key,
                                double fallback) const {
  if (!hasParam(key)) return fallback;
  return parseDoubleStrict(
      "profile spec \"" + text + "\": parameter \"" + key + "\"",
      param(key, ""));
}

std::int64_t ProfileSpec::paramInt(const std::string& key,
                                   std::int64_t fallback) const {
  if (!hasParam(key)) return fallback;
  return parseInt64Strict(
      "profile spec \"" + text + "\": parameter \"" + key + "\"",
      param(key, ""));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

ProfileSourceRegistry& ProfileSourceRegistry::global() {
  static ProfileSourceRegistry* instance = [] {
    auto* r = new ProfileSourceRegistry();
    registerBuiltinProfileSources(*r);
    return r;
  }();
  return *instance;
}

void ProfileSourceRegistry::registerSource(ProfileSourceInfo info,
                                           Generator generator) {
  CAWO_REQUIRE(!info.name.empty(), "profile source name must not be empty");
  CAWO_REQUIRE(info.name.find(':') == std::string::npos &&
                   info.name.find(',') == std::string::npos &&
                   info.name.find('+') == std::string::npos &&
                   info.name.find('=') == std::string::npos,
               "profile source name \"" + info.name +
                   "\" must not contain spec syntax characters (:,+=)");
  CAWO_REQUIRE(find(info.name) == nullptr,
               "duplicate profile source \"" + info.name + "\"");
  CAWO_REQUIRE(generator != nullptr,
               "profile source \"" + info.name + "\" has no generator");
  entries_.push_back({std::move(info), std::move(generator)});
}

const ProfileSourceRegistry::Entry* ProfileSourceRegistry::find(
    const std::string& source) const {
  for (const Entry& e : entries_)
    if (e.info.name == source) return &e;
  return nullptr;
}

bool ProfileSourceRegistry::contains(const std::string& source) const {
  return find(source) != nullptr;
}

std::vector<std::string> ProfileSourceRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info.name);
  return out;
}

const ProfileSourceInfo& ProfileSourceRegistry::info(
    const std::string& source) const {
  const Entry* entry = find(source);
  CAWO_REQUIRE(entry != nullptr, "unknown profile source \"" + source +
                                     "\" (registered: " + syntaxSummary() +
                                     ")");
  return entry->info;
}

std::string ProfileSourceRegistry::syntaxSummary() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.info.syntax;
  }
  return out + "; each optionally followed by +noise=A[,seed=N]";
}

ProfileSpec ProfileSourceRegistry::resolve(const std::string& specText) const {
  const ProfileSpec spec = ProfileSpec::parse(specText);
  CAWO_REQUIRE(contains(spec.source),
               "unknown scenario \"" + spec.source + "\" in profile spec \"" +
                   spec.text + "\" — registered sources: " + syntaxSummary());
  return spec;
}

PowerProfile ProfileSourceRegistry::generate(
    const ProfileSpec& spec, const ProfileRequest& request) const {
  CAWO_REQUIRE(request.horizon > 0, "profile horizon must be positive");
  const Entry* entry = find(spec.source);
  CAWO_REQUIRE(entry != nullptr, "unknown profile source \"" + spec.source +
                                     "\" (registered: " + syntaxSummary() +
                                     ")");
  PowerProfile profile = entry->generator(spec, request);
  CAWO_ASSERT(profile.horizon() == request.horizon,
              "profile source \"" + spec.source +
                  "\" produced a profile of horizon " +
                  std::to_string(profile.horizon()) +
                  " instead of the requested " +
                  std::to_string(request.horizon));
  return profile;
}

PowerProfile generateProfile(const std::string& specText,
                             const ProfileRequest& request) {
  const ProfileSourceRegistry& registry = ProfileSourceRegistry::global();
  return registry.generate(registry.resolve(specText), request);
}

ProfilePair generateForecastActualPair(const std::string& specText,
                                       const ProfileRequest& request) {
  const ProfileSourceRegistry& registry = ProfileSourceRegistry::global();
  const ProfileSpec spec = registry.resolve(specText);

  ProfileSpec forecastSpec = spec;
  forecastSpec.hasNoise = false;
  forecastSpec.noise = 0.0;
  forecastSpec.hasNoiseSeed = false;
  forecastSpec.noiseSeed = 0;
  forecastSpec.text = forecastSpec.canonical();

  ProfilePair pair;
  pair.forecast = registry.generate(forecastSpec, request);
  pair.actual =
      spec.hasNoise ? registry.generate(spec, request) : pair.forecast;
  return pair;
}

const std::vector<std::string>& paperScenarioNames() {
  static const std::vector<std::string> names{"S1", "S2", "S3", "S4"};
  return names;
}

std::vector<std::string> splitSpecList(const std::string& value) {
  // A fragment continues the previous spec when its first '=' comes before
  // any ':' or '+': "amp=0.5" and "seed=2" are parameters, while
  // "sine:period=24" and "duck+noise=0.2" start a new spec.
  const auto isContinuation = [](const std::string& item) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::size_t colon = item.find(':');
    const std::size_t plus = item.find('+');
    return (colon == std::string::npos || eq < colon) &&
           (plus == std::string::npos || eq < plus);
  };
  std::vector<std::string> items;
  for (const std::string& part : split(value, ',')) {
    const std::string item{trim(part)};
    if (item.empty()) continue;
    if (isContinuation(item)) {
      CAWO_REQUIRE(!items.empty(),
                   "scenario list starts with the parameter fragment \"" +
                       item + "\" — parameters belong after a source name");
      items.back() += "," + item;
    } else {
      items.push_back(item);
    }
  }
  return items;
}

// ---------------------------------------------------------------------------
// Built-in sources
// ---------------------------------------------------------------------------

namespace {

/// Reject parameters the source does not understand, so a typo like
/// "constant:lvel=0.6" fails loudly instead of silently using the default.
void checkParams(const ProfileSpec& spec,
                 std::initializer_list<const char*> allowed,
                 bool allowPositional = false) {
  for (const ProfileParam& p : spec.params) {
    if (p.key.empty()) {
      CAWO_REQUIRE(allowPositional,
                   "profile spec \"" + spec.text +
                       "\": source \"" + spec.source +
                       "\" takes no positional parameter");
      continue;
    }
    bool known = false;
    for (const char* a : allowed)
      if (p.key == a) known = true;
    std::string list;
    for (const char* a : allowed) {
      if (!list.empty()) list += ", ";
      list += a;
    }
    CAWO_REQUIRE(known, "profile spec \"" + spec.text +
                            "\": unknown parameter \"" + p.key +
                            "\" for source \"" + spec.source +
                            "\" (known: " +
                            (list.empty() ? "none" : list) + ")");
  }
}

/// Noise options for the paper scenarios: Section 6.1 perturbation by
/// default, overridden by an explicit "+noise" modifier.
ScenarioOptions legacyNoise(const ProfileSpec& spec,
                            const ProfileRequest& req) {
  ScenarioOptions opts;
  opts.numIntervals = req.numIntervals;
  opts.perturbation = spec.hasNoise ? spec.noise : req.perturbation;
  opts.seed = spec.hasNoiseSeed ? spec.noiseSeed : req.seed;
  return opts;
}

/// Noise options for the new shape sources: deterministic unless the spec
/// carries a "+noise" modifier.
ScenarioOptions shapeNoise(const ProfileSpec& spec,
                           const ProfileRequest& req) {
  ScenarioOptions opts = legacyNoise(spec, req);
  if (!spec.hasNoise) opts.perturbation = 0.0;
  return opts;
}

PowerProfile constantSource(const ProfileSpec& spec,
                            const ProfileRequest& req) {
  checkParams(spec, {"level"});
  const double level = spec.paramDouble("level", 0.5);
  CAWO_REQUIRE(level >= 0.0 && level <= 1.0,
               "profile spec \"" + spec.text +
                   "\": level must be in [0, 1]");
  return profileFromShape([level](double) { return level; }, req.horizon,
                          req.sumIdle, req.sumWork, shapeNoise(spec, req));
}

PowerProfile sineSource(const ProfileSpec& spec, const ProfileRequest& req) {
  checkParams(spec, {"period", "amp", "phase", "mid"});
  // Period and phase are measured in profile intervals, so with the
  // default 24 intervals "period=24,phase=6" reads as a 24 h day starting
  // six hours in — matching how the paper treats the horizon.
  const int J = std::min<int>(req.numIntervals,
                              static_cast<int>(req.horizon));
  const double period = spec.paramDouble("period", static_cast<double>(J));
  const double amp = spec.paramDouble("amp", 0.5);
  const double phase = spec.paramDouble("phase", 0.0);
  const double mid = spec.paramDouble("mid", 0.5);
  CAWO_REQUIRE(period > 0.0,
               "profile spec \"" + spec.text + "\": period must be positive");
  CAWO_REQUIRE(amp >= 0.0 && amp <= 1.0,
               "profile spec \"" + spec.text + "\": amp must be in [0, 1]");
  CAWO_REQUIRE(mid >= 0.0 && mid <= 1.0,
               "profile spec \"" + spec.text + "\": mid must be in [0, 1]");
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  return profileFromShape(
      [=](double x) {
        const double u = x * static_cast<double>(J); // interval units
        return mid + amp * std::sin(kTwoPi * (u - phase) / period);
      },
      req.horizon, req.sumIdle, req.sumWork, shapeNoise(spec, req));
}

PowerProfile rampSource(const ProfileSpec& spec, const ProfileRequest& req) {
  checkParams(spec, {"from", "to"});
  const double from = spec.paramDouble("from", 0.0);
  const double to = spec.paramDouble("to", 1.0);
  CAWO_REQUIRE(from >= 0.0 && from <= 1.0 && to >= 0.0 && to <= 1.0,
               "profile spec \"" + spec.text +
                   "\": from/to must be in [0, 1]");
  return profileFromShape(
      [=](double x) { return from + (to - from) * x; }, req.horizon,
      req.sumIdle, req.sumWork, shapeNoise(spec, req));
}

/// Stylised duck-curve *availability*: the inverse of the famous net-load
/// duck — plenty of headroom in the midday solar belly, a deep trough
/// during the evening ramp (x ≈ 0.8 of the day), modest supply overnight.
double duckShape(double x) {
  const auto bump = [](double x0, double width, double x1) {
    const double d = (x1 - x0) / width;
    return std::exp(-d * d);
  };
  return 0.35 + 0.55 * bump(0.54, 0.16, x) - 0.25 * bump(0.80, 0.07, x);
}

PowerProfile duckSource(const ProfileSpec& spec, const ProfileRequest& req) {
  checkParams(spec, {});
  return profileFromShape(duckShape, req.horizon, req.sumIdle, req.sumWork,
                          shapeNoise(spec, req));
}

PowerProfile traceSource(const ProfileSpec& spec, const ProfileRequest& req) {
  checkParams(spec, {"path", "repeat", "scale", "normalize"},
              /*allowPositional=*/true);
  std::string path = spec.param("path", "");
  for (const ProfileParam& p : spec.params)
    if (p.key.empty()) {
      CAWO_REQUIRE(path.empty(), "profile spec \"" + spec.text +
                                     "\": both a positional path and "
                                     "path= were given");
      path = p.value;
    }
  CAWO_REQUIRE(!path.empty(), "profile spec \"" + spec.text +
                                  "\": trace needs a CSV path "
                                  "(trace:file.csv or trace:path=file.csv)");
  const bool repeat = spec.paramInt("repeat", 0) != 0;
  const bool normalize = spec.paramInt("normalize", 0) != 0;
  const double scale = spec.paramDouble("scale", 1.0);
  CAWO_REQUIRE(scale > 0.0,
               "profile spec \"" + spec.text + "\": scale must be positive");
  CAWO_REQUIRE(!(normalize && spec.hasParam("scale")),
               "profile spec \"" + spec.text +
                   "\": scale and normalize are mutually exclusive");

  // Campaigns build one instance per cell, each calling this generator;
  // the trace file is immutable within a run, so parse it once per path
  // (the cache is process-lifetime — editing a CSV mid-process is not
  // supported).
  const PowerProfile raw = [&path] {
    static std::mutex mutex;
    static std::map<std::string, PowerProfile> cache;
    const std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(path);
    if (it == cache.end())
      it = cache.emplace(path, readProfileCsvFile(path)).first;
    return it->second;
  }();
  CAWO_REQUIRE(repeat || raw.horizon() >= req.horizon,
               "trace \"" + path + "\" covers only " +
                   std::to_string(raw.horizon()) +
                   " of the requested horizon " +
                   std::to_string(req.horizon) +
                   " — extend the CSV or add repeat=1 to tile it");

  // Tile (if requested) and clip to exactly [0, horizon).
  std::vector<Time> lengths;
  std::vector<Power> greens;
  Time covered = 0;
  for (std::size_t j = 0; covered < req.horizon; ++j) {
    const Interval& iv = raw.interval(j % raw.numIntervals());
    const Time len = std::min<Time>(iv.length(), req.horizon - covered);
    lengths.push_back(len);
    greens.push_back(iv.green);
    covered += len;
  }

  if (normalize) {
    // Map the trace's own value range onto the instance's power band, so
    // traces in arbitrary units (gCO2/kWh, MW, ...) stay meaningful for
    // any platform. The range comes from the *full* trace, not the
    // horizon-clipped window, so one spec calibrates identically across
    // every deadline factor of a campaign. A flat trace sits at the band
    // midpoint.
    const Power gMin = req.sumIdle;
    const Power gMax = req.sumIdle + (8 * req.sumWork) / 10;
    Power lo = raw.interval(0).green, hi = lo;
    for (const Interval& iv : raw.intervals()) {
      lo = std::min(lo, iv.green);
      hi = std::max(hi, iv.green);
    }
    for (Power& g : greens) {
      g = hi == lo
              ? gMin + (gMax - gMin) / 2
              : static_cast<Power>(std::llround(
                    static_cast<double>(gMin) +
                    static_cast<double>(g - lo) *
                        static_cast<double>(gMax - gMin) /
                        static_cast<double>(hi - lo)));
    }
  } else if (scale != 1.0) {
    for (Power& g : greens)
      g = static_cast<Power>(std::llround(static_cast<double>(g) * scale));
  }

  if (spec.hasNoise && spec.noise > 0.0) {
    Rng rng(spec.hasNoiseSeed ? spec.noiseSeed : req.seed);
    for (Power& g : greens) {
      const double f = 1.0 + rng.uniformReal(-spec.noise, spec.noise);
      g = std::max<Power>(
          0, static_cast<Power>(std::llround(static_cast<double>(g) * f)));
    }
  }

  PowerProfile out;
  for (std::size_t j = 0; j < lengths.size(); ++j)
    out.appendInterval(lengths[j], greens[j]);
  return out;
}

} // namespace

void registerBuiltinProfileSources(ProfileSourceRegistry& registry) {
  struct PaperScenario {
    Scenario scenario;
    const char* description;
  };
  // Thin wrappers over generateScenario, so the S1–S4 profiles stay
  // bit-identical to the pre-registry generator (pinned by golden tests).
  for (const PaperScenario& ps :
       {PaperScenario{Scenario::S1,
                      "inverted parabola — solar day, midday peak (paper)"},
        PaperScenario{Scenario::S2,
                      "decreasing parabola — observed from midday (paper)"},
        PaperScenario{Scenario::S3,
                      "24 h sine starting low — broad daylight bump (paper)"},
        PaperScenario{Scenario::S4,
                      "constant — storage/nuclear supply (paper)"}}) {
    const std::string name = scenarioName(ps.scenario);
    const Scenario scenario = ps.scenario;
    registry.registerSource(
        {name, name, ps.description},
        [scenario](const ProfileSpec& spec, const ProfileRequest& req) {
          checkParams(spec, {});
          return generateScenario(scenario, req.horizon, req.sumIdle,
                                  req.sumWork, legacyNoise(spec, req));
        });
  }
  registry.registerSource(
      {"constant", "constant:level=L",
       "flat supply at fraction L of the power band (default 0.5)"},
      constantSource);
  registry.registerSource(
      {"sine", "sine:period=P,amp=A,phase=F,mid=M",
       "diurnal sine; period/phase in profile intervals (defaults: one "
       "full cycle, amp 0.5)"},
      sineSource);
  registry.registerSource(
      {"ramp", "ramp:from=A,to=B",
       "linear supply ramp across the horizon (defaults 0 → 1)"},
      rampSource);
  registry.registerSource(
      {"duck", "duck",
       "stylised duck-curve availability: solar belly, evening trough"},
      duckSource);
  registry.registerSource(
      {"trace", "trace:file.csv[,repeat=1][,scale=X|normalize=1]",
       "measured grid/PV trace from a profile CSV (see docs/formats.md)"},
      traceSource);
}

} // namespace cawo
