#include "profile/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "profile/profile_source.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

const char* scenarioName(Scenario s) {
  switch (s) {
  case Scenario::S1: return "S1";
  case Scenario::S2: return "S2";
  case Scenario::S3: return "S3";
  case Scenario::S4: return "S4";
  }
  return "?";
}

Scenario scenarioFromName(const std::string& name) {
  for (const Scenario s :
       {Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4}) {
    if (name == scenarioName(s)) return s;
  }
  CAWO_REQUIRE(false,
               "unknown scenario \"" + name + "\" — registered profile "
                   "sources: " +
                   ProfileSourceRegistry::global().syntaxSummary());
  return Scenario::S1; // unreachable
}

namespace {

/// Normalised shape value in [0, 1] at relative position x ∈ [0, 1].
double shapeValue(Scenario scenario, double x) {
  switch (scenario) {
  case Scenario::S1: {
    const double c = 2.0 * x - 1.0;
    return 1.0 - c * c;
  }
  case Scenario::S2:
    return 1.0 - x * x;
  case Scenario::S3:
    // One full sine period, phase-shifted so the horizon starts with
    // little green power: sin(2πx − π/2) mapped into [0, 1].
    return 0.5 * (1.0 - std::cos(2.0 * 3.14159265358979323846 * x));
  case Scenario::S4:
    return 0.5;
  }
  return 0.0;
}

} // namespace

PowerProfile profileFromShape(const std::function<double(double)>& shape,
                              Time horizon, Power sumIdle, Power sumWork,
                              const ScenarioOptions& opts) {
  CAWO_REQUIRE(horizon > 0, "horizon must be positive");
  CAWO_REQUIRE(sumIdle >= 0 && sumWork >= 0, "negative power sums");
  CAWO_REQUIRE(opts.numIntervals >= 1, "need at least one interval");
  CAWO_REQUIRE(opts.perturbation >= 0.0 && opts.perturbation < 1.0,
               "perturbation must be in [0, 1)");

  const int J = std::min<int>(opts.numIntervals,
                              static_cast<int>(horizon)); // ≥1-unit intervals
  const Power gMin = sumIdle;
  const Power gMax = sumIdle + (8 * sumWork) / 10; // idle + 80% of work
  Rng rng(opts.seed);

  PowerProfile profile;
  const Time baseLen = horizon / J;
  Time remainder = horizon % J;
  for (int j = 0; j < J; ++j) {
    const Time len = baseLen + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    const double x = (static_cast<double>(j) + 0.5) / static_cast<double>(J);
    double f = shape(x);
    f *= 1.0 + rng.uniformReal(-opts.perturbation, opts.perturbation);
    f = std::clamp(f, 0.0, 1.0);
    const auto green = static_cast<Power>(
        std::llround(static_cast<double>(gMin) +
                     f * static_cast<double>(gMax - gMin)));
    profile.appendInterval(len, std::clamp(green, gMin, gMax));
  }
  return profile;
}

PowerProfile generateScenario(Scenario scenario, Time horizon, Power sumIdle,
                              Power sumWork, const ScenarioOptions& opts) {
  return profileFromShape(
      [scenario](double x) { return shapeValue(scenario, x); }, horizon,
      sumIdle, sumWork, opts);
}

} // namespace cawo
