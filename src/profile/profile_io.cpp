#include "profile/profile_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

void writeProfileCsv(std::ostream& out, const PowerProfile& profile) {
  out << "length,green\n";
  for (const Interval& iv : profile.intervals())
    out << iv.length() << ',' << iv.green << '\n';
}

std::string toProfileCsvString(const PowerProfile& profile) {
  std::ostringstream os;
  writeProfileCsv(os, profile);
  return os.str();
}

PowerProfile readProfileCsv(std::istream& in) {
  PowerProfile profile;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "length,green") continue; // header
    const auto fields = split(trimmed, ',');
    CAWO_REQUIRE(fields.size() == 2,
                 "profile CSV line " + std::to_string(lineNo) +
                     ": expected 'length,green'");
    try {
      const Time length = std::stoll(std::string(trim(fields[0])));
      const Power green = std::stoll(std::string(trim(fields[1])));
      profile.appendInterval(length, green);
    } catch (const std::logic_error&) {
      throw PreconditionError("profile CSV line " + std::to_string(lineNo) +
                              ": not an integer");
    }
  }
  CAWO_REQUIRE(profile.numIntervals() > 0, "profile CSV contains no intervals");
  return profile;
}

PowerProfile readProfileCsvString(const std::string& text) {
  std::istringstream is(text);
  return readProfileCsv(is);
}

void writeProfileCsvFile(const std::string& path,
                         const PowerProfile& profile) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open profile CSV for writing: " + path);
  writeProfileCsv(out, profile);
}

PowerProfile readProfileCsvFile(const std::string& path) {
  std::ifstream in(path);
  CAWO_REQUIRE(in.good(), "cannot open profile CSV: " + path);
  return readProfileCsv(in);
}

} // namespace cawo
