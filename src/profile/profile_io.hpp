#pragma once

#include <iosfwd>
#include <string>

#include "core/power_profile.hpp"

/// \file profile_io.hpp
/// CSV interchange for green-power profiles, so measured grid/PV traces
/// can be fed into the scheduler. Format: one interval per line,
/// `length,green`, with optional `#` comments and a tolerated header line
/// `length,green`.

namespace cawo {

void writeProfileCsv(std::ostream& out, const PowerProfile& profile);
std::string toProfileCsvString(const PowerProfile& profile);

/// Parse a profile from CSV; throws PreconditionError on malformed input.
PowerProfile readProfileCsv(std::istream& in);
PowerProfile readProfileCsvString(const std::string& text);

void writeProfileCsvFile(const std::string& path,
                         const PowerProfile& profile);
PowerProfile readProfileCsvFile(const std::string& path);

} // namespace cawo
