#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file profile_source.hpp
/// Spec-driven, pluggable power-profile sources.
///
/// Where `profile/scenario.hpp` hard-wires the paper's four synthetic
/// shapes, this layer makes the scenario axis *open*: a profile is
/// requested with a compact spec string that names a registered source and
/// its parameters, e.g.
///
///   S1                                  the paper's solar-day parabola
///   constant:level=0.6                  flat supply at 60 % of the band
///   sine:period=24,amp=0.5,phase=6     diurnal sine, period in intervals
///   ramp:from=0.2,to=0.9               linearly increasing supply
///   duck                                stylised duck-curve availability
///   trace:examples/grid_trace.csv       measured trace via profile_io
///
/// Every spec may carry a composable forecast-error modifier,
/// `+noise=A[,seed=N]`, that perturbs each interval's budget
/// multiplicatively by ±A (the paper's Section 6.1 noise model). The four
/// paper scenarios default to the request's perturbation (0.1) so legacy
/// behaviour is bit-identical; every other source is deterministic unless
/// a `+noise` modifier is given.
///
/// The `ProfileSourceRegistry` mirrors `SolverRegistry` (PR 1): sources
/// self-register on first use, new sources plug in via
/// `ProfileSourceRegistrar`, and everything that used to accept a scenario
/// name — the campaign axis, the CLI, the bench binaries — now accepts any
/// registered spec. Grammar reference: docs/formats.md.

namespace cawo {

/// One `key=value` parameter of a profile spec; a bare value (e.g. the
/// CSV path in `trace:grid.csv`) is stored with an empty key.
struct ProfileParam {
  std::string key;
  std::string value;
};

/// A parsed profile spec: `source[:param,...][+noise=A[,seed=N]]`.
struct ProfileSpec {
  std::string source;                ///< registered source name
  std::vector<ProfileParam> params;  ///< in spec order, values verbatim
  bool hasNoise = false;             ///< a `+noise` modifier was given
  double noise = 0.0;                ///< modifier amplitude, in [0, 1)
  bool hasNoiseSeed = false;         ///< the modifier carried `seed=N`
  std::uint64_t noiseSeed = 0;
  std::string text;                  ///< the spec string, verbatim

  /// Parse a spec string; throws PreconditionError on malformed input
  /// (empty spec, dangling ':', parameter without a value, bad modifier).
  /// Parsing does not check that the source is registered — use
  /// `ProfileSourceRegistry::resolve` for that.
  static ProfileSpec parse(const std::string& specText);

  /// Reassemble the spec string from the parsed parts. Parsing the result
  /// yields the same spec (round-trip identity).
  std::string canonical() const;

  bool hasParam(const std::string& key) const;
  std::string param(const std::string& key,
                    const std::string& fallback) const;
  double paramDouble(const std::string& key, double fallback) const;
  std::int64_t paramInt(const std::string& key, std::int64_t fallback) const;
};

/// Everything a source needs to materialise a profile for one instance.
struct ProfileRequest {
  Time horizon = 0;     ///< the profile must cover [0, horizon)
  Power sumIdle = 0;    ///< Σ idle powers — the band floor g_min
  Power sumWork = 0;    ///< Σ working powers — g_max = g_min + 0.8·Σ work
  int numIntervals = 24; ///< intervals for synthetic shapes (traces keep
                         ///< their own interval structure)
  double perturbation = 0.1; ///< legacy S1–S4 noise when no `+noise` given
  std::uint64_t seed = 7;    ///< noise seed when the spec names none
};

/// Listing metadata for `--list-scenarios` and error messages.
struct ProfileSourceInfo {
  std::string name;        ///< registered source name
  std::string syntax;      ///< spec syntax, e.g. "sine:period=P,amp=A,..."
  std::string description; ///< one-line human description
};

/// Name → generator registry over every power-profile source.
class ProfileSourceRegistry {
public:
  /// A generator receives the parsed spec (for its parameters and noise
  /// modifier) and the request, and returns a profile covering exactly
  /// [0, request.horizon).
  using Generator =
      std::function<PowerProfile(const ProfileSpec&, const ProfileRequest&)>;

  /// The process-wide registry, with the built-in sources pre-registered:
  /// the paper scenarios S1–S4, "constant", "sine", "ramp", "duck" and
  /// "trace".
  static ProfileSourceRegistry& global();

  /// Register a source. Throws PreconditionError on duplicate names.
  void registerSource(ProfileSourceInfo info, Generator generator);

  bool contains(const std::string& source) const;

  /// All registered source names, in registration (canonical) order.
  std::vector<std::string> names() const;

  /// Listing metadata for a registered source; throws for unknown names.
  const ProfileSourceInfo& info(const std::string& source) const;

  /// Parse `specText` and check its source is registered. Throws
  /// PreconditionError listing every registered source and its syntax.
  ProfileSpec resolve(const std::string& specText) const;

  /// Generate the profile for an (already resolved) spec.
  PowerProfile generate(const ProfileSpec& spec,
                        const ProfileRequest& request) const;

  /// One-line enumeration of registered specs and syntax, used in error
  /// messages ("S1, S2, S3, S4, constant:level=L, ...").
  std::string syntaxSummary() const;

  ProfileSourceRegistry() = default;
  ProfileSourceRegistry(const ProfileSourceRegistry&) = delete;
  ProfileSourceRegistry& operator=(const ProfileSourceRegistry&) = delete;

private:
  struct Entry {
    ProfileSourceInfo info;
    Generator generator;
  };
  const Entry* find(const std::string& source) const;

  std::vector<Entry> entries_; // registration order == listing order
};

/// RAII helper: registers a source before main() runs.
class ProfileSourceRegistrar {
public:
  ProfileSourceRegistrar(ProfileSourceInfo info,
                         ProfileSourceRegistry::Generator generator) {
    ProfileSourceRegistry::global().registerSource(std::move(info),
                                                   std::move(generator));
  }
};

/// Resolve `specText` against the global registry and generate the
/// profile — the one-call path used by `sim/instance` and the CLI.
PowerProfile generateProfile(const std::string& specText,
                             const ProfileRequest& request);

/// A forecast/actual profile pair for the online execution engine.
struct ProfilePair {
  PowerProfile forecast; ///< what the solver plans against
  PowerProfile actual;   ///< what execution is billed against
};

/// Resolve a forecast/actual pair from *one* spec: the `+noise` modifier
/// is read as forecast error, so the forecast is the spec with the
/// modifier stripped (for the paper scenarios that keeps the legacy
/// Section-6.1 shape, bit-identical to the offline instance profile) and
/// the actual is the spec as written. Without a `+noise` modifier both
/// profiles are identical. See docs/formats.md, "Forecast vs actual".
ProfilePair generateForecastActualPair(const std::string& specText,
                                       const ProfileRequest& request);

/// The paper's four scenario names, in canonical order. The campaign key
/// `scenarios=all` expands to exactly this list.
const std::vector<std::string>& paperScenarioNames();

/// Split a comma-separated scenario-axis value into individual specs.
/// Commas also separate parameters *inside* a spec, so fragments that
/// contain '=' or start with '+' are glued onto the preceding spec:
/// "S1,sine:period=24,amp=0.5,duck" → {"S1", "sine:period=24,amp=0.5",
/// "duck"}. Bare source names never contain '='.
std::vector<std::string> splitSpecList(const std::string& value);

/// Register the built-in sources into `registry` (called once by
/// `global()`).
void registerBuiltinProfileSources(ProfileSourceRegistry& registry);

} // namespace cawo
