#include "solver/solver.hpp"

#include <cstdlib>
#include <sstream>

#include "core/carbon_cost.hpp"
#include "core/solve_context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace cawo {

SolverOptions& SolverOptions::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
  return *this;
}

SolverOptions& SolverOptions::setInt(const std::string& key,
                                     std::int64_t value) {
  return set(key, std::to_string(value));
}

SolverOptions& SolverOptions::setDouble(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  return set(key, os.str());
}

bool SolverOptions::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::int64_t SolverOptions::getInt(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    CAWO_REQUIRE(false, "option '" + key + "' is not an integer: '" +
                            it->second + "'");
  }
  return fallback; // unreachable
}

double SolverOptions::getDouble(const std::string& key,
                                double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    CAWO_REQUIRE(false, "option '" + key + "' is not a number: '" +
                            it->second + "'");
  }
  return fallback; // unreachable
}

std::string SolverOptions::getString(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

ValidationResult validateResidualSchedule(const EnhancedGraph& gc,
                                          const Schedule& s, Time deadline,
                                          const ResidualProblem& residual) {
  const auto fail = [](std::string message) {
    ValidationResult r;
    r.ok = false;
    r.message = std::move(message);
    return r;
  };
  const std::vector<std::uint8_t>& started = *residual.started;
  const std::vector<Time>& durations = *residual.durations;
  const auto startedEnd = [&](TaskId u) {
    return residual.starts->start(u) + durations[static_cast<std::size_t>(u)];
  };
  for (TaskId u = 0; u < gc.numNodes(); ++u) {
    if (!s.isSet(u)) return fail("node " + std::to_string(u) + " has no start");
    if (started[static_cast<std::size_t>(u)]) {
      if (s.start(u) != residual.starts->start(u))
        return fail("started node " + std::to_string(u) +
                    " was moved from its pinned start");
      continue;
    }
    const Time a = s.start(u);
    if (a < residual.releaseTime)
      return fail("movable node " + std::to_string(u) +
                  " starts before the release time");
    if (a + gc.len(u) > deadline)
      return fail("movable node " + std::to_string(u) +
                  " finishes after the deadline");
    for (const TaskId p : gc.preds(u)) {
      // Started predecessors bound by their *effective* completion
      // (actual for completed, estimated for running); movable ones by
      // their planned occupancy.
      const Time predEnd = started[static_cast<std::size_t>(p)]
                               ? startedEnd(p)
                               : (s.isSet(p) ? s.start(p) + gc.len(p)
                                             : kTimeInfinity);
      if (predEnd == kTimeInfinity)
        return fail("node " + std::to_string(p) + " has no start");
      if (a < predEnd)
        return fail("movable node " + std::to_string(u) +
                    " starts before predecessor " + std::to_string(p) +
                    " completes");
    }
  }
  return {};
}

SolveResult Solver::solve(const SolveRequest& request) const {
  const SolverInfo meta = info();
  CAWO_REQUIRE(request.gc != nullptr,
               "SolveRequest.gc is required (solver '" + meta.name + "')");
  CAWO_REQUIRE(request.profile != nullptr,
               "SolveRequest.profile is required (solver '" + meta.name +
                   "')");
  CAWO_REQUIRE(request.deadline > 0,
               "SolveRequest.deadline must be positive (solver '" +
                   meta.name + "')");
  if (meta.needsWorkflow) {
    CAWO_REQUIRE(request.graph != nullptr && request.platform != nullptr,
                 "solver '" + meta.name +
                     "' re-runs the mapping pass and needs "
                     "SolveRequest.graph and SolveRequest.platform");
  }
  if (request.residual != nullptr) {
    CAWO_REQUIRE(meta.supportsResidual,
                 "solver '" + meta.name +
                     "' does not support residual (mid-execution) problems");
    const ResidualProblem& residual = *request.residual;
    CAWO_REQUIRE(residual.starts != nullptr && residual.started != nullptr &&
                     residual.durations != nullptr,
                 "ResidualProblem needs starts, started and durations "
                 "(solver '" + meta.name + "')");
    CAWO_REQUIRE(
        residual.started->size() ==
                static_cast<std::size_t>(request.gc->numNodes()) &&
            residual.durations->size() == residual.started->size() &&
            static_cast<std::size_t>(residual.starts->numNodes()) ==
                residual.started->size(),
        "ResidualProblem vectors do not match the graph (solver '" +
            meta.name + "')");
    CAWO_REQUIRE(residual.releaseTime >= 0,
                 "ResidualProblem.releaseTime must be non-negative (solver '" +
                     meta.name + "')");
  }
  if (request.context != nullptr) {
    CAWO_REQUIRE(&request.context->gc() == request.gc &&
                     &request.context->profile() == request.profile &&
                     request.context->deadline() == request.deadline,
                 "SolveRequest.context describes a different instance than "
                 "the request (solver '" +
                     meta.name + "')");
  }

  WallTimer timer;
  RawResult raw;
  {
    obs::TraceScope span("solve");
    if (span.recording()) span.arg("solver", meta.name);
    raw = doSolve(request);
  }
  const double wallMs = timer.elapsedMs();
  obs::harvestSolveStats(raw.stats);

  SolveResult result;
  result.schedule = std::move(raw.schedule);
  result.wallMs = wallMs;
  result.provedOptimal = raw.provedOptimal;
  result.stats = std::move(raw.stats);
  result.remappedGc = std::move(raw.remappedGc);
  result.extendedProfile = std::move(raw.extendedProfile);
  result.effectiveDeadline =
      raw.effectiveDeadline >= 0 ? raw.effectiveDeadline : request.deadline;

  const EnhancedGraph& gc =
      result.remappedGc ? *result.remappedGc : *request.gc;
  const PowerProfile& profile =
      result.extendedProfile ? *result.extendedProfile : *request.profile;

  if (request.residual != nullptr) {
    // A residual solution is judged against the execution-aware rules: the
    // pinned prefix ran with its *effective* durations, which the plain
    // planned-length validation would mis-score (a task that ran short
    // legitimately frees its processor early). The projected cost uses the
    // same effective durations.
    result.validation = validateResidualSchedule(
        gc, result.schedule, result.effectiveDeadline, *request.residual);
    result.feasible = result.validation.ok;
    if (result.feasible)
      result.cost = evaluateCostWithDurations(gc, profile, result.schedule,
                                              *request.residual->durations);
    return result;
  }
  result.validation =
      validateSchedule(gc, result.schedule, result.effectiveDeadline);
  result.feasible = result.validation.ok;
  if (result.feasible) result.cost = evaluateCost(gc, profile, result.schedule);
  return result;
}

} // namespace cawo
