#include "solver/solver.hpp"

#include <cstdlib>
#include <sstream>

#include "core/carbon_cost.hpp"
#include "core/solve_context.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace cawo {

SolverOptions& SolverOptions::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
  return *this;
}

SolverOptions& SolverOptions::setInt(const std::string& key,
                                     std::int64_t value) {
  return set(key, std::to_string(value));
}

SolverOptions& SolverOptions::setDouble(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  return set(key, os.str());
}

bool SolverOptions::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::int64_t SolverOptions::getInt(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    CAWO_REQUIRE(false, "option '" + key + "' is not an integer: '" +
                            it->second + "'");
  }
  return fallback; // unreachable
}

double SolverOptions::getDouble(const std::string& key,
                                double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    CAWO_REQUIRE(false, "option '" + key + "' is not a number: '" +
                            it->second + "'");
  }
  return fallback; // unreachable
}

std::string SolverOptions::getString(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

SolveResult Solver::solve(const SolveRequest& request) const {
  const SolverInfo meta = info();
  CAWO_REQUIRE(request.gc != nullptr,
               "SolveRequest.gc is required (solver '" + meta.name + "')");
  CAWO_REQUIRE(request.profile != nullptr,
               "SolveRequest.profile is required (solver '" + meta.name +
                   "')");
  CAWO_REQUIRE(request.deadline > 0,
               "SolveRequest.deadline must be positive (solver '" +
                   meta.name + "')");
  if (meta.needsWorkflow) {
    CAWO_REQUIRE(request.graph != nullptr && request.platform != nullptr,
                 "solver '" + meta.name +
                     "' re-runs the mapping pass and needs "
                     "SolveRequest.graph and SolveRequest.platform");
  }
  if (request.context != nullptr) {
    CAWO_REQUIRE(&request.context->gc() == request.gc &&
                     &request.context->profile() == request.profile &&
                     request.context->deadline() == request.deadline,
                 "SolveRequest.context describes a different instance than "
                 "the request (solver '" +
                     meta.name + "')");
  }

  WallTimer timer;
  RawResult raw = doSolve(request);
  const double wallMs = timer.elapsedMs();

  SolveResult result;
  result.schedule = std::move(raw.schedule);
  result.wallMs = wallMs;
  result.provedOptimal = raw.provedOptimal;
  result.stats = std::move(raw.stats);
  result.remappedGc = std::move(raw.remappedGc);
  result.extendedProfile = std::move(raw.extendedProfile);
  result.effectiveDeadline =
      raw.effectiveDeadline >= 0 ? raw.effectiveDeadline : request.deadline;

  const EnhancedGraph& gc =
      result.remappedGc ? *result.remappedGc : *request.gc;
  const PowerProfile& profile =
      result.extendedProfile ? *result.extendedProfile : *request.profile;

  result.validation =
      validateSchedule(gc, result.schedule, result.effectiveDeadline);
  result.feasible = result.validation.ok;
  if (result.feasible) result.cost = evaluateCost(gc, profile, result.schedule);
  return result;
}

} // namespace cawo
