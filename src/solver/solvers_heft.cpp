#include <memory>

#include "core/asap.hpp"
#include "core/cawosched.hpp"
#include "core/solve_context.hpp"
#include "heft/green_heft.hpp"
#include "solver/builtins.hpp"
#include "util/require.hpp"

/// \file solvers_heft.cpp
/// Solver adapter over the two-pass GreenHEFT pipeline (Section 7 future
/// work): a carbon-aware HEFT mapping pass followed by a CaWoSched
/// scheduling pass on the re-mapped enhanced graph. Because the mapping
/// changes, the result carries its own enhanced graph (and a profile
/// extended to the new ASAP horizon when necessary).
///
/// Selectable as "greenheft" or "greenheft[alpha]" (e.g. "greenheft[0.25]");
/// a bracket parameter fixes the alpha and wins over the options bag.
/// Options (all optional):
///   alpha       double  makespan/carbon trade-off, 1.0 = plain HEFT (0.5)
///   variant     string  second-pass CaWoSched variant ("pressWR-LS")
///   link-seed   int     RNG seed for the link-processor powers
///   block-size  int     second-pass refinement block size k (3)
///   ls-radius   int     second-pass local-search radius µ (10)

namespace cawo {

namespace {

class GreenHeftSolver final : public Solver {
public:
  GreenHeftSolver(std::string name, double alpha, bool alphaFixedByName)
      : name_(std::move(name)),
        alpha_(alpha),
        alphaFixedByName_(alphaFixedByName) {}

  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = name_;
    meta.family = "heft";
    meta.description =
        "two-pass pipeline: carbon-aware HEFT mapping, then a CaWoSched "
        "scheduling pass on the re-mapped graph";
    meta.remapsGraph = true;
    meta.needsWorkflow = true;
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    const SolverOptions& options = request.options;

    GreenHeftOptions gh;
    // A bracket parameter is part of the solver's identity — the name
    // "greenheft[0.25]" must run with alpha 0.25 regardless of the bag.
    gh.alpha = alphaFixedByName_ ? alpha_
                                 : options.getDouble("alpha", alpha_);
    CAWO_REQUIRE(gh.alpha >= 0.0 && gh.alpha <= 1.0,
                 "greenheft alpha must lie in [0, 1]");
    const HeftResult mapped =
        runGreenHeft(*request.graph, *request.platform, *request.profile, gh);

    LinkPowerOptions linkPower;
    linkPower.seed = static_cast<std::uint64_t>(options.getInt(
        "link-seed", static_cast<std::int64_t>(linkPower.seed)));
    auto gc = std::make_shared<EnhancedGraph>(
        EnhancedGraph::build(*request.graph, *request.platform,
                             mapped.mapping, linkPower, &mapped.startTimes));

    // The re-mapped graph may not fit the requested deadline; fall back to
    // its own ASAP makespan and extend the profile's horizon with the last
    // interval's budget so both pipelines are costed on comparable bands.
    const Time asapD = asapMakespan(*gc);
    const Time deadline = std::max(request.deadline, asapD);
    auto profile = std::make_shared<PowerProfile>(*request.profile);
    const Power tailGreen = profile->numIntervals() == 0
                                ? 0
                                : profile->intervals().back().green;
    profile->extendTo(deadline, tailGreen);

    const VariantSpec variant =
        VariantSpec::parse(options.getString("variant", "pressWR-LS"));
    CaWoParams params;
    params.blockSize =
        static_cast<int>(options.getInt("block-size", params.blockSize));
    params.lsRadius = options.getInt("ls-radius", params.lsRadius);

    // The request's context (if any) describes the *original* mapping, so
    // it cannot be reused here; the second pass gets its own context over
    // the re-mapped graph and reports the same phase-split stats as the
    // plain CaWoSched adapters.
    const SolveContext remappedCtx(*gc, *profile, deadline);
    VariantRunStats run;
    RawResult raw;
    raw.schedule = runVariant(remappedCtx, variant, params, &run);
    fillPhaseStats(run, raw.stats);
    raw.stats["mapping-makespan"] = mapped.makespan;
    raw.stats["asap-makespan"] = asapD;
    raw.remappedGc = std::move(gc);
    raw.extendedProfile = std::move(profile);
    raw.effectiveDeadline = deadline;
    return raw;
  }

private:
  std::string name_;
  double alpha_;
  bool alphaFixedByName_;
};

} // namespace

void registerHeftSolvers(SolverRegistry& registry) {
  registry.registerFactory(
      "greenheft", [](const std::string& requested) -> SolverPtr {
        const auto [base, param] = splitBracketParam(requested);
        CAWO_REQUIRE(base == "greenheft",
                     "greenheft factory invoked for '" + requested + "'");
        double alpha = 0.5;
        if (!param.empty()) {
          try {
            alpha = std::stod(param);
          } catch (const std::exception&) {
            CAWO_REQUIRE(false, "cannot parse greenheft alpha from '" +
                                    requested + "'");
          }
        }
        return std::make_unique<GreenHeftSolver>(requested, alpha,
                                                 !param.empty());
      });
}

} // namespace cawo
