#pragma once

#include <functional>
#include <string>
#include <vector>

#include "solver/solver.hpp"

/// \file registry.hpp
/// Name → factory registry over every scheduling algorithm in the repo.
///
/// The global registry self-registers the built-in solvers on first use:
/// "ASAP", the 16 CaWoSched variants ("slack" … "pressWR-LS"), the
/// two-pass "greenheft" pipeline, the exact branch-and-bound "bnb" and the
/// single-processor dynamic program "dp" — see DESIGN.md. New algorithms
/// (plugins, experiments) register additional factories at startup via
/// `registerFactory` or the `SolverRegistrar` RAII helper and immediately
/// become selectable in the runner, the CLI and every bench binary.
///
/// Lookup supports three forms:
///   * exact names                       — "pressWR-LS";
///   * bracket parameters                — "greenheft[0.25]" reaches the
///     "greenheft" factory, which parses the alpha;
///   * glob selection (`select`)         — "press*", "*-LS", "all", or a
///     comma-separated union of patterns.

namespace cawo {

class SolverRegistry {
public:
  /// A factory receives the *requested* name (which may carry a bracket
  /// parameter, e.g. "greenheft[0.25]") and returns a fresh solver.
  using Factory = std::function<SolverPtr(const std::string& requestedName)>;

  /// The process-wide registry, with the built-in solvers pre-registered.
  static SolverRegistry& global();

  /// Register a factory under `name`. Throws PreconditionError on
  /// duplicates — two algorithms must never shadow each other silently.
  void registerFactory(const std::string& name, Factory factory);

  /// True if `name` resolves — either an exact key or "key[param]" whose
  /// base key is registered.
  bool contains(const std::string& name) const;

  /// All registered names, in registration (canonical) order.
  std::vector<std::string> names() const;

  /// Instantiate the solver for `name` (exact or "key[param]" form).
  /// Throws PreconditionError for unknown names, listing the alternatives.
  SolverPtr create(const std::string& name) const;

  /// Expand a selection into registered names, preserving canonical order:
  /// "all" → every name; otherwise a comma-separated list whose entries
  /// are exact names, bracket-parameterised names, or globs with `*`/`?`.
  /// Throws PreconditionError when an entry matches nothing.
  std::vector<std::string> select(const std::string& pattern) const;

  SolverRegistry() = default;
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

private:
  const Factory* find(const std::string& name) const;

  std::vector<std::string> order_;             // canonical listing order
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// RAII helper: `static SolverRegistrar reg("mysolver", factory);` in a
/// translation unit registers the solver before main() runs.
class SolverRegistrar {
public:
  SolverRegistrar(const std::string& name, SolverRegistry::Factory factory) {
    SolverRegistry::global().registerFactory(name, std::move(factory));
  }
};

/// Split "key[param]" → {key, param}; param is empty when absent.
/// Exposed for solvers that parse their own bracket parameter.
std::pair<std::string, std::string> splitBracketParam(const std::string& name);

/// Register the built-in algorithm families into `registry` (idempotent
/// only in the sense that global() calls it exactly once).
void registerBuiltinSolvers(SolverRegistry& registry);

} // namespace cawo
