#include "solver/registry.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

std::pair<std::string, std::string> splitBracketParam(
    const std::string& name) {
  const std::size_t open = name.find('[');
  if (open == std::string::npos || name.back() != ']') return {name, ""};
  return {name.substr(0, open),
          name.substr(open + 1, name.size() - open - 2)};
}

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* instance = [] {
    auto* r = new SolverRegistry();
    registerBuiltinSolvers(*r);
    return r;
  }();
  return *instance;
}

void SolverRegistry::registerFactory(const std::string& name,
                                     Factory factory) {
  CAWO_REQUIRE(!name.empty(), "solver name must not be empty");
  CAWO_REQUIRE(name.find('[') == std::string::npos,
               "register the base name, not a parameterised form: '" + name +
                   "'");
  CAWO_REQUIRE(find(name) == nullptr,
               "solver '" + name + "' is already registered");
  order_.push_back(name);
  factories_.emplace_back(name, std::move(factory));
}

const SolverRegistry::Factory* SolverRegistry::find(
    const std::string& name) const {
  for (const auto& [key, factory] : factories_)
    if (key == name) return &factory;
  return nullptr;
}

bool SolverRegistry::contains(const std::string& name) const {
  if (find(name) != nullptr) return true;
  const auto [base, param] = splitBracketParam(name);
  return !param.empty() && find(base) != nullptr;
}

std::vector<std::string> SolverRegistry::names() const { return order_; }

SolverPtr SolverRegistry::create(const std::string& name) const {
  const Factory* factory = find(name);
  if (factory == nullptr) {
    const auto [base, param] = splitBracketParam(name);
    if (!param.empty()) factory = find(base);
  }
  if (factory == nullptr) {
    std::string known;
    for (const std::string& n : order_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    CAWO_REQUIRE(false, "unknown solver '" + name +
                            "' — registered solvers: " + known);
  }
  SolverPtr solver = (*factory)(name);
  CAWO_ASSERT(solver != nullptr,
              "factory for '" + name + "' returned null");
  return solver;
}

std::vector<std::string> SolverRegistry::select(
    const std::string& pattern) const {
  if (pattern.empty() || pattern == "all") return order_;

  // Union of comma-separated entries, de-duplicated, canonical order for
  // globs and entry order for exact names.
  std::vector<std::string> out;
  const auto push = [&out](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end())
      out.push_back(name);
  };

  for (const std::string& rawEntry : split(pattern, ',')) {
    const std::string entry{trim(rawEntry)};
    if (entry.empty()) continue;
    if (entry == "all") {
      for (const std::string& n : order_) push(n);
      continue;
    }
    if (isGlob(entry)) {
      bool any = false;
      for (const std::string& n : order_) {
        if (globMatch(entry, n)) {
          push(n);
          any = true;
        }
      }
      CAWO_REQUIRE(any, "selection pattern '" + entry +
                            "' matches no registered solver");
      continue;
    }
    CAWO_REQUIRE(contains(entry), "unknown solver '" + entry +
                                      "' in selection '" + pattern + "'");
    push(entry);
  }
  CAWO_REQUIRE(!out.empty(),
               "selection '" + pattern + "' matches no solver");
  return out;
}

} // namespace cawo
