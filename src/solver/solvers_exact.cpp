#include "core/solve_context.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/single_proc_dp.hpp"
#include "solver/builtins.hpp"
#include "util/require.hpp"

/// \file solvers_exact.cpp
/// Solver adapters over the exact algorithms.
///
/// "bnb" — branch-and-bound over integer start times (our Gurobi-ILP
/// substitute, see DESIGN.md). Options:
///   max-nodes       int     search-node budget (200'000'000)
///   time-limit-sec  double  wall-clock budget (120)
///
/// "dp" — the polynomial single-processor dynamic program of Theorem 4.1;
/// requires the enhanced graph to live on exactly one processor. Options:
///   method  string  "poly" (Lemma 4.2 end-time set, default) or "pseudo"
///                   (O(n·T) over all integer end times)

namespace cawo {

namespace {

class BnbSolver final : public Solver {
public:
  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = "bnb";
    meta.family = "exact";
    meta.description =
        "exact branch-and-bound over integer start times (ILP substitute); "
        "returns the incumbent with provedOptimal=false on budget "
        "exhaustion";
    meta.exact = true;
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    BnbOptions opts;
    opts.maxNodes = static_cast<std::uint64_t>(request.options.getInt(
        "max-nodes", static_cast<std::int64_t>(opts.maxNodes)));
    opts.timeLimitSec =
        request.options.getDouble("time-limit-sec", opts.timeLimitSec);

    // A shared context supplies the initial windows, so the feasibility
    // check, the ASAP incumbent and the static latest starts skip their
    // Kahn passes.
    const SolveContext* ctx = request.context;
    const BnbResult bnb =
        solveExact(*request.gc, *request.profile, request.deadline, opts,
                   ctx ? &ctx->initialEst() : nullptr,
                   ctx ? &ctx->initialLst() : nullptr);

    RawResult raw;
    raw.schedule = bnb.schedule;
    raw.provedOptimal = bnb.provedOptimal;
    raw.stats["nodes-explored"] =
        static_cast<std::int64_t>(bnb.nodesExplored);
    return raw;
  }
};

class DpSolver final : public Solver {
public:
  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = "dp";
    meta.family = "exact";
    meta.description =
        "polynomial single-processor dynamic program (Theorem 4.1); "
        "requires a single-processor enhanced graph";
    meta.exact = true;
    meta.singleProcOnly = true;
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    const EnhancedGraph& gc = *request.gc;
    const SingleProcInstance inst = singleProcInstanceFrom(gc);

    const std::string method =
        request.options.getString("method", "poly");
    CAWO_REQUIRE(method == "poly" || method == "pseudo",
                 "dp method must be 'poly' or 'pseudo', got '" + method +
                     "'");
    const SingleProcResult dp =
        method == "poly"
            ? solveSingleProcPoly(inst, *request.profile, request.deadline)
            : solveSingleProcPseudo(inst, *request.profile,
                                    request.deadline);

    RawResult raw;
    raw.schedule = Schedule(gc.numNodes());
    const auto order = gc.procOrder(0);
    CAWO_ASSERT(order.size() == dp.starts.size(),
                "DP start vector does not match the processor order");
    for (std::size_t i = 0; i < order.size(); ++i)
      raw.schedule.setStart(order[i], dp.starts[i]);
    raw.provedOptimal = true;
    return raw;
  }
};

} // namespace

void registerExactSolvers(SolverRegistry& registry) {
  registry.registerFactory("bnb", [](const std::string&) -> SolverPtr {
    return std::make_unique<BnbSolver>();
  });
  registry.registerFactory("dp", [](const std::string&) -> SolverPtr {
    return std::make_unique<DpSolver>();
  });
}

} // namespace cawo
