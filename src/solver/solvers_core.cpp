#include "core/asap.hpp"
#include "core/cawosched.hpp"
#include "solver/builtins.hpp"
#include "util/require.hpp"

/// \file solvers_core.cpp
/// Solver adapters over the core algorithm family: the carbon-unaware
/// ASAP baseline and the 16 CaWoSched heuristics.
///
/// CaWoSched options (all optional):
///   block-size  int   refinement block size k (paper: 3)
///   ls-radius   int   local-search radius µ   (paper: 10)

namespace cawo {

namespace {

CaWoParams paramsFromOptions(const SolverOptions& options) {
  CaWoParams params;
  params.blockSize =
      static_cast<int>(options.getInt("block-size", params.blockSize));
  params.lsRadius = options.getInt("ls-radius", params.lsRadius);
  return params;
}

class AsapSolver final : public Solver {
public:
  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = "ASAP";
    meta.family = "baseline";
    meta.description =
        "carbon-unaware baseline: every node starts at its earliest "
        "possible start time";
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    RawResult raw;
    raw.schedule = scheduleAsap(*request.gc);
    return raw;
  }
};

class CaWoSchedSolver final : public Solver {
public:
  explicit CaWoSchedSolver(const VariantSpec& spec) : spec_(spec) {}

  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = spec_.name();
    meta.family = "cawosched";
    meta.description =
        std::string("CaWoSched heuristic: ") +
        (spec_.base == BaseScore::Slack ? "slack" : "pressure") + " score" +
        (spec_.weighted ? ", power-weighted" : "") +
        (spec_.refined ? ", refined intervals" : "") +
        (spec_.localSearch ? ", + local search" : "");
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    RawResult raw;
    raw.schedule =
        runVariant(*request.gc, *request.profile, request.deadline, spec_,
                   paramsFromOptions(request.options));
    return raw;
  }

private:
  VariantSpec spec_;
};

} // namespace

void registerCoreSolvers(SolverRegistry& registry) {
  registry.registerFactory(
      "ASAP", [](const std::string&) -> SolverPtr {
        return std::make_unique<AsapSolver>();
      });
  for (const VariantSpec& variant : allVariants()) {
    registry.registerFactory(
        variant.name(), [variant](const std::string&) -> SolverPtr {
          return std::make_unique<CaWoSchedSolver>(variant);
        });
  }
}

} // namespace cawo
