#include <cmath>
#include <optional>

#include "core/asap.hpp"
#include "core/cawosched.hpp"
#include "core/solve_context.hpp"
#include "solver/builtins.hpp"
#include "util/require.hpp"

/// \file solvers_core.cpp
/// Solver adapters over the core algorithm family: the carbon-unaware
/// ASAP baseline and the 16 CaWoSched heuristics.
///
/// Both adapters consume `SolveRequest::context` when the caller provides
/// one (the suite and campaign runners do), so the initial windows, score
/// orders and refined interval sets are computed once per instance; a
/// private context is built otherwise. CaWoSched runs additionally report
/// the greedy/local-search phase split (and the local-search statistics)
/// through the solver stats map:
///   greedy-us        greedy-phase wall time, microseconds
///   ls-us            local-search wall time, microseconds (LS variants)
///   ls-rounds        local-search rounds (including the final gainless one)
///   ls-moves         improving moves applied
///   ls-initial-cost  carbon cost entering local search
///   ls-final-cost    carbon cost leaving local search
///
/// CaWoSched options (all optional):
///   block-size   int   refinement block size k (paper: 3)
///   ls-radius    int   local-search radius µ   (paper: 10)
///   threads      int   intra-solve worker threads (0 = hardware, ≥ 0;
///                      never changes the schedule — see DESIGN.md,
///                      "Parallel solve core")
///   ls-restarts  int   local-search best-of-N restarts (≥ 1; 1 = the
///                      paper's plain -LS pass)
///   ls-seed      int   base seed for restart perturbation streams

namespace cawo {

namespace {

CaWoParams paramsFromOptions(const SolverOptions& options) {
  CaWoParams params;
  params.blockSize =
      static_cast<int>(options.getInt("block-size", params.blockSize));
  params.lsRadius = options.getInt("ls-radius", params.lsRadius);
  const std::int64_t threads = options.getInt("threads", params.threads);
  CAWO_REQUIRE(threads >= 0,
               "CaWoSched option \"threads\" must be >= 0 (0 = hardware)");
  params.threads = static_cast<unsigned>(threads);
  const std::int64_t restarts =
      options.getInt("ls-restarts",
                     static_cast<std::int64_t>(params.lsRestarts));
  CAWO_REQUIRE(restarts >= 1, "CaWoSched option \"ls-restarts\" must be >= 1");
  params.lsRestarts = static_cast<std::size_t>(restarts);
  params.lsSeed = static_cast<std::uint64_t>(options.getInt(
      "ls-seed", static_cast<std::int64_t>(params.lsSeed)));
  return params;
}

class AsapSolver final : public Solver {
public:
  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = "ASAP";
    meta.family = "baseline";
    meta.description =
        "carbon-unaware baseline: every node starts at its earliest "
        "possible start time";
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    RawResult raw;
    raw.schedule = request.context
                       ? scheduleAsap(*request.gc, request.context->initialEst())
                       : scheduleAsap(*request.gc);
    return raw;
  }
};

class CaWoSchedSolver final : public Solver {
public:
  explicit CaWoSchedSolver(const VariantSpec& spec) : spec_(spec) {}

  SolverInfo info() const override {
    SolverInfo meta;
    meta.name = spec_.name();
    meta.family = "cawosched";
    meta.description =
        std::string("CaWoSched heuristic: ") +
        (spec_.base == BaseScore::Slack ? "slack" : "pressure") + " score" +
        (spec_.weighted ? ", power-weighted" : "") +
        (spec_.refined ? ", refined intervals" : "") +
        (spec_.localSearch ? ", + local search" : "");
    meta.supportsResidual = true;
    return meta;
  }

protected:
  RawResult doSolve(const SolveRequest& request) const override {
    const CaWoParams params = paramsFromOptions(request.options);
    std::optional<SolveContext> local;
    const SolveContext* ctx = request.context;
    if (ctx == nullptr) {
      local.emplace(*request.gc, *request.profile, request.deadline);
      // A private context may parallelise its own lazy computations; a
      // shared one keeps whatever its owner configured.
      local->setThreads(params.threads);
      ctx = &*local;
    }

    if (request.residual != nullptr) {
      // Mid-execution re-solve: pinned-prefix greedy over the movable
      // remainder. The -LS pass is skipped — its moves are not
      // pin-aware, and re-solves must stay cheap enough to run at every
      // event (see DESIGN.md, "Online execution engine").
      GreedyOptions gopts;
      gopts.base = spec_.base;
      gopts.weighted = spec_.weighted;
      gopts.refined = spec_.refined;
      gopts.blockSize = params.blockSize;
      GreedyResidual residual;
      residual.starts = request.residual->starts;
      residual.started = request.residual->started;
      residual.durations = request.residual->durations;
      residual.releaseTime = request.residual->releaseTime;
      residual.windows = request.residual->windows;
      RawResult raw;
      raw.schedule = scheduleGreedyResidual(*ctx, gopts, residual);
      return raw;
    }

    VariantRunStats run;
    RawResult raw;
    raw.schedule = runVariant(*ctx, spec_, params, &run);
    fillPhaseStats(run, raw.stats);
    return raw;
  }

private:
  VariantSpec spec_;
};

} // namespace

void fillPhaseStats(const VariantRunStats& run,
                    std::map<std::string, std::int64_t>& stats) {
  stats["greedy-us"] =
      static_cast<std::int64_t>(std::llround(run.greedyMs * 1000.0));
  if (!run.lsRan) return;
  stats["ls-us"] = static_cast<std::int64_t>(std::llround(run.lsMs * 1000.0));
  stats["ls-rounds"] = static_cast<std::int64_t>(run.ls.rounds);
  stats["ls-moves"] = static_cast<std::int64_t>(run.ls.movesApplied);
  stats["ls-initial-cost"] = static_cast<std::int64_t>(run.ls.initialCost);
  stats["ls-final-cost"] = static_cast<std::int64_t>(run.ls.finalCost);
  // Only multi-start runs grow extra keys, so default-knob records (and
  // the golden files pinned on them) are byte-identical to before.
  if (run.ls.restartsRun > 1) {
    stats["ls-restarts"] = static_cast<std::int64_t>(run.ls.restartsRun);
    stats["ls-best-restart"] = static_cast<std::int64_t>(run.ls.bestRestart);
  }
}

void registerCoreSolvers(SolverRegistry& registry) {
  registry.registerFactory(
      "ASAP", [](const std::string&) -> SolverPtr {
        return std::make_unique<AsapSolver>();
      });
  for (const VariantSpec& variant : allVariants()) {
    registry.registerFactory(
        variant.name(), [variant](const std::string&) -> SolverPtr {
          return std::make_unique<CaWoSchedSolver>(variant);
        });
  }
}

} // namespace cawo
