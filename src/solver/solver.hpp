#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/enhanced_graph.hpp"
#include "core/platform.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"
#include "core/task_graph.hpp"
#include "util/types.hpp"

/// \file solver.hpp
/// The unified solver abstraction (see DESIGN.md, "Solver / Registry
/// layering").
///
/// Every scheduling algorithm in the repository — the carbon-unaware ASAP
/// baseline, the 16 CaWoSched heuristics, the two-pass GreenHEFT pipeline
/// and the exact solvers — implements the same `Solver` interface:
///
///   SolverInfo  info()  — name, family, capability flags;
///   SolveResult solve() — schedule + cost + diagnostics for a request.
///
/// A `SolveRequest` bundles the fixed inputs (enhanced graph, power
/// profile, deadline) plus an untyped per-solver options bag and, for
/// solvers that redo the *mapping* pass (GreenHEFT), the original workflow
/// and platform. The non-virtual `Solver::solve` wraps the per-algorithm
/// `doSolve` with uniform timing, schedule validation and carbon-cost
/// evaluation, so every algorithm is benchmarked by exactly the same
/// yardstick.

namespace cawo {

class SolveContext;
class WindowState;

/// A residual scheduling problem: part of the instance has already
/// *executed* (the online replay engine's completed and running tasks) and
/// only the remaining nodes are movable. Pointed-to objects must outlive
/// the solve call.
///
/// Contract: `starts`/`started` pin every started node at its observed
/// start time; `durations[u]` is the node's effective duration — the
/// *actual* runtime for completed nodes, the planned ω(u) estimate for
/// running and unstarted ones. Movable nodes must be scheduled no earlier
/// than `releaseTime` (the wall-clock now; every completed node has
/// finished by then). `windows` optionally hands the solver the engine's
/// incrementally maintained pinned-prefix EST/LST state so the re-solve
/// starts from the repaired fixpoint instead of re-pinning from scratch;
/// when given it must describe exactly the (gc, deadline, started-set)
/// of this request.
struct ResidualProblem {
  const Schedule* starts = nullptr;
  const std::vector<std::uint8_t>* started = nullptr;
  const std::vector<Time>* durations = nullptr;
  Time releaseTime = 0;
  const WindowState* windows = nullptr;
};

/// Static metadata and capability flags of a solver.
struct SolverInfo {
  std::string name;        ///< registry key, e.g. "pressWR-LS"
  std::string family;      ///< "baseline" | "cawosched" | "heft" | "exact"
  std::string description; ///< one-line human description
  bool exact = false;      ///< can prove optimality (within budgets)
  bool deterministic = true;
  /// Requires the enhanced graph to live on exactly one processor
  /// (the Theorem 4.1 dynamic programs).
  bool singleProcOnly = false;
  /// May replace the mapping — the result's schedule then refers to
  /// `SolveResult::remappedGc` instead of the request's graph (GreenHEFT).
  bool remapsGraph = false;
  /// Needs `SolveRequest::graph` and `SolveRequest::platform` to be set.
  bool needsWorkflow = false;
  /// Accepts residual problems (`SolveRequest::residual`): re-scheduling
  /// the not-yet-started remainder of a partially executed instance (the
  /// online replay engine's mid-execution re-solves).
  bool supportsResidual = false;
};

/// String-keyed options bag with typed accessors. Unknown keys are simply
/// ignored by solvers, so one bag can configure a heterogeneous selection.
class SolverOptions {
public:
  SolverOptions() = default;

  SolverOptions& set(const std::string& key, std::string value);
  SolverOptions& setInt(const std::string& key, std::int64_t value);
  SolverOptions& setDouble(const std::string& key, double value);

  bool has(const std::string& key) const;
  std::int64_t getInt(const std::string& key, std::int64_t fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  std::string getString(const std::string& key,
                        const std::string& fallback) const;

  const std::map<std::string, std::string>& entries() const {
    return values_;
  }

private:
  std::map<std::string, std::string> values_;
};

/// Everything a solver needs for one run. `gc`, `profile` and `deadline`
/// are mandatory; `graph`/`platform` are only required by solvers whose
/// info() sets `needsWorkflow` (they re-run the mapping pass). Pointed-to
/// objects must outlive the solve call; they are never retained.
struct SolveRequest {
  const EnhancedGraph* gc = nullptr;
  const PowerProfile* profile = nullptr;
  Time deadline = 0;

  const TaskGraph* graph = nullptr;
  const Platform* platform = nullptr;

  /// Optional shared per-instance memoization (initial EST/LST windows,
  /// refined interval sets, score orders, ASAP makespan). When set it must
  /// describe exactly this request's (gc, profile, deadline) — enforced by
  /// `Solver::solve`. Suite and campaign runners create one context per
  /// instance so every selected solver reuses the same artifacts; solvers
  /// without a context compute (or build) what they need themselves, with
  /// identical results either way.
  const SolveContext* context = nullptr;

  /// Optional residual problem: when set, the solver must keep every
  /// started node pinned and only place the remaining movable nodes (no
  /// earlier than `residual->releaseTime`). Solvers whose info() does not
  /// set `supportsResidual` reject such requests.
  const ResidualProblem* residual = nullptr;

  SolverOptions options;
};

/// Uniform result record: the schedule, its carbon cost, wall time, the
/// validation verdict, and optional optimality proof / solver statistics.
struct SolveResult {
  Schedule schedule;
  Cost cost = 0;
  double wallMs = 0.0;

  ValidationResult validation; ///< against the effective graph/deadline
  bool feasible = false;       ///< == validation.ok

  bool provedOptimal = false;  ///< exact solvers within their budgets
  /// Solver-specific counters, e.g. "nodes-explored" for branch-and-bound.
  std::map<std::string, std::int64_t> stats;

  /// Set only by re-mapping solvers: the graph the schedule refers to,
  /// the (possibly horizon-extended) profile it was costed against, and
  /// the deadline actually enforced (≥ the requested one when the new
  /// mapping's ASAP makespan exceeds it).
  std::shared_ptr<const EnhancedGraph> remappedGc;
  std::shared_ptr<const PowerProfile> extendedProfile;
  Time effectiveDeadline = 0;
};

/// Abstract scheduling algorithm. Subclasses implement `doSolve`; the
/// public `solve` adds the shared precondition checks, wall-clock timing,
/// validation and cost evaluation.
class Solver {
public:
  virtual ~Solver() = default;

  virtual SolverInfo info() const = 0;

  /// Solve `request` end to end. Throws PreconditionError when mandatory
  /// request fields are missing (or `needsWorkflow` inputs are absent);
  /// an infeasible *output* is reported via `SolveResult::validation`
  /// rather than thrown, so suite runs can record partial failures.
  SolveResult solve(const SolveRequest& request) const;

protected:
  /// What a concrete algorithm produces before the shared post-processing.
  struct RawResult {
    Schedule schedule;
    bool provedOptimal = false;
    std::map<std::string, std::int64_t> stats;

    /// For re-mapping solvers only (see SolveResult).
    std::shared_ptr<const EnhancedGraph> remappedGc;
    std::shared_ptr<const PowerProfile> extendedProfile;
    Time effectiveDeadline = -1; ///< -1 = the request's deadline
  };

  virtual RawResult doSolve(const SolveRequest& request) const = 0;
};

using SolverPtr = std::unique_ptr<Solver>;

/// Feasibility check for a residual solution: every node has a start,
/// started nodes kept their pinned starts, and every movable node starts at
/// or after the release time, finishes (with its planned length) by the
/// deadline, and respects precedence — against the *effective* completion
/// times of started predecessors (`residual.durations`) and the planned
/// lengths of movable ones. The planned-length occupancy of Gc's
/// per-processor chain edges makes this subsume exclusivity, exactly as in
/// `validateSchedule`.
ValidationResult validateResidualSchedule(const EnhancedGraph& gc,
                                          const Schedule& s, Time deadline,
                                          const ResidualProblem& residual);

} // namespace cawo
