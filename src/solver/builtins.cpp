#include "solver/builtins.hpp"

namespace cawo {

void registerBuiltinSolvers(SolverRegistry& registry) {
  registerCoreSolvers(registry);  // "ASAP" + the 16 CaWoSched variants
  registerHeftSolvers(registry);  // "greenheft"
  registerExactSolvers(registry); // "bnb", "dp"
}

} // namespace cawo
