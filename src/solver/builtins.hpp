#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "solver/registry.hpp"

/// \file builtins.hpp
/// Per-family registration hooks for the built-in solvers. The canonical
/// registry order is: "ASAP", the 16 CaWoSched variants, "greenheft",
/// then the exact solvers "bnb" and "dp".

namespace cawo {

struct VariantRunStats;

/// "ASAP" and the 16 CaWoSched variants (src/core).
void registerCoreSolvers(SolverRegistry& registry);

/// Translate a CaWoSched variant run's phase diagnostics into the shared
/// solver stats vocabulary (greedy-us, ls-us, ls-rounds, ls-moves,
/// ls-initial-cost, ls-final-cost) — used by the core adapters and the
/// GreenHEFT second pass alike, so campaign records read one schema.
void fillPhaseStats(const VariantRunStats& run,
                    std::map<std::string, std::int64_t>& stats);

/// The two-pass "greenheft" pipeline (src/heft), alpha-parameterisable as
/// "greenheft[alpha]".
void registerHeftSolvers(SolverRegistry& registry);

/// The exact solvers: branch-and-bound "bnb" and the single-processor
/// dynamic program "dp" (src/exact).
void registerExactSolvers(SolverRegistry& registry);

} // namespace cawo
