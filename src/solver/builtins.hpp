#pragma once

#include "solver/registry.hpp"

/// \file builtins.hpp
/// Per-family registration hooks for the built-in solvers. The canonical
/// registry order is: "ASAP", the 16 CaWoSched variants, "greenheft",
/// then the exact solvers "bnb" and "dp".

namespace cawo {

/// "ASAP" and the 16 CaWoSched variants (src/core).
void registerCoreSolvers(SolverRegistry& registry);

/// The two-pass "greenheft" pipeline (src/heft), alpha-parameterisable as
/// "greenheft[alpha]".
void registerHeftSolvers(SolverRegistry& registry);

/// The exact solvers: branch-and-bound "bnb" and the single-processor
/// dynamic program "dp" (src/exact).
void registerExactSolvers(SolverRegistry& registry);

} // namespace cawo
