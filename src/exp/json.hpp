#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file json.hpp
/// Minimal JSON support for the experiment campaign engine: a streaming
/// `JsonWriter` that emits the machine-readable result files, and a small
/// recursive-descent `JsonValue` parser used for campaign files written in
/// JSON form and for round-trip tests of the emitted records.
///
/// The subset is exactly what the campaign formats need (see
/// docs/formats.md): objects, arrays, strings, integer and floating-point
/// numbers, booleans and null, UTF-8 passed through verbatim. There are no
/// external dependencies, keeping the repository self-contained.

namespace cawo {

/// Escape a string for embedding between JSON double quotes (handles
/// backslash, quote and control characters; UTF-8 bytes pass through).
std::string jsonEscape(const std::string& s);

/// Render a double the way the result files expect it: the shortest form
/// (12–17 significant digits) that parses back to exactly the same double;
/// `-0.0` keeps its sign and fraction; non-finite values become null
/// (JSON has no NaN/Inf). Writer → parser → writer is the identity on
/// every finite double.
std::string jsonNumber(double value);

/// Streaming JSON writer with automatic comma / indentation management.
///
/// Usage mirrors the document structure:
/// ```
/// JsonWriter w(out);
/// w.beginObject();
/// w.key("records"); w.beginArray();
/// ...
/// w.endArray();
/// w.endObject();
/// ```
/// With `indent == 0` the output is a single line; otherwise nested
/// containers are pretty-printed with `indent` spaces per level. Array
/// elements written via `compactNext()` stay on one line, which keeps one
/// record per line in the results file.
class JsonWriter {
public:
  /// Write to `out`, pretty-printed with `indent` spaces per level.
  explicit JsonWriter(std::ostream& out, int indent = 2);

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Write the key of the next object member.
  JsonWriter& key(const std::string& k);

  void value(const std::string& s);
  void value(const char* s);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::uint64_t v);
  void value(double v);
  void value(bool v);
  void null();

  /// Splice pre-serialized JSON in as the next value, verbatim. The
  /// separator/indentation logic runs as for any value, but the payload
  /// bytes are the caller's — this is how the result store's segment
  /// lines (already exact record JSON) are merged into a document without
  /// a parse/re-serialize cycle that could perturb bytes.
  void rawValue(const std::string& json);

  /// Emit the next container (and everything inside it) on a single line.
  void compactNext() { compactDepth_ = depth_ + 1; }

private:
  void separator();
  void newlineIndent();
  bool compact() const { return indent_ == 0 || depth_ >= compactDepth_; }

  std::ostream& out_;
  int indent_;
  int depth_ = 0;
  int compactDepth_ = 1 << 20; ///< depth at/past which output is one-line
  std::vector<bool> hasItems_; ///< per open container: any member yet?
  bool afterKey_ = false;
};

/// A parsed JSON document node (object keys keep insertion order in
/// `objectKeys`). Numbers are stored as double plus an exact-integer flag.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }

  bool asBool() const;
  double asDouble() const;
  /// True for numbers that are exact int64 integers — written plainly
  /// (42) or as an integral fraction/exponent form (42.0, 1e3). `-0.0`
  /// stays a double so its sign survives a re-write.
  bool isInteger() const {
    return kind_ == Kind::Number && numberIsInt_;
  }
  std::int64_t asInt() const; ///< throws unless the number is integral
  const std::string& asString() const;
  const std::vector<JsonValue>& asArray() const;

  /// Object access. `has`/`at` throw on non-objects; `at` throws on
  /// missing keys with the available keys listed.
  bool has(const std::string& k) const;
  const JsonValue& at(const std::string& k) const;
  const std::vector<std::string>& objectKeys() const;

  /// Parse a complete JSON document; throws PreconditionError with a
  /// line/column position on malformed input or trailing garbage.
  static JsonValue parse(const std::string& text);

private:
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool boolValue_ = false;
  double numberValue_ = 0.0;
  bool numberIsInt_ = false;
  std::int64_t intValue_ = 0;
  std::string stringValue_;
  std::vector<JsonValue> arrayValues_;
  std::vector<std::string> objectKeys_;
  std::map<std::string, JsonValue> objectValues_;
};

} // namespace cawo
