#include "exp/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "core/carbon_cost.hpp"
#include "core/instance_hash.hpp"
#include "core/solve_context.hpp"
#include "exp/json.hpp"
#include "exp/record_json.hpp"
#include "exp/record_sink.hpp"
#include "exp/store.hpp"
#include "exp/summary.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/replay.hpp"
#include "profile/profile_source.hpp"
#include "util/timer.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

constexpr const char* kSchemaId = "cawosched-campaign-v1";

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

/// Copy the per-phase diagnostics the CaWoSched-style adapters publish in
/// the solver stats map into the typed record fields (see
/// docs/formats.md, "Campaign result JSON").
void harvestPhaseStats(const std::map<std::string, std::int64_t>& stats,
                       CampaignRecord& record) {
  const auto find = [&](const char* key, std::int64_t& out) {
    const auto it = stats.find(key);
    if (it == stats.end()) return false;
    out = it->second;
    return true;
  };
  std::int64_t us = 0;
  if (find("greedy-us", us)) {
    record.hasPhaseSplit = true;
    record.greedyMs = static_cast<double>(us) / 1000.0;
  }
  if (find("ls-us", us)) {
    record.hasLocalSearch = true;
    record.lsMs = static_cast<double>(us) / 1000.0;
    find("ls-rounds", record.lsRounds);
    find("ls-moves", record.lsMoves);
    find("ls-initial-cost", record.lsInitialCost);
    find("ls-final-cost", record.lsFinalCost);
  }
}

/// Shared ratio-vs-baseline pass over one instance's records (baseline =
/// the first cell). Used by both the offline and the online cell runners.
void assignBaselineRatios(CampaignRecord* records, std::size_t count) {
  const CampaignRecord& baseline = records[0];
  const bool baselineValid = !baseline.skipped && baseline.feasible;
  for (std::size_t s = 0; s < count; ++s) {
    CampaignRecord& record = records[s];
    if (record.skipped || !baselineValid) continue;
    record.hasBaseline = true;
    record.baselineCost = baseline.cost;
    if (!record.feasible) continue; // the cost of a broken run is noise
    if (baseline.cost > 0) {
      record.ratioVsBaseline = static_cast<double>(record.cost) /
                               static_cast<double>(baseline.cost);
    } else if (record.cost == 0) {
      record.ratioVsBaseline = 1.0; // 0/0: both hit the green optimum
    }
  }
}

/// Solve every selected solver on one built instance and fill both the
/// suite-compatible InstanceResult and the campaign records. The solve
/// path mirrors runSolversOnInstance exactly (same SolveRequest fields,
/// same skip rule), so campaign costs match the suite runner bit for bit.
void runInstanceCell(const Instance& instance,
                     const std::vector<std::string>& solvers,
                     const SolverOptions& options, InstanceResult& result,
                     CampaignRecord* records) {
  CAWO_REQUIRE(!solvers.empty(), "campaign has no solvers selected");
  result.spec = instance.spec;
  result.deadline = instance.deadline;
  result.numNodes = instance.gc.numNodes();
  result.runs.reserve(solvers.size());

  // One shared context per instance, exactly like the suite runner.
  const SolveContext context(instance.gc, instance.profile,
                             instance.deadline);

  SolveRequest request;
  request.gc = &instance.gc;
  request.profile = &instance.profile;
  request.deadline = instance.deadline;
  request.graph = &instance.graph;
  request.platform = &instance.platform;
  request.context = &context;
  request.options = options;

  const Cost lowerBound = carbonLowerBound(instance.gc, instance.profile);
  const std::uint64_t hash =
      instanceHash(instance.gc, instance.profile, instance.deadline);

  const SolverRegistry& registry = SolverRegistry::global();
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    CampaignRecord& record = records[s];
    record.spec = instance.spec;
    record.instance = instance.spec.label();
    record.deadline = instance.deadline;
    record.asapMakespanD = instance.asapMakespanD;
    record.numNodes = instance.gc.numNodes();
    record.instanceHash = hash;
    record.lowerBound = lowerBound;
    record.solver = solvers[s];
    record.ratioVsBaseline = quietNaN();

    const SolverPtr solver = registry.create(solvers[s]);
    if (!solverFitsInstance(solver->info(), instance)) {
      record.skipped = true;
      continue;
    }
    obs::TraceScope cellSpan("campaign.cell");
    if (cellSpan.recording()) {
      cellSpan.arg("solver", solvers[s]);
      cellSpan.arg("instance_hash", instanceHashHex(hash));
    }
    const SolveResult solved = solver->solve(request);
    record.cost = solved.cost;
    record.wallMs = solved.wallMs;
    record.feasible = solved.feasible;
    record.provedOptimal = solved.provedOptimal;
    harvestPhaseStats(solved.stats, record);
    result.runs.push_back(
        {solvers[s], solved.cost, solved.wallMs, solved.provedOptimal});
  }

  // Ratios against the baseline — the first selected solver
  // (conventionally ASAP). Undefined ratios stay NaN → null in JSON.
  assignBaselineRatios(records, solvers.size());
}

/// Replay every (solver, policy) combination on one built instance — the
/// online-mode counterpart of runInstanceCell. The forecast/actual pair is
/// resolved once per instance; the clairvoyant reference is solved once
/// per solver and shared across its policy cells.
void runOnlineInstanceCell(const Instance& instance,
                           const std::vector<std::string>& solvers,
                           const CampaignSpec& spec,
                           const SolverOptions& options,
                           InstanceResult& result, CampaignRecord* records) {
  CAWO_REQUIRE(!solvers.empty(), "campaign has no solvers selected");
  CAWO_REQUIRE(!spec.policies.empty(), "online campaign has no policies");
  result.spec = instance.spec;
  result.deadline = instance.deadline;
  result.numNodes = instance.gc.numNodes();

  // Forecast/actual resolution, once per instance (see docs/formats.md,
  // "Forecast vs actual").
  const ProfileRequest preq = instanceProfileRequest(instance);
  PowerProfile forecast;
  PowerProfile actual;
  if (spec.actual.empty()) {
    ProfilePair pair =
        generateForecastActualPair(instance.spec.scenario, preq);
    forecast = std::move(pair.forecast);
    actual = std::move(pair.actual);
  } else {
    forecast = instance.profile;
    actual = generateProfile(spec.actual, preq);
  }
  const Cost lowerBound = carbonLowerBound(instance.gc, actual);
  // The hash is the *planning* instance (forecast profile) — the same
  // workflow replayed under different actuals joins on one hash.
  const std::uint64_t hash =
      instanceHash(instance.gc, instance.profile, instance.deadline);

  const SolverRegistry& registry = SolverRegistry::global();
  const std::size_t P = spec.policies.size();
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    const bool fits =
        solverFitsInstance(registry.create(solvers[s])->info(), instance);

    // One shared plan + clairvoyant solve per solver row; the per-policy
    // replays and the clairvoyant spreading live in replayOnlinePolicies.
    std::vector<OnlineResult> row;
    if (fits) {
      obs::TraceScope cellSpan("campaign.cell");
      if (cellSpan.recording()) {
        cellSpan.arg("solver", solvers[s]);
        cellSpan.arg("instance_hash", instanceHashHex(hash));
      }
      OnlineOptions onlineOpts;
      onlineOpts.solver = solvers[s];
      onlineOpts.runtimeNoise = spec.runtimeNoise;
      onlineOpts.runtimeSeed = instance.spec.seed ^ 0x0417CEB5ULL;
      onlineOpts.solverOptions = options;
      row = replayOnlinePolicies(instance, forecast, actual, onlineOpts,
                                 spec.policies);
    }

    for (std::size_t p = 0; p < P; ++p) {
      CampaignRecord& record = records[s * P + p];
      record.spec = instance.spec;
      record.instance = instance.spec.label();
      record.deadline = instance.deadline;
      record.asapMakespanD = instance.asapMakespanD;
      record.numNodes = instance.gc.numNodes();
      record.instanceHash = hash;
      record.lowerBound = lowerBound;
      record.solver = solvers[s];
      record.ratioVsBaseline = quietNaN();
      record.hasOnline = true;
      record.policy = spec.policies[p];
      record.actualScenario = spec.actual;
      record.regretRatio = quietNaN();
      if (!fits) {
        record.skipped = true;
        continue;
      }

      const OnlineResult& online = row[p];
      record.cost = online.actualCost;
      record.wallMs = online.solveWallMs + online.resolveWallMs;
      record.feasible = online.ran && online.deadlineMet;
      record.forecastCost = online.forecastCost;
      record.resolves = static_cast<std::int64_t>(online.resolveCount);
      record.resolvesAccepted =
          static_cast<std::int64_t>(online.resolveAccepted);
      record.resolveWallMs = online.resolveWallMs;
      record.deadlineMet = online.deadlineMet;
      record.finishTime = online.finishTime;
      record.clairvoyantFeasible = online.clairvoyantFeasible && online.ran;
      record.clairvoyantCost = online.clairvoyantCost;
      record.regret = online.regret;
      record.regretRatio = online.regretRatio;
      result.runs.push_back({solvers[s] + " @ " + spec.policies[p],
                             record.cost, record.wallMs, false});
    }
  }
  assignBaselineRatios(records, solvers.size() * P);
}

/// An explicit actual is mutually exclusive with +noise forecast specs:
/// the modifier is *the* forecast error, so combining both would
/// silently change what the solvers plan against. Fail before any
/// instance is built.
void requireConsistentOnlineSpec(const CampaignSpec& spec) {
  if (!spec.online || spec.actual.empty()) return;
  for (const std::string& scenario : spec.scenarios) {
    CAWO_REQUIRE(!ProfileSpec::parse(scenario).hasNoise,
                 "online campaign: scenario spec \"" + scenario +
                     "\" carries a +noise modifier (read as forecast "
                     "error) AND actual=\"" + spec.actual +
                     "\" is set — drop one of the two");
  }
}

/// Build + solve one instance's whole cell group into `records`
/// (length == stride), dispatching on the campaign mode.
void solveInstanceCells(const InstanceSpec& cell, const CampaignSpec& spec,
                        const std::vector<std::string>& solverNames,
                        const std::vector<std::string>& cellLabels,
                        const SolverOptions& options, InstanceResult& result,
                        CampaignRecord* records) {
  obs::TraceScope span("campaign.instance");
  if (span.recording()) span.arg("instance", cell.label());
  const Instance instance = [&] {
    obs::TraceScope build("campaign.build");
    return buildInstance(cell);
  }();
  if (spec.online) {
    runOnlineInstanceCell(instance, solverNames, spec, options, result,
                          records);
  } else {
    runInstanceCell(instance, cellLabels, options, result, records);
  }
}

} // namespace

std::vector<std::string> campaignDistinctScenarios(const CampaignSpec& spec) {
  std::vector<std::string> out;
  const auto have = [&](const std::string& s) {
    return std::find(out.begin(), out.end(), s) != out.end();
  };
  const auto inAxis = [&](const std::string& s) {
    return std::find(spec.scenarios.begin(), spec.scenarios.end(), s) !=
           spec.scenarios.end();
  };
  // Paper scenarios keep their canonical S1..S4 order (byte-stable with
  // the closed-enum era); other specs follow in first-appearance order.
  for (const std::string& s : paperScenarioNames())
    if (inAxis(s)) out.push_back(s);
  for (const std::string& s : spec.scenarios)
    if (!have(s)) out.push_back(s);
  return out;
}

CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const SolverOptions& options,
                            const CampaignProgress& progress) {
  CampaignOutcome outcome;
  outcome.spec = spec;
  outcome.scenarios = campaignDistinctScenarios(spec);
  requireConsistentOnlineSpec(spec);

  // Per-instance cell labels: the plain solver selection offline, the
  // solver × policy cross-product online ("solver @ policy").
  const std::vector<std::string> solverNames = campaignSolverNames(spec);
  outcome.solvers = campaignCellLabels(spec);
  if (spec.online) outcome.policies = spec.policies;

  const std::vector<InstanceSpec> instances = expandCampaign(spec);
  const std::size_t S = outcome.solvers.size();
  const std::size_t totalCells = instances.size() * S;
  outcome.results.resize(instances.size());
  outcome.records.resize(totalCells);

  // The legacy in-memory path is now "runner → MemoryRecordSink": workers
  // solve into a local cell group and hand it over, exactly like the
  // store-backed path hands groups to CampaignStoreWriter.
  MemoryRecordSink sink(outcome.records, S);
  std::atomic<std::size_t> done{0};
  parallelFor(instances.size(), spec.threads, [&](std::size_t i) {
    if (obs::traceRecording()) obs::traceSetThreadName("campaign-worker");
    std::vector<CampaignRecord> group(S);
    solveInstanceCells(instances[i], spec, solverNames, outcome.solvers,
                       options, outcome.results[i], group.data());
    sink.appendInstance(i, group.data(), S);
    if (progress) progress(done.fetch_add(S) + S, totalCells);
  });

  SummaryAccumulator accumulator(outcome.solvers, outcome.scenarios);
  for (std::size_t i = 0; i < instances.size(); ++i)
    accumulator.addInstance(outcome.records.data() + i * S, S);
  outcome.summaries = accumulator.finish();
  return outcome;
}

CampaignRunStats runCampaignToStore(const SolverOptions& options,
                                    CampaignStoreWriter& store,
                                    const CampaignProgress& progress,
                                    std::size_t maxCells) {
  const CampaignSpec& spec = store.spec();
  requireConsistentOnlineSpec(spec);
  const std::vector<std::string> solverNames = campaignSolverNames(spec);
  const std::vector<std::string>& cellLabels = store.cellLabels();
  const std::vector<InstanceSpec>& instances = store.instances();
  const std::size_t S = store.stride();

  CampaignRunStats stats;
  stats.totalCells = instances.size() * S;
  stats.shardCells = store.shardCells();
  stats.presentBefore = store.presentCells();

  // Resume = set subtraction: of the instances this shard owns, only
  // those with missing cells are built and solved at all.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < instances.size(); ++i)
    if (store.ownsInstance(i) && !store.instanceDone(i)) pending.push_back(i);
  if (maxCells > 0) {
    const std::size_t cap = (maxCells + S - 1) / S;
    if (pending.size() > cap) {
      pending.resize(cap);
      stats.cappedByMaxCells = true;
    }
  }

  const std::size_t cellsToDo = pending.size() * S;
  const std::size_t fsyncsBefore = store.fsyncCount();
  WallTimer runTimer;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> appended{0};
  parallelFor(pending.size(), spec.threads, [&](std::size_t k) {
    if (obs::traceRecording()) obs::traceSetThreadName("campaign-worker");
    const std::size_t i = pending[k];
    std::size_t missing = 0;
    for (std::size_t c = 0; c < S; ++c)
      if (!store.cellPresent(i, c)) ++missing;
    std::vector<CampaignRecord> group(S);
    InstanceResult result; // the store path keeps no per-instance results
    solveInstanceCells(instances[i], spec, solverNames, cellLabels, options,
                       result, group.data());
    store.appendInstance(i, group.data(), S);
    appended.fetch_add(missing);
    if (progress) progress(done.fetch_add(S) + S, cellsToDo);
  });
  store.flush();

  stats.cellsSolved = appended.load();
  stats.instancesSolved = pending.size();
  stats.wallSec = runTimer.elapsedSec();
  stats.fsyncs =
      static_cast<std::int64_t>(store.fsyncCount() - fsyncsBefore);
  if (stats.wallSec > 0) {
    stats.cellsPerSec =
        static_cast<double>(pending.size() * S) / stats.wallSec;
    stats.recordsPerSec =
        static_cast<double>(stats.cellsSolved) / stats.wallSec;
  }
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("campaign.cells_solved")
      .add(static_cast<std::int64_t>(pending.size() * S));
  metrics.counter("campaign.records_appended")
      .add(static_cast<std::int64_t>(stats.cellsSolved));
  return stats;
}

namespace {

void writeSummaryEntry(JsonWriter& w,
                       const std::vector<std::string>& scenarios,
                       const SolverSummary& s) {
  w.compactNext();
  w.beginObject();
  w.key("solver").value(s.solver);
  w.key("instances").value(s.instances);
  w.key("wins").value(s.wins);
  if (std::isnan(s.medianRatio)) w.key("median_ratio").null();
  else w.key("median_ratio").value(s.medianRatio);
  if (std::isnan(s.meanRatio)) w.key("mean_ratio").null();
  else w.key("mean_ratio").value(s.meanRatio);
  w.key("total_wall_ms").value(s.totalWallMs);
  w.key("median_ratio_by_scenario");
  w.beginObject();
  for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
    w.key(scenarios[sc]);
    if (std::isnan(s.medianRatioByScenario[sc])) w.null();
    else w.value(s.medianRatioByScenario[sc]);
  }
  w.endObject();
  w.endObject();
}

void writeCampaignHeader(JsonWriter& w, const CampaignSpec& spec,
                         const std::vector<std::string>& solvers,
                         std::size_t numInstances) {
  w.key("campaign");
  w.beginObject();
  w.key("name").value(spec.name);
  w.key("families");
  w.compactNext();
  w.beginArray();
  for (const WorkflowFamily f : spec.families) w.value(familyName(f));
  w.endArray();
  w.key("tasks");
  w.compactNext();
  w.beginArray();
  for (const int t : spec.tasks) w.value(t);
  w.endArray();
  w.key("bacass_tasks").value(spec.bacassTasks);
  w.key("nodes_per_type");
  w.compactNext();
  w.beginArray();
  for (const int n : spec.nodesPerType) w.value(n);
  w.endArray();
  w.key("scenarios");
  w.compactNext();
  w.beginArray();
  for (const std::string& s : spec.scenarios) w.value(s);
  w.endArray();
  w.key("deadline_factors");
  w.compactNext();
  w.beginArray();
  for (const double f : spec.deadlineFactors) w.value(f);
  w.endArray();
  w.key("seeds");
  w.compactNext();
  w.beginArray();
  for (const std::uint64_t s : spec.seeds) w.value(s);
  w.endArray();
  w.key("intervals").value(spec.numIntervals);
  w.key("algos").value(spec.algos);
  // Online-mode header keys are appended only when active, keeping the
  // offline document bytes stable.
  if (spec.online) {
    w.key("online").value(true);
    if (spec.actual.empty()) w.key("actual").null();
    else w.key("actual").value(spec.actual);
    w.key("policies");
    w.compactNext();
    w.beginArray();
    for (const std::string& p : spec.policies) w.value(p);
    w.endArray();
    w.key("runtime_noise").value(spec.runtimeNoise);
  }
  w.key("solvers");
  w.compactNext();
  w.beginArray();
  for (const std::string& s : solvers) w.value(s);
  w.endArray();
  w.key("num_instances").value(static_cast<std::int64_t>(numInstances));
  w.endObject();
}

} // namespace

void writeCampaignJson(std::ostream& out, const CampaignOutcome& outcome) {
  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value(kSchemaId);
  writeCampaignHeader(w, outcome.spec, outcome.solvers,
                      outcome.results.size());

  w.key("records");
  w.beginArray();
  for (const CampaignRecord& r : outcome.records) writeCampaignRecord(w, r);
  w.endArray();

  w.key("summary");
  w.beginArray();
  for (const SolverSummary& s : outcome.summaries)
    writeSummaryEntry(w, outcome.scenarios, s);
  w.endArray();

  w.endObject();
  out << '\n';
}

std::string toCampaignJsonString(const CampaignOutcome& outcome) {
  std::ostringstream out;
  writeCampaignJson(out, outcome);
  return out.str();
}

void writeCampaignJsonFile(const std::string& path,
                           const CampaignOutcome& outcome) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open result file for writing: " + path);
  writeCampaignJson(out, outcome);
  CAWO_REQUIRE(out.good(), "failed writing result file: " + path);
}

void writeCampaignJsonFromStore(std::ostream& out,
                                CampaignStoreReader& reader) {
  CAWO_REQUIRE(reader.complete(),
               "store is incomplete (" +
                   std::to_string(reader.presentCells()) + " of " +
                   std::to_string(reader.totalCells()) +
                   " cells present) — run the remaining shards/cells before "
                   "exporting a document");
  const CampaignSpec& spec = reader.spec();
  const std::vector<std::string> scenarios = campaignDistinctScenarios(spec);
  SummaryAccumulator accumulator(reader.cellLabels(), scenarios);

  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value(kSchemaId);
  writeCampaignHeader(w, spec, reader.cellLabels(), reader.numInstances());

  // Record lines are spliced in verbatim from the segments — the store's
  // byte contract (record_json) makes them identical to what the legacy
  // writer would have produced; the accumulator sees each instance group
  // in expansion order, so the summary is bit-identical too. Memory stays
  // O(one instance group).
  w.key("records");
  w.beginArray();
  const std::size_t S = reader.stride();
  std::vector<CampaignRecord> group(S);
  for (std::size_t i = 0; i < reader.numInstances(); ++i) {
    for (std::size_t c = 0; c < S; ++c) {
      const std::string line = reader.readCellLine(i, c);
      w.rawValue(line);
      group[c] = parseCampaignRecordLine(line);
    }
    accumulator.addInstance(group.data(), S);
  }
  w.endArray();

  w.key("summary");
  w.beginArray();
  for (const SolverSummary& s : accumulator.finish())
    writeSummaryEntry(w, scenarios, s);
  w.endArray();

  w.endObject();
  out << '\n';
}

void writeCampaignJsonFileFromStore(const std::string& path,
                                    CampaignStoreReader& reader) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open result file for writing: " + path);
  writeCampaignJsonFromStore(out, reader);
  CAWO_REQUIRE(out.good(), "failed writing result file: " + path);
}

CampaignOutcome summariseStore(CampaignStoreReader& reader) {
  CAWO_REQUIRE(reader.complete(),
               "store is incomplete (" +
                   std::to_string(reader.presentCells()) + " of " +
                   std::to_string(reader.totalCells()) +
                   " cells present) — a partial sweep has no meaningful "
                   "summary");
  CampaignOutcome outcome;
  outcome.spec = reader.spec();
  outcome.solvers = reader.cellLabels();
  if (outcome.spec.online) outcome.policies = outcome.spec.policies;
  outcome.scenarios = campaignDistinctScenarios(outcome.spec);
  outcome.results.resize(reader.numInstances()); // sizes only; no records

  SummaryAccumulator accumulator(outcome.solvers, outcome.scenarios);
  const std::size_t S = reader.stride();
  std::vector<CampaignRecord> group(S);
  for (std::size_t i = 0; i < reader.numInstances(); ++i) {
    for (std::size_t c = 0; c < S; ++c)
      group[c] = parseCampaignRecordLine(reader.readCellLine(i, c));
    accumulator.addInstance(group.data(), S);
  }
  outcome.summaries = accumulator.finish();
  return outcome;
}

void printCampaignSummary(std::ostream& out, const CampaignOutcome& outcome,
                          bool perScenario) {
  const auto fmt = [](double v) {
    return std::isnan(v) ? std::string("-") : formatFixed(v, 3);
  };

  printHeading(out, "campaign \"" + outcome.spec.name + "\" — " +
                        std::to_string(outcome.results.size()) +
                        " instances × " +
                        std::to_string(outcome.solvers.size()) + " solvers");
  TextTable table({"solver", "instances", "wins", "median ratio",
                   "mean ratio", "total ms"});
  for (const SolverSummary& s : outcome.summaries)
    table.addRow({s.solver, std::to_string(s.instances),
                  std::to_string(s.wins), fmt(s.medianRatio),
                  fmt(s.meanRatio), formatFixed(s.totalWallMs, 1)});
  table.print(out);

  if (!perScenario || outcome.scenarios.empty()) return;
  std::vector<std::string> headers{"solver"};
  for (const std::string& s : outcome.scenarios)
    headers.push_back("median " + s);
  printHeading(out, "median cost ratio vs " + outcome.solvers.front() +
                        " by scenario");
  TextTable byScenario(headers);
  for (const SolverSummary& s : outcome.summaries) {
    std::vector<std::string> row{s.solver};
    for (const double v : s.medianRatioByScenario) row.push_back(fmt(v));
    byScenario.addRow(row);
  }
  byScenario.print(out);
}

} // namespace cawo
