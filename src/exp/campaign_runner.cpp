#include "exp/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "core/carbon_cost.hpp"
#include "core/instance_hash.hpp"
#include "core/solve_context.hpp"
#include "exp/json.hpp"
#include "online/replay.hpp"
#include "profile/profile_source.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

constexpr const char* kSchemaId = "cawosched-campaign-v1";

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

/// Copy the per-phase diagnostics the CaWoSched-style adapters publish in
/// the solver stats map into the typed record fields (see
/// docs/formats.md, "Campaign result JSON").
void harvestPhaseStats(const std::map<std::string, std::int64_t>& stats,
                       CampaignRecord& record) {
  const auto find = [&](const char* key, std::int64_t& out) {
    const auto it = stats.find(key);
    if (it == stats.end()) return false;
    out = it->second;
    return true;
  };
  std::int64_t us = 0;
  if (find("greedy-us", us)) {
    record.hasPhaseSplit = true;
    record.greedyMs = static_cast<double>(us) / 1000.0;
  }
  if (find("ls-us", us)) {
    record.hasLocalSearch = true;
    record.lsMs = static_cast<double>(us) / 1000.0;
    find("ls-rounds", record.lsRounds);
    find("ls-moves", record.lsMoves);
    find("ls-initial-cost", record.lsInitialCost);
    find("ls-final-cost", record.lsFinalCost);
  }
}

/// Shared ratio-vs-baseline pass over one instance's records (baseline =
/// the first cell). Used by both the offline and the online cell runners.
void assignBaselineRatios(CampaignRecord* records, std::size_t count) {
  const CampaignRecord& baseline = records[0];
  const bool baselineValid = !baseline.skipped && baseline.feasible;
  for (std::size_t s = 0; s < count; ++s) {
    CampaignRecord& record = records[s];
    if (record.skipped || !baselineValid) continue;
    record.hasBaseline = true;
    record.baselineCost = baseline.cost;
    if (!record.feasible) continue; // the cost of a broken run is noise
    if (baseline.cost > 0) {
      record.ratioVsBaseline = static_cast<double>(record.cost) /
                               static_cast<double>(baseline.cost);
    } else if (record.cost == 0) {
      record.ratioVsBaseline = 1.0; // 0/0: both hit the green optimum
    }
  }
}

/// Solve every selected solver on one built instance and fill both the
/// suite-compatible InstanceResult and the campaign records. The solve
/// path mirrors runSolversOnInstance exactly (same SolveRequest fields,
/// same skip rule), so campaign costs match the suite runner bit for bit.
void runInstanceCell(const Instance& instance,
                     const std::vector<std::string>& solvers,
                     const SolverOptions& options, InstanceResult& result,
                     CampaignRecord* records) {
  CAWO_REQUIRE(!solvers.empty(), "campaign has no solvers selected");
  result.spec = instance.spec;
  result.deadline = instance.deadline;
  result.numNodes = instance.gc.numNodes();
  result.runs.reserve(solvers.size());

  // One shared context per instance, exactly like the suite runner.
  const SolveContext context(instance.gc, instance.profile,
                             instance.deadline);

  SolveRequest request;
  request.gc = &instance.gc;
  request.profile = &instance.profile;
  request.deadline = instance.deadline;
  request.graph = &instance.graph;
  request.platform = &instance.platform;
  request.context = &context;
  request.options = options;

  const Cost lowerBound = carbonLowerBound(instance.gc, instance.profile);
  const std::uint64_t hash =
      instanceHash(instance.gc, instance.profile, instance.deadline);

  const SolverRegistry& registry = SolverRegistry::global();
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    CampaignRecord& record = records[s];
    record.spec = instance.spec;
    record.instance = instance.spec.label();
    record.deadline = instance.deadline;
    record.asapMakespanD = instance.asapMakespanD;
    record.numNodes = instance.gc.numNodes();
    record.instanceHash = hash;
    record.lowerBound = lowerBound;
    record.solver = solvers[s];
    record.ratioVsBaseline = quietNaN();

    const SolverPtr solver = registry.create(solvers[s]);
    if (!solverFitsInstance(solver->info(), instance)) {
      record.skipped = true;
      continue;
    }
    const SolveResult solved = solver->solve(request);
    record.cost = solved.cost;
    record.wallMs = solved.wallMs;
    record.feasible = solved.feasible;
    record.provedOptimal = solved.provedOptimal;
    harvestPhaseStats(solved.stats, record);
    result.runs.push_back(
        {solvers[s], solved.cost, solved.wallMs, solved.provedOptimal});
  }

  // Ratios against the baseline — the first selected solver
  // (conventionally ASAP). Undefined ratios stay NaN → null in JSON.
  assignBaselineRatios(records, solvers.size());
}

/// Replay every (solver, policy) combination on one built instance — the
/// online-mode counterpart of runInstanceCell. The forecast/actual pair is
/// resolved once per instance; the clairvoyant reference is solved once
/// per solver and shared across its policy cells.
void runOnlineInstanceCell(const Instance& instance,
                           const std::vector<std::string>& solvers,
                           const CampaignSpec& spec,
                           const SolverOptions& options,
                           InstanceResult& result, CampaignRecord* records) {
  CAWO_REQUIRE(!solvers.empty(), "campaign has no solvers selected");
  CAWO_REQUIRE(!spec.policies.empty(), "online campaign has no policies");
  result.spec = instance.spec;
  result.deadline = instance.deadline;
  result.numNodes = instance.gc.numNodes();

  // Forecast/actual resolution, once per instance (see docs/formats.md,
  // "Forecast vs actual").
  const ProfileRequest preq = instanceProfileRequest(instance);
  PowerProfile forecast;
  PowerProfile actual;
  if (spec.actual.empty()) {
    ProfilePair pair =
        generateForecastActualPair(instance.spec.scenario, preq);
    forecast = std::move(pair.forecast);
    actual = std::move(pair.actual);
  } else {
    forecast = instance.profile;
    actual = generateProfile(spec.actual, preq);
  }
  const Cost lowerBound = carbonLowerBound(instance.gc, actual);
  // The hash is the *planning* instance (forecast profile) — the same
  // workflow replayed under different actuals joins on one hash.
  const std::uint64_t hash =
      instanceHash(instance.gc, instance.profile, instance.deadline);

  const SolverRegistry& registry = SolverRegistry::global();
  const std::size_t P = spec.policies.size();
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    const bool fits =
        solverFitsInstance(registry.create(solvers[s])->info(), instance);

    // One shared plan + clairvoyant solve per solver row; the per-policy
    // replays and the clairvoyant spreading live in replayOnlinePolicies.
    std::vector<OnlineResult> row;
    if (fits) {
      OnlineOptions onlineOpts;
      onlineOpts.solver = solvers[s];
      onlineOpts.runtimeNoise = spec.runtimeNoise;
      onlineOpts.runtimeSeed = instance.spec.seed ^ 0x0417CEB5ULL;
      onlineOpts.solverOptions = options;
      row = replayOnlinePolicies(instance, forecast, actual, onlineOpts,
                                 spec.policies);
    }

    for (std::size_t p = 0; p < P; ++p) {
      CampaignRecord& record = records[s * P + p];
      record.spec = instance.spec;
      record.instance = instance.spec.label();
      record.deadline = instance.deadline;
      record.asapMakespanD = instance.asapMakespanD;
      record.numNodes = instance.gc.numNodes();
      record.instanceHash = hash;
      record.lowerBound = lowerBound;
      record.solver = solvers[s];
      record.ratioVsBaseline = quietNaN();
      record.hasOnline = true;
      record.policy = spec.policies[p];
      record.actualScenario = spec.actual;
      record.regretRatio = quietNaN();
      if (!fits) {
        record.skipped = true;
        continue;
      }

      const OnlineResult& online = row[p];
      record.cost = online.actualCost;
      record.wallMs = online.solveWallMs + online.resolveWallMs;
      record.feasible = online.ran && online.deadlineMet;
      record.forecastCost = online.forecastCost;
      record.resolves = static_cast<std::int64_t>(online.resolveCount);
      record.resolvesAccepted =
          static_cast<std::int64_t>(online.resolveAccepted);
      record.resolveWallMs = online.resolveWallMs;
      record.deadlineMet = online.deadlineMet;
      record.finishTime = online.finishTime;
      record.clairvoyantFeasible = online.clairvoyantFeasible && online.ran;
      record.clairvoyantCost = online.clairvoyantCost;
      record.regret = online.regret;
      record.regretRatio = online.regretRatio;
      result.runs.push_back({solvers[s] + " @ " + spec.policies[p],
                             record.cost, record.wallMs, false});
    }
  }
  assignBaselineRatios(records, solvers.size() * P);
}

std::vector<std::string> distinctScenarios(const CampaignSpec& spec) {
  std::vector<std::string> out;
  const auto have = [&](const std::string& s) {
    return std::find(out.begin(), out.end(), s) != out.end();
  };
  const auto inAxis = [&](const std::string& s) {
    return std::find(spec.scenarios.begin(), spec.scenarios.end(), s) !=
           spec.scenarios.end();
  };
  // Paper scenarios keep their canonical S1..S4 order (byte-stable with
  // the closed-enum era); other specs follow in first-appearance order.
  for (const std::string& s : paperScenarioNames())
    if (inAxis(s)) out.push_back(s);
  for (const std::string& s : spec.scenarios)
    if (!have(s)) out.push_back(s);
  return out;
}

std::vector<SolverSummary> summarise(const CampaignOutcome& outcome) {
  const std::size_t S = outcome.solvers.size();
  const std::size_t I = outcome.records.size() / std::max<std::size_t>(S, 1);
  std::vector<SolverSummary> summaries(S);

  // Per-instance minimum over the cells that ran *feasibly* (for win
  // counting): an infeasible solve's cost is meaningless and must not
  // claim wins or drag the aggregates.
  std::vector<Cost> minCost(I, std::numeric_limits<Cost>::max());
  for (std::size_t i = 0; i < I; ++i)
    for (std::size_t s = 0; s < S; ++s) {
      const CampaignRecord& r = outcome.records[i * S + s];
      if (!r.skipped && r.feasible && r.cost < minCost[i]) minCost[i] = r.cost;
    }

  for (std::size_t s = 0; s < S; ++s) {
    SolverSummary& summary = summaries[s];
    summary.solver = outcome.solvers[s];
    std::vector<double> ratios;
    std::vector<std::vector<double>> byScenario(outcome.scenarios.size());
    for (std::size_t i = 0; i < I; ++i) {
      const CampaignRecord& r = outcome.records[i * S + s];
      if (r.skipped) continue;
      ++summary.instances;
      summary.totalWallMs += r.wallMs;
      if (r.feasible && r.cost == minCost[i]) ++summary.wins;
      if (!std::isnan(r.ratioVsBaseline)) {
        ratios.push_back(r.ratioVsBaseline);
        for (std::size_t sc = 0; sc < outcome.scenarios.size(); ++sc)
          if (outcome.scenarios[sc] == r.spec.scenario)
            byScenario[sc].push_back(r.ratioVsBaseline);
      }
    }
    summary.medianRatio = ratios.empty() ? quietNaN() : medianOf(ratios);
    summary.meanRatio = ratios.empty() ? quietNaN() : meanOf(ratios);
    summary.medianRatioByScenario.resize(outcome.scenarios.size());
    for (std::size_t sc = 0; sc < outcome.scenarios.size(); ++sc)
      summary.medianRatioByScenario[sc] =
          byScenario[sc].empty() ? quietNaN() : medianOf(byScenario[sc]);
  }
  return summaries;
}

} // namespace

CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const SolverOptions& options,
                            const CampaignProgress& progress) {
  CampaignOutcome outcome;
  outcome.spec = spec;
  outcome.scenarios = distinctScenarios(spec);

  // An explicit actual is mutually exclusive with +noise forecast specs:
  // the modifier is *the* forecast error, so combining both would
  // silently change what the solvers plan against. Fail before any
  // instance is built.
  if (spec.online && !spec.actual.empty()) {
    for (const std::string& scenario : spec.scenarios) {
      CAWO_REQUIRE(!ProfileSpec::parse(scenario).hasNoise,
                   "online campaign: scenario spec \"" + scenario +
                       "\" carries a +noise modifier (read as forecast "
                       "error) AND actual=\"" + spec.actual +
                       "\" is set — drop one of the two");
    }
  }

  // Per-instance cell labels: the plain solver selection offline, the
  // solver × policy cross-product online ("solver @ policy").
  const std::vector<std::string> solverNames = campaignSolverNames(spec);
  if (spec.online) {
    outcome.policies = spec.policies;
    for (const std::string& solver : solverNames)
      for (const std::string& policy : spec.policies)
        outcome.solvers.push_back(solver + " @ " + policy);
  } else {
    outcome.solvers = solverNames;
  }

  const std::vector<InstanceSpec> instances = expandCampaign(spec);
  const std::size_t S = outcome.solvers.size();
  const std::size_t totalCells = instances.size() * S;
  outcome.results.resize(instances.size());
  outcome.records.resize(totalCells);

  std::atomic<std::size_t> done{0};
  parallelFor(instances.size(), spec.threads, [&](std::size_t i) {
    const Instance instance = buildInstance(instances[i]);
    if (spec.online) {
      runOnlineInstanceCell(instance, solverNames, spec, options,
                            outcome.results[i],
                            outcome.records.data() + i * S);
    } else {
      runInstanceCell(instance, outcome.solvers, options, outcome.results[i],
                      outcome.records.data() + i * S);
    }
    if (progress) progress(done.fetch_add(S) + S, totalCells);
  });

  outcome.summaries = summarise(outcome);
  return outcome;
}

namespace {

void writeRecord(JsonWriter& w, const CampaignRecord& r) {
  w.compactNext();
  w.beginObject();
  w.key("instance").value(r.instance);
  w.key("family").value(familyName(r.spec.family));
  w.key("tasks").value(r.spec.targetTasks);
  w.key("nodes_per_type").value(r.spec.nodesPerType);
  w.key("scenario").value(r.spec.scenario); // the spec string, verbatim
  w.key("deadline_factor").value(r.spec.deadlineFactor);
  w.key("seed").value(static_cast<std::uint64_t>(r.spec.seed));
  w.key("intervals").value(r.spec.numIntervals);
  w.key("deadline").value(static_cast<std::int64_t>(r.deadline));
  w.key("asap_makespan").value(static_cast<std::int64_t>(r.asapMakespanD));
  w.key("num_nodes").value(static_cast<std::int64_t>(r.numNodes));
  // 16 hex digits, not a JSON number: uint64 does not round-trip through
  // double-backed JSON parsers.
  w.key("instance_hash").value(instanceHashHex(r.instanceHash));
  w.key("solver").value(r.solver);
  if (r.skipped) {
    w.key("cost").null();
    w.key("wall_ms").null();
  } else {
    w.key("cost").value(static_cast<std::int64_t>(r.cost));
    w.key("wall_ms").value(r.wallMs);
  }
  w.key("lower_bound").value(static_cast<std::int64_t>(r.lowerBound));
  if (!r.hasBaseline) w.key("baseline_cost").null();
  else w.key("baseline_cost").value(static_cast<std::int64_t>(r.baselineCost));
  if (std::isnan(r.ratioVsBaseline)) w.key("ratio_vs_baseline").null();
  else w.key("ratio_vs_baseline").value(r.ratioVsBaseline);
  w.key("feasible").value(r.feasible);
  w.key("proved_optimal").value(r.provedOptimal);
  w.key("skipped").value(r.skipped);
  // Phase split + local-search diagnostics (appended in schema v1:
  // consumers key on presence, null means "not a phased/LS solver").
  if (!r.hasPhaseSplit) w.key("greedy_ms").null();
  else w.key("greedy_ms").value(r.greedyMs);
  if (!r.hasLocalSearch) {
    w.key("ls_ms").null();
    w.key("ls_rounds").null();
    w.key("ls_moves").null();
    w.key("ls_initial_cost").null();
    w.key("ls_final_cost").null();
  } else {
    w.key("ls_ms").value(r.lsMs);
    w.key("ls_rounds").value(r.lsRounds);
    w.key("ls_moves").value(r.lsMoves);
    w.key("ls_initial_cost").value(static_cast<std::int64_t>(r.lsInitialCost));
    w.key("ls_final_cost").value(static_cast<std::int64_t>(r.lsFinalCost));
  }
  // Online replay fields: only present in online-mode records, so the
  // offline record schema stays byte-identical (golden-tested).
  if (r.hasOnline) {
    w.key("policy").value(r.policy);
    if (r.actualScenario.empty()) w.key("actual_scenario").null();
    else w.key("actual_scenario").value(r.actualScenario);
    if (r.skipped) {
      w.key("forecast_cost").null();
      w.key("clairvoyant_cost").null();
      w.key("regret").null();
      w.key("regret_ratio").null();
      w.key("resolves").null();
      w.key("resolves_accepted").null();
      w.key("resolve_wall_ms").null();
      w.key("deadline_met").null();
      w.key("finish_time").null();
    } else {
      w.key("forecast_cost").value(static_cast<std::int64_t>(r.forecastCost));
      if (!r.clairvoyantFeasible) {
        w.key("clairvoyant_cost").null();
        w.key("regret").null();
      } else {
        w.key("clairvoyant_cost")
            .value(static_cast<std::int64_t>(r.clairvoyantCost));
        w.key("regret").value(static_cast<std::int64_t>(r.regret));
      }
      if (std::isnan(r.regretRatio)) w.key("regret_ratio").null();
      else w.key("regret_ratio").value(r.regretRatio);
      w.key("resolves").value(r.resolves);
      w.key("resolves_accepted").value(r.resolvesAccepted);
      w.key("resolve_wall_ms").value(r.resolveWallMs);
      w.key("deadline_met").value(r.deadlineMet);
      w.key("finish_time").value(static_cast<std::int64_t>(r.finishTime));
    }
  }
  w.endObject();
}

void writeSummary(JsonWriter& w, const CampaignOutcome& outcome,
                  const SolverSummary& s) {
  w.compactNext();
  w.beginObject();
  w.key("solver").value(s.solver);
  w.key("instances").value(s.instances);
  w.key("wins").value(s.wins);
  if (std::isnan(s.medianRatio)) w.key("median_ratio").null();
  else w.key("median_ratio").value(s.medianRatio);
  if (std::isnan(s.meanRatio)) w.key("mean_ratio").null();
  else w.key("mean_ratio").value(s.meanRatio);
  w.key("total_wall_ms").value(s.totalWallMs);
  w.key("median_ratio_by_scenario");
  w.beginObject();
  for (std::size_t sc = 0; sc < outcome.scenarios.size(); ++sc) {
    w.key(outcome.scenarios[sc]);
    if (std::isnan(s.medianRatioByScenario[sc])) w.null();
    else w.value(s.medianRatioByScenario[sc]);
  }
  w.endObject();
  w.endObject();
}

} // namespace

void writeCampaignJson(std::ostream& out, const CampaignOutcome& outcome) {
  const CampaignSpec& spec = outcome.spec;
  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value(kSchemaId);

  w.key("campaign");
  w.beginObject();
  w.key("name").value(spec.name);
  w.key("families");
  w.compactNext();
  w.beginArray();
  for (const WorkflowFamily f : spec.families) w.value(familyName(f));
  w.endArray();
  w.key("tasks");
  w.compactNext();
  w.beginArray();
  for (const int t : spec.tasks) w.value(t);
  w.endArray();
  w.key("bacass_tasks").value(spec.bacassTasks);
  w.key("nodes_per_type");
  w.compactNext();
  w.beginArray();
  for (const int n : spec.nodesPerType) w.value(n);
  w.endArray();
  w.key("scenarios");
  w.compactNext();
  w.beginArray();
  for (const std::string& s : spec.scenarios) w.value(s);
  w.endArray();
  w.key("deadline_factors");
  w.compactNext();
  w.beginArray();
  for (const double f : spec.deadlineFactors) w.value(f);
  w.endArray();
  w.key("seeds");
  w.compactNext();
  w.beginArray();
  for (const std::uint64_t s : spec.seeds) w.value(s);
  w.endArray();
  w.key("intervals").value(spec.numIntervals);
  w.key("algos").value(spec.algos);
  // Online-mode header keys are appended only when active, keeping the
  // offline document bytes stable.
  if (spec.online) {
    w.key("online").value(true);
    if (spec.actual.empty()) w.key("actual").null();
    else w.key("actual").value(spec.actual);
    w.key("policies");
    w.compactNext();
    w.beginArray();
    for (const std::string& p : spec.policies) w.value(p);
    w.endArray();
    w.key("runtime_noise").value(spec.runtimeNoise);
  }
  w.key("solvers");
  w.compactNext();
  w.beginArray();
  for (const std::string& s : outcome.solvers) w.value(s);
  w.endArray();
  w.key("num_instances")
      .value(static_cast<std::int64_t>(outcome.results.size()));
  w.endObject();

  w.key("records");
  w.beginArray();
  for (const CampaignRecord& r : outcome.records) writeRecord(w, r);
  w.endArray();

  w.key("summary");
  w.beginArray();
  for (const SolverSummary& s : outcome.summaries)
    writeSummary(w, outcome, s);
  w.endArray();

  w.endObject();
  out << '\n';
}

std::string toCampaignJsonString(const CampaignOutcome& outcome) {
  std::ostringstream out;
  writeCampaignJson(out, outcome);
  return out.str();
}

void writeCampaignJsonFile(const std::string& path,
                           const CampaignOutcome& outcome) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open result file for writing: " + path);
  writeCampaignJson(out, outcome);
  CAWO_REQUIRE(out.good(), "failed writing result file: " + path);
}

void printCampaignSummary(std::ostream& out, const CampaignOutcome& outcome,
                          bool perScenario) {
  const auto fmt = [](double v) {
    return std::isnan(v) ? std::string("-") : formatFixed(v, 3);
  };

  printHeading(out, "campaign \"" + outcome.spec.name + "\" — " +
                        std::to_string(outcome.results.size()) +
                        " instances × " +
                        std::to_string(outcome.solvers.size()) + " solvers");
  TextTable table({"solver", "instances", "wins", "median ratio",
                   "mean ratio", "total ms"});
  for (const SolverSummary& s : outcome.summaries)
    table.addRow({s.solver, std::to_string(s.instances),
                  std::to_string(s.wins), fmt(s.medianRatio),
                  fmt(s.meanRatio), formatFixed(s.totalWallMs, 1)});
  table.print(out);

  if (!perScenario || outcome.scenarios.empty()) return;
  std::vector<std::string> headers{"solver"};
  for (const std::string& s : outcome.scenarios)
    headers.push_back("median " + s);
  printHeading(out, "median cost ratio vs " + outcome.solvers.front() +
                        " by scenario");
  TextTable byScenario(headers);
  for (const SolverSummary& s : outcome.summaries) {
    std::vector<std::string> row{s.solver};
    for (const double v : s.medianRatioByScenario) row.push_back(fmt(v));
    byScenario.addRow(row);
  }
  byScenario.print(out);
}

} // namespace cawo
