#include "exp/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <unordered_map>

#include "core/instance_hash.hpp"
#include "exp/json.hpp"
#include "exp/record_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace fs = std::filesystem;

namespace {

constexpr const char* kStoreSchemaId = "cawosched-store-v1";

std::string segmentPath(const std::string& dir, std::size_t shard) {
  return dir + "/segment-" + std::to_string(shard) + ".jsonl";
}

std::string indexPath(const std::string& dir, std::size_t shard) {
  return dir + "/segment-" + std::to_string(shard) + ".idx";
}

std::string manifestPath(const std::string& dir) {
  return dir + "/manifest.json";
}

[[noreturn]] void failErrno(const std::string& what, const std::string& path) {
  CAWO_REQUIRE(false, what + " \"" + path + "\": " + std::strerror(errno));
  std::abort(); // unreachable — CAWO_REQUIRE(false) throws
}

int openAppend(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) failErrno("cannot open store file", path);
  return fd;
}

void writeAll(int fd, const std::string& data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      failErrno("write failed on store file", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) failErrno("fsync failed on store file", path);
}

/// fsync the directory so freshly created/renamed store files survive a
/// crash of the file system cache.
void fsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) failErrno("cannot open store directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) failErrno("fsync failed on store directory", dir);
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CAWO_REQUIRE(in.good(), "cannot open store file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::uint64_t parseIndexHash(const std::string& hex) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(hex.c_str(), &end, 16);
  CAWO_REQUIRE(hex.size() == 16 && end == hex.c_str() + hex.size(),
               "store index: malformed hash \"" + hex + "\"");
  return static_cast<std::uint64_t>(v);
}

struct IndexEntry {
  std::size_t instance = 0;
  std::size_t cell = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t hash = 0;
};

/// Parse the valid sequential prefix of an index file against the current
/// segment size: entries must tile the segment from offset 0 without gaps
/// and stay within it. Returns the entries plus the byte length of the
/// valid prefix (the tail past it — torn line, out-of-bounds entry — is
/// whatever a crash left behind and is simply dropped).
struct IndexPrefix {
  std::vector<IndexEntry> entries;
  std::uint64_t segmentEnd = 0; ///< first un-indexed segment byte
  std::size_t validBytes = 0;   ///< length of the valid index prefix
  std::size_t droppedLines = 0;
};

IndexPrefix parseIndexPrefix(const std::string& text,
                             std::uint64_t segmentSize,
                             std::size_t numInstances, std::size_t stride) {
  IndexPrefix out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break; // torn index tail
    const std::string line = text.substr(pos, nl - pos);
    std::istringstream fields(line);
    IndexEntry entry;
    std::string hashHex;
    bool ok = static_cast<bool>(fields >> entry.instance >> entry.cell >>
                                entry.offset >> entry.length >> hashHex);
    std::string extra;
    ok = ok && !(fields >> extra);
    ok = ok && hashHex.size() == 16;
    ok = ok && entry.instance < numInstances && entry.cell < stride;
    ok = ok && entry.offset == out.segmentEnd && entry.length >= 2 &&
         entry.offset + entry.length <= segmentSize;
    if (ok) {
      char* end = nullptr;
      const unsigned long long h = std::strtoull(hashHex.c_str(), &end, 16);
      ok = end == hashHex.c_str() + hashHex.size();
      entry.hash = static_cast<std::uint64_t>(h);
    }
    if (!ok) break;
    out.entries.push_back(entry);
    out.segmentEnd = entry.offset + entry.length;
    pos = nl + 1;
    out.validBytes = pos;
  }
  // Anything after the valid prefix is dropped (recovered from the
  // segment itself).
  for (std::size_t p = out.validBytes; p < text.size();
       p = text.find('\n', p) == std::string::npos
               ? text.size()
               : text.find('\n', p) + 1)
    ++out.droppedLines;
  return out;
}

std::string formatIndexLine(std::size_t instance, std::size_t cell,
                            std::uint64_t offset, std::uint64_t length,
                            std::uint64_t hash) {
  return std::to_string(instance) + ' ' + std::to_string(cell) + ' ' +
         std::to_string(offset) + ' ' + std::to_string(length) + ' ' +
         instanceHashHex(hash) + '\n';
}

/// Scan the un-indexed tail of a segment for complete, parseable record
/// lines, resolving each back to its grid cell. Stops at the first torn or
/// unrecognisable line; `truncateAt` then marks where the valid data ends.
struct TailScan {
  std::vector<IndexEntry> entries;
  std::uint64_t truncateAt = 0; ///< end of the last valid line
};

TailScan scanSegmentTail(const std::string& path, std::uint64_t from,
                         std::uint64_t size,
                         const std::vector<InstanceSpec>& instances,
                         const std::vector<std::string>& labels) {
  TailScan out;
  out.truncateAt = from;
  if (from >= size) return out;

  std::unordered_map<std::string, std::size_t> cellKeyToInstance;
  cellKeyToInstance.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i)
    cellKeyToInstance.emplace(instances[i].cellKey(), i);
  std::unordered_map<std::string, std::size_t> labelToCell;
  for (std::size_t c = 0; c < labels.size(); ++c)
    labelToCell.emplace(labels[c], c);

  std::ifstream in(path, std::ios::binary);
  CAWO_REQUIRE(in.good(), "cannot open store segment: " + path);
  in.seekg(static_cast<std::streamoff>(from));
  std::string tail(static_cast<std::size_t>(size - from), '\0');
  in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
  CAWO_REQUIRE(in.gcount() == static_cast<std::streamsize>(tail.size()),
               "short read on store segment: " + path);

  std::size_t pos = 0;
  while (pos < tail.size()) {
    const std::size_t nl = tail.find('\n', pos);
    if (nl == std::string::npos) break; // torn final line
    const std::string line = tail.substr(pos, nl - pos);
    IndexEntry entry;
    try {
      const CampaignRecord record = parseCampaignRecordLine(line);
      const std::string label =
          record.hasOnline ? record.solver + " @ " + record.policy
                           : record.solver;
      const auto inst = cellKeyToInstance.find(record.spec.cellKey());
      const auto cell = labelToCell.find(label);
      if (inst == cellKeyToInstance.end() || cell == labelToCell.end())
        break; // not a cell of this campaign — treat like a torn line
      entry.instance = inst->second;
      entry.cell = cell->second;
      entry.hash = record.instanceHash;
    } catch (const std::exception&) {
      break; // unparsable — torn or corrupt from here on
    }
    entry.offset = from + pos;
    entry.length = nl - pos + 1;
    out.entries.push_back(entry);
    pos = nl + 1;
    out.truncateAt = from + pos;
  }
  return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

namespace {

std::string renderManifest(const CampaignSpec& spec,
                           const std::vector<std::string>& labels,
                           std::size_t numInstances, std::size_t shards) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value(kStoreSchemaId);
  w.key("shards").value(static_cast<std::int64_t>(shards));
  w.key("num_instances").value(static_cast<std::int64_t>(numInstances));
  w.key("cells_per_instance").value(static_cast<std::int64_t>(labels.size()));
  w.key("solvers");
  w.compactNext();
  w.beginArray();
  for (const std::string& s : labels) w.value(s);
  w.endArray();
  // The owning spec in canonical single-line JSON (setCampaignKey
  // vocabulary): parseable back into the identical CampaignSpec, and
  // string-comparable for resume/shard validation.
  w.key("spec_json").value(canonicalCampaignSpecJson(spec));
  w.endObject();
  out << '\n';
  return out.str();
}

void validateManifest(const std::string& dir, const std::string& text,
                      const CampaignSpec& spec,
                      const std::vector<std::string>& labels,
                      std::size_t numInstances, std::size_t shards) {
  const JsonValue doc = JsonValue::parse(text);
  CAWO_REQUIRE(doc.at("schema").asString() == kStoreSchemaId,
               "store manifest in \"" + dir + "\" has schema \"" +
                   doc.at("schema").asString() + "\", expected \"" +
                   kStoreSchemaId + "\"");
  CAWO_REQUIRE(
      doc.at("spec_json").asString() == canonicalCampaignSpecJson(spec),
      "store \"" + dir + "\" belongs to a different campaign spec — "
      "refusing to mix results (stored: " + doc.at("spec_json").asString() +
          ", requested: " + canonicalCampaignSpecJson(spec) + ")");
  CAWO_REQUIRE(doc.at("shards").asInt() ==
                   static_cast<std::int64_t>(shards),
               "store \"" + dir + "\" is partitioned into " +
                   std::to_string(doc.at("shards").asInt()) +
                   " shard(s), but this run requested " +
                   std::to_string(shards) +
                   " — the shard count is fixed at store creation");
  CAWO_REQUIRE(doc.at("num_instances").asInt() ==
                   static_cast<std::int64_t>(numInstances),
               "store \"" + dir + "\" instance count mismatch");
  const std::vector<JsonValue>& solvers = doc.at("solvers").asArray();
  bool sameLabels = solvers.size() == labels.size();
  for (std::size_t i = 0; sameLabels && i < labels.size(); ++i)
    sameLabels = solvers[i].asString() == labels[i];
  CAWO_REQUIRE(sameLabels,
               "store \"" + dir + "\" was created with a different solver "
               "selection — the cell grid does not match");
}

} // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

CampaignStoreWriter::CampaignStoreWriter(const std::string& dir,
                                         const CampaignSpec& spec,
                                         const StoreOptions& options)
    : dir_(dir), spec_(spec), options_(options) {
  CAWO_REQUIRE(options_.shardCount >= 1,
               "store shard count must be at least 1");
  CAWO_REQUIRE(options_.shardIndex < options_.shardCount,
               "store shard index " + std::to_string(options_.shardIndex) +
                   " out of range for " +
                   std::to_string(options_.shardCount) + " shard(s)");
  CAWO_REQUIRE(options_.groupCommit >= 1,
               "store group-commit interval must be at least 1");

  labels_ = campaignCellLabels(spec_);
  instances_ = expandCampaign(spec_);
  specHashes_.reserve(instances_.size());
  for (const InstanceSpec& inst : instances_)
    specHashes_.push_back(instanceSpecHash(inst));
  present_.assign(instances_.size() * labels_.size(), false);
  for (std::size_t i = 0; i < instances_.size(); ++i)
    if (specHashes_[i] % options_.shardCount == options_.shardIndex)
      shardCellCount_ += labels_.size();

  fs::create_directories(dir_);
  const std::string manifest = manifestPath(dir_);
  if (fs::exists(manifest)) {
    validateManifest(dir_, readWholeFile(manifest), spec_, labels_,
                     instances_.size(), options_.shardCount);
  } else {
    // Concurrent shard processes may race to create the manifest; each
    // writes identical bytes to a private temp file and renames it into
    // place (atomic), so whichever wins the race, the result is the same.
    const std::string tmp =
        manifest + ".tmp-" + std::to_string(options_.shardIndex);
    {
      std::ofstream out(tmp, std::ios::binary);
      CAWO_REQUIRE(out.good(), "cannot create store manifest: " + tmp);
      out << renderManifest(spec_, labels_, instances_.size(),
                            options_.shardCount);
      CAWO_REQUIRE(out.good(), "failed writing store manifest: " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, manifest, ec);
    CAWO_REQUIRE(!ec, "cannot install store manifest \"" + manifest +
                          "\": " + ec.message());
  }

  const std::string segPath = segmentPath(dir_, options_.shardIndex);
  const bool hasData = fs::exists(segPath) && fs::file_size(segPath) > 0;
  CAWO_REQUIRE(!hasData || options_.resume,
               "store shard segment \"" + segPath +
                   "\" already holds results — pass resume to continue the "
                   "interrupted run, or point at a fresh directory");

  segFd_ = openAppend(segPath);
  idxFd_ = openAppend(indexPath(dir_, options_.shardIndex));
  if (options_.resume) recoverExistingShard();
  fsyncDir(dir_);
}

CampaignStoreWriter::~CampaignStoreWriter() {
  try {
    flush();
  } catch (...) {
    // A destructor must not throw; an fsync failure here surfaces on the
    // next explicit flush()/open instead.
  }
  if (segFd_ >= 0) ::close(segFd_);
  if (idxFd_ >= 0) ::close(idxFd_);
}

void CampaignStoreWriter::recoverExistingShard() {
  const std::string segPath = segmentPath(dir_, options_.shardIndex);
  const std::string idxPath = indexPath(dir_, options_.shardIndex);
  const std::uint64_t segSize =
      fs::exists(segPath) ? fs::file_size(segPath) : 0;
  const std::string idxText =
      fs::exists(idxPath) ? readWholeFile(idxPath) : std::string();

  IndexPrefix prefix =
      parseIndexPrefix(idxText, segSize, instances_.size(), labels_.size());
  recovery_.droppedIndexLines = prefix.droppedLines;
  if (prefix.validBytes < idxText.size()) {
    // Drop the torn/invalid index tail; the segment bytes behind it are
    // re-indexed below.
    if (::ftruncate(idxFd_, static_cast<off_t>(prefix.validBytes)) != 0)
      failErrno("ftruncate failed on store index", idxPath);
  }

  // Re-index complete record lines the group commit had written but not
  // yet indexed, then drop any torn final line so it re-runs.
  const TailScan tail = scanSegmentTail(segPath, prefix.segmentEnd, segSize,
                                        instances_, labels_);
  recovery_.recoveredCells = tail.entries.size();
  if (tail.truncateAt < segSize) {
    recovery_.truncatedBytes =
        static_cast<std::size_t>(segSize - tail.truncateAt);
    if (::ftruncate(segFd_, static_cast<off_t>(tail.truncateAt)) != 0)
      failErrno("ftruncate failed on store segment", segPath);
  }

  std::string recoveredIndex;
  for (const IndexEntry& entry : tail.entries)
    recoveredIndex += formatIndexLine(entry.instance, entry.cell,
                                      entry.offset, entry.length, entry.hash);

  const auto mark = [&](const IndexEntry& entry) {
    CAWO_REQUIRE(ownsInstance(entry.instance),
                 "store segment \"" + segPath +
                     "\" holds a cell of instance " +
                     std::to_string(entry.instance) +
                     ", which belongs to another shard — store corrupt");
    const std::size_t bit = entry.instance * labels_.size() + entry.cell;
    CAWO_REQUIRE(!present_[bit],
                 "store segment \"" + segPath + "\" holds instance " +
                     std::to_string(entry.instance) + " cell " +
                     std::to_string(entry.cell) + " twice — store corrupt");
    present_[bit] = true;
    ++presentCount_;
  };
  for (const IndexEntry& entry : prefix.entries) mark(entry);
  for (const IndexEntry& entry : tail.entries) mark(entry);

  segBytes_ = tail.truncateAt;
  if (!recoveredIndex.empty()) {
    writeAll(idxFd_, recoveredIndex, idxPath);
    fsyncFd(idxFd_, idxPath);
  }
}

bool CampaignStoreWriter::ownsInstance(std::size_t instanceIndex) const {
  CAWO_REQUIRE(instanceIndex < instances_.size(),
               "store instance index out of range");
  return specHashes_[instanceIndex] % options_.shardCount ==
         options_.shardIndex;
}

bool CampaignStoreWriter::instanceDone(std::size_t instanceIndex) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t base = instanceIndex * labels_.size();
  for (std::size_t c = 0; c < labels_.size(); ++c)
    if (!present_[base + c]) return false;
  return true;
}

bool CampaignStoreWriter::cellPresent(std::size_t instanceIndex,
                                      std::size_t cellIndex) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return present_[instanceIndex * labels_.size() + cellIndex];
}

std::size_t CampaignStoreWriter::presentCells() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return presentCount_;
}

std::size_t CampaignStoreWriter::shardCells() const {
  return shardCellCount_;
}

void CampaignStoreWriter::appendLocked(std::size_t instanceIndex,
                                       std::size_t cellIndex,
                                       const std::string& line,
                                       std::uint64_t hash) {
  present_[instanceIndex * labels_.size() + cellIndex] = true;
  ++presentCount_;
  pendingIndex_ += formatIndexLine(instanceIndex, cellIndex, segBytes_,
                                   line.size() + 1, hash);
  pendingSegment_ += line;
  pendingSegment_ += '\n';
  segBytes_ += line.size() + 1;
  if (++pendingRecords_ >= options_.groupCommit) flushLocked();
}

void CampaignStoreWriter::append(std::size_t instanceIndex,
                                 std::size_t cellIndex,
                                 const CampaignRecord& record) {
  CAWO_REQUIRE(cellIndex < labels_.size(), "store cell index out of range");
  CAWO_REQUIRE(ownsInstance(instanceIndex),
               "store shard " + std::to_string(options_.shardIndex) +
                   " does not own instance " + std::to_string(instanceIndex));
  const std::string line = campaignRecordJsonLine(record);
  std::lock_guard<std::mutex> lock(mutex_);
  CAWO_REQUIRE(!present_[instanceIndex * labels_.size() + cellIndex],
               "store already holds instance " +
                   std::to_string(instanceIndex) + " cell " +
                   std::to_string(cellIndex) + " (" + labels_[cellIndex] +
                   ") — duplicate append");
  appendLocked(instanceIndex, cellIndex, line, record.instanceHash);
}

void CampaignStoreWriter::appendInstance(std::size_t instanceIndex,
                                         const CampaignRecord* records,
                                         std::size_t count) {
  CAWO_REQUIRE(count == labels_.size(),
               "store cell group size does not match the campaign stride");
  CAWO_REQUIRE(ownsInstance(instanceIndex),
               "store shard " + std::to_string(options_.shardIndex) +
                   " does not own instance " + std::to_string(instanceIndex));
  // Serialize outside the lock; a torn-tail recovery can leave an instance
  // partially present, so cells that already made it to disk are skipped.
  std::vector<std::string> lines(count);
  for (std::size_t c = 0; c < count; ++c)
    lines[c] = campaignRecordJsonLine(records[c]);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t c = 0; c < count; ++c) {
    if (present_[instanceIndex * labels_.size() + c]) continue;
    appendLocked(instanceIndex, c, lines[c], records[c].instanceHash);
  }
}

void CampaignStoreWriter::flushLocked() {
  if (pendingSegment_.empty() && pendingIndex_.empty()) return;
  obs::TraceScope span("store.flush");
  if (span.recording())
    span.arg("records", static_cast<std::int64_t>(pendingRecords_));
  const std::string segPath = segmentPath(dir_, options_.shardIndex);
  const std::string idxPath = indexPath(dir_, options_.shardIndex);
  // Segment bytes reach disk before the index lines that point into them:
  // after a crash the index never references data that does not exist —
  // the opposite order would need the tail scan to distrust the index.
  writeAll(segFd_, pendingSegment_, segPath);
  fsyncFd(segFd_, segPath);
  writeAll(idxFd_, pendingIndex_, idxPath);
  fsyncFd(idxFd_, idxPath);
  fsyncCount_ += 2;
  obs::MetricsRegistry::global().counter("store.fsyncs").add(2);
  pendingSegment_.clear();
  pendingIndex_.clear();
  pendingRecords_ = 0;
}

std::size_t CampaignStoreWriter::fsyncCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fsyncCount_;
}

void CampaignStoreWriter::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flushLocked();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

CampaignStoreReader::CampaignStoreReader(const std::string& dir)
    : dir_(dir) {
  const std::string manifest = manifestPath(dir_);
  CAWO_REQUIRE(fs::exists(manifest),
               "no campaign store at \"" + dir_ +
                   "\" (missing manifest.json)");
  const JsonValue doc = JsonValue::parse(readWholeFile(manifest));
  CAWO_REQUIRE(doc.at("schema").asString() == kStoreSchemaId,
               "store manifest in \"" + dir_ + "\" has schema \"" +
                   doc.at("schema").asString() + "\", expected \"" +
                   kStoreSchemaId + "\"");
  spec_ = parseCampaignText(doc.at("spec_json").asString());
  shardCount_ = static_cast<std::size_t>(doc.at("shards").asInt());
  CAWO_REQUIRE(shardCount_ >= 1, "store manifest: shards must be >= 1");
  for (const JsonValue& s : doc.at("solvers").asArray())
    labels_.push_back(s.asString());
  CAWO_REQUIRE(!labels_.empty(), "store manifest: empty solver list");
  instances_ = expandCampaign(spec_);
  CAWO_REQUIRE(doc.at("num_instances").asInt() ==
                   static_cast<std::int64_t>(instances_.size()),
               "store manifest: instance count does not match the spec's "
               "expansion — manifest corrupt");
  CAWO_REQUIRE(doc.at("cells_per_instance").asInt() ==
                   static_cast<std::int64_t>(labels_.size()),
               "store manifest: cell count does not match the solver list");

  cells_.resize(instances_.size() * labels_.size());
  present_.assign(cells_.size(), false);
  segments_.resize(shardCount_);
  for (std::size_t s = 0; s < shardCount_; ++s) loadShard(s);
}

void CampaignStoreReader::loadShard(std::size_t shard) {
  const std::string segPath = segmentPath(dir_, shard);
  if (!fs::exists(segPath)) return;
  const std::uint64_t segSize = fs::file_size(segPath);

  const std::string idxPath = indexPath(dir_, shard);
  const std::string idxText =
      fs::exists(idxPath) ? readWholeFile(idxPath) : std::string();
  const IndexPrefix prefix =
      parseIndexPrefix(idxText, segSize, instances_.size(), labels_.size());
  // Complete lines past the indexed prefix still count (a crash between
  // the segment and index commits); the torn tail is ignored read-only.
  const TailScan tail = scanSegmentTail(segPath, prefix.segmentEnd, segSize,
                                        instances_, labels_);

  const auto admit = [&](const IndexEntry& entry) {
    const std::size_t bit = entry.instance * labels_.size() + entry.cell;
    CAWO_REQUIRE(!present_[bit],
                 "store \"" + dir_ + "\": instance " +
                     std::to_string(entry.instance) + " cell " +
                     std::to_string(entry.cell) +
                     " appears in more than one shard — store corrupt");
    present_[bit] = true;
    ++presentCount_;
    cells_[bit] = CellRef{static_cast<std::int32_t>(shard),
                          static_cast<std::uint32_t>(entry.length),
                          entry.offset, entry.hash};
  };
  for (const IndexEntry& entry : prefix.entries) admit(entry);
  for (const IndexEntry& entry : tail.entries) admit(entry);

  segments_[shard].open(segPath, std::ios::binary);
  CAWO_REQUIRE(segments_[shard].good(),
               "cannot open store segment: " + segPath);
}

bool CampaignStoreReader::cellPresent(std::size_t instanceIndex,
                                      std::size_t cellIndex) const {
  return present_[instanceIndex * labels_.size() + cellIndex];
}

std::uint64_t CampaignStoreReader::cellHash(std::size_t instanceIndex,
                                            std::size_t cellIndex) const {
  return cells_[instanceIndex * labels_.size() + cellIndex].hash;
}

std::string CampaignStoreReader::readCellLine(std::size_t instanceIndex,
                                              std::size_t cellIndex) {
  const std::size_t bit = instanceIndex * labels_.size() + cellIndex;
  CAWO_REQUIRE(present_[bit], "store cell (" + std::to_string(instanceIndex) +
                                  ", " + std::to_string(cellIndex) +
                                  ") is not present");
  const CellRef& ref = cells_[bit];
  std::ifstream& seg = segments_[static_cast<std::size_t>(ref.shard)];
  seg.clear();
  seg.seekg(static_cast<std::streamoff>(ref.offset));
  std::string line(ref.length, '\0');
  seg.read(line.data(), static_cast<std::streamsize>(line.size()));
  CAWO_REQUIRE(seg.gcount() == static_cast<std::streamsize>(line.size()) &&
                   line.back() == '\n',
               "store segment read failed for cell (" +
                   std::to_string(instanceIndex) + ", " +
                   std::to_string(cellIndex) + ") — segment modified?");
  line.pop_back(); // the terminator is storage framing, not record bytes
  return line;
}

void CampaignStoreReader::forEachPresentCell(
    const std::function<void(std::size_t, std::size_t, const std::string&)>&
        fn) {
  for (std::size_t i = 0; i < instances_.size(); ++i)
    for (std::size_t c = 0; c < labels_.size(); ++c)
      if (present_[i * labels_.size() + c]) fn(i, c, readCellLine(i, c));
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

namespace {

bool matchesAnyGlob(const std::vector<std::string>& patterns,
                    const std::string& text) {
  if (patterns.empty()) return true;
  for (const std::string& pattern : patterns)
    if (globMatch(pattern, text)) return true;
  return false;
}

template <typename T>
bool inListOrAll(const std::vector<T>& list, const T& value) {
  if (list.empty()) return true;
  return std::find(list.begin(), list.end(), value) != list.end();
}

bool instanceMatches(const StoreQuery& query, const InstanceSpec& spec) {
  if (!inListOrAll(query.families, std::string(familyName(spec.family))))
    return false;
  if (spec.targetTasks < query.minTasks || spec.targetTasks > query.maxTasks)
    return false;
  if (!inListOrAll(query.scenarios, spec.scenario)) return false;
  if (!inListOrAll(query.deadlineFactors, spec.deadlineFactor)) return false;
  if (!inListOrAll(query.seeds, spec.seed)) return false;
  return true;
}

} // namespace

std::size_t queryStore(CampaignStoreReader& reader, const StoreQuery& query,
                       const StoreQueryFn& fn) {
  const std::vector<std::string>& labels = reader.cellLabels();
  std::vector<bool> cellMask(labels.size());
  for (std::size_t c = 0; c < labels.size(); ++c)
    cellMask[c] = matchesAnyGlob(query.solvers, labels[c]);

  std::string hashFilter = query.instanceHash;
  std::transform(hashFilter.begin(), hashFilter.end(), hashFilter.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  CAWO_REQUIRE(hashFilter.empty() || hashFilter.size() == 16,
               "query: instance-hash filter must be 16 hex digits");

  const bool needRecord = query.feasibleOnly || static_cast<bool>(fn);
  std::size_t matched = 0;
  for (std::size_t i = 0; i < reader.numInstances(); ++i) {
    if (!instanceMatches(query, reader.instances()[i])) continue;
    for (std::size_t c = 0; c < labels.size(); ++c) {
      if (!cellMask[c] || !reader.cellPresent(i, c)) continue;
      if (!hashFilter.empty() &&
          instanceHashHex(reader.cellHash(i, c)) != hashFilter)
        continue;
      if (!needRecord) {
        ++matched;
        continue;
      }
      const std::string line = reader.readCellLine(i, c);
      const CampaignRecord record = parseCampaignRecordLine(line);
      if (query.feasibleOnly && !record.feasible) continue;
      ++matched;
      if (fn) fn(i, c, record, line);
    }
  }
  return matched;
}

} // namespace cawo
