#pragma once

#include <cstddef>
#include <vector>

#include "exp/record.hpp"

/// \file record_sink.hpp
/// Where campaign records go as they are produced.
///
/// The campaign runner solves instances in parallel and hands each
/// finished instance's cell group — `stride` records, one per (solver) or
/// (solver, policy) — to a `RecordSink`. The sink decides the storage
/// strategy: `MemoryRecordSink` keeps the legacy batch-in-RAM behaviour
/// (records land in a preallocated instance-major vector), while the
/// result store's `CampaignStoreWriter` (exp/store.hpp) streams them to
/// disk with O(group-commit buffer) memory. The runner itself no longer
/// knows or cares which one it is feeding.

namespace cawo {

/// Consumer of finished instance cell groups. `appendInstance` is called
/// from the runner's worker threads — implementations must be
/// thread-safe. Each instance index is delivered at most once per run.
class RecordSink {
public:
  virtual ~RecordSink() = default;

  /// Deliver instance `instanceIndex`'s complete cell group: `count`
  /// records, cell-major in the campaign's solver/policy label order.
  virtual void appendInstance(std::size_t instanceIndex,
                              const CampaignRecord* records,
                              std::size_t count) = 0;
};

/// The legacy path as a sink: records are copied into their instance-major
/// slots of a caller-owned vector sized `instances × stride` up front.
/// Writes from different workers touch disjoint slots, so no lock is
/// needed — exactly the invariant the pre-sink runner relied on.
class MemoryRecordSink : public RecordSink {
public:
  MemoryRecordSink(std::vector<CampaignRecord>& records, std::size_t stride)
      : records_(records), stride_(stride) {}

  void appendInstance(std::size_t instanceIndex,
                      const CampaignRecord* records,
                      std::size_t count) override;

private:
  std::vector<CampaignRecord>& records_;
  std::size_t stride_;
};

} // namespace cawo
