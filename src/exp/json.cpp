#include "exp/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/require.hpp"

namespace cawo {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // Negative zero keeps its sign *and* its fraction, so a parse → re-write
  // cycle cannot silently turn it into the integer 0.
  if (value == 0.0) return std::signbit(value) ? "-0.0" : "0";
  char buf[64];
  // Shortest form — starting from the historical 12 significant digits —
  // that parses back to exactly the same double. Most values keep their
  // old bytes; the ones that used to lose precision (tiny exponent-
  // notation regret/ratio values) gain digits until the round trip is
  // exact.
  for (int precision = 12; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {}

void JsonWriter::separator() {
  if (afterKey_) {
    afterKey_ = false;
    return;
  }
  if (!hasItems_.empty()) {
    const bool first = !hasItems_.back();
    if (!first) out_ << ',';
    hasItems_.back() = true;
    if (compact()) {
      if (!first) out_ << ' ';
    } else {
      newlineIndent();
    }
  }
}

void JsonWriter::newlineIndent() {
  out_ << '\n';
  for (int i = 0; i < depth_ * indent_; ++i) out_ << ' ';
}

void JsonWriter::beginObject() {
  separator();
  out_ << '{';
  hasItems_.push_back(false);
  ++depth_;
}

void JsonWriter::endObject() {
  CAWO_REQUIRE(!hasItems_.empty(), "JsonWriter: endObject without begin");
  const bool had = hasItems_.back();
  const bool wasCompact = compact();
  hasItems_.pop_back();
  --depth_;
  if (had && !wasCompact) {
    out_ << '\n';
    for (int i = 0; i < depth_ * indent_; ++i) out_ << ' ';
  }
  out_ << '}';
  if (depth_ < compactDepth_) compactDepth_ = 1 << 20;
}

void JsonWriter::beginArray() {
  separator();
  out_ << '[';
  hasItems_.push_back(false);
  ++depth_;
}

void JsonWriter::endArray() {
  CAWO_REQUIRE(!hasItems_.empty(), "JsonWriter: endArray without begin");
  const bool had = hasItems_.back();
  const bool wasCompact = compact();
  hasItems_.pop_back();
  --depth_;
  if (had && !wasCompact) {
    out_ << '\n';
    for (int i = 0; i < depth_ * indent_; ++i) out_ << ' ';
  }
  out_ << ']';
  if (depth_ < compactDepth_) compactDepth_ = 1 << 20;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separator();
  out_ << '"' << jsonEscape(k) << "\": ";
  afterKey_ = true;
  return *this;
}

void JsonWriter::value(const std::string& s) {
  separator();
  out_ << '"' << jsonEscape(s) << '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(std::int64_t v) {
  separator();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  separator();
  out_ << v;
}

void JsonWriter::value(double v) {
  separator();
  out_ << jsonNumber(v);
}

void JsonWriter::value(bool v) {
  separator();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  separator();
  out_ << "null";
}

void JsonWriter::rawValue(const std::string& json) {
  separator();
  out_ << json;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

bool JsonValue::asBool() const {
  CAWO_REQUIRE(kind_ == Kind::Bool, "JSON value is not a boolean");
  return boolValue_;
}

double JsonValue::asDouble() const {
  CAWO_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return numberValue_;
}

std::int64_t JsonValue::asInt() const {
  CAWO_REQUIRE(kind_ == Kind::Number && numberIsInt_,
               "JSON value is not an integer");
  return intValue_;
}

const std::string& JsonValue::asString() const {
  CAWO_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
  return stringValue_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  CAWO_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
  return arrayValues_;
}

bool JsonValue::has(const std::string& k) const {
  CAWO_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  return objectValues_.count(k) != 0;
}

const JsonValue& JsonValue::at(const std::string& k) const {
  CAWO_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  const auto it = objectValues_.find(k);
  if (it == objectValues_.end()) {
    std::string keys;
    for (const std::string& have : objectKeys_)
      keys += (keys.empty() ? "" : ", ") + have;
    CAWO_REQUIRE(false, "JSON object has no key \"" + k +
                            "\" (available: " + keys + ")");
  }
  return it->second;
}

const std::vector<std::string>& JsonValue::objectKeys() const {
  CAWO_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
  return objectKeys_;
}

/// Recursive-descent parser over the supported JSON subset.
class JsonParser {
public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    skipWhitespace();
    JsonValue v = parseValue();
    skipWhitespace();
    check(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw PreconditionError("JSON parse error at line " +
                            std::to_string(line) + ", column " +
                            std::to_string(col) + ": " + msg);
  }

  void check(bool ok, const std::string& msg) const {
    if (!ok) fail(msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    check(peek() == c, std::string("expected '") + c + "'");
    ++pos_;
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool consumeWord(const char* w) {
    std::size_t i = 0;
    while (w[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != w[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't':
      case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWhitespace();
      check(peek() == '"', "expected object key string");
      const std::string key = parseString().asString();
      skipWhitespace();
      expect(':');
      JsonValue member = parseValue();
      check(v.objectValues_.count(key) == 0,
            "duplicate object key \"" + key + "\"");
      v.objectKeys_.push_back(key);
      v.objectValues_.emplace(key, std::move(member));
      skipWhitespace();
      const char c = take();
      if (c == '}') return v;
      check(c == ',', "expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arrayValues_.push_back(parseValue());
      skipWhitespace();
      const char c = take();
      if (c == ']') return v;
      check(c == ',', "expected ',' or ']' in array");
    }
  }

  JsonValue parseString() {
    expect('"');
    JsonValue v;
    v.kind_ = JsonValue::Kind::String;
    std::string& out = v.stringValue_;
    while (true) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = take();
      if (c == '"') return v;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8 (BMP only — sufficient for the
          // escapes the writer produces, which are all < 0x20).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  JsonValue parseBool() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Bool;
    if (consumeWord("true")) {
      v.boolValue_ = true;
      return v;
    }
    if (consumeWord("false")) {
      v.boolValue_ = false;
      return v;
    }
    fail("expected 'true' or 'false'");
  }

  JsonValue parseNull() {
    check(consumeWord("null"), "expected 'null'");
    return JsonValue{};
  }

  JsonValue parseNumber() {
    // Strict JSON number grammar: -?digits[.digits][(e|E)[+|-]digits].
    // The old scanner accepted '+'/'-'/'.' anywhere after the first digit,
    // so garbage like "1-2" parsed as 1.0 via std::stod's partial
    // consumption and exponent forms could mis-round-trip.
    const std::size_t start = pos_;
    const auto isDigit = [&] { return peek() >= '0' && peek() <= '9'; };
    const auto digits = [&](const char* what) {
      check(isDigit(), what);
      while (isDigit()) ++pos_;
    };
    if (peek() == '-') ++pos_;
    bool plain = true; // written without fraction/exponent
    // Integer part: "0" or a non-zero digit followed by digits — JSON
    // forbids leading zeros ("01" is not a number).
    if (peek() == '0') {
      ++pos_;
      check(!isDigit(), "leading zeros are not allowed");
    } else {
      digits("expected a value");
    }
    if (peek() == '.') {
      plain = false;
      ++pos_;
      digits("expected digits after '.'");
    }
    if (peek() == 'e' || peek() == 'E') {
      plain = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      digits("expected exponent digits");
    }
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    // std::strtod rather than std::stod: stod throws on subnormal values
    // (ERANGE underflow), but "5e-324" is a perfectly valid JSON number —
    // and exactly the magnitude tiny regret records produce. Underflow
    // rounds like any other literal; overflow to ±inf is rejected (JSON
    // has no infinity).
    char* end = nullptr;
    v.numberValue_ = std::strtod(token.c_str(), &end);
    check(end == token.c_str() + token.size(),
          "malformed number \"" + token + "\"");
    if (!std::isfinite(v.numberValue_))
      fail("number out of range \"" + token + "\"");
    if (plain) {
      try {
        v.intValue_ = std::stoll(token);
        v.numberIsInt_ = true;
      } catch (const std::exception&) {
        v.numberIsInt_ = false; // out of int64 range; keep the double
      }
    } else if (v.numberValue_ == 0.0 && std::signbit(v.numberValue_)) {
      v.numberIsInt_ = false; // -0.0 must stay a double end to end
    } else if (std::nearbyint(v.numberValue_) == v.numberValue_ &&
               std::fabs(v.numberValue_) <= 0x1p53) {
      // Exponent/fraction spellings of exact integers ("1e3", "42.0")
      // round-trip as integers: asInt() works and a re-write emits the
      // canonical integer form.
      v.intValue_ = static_cast<std::int64_t>(v.numberValue_);
      v.numberIsInt_ = true;
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parseDocument();
}

} // namespace cawo
