#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "sim/runner.hpp"
#include "solver/solver.hpp"

/// \file campaign_runner.hpp
/// Executes a `CampaignSpec` and emits machine-readable results (see
/// docs/formats.md, "Campaign result JSON").
///
/// The runner expands the campaign's cross-product into instances, builds
/// and solves them with `parallelFor` sharding over *instances* (each shard
/// runs the full solver selection on its instance, exactly like the suite
/// runner, so campaign costs match `runAllOnInstance` bit for bit), and
/// produces:
///   * one `CampaignRecord` per (instance, solver) cell — carbon cost,
///     schedule-independent lower bound, ratio vs the baseline solver,
///     wall time and validity;
///   * per-solver `SolverSummary` aggregates — win counts, median/mean
///     ratios, per-scenario median ratios (via sim/stats);
///   * a single JSON document bundling campaign, records and summaries.

namespace cawo {

/// One (instance, solver) result cell of a campaign.
struct CampaignRecord {
  InstanceSpec spec;        ///< the instance's axes
  std::string instance;     ///< InstanceSpec::label()
  Time deadline = 0;        ///< ceil(deadlineFactor · D)
  Time asapMakespanD = 0;   ///< the paper's D
  TaskId numNodes = 0;      ///< enhanced-graph nodes (incl. comm tasks)
  /// Canonical 64-bit instance hash (core/instance_hash) — written as 16
  /// hex digits so records for the same built instance can be joined
  /// across campaigns (and against serve responses) without re-building.
  std::uint64_t instanceHash = 0;
  Cost lowerBound = 0;      ///< carbonLowerBound of the instance

  std::string solver;       ///< registry name as selected
  Cost cost = 0;
  double wallMs = 0.0;
  bool feasible = false;    ///< schedule validated against the deadline
  bool provedOptimal = false;
  bool skipped = false;     ///< capability mismatch — no run happened
  /// Cost of the baseline (first selected solver) on the same instance;
  /// meaningful only when `hasBaseline` — written as null in JSON
  /// otherwise (0 is a legitimate cost, not a sentinel).
  Cost baselineCost = 0;
  /// True when the baseline solver ran feasibly on this instance.
  bool hasBaseline = false;
  /// cost / baselineCost; NaN when undefined (no feasible baseline,
  /// baseline 0 with own cost > 0, own solve infeasible, or the cell was
  /// skipped). Written as null in JSON.
  double ratioVsBaseline = 0.0;

  /// Greedy/local-search phase split, harvested from the solver stats map
  /// ("greedy-us"/"ls-us"): present for CaWoSched-style solvers
  /// (`hasPhaseSplit`), null in JSON otherwise. `lsMs` and the
  /// `LocalSearchStats` mirror below are only meaningful for -LS variants
  /// (`hasLocalSearch`).
  bool hasPhaseSplit = false;
  double greedyMs = 0.0;
  double lsMs = 0.0;
  bool hasLocalSearch = false;
  std::int64_t lsRounds = 0;      ///< rounds incl. the final gainless one
  std::int64_t lsMoves = 0;       ///< improving moves applied
  Cost lsInitialCost = 0;         ///< carbon cost entering local search
  Cost lsFinalCost = 0;           ///< carbon cost leaving local search

  /// Online replay fields (campaign `online` mode): present iff
  /// `hasOnline`, null/absent in offline records — the offline JSON
  /// schema is byte-stable. In online records `cost` is the *actual*
  /// (billed) cost and `feasible` means "ran and met the deadline".
  bool hasOnline = false;
  std::string policy;          ///< rescheduling policy spec
  std::string actualScenario;  ///< actual-profile spec ("" = pair)
  Cost forecastCost = 0;       ///< offline plan cost vs the forecast
  Cost clairvoyantCost = 0;    ///< same solver solved against actuals
  bool clairvoyantFeasible = false;
  Cost regret = 0;             ///< cost − clairvoyantCost
  double regretRatio = 0.0;    ///< cost / clairvoyantCost; NaN undefined
  std::int64_t resolves = 0;   ///< re-solve attempts
  std::int64_t resolvesAccepted = 0;
  double resolveWallMs = 0.0;  ///< Σ wall time over re-solves
  bool deadlineMet = false;
  Time finishTime = 0;
};

/// Per-solver aggregate over every instance the solver ran on.
struct SolverSummary {
  std::string solver;
  int instances = 0;   ///< cells actually run (not skipped)
  int wins = 0;        ///< cells with the minimum cost (ties count for all)
  double medianRatio = 0.0; ///< median cost ratio vs the baseline solver
  double meanRatio = 0.0;
  double totalWallMs = 0.0;
  /// Median ratio restricted to each scenario that occurs in the campaign,
  /// aligned with CampaignOutcome::scenarios.
  std::vector<double> medianRatioByScenario;
};

/// Everything a campaign run produced.
struct CampaignOutcome {
  CampaignSpec spec;
  /// Per-instance cell labels in run order: the resolved solver selection
  /// offline; the solver × policy cross-product ("solver @ policy") in
  /// online mode. `records` is instance-major with this stride.
  std::vector<std::string> solvers;
  /// The policy axis (online mode; empty offline).
  std::vector<std::string> policies;
  /// Distinct scenario specs: the paper's S1..S4 first (canonical order),
  /// then any other specs in first-appearance order.
  std::vector<std::string> scenarios;
  std::vector<InstanceResult> results; ///< per instance, suite-compatible
  std::vector<CampaignRecord> records; ///< |instances| × |solvers| cells
  std::vector<SolverSummary> summaries;
};

/// Progress callback: (cells finished, total cells).
using CampaignProgress = std::function<void(std::size_t, std::size_t)>;

/// Run the whole campaign. Instances are built and solved in parallel
/// (`spec.threads`, 0 = hardware concurrency); records are ordered
/// instance-major in expansion order, so the output is deterministic
/// regardless of the thread count. Solvers that do not fit an instance
/// (see solverFitsInstance) yield a record with `skipped = true`.
CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const SolverOptions& options = {},
                            const CampaignProgress& progress = {});

/// Write the outcome as one JSON document: a `campaign` header object, a
/// `records` array (one single-line object per cell — grep-friendly, still
/// one valid document) and a `summary` array.
void writeCampaignJson(std::ostream& out, const CampaignOutcome& outcome);
std::string toCampaignJsonString(const CampaignOutcome& outcome);
void writeCampaignJsonFile(const std::string& path,
                           const CampaignOutcome& outcome);

/// Print the per-solver summary table; with `perScenario` also one median-
/// ratio table per scenario (the Figure 15 view).
void printCampaignSummary(std::ostream& out, const CampaignOutcome& outcome,
                          bool perScenario = false);

} // namespace cawo
