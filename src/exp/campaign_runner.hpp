#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/record.hpp"
#include "sim/runner.hpp"
#include "solver/solver.hpp"

/// \file campaign_runner.hpp
/// Executes a `CampaignSpec` and emits machine-readable results (see
/// docs/formats.md, "Campaign result JSON").
///
/// The runner expands the campaign's cross-product into instances, builds
/// and solves them with `parallelFor` sharding over *instances* (each shard
/// runs the full solver selection on its instance, exactly like the suite
/// runner, so campaign costs match `runAllOnInstance` bit for bit), and
/// hands each finished instance's cell group to a `RecordSink`
/// (exp/record_sink.hpp):
///   * `runCampaign` feeds a `MemoryRecordSink` — the legacy batch-in-RAM
///     path producing a `CampaignOutcome` with every record;
///   * `runCampaignToStore` feeds a `CampaignStoreWriter` (exp/store.hpp)
///     — the streaming out-of-core path for production-scale sweeps, with
///     resume (only missing cells are solved) and multi-process sharding.
/// Both paths produce byte-identical final JSON documents on the same
/// spec; the summaries come from the shared `SummaryAccumulator`.

namespace cawo {

class CampaignStoreReader;
class CampaignStoreWriter;

/// Everything a campaign run produced.
struct CampaignOutcome {
  CampaignSpec spec;
  /// Per-instance cell labels in run order: the resolved solver selection
  /// offline; the solver × policy cross-product ("solver @ policy") in
  /// online mode. `records` is instance-major with this stride.
  std::vector<std::string> solvers;
  /// The policy axis (online mode; empty offline).
  std::vector<std::string> policies;
  /// Distinct scenario specs: the paper's S1..S4 first (canonical order),
  /// then any other specs in first-appearance order.
  std::vector<std::string> scenarios;
  std::vector<InstanceResult> results; ///< per instance, suite-compatible
  std::vector<CampaignRecord> records; ///< |instances| × |solvers| cells
  std::vector<SolverSummary> summaries;
};

/// Progress callback: (cells finished, total cells).
using CampaignProgress = std::function<void(std::size_t, std::size_t)>;

/// Distinct scenario specs of a campaign in document order: the paper's
/// S1..S4 first (canonical order), then any other specs in
/// first-appearance order. Shared by the runner, the store export and the
/// `query` summary view.
std::vector<std::string> campaignDistinctScenarios(const CampaignSpec& spec);

/// Run the whole campaign. Instances are built and solved in parallel
/// (`spec.threads`, 0 = hardware concurrency); records are ordered
/// instance-major in expansion order, so the output is deterministic
/// regardless of the thread count. Solvers that do not fit an instance
/// (see solverFitsInstance) yield a record with `skipped = true`.
CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const SolverOptions& options = {},
                            const CampaignProgress& progress = {});

/// Per-run counters of a store-backed campaign run: how much work the
/// shard owned, how much was already durable (resume), how much this run
/// actually solved. The resume contract is asserted on these — a resumed
/// run must report `cellsSolved == shardCells - presentBefore`.
struct CampaignRunStats {
  std::size_t totalCells = 0;     ///< whole campaign, all shards
  std::size_t shardCells = 0;     ///< cells this shard owns
  std::size_t presentBefore = 0;  ///< owned cells already durable at open
  /// Cells newly made durable by this run — after a torn-tail recovery an
  /// instance re-solves whole but only its missing cells are appended.
  std::size_t cellsSolved = 0;
  std::size_t instancesSolved = 0;///< instances solved by this run
  bool cappedByMaxCells = false;  ///< stopped early by the maxCells cap

  // Throughput of this run's solve loop (obs layer; see
  // docs/observability.md). Cells/s counts every cell solved (a resumed
  // instance re-solves whole), records/s only the newly durable ones.
  double wallSec = 0.0;
  double cellsPerSec = 0.0;
  double recordsPerSec = 0.0;
  std::int64_t fsyncs = 0; ///< fsync syscalls issued by group commits
};

/// Run (the missing part of) the store's campaign into its shard. Only
/// instances the shard owns and that are not yet fully present are built
/// and solved; everything else is skipped without touching a workflow.
/// `maxCells > 0` caps this run to the first ceil(maxCells/stride)
/// pending instances in expansion order — a deterministic interruption
/// point for crash/resume testing and incremental sweeps. The progress
/// callback sees (cells done this run, cells to do this run). The store
/// is flushed before returning.
CampaignRunStats runCampaignToStore(const SolverOptions& options,
                                    CampaignStoreWriter& store,
                                    const CampaignProgress& progress = {},
                                    std::size_t maxCells = 0);

/// Write the outcome as one JSON document: a `campaign` header object, a
/// `records` array (one single-line object per cell — grep-friendly, still
/// one valid document) and a `summary` array.
void writeCampaignJson(std::ostream& out, const CampaignOutcome& outcome);
std::string toCampaignJsonString(const CampaignOutcome& outcome);
void writeCampaignJsonFile(const std::string& path,
                           const CampaignOutcome& outcome);

/// The same document, assembled from a complete store: record lines are
/// spliced in verbatim from the segments (never re-serialized) and the
/// summaries recomputed with the streaming accumulator, so the bytes
/// equal the legacy in-memory path's on the same spec. Throws when the
/// store is incomplete — a partial sweep has no meaningful summary.
void writeCampaignJsonFromStore(std::ostream& out,
                                CampaignStoreReader& reader);
void writeCampaignJsonFileFromStore(const std::string& path,
                                    CampaignStoreReader& reader);

/// Summarise a complete store into a record-free outcome (records stay on
/// disk) — what `printCampaignSummary` needs, without O(cells) memory.
CampaignOutcome summariseStore(CampaignStoreReader& reader);

/// Print the per-solver summary table; with `perScenario` also one median-
/// ratio table per scenario (the Figure 15 view).
void printCampaignSummary(std::ostream& out, const CampaignOutcome& outcome,
                          bool perScenario = false);

} // namespace cawo
