#include "exp/record_json.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "core/instance_hash.hpp"
#include "exp/json.hpp"
#include "util/require.hpp"
#include "workflow/generators.hpp"

namespace cawo {

void writeCampaignRecord(JsonWriter& w, const CampaignRecord& r) {
  w.compactNext();
  w.beginObject();
  w.key("instance").value(r.instance);
  w.key("family").value(familyName(r.spec.family));
  w.key("tasks").value(r.spec.targetTasks);
  w.key("nodes_per_type").value(r.spec.nodesPerType);
  w.key("scenario").value(r.spec.scenario); // the spec string, verbatim
  w.key("deadline_factor").value(r.spec.deadlineFactor);
  w.key("seed").value(static_cast<std::uint64_t>(r.spec.seed));
  w.key("intervals").value(r.spec.numIntervals);
  w.key("deadline").value(static_cast<std::int64_t>(r.deadline));
  w.key("asap_makespan").value(static_cast<std::int64_t>(r.asapMakespanD));
  w.key("num_nodes").value(static_cast<std::int64_t>(r.numNodes));
  // 16 hex digits, not a JSON number: uint64 does not round-trip through
  // double-backed JSON parsers.
  w.key("instance_hash").value(instanceHashHex(r.instanceHash));
  w.key("solver").value(r.solver);
  if (r.skipped) {
    w.key("cost").null();
    w.key("wall_ms").null();
  } else {
    w.key("cost").value(static_cast<std::int64_t>(r.cost));
    w.key("wall_ms").value(r.wallMs);
  }
  w.key("lower_bound").value(static_cast<std::int64_t>(r.lowerBound));
  if (!r.hasBaseline) w.key("baseline_cost").null();
  else w.key("baseline_cost").value(static_cast<std::int64_t>(r.baselineCost));
  if (std::isnan(r.ratioVsBaseline)) w.key("ratio_vs_baseline").null();
  else w.key("ratio_vs_baseline").value(r.ratioVsBaseline);
  w.key("feasible").value(r.feasible);
  w.key("proved_optimal").value(r.provedOptimal);
  w.key("skipped").value(r.skipped);
  // Phase split + local-search diagnostics (appended in schema v1:
  // consumers key on presence, null means "not a phased/LS solver").
  if (!r.hasPhaseSplit) w.key("greedy_ms").null();
  else w.key("greedy_ms").value(r.greedyMs);
  if (!r.hasLocalSearch) {
    w.key("ls_ms").null();
    w.key("ls_rounds").null();
    w.key("ls_moves").null();
    w.key("ls_initial_cost").null();
    w.key("ls_final_cost").null();
  } else {
    w.key("ls_ms").value(r.lsMs);
    w.key("ls_rounds").value(r.lsRounds);
    w.key("ls_moves").value(r.lsMoves);
    w.key("ls_initial_cost").value(static_cast<std::int64_t>(r.lsInitialCost));
    w.key("ls_final_cost").value(static_cast<std::int64_t>(r.lsFinalCost));
  }
  // Online replay fields: only present in online-mode records, so the
  // offline record schema stays byte-identical (golden-tested).
  if (r.hasOnline) {
    w.key("policy").value(r.policy);
    if (r.actualScenario.empty()) w.key("actual_scenario").null();
    else w.key("actual_scenario").value(r.actualScenario);
    if (r.skipped) {
      w.key("forecast_cost").null();
      w.key("clairvoyant_cost").null();
      w.key("regret").null();
      w.key("regret_ratio").null();
      w.key("resolves").null();
      w.key("resolves_accepted").null();
      w.key("resolve_wall_ms").null();
      w.key("deadline_met").null();
      w.key("finish_time").null();
    } else {
      w.key("forecast_cost").value(static_cast<std::int64_t>(r.forecastCost));
      if (!r.clairvoyantFeasible) {
        w.key("clairvoyant_cost").null();
        w.key("regret").null();
      } else {
        w.key("clairvoyant_cost")
            .value(static_cast<std::int64_t>(r.clairvoyantCost));
        w.key("regret").value(static_cast<std::int64_t>(r.regret));
      }
      if (std::isnan(r.regretRatio)) w.key("regret_ratio").null();
      else w.key("regret_ratio").value(r.regretRatio);
      w.key("resolves").value(r.resolves);
      w.key("resolves_accepted").value(r.resolvesAccepted);
      w.key("resolve_wall_ms").value(r.resolveWallMs);
      w.key("deadline_met").value(r.deadlineMet);
      w.key("finish_time").value(static_cast<std::int64_t>(r.finishTime));
    }
  }
  w.endObject();
}

std::string campaignRecordJsonLine(const CampaignRecord& r) {
  // compactNext() inside writeCampaignRecord puts the whole object on one
  // line; at depth 0 there is no separator or indent before the '{', so
  // the standalone bytes equal the in-document bytes exactly.
  std::ostringstream out;
  JsonWriter w(out);
  writeCampaignRecord(w, r);
  return out.str();
}

namespace {

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

double numberOrNaN(const JsonValue& v) {
  return v.isNull() ? quietNaN() : v.asDouble();
}

std::uint64_t parseHashHex(const std::string& hex) {
  CAWO_REQUIRE(hex.size() == 16, "campaign record: instance_hash must be 16 "
                                 "hex digits, got \"" + hex + "\"");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(hex.c_str(), &end, 16);
  CAWO_REQUIRE(end == hex.c_str() + hex.size(),
               "campaign record: malformed instance_hash \"" + hex + "\"");
  return static_cast<std::uint64_t>(v);
}

} // namespace

CampaignRecord parseCampaignRecordLine(const std::string& line) {
  const JsonValue v = JsonValue::parse(line);
  CampaignRecord r;
  r.instance = v.at("instance").asString();
  r.spec.family = familyFromName(v.at("family").asString());
  r.spec.targetTasks = static_cast<int>(v.at("tasks").asInt());
  r.spec.nodesPerType = static_cast<int>(v.at("nodes_per_type").asInt());
  r.spec.scenario = v.at("scenario").asString();
  r.spec.deadlineFactor = v.at("deadline_factor").asDouble();
  r.spec.seed = static_cast<std::uint64_t>(v.at("seed").asInt());
  r.spec.numIntervals = static_cast<int>(v.at("intervals").asInt());
  r.deadline = static_cast<Time>(v.at("deadline").asInt());
  r.asapMakespanD = static_cast<Time>(v.at("asap_makespan").asInt());
  r.numNodes = static_cast<TaskId>(v.at("num_nodes").asInt());
  r.instanceHash = parseHashHex(v.at("instance_hash").asString());
  r.solver = v.at("solver").asString();
  r.skipped = v.at("skipped").asBool();
  if (!r.skipped) {
    r.cost = static_cast<Cost>(v.at("cost").asInt());
    r.wallMs = v.at("wall_ms").asDouble();
  }
  r.lowerBound = static_cast<Cost>(v.at("lower_bound").asInt());
  r.hasBaseline = !v.at("baseline_cost").isNull();
  if (r.hasBaseline)
    r.baselineCost = static_cast<Cost>(v.at("baseline_cost").asInt());
  r.ratioVsBaseline = numberOrNaN(v.at("ratio_vs_baseline"));
  r.feasible = v.at("feasible").asBool();
  r.provedOptimal = v.at("proved_optimal").asBool();
  r.hasPhaseSplit = !v.at("greedy_ms").isNull();
  if (r.hasPhaseSplit) r.greedyMs = v.at("greedy_ms").asDouble();
  r.hasLocalSearch = !v.at("ls_ms").isNull();
  if (r.hasLocalSearch) {
    r.lsMs = v.at("ls_ms").asDouble();
    r.lsRounds = v.at("ls_rounds").asInt();
    r.lsMoves = v.at("ls_moves").asInt();
    r.lsInitialCost = static_cast<Cost>(v.at("ls_initial_cost").asInt());
    r.lsFinalCost = static_cast<Cost>(v.at("ls_final_cost").asInt());
  }
  // Online records are recognised by the presence of the policy key — the
  // same convention downstream consumers use.
  r.hasOnline = v.has("policy");
  if (r.hasOnline) {
    r.policy = v.at("policy").asString();
    if (!v.at("actual_scenario").isNull())
      r.actualScenario = v.at("actual_scenario").asString();
    r.regretRatio = quietNaN();
    if (!r.skipped) {
      r.forecastCost = static_cast<Cost>(v.at("forecast_cost").asInt());
      r.clairvoyantFeasible = !v.at("clairvoyant_cost").isNull();
      if (r.clairvoyantFeasible) {
        r.clairvoyantCost =
            static_cast<Cost>(v.at("clairvoyant_cost").asInt());
        r.regret = static_cast<Cost>(v.at("regret").asInt());
      }
      r.regretRatio = numberOrNaN(v.at("regret_ratio"));
      r.resolves = v.at("resolves").asInt();
      r.resolvesAccepted = v.at("resolves_accepted").asInt();
      r.resolveWallMs = v.at("resolve_wall_ms").asDouble();
      r.deadlineMet = v.at("deadline_met").asBool();
      r.finishTime = static_cast<Time>(v.at("finish_time").asInt());
    }
  }
  return r;
}

} // namespace cawo
