#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/instance.hpp"
#include "util/types.hpp"

/// \file record.hpp
/// The campaign result cell (`CampaignRecord`) and its per-solver
/// aggregate (`SolverSummary`) — the value types of the
/// `cawosched-campaign-v1` result schema (docs/formats.md).
///
/// They live apart from the campaign runner so the layers that only move
/// records around — the JSON line codec (exp/record_json), the sink
/// abstraction (exp/record_sink), the result store (exp/store) and the
/// summary accumulator (exp/summary) — do not depend on the solver
/// machinery the runner pulls in.

namespace cawo {

/// One (instance, solver) result cell of a campaign.
struct CampaignRecord {
  InstanceSpec spec;        ///< the instance's axes
  std::string instance;     ///< InstanceSpec::label()
  Time deadline = 0;        ///< ceil(deadlineFactor · D)
  Time asapMakespanD = 0;   ///< the paper's D
  TaskId numNodes = 0;      ///< enhanced-graph nodes (incl. comm tasks)
  /// Canonical 64-bit instance hash (core/instance_hash) — written as 16
  /// hex digits so records for the same built instance can be joined
  /// across campaigns (and against serve responses) without re-building.
  std::uint64_t instanceHash = 0;
  Cost lowerBound = 0;      ///< carbonLowerBound of the instance

  std::string solver;       ///< registry name as selected
  Cost cost = 0;
  double wallMs = 0.0;
  bool feasible = false;    ///< schedule validated against the deadline
  bool provedOptimal = false;
  bool skipped = false;     ///< capability mismatch — no run happened
  /// Cost of the baseline (first selected solver) on the same instance;
  /// meaningful only when `hasBaseline` — written as null in JSON
  /// otherwise (0 is a legitimate cost, not a sentinel).
  Cost baselineCost = 0;
  /// True when the baseline solver ran feasibly on this instance.
  bool hasBaseline = false;
  /// cost / baselineCost; NaN when undefined (no feasible baseline,
  /// baseline 0 with own cost > 0, own solve infeasible, or the cell was
  /// skipped). Written as null in JSON.
  double ratioVsBaseline = 0.0;

  /// Greedy/local-search phase split, harvested from the solver stats map
  /// ("greedy-us"/"ls-us"): present for CaWoSched-style solvers
  /// (`hasPhaseSplit`), null in JSON otherwise. `lsMs` and the
  /// `LocalSearchStats` mirror below are only meaningful for -LS variants
  /// (`hasLocalSearch`).
  bool hasPhaseSplit = false;
  double greedyMs = 0.0;
  double lsMs = 0.0;
  bool hasLocalSearch = false;
  std::int64_t lsRounds = 0;      ///< rounds incl. the final gainless one
  std::int64_t lsMoves = 0;       ///< improving moves applied
  Cost lsInitialCost = 0;         ///< carbon cost entering local search
  Cost lsFinalCost = 0;           ///< carbon cost leaving local search

  /// Online replay fields (campaign `online` mode): present iff
  /// `hasOnline`, null/absent in offline records — the offline JSON
  /// schema is byte-stable. In online records `cost` is the *actual*
  /// (billed) cost and `feasible` means "ran and met the deadline".
  bool hasOnline = false;
  std::string policy;          ///< rescheduling policy spec
  std::string actualScenario;  ///< actual-profile spec ("" = pair)
  Cost forecastCost = 0;       ///< offline plan cost vs the forecast
  Cost clairvoyantCost = 0;    ///< same solver solved against actuals
  bool clairvoyantFeasible = false;
  Cost regret = 0;             ///< cost − clairvoyantCost
  double regretRatio = 0.0;    ///< cost / clairvoyantCost; NaN undefined
  std::int64_t resolves = 0;   ///< re-solve attempts
  std::int64_t resolvesAccepted = 0;
  double resolveWallMs = 0.0;  ///< Σ wall time over re-solves
  bool deadlineMet = false;
  Time finishTime = 0;
};

/// Per-solver aggregate over every instance the solver ran on.
struct SolverSummary {
  std::string solver;
  int instances = 0;   ///< cells actually run (not skipped)
  int wins = 0;        ///< cells with the minimum cost (ties count for all)
  double medianRatio = 0.0; ///< median cost ratio vs the baseline solver
  double meanRatio = 0.0;
  double totalWallMs = 0.0;
  /// Median ratio restricted to each scenario that occurs in the campaign,
  /// aligned with CampaignOutcome::scenarios.
  std::vector<double> medianRatioByScenario;
};

} // namespace cawo
