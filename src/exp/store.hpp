#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/record.hpp"
#include "exp/record_sink.hpp"

/// \file store.hpp
/// The campaign result store: streaming, sharded, resumable persistence
/// for campaign records (ROADMAP item 4; docs/formats.md, "Campaign
/// result store").
///
/// Layout — one directory per campaign:
///   manifest.json     store schema, shard count, grid dimensions and the
///                     canonical owning CampaignSpec
///   segment-<i>.jsonl shard i's records: exact `cawosched-campaign-v1`
///                     record lines (record_json byte contract), appended
///                     as instances finish
///   segment-<i>.idx   sidecar index: one text line per record —
///                     `<instance> <cell> <offset> <length> <hash>` —
///                     mapping grid coordinates to segment byte ranges
///
/// Durability: appends buffer in memory and hit disk in fsync'd group
/// commits (`StoreOptions::groupCommit` records per batch), segment bytes
/// before index lines. A crash can therefore leave (a) index lines for a
/// prefix of the segment — the unindexed segment tail is recovered by
/// scanning complete lines — and (b) a torn final segment line, which is
/// detected (no terminator / unparsable) and truncated away so the cell
/// re-runs. Peak writer memory is O(group-commit buffer) + O(grid
/// bookkeeping bits), never O(records).
///
/// Sharding: `shardOfInstance` (FNV over the instance spec) deterministically
/// partitions the instance grid across `shardCount` independent writer
/// processes; each writes only its own segment pair, and the reader merges
/// all segments back into expansion order, so the final document is
/// byte-identical no matter how many processes produced it.

namespace cawo {

struct StoreOptions {
  std::size_t shardIndex = 0; ///< 0-based shard of this writer
  std::size_t shardCount = 1; ///< total shards partitioning the grid
  std::size_t groupCommit = 64; ///< records per fsync batch (>= 1)
  /// Opening a shard whose segment already holds data requires an explicit
  /// opt-in — silently appending to a half-finished run must be a choice.
  bool resume = false;
};

/// Per-run solve/durability counters (see runCampaignToStore).
struct StoreRecovery {
  std::size_t recoveredCells = 0;   ///< unindexed segment lines re-indexed
  std::size_t truncatedBytes = 0;   ///< torn segment tail dropped
  std::size_t droppedIndexLines = 0; ///< invalid/torn index tail dropped
};

/// Streaming record sink writing one shard of a campaign store.
///
/// Thread-safe (`appendInstance` is called from runner workers). The
/// destructor flushes; call `flush()` explicitly where durability must be
/// sequenced (e.g. before reporting completion).
class CampaignStoreWriter : public RecordSink {
public:
  CampaignStoreWriter(const std::string& dir, const CampaignSpec& spec,
                      const StoreOptions& options = {});
  ~CampaignStoreWriter() override;

  CampaignStoreWriter(const CampaignStoreWriter&) = delete;
  CampaignStoreWriter& operator=(const CampaignStoreWriter&) = delete;

  /// Append an instance's cell group, skipping cells already durable
  /// (after torn-tail recovery an instance can be partially present).
  void appendInstance(std::size_t instanceIndex,
                      const CampaignRecord* records,
                      std::size_t count) override;

  /// Append one cell; throws if it is already present (duplicate cells
  /// would corrupt the grid → segment mapping).
  void append(std::size_t instanceIndex, std::size_t cellIndex,
              const CampaignRecord& record);

  /// Write and fsync everything buffered (segment first, then index).
  void flush();

  /// True when this shard owns the instance under the store's partition.
  bool ownsInstance(std::size_t instanceIndex) const;
  /// True when every cell of the instance is already present.
  bool instanceDone(std::size_t instanceIndex) const;
  bool cellPresent(std::size_t instanceIndex, std::size_t cellIndex) const;

  /// Cells durable-or-buffered in this shard so far.
  std::size_t presentCells() const;
  /// Cells this shard owns in total.
  std::size_t shardCells() const;
  /// fsync syscalls issued by group commits so far (2 per batch: the
  /// segment, then the index) — the durability cost knob `groupCommit`
  /// trades against throughput; surfaced in CampaignRunStats.
  std::size_t fsyncCount() const;

  std::size_t numInstances() const { return instances_.size(); }
  std::size_t stride() const { return labels_.size(); }
  const CampaignSpec& spec() const { return spec_; }
  const std::vector<std::string>& cellLabels() const { return labels_; }
  const std::vector<InstanceSpec>& instances() const { return instances_; }
  const std::string& directory() const { return dir_; }
  std::size_t shardIndex() const { return options_.shardIndex; }
  std::size_t shardCount() const { return options_.shardCount; }
  /// What (if anything) the resume recovery found and repaired on open.
  const StoreRecovery& recovery() const { return recovery_; }

private:
  void appendLocked(std::size_t instanceIndex, std::size_t cellIndex,
                    const std::string& line, std::uint64_t hash);
  void flushLocked();
  void recoverExistingShard();

  std::string dir_;
  CampaignSpec spec_;
  StoreOptions options_;
  std::vector<std::string> labels_;      ///< cell labels (stride order)
  std::vector<InstanceSpec> instances_;  ///< expansion, grid order
  std::vector<std::uint64_t> specHashes_; ///< instanceSpecHash per instance
  StoreRecovery recovery_;

  mutable std::mutex mutex_;
  std::vector<bool> present_;   ///< instance-major cell presence bitmap
  std::size_t presentCount_ = 0;
  std::size_t shardCellCount_ = 0;
  int segFd_ = -1;
  int idxFd_ = -1;
  std::uint64_t segBytes_ = 0;  ///< durable + buffered segment length
  std::string pendingSegment_;
  std::string pendingIndex_;
  std::size_t pendingRecords_ = 0;
  std::size_t fsyncCount_ = 0;
};

/// Read-only merged view over every shard of a store. Torn tails and
/// unindexed-but-complete segment lines are handled like the writer's
/// recovery, except nothing is modified on disk. Not thread-safe.
class CampaignStoreReader {
public:
  explicit CampaignStoreReader(const std::string& dir);

  const CampaignSpec& spec() const { return spec_; }
  const std::vector<std::string>& cellLabels() const { return labels_; }
  const std::vector<InstanceSpec>& instances() const { return instances_; }
  std::size_t numInstances() const { return instances_.size(); }
  std::size_t stride() const { return labels_.size(); }
  std::size_t shardCount() const { return shardCount_; }

  std::size_t totalCells() const { return present_.size(); }
  std::size_t presentCells() const { return presentCount_; }
  bool complete() const { return presentCount_ == present_.size(); }

  bool cellPresent(std::size_t instanceIndex, std::size_t cellIndex) const;
  /// The built-instance hash recorded in the index (0 when absent).
  std::uint64_t cellHash(std::size_t instanceIndex,
                         std::size_t cellIndex) const;
  /// The raw record JSON line (no trailing newline) of a present cell.
  std::string readCellLine(std::size_t instanceIndex, std::size_t cellIndex);

  /// Visit every present cell in instance-major expansion order — the
  /// deterministic merged order, independent of shard/completion
  /// interleaving.
  void forEachPresentCell(
      const std::function<void(std::size_t instanceIndex,
                               std::size_t cellIndex,
                               const std::string& line)>& fn);

private:
  struct CellRef {
    std::int32_t shard = -1; ///< -1 = absent
    std::uint32_t length = 0;
    std::uint64_t offset = 0;
    std::uint64_t hash = 0;
  };

  void loadShard(std::size_t shard);

  std::string dir_;
  CampaignSpec spec_;
  std::size_t shardCount_ = 1;
  std::vector<std::string> labels_;
  std::vector<InstanceSpec> instances_;
  std::vector<CellRef> cells_;
  std::vector<bool> present_;
  std::size_t presentCount_ = 0;
  std::vector<std::ifstream> segments_;
};

/// A filter over a store's cells. Instance-axis filters are resolved from
/// the grid without touching record bytes; the solver filter matches cell
/// labels with the registry's glob syntax; `feasibleOnly` (and any
/// consumer callback) parses the matched lines only.
struct StoreQuery {
  std::vector<std::string> solvers;   ///< label globs; empty = all
  std::vector<std::string> scenarios; ///< exact scenario specs; empty = all
  std::vector<std::string> families;  ///< family names; empty = all
  int minTasks = 0;
  int maxTasks = std::numeric_limits<int>::max();
  std::vector<double> deadlineFactors; ///< exact factors; empty = all
  std::vector<std::uint64_t> seeds;    ///< empty = all
  std::string instanceHash; ///< 16-hex built-instance hash; empty = all
  bool feasibleOnly = false;
};

/// Callback per matched cell. `record` is parsed from `line`.
using StoreQueryFn = std::function<void(
    std::size_t instanceIndex, std::size_t cellIndex,
    const CampaignRecord& record, const std::string& line)>;

/// Stream the store through the filter in merged (instance-major) order;
/// returns the number of matched cells. `fn` may be empty (pure count —
/// records are then only parsed when `feasibleOnly` forces it).
std::size_t queryStore(CampaignStoreReader& reader, const StoreQuery& query,
                       const StoreQueryFn& fn = {});

} // namespace cawo
