#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profile/profile_source.hpp"
#include "sim/instance.hpp"
#include "workflow/generators.hpp"

/// \file campaign.hpp
/// Declarative description of an experiment campaign (see docs/formats.md).
///
/// A `CampaignSpec` lists the axes of the paper's Section 6 cross-product —
/// workflow families, task counts, cluster sizes, power scenarios, deadline
/// factors and seeds — plus a `SolverRegistry` selection string. Expanding
/// the spec yields one `InstanceSpec` per cell; the `CampaignRunner`
/// (campaign_runner.hpp) executes the cells and emits JSON records.
///
/// Specs are written either as key=value text (one `key = a, b, c` per
/// line, `#` comments) or as a JSON object with the same keys; both forms
/// and the CLI `--key=value` overrides funnel through `setCampaignKey`, so
/// every surface accepts exactly the same vocabulary.

namespace cawo {

/// The axes of one experiment campaign. Defaults reproduce a scaled-down
/// version of the paper's grid: all four scenarios × the four deadline
/// factors on one atacseq workflow.
struct CampaignSpec {
  /// Campaign label, echoed into the JSON result file.
  std::string name = "campaign";

  /// Workflow families to sweep (axis `families`).
  std::vector<WorkflowFamily> families{WorkflowFamily::Atacseq};
  /// Approximate task counts per family (axis `tasks`).
  std::vector<int> tasks{200};
  /// Override for the bacass family (the paper's small real-world
  /// pipeline): when > 0, bacass instances use this single size instead of
  /// the `tasks` axis (key `bacass-tasks`).
  int bacassTasks = 0;

  /// Cluster sizes as nodes per Table-1 processor type (axis
  /// `nodes-per-type`; paper: 12 and 24).
  std::vector<int> nodesPerType{2};
  /// Power-profile specs resolved through the ProfileSourceRegistry (axis
  /// `scenarios`; `all` = the paper's S1–S4). Any registered spec is a
  /// valid axis value, e.g. "sine:period=24,amp=0.5" or
  /// "trace:grid.csv,repeat=1,normalize=1"; commas inside a spec are
  /// handled by splitSpecList.
  std::vector<std::string> scenarios{"S1", "S2", "S3", "S4"};
  /// Deadline factors relative to the ASAP makespan D (axis
  /// `deadline-factors`; paper: 1.0, 1.5, 2.0, 3.0).
  std::vector<double> deadlineFactors{1.0, 1.5, 2.0, 3.0};
  /// RNG seeds — one full sub-grid per seed (axis `seeds`).
  std::vector<std::uint64_t> seeds{1};

  /// Power-profile intervals per instance (key `intervals`).
  int numIntervals = 24;

  /// Registry selection string (key `algos`): `suite` (ASAP + the 16
  /// CaWoSched variants), `all`, exact names, globs, bracket parameters,
  /// or a comma list — see SolverRegistry::select.
  std::string algos = "suite";

  /// Worker threads for the runner (key `threads`; 0 = hardware).
  unsigned threads = 0;

  /// Online replay mode (key `online`, 0/1): instead of grading each
  /// solver offline, every (instance, solver, policy) cell is executed
  /// through the online replay engine — planned against the forecast,
  /// billed against the actual (see src/online/replay.hpp).
  bool online = false;
  /// Actual-profile spec for online mode (key `actual`): the profile
  /// execution is billed against, resolved through the instance's own
  /// ProfileRequest. Empty = resolve the forecast/actual pair from each
  /// instance's scenario spec (its `+noise` modifier is the forecast
  /// error).
  std::string actual;
  /// Rescheduling-policy axis for online mode (key `policies`); any
  /// registered policy spec, commas inside specs handled like the
  /// scenario axis.
  std::vector<std::string> policies{"static"};
  /// Per-task runtime perturbation amplitude for online mode (key
  /// `runtime-noise`, in [0, 1)).
  double runtimeNoise = 0.0;

  /// Number of cells in the cross-product (== expandCampaign().size()).
  std::size_t cellCount() const;

  /// Solver-side multiplicity of each instance: |solvers| offline,
  /// |solvers| · |policies| online.
  std::size_t policyCount() const { return online ? policies.size() : 1; }
};

/// Apply one `key = value` assignment to the spec. List-valued keys take
/// comma-separated values; an empty list is rejected (an empty axis would
/// silently erase the whole campaign). Throws PreconditionError on unknown
/// keys or malformed values.
void setCampaignKey(CampaignSpec& spec, const std::string& key,
                    const std::string& value);

/// Parse a campaign from text: a JSON object when the first non-space
/// character is '{', otherwise key=value lines (blank lines and `#`
/// comments ignored). Throws PreconditionError on malformed input.
CampaignSpec parseCampaignText(const std::string& text);

/// Read and parse a campaign file; throws on I/O errors.
CampaignSpec parseCampaignFile(const std::string& path);

/// Render the spec as a single-line JSON object in the `setCampaignKey`
/// vocabulary: `parseCampaignText(canonicalCampaignSpecJson(s))` rebuilds
/// the same spec, and two specs produce the same string iff they describe
/// the same campaign. The result store's manifest pins the owning spec
/// with it and rejects resume attempts under a different one. `threads` is
/// deliberately omitted — worker count never changes what a campaign
/// computes, so resuming with a different thread count is legal.
std::string canonicalCampaignSpecJson(const CampaignSpec& spec);

/// Resolve the spec's solver selection against the global registry.
/// Throws PreconditionError when the selection matches nothing.
std::vector<std::string> campaignSolverNames(const CampaignSpec& spec);

/// The per-instance cell labels, in cell order: the resolved solver
/// selection offline, the solver × policy cross-product ("solver @
/// policy") in online mode. Every record surface — runner, result store,
/// query filters — shares this one vocabulary.
std::vector<std::string> campaignCellLabels(const CampaignSpec& spec);

/// Expand the cross-product into instance specs, ordered
/// family → tasks → nodes-per-type → seed → scenario → deadline factor
/// (the bench-grid order, so figures keep their instance ordering).
std::vector<InstanceSpec> expandCampaign(const CampaignSpec& spec);

} // namespace cawo
