#pragma once

#include <string>

#include "exp/record.hpp"

/// \file record_json.hpp
/// The one-line JSON codec for `CampaignRecord` — the unit of the
/// `cawosched-campaign-v1` schema and of the result store's segment files.
///
/// The byte contract: `campaignRecordJsonLine` produces exactly the bytes
/// the campaign document writer emits for the same record inside its
/// `records` array (single line, compact separators, pinned key order).
/// That is what lets the store append record lines incrementally and later
/// splice them into a full document verbatim (`JsonWriter::rawValue`)
/// with byte-identical output to the legacy in-memory path.
/// `parseCampaignRecordLine` is the exact inverse on that format:
/// serialize → parse → serialize is the identity.

namespace cawo {

class JsonWriter;

/// Write one record as a compact single-line JSON object into an open
/// array/document. Key order and null conventions are pinned by
/// tests/test_campaign.cpp (RecordSchemaIsStable) and the golden files.
void writeCampaignRecord(JsonWriter& w, const CampaignRecord& r);

/// The record as a standalone compact JSON object — byte-identical to the
/// in-document form (without trailing newline).
std::string campaignRecordJsonLine(const CampaignRecord& r);

/// Parse one record line back into the struct. Accepts exactly what the
/// writer produces (nulls map back to the absence flags / NaN); throws
/// PreconditionError on malformed or schema-violating input.
CampaignRecord parseCampaignRecordLine(const std::string& line);

} // namespace cawo
